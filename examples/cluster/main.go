// Cluster: the Section 3 scalability challenge met horizontally. A policy
// base of 2000 per-resource policies is partitioned across a 4-shard
// consistent-hash cluster, each shard replicated 3 ways behind failover.
// The walkthrough shows (1) verdicts identical to a single engine, (2)
// batch decisions amortising evaluation overhead, (3) a shard surviving
// replica crashes, and (4) live rebalancing when the fleet grows.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/ha"
	"repro/internal/metrics"
	"repro/internal/pdp"
	"repro/internal/workload"
)

func main() {
	gen := workload.NewGenerator(workload.Config{
		Users: 100, Resources: 2000, Roles: 10, Seed: 21,
	})
	dir := gen.Directory("idp")
	base := gen.PolicyBase("org")
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ctx := context.Background()

	single := pdp.New("single", pdp.WithResolver(dir))
	if err := single.SetRoot(base); err != nil {
		log.Fatal(err)
	}
	// The production engine configuration: target-indexed evaluation plus
	// a TTL decision cache on every replica (what cmd/pdpd -index -cache
	// serves).
	router, err := cluster.New("fleet", cluster.Config{
		Shards:   4,
		Replicas: 3,
		Strategy: ha.Failover,
		EngineOptions: []pdp.Option{
			pdp.WithResolver(dir),
			pdp.WithTargetIndex(),
			pdp.WithDecisionCache(time.Hour, 0),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := router.SetRoot(base); err != nil {
		log.Fatal(err)
	}

	// 1. The cluster is a drop-in DecisionProvider: same verdicts as one
	// engine over the same base.
	reqs := gen.Requests(1000)
	agree := 0
	for _, req := range reqs {
		if router.DecideAt(ctx, req, at).Decision == single.DecideAt(ctx, req, at).Decision {
			agree++
		}
	}
	fmt.Printf("cluster vs single engine: %d/%d verdicts identical\n", agree, len(reqs))
	fmt.Printf("shard loads: %v (imbalance %.2f)\n",
		router.ShardLoads(), metrics.Imbalance(router.ShardLoads()))

	// 2. Batching: group per shard, evaluate each group in one pass.
	start := time.Now()
	for _, req := range reqs {
		router.DecideAt(ctx, req, at)
	}
	perReq := time.Since(start)
	start = time.Now()
	router.DecideBatchAt(ctx, reqs, at)
	batched := time.Since(start)
	fmt.Printf("1000 decisions: per-request %v, batched %v (%.1fx)\n",
		perReq.Round(time.Microsecond), batched.Round(time.Microsecond),
		float64(perReq)/float64(batched))

	// 3. Dependability per shard: crash 2 of 3 replicas of every shard;
	// failover keeps every verdict.
	for _, name := range router.Shards() {
		replicas, err := router.Replicas(name)
		if err != nil {
			log.Fatal(err)
		}
		replicas[0].SetDown(true)
		replicas[1].SetDown(true)
	}
	survived := 0
	for _, req := range reqs[:200] {
		if router.DecideAt(ctx, req, at).Decision == single.DecideAt(ctx, req, at).Decision {
			survived++
		}
	}
	fmt.Printf("with 2/3 replicas of every shard down: %d/200 verdicts still identical\n", survived)

	// 4. Live growth: add a shard; consistent hashing moves only ~1/5 of
	// the policy ownership, and verdicts are unchanged.
	before := router.Stats().ChildrenMoved
	name, err := router.AddShard()
	if err != nil {
		log.Fatal(err)
	}
	moved := router.Stats().ChildrenMoved - before
	fmt.Printf("added %s: %d of 2000 policies changed owner (%.1f%%)\n",
		name, moved, 100*float64(moved)/2000)
	agree = 0
	for _, req := range reqs[:200] {
		if router.DecideAt(ctx, req, at).Decision == single.DecideAt(ctx, req, at).Decision {
			agree++
		}
	}
	fmt.Printf("after rebalance: %d/200 verdicts identical\n", agree)
}
