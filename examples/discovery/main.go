// PDP discovery with signed decisions (Section 3.2, "Location of Policy
// Decision Points"): an enforcement point that accepts any decision signed
// by its administrative authority, discovering decision points at runtime
// instead of binding to one statically.
//
// The scenario: three decision points serve one authority. The first
// crashes mid-run (the client fails over); a rogue decision point backed
// by the wrong certificate authority then registers itself first in the
// registry and answers every query with a permit — which the client
// rejects on signature verification, every time.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/discovery"
	"repro/internal/pdp"
	"repro/internal/pki"
	"repro/internal/policy"
	"repro/internal/wire"
)

type seededReader struct{ r *rand.Rand }

func (s *seededReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(s.r.Intn(256))
	}
	return len(p), nil
}

func main() {
	epoch := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	later := epoch.AddDate(1, 0, 0)
	entropy := &seededReader{r: rand.New(rand.NewSource(7))}

	net := wire.NewNetwork(5*time.Millisecond, 7)
	net.Register("pep.ward", func(_ context.Context, _ *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
		return env, nil
	})

	// The administrative authority and its decision points.
	authority, err := pki.NewRootAuthority("authority.med", entropy, epoch, later)
	if err != nil {
		log.Fatal(err)
	}
	base := policy.NewPolicySet("base").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("doctors").
			Combining(policy.DenyUnlessPermit).
			Rule(policy.Permit("doctors-read").
				When(policy.MatchRole("doctor"), policy.MatchActionID("read")).
				Build()).
			Build()).
		Build()
	reg := discovery.NewRegistry()
	for i := 1; i <= 3; i++ {
		node := fmt.Sprintf("pdp.med.%d", i)
		key, err := pki.GenerateKeyPair(entropy)
		if err != nil {
			log.Fatal(err)
		}
		engine := pdp.New(node)
		if err := engine.SetRoot(base); err != nil {
			log.Fatal(err)
		}
		discovery.ServeSigned(net, node, engine, key, node, 15*time.Minute)
		reg.Register(discovery.Entry{
			Node: node, Authority: "authority.med",
			Cert: authority.Issue(node, key.Public, epoch, later, false),
		})
	}

	client := discovery.NewClient(net, reg, authority.Certificate(), "authority.med", "pep.ward",
		discovery.WithRejectHook(func(node string, err error) {
			fmt.Printf("  ! rejected response from %s: %v\n", node, err)
		}))

	ask := func(label, subject, role string) {
		req := policy.NewAccessRequest(subject, "rec-7", "read")
		if role != "" {
			req.Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String(role))
		}
		res := client.DecideAt(context.Background(), req, epoch.Add(time.Hour))
		fmt.Printf("%-34s -> %-13s (decided by %s)\n", label, res.Decision, orDash(res.By))
	}

	fmt.Println("— all three decision points up —")
	ask("doctor alice reads rec-7", "alice", "doctor")
	ask("visitor mallory reads rec-7", "mallory", "")

	fmt.Println("\n— pdp.med.1 crashes: discovery fails over —")
	net.SetNodeDown("pdp.med.1", true)
	ask("doctor alice reads rec-7", "alice", "doctor")

	fmt.Println("\n— a rogue PDP (untrusted CA, permits everyone) registers first —")
	rogueCA, err := pki.NewRootAuthority("authority.evil", entropy, epoch, later)
	if err != nil {
		log.Fatal(err)
	}
	rogueKey, err := pki.GenerateKeyPair(entropy)
	if err != nil {
		log.Fatal(err)
	}
	open := pdp.New("pdp.rogue")
	if err := open.SetRoot(policy.NewPolicySet("open").Combining(policy.PermitUnlessDeny).Build()); err != nil {
		log.Fatal(err)
	}
	discovery.ServeSigned(net, "pdp.rogue", open, rogueKey, "pdp.rogue", 15*time.Minute)
	rogue := discovery.Entry{
		Node: "pdp.rogue", Authority: "authority.med",
		Cert: rogueCA.Issue("pdp.rogue", rogueKey.Public, epoch, later, false),
	}
	fresh := discovery.NewRegistry()
	fresh.Register(rogue)
	for _, e := range reg.Lookup("authority.med") {
		fresh.Register(e)
	}
	client = discovery.NewClient(net, fresh, authority.Certificate(), "authority.med", "pep.ward",
		discovery.WithRejectHook(func(node string, err error) {
			fmt.Printf("  ! rejected response from %s\n", node)
		}))
	ask("visitor mallory reads rec-7", "mallory", "")

	st := client.Stats()
	fmt.Printf("\nclient stats: %d queries, %d node round-trips, %d rejected responses\n",
		st.Queries, st.NodesTried, st.Rejected)
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}
