// Negotiation: Traust-style automated trust negotiation (§3.1) — a
// researcher and a hospital with no prior relationship establish enough
// mutual trust for a dataset release by alternately disclosing guarded
// credentials, under both the eager and the parsimonious strategy.
package main

import (
	"fmt"

	"repro/internal/negotiation"
)

func buildParties() (*negotiation.Party, *negotiation.Party) {
	researcher := negotiation.NewParty("researcher")
	researcher.AddCredential(negotiation.Credential{Name: "university-affiliation"})
	researcher.AddCredential(negotiation.Credential{Name: "ethics-approval"})
	researcher.AddCredential(negotiation.Credential{
		// The researcher certificate is sensitive: the hospital must
		// first prove it is accredited.
		Name:       "researcher-certificate",
		Disclosure: negotiation.Requirement{{"hospital-accreditation"}},
	})
	researcher.AddCredential(negotiation.Credential{Name: "conference-badge"}) // irrelevant

	hospital := negotiation.NewParty("hospital")
	hospital.AddCredential(negotiation.Credential{
		// The hospital only reveals its accreditation to affiliated
		// researchers.
		Name:       "hospital-accreditation",
		Disclosure: negotiation.Requirement{{"university-affiliation"}},
	})
	hospital.AddCredential(negotiation.Credential{Name: "iso-certificate"}) // irrelevant
	hospital.SetAccessPolicy("oncology-dataset",
		negotiation.Requirement{{"researcher-certificate", "ethics-approval"}})
	return researcher, hospital
}

func main() {
	for _, strategy := range []negotiation.Strategy{negotiation.Eager, negotiation.Parsimonious} {
		researcher, hospital := buildParties()
		tr, err := negotiation.Negotiate(researcher, hospital, "oncology-dataset", strategy)
		fmt.Printf("-- %s strategy --\n", strategy)
		if err != nil {
			fmt.Println("negotiation failed:", err)
			continue
		}
		fmt.Printf("succeeded in %d rounds / %d messages\n", tr.Rounds, tr.Messages)
		fmt.Printf("researcher disclosed %d credentials, hospital %d\n",
			tr.ClientDisclosed, tr.ServerDisclosed)
		if strategy == negotiation.Eager {
			fmt.Println("(note: eager leaked the irrelevant conference badge and ISO certificate)")
		} else {
			fmt.Println("(parsimonious disclosed only the backward-chained need set)")
		}
		fmt.Println()
	}

	// A stranger with no credentials fails cleanly.
	stranger := negotiation.NewParty("stranger")
	_, hospital := buildParties()
	if _, err := negotiation.Negotiate(stranger, hospital, "oncology-dataset", negotiation.Eager); err != nil {
		fmt.Println("stranger without credentials:", err)
	}
}
