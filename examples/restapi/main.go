// REST enforcement: protect a RESTful records API with a URI-routing PEP,
// a local-dialect policy translated into the standard model, and
// obligation-driven content redaction (the content-based access control of
// Section 3.1).
//
// The example starts an HTTP server on a random port, issues requests as
// three different principals, and prints what each of them sees:
//
//   - doctor alice reads the full record;
//   - nurse nina reads the record with ssn and insurance-id redacted;
//   - visitor mallory is refused.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/dialect"
	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/rest"
)

// clinicPolicy is written in the local dialect a hospital grew before
// joining the federation; Translate turns it into the standard model.
const clinicPolicy = `
policy records first-applicable {
  target resource.resource-type == "patient-record"
  permit doctors when subject.role has "doctor"
  permit nurses-redacted when subject.role has "nurse" and action.action-id == "read" {
    obligate redact on permit { fields = "ssn,insurance-id" }
  }
  deny default
}
`

func main() {
	// 1. Translate the local dialect into the standard policy model and
	//    install it in a PDP.
	root, err := dialect.Translate("clinic", policy.DenyOverrides, clinicPolicy)
	if err != nil {
		log.Fatal(err)
	}
	engine := pdp.New("clinic-pdp")
	if err := engine.SetRoot(root); err != nil {
		log.Fatal(err)
	}

	// 2. Describe the URI space: every record URI is a patient-record.
	router := rest.NewRouter()
	router.MustAdd("/records/{id}", "patient-record")

	// 3. Wrap the records API behind the REST enforcement point. The
	//    redact transformer discharges the policy's content obligation.
	mw := rest.NewMiddleware(router, engine, rest.HeaderSubject,
		rest.WithTransformer("redact", rest.RedactJSON))
	api := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id":%q,"diagnosis":"stable","ssn":"123-45-6789","insurance-id":"I-9"}`,
			r.URL.Path[len("/records/"):])
	})
	srv := httptest.NewServer(mw.Wrap(api))
	defer srv.Close()
	fmt.Printf("records API protected at %s\n\n", srv.URL)

	// 4. Access the API as three different principals.
	principals := []struct{ subject, roles string }{
		{"alice", "doctor"},
		{"nina", "nurse"},
		{"mallory", "visitor"},
	}
	for _, p := range principals {
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/records/rec-7", nil)
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("X-Subject", p.subject)
		req.Header.Set("X-Roles", p.roles)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s): %s\n  %s\n", p.subject, p.roles, resp.Status, body)
	}

	st := mw.Stats()
	fmt.Printf("\nenforcement stats: %d requests, %d permitted, %d denied, %d responses transformed\n",
		st.Requests, st.Permitted, st.Denied, st.Transformed)
}
