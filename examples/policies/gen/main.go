// Command gen regenerates the example policy files in examples/policies/.
// The files are committed; CI lints them with `acctl lint` and expects a
// clean report, so keep any edits free of conflicts, shadowing and
// redundancy (or regenerate after changing the builders below).
package main

import (
	"log"
	"os"
	"path/filepath"

	"repro/internal/policy"
	"repro/internal/xacml"
)

func main() {
	dir := "examples/policies"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}

	wardRecords := policy.NewPolicy("ward-records").
		Describe("Clinical access to patient records on the ward.").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("patient-record")).
		Rule(policy.Permit("doctor-read").
			When(policy.MatchActionID("read"),
				policy.MatchSubject(policy.AttrSubjectRole, policy.String("doctor"))).
			Build()).
		Rule(policy.Permit("nurse-read").
			When(policy.MatchActionID("read"),
				policy.MatchSubject(policy.AttrSubjectRole, policy.String("nurse"))).
			Build()).
		Rule(policy.Deny("write-lockdown").
			Describe("Records are amended through the registry, never in place.").
			When(policy.MatchActionID("write")).
			Build()).
		Build()

	pharmacy := policy.NewPolicy("pharmacy").
		Describe("Dispensing and audit access to the medication cabinet.").
		Combining(policy.DenyOverrides).
		When(policy.MatchResourceID("medication-cabinet")).
		Rule(policy.Permit("pharmacist-dispense").
			When(policy.MatchActionID("dispense"),
				policy.MatchSubject(policy.AttrSubjectRole, policy.String("pharmacist"))).
			Build()).
		Rule(policy.Permit("auditor-inspect").
			When(policy.MatchActionID("inspect"),
				policy.MatchSubject(policy.AttrSubjectRole, policy.String("auditor"))).
			Build()).
		Build()

	emergency := policy.NewPolicySet("emergency").
		Describe("Break-glass access during a declared emergency.").
		Combining(policy.FirstApplicable).
		When(policy.MatchActionID("emergency-access")).
		Add(policy.NewPolicy("break-glass").
			Combining(policy.FirstApplicable).
			Rule(policy.Permit("clinician-override").
				When(policy.MatchSubject(policy.AttrSubjectRole, policy.String("doctor"))).
				Build()).
			Build()).
		Build()

	for name, ev := range map[string]policy.Evaluable{
		"ward-records.xml": wardRecords,
		"pharmacy.xml":     pharmacy,
		"emergency.xml":    emergency,
	} {
		data, err := xacml.MarshalXML(ev)
		if err != nil {
			log.Fatalf("gen: marshal %s: %v", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			log.Fatalf("gen: %v", err)
		}
	}
}
