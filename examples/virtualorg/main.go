// Virtualorg: the three-domain Virtual Organisation of Fig. 1 — a grid
// site, a university and a hospital share resources under autonomous local
// policies plus an organisation-wide veto, with cross-domain attribute
// retrieval and a consolidated audit log.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/pip"
	"repro/internal/policy"
)

func main() {
	s, err := core.NewSystem(core.Config{Name: "science-vo", Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}

	grid, err := s.AddDomain("grid-site")
	if err != nil {
		log.Fatal(err)
	}
	uni, err := s.AddDomain("university")
	if err != nil {
		log.Fatal(err)
	}
	hospital, err := s.AddDomain("hospital")
	if err != nil {
		log.Fatal(err)
	}

	// Identity providers per domain.
	uni.Directory.AddSubject(pip.Subject{ID: "prof-ada", Domain: "university", Roles: []string{"researcher"}})
	hospital.Directory.AddSubject(pip.Subject{ID: "dr-grace", Domain: "hospital", Roles: []string{"clinician", "researcher"}})
	grid.Directory.AddSubject(pip.Subject{ID: "operator-1", Domain: "grid-site", Roles: []string{"operator"}})

	// The grid site shares its compute cluster with researchers from any
	// member domain, but keeps job deletion to its own operators.
	cluster := policy.NewPolicy("cluster-sharing").
		Combining(policy.FirstApplicable).
		When(policy.MatchResource(policy.AttrResourceType, policy.String("compute"))).
		Rule(policy.Permit("researchers-submit").
			When(policy.MatchRole("researcher"), policy.MatchActionID("submit-job")).
			Build()).
		Rule(policy.Permit("operators-anything").When(policy.MatchRole("operator")).Build()).
		Rule(policy.Deny("default").Build()).
		Build()
	if err := s.AdmitPolicy(grid, cluster, s.At(0)); err != nil {
		log.Fatal(err)
	}

	// The VO vetoes any access to resources flagged under export control,
	// across every member — the organisation-wide meta-policy.
	if err := s.VO.SetVOPolicy(policy.NewPolicySet("vo-policy").
		Combining(policy.PermitUnlessDeny).
		Add(policy.NewPolicy("export-control").
			Combining(policy.PermitUnlessDeny).
			Rule(policy.Deny("no-export").
				When(policy.MatchResource("export-controlled", policy.String("true"))).
				Build()).
			Build()).
		Build()); err != nil {
		log.Fatal(err)
	}

	computeReq := func(subject, home string) *policy.Request {
		return policy.NewAccessRequest(subject, "cluster-1", "submit-job").
			Add(policy.CategorySubject, policy.AttrSubjectDomain, policy.String(home)).
			Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("grid-site")).
			Add(policy.CategoryResource, policy.AttrResourceType, policy.String("compute"))
	}

	fmt.Println("-- cross-domain accesses (pull model) --")
	cases := []struct {
		label   string
		subject string
		home    string
		mutate  func(*policy.Request)
	}{
		{"university researcher submits a job", "prof-ada", "university", nil},
		{"hospital clinician-researcher submits a job", "dr-grace", "hospital", nil},
		{"grid operator submits a job", "operator-1", "grid-site", nil},
		{"unknown stranger submits a job", "mallory", "university", nil},
		{"export-controlled resource is vetoed by the VO", "prof-ada", "university",
			func(r *policy.Request) { r.Add(policy.CategoryResource, "export-controlled", policy.String("true")) }},
	}
	for i, tc := range cases {
		req := computeReq(tc.subject, tc.home)
		if tc.mutate != nil {
			tc.mutate(req)
		}
		out := s.VO.Request(context.Background(), tc.home, req, s.At(time.Duration(i)*time.Minute))
		verdict := "DENIED"
		if out.Allowed {
			verdict = "allowed"
		}
		fmt.Printf("%-48s %-7s (%d msgs, %v virtual latency)\n", tc.label+":", verdict, out.Messages, out.Latency)
	}

	fmt.Println("\n-- consolidated audit (management view of §3.2) --")
	for domain, sum := range s.VO.Audit.Summarise() {
		fmt.Printf("domain %-10s permits=%d denies=%d errors=%d\n", domain, sum.Permits, sum.Denies, sum.Errors)
	}
}
