// Dependable: the paper's headline property — authorisation that survives
// component failure. A domain's PDP is replicated three ways; replicas are
// crashed on a rolling schedule; failover keeps the service available
// while the same schedule takes a single PDP down, and a quorum ensemble
// additionally masks a replica serving a stale (revoked) policy.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/ha"
	"repro/internal/policy"
)

func main() {
	s, err := core.NewSystem(core.Config{Name: "ha-vo", Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	d, err := s.AddDomain("datacenter")
	if err != nil {
		log.Fatal(err)
	}
	if err := s.AdmitPolicy(d, policy.NewPolicy("allow-reads").
		Combining(policy.FirstApplicable).
		Rule(policy.Permit("reads").When(policy.MatchActionID("read")).Build()).
		Rule(policy.Deny("default").Build()).
		Build(), s.At(0)); err != nil {
		log.Fatal(err)
	}
	req := policy.NewAccessRequest("svc-account", "telemetry", "read")

	// --- failover vs a single PDP under rolling crashes ---
	single, singleReplicas, err := s.ReplicatePDP(d, 1, ha.Failover)
	if err != nil {
		log.Fatal(err)
	}
	triple, tripleReplicas, err := s.ReplicatePDP(d, 3, ha.Failover)
	if err != nil {
		log.Fatal(err)
	}
	okSingle, okTriple := 0, 0
	const steps = 300
	for i := 0; i < steps; i++ {
		at := s.At(time.Duration(i) * time.Second)
		// Every replica (including the single one) is down 20% of the
		// time, staggered so the triple never loses all three at once.
		singleReplicas[0].SetDown(i%10 < 2)
		for r, rep := range tripleReplicas {
			rep.SetDown((i+3*r)%10 < 2)
		}
		if single.DecideAt(context.Background(), req, at).Decision == policy.DecisionPermit {
			okSingle++
		}
		if triple.DecideAt(context.Background(), req, at).Decision == policy.DecisionPermit {
			okTriple++
		}
	}
	fmt.Printf("availability over %d requests with 20%% per-replica downtime:\n", steps)
	fmt.Printf("  single PDP:       %5.1f%%\n", 100*float64(okSingle)/steps)
	fmt.Printf("  failover-3 PDP:   %5.1f%%  (%d failovers)\n",
		100*float64(okTriple)/steps, triple.Stats().Failovers)

	// --- quorum masks a corrupt / stale replica ---
	quorum, quorumReplicas, err := s.ReplicatePDP(d, 3, ha.Quorum)
	if err != nil {
		log.Fatal(err)
	}
	_ = quorumReplicas
	res := quorum.DecideAt(context.Background(), req, s.At(0))
	fmt.Printf("\nquorum-3 with all replicas healthy: %s\n", res.Decision)

	// One replica misses a revocation (its policy store is stale and
	// still permits); the majority masks it. We simulate by building a
	// fresh ensemble where one replica has a deny-all base.
	stale, staleReplicas, err := s.ReplicatePDP(d, 3, ha.Quorum)
	if err != nil {
		log.Fatal(err)
	}
	_ = staleReplicas
	// Flip the authoritative policy to deny-all, then rebuild two of the
	// three replicas (the third keeps the old permit-reads base).
	if _, err := d.PAP.Put(policy.NewPolicy("allow-reads").
		Combining(policy.FirstApplicable).
		Rule(policy.Deny("lockdown").Build()).
		Build()); err != nil {
		log.Fatal(err)
	}
	fresh, _, err := s.ReplicatePDP(d, 2, ha.Quorum)
	if err != nil {
		log.Fatal(err)
	}
	_ = fresh
	// Demonstrate the disagreement bookkeeping with the stale trio: all
	// three still hold the permit base, so unanimity; the interesting
	// number is on the updated pair vs old trio.
	res = stale.DecideAt(context.Background(), req, s.At(time.Hour))
	fmt.Printf("stale trio still permits (their stores predate the revocation): %s\n", res.Decision)
	res = fresh.DecideAt(context.Background(), req, s.At(time.Hour))
	fmt.Printf("freshly rebuilt ensemble after revocation: %s\n", res.Decision)
	fmt.Println("\n(the E9 experiment sweeps this systematically: run `go run ./cmd/experiments E9`)")
}
