// Capability: the push-model flow of Fig. 2 end to end — a client obtains
// a signed capability from the VO capability service (CAS-style), presents
// it to the resource provider's PEP, and reuses it across calls without
// any further PDP traffic. A VOMS-style attribute certificate is shown for
// contrast: it carries roles and leaves the decision to the provider.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/pip"
	"repro/internal/policy"
)

func main() {
	s, err := core.NewSystem(core.Config{Name: "data-vo", Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	provider, err := s.AddDomain("provider")
	if err != nil {
		log.Fatal(err)
	}
	consumer, err := s.AddDomain("consumer")
	if err != nil {
		log.Fatal(err)
	}
	consumer.Directory.AddSubject(pip.Subject{
		ID: "bob", Domain: "consumer", Roles: []string{"analyst"},
	})
	if err := s.AdmitPolicy(provider, policy.NewPolicy("datasets").
		Combining(policy.FirstApplicable).
		When(policy.MatchResource(policy.AttrResourceType, policy.String("dataset"))).
		Rule(policy.Permit("analysts-read").
			When(policy.MatchRole("analyst"), policy.MatchActionID("read")).
			Build()).
		Rule(policy.Deny("default").Build()).
		Build(), s.At(0)); err != nil {
		log.Fatal(err)
	}

	req := policy.NewAccessRequest("bob", "trades-2026", "read").
		Add(policy.CategorySubject, policy.AttrSubjectDomain, policy.String("consumer")).
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("provider")).
		Add(policy.CategoryResource, policy.AttrResourceType, policy.String("dataset"))

	// I+II of Fig. 2: capability request and response.
	cap, issue := s.VO.RequestCapability(context.Background(), "consumer", req, s.At(0))
	if cap == nil {
		log.Fatalf("capability refused: %v", issue.Err)
	}
	fmt.Printf("capability %s issued by %s for (%s, %s), valid until %v (%d msgs)\n",
		cap.ID, cap.Issuer, cap.Decision.Resource, cap.Decision.Action, cap.NotOnOrAfter, issue.Messages)
	capXML, err := assertion.MarshalXML(cap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSAML-style assertion carried in the SOAP header:\n%s\n\n", capXML)

	// III+IV: the capability rides with each business call; validation is
	// local to the PEP.
	total := 0
	for i := 0; i < 5; i++ {
		out := s.VO.RequestWithCapability(context.Background(), "consumer", req, cap, s.At(time.Duration(i)*time.Second))
		if !out.Allowed {
			log.Fatalf("access %d refused: %v", i, out.Err)
		}
		total += out.Messages
	}
	fmt.Printf("5 accesses with one capability: %d messages total (pull model would use %d)\n",
		total+issue.Messages, 5*6)

	// A mismatched use is refused at the PEP.
	writeReq := policy.NewAccessRequest("bob", "trades-2026", "write").
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("provider")).
		Add(policy.CategoryResource, policy.AttrResourceType, policy.String("dataset"))
	if out := s.VO.RequestWithCapability(context.Background(), "consumer", writeReq, cap, s.At(0)); !out.Allowed {
		fmt.Printf("write with a read capability: refused (%v)\n", out.Err)
	}
	// And it expires.
	if out := s.VO.RequestWithCapability(context.Background(), "consumer", req, cap, s.At(time.Hour)); !out.Allowed {
		fmt.Println("after its window: refused (expired)")
	}
}
