// Durable: the policy base survives kill -9. A PAP backed by the
// write-ahead log (internal/store) acknowledges each administrative write
// only after it is fsynced; the walkthrough (1) writes, revises and
// revokes policies through a backed store, (2) simulates a crash by
// abandoning the process state and recovering the data directory from
// scratch, (3) bootstraps a sharded PDP cluster from the recovered
// snapshot + WAL tail through the incremental delta pipeline, and (4)
// shows the recovered fleet serving exactly the acknowledged decisions —
// including the revocation, which a restart must never resurrect.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/ha"
	"repro/internal/pap"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "durable-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- before the crash: a backed PAP under administration ---
	lg, err := store.Open(dir, store.Options{SnapshotEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	adminPAP := pap.NewStore("org")
	if err := lg.Bootstrap(adminPAP, nil, "org-root", policy.DenyOverrides); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := adminPAP.Put(workload.ResourcePolicy(i, 4)); err != nil {
			log.Fatal(err)
		}
	}
	revoked := workload.ResourcePolicy(7, 4).EntityID()
	if err := adminPAP.Delete(revoked); err != nil {
		log.Fatal(err)
	}
	st := lg.Stats()
	fmt.Printf("acknowledged %d writes (%d fsync batches, %d snapshots, last seq %d)\n",
		st.Appends, st.Batches, st.Snapshots, st.LastSeq)
	fmt.Printf("policy %s revoked; kill -9 strikes now\n\n", revoked)
	// kill -9: no flush hook, no final compaction (Crash models it
	// in-process). Everything acknowledged is already on disk — that is
	// the whole point.
	if err := lg.Crash(); err != nil {
		log.Fatal(err)
	}

	// --- after the crash: recover into a sharded cluster ---
	rlg, err := store.Open(dir, store.Options{SnapshotEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer rlg.Close()
	rst := rlg.Stats()
	fmt.Printf("recovered: %d snapshot entries + %d WAL tail records (%d torn bytes truncated)\n",
		rst.RecoveredSnapshot, rst.RecoveredTail, rst.TruncatedBytes)

	recoveredPAP := pap.NewStore("org")
	router, err := cluster.New("fleet", cluster.Config{Shards: 4, Replicas: 2, Strategy: ha.Failover})
	if err != nil {
		log.Fatal(err)
	}
	// Snapshot state installs as the root; the tail replays through
	// cluster.Router.ApplyUpdate — the same delta path live
	// administration uses — and the log reattaches as the PAP backend.
	if err := rlg.Bootstrap(recoveredPAP, router, "org-root", policy.DenyOverrides); err != nil {
		log.Fatal(err)
	}
	// Post-recovery administration flows on through the same delta path.
	recoveredPAP.Watch(func(u pap.Update) {
		if err := pap.Apply(router, recoveredPAP, u, "org-root", policy.DenyOverrides); err != nil {
			log.Fatal(err)
		}
	})

	// The owning role (i mod 4) may read resource i; probe as the owner.
	ownerRead := func(i int) policy.Result {
		return router.Decide(context.Background(), policy.NewAccessRequest("alice", workload.ResourceID(i), "read").
			Add(policy.CategorySubject, "role", policy.String(workload.RoleID(i%4))))
	}
	for _, i := range []int{0, 7, 19} {
		fmt.Printf("  res-%-3d owner read -> %v\n", i, ownerRead(i).Decision)
	}
	fmt.Println("\nres-7 stays revoked across the crash: an acknowledged write is never lost,")
	fmt.Println("a torn one is never applied. New writes continue against the same log:")
	if _, err := recoveredPAP.Put(workload.ResourcePolicy(7, 4)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  res-7 re-granted -> %v (seq %d)\n", ownerRead(7).Decision, rlg.Stats().LastSeq)
}
