// Quickstart: author a policy, stand up a PDP and a PEP, and enforce a few
// requests — the smallest end-to-end use of the library (the pull model of
// Fig. 3 within one domain).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/pdp"
	"repro/internal/pep"
	"repro/internal/pip"
	"repro/internal/policy"
	"repro/internal/xacml"
)

func main() {
	// 1. Author a policy with the fluent builders: doctors may read
	//    patient records; every permitted access must be logged.
	records := policy.NewPolicy("records").
		Describe("access to patient records").
		Combining(policy.FirstApplicable).
		When(policy.MatchResource(policy.AttrResourceType, policy.String("patient-record"))).
		Rule(policy.Permit("doctors-read").
			When(policy.MatchRole("doctor"), policy.MatchActionID("read")).
			Obligation(policy.RequireObligation("log-access", policy.EffectPermit,
				map[string]string{"level": "info"})).
			Build()).
		Rule(policy.Deny("default").Build()).
		Build()

	// The same policy round-trips through the XACML-style XML encoding.
	xmlForm, err := xacml.MarshalXML(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy as XML (%d bytes):\n%s\n\n", len(xmlForm), xmlForm)

	// 2. An identity provider supplies subject attributes (the PIP).
	idp := pip.NewDirectory("idp")
	idp.AddSubject(pip.Subject{ID: "alice", Roles: []string{"doctor"}})
	idp.AddSubject(pip.Subject{ID: "eve", Roles: []string{"visitor"}})

	// 3. The PDP evaluates requests against the policy.
	engine := pdp.New("clinic-pdp", pdp.WithResolver(idp))
	root := policy.NewPolicySet("clinic").Combining(policy.DenyOverrides).Add(records).Build()
	if err := engine.SetRoot(root); err != nil {
		log.Fatal(err)
	}

	// 4. The PEP enforces, fulfilling obligations and failing closed.
	enforcer := pep.NewEnforcer("clinic-pep", engine,
		pep.WithObligationHandler("log-access", func(ob policy.FulfilledObligation, req *policy.Request) error {
			fmt.Printf("  [audit %s] %s read %s\n", ob.Attributes["level"], req.SubjectID(), req.ResourceID())
			return nil
		}),
	)

	requests := []*policy.Request{
		policy.NewAccessRequest("alice", "rec-7", "read").
			Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record")),
		policy.NewAccessRequest("alice", "rec-7", "delete").
			Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record")),
		policy.NewAccessRequest("eve", "rec-7", "read").
			Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record")),
	}
	for _, req := range requests {
		out := enforcer.Enforce(context.Background(), req)
		verdict := "DENIED"
		if out.Allowed {
			verdict = "ALLOWED"
		}
		fmt.Printf("%s %s %s -> %s (decision %s by %s)\n",
			req.SubjectID(), req.ActionID(), req.ResourceID(), verdict, out.Decision, out.By)
	}
}
