package repro

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/pap"
	"repro/internal/pdp"
	"repro/internal/pep"
	"repro/internal/pki"
	"repro/internal/policy"
	"repro/internal/store"
	"repro/internal/wire"
	"repro/internal/workload"
	"repro/internal/xacml"
)

// --- experiment benchmarks: one per table/figure of EXPERIMENTS.md ---
//
// Each benchmark runs the full deterministic experiment per iteration, so
// `go test -bench=E<k>` regenerates exactly the table recorded in
// EXPERIMENTS.md (printed once under -v via b.Log).

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var rows int
	for i := 0; i < b.N; i++ {
		table, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		rows = len(table.Rows())
		if i == 0 && testing.Verbose() {
			b.Log("\n" + table.String())
		}
	}
	b.ReportMetric(float64(rows), "table-rows")
}

func BenchmarkE1_VirtualOrganisation(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2_PushCapability(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3_PullPolicyIssuing(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4_XACMLDataFlow(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5_Syndication(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6_Combining(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE7_Caching(b *testing.B)             { benchExperiment(b, "E7") }
func BenchmarkE8_SecurityOverhead(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9_DependablePDP(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10_ConflictResolution(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11_TrustNegotiation(b *testing.B)   { benchExperiment(b, "E11") }
func BenchmarkE12_Delegation(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkE13_Scalability(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14_ChineseWall(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15_Heterogeneity(b *testing.B)      { benchExperiment(b, "E15") }
func BenchmarkE16_Discovery(b *testing.B)          { benchExperiment(b, "E16") }
func BenchmarkE17_Cluster(b *testing.B)            { benchExperiment(b, "E17") }

// --- micro-benchmarks of the hot paths behind the experiments ---

func scalabilityFixture(b *testing.B, n int, index bool) (*pdp.Engine, []*policy.Request) {
	b.Helper()
	gen := workload.NewGenerator(workload.Config{Users: 100, Resources: n, Roles: 10, Seed: 1})
	var opts []pdp.Option
	opts = append(opts, pdp.WithResolver(gen.Directory("idp")))
	if index {
		opts = append(opts, pdp.WithTargetIndex())
	}
	engine := pdp.New("bench", opts...)
	if err := engine.SetRoot(gen.PolicyBase("base")); err != nil {
		b.Fatal(err)
	}
	reqs := make([]*policy.Request, 256)
	for i := range reqs {
		reqs[i] = gen.NextRequest()
	}
	return engine, reqs
}

func BenchmarkPDPDecide(b *testing.B) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, n := range []int{10, 100, 1000} {
		for _, index := range []bool{false, true} {
			name := fmt.Sprintf("policies=%d/index=%v", n, index)
			b.Run(name, func(b *testing.B) {
				engine, reqs := scalabilityFixture(b, n, index)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					engine.DecideAt(context.Background(), reqs[i%len(reqs)], at)
				}
			})
		}
	}
}

// clusterFixture builds a sharded cluster over an internal/workload
// population, the fleet-scale counterpart of scalabilityFixture. extra
// engine options select the configuration under test.
func clusterFixture(b *testing.B, shards int, extra ...pdp.Option) (*cluster.Router, []*policy.Request) {
	b.Helper()
	gen := workload.NewGenerator(workload.Config{Users: 100, Resources: 2000, Roles: 10, Seed: 1})
	opts := append([]pdp.Option{pdp.WithResolver(gen.Directory("idp"))}, extra...)
	router, err := cluster.New("bench", cluster.Config{
		Shards:        shards,
		EngineOptions: opts,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := router.SetRoot(gen.PolicyBase("base")); err != nil {
		b.Fatal(err)
	}
	return router, gen.Requests(1024)
}

// fullConfig is the production engine configuration cmd/pdpd serves with
// -index -cache: target-indexed evaluation plus a TTL decision cache.
func fullConfig() []pdp.Option {
	return []pdp.Option{pdp.WithTargetIndex(), pdp.WithDecisionCache(time.Hour, 0)}
}

// BenchmarkClusterDecide routes one decision at a time through clusters of
// growing shard counts. config=scan runs bare engines (linear evaluation):
// per-op time shrinks with shard count because each shard scans only its
// slice of the policy base — the horizontal-scaling story. config=full
// runs the production engine configuration (target index + decision
// cache), the baseline BenchmarkClusterDecideBatch compares against.
func BenchmarkClusterDecide(b *testing.B) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, cfg := range []struct {
		name string
		opts []pdp.Option
	}{{"scan", nil}, {"full", fullConfig()}} {
		for _, shards := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("config=%s/shards=%d", cfg.name, shards), func(b *testing.B) {
				router, reqs := clusterFixture(b, shards, cfg.opts...)
				for _, req := range reqs {
					router.DecideAt(context.Background(), req, at) // warm caches and indexes
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					router.DecideAt(context.Background(), reqs[i%len(reqs)], at)
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
			})
		}
	}
}

// BenchmarkClusterDecideBatch evaluates the same workload in 256-request
// batches on the production configuration: requests group by owning shard
// and each group runs in one engine pass, sweeping the decision cache and
// sharing index candidate sets under one critical section instead of two
// per request. Per-decision time should beat the config=full rows of
// BenchmarkClusterDecide.
func BenchmarkClusterDecideBatch(b *testing.B) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	const batch = 256
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("config=full/shards=%d", shards), func(b *testing.B) {
			router, reqs := clusterFixture(b, shards, fullConfig()...)
			router.DecideBatchAt(context.Background(), reqs, at) // warm caches and indexes
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (i * batch) % (len(reqs) - batch + 1)
				router.DecideBatchAt(context.Background(), reqs[off:off+batch], at)
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "decisions/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/decision")
		})
	}
}

// BenchmarkPolicyChurn measures the hot path under sustained policy
// writes on the production 4-shard cluster: one policy is rewritten every
// 64 decisions. The full-rebuild pipeline reinstalls the whole root per
// write, revalidating O(policies) and flushing every shard's decision
// cache; the incremental pipeline (Router.ApplyUpdate) routes a delta to
// the owning shard group and invalidates only the rewritten resource's
// cached decisions, so the other shards keep serving hits. Compare the
// decisions/s and cache-hit% metrics across the two sub-benchmarks.
func BenchmarkPolicyChurn(b *testing.B) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	const (
		writeEvery = 64
		resources  = 2000 // matches clusterFixture's generator
		roles      = 10
	)
	churnChild := func(w int) *policy.Policy {
		return workload.ResourcePolicy((w*61)%resources, roles)
	}
	for _, mode := range []string{"full-rebuild", "incremental"} {
		b.Run(mode, func(b *testing.B) {
			router, reqs := clusterFixture(b, 4, fullConfig()...)
			base := router.Root().(*policy.PolicySet)
			for _, req := range reqs {
				router.DecideAt(context.Background(), req, at) // warm caches and indexes
			}
			before := router.EngineStats()
			writes := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%writeEvery == writeEvery-1 {
					idx := (writes * 61) % resources
					child := churnChild(writes)
					writes++
					var err error
					if mode == "incremental" {
						err = router.ApplyUpdate(pdp.Update{ID: child.ID, Child: child})
					} else {
						children := make([]policy.Evaluable, len(base.Children))
						copy(children, base.Children)
						children[idx] = child
						err = router.SetRoot(&policy.PolicySet{
							ID: base.ID, Combining: base.Combining, Children: children,
						})
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				router.DecideAt(context.Background(), reqs[i%len(reqs)], at)
			}
			b.StopTimer()
			after := router.EngineStats()
			hits := after.CacheHits - before.CacheHits
			misses := after.Evaluations - before.Evaluations
			if hits+misses > 0 {
				b.ReportMetric(100*float64(hits)/float64(hits+misses), "cache-hit%")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
		})
	}
}

func BenchmarkPEPEnforceCached(b *testing.B) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	engine, reqs := scalabilityFixture(b, 100, true)
	enf := pep.NewEnforcer("bench", engine,
		pep.WithDecisionCache(time.Hour, 0),
		pep.WithClock(func() time.Time { return at }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enf.EnforceAt(context.Background(), reqs[i%len(reqs)], at)
	}
}

func BenchmarkXACMLCodec(b *testing.B) {
	req := policy.NewAccessRequest("alice", "rec-7", "read").
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String("doctor")).
		Add(policy.CategorySubject, policy.AttrClearance, policy.Integer(3)).
		Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record"))
	b.Run("request-xml", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			data, err := xacml.MarshalRequestXML(req)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xacml.UnmarshalRequestXML(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("request-json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			data, err := xacml.MarshalRequestJSON(req)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xacml.UnmarshalRequestJSON(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0x42
	}
	return len(p), nil
}

func BenchmarkEnvelopeProtect(b *testing.B) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	later := epoch.AddDate(1, 0, 0)
	root, err := pki.NewRootAuthority("ca", zeroReader{}, epoch, later)
	if err != nil {
		b.Fatal(err)
	}
	trust := pki.NewTrustStore()
	trust.AddRoot(root.Certificate())
	key, err := pki.GenerateKeyPair(zeroReader{})
	if err != nil {
		b.Fatal(err)
	}
	cert := root.Issue("node", key.Public, epoch, later, false)
	sec := wire.NewSecurity(key, cert, trust)
	sec.AddPeer(cert)
	if err := sec.EstablishSharedKey("node"); err != nil {
		b.Fatal(err)
	}
	body := []byte(`<Request><Attributes Category="subject">...</Attributes></Request>`)
	for _, level := range []wire.Protection{wire.Plain, wire.Signed, wire.SignedEncrypted} {
		b.Run(level.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := &wire.Envelope{
					MessageID: fmt.Sprintf("m-%d", i),
					From:      "node", To: "node", Action: "pdp:decide",
					Timestamp: epoch, Body: append([]byte(nil), body...),
				}
				if err := sec.Protect(env, level); err != nil {
					b.Fatal(err)
				}
				if err := sec.Verify(env, level, epoch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppend measures the durable policy store's write path: every
// acknowledged append is fsynced, so the 1-writer case is the raw fsync
// floor and the gain under concurrency is group commit — queued writers
// folded into one fsync. The batch metric is the achieved records/fsync.
func BenchmarkWALAppend(b *testing.B) {
	for _, writers := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("writers-%d", writers), func(b *testing.B) {
			lg, err := store.Open(b.TempDir(), store.Options{SnapshotEvery: -1, MaxBatch: 64})
			if err != nil {
				b.Fatal(err)
			}
			defer lg.Close()
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						p := workload.ResourcePolicy(int(i), 4)
						if err := lg.Append(pap.Update{ID: p.EntityID(), Version: 1, Policy: p}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			st := lg.Stats()
			if st.Fsyncs > 0 {
				b.ReportMetric(float64(st.Appends)/float64(st.Fsyncs), "records/fsync")
			}
		})
	}
}

// BenchmarkRecovery measures cold restart (store.Open + Bootstrap into a
// fresh engine) against WAL length, with snapshots disabled (recovery
// replays the whole history) and enabled (recovery is bounded by the
// snapshot interval) — the restart half of the durability design.
func BenchmarkRecovery(b *testing.B) {
	for _, tc := range []struct {
		name   string
		writes int
		opts   store.Options
	}{
		{"wal-256/no-snapshot", 256, store.Options{SnapshotEvery: -1}},
		{"wal-2048/no-snapshot", 2048, store.Options{SnapshotEvery: -1}},
		{"wal-2048/snapshot-256", 2048, store.Options{SnapshotEvery: 256}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := b.TempDir()
			lg, err := store.Open(dir, tc.opts)
			if err != nil {
				b.Fatal(err)
			}
			s := pap.NewStore("bench")
			if err := lg.Bootstrap(s, nil, "root", policy.DenyOverrides); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < tc.writes; i++ {
				if _, err := s.Put(workload.ResourcePolicy(i%200, 4)); err != nil {
					b.Fatal(err)
				}
			}
			// Crash, not Close: a graceful close would compact the tail
			// into a snapshot, and this benchmark wants the crash shape
			// of the directory — Crash in the loop keeps that shape
			// identical across iterations too.
			if err := lg.Crash(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rl, err := store.Open(dir, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				rs := pap.NewStore("recovered")
				engine := pdp.New("recovered")
				if err := rl.Bootstrap(rs, engine, "root", policy.DenyOverrides); err != nil {
					b.Fatal(err)
				}
				st := rl.Stats()
				b.ReportMetric(float64(st.RecoveredSnapshot+st.RecoveredTail), "records")
				if err := rl.Crash(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE19_Durability(b *testing.B) { benchExperiment(b, "E19") }
func BenchmarkE20_Contention(b *testing.B) { benchExperiment(b, "E20") }

// parallelSeed hands each RunParallel goroutine a distinct starting offset
// into the shared request slice, so concurrent workers spread across cache
// shards instead of marching over the same keys in lockstep.
var parallelSeed atomic.Int64

// BenchmarkParallelDecide measures the lock-free decision hot path under
// b.RunParallel (run with -cpu 1,4,16). hit is the production
// configuration (target index + warmed decision cache): one snapshot load,
// one cache-shard lock, zero allocations per op, so throughput should
// scale with procs instead of serializing on an engine-wide mutex. miss
// ablates the cache, so every op runs the compiled decision program —
// the uncached evaluation path, also free of engine-wide locks.
// miss-interp additionally ablates compilation (index-only interpretation),
// the same-run baseline the compiled path is judged against.
func BenchmarkParallelDecide(b *testing.B) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	fixture := func(b *testing.B, mode string) (*pdp.Engine, []*policy.Request) {
		b.Helper()
		gen := workload.NewGenerator(workload.Config{Users: 100, Resources: 1000, Roles: 10, Seed: 7})
		opts := []pdp.Option{pdp.WithResolver(gen.Directory("idp")), pdp.WithTargetIndex()}
		switch mode {
		case "hit":
			opts = append(opts, pdp.WithDecisionCache(time.Hour, 1<<16))
		case "miss-interp":
			opts = append(opts, pdp.WithoutCompilation())
		}
		engine := pdp.New("parallel", opts...)
		if err := engine.SetRoot(gen.PolicyBase("base")); err != nil {
			b.Fatal(err)
		}
		return engine, gen.Requests(1024)
	}
	for _, mode := range []string{"hit", "miss", "miss-interp"} {
		b.Run(mode, func(b *testing.B) {
			engine, reqs := fixture(b, mode)
			for _, req := range reqs {
				engine.DecideAt(context.Background(), req, at) // warm cache, index and key memos
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(parallelSeed.Add(7919))
				for pb.Next() {
					engine.DecideAt(context.Background(), reqs[i%len(reqs)], at)
					i++
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
		})
	}
}

// missScaleFixtures caches the BenchmarkParallelMissScale engines per
// policy count: generating and compiling a 100k-policy base dwarfs the
// measurement, and -cpu variants re-enter the sub-benchmark body.
var missScaleFixtures sync.Map

type missScaleFixture struct {
	engines map[string]*pdp.Engine
	reqs    []*policy.Request
}

func missScaleFor(b *testing.B, n int) *missScaleFixture {
	b.Helper()
	if v, ok := missScaleFixtures.Load(n); ok {
		return v.(*missScaleFixture)
	}
	gen := workload.NewGenerator(workload.Config{Users: 100, Resources: n, Roles: 10, Seed: 7})
	root := gen.PolicyBase("base")
	resolver := pdp.WithResolver(gen.Directory("idp"))
	engines := map[string]*pdp.Engine{
		"compiled": pdp.New("miss-compiled", resolver),
		"indexed":  pdp.New("miss-indexed", resolver, pdp.WithoutCompilation(), pdp.WithTargetIndex()),
		"scan":     pdp.New("miss-scan", resolver, pdp.WithoutCompilation()),
	}
	for _, engine := range engines {
		if err := engine.SetRoot(root); err != nil {
			b.Fatal(err)
		}
	}
	f := &missScaleFixture{engines: engines, reqs: gen.Requests(1024)}
	missScaleFixtures.Store(n, f)
	return f
}

// BenchmarkParallelMissScale measures the uncached decision path against
// policy-base size, one sub-benchmark per evaluation path: the compiled
// decision program (production default), the PR 2 resource-id target index
// with the tree-walking interpreter, and the bare linear scan. The
// compiled-vs-indexed ratio at a given size is the payoff of compilation
// on the miss path; scan shows what both optimisations buy over naive
// evaluation.
func BenchmarkParallelMissScale(b *testing.B) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, n := range []int{1000, 10000, 100000} {
		for _, path := range []string{"compiled", "indexed", "scan"} {
			b.Run(fmt.Sprintf("policies=%d/path=%s", n, path), func(b *testing.B) {
				f := missScaleFor(b, n)
				engine, reqs := f.engines[path], f.reqs
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := int(parallelSeed.Add(7919))
					for pb.Next() {
						engine.DecideAt(context.Background(), reqs[i%len(reqs)], at)
						i++
					}
				})
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
			})
		}
	}
}

// BenchmarkParallelClusterDecide routes the parallel workload through a
// 4-shard production-configuration cluster router (run with -cpu 1,4,16):
// the router's read lock is shared and every engine below it is lock-free,
// so the fleet path should scale alongside the single engine.
func BenchmarkParallelClusterDecide(b *testing.B) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	router, reqs := clusterFixture(b, 4, fullConfig()...)
	for _, req := range reqs {
		router.DecideAt(context.Background(), req, at) // warm caches and indexes
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(parallelSeed.Add(7919))
		for pb.Next() {
			router.DecideAt(context.Background(), reqs[i%len(reqs)], at)
			i++
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}
