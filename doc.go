// Package repro is a reproduction of "Architecting Dependable Access
// Control Systems for Multi-Domain Computing Environments" (Machulak,
// Parkin, van Moorsel; DSN 2008 / Newcastle CS-TR-1156).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable examples under examples/; command-line tools under
// cmd/. The root package holds the benchmark harness (bench_test.go) that
// regenerates every experiment table recorded in EXPERIMENTS.md.
//
// Decision-making is layered to meet the paper's Section 3 scalability
// challenge at three scales: internal/pdp is the single evaluation engine
// (target index, decision cache, batch/scatter paths); internal/ha
// replicates an engine for dependability (failover and quorum ensembles);
// internal/cluster shards the policy base across many replicated engines
// behind one consistent-hash router, turning the decision point into a
// horizontally scalable fleet without changing the enforcement-point
// contract.
package repro
