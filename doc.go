// Package repro is a reproduction of "Architecting Dependable Access
// Control Systems for Multi-Domain Computing Environments" (Machulak,
// Parkin, van Moorsel; DSN 2008 / Newcastle CS-TR-1156).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable examples under examples/; command-line tools under
// cmd/. The root package holds the benchmark harness (bench_test.go) that
// regenerates every experiment table recorded in EXPERIMENTS.md.
package repro
