// Package repro is a reproduction of "Architecting Dependable Access
// Control Systems for Multi-Domain Computing Environments" (Machulak,
// Parkin, van Moorsel; DSN 2008 / Newcastle CS-TR-1156).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); runnable examples under examples/; command-line tools under
// cmd/. The root package holds the benchmark harness (bench_test.go) that
// regenerates every experiment table recorded in EXPERIMENTS.md.
//
// Decision-making is layered to meet the paper's Section 3 scalability
// challenge at three scales: internal/pdp is the single evaluation engine
// (target index, decision cache, batch/scatter paths); internal/ha
// replicates an engine for dependability (failover and quorum ensembles);
// internal/cluster shards the policy base across many replicated engines
// behind one consistent-hash router, turning the decision point into a
// horizontally scalable fleet without changing the enforcement-point
// contract. Within one engine the decision hot path is lock-free: the
// root/index/epoch triple is an immutable RCU snapshot behind an atomic
// pointer, the decision cache is striped into per-mutex shards keyed by
// the request's memoised key hash (a hit is one shard lock and zero
// allocations), and stats are padded atomic stripes aggregated on read —
// ensembles and the router add no per-decision critical section on top.
// Experiment E20 and the BenchmarkParallel* suite measure the resulting
// multi-core scaling against a serialized baseline.
//
// Policy administration is live (the paper's Section 3.2 manageability
// argument): a pap.Store change notifies watchers in commit order, each
// update carrying the changed policy as a self-contained delta, and the
// delta pipeline (pdp.Engine.ApplyUpdate, cluster.Router.ApplyUpdate)
// patches the one affected root child in place. Invalidation is targeted —
// only cached decisions for the resource keys the changed child constrains
// are dropped (catch-all children fall back to a full flush), and a
// cluster routes each delta to just the owning shard group, so the other
// N-1 shards' caches stay warm through policy churn. Any delta sequence
// yields decisions identical to a from-scratch rebuild; experiment E18 and
// BenchmarkPolicyChurn quantify the win over the rebuild pipeline.
//
// The policy base itself is durable (Section 3.3 dependability):
// internal/store backs the pap.Store with a CRC-framed, group-commit
// write-ahead log whose records are the same pap.Update deltas, plus
// periodic snapshots with WAL compaction. Writes are committed before
// they are visible or acknowledged; crash recovery loads the newest
// snapshot, truncates a torn tail (never applying a partial record), and
// replays the surviving tail through the delta pipeline above — so a
// pdpd restart, a new shard, or a rehydrated federation domain serves
// exactly the acknowledged pre-crash decisions. Experiment E19 and
// BenchmarkWALAppend/BenchmarkRecovery measure the write and restart
// paths.
//
// Every decision is context-bounded. The paper's architecture makes
// authorisation an autonomous service reached over a network, so each
// decision is an RPC that can hang; context.Context therefore threads
// through every layer of the pipeline — engine, enforcement points,
// ensembles, cluster scatter, federation flows and the wire transport.
// Deadline expiry or cancellation surfaces as Indeterminate carrying the
// cause, which deny-biased enforcement refuses: running out of time fails
// closed, never open, and never hangs. The remaining deadline budget
// travels in the envelope's signed header block (and as an HTTP header),
// so a downstream PDP arms the same deadline the caller is counting down;
// on the simulated network the budget bounds the call's virtual clock
// across every hop of a multi-hop flow. Attribute resolution is a live,
// cancelable part of evaluation: the ctx-aware policy.Resolver contract
// lets engines fetch missing attributes mid-evaluation through pip
// provider chains, with per-request memoisation (pip.RequestResolver) and
// concurrent-miss coalescing (pip.Cache), so requests need not arrive
// with attributes pre-populated. Experiment E21 measures the tail-latency
// bound deadlines buy under an injected slow shard.
//
// The running system is observable end to end. internal/trace gives every
// decision a trace: spans follow the request through enforcement, the
// remote decision client, the wire, the serving hop, engine evaluation
// and PIP fetches, and the trace context crosses domain boundaries inside
// the envelope — the IDs in the signed canonical block, the remote hop's
// spans returned unsigned and re-homed onto the caller's trace — so a
// multi-hop federated decision yields one stitched trace on
// /debug/traces. Retention is head-sampled with always-on capture of
// slow and Indeterminate decisions. internal/telemetry is a lock-free
// metrics registry (atomic counters, gauges, log-bucketed histograms)
// with Prometheus text exposition on /metrics; instrumented packages
// register pull-model collectors that read their existing atomic stats
// only at scrape time, so the decision hot path stays alloc-free.
// Experiment E22 quantifies tracing overhead against the cache-hit worst
// case, and cmd/benchjson renders benchmark output machine-readable.
//
// The system is exercised the way it will be operated. internal/loadgen
// drives a decision point open-loop — arrivals follow a schedule
// (Poisson, bursts, flash crowds) the server cannot push back on, with
// latency measured from each request's scheduled arrival instant and
// overload surfacing as counted shed rather than a slowed generator — and
// internal/chaos composes the repo's fault seams (replica crash/stall,
// partitions, kill -9 with WAL recovery, clock skew) into timed schedules
// whose invariants distinguish mid-fault fail-closed behaviour (tolerated)
// from lost acknowledged writes or changed decisions (violations).
// cmd/loadd runs both against a real pdpd cluster, emits benchfmt JSON
// (the committed BENCH_<PR>.json trajectory), and cmd/benchjson -compare
// gates CI on regressions against the committed baseline.
package repro
