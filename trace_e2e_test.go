package repro

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/rest"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestFederatedDecisionStitchesOneTrace is the end-to-end acceptance check
// for decision tracing: a REST request enforced in one domain, decided by
// a remote PDP daemon in another over the signed envelope wire, must yield
// ONE trace — retrievable from /debug/traces by the X-Trace-Id the caller
// received — whose spans cover both sides of the hop: the gateway's rest
// root, the client and wire send spans, and the remote daemon's serve and
// evaluation spans, stitched back through the reply envelope.
func TestFederatedDecisionStitchesOneTrace(t *testing.T) {
	// Domain B: a PDP daemon serving /decide. No local tracer: it joins
	// whatever trace arrives in the envelope header.
	engine := pdp.New("hospital-b-pdp")
	root := policy.NewPolicySet("b-root").Combining(policy.DenyOverrides).
		Add(policy.NewPolicy("records").
			Combining(policy.FirstApplicable).
			When(policy.MatchResource(policy.AttrResourceType, policy.String("patient-record"))).
			Rule(policy.Permit("doctors").When(policy.MatchRole("doctor")).Build()).
			Rule(policy.Deny("default").Build()).
			Build()).
		Build()
	if err := engine.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	pdpSrv := httptest.NewServer(wire.HTTPHandler(pdp.Handler(engine)))
	defer pdpSrv.Close()

	// Domain A: the REST gateway roots traces and decides remotely.
	tracer := trace.NewTracer(trace.Options{Sample: 1})
	router := rest.NewRouter()
	if err := router.Add("/records/{id}", "patient-record"); err != nil {
		t.Fatal(err)
	}
	mw := rest.NewMiddleware(router, pdp.NewClient(pdpSrv.URL, "gw.hospital-a", "pdp.hospital-b"),
		rest.HeaderSubject, rest.WithTracer(tracer))
	upstream := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"record":"data"}`))
	})
	gwSrv := httptest.NewServer(mw.Wrap(upstream))
	defer gwSrv.Close()
	debugSrv := httptest.NewServer(tracer.Handler())
	defer debugSrv.Close()

	req, err := http.NewRequest(http.MethodGet, gwSrv.URL+"/records/1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Subject", "alice")
	req.Header.Set("X-Roles", "doctor")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway status = %d, want 200", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("response carries no X-Trace-Id")
	}

	// The caller-quoted ID must resolve on /debug/traces to the one
	// stitched trace.
	dresp, err := http.Get(debugSrv.URL + "/?id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces?id=%s = %d, want 200", traceID, dresp.StatusCode)
	}
	var rec trace.Record
	if err := json.NewDecoder(dresp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.TraceID != traceID {
		t.Errorf("retained trace ID %s, want %s", rec.TraceID, traceID)
	}
	names := make(map[string]bool, len(rec.Spans))
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{
		"rest GET /records/1",  // gateway root (domain A)
		"pdp.remote",           // remote-decision client span (domain A)
		"wire.send pdp:decide", // envelope leaving domain A
		"serve pdp:decide",     // remote hop joining the trace (domain B)
		"pdp.eval",             // evaluation inside domain B's engine
	} {
		if !names[want] {
			t.Errorf("stitched trace missing span %q (have %d spans)", want, len(rec.Spans))
		}
	}
	if tracer.Stats().Kept != 1 {
		t.Errorf("kept %d traces, want exactly 1 (one request, one stitched trace)", tracer.Stats().Kept)
	}
}

// TestIndeterminateAlwaysCaptured pins the retention invariant at the
// system level: with head sampling fully off, a decision that comes back
// Indeterminate (here: the remote PDP is unreachable) must still be
// captured for /debug/traces — failures are exactly the traces an
// operator needs.
func TestIndeterminateAlwaysCaptured(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close() // unreachable endpoint

	tracer := trace.NewTracer(trace.Options{Sample: 0})
	router := rest.NewRouter()
	if err := router.Add("/records/{id}", "patient-record"); err != nil {
		t.Fatal(err)
	}
	client := pdp.NewClient(dead.URL, "gw", "pdp")
	mw := rest.NewMiddleware(router, client, rest.HeaderSubject, rest.WithTracer(tracer))
	srv := httptest.NewServer(mw.Wrap(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})))
	defer srv.Close()

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/records/1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Subject", "alice")
	req.Header.Set("X-Roles", "doctor")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unreachable PDP returned %d, want 403 (fail closed)", resp.StatusCode)
	}
	st := tracer.Stats()
	if st.KeptForced != 1 {
		t.Errorf("forced-keep count = %d, want 1 (Indeterminate must always be captured)", st.KeptForced)
	}
	if st.KeptSampled != 0 {
		t.Errorf("sampled-keep count = %d with sampling off", st.KeptSampled)
	}
}
