// Command acctl is the administrator's tool for working with policy files:
// validating them, evaluating ad-hoc requests against them, converting
// between the XML and JSON encodings, and running the static conflict
// analysis of Section 3.1.
//
// Usage:
//
//	acctl validate <policy.xml|policy.json>...
//	acctl evaluate <policy-file> subject=<id> resource=<id> action=<id> [cat/attr=value ...]
//	acctl convert  <policy-file>            # XML<->JSON to stdout
//	acctl conflicts <policy-file>...        # static modality-conflict report
//	acctl translate <policy.acl>            # local dialect -> standard XML
//	acctl fmt <policy.acl>                  # canonical dialect formatting
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/conflict"
	"repro/internal/dialect"
	"repro/internal/policy"
	"repro/internal/xacml"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "validate":
		err = validate(args[1:])
	case "evaluate":
		err = evaluate(args[1:])
	case "convert":
		err = convert(args[1:])
	case "conflicts":
		err = conflicts(args[1:])
	case "translate":
		err = translate(args[1:])
	case "fmt":
		err = fmtDialect(args[1:])
	default:
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "acctl:", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  acctl validate <policy-file>...
  acctl evaluate <policy-file> subject=<id> resource=<id> action=<id> [category/attr=value ...]
  acctl convert <policy-file>
  acctl conflicts <policy-file>...
  acctl translate <policy.acl>
  acctl fmt <policy.acl>`)
}

func loadPolicy(path string) (policy.Evaluable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(path, ".json"):
		return xacml.UnmarshalJSON(data)
	case strings.HasSuffix(path, ".acl"):
		return dialect.Translate(strings.TrimSuffix(path, ".acl"), policy.DenyOverrides, string(data))
	default:
		return xacml.UnmarshalXML(data)
	}
}

// fmtDialect reprints a dialect file in canonical form.
func fmtDialect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("fmt needs exactly one dialect file")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	doc, err := dialect.Parse(string(data))
	if err != nil {
		return err
	}
	fmt.Print(dialect.Format(doc))
	return nil
}

// translate converts a local-dialect policy file to the standard XML
// encoding, the convergence path of Section 3.1's heterogeneity discussion.
func translate(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("translate needs exactly one dialect file")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	doc, err := dialect.Parse(string(data))
	if err != nil {
		return err
	}
	pols, err := dialect.Compile(doc)
	if err != nil {
		return err
	}
	for _, p := range pols {
		out, err := xacml.MarshalXML(p)
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	}
	return nil
}

func validate(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("no policy files given")
	}
	for _, path := range paths {
		e, err := loadPolicy(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := e.Validate(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: ok (%s)\n", path, e.EntityID())
	}
	return nil
}

func evaluate(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("evaluate needs a policy file and attribute bindings")
	}
	e, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	req := policy.NewRequest()
	for _, binding := range args[1:] {
		key, value, ok := strings.Cut(binding, "=")
		if !ok {
			return fmt.Errorf("binding %q is not key=value", binding)
		}
		switch key {
		case "subject":
			req.Add(policy.CategorySubject, policy.AttrSubjectID, policy.String(value))
		case "resource":
			req.Add(policy.CategoryResource, policy.AttrResourceID, policy.String(value))
		case "action":
			req.Add(policy.CategoryAction, policy.AttrActionID, policy.String(value))
		default:
			catName, attr, ok := strings.Cut(key, "/")
			if !ok {
				return fmt.Errorf("binding %q: want subject|resource|action or category/attribute", key)
			}
			cat, err := policy.CategoryFromString(catName)
			if err != nil {
				return err
			}
			req.Add(cat, attr, policy.String(value))
		}
	}
	res := e.Evaluate(policy.NewContext(req))
	fmt.Printf("decision: %s\n", res.Decision)
	if res.By != "" {
		fmt.Printf("by:       %s\n", res.By)
	}
	for _, ob := range res.Obligations {
		fmt.Printf("obligation: %s %v\n", ob.ID, ob.Attributes)
	}
	if res.Err != nil {
		fmt.Printf("status:   %v\n", res.Err)
	}
	return nil
}

func convert(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("convert needs exactly one policy file")
	}
	e, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	var out []byte
	if strings.HasSuffix(args[0], ".json") {
		out, err = xacml.MarshalXML(e)
	} else {
		out, err = xacml.MarshalJSON(e)
	}
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func conflicts(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("no policy files given")
	}
	var all []*policy.Policy
	for _, path := range paths {
		e, err := loadPolicy(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, policy.CollectPolicies(e)...)
	}
	found := conflict.Analyze(all)
	if len(found) == 0 {
		fmt.Println("no modality conflicts")
		return nil
	}
	for _, c := range found {
		fmt.Println(c)
		winner, reason, err := conflict.PrecedenceStrategy{}.Resolve(c)
		if err != nil {
			return err
		}
		fmt.Printf("  resolution (deny-overrides): %s — %s\n", winner, reason)
	}
	fmt.Printf("%d conflicts found\n", len(found))
	return nil
}
