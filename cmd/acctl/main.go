// Command acctl is the administrator's tool for working with policy files:
// validating them, evaluating ad-hoc requests against them, converting
// between the XML and JSON encodings, and running the static analysis of
// Section 3.1 — the full lint pass (conflicts, shadowing, redundancy,
// dead attributes, combining dead zones) or the legacy conflict report.
//
// Usage:
//
//	acctl validate <policy.xml|policy.json>...
//	acctl evaluate <policy-file> subject=<id> resource=<id> action=<id> [cat/attr=value ...]
//	acctl convert  <policy-file>            # XML<->JSON to stdout
//	acctl lint [-json] [-root-combining=<alg>] <policy-file>...
//	acctl conflicts <policy-file>...        # legacy modality-conflict report
//	acctl translate <policy.acl>            # local dialect -> standard XML
//	acctl fmt <policy.acl>                  # canonical dialect formatting
//
// lint and conflicts are CI-friendly: exit 0 with a clean base, 1 when
// findings exist, 2 when a policy file cannot be loaded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/conflict"
	"repro/internal/dialect"
	"repro/internal/policy"
	"repro/internal/xacml"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "validate":
		err = validate(args[1:], stdout)
	case "evaluate":
		err = evaluate(args[1:], stdout)
	case "convert":
		err = convert(args[1:], stdout)
	case "lint":
		return lint(args[1:], stdout, stderr)
	case "conflicts":
		return conflicts(args[1:], stdout, stderr)
	case "translate":
		err = translate(args[1:], stdout)
	case "fmt":
		err = fmtDialect(args[1:], stdout)
	default:
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "acctl:", err)
		return 1
	}
	return 0
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, `usage:
  acctl validate <policy-file>...
  acctl evaluate <policy-file> subject=<id> resource=<id> action=<id> [category/attr=value ...]
  acctl convert <policy-file>
  acctl lint [-json] [-root-combining=<alg>] <policy-file>...
  acctl conflicts <policy-file>...
  acctl translate <policy.acl>
  acctl fmt <policy.acl>`)
}

func loadPolicy(path string) (policy.Evaluable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(path, ".json"):
		return xacml.UnmarshalJSON(data)
	case strings.HasSuffix(path, ".acl"):
		return dialect.Translate(strings.TrimSuffix(path, ".acl"), policy.DenyOverrides, string(data))
	default:
		return xacml.UnmarshalXML(data)
	}
}

// fmtDialect reprints a dialect file in canonical form.
func fmtDialect(args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("fmt needs exactly one dialect file")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	doc, err := dialect.Parse(string(data))
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, dialect.Format(doc))
	return nil
}

// translate converts a local-dialect policy file to the standard XML
// encoding, the convergence path of Section 3.1's heterogeneity discussion.
func translate(args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("translate needs exactly one dialect file")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	doc, err := dialect.Parse(string(data))
	if err != nil {
		return err
	}
	pols, err := dialect.Compile(doc)
	if err != nil {
		return err
	}
	for _, p := range pols {
		out, err := xacml.MarshalXML(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
	}
	return nil
}

func validate(paths []string, stdout io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("no policy files given")
	}
	for _, path := range paths {
		e, err := loadPolicy(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := e.Validate(); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(stdout, "%s: ok (%s)\n", path, e.EntityID())
	}
	return nil
}

func evaluate(args []string, stdout io.Writer) error {
	if len(args) < 2 {
		return fmt.Errorf("evaluate needs a policy file and attribute bindings")
	}
	e, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	req := policy.NewRequest()
	for _, binding := range args[1:] {
		key, value, ok := strings.Cut(binding, "=")
		if !ok {
			return fmt.Errorf("binding %q is not key=value", binding)
		}
		switch key {
		case "subject":
			req.Add(policy.CategorySubject, policy.AttrSubjectID, policy.String(value))
		case "resource":
			req.Add(policy.CategoryResource, policy.AttrResourceID, policy.String(value))
		case "action":
			req.Add(policy.CategoryAction, policy.AttrActionID, policy.String(value))
		default:
			catName, attr, ok := strings.Cut(key, "/")
			if !ok {
				return fmt.Errorf("binding %q: want subject|resource|action or category/attribute", key)
			}
			cat, err := policy.CategoryFromString(catName)
			if err != nil {
				return err
			}
			req.Add(cat, attr, policy.String(value))
		}
	}
	res := e.Evaluate(policy.NewContext(req))
	fmt.Fprintf(stdout, "decision: %s\n", res.Decision)
	if res.By != "" {
		fmt.Fprintf(stdout, "by:       %s\n", res.By)
	}
	for _, ob := range res.Obligations {
		fmt.Fprintf(stdout, "obligation: %s %v\n", ob.ID, ob.Attributes)
	}
	if res.Err != nil {
		fmt.Fprintf(stdout, "status:   %v\n", res.Err)
	}
	return nil
}

func convert(args []string, stdout io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("convert needs exactly one policy file")
	}
	e, err := loadPolicy(args[0])
	if err != nil {
		return err
	}
	var out []byte
	if strings.HasSuffix(args[0], ".json") {
		out, err = xacml.MarshalXML(e)
	} else {
		out, err = xacml.MarshalJSON(e)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(out))
	return nil
}

// loadAll loads and structurally validates every policy file.
func loadAll(paths []string) ([]policy.Evaluable, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no policy files given")
	}
	evs := make([]policy.Evaluable, 0, len(paths))
	for _, path := range paths {
		e, err := loadPolicy(path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		evs = append(evs, e)
	}
	return evs, nil
}

// lint runs the full static analysis over the given policy files as one
// base: each file is a root child, combined under -root-combining.
// Exit codes: 0 clean, 1 findings, 2 load or flag error.
func lint(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	rootAlg := fs.String("root-combining", policy.DenyOverrides.String(),
		"policy-combining algorithm of the assembled root")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	combining, err := policy.AlgorithmFromString(*rootAlg)
	if err != nil {
		fmt.Fprintln(stderr, "acctl:", err)
		return 2
	}
	evs, err := loadAll(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "acctl:", err)
		return 2
	}
	rep := analysis.Analyze(analysis.Config{RootCombining: combining}, evs...)
	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "acctl:", err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	} else {
		fmt.Fprint(stdout, rep.Text())
	}
	if rep.Clean() {
		return 0
	}
	return 1
}

// conflicts is the legacy pairwise modality-conflict report, kept for
// scripts that want only Section 3.1 conflicts with a resolution hint.
// Exit codes match lint: 0 clean, 1 conflicts found, 2 load error.
func conflicts(paths []string, stdout, stderr io.Writer) int {
	evs, err := loadAll(paths)
	if err != nil {
		fmt.Fprintln(stderr, "acctl:", err)
		return 2
	}
	var all []*policy.Policy
	for _, e := range evs {
		all = append(all, policy.CollectPolicies(e)...)
	}
	found := conflict.Analyze(all)
	if len(found) == 0 {
		fmt.Fprintln(stdout, "no modality conflicts")
		return 0
	}
	for _, c := range found {
		fmt.Fprintln(stdout, c)
		winner, reason, err := conflict.PrecedenceStrategy{}.Resolve(c)
		if err != nil {
			fmt.Fprintln(stderr, "acctl:", err)
			return 2
		}
		fmt.Fprintf(stdout, "  resolution (deny-overrides): %s — %s\n", winner, reason)
	}
	fmt.Fprintf(stdout, "%d conflicts found\n", len(found))
	return 1
}
