package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/xacml"
)

// writePolicy marshals the evaluable to XML in dir and returns its path.
func writePolicy(t *testing.T, dir, name string, ev policy.Evaluable) string {
	t.Helper()
	data, err := xacml.MarshalXML(ev)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func cleanPolicy(t *testing.T, dir string) string {
	return writePolicy(t, dir, "clean.xml", policy.NewPolicy("clean").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("lab-result")).
		Rule(policy.Permit("read").When(policy.MatchActionID("read")).Build()).
		Build())
}

// conflictingPair writes two files whose policies hold an actual
// cross-owner modality conflict on res-0.
func conflictingPair(t *testing.T, dir string) (string, string) {
	permits := writePolicy(t, dir, "permits.xml", policy.NewPolicy("a-permit").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("res-0")).
		Rule(policy.Permit("open").Build()).
		Build())
	denies := writePolicy(t, dir, "denies.xml", policy.NewPolicy("b-deny").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("res-0")).
		Rule(policy.Deny("shut").Build()).
		Build())
	return permits, denies
}

// TestLintExitCodes pins the CI contract: 0 clean, 1 findings, 2 when a
// file cannot be loaded or a flag is bad.
func TestLintExitCodes(t *testing.T) {
	dir := t.TempDir()
	clean := cleanPolicy(t, dir)
	permits, denies := conflictingPair(t, dir)

	t.Run("clean-base-exits-0", func(t *testing.T) {
		var out, errw bytes.Buffer
		if code := run([]string{"lint", clean}, &out, &errw); code != 0 {
			t.Fatalf("exit %d, stderr %q", code, errw.String())
		}
		if !strings.Contains(out.String(), "clean") {
			t.Fatalf("report %q does not say clean", out.String())
		}
	})

	t.Run("findings-exit-1", func(t *testing.T) {
		var out, errw bytes.Buffer
		if code := run([]string{"lint", permits, denies}, &out, &errw); code != 1 {
			t.Fatalf("exit %d, want 1; out %q", code, out.String())
		}
		if !strings.Contains(out.String(), "conflict") {
			t.Fatalf("report %q does not mention the conflict", out.String())
		}
	})

	t.Run("json-report-parses", func(t *testing.T) {
		var out, errw bytes.Buffer
		if code := run([]string{"lint", "-json", permits, denies}, &out, &errw); code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		var rep struct {
			Findings []struct {
				Kind     string `json:"kind"`
				Severity string `json:"severity"`
			} `json:"findings"`
		}
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatalf("output is not JSON: %v\n%s", err, out.String())
		}
		if len(rep.Findings) == 0 || rep.Findings[0].Kind != "conflict" || rep.Findings[0].Severity != "error" {
			t.Fatalf("findings = %+v, want a leading conflict error", rep.Findings)
		}
	})

	t.Run("missing-file-exits-2", func(t *testing.T) {
		var out, errw bytes.Buffer
		if code := run([]string{"lint", filepath.Join(dir, "ghost.xml")}, &out, &errw); code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
	})

	t.Run("bad-flag-exits-2", func(t *testing.T) {
		var out, errw bytes.Buffer
		if code := run([]string{"lint", "-root-combining=bogus", clean}, &out, &errw); code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
	})

	t.Run("no-args-exits-2", func(t *testing.T) {
		var out, errw bytes.Buffer
		if code := run([]string{"lint"}, &out, &errw); code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
	})
}

func TestConflictsExitCodes(t *testing.T) {
	dir := t.TempDir()
	clean := cleanPolicy(t, dir)
	permits, denies := conflictingPair(t, dir)

	var out, errw bytes.Buffer
	if code := run([]string{"conflicts", clean}, &out, &errw); code != 0 {
		t.Fatalf("clean exit %d, stderr %q", code, errw.String())
	}
	out.Reset()
	if code := run([]string{"conflicts", permits, denies}, &out, &errw); code != 1 {
		t.Fatalf("conflicting exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "resolution (deny-overrides)") {
		t.Fatalf("report %q lacks a resolution hint", out.String())
	}
	if code := run([]string{"conflicts", filepath.Join(dir, "ghost.xml")}, &out, &errw); code != 2 {
		t.Fatalf("missing-file exit %d, want 2", code)
	}
}

func TestUnknownSubcommandExits2(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"frobnicate"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run(nil, &out, &errw); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
}

// TestExamplePoliciesStayClean keeps the committed examples honest: CI
// lints them expecting exit 0, so catch drift here too.
func TestExamplePoliciesStayClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "policies", "*.xml"))
	if err != nil || len(paths) == 0 {
		t.Skipf("no example policies found: %v", err)
	}
	var out, errw bytes.Buffer
	if code := run(append([]string{"lint"}, paths...), &out, &errw); code != 0 {
		t.Fatalf("examples lint exit %d\n%s%s", code, out.String(), errw.String())
	}
}
