// Command experiments runs the full reproduction harness: every experiment
// of DESIGN.md §3 (one per paper figure plus one per quantified challenge
// claim) and prints its table. EXPERIMENTS.md records a run of this
// command.
//
// Usage:
//
//	experiments            # run everything
//	experiments E5 E9      # run selected experiments
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var selected []experiments.Experiment
	if len(args) == 0 {
		selected = experiments.All()
	} else {
		for _, id := range args {
			exp, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: E1..E%d\n", id, len(experiments.All()))
				return 2
			}
			selected = append(selected, exp)
		}
	}
	failed := 0
	for _, exp := range selected {
		fmt.Printf("### %s: %s\n\n", exp.ID, exp.Title)
		table, err := exp.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", exp.ID, err)
			failed++
			continue
		}
		fmt.Println(table.String())
	}
	if failed > 0 {
		return 1
	}
	return 0
}
