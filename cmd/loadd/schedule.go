package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/chaos"
	"repro/internal/loadgen"
	"repro/internal/policy"
	"repro/internal/workload"
)

// chaosClient drives a daemon's /admin/chaos endpoint: the remote flavour
// of the ha.Failable seams.
type chaosClient struct {
	endpoint string
	client   *http.Client
}

func newChaosClient(base string) *chaosClient {
	return &chaosClient{endpoint: base + "/admin/chaos", client: &http.Client{Timeout: 10 * time.Second}}
}

// topology returns shard names in listing order and the replica count.
func (c *chaosClient) topology(ctx context.Context) (shards []string, replicasPerShard int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpoint, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("chaos endpoint: %w (is the daemon running with -chaos and -shards > 1?)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, fmt.Errorf("chaos endpoint: %s: %s", resp.Status, body)
	}
	var state struct {
		Replicas []struct {
			Shard   string `json:"shard"`
			Replica int    `json:"replica"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		return nil, 0, err
	}
	seen := map[string]bool{}
	for _, r := range state.Replicas {
		if !seen[r.Shard] {
			seen[r.Shard] = true
			shards = append(shards, r.Shard)
		}
		if r.Replica+1 > replicasPerShard {
			replicasPerShard = r.Replica + 1
		}
	}
	if len(shards) == 0 {
		return nil, 0, fmt.Errorf("chaos endpoint reports no replicas")
	}
	return shards, replicasPerShard, nil
}

// inject posts one fault action.
func (c *chaosClient) inject(ctx context.Context, action, shard string, replica, stallMs int) error {
	body, err := json.Marshal(map[string]any{
		"action": action, "shard": shard, "replica": replica, "stall_ms": stallMs,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("chaos %s %s/%d: %s: %s", action, shard, replica, resp.Status, msg)
	}
	return nil
}

// action adapts one injection into a schedule Action.
func (c *chaosClient) action(action, shard string, replica int) chaos.Action {
	return func(ctx context.Context) error { return c.inject(ctx, action, shard, replica, 0) }
}

// shardWide applies one action to every replica of a shard — the
// "partition" fault: the whole shard group unreachable at once.
func (c *chaosClient) shardWide(action, shard string, replicas int) chaos.Action {
	return func(ctx context.Context) error {
		for r := 0; r < replicas; r++ {
			if err := c.inject(ctx, action, shard, r, 0); err != nil {
				return err
			}
		}
		return nil
	}
}

// scheduleConfig parameterises the built-in fault schedule.
type scheduleConfig struct {
	endpoint  string
	target    chaos.Decider
	admin     loadgen.HTTPAdmin
	workload  workload.Config
	proc      *daemon // nil when attached to an external daemon
	crash     time.Duration
	partition time.Duration
	kill      time.Duration
	heal      time.Duration
	recovery  time.Duration
}

// buildSchedule assembles the documented chaos run: snapshot the decision
// probes and seed the acknowledged-write ledger first, then schedule
// replica crash, shard partition and (for spawned daemons) a kill -9, each
// healing after cfg.heal, with the strict recovery checks as the final
// events. The tolerant invariants sweep after every event.
func buildSchedule(ctx context.Context, cfg scheduleConfig) (*chaos.Orchestrator, error) {
	inj := newChaosClient(cfg.endpoint)
	shards, replicasPerShard, err := inj.topology(ctx)
	if err != nil {
		return nil, err
	}

	probe := &chaos.DecisionProbe{Target: cfg.target, Requests: []*policy.Request{
		warmProbe(cfg.workload, 0), warmProbe(cfg.workload, 1),
		warmProbe(cfg.workload, 2), warmProbe(cfg.workload, 3),
	}}
	if err := probe.Snapshot(ctx); err != nil {
		return nil, fmt.Errorf("probe snapshot: %w", err)
	}

	// Acknowledged writes: sentinel policies written through the admin
	// plane before the faults start. The WAL contract says none of them
	// may ever disappear.
	acked := &chaos.AckedWrites{Target: cfg.target}
	for i := 0; i < 4; i++ {
		pol, req := sentinelPolicy(i)
		if err := cfg.admin.Put(ctx, pol); err != nil {
			return nil, fmt.Errorf("sentinel write %d: %w", i, err)
		}
		acked.Acknowledge(pol.EntityID(), req, policy.DecisionPermit)
	}

	orch := chaos.New()
	last := time.Duration(0)
	add := func(at time.Duration, name string, do chaos.Action) {
		orch.Add(chaos.Event{At: at, Name: name, Do: do})
		if at > last {
			last = at
		}
	}
	if cfg.crash > 0 {
		add(cfg.crash, fmt.Sprintf("crash %s/replica-0", shards[0]), inj.action("crash", shards[0], 0))
		add(cfg.crash+cfg.heal, fmt.Sprintf("revive %s/replica-0", shards[0]), inj.action("revive", shards[0], 0))
	}
	if cfg.partition > 0 {
		shard := shards[len(shards)-1]
		add(cfg.partition, fmt.Sprintf("partition shard %s (all %d replicas down)", shard, replicasPerShard),
			inj.shardWide("crash", shard, replicasPerShard))
		add(cfg.partition+cfg.heal, fmt.Sprintf("heal shard %s", shard),
			inj.shardWide("revive", shard, replicasPerShard))
	}
	if cfg.kill > 0 {
		if cfg.proc == nil {
			return nil, fmt.Errorf("-chaos-kill needs -spawn (cannot SIGKILL an external daemon); set -chaos-kill 0")
		}
		add(cfg.kill, "kill -9 pdpd", chaos.Kill9(cfg.proc))
		add(cfg.kill+cfg.heal, "restart pdpd (WAL recovery)", chaos.Restart(cfg.proc))
	}
	// Strict recovery checks after the last repair: decisions identical,
	// acknowledged writes provably in effect.
	verifyAt := last + cfg.heal
	add(verifyAt, "verify decisions recovered", chaos.Check(probe.Recovered(cfg.recovery)))
	add(verifyAt, "verify acked writes durable", chaos.Check(acked.Durable(cfg.recovery)))

	orch.Require(
		probe.Unchanged(),
		acked.Held(),
		chaos.FailClosed(cfg.target, warmProbe(cfg.workload, 4)),
	)
	return orch, nil
}
