// Command loadd is the open-loop load harness and chaos driver: it fires a
// catalogued scenario (internal/loadgen) at a real pdpd over HTTP — one it
// spawned itself (-spawn) or one already running (-addr) — optionally runs
// a timed fault schedule against it (internal/chaos), and emits the run as
// a machine-readable benchfmt document for the committed BENCH_<PR>.json
// perf trajectory.
//
// The chaos schedule composes three fault classes against a live cluster:
//
//	t=-chaos-crash      one replica of the first shard crashes
//	                    (/admin/chaos; the ensemble must fail over)
//	t=-chaos-partition  every replica of the second shard goes down —
//	                    the shard group is unreachable, decisions for its
//	                    resources fail closed until the heal
//	t=-chaos-kill       the spawned pdpd is killed with SIGKILL and
//	                    restarted; recovery must come from the WAL
//
// Each fault heals -chaos-heal later. Throughout, the harness sweeps the
// safety invariants (decisions never change, acknowledged writes never
// disappear, expired budgets always fail closed) and finishes with strict
// recovery checks. Violations, goodput below -min-goodput, or p99 above
// -max-p99 exit non-zero, so CI can gate on a live run.
//
// With -resilience the spawned pdpd arms its breaker/serve-stale layer, so
// the brownout scenario can prove degraded mode end to end: while the
// partition holds, warm keys answer served-stale (counted by the daemon and
// gated by -min-stale) instead of failing closed, and the harness reports
// server-side admission rejections (rejected) and degraded serves
// separately from its own queue shed.
//
// Usage:
//
//	loadd -spawn -pdpd-bin ./pdpd -scenario steady-zipf -duration 45s \
//	      -chaos -out BENCH_PR8.json -min-goodput 100 -max-p99 2s
//	loadd -spawn -pdpd-bin ./pdpd -scenario brownout -duration 20s \
//	      -resilience -chaos -chaos-crash 0 -chaos-kill 0 \
//	      -chaos-partition 5s -chaos-heal 8s -min-stale 1 -min-goodput 50
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/chaos"
	"repro/internal/loadgen"
	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/workload"
	"repro/internal/xacml"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entrypoint. Exit codes: 0 clean, 1 a gate failed
// (chaos invariant violation, goodput or p99 out of bounds), 2 usage or
// setup error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenarioName := fs.String("scenario", "steady-zipf", "catalog scenario to run (see internal/loadgen)")
	duration := fs.Duration("duration", 30*time.Second, "open-loop run length")
	rate := fs.Float64("rate", 0, "arrival rate override in requests/s (0 keeps the scenario default)")
	addr := fs.String("addr", "", "host:port of a running pdpd (mutually exclusive with -spawn)")
	spawn := fs.Bool("spawn", false, "spawn a pdpd cluster for the run (needs -pdpd-bin)")
	pdpdBin := fs.String("pdpd-bin", "", "pdpd binary to spawn")
	shards := fs.Int("shards", 2, "spawned cluster shard count")
	replicas := fs.Int("replicas", 2, "spawned cluster replicas per shard")
	dataDir := fs.String("data-dir", "", "spawned daemon WAL directory (default: fresh temp dir)")
	outPath := fs.String("out", "", "write (or merge into) a benchfmt JSON document")
	minGoodput := fs.Float64("min-goodput", 0, "fail (exit 1) when conclusive decisions/s fall below this")
	maxP99 := fs.Duration("max-p99", 0, "fail (exit 1) when p99 latency exceeds this")
	resilienceOn := fs.Bool("resilience", false, "spawn pdpd with the resilience layer armed (-breaker plus -stale-grace below); brownout runs need this")
	staleGraceFlag := fs.Duration("stale-grace", 30*time.Second, "degraded-mode staleness bound forwarded to the spawned pdpd (with -resilience)")
	minStale := fs.Int64("min-stale", 0, "fail (exit 1) when the daemon served fewer than this many stale decisions (repro_cluster_stale_served_total); proves degraded mode engaged during a brownout")
	chaosOn := fs.Bool("chaos", false, "run the fault schedule during the load run")
	chaosCrash := fs.Duration("chaos-crash", 10*time.Second, "replica-crash offset (0 disables)")
	chaosPartition := fs.Duration("chaos-partition", 20*time.Second, "shard-partition offset (0 disables)")
	chaosKill := fs.Duration("chaos-kill", 30*time.Second, "kill -9 offset (0 disables; needs -spawn)")
	chaosHeal := fs.Duration("chaos-heal", 5*time.Second, "how long each fault lasts before its repair")
	recoveryWindow := fs.Duration("recovery-window", 10*time.Second, "grace for the strict post-repair recovery checks")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintf(stderr, "loadd: %v\n", err)
		return 2
	}
	scenario, err := loadgen.Lookup(*scenarioName)
	if err != nil {
		return fail(err)
	}
	scenario = scenario.WithDuration(*duration).WithRate(*rate)
	if *spawn == (*addr != "") {
		return fail(fmt.Errorf("exactly one of -spawn or -addr is required"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var proc *daemon
	endpoint := "http://" + *addr
	if *spawn {
		proc, err = spawnDaemon(ctx, spawnConfig{
			bin: *pdpdBin, shards: *shards, replicas: *replicas,
			dataDir: *dataDir, chaos: *chaosOn, scenario: scenario, log: stderr,
			resilience: *resilienceOn, staleGrace: *staleGraceFlag,
		})
		if err != nil {
			return fail(err)
		}
		defer proc.Stop()
		endpoint = "http://" + proc.addr
		fmt.Fprintf(stdout, "loadd: pdpd up on %s (%d shards x %d replicas)\n", proc.addr, *shards, *replicas)
	}

	target := pdp.NewClient(endpoint+"/decide", "loadd", "pdpd")
	admin := loadgen.HTTPAdmin{Endpoint: endpoint + "/admin/policy"}
	driver, err := loadgen.New(scenario.Name, scenario.Config, target, admin)
	if err != nil {
		return fail(err)
	}

	var orch *chaos.Orchestrator
	if *chaosOn {
		orch, err = buildSchedule(ctx, scheduleConfig{
			endpoint: endpoint, target: target, admin: admin,
			workload: scenario.Config.Workload, proc: proc,
			crash: *chaosCrash, partition: *chaosPartition, kill: *chaosKill,
			heal: *chaosHeal, recovery: *recoveryWindow,
		})
		if err != nil {
			return fail(err)
		}
	}

	fmt.Fprintf(stdout, "loadd: %s for %v against %s\n", scenario.Name, *duration, endpoint)
	resCh := make(chan loadgen.Result, 1)
	go func() { resCh <- driver.Run(ctx) }()
	var chaosRep *chaos.Report
	if orch != nil {
		chaosRep = orch.Run(ctx)
	}
	res := <-resCh

	fmt.Fprintln(stdout, res.String())
	if chaosRep != nil {
		fmt.Fprintln(stdout, chaosRep.String())
	}
	if *outPath != "" {
		if err := writeDoc(*outPath, res.Benchmark()); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "loadd: wrote %s\n", *outPath)
	}

	failed := false
	if ctx.Err() != nil {
		fmt.Fprintln(stderr, "loadd: FAIL: interrupted before the run completed")
		failed = true
	}
	if chaosRep != nil && !chaosRep.Ok() {
		fmt.Fprintln(stderr, "loadd: FAIL: chaos invariants violated")
		failed = true
	}
	if *minGoodput > 0 && res.GoodputPerSec() < *minGoodput {
		fmt.Fprintf(stderr, "loadd: FAIL: goodput %.1f/s below floor %.1f/s\n", res.GoodputPerSec(), *minGoodput)
		failed = true
	}
	if *maxP99 > 0 && res.Latency.Quantile(0.99) > *maxP99 {
		fmt.Fprintf(stderr, "loadd: FAIL: p99 %v above ceiling %v\n", res.Latency.Quantile(0.99), *maxP99)
		failed = true
	}
	if *minStale > 0 {
		// The degraded-mode proof: the daemon itself must report having
		// served stale decisions, not just the harness having survived.
		served, err := scrapeCounter(ctx, endpoint+"/metrics", "repro_cluster_stale_served_total")
		switch {
		case err != nil:
			fmt.Fprintf(stderr, "loadd: FAIL: stale-served scrape: %v\n", err)
			failed = true
		case served < *minStale:
			fmt.Fprintf(stderr, "loadd: FAIL: %d stale decisions served, floor is %d (degraded mode never engaged?)\n", served, *minStale)
			failed = true
		default:
			fmt.Fprintf(stdout, "loadd: degraded mode served %d stale decisions (floor %d)\n", served, *minStale)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// writeDoc merges one benchmark entry into the benchfmt document at path:
// an existing document keeps its other entries (same-name entries are
// replaced), so a harness run and a `benchjson` conversion of `go test
// -bench` output can share one committed BENCH_<PR>.json.
func writeDoc(path string, b benchfmt.Benchmark) error {
	doc := &benchfmt.Doc{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		Pkg:    "repro/cmd/loadd",
		CPU:    fmt.Sprintf("%d logical CPUs", runtime.NumCPU()),
	}
	if data, err := os.ReadFile(path); err == nil {
		if existing, err := benchfmt.Read(bytes.NewReader(data)); err == nil {
			existing.Benchmarks = deleteEntry(existing.Benchmarks, b.Name)
			doc = existing
		}
	}
	doc.Benchmarks = append(doc.Benchmarks, b)
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func deleteEntry(entries []benchfmt.Benchmark, name string) []benchfmt.Benchmark {
	out := entries[:0]
	for _, e := range entries {
		if e.Name != name {
			out = append(out, e)
		}
	}
	return out
}

// spawnConfig parameterises the pdpd the harness starts for itself.
type spawnConfig struct {
	bin        string
	shards     int
	replicas   int
	dataDir    string
	chaos      bool
	resilience bool
	staleGrace time.Duration
	scenario   loadgen.Scenario
	log        io.Writer
}

// spawnDaemon materialises the scenario's policy base (and, for cold
// scenarios, its subject directory) on disk and starts the real pdpd over
// them — the same artifacts an operator would deploy.
func spawnDaemon(ctx context.Context, cfg spawnConfig) (*daemon, error) {
	if cfg.bin == "" {
		return nil, fmt.Errorf("-spawn needs -pdpd-bin")
	}
	workDir, err := os.MkdirTemp("", "loadd-*")
	if err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(cfg.scenario.Config.Workload)
	seed, err := xacml.MarshalJSON(gen.PolicyBase("loadd-root"))
	if err != nil {
		return nil, err
	}
	seedPath := filepath.Join(workDir, "seed.json")
	if err := os.WriteFile(seedPath, seed, 0o644); err != nil {
		return nil, err
	}
	if cfg.dataDir == "" {
		cfg.dataDir = filepath.Join(workDir, "data")
	}
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	args := []string{
		"-policy", seedPath,
		"-addr", addr,
		"-data-dir", cfg.dataDir,
		"-shards", fmt.Sprint(cfg.shards),
		"-replicas", fmt.Sprint(cfg.replicas),
		"-index",
		"-cache", "30s",
	}
	if cfg.chaos {
		args = append(args, "-chaos")
	}
	if cfg.resilience {
		args = append(args, "-breaker", "-stale-grace", cfg.staleGrace.String())
	}
	if cfg.scenario.Config.Cold {
		subjectsPath := filepath.Join(workDir, "subjects.json")
		if err := writeSubjects(subjectsPath, cfg.scenario.Config.Workload); err != nil {
			return nil, err
		}
		args = append(args, "-subjects", subjectsPath)
	}
	proc := &daemon{bin: cfg.bin, args: args, addr: addr, log: cfg.log}
	if err := proc.Start(ctx); err != nil {
		return nil, err
	}
	return proc, nil
}

// writeSubjects renders the workload's subject population in pdpd's
// -subjects format, so cold requests resolve through the daemon's PIP
// exactly as warm ones carry their attributes inline.
func writeSubjects(path string, wcfg workload.Config) error {
	type subject struct {
		ID    string   `json:"id"`
		Roles []string `json:"roles"`
	}
	roles := wcfg.Roles
	if roles <= 0 {
		roles = 1
	}
	subjects := make([]subject, wcfg.Users)
	for i := range subjects {
		subjects[i] = subject{ID: workload.UserID(i), Roles: []string{workload.RoleID(i % roles)}}
	}
	data, err := json.Marshal(subjects)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// warmProbe is a request the workload base permits: role r reads resource
// r, which it owns (resource i is owned by role i mod Roles).
func warmProbe(wcfg workload.Config, i int) *policy.Request {
	roles := wcfg.Roles
	if roles <= 0 {
		roles = 1
	}
	role := i % roles
	return policy.NewAccessRequest(workload.UserID(i), workload.ResourceID(role), "read").
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String(workload.RoleID(role)))
}

// sentinelPolicy is an acknowledged-write probe policy on a resource
// outside the workload's space, so churn rewrites never touch it.
func sentinelPolicy(i int) (*policy.Policy, *policy.Request) {
	res := fmt.Sprintf("loadd-acked-res-%d", i)
	pol := policy.NewPolicy(fmt.Sprintf("loadd-acked-%d", i)).
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID(res)).
		Rule(policy.Permit("allow-read").When(policy.MatchActionID("read")).Build()).
		Rule(policy.Deny("default").Build()).
		Build()
	return pol, policy.NewAccessRequest("loadd-auditor", res, "read")
}
