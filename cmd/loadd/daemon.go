package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// daemon is a spawned pdpd under the harness's control: it implements
// chaos.Process, so the kill-9/WAL-recovery event is a real SIGKILL of a
// real process, not a simulation.
type daemon struct {
	bin  string
	args []string
	addr string
	log  io.Writer
	cmd  *exec.Cmd
}

// Start launches the daemon and blocks until /healthz answers.
func (d *daemon) Start(ctx context.Context) error {
	cmd := exec.Command(d.bin, d.args...)
	cmd.Stdout, cmd.Stderr = d.log, d.log
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", d.bin, err)
	}
	d.cmd = cmd
	if err := waitHealthy(ctx, d.addr, 20*time.Second); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return err
	}
	return nil
}

// Kill implements chaos.Process: SIGKILL, no shutdown hook runs — whatever
// survives must come out of the WAL on Restart.
func (d *daemon) Kill() error {
	if d.cmd == nil || d.cmd.Process == nil {
		return fmt.Errorf("daemon not running")
	}
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	_ = d.cmd.Wait() // reap; exit status is the signal, not an error here
	d.cmd = nil
	return nil
}

// Restart implements chaos.Process: relaunch on the same address and data
// directory and wait until it serves again.
func (d *daemon) Restart(ctx context.Context) error {
	if d.cmd != nil {
		return fmt.Errorf("daemon already running")
	}
	return d.Start(ctx)
}

// Stop shuts the daemon down at the end of the run: SIGTERM for the
// graceful path, SIGKILL if it lingers.
func (d *daemon) Stop() {
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		_ = d.cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		_ = d.cmd.Process.Kill()
		<-done
	}
	d.cmd = nil
}

// freeAddr reserves a loopback port for the spawned daemon.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// scrapeCounter fetches a /metrics exposition and sums every series of the
// named metric (label variants included), rounding to a whole count. Used
// by the -min-stale gate to prove degraded mode engaged on the daemon side.
func scrapeCounter(ctx context.Context, url, name string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0, err
	}
	var total float64
	found := false
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a different metric sharing the prefix
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		total += v
		found = true
	}
	if !found {
		return 0, fmt.Errorf("metric %s not found at %s", name, url)
	}
	return int64(math.Round(total)), nil
}

// waitHealthy polls /healthz until it answers 200 or the timeout expires.
func waitHealthy(ctx context.Context, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) && ctx.Err() == nil {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("pdpd on %s never became healthy", addr)
}
