package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-scenario", "no-such-scenario", "-addr", "127.0.0.1:1"},
		{},                         // neither -addr nor -spawn
		{"-spawn", "-addr", "x:1"}, // both
		{"-spawn"},                 // spawn without -pdpd-bin
		{"-addr", "127.0.0.1:1", "-chaos", "-chaos-kill", "1s", "-chaos-crash", "0", "-chaos-partition", "0"},
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestGoodputGateFailsAgainstDeadTarget: an unreachable PDP fails every
// decision closed, so the goodput floor must trip (exit 1) — the same gate
// CI relies on, exercised cheaply.
func TestGoodputGateFailsAgainstDeadTarget(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-addr", "127.0.0.1:1", // reserved port: connection refused
		"-scenario", "steady-zipf",
		"-duration", "200ms",
		"-rate", "500",
		"-min-goodput", "1",
	)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "goodput") {
		t.Fatalf("gate failure not reported: %s", stderr)
	}
}

// TestEndToEndChaosRunAgainstRealDaemon is the acceptance run: build the
// real pdpd, spawn a 2x2 cluster, drive the steady-zipf scenario open-loop
// while the compressed chaos schedule crashes a replica, partitions a
// shard, kill -9s the daemon and recovers it through the WAL — then
// require a clean exit, held invariants, and a valid benchfmt document.
func TestEndToEndChaosRunAgainstRealDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns the real daemon")
	}
	workDir := t.TempDir()
	bin := filepath.Join(workDir, "pdpd")
	build := exec.Command("go", "build", "-o", bin, "../pdpd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ../pdpd: %v\n%s", err, out)
	}
	outPath := filepath.Join(workDir, "bench.json")

	code, stdout, stderr := runCLI(t,
		"-spawn", "-pdpd-bin", bin,
		"-shards", "2", "-replicas", "2",
		"-scenario", "steady-zipf",
		"-duration", "1500ms",
		"-rate", "400",
		"-chaos",
		"-chaos-crash", "200ms",
		"-chaos-partition", "500ms",
		"-chaos-kill", "800ms",
		"-chaos-heal", "250ms",
		"-recovery-window", "10s",
		"-out", outPath,
		"-min-goodput", "10",
	)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{"crash", "partition", "kill -9 pdpd", "restart pdpd (WAL recovery)", "invariants: all held"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("chaos report missing %q:\n%s", want, stdout)
		}
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := benchfmt.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("emitted document unreadable: %v", err)
	}
	entry := doc.Find("Loadgen/steady-zipf")
	if entry == nil {
		t.Fatalf("document has no Loadgen/steady-zipf entry: %+v", doc)
	}
	if entry.Metrics["goodput/s"] <= 0 {
		t.Fatalf("zero goodput recorded: %+v", entry.Metrics)
	}
	if entry.Metrics["p99-ns/op"] <= 0 {
		t.Fatalf("no latency recorded: %+v", entry.Metrics)
	}

	// The merge path: writing a second entry into the same file must keep
	// the first.
	if err := writeDoc(outPath, benchfmt.Benchmark{Name: "Loadgen/other", Runs: 1,
		Metrics: map[string]float64{"goodput/s": 1}}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err = benchfmt.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Find("Loadgen/steady-zipf") == nil || doc.Find("Loadgen/other") == nil {
		t.Fatalf("merge dropped an entry: %+v", doc.Benchmarks)
	}
}
