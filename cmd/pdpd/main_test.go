package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/xacml"
)

func testBase(resources int) *policy.PolicySet {
	b := policy.NewPolicySet("base").Combining(policy.DenyOverrides)
	for i := 0; i < resources; i++ {
		res := fmt.Sprintf("res-%d", i)
		b.Add(policy.NewPolicy("pol-" + res).
			Combining(policy.FirstApplicable).
			When(policy.MatchResourceID(res)).
			Rule(policy.Permit("allow").When(policy.MatchActionID("read")).Build()).
			Rule(policy.Deny("default").Build()).
			Build())
	}
	return b.Build()
}

// TestAdminPreservesRootTarget pins root-level semantics across the
// administration pipeline: a file root carrying its own target (and
// obligations) must keep gating applicability after the store reassembles
// the root, and across live updates.
func TestAdminPreservesRootTarget(t *testing.T) {
	point, _, err := buildDecisionPoint(false, 0, 1, 1, "failover", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Root target admits only res-0: requests for other resources must
	// stay NotApplicable even though a child for res-1 exists.
	root := policy.NewPolicySet("gated").
		Combining(policy.DenyOverrides).
		When(policy.MatchResourceID("res-0")).
		Add(testBase(2).Children[0]).
		Add(testBase(2).Children[1]).
		Build()
	adm, err := newAdmin(point, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	outside := policy.NewAccessRequest("u", "res-1", "read")
	if got := point.Decide(context.Background(), outside); got.Decision != policy.DecisionNotApplicable {
		t.Fatalf("out-of-target decision = %v, want not-applicable (root target dropped?)", got.Decision)
	}
	if got := point.Decide(context.Background(), policy.NewAccessRequest("u", "res-0", "read")); got.Decision != policy.DecisionPermit {
		t.Fatalf("in-target decision = %v, want permit", got.Decision)
	}
	// The delta path preserves the root target too.
	body, err := xacml.MarshalJSON(testBase(2).Children[1])
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	adm.handlePolicy(rec, httptest.NewRequest(http.MethodPost, "/admin/policy", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST = %d: %s", rec.Code, rec.Body)
	}
	if got := point.Decide(context.Background(), outside); got.Decision != policy.DecisionNotApplicable {
		t.Fatalf("out-of-target decision after update = %v, want not-applicable", got.Decision)
	}
}

// TestAdminLiveUpdates drives the daemon's live-administration pipeline in
// both deployment modes: policies posted to /admin/policy change decisions
// without a restart, deletes revoke, and updates flow through the delta
// path rather than a rebuild.
func TestAdminLiveUpdates(t *testing.T) {
	for _, tc := range []struct {
		name             string
		shards, replicas int
	}{
		{"single-engine", 1, 1},
		{"4-shard-cluster", 4, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			point, _, err := buildDecisionPoint(true, time.Hour, tc.shards, tc.replicas, "failover", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			adm, err := newAdmin(point, testBase(4), nil)
			if err != nil {
				t.Fatal(err)
			}
			req := policy.NewAccessRequest("u", "res-1", "write")
			if got := point.Decide(context.Background(), req); got.Decision != policy.DecisionDeny {
				t.Fatalf("seed decision = %v, want deny", got.Decision)
			}

			// POST a replacement permitting write on res-1.
			updated := policy.NewPolicy("pol-res-1").
				Combining(policy.FirstApplicable).
				When(policy.MatchResourceID("res-1")).
				Rule(policy.Permit("allow").When(policy.MatchActionID("write")).Build()).
				Rule(policy.Deny("default").Build()).
				Build()
			body, err := xacml.MarshalJSON(updated)
			if err != nil {
				t.Fatal(err)
			}
			rec := httptest.NewRecorder()
			adm.handlePolicy(rec, httptest.NewRequest(http.MethodPost, "/admin/policy", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				t.Fatalf("POST = %d: %s", rec.Code, rec.Body)
			}
			if got := point.Decide(context.Background(), req); got.Decision != policy.DecisionPermit {
				t.Fatalf("decision after POST = %v, want permit", got.Decision)
			}

			// DELETE revokes live.
			rec = httptest.NewRecorder()
			adm.handlePolicy(rec, httptest.NewRequest(http.MethodDelete, "/admin/policy?id=pol-res-1", nil))
			if rec.Code != http.StatusNoContent {
				t.Fatalf("DELETE = %d: %s", rec.Code, rec.Body)
			}
			if got := point.Decide(context.Background(), req); got.Decision != policy.DecisionNotApplicable {
				t.Fatalf("decision after DELETE = %v, want not-applicable", got.Decision)
			}
			rec = httptest.NewRecorder()
			adm.handlePolicy(rec, httptest.NewRequest(http.MethodDelete, "/admin/policy?id=pol-res-1", nil))
			if rec.Code != http.StatusNotFound {
				t.Fatalf("second DELETE = %d, want 404", rec.Code)
			}

			// Invalid documents are refused without touching the point.
			rec = httptest.NewRecorder()
			adm.handlePolicy(rec, httptest.NewRequest(http.MethodPost, "/admin/policy", bytes.NewReader([]byte("{not json"))))
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("bad body = %d, want 400", rec.Code)
			}
			if adm.refreshErrs.Load() != 0 {
				t.Fatalf("refresh errors = %d, want 0", adm.refreshErrs.Load())
			}
		})
	}
}
