package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/xacml"
)

// testAdmin builds an admin the way main() does, with an in-memory store
// and the given lint mode.
func testAdmin(t *testing.T, point decisionPoint, root policy.Evaluable, mode analysis.Mode) *admin {
	t.Helper()
	adm, err := newAdmin(point, root, nil, mode, trace.NewTracer(trace.Options{}), audit.NewLog(64))
	if err != nil {
		t.Fatal(err)
	}
	return adm
}

func testBase(resources int) *policy.PolicySet {
	b := policy.NewPolicySet("base").Combining(policy.DenyOverrides)
	for i := 0; i < resources; i++ {
		res := fmt.Sprintf("res-%d", i)
		b.Add(policy.NewPolicy("pol-" + res).
			Combining(policy.FirstApplicable).
			When(policy.MatchResourceID(res)).
			Rule(policy.Permit("allow").When(policy.MatchActionID("read")).Build()).
			Rule(policy.Deny("default").Build()).
			Build())
	}
	return b.Build()
}

// TestAdminPreservesRootTarget pins root-level semantics across the
// administration pipeline: a file root carrying its own target (and
// obligations) must keep gating applicability after the store reassembles
// the root, and across live updates.
func TestAdminPreservesRootTarget(t *testing.T) {
	point, _, _, err := buildDecisionPoint(false, 0, 1, 1, "failover", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Root target admits only res-0: requests for other resources must
	// stay NotApplicable even though a child for res-1 exists.
	root := policy.NewPolicySet("gated").
		Combining(policy.DenyOverrides).
		When(policy.MatchResourceID("res-0")).
		Add(testBase(2).Children[0]).
		Add(testBase(2).Children[1]).
		Build()
	adm := testAdmin(t, point, root, analysis.ModeWarn)
	outside := policy.NewAccessRequest("u", "res-1", "read")
	if got := point.Decide(context.Background(), outside); got.Decision != policy.DecisionNotApplicable {
		t.Fatalf("out-of-target decision = %v, want not-applicable (root target dropped?)", got.Decision)
	}
	if got := point.Decide(context.Background(), policy.NewAccessRequest("u", "res-0", "read")); got.Decision != policy.DecisionPermit {
		t.Fatalf("in-target decision = %v, want permit", got.Decision)
	}
	// The delta path preserves the root target too.
	body, err := xacml.MarshalJSON(testBase(2).Children[1])
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	adm.handlePolicy(rec, httptest.NewRequest(http.MethodPost, "/admin/policy", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST = %d: %s", rec.Code, rec.Body)
	}
	if got := point.Decide(context.Background(), outside); got.Decision != policy.DecisionNotApplicable {
		t.Fatalf("out-of-target decision after update = %v, want not-applicable", got.Decision)
	}
}

// TestAdminPolicyLintGate drives the static-analysis gate on the admin
// plane: strict mode rejects a write introducing an actual cross-policy
// conflict with 409 and the finding in the response body, leaving the
// store and the decision point untouched; warn mode accepts the same
// write but still reports the findings.
func TestAdminPolicyLintGate(t *testing.T) {
	// Unconditionally permits every action on res-0 — an actual modality
	// conflict with pol-res-0's unconditional deny "default" rule.
	clashing := policy.NewPolicy("rogue").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("res-0")).
		Rule(policy.Permit("open-door").Build()).
		Build()
	body, err := xacml.MarshalJSON(clashing)
	if err != nil {
		t.Fatal(err)
	}

	type wireFinding struct {
		Kind     string `json:"kind"`
		Severity string `json:"severity"`
		Actual   bool   `json:"actual"`
		Detail   string `json:"detail"`
	}
	type wireResult struct {
		ID       string        `json:"id"`
		Version  int           `json:"version"`
		Error    string        `json:"error"`
		Findings []wireFinding `json:"findings"`
		TraceID  string        `json:"trace_id"`
	}
	findConflict := func(t *testing.T, findings []wireFinding) wireFinding {
		t.Helper()
		for _, f := range findings {
			if f.Kind == "conflict" && f.Actual {
				return f
			}
		}
		t.Fatalf("no actual conflict finding in %+v", findings)
		return wireFinding{}
	}

	t.Run("strict-rejects", func(t *testing.T) {
		point, _, _, err := buildDecisionPoint(false, 0, 1, 1, "failover", nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		adm := testAdmin(t, point, testBase(2), analysis.ModeStrict)
		before := point.Decide(context.Background(), policy.NewAccessRequest("u", "res-0", "delete"))

		rec := httptest.NewRecorder()
		adm.handlePolicy(rec, httptest.NewRequest(http.MethodPost, "/admin/policy", bytes.NewReader(body)))
		if rec.Code != http.StatusConflict {
			t.Fatalf("strict POST = %d, want 409: %s", rec.Code, rec.Body)
		}
		var res wireResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatalf("response body: %v", err)
		}
		if res.Error == "" {
			t.Fatalf("rejection carries no error: %+v", res)
		}
		if f := findConflict(t, res.Findings); f.Severity != "error" {
			t.Fatalf("conflict severity = %s, want error", f.Severity)
		}
		if res.TraceID == "" {
			t.Fatal("rejection is not stamped with a trace ID")
		}
		// Fail-closed: nothing stored, nothing visible, decision unchanged.
		if got := adm.store.History("rogue"); got != 0 {
			t.Fatalf("rejected policy has %d stored versions, want 0", got)
		}
		after := point.Decide(context.Background(), policy.NewAccessRequest("u", "res-0", "delete"))
		if after.Decision != before.Decision {
			t.Fatalf("decision changed across rejected write: %v -> %v", before.Decision, after.Decision)
		}
		if got := adm.gate.Stats().Rejections; got != 1 {
			t.Fatalf("gate rejections = %d, want 1", got)
		}
		if events := adm.auditLog.Select(audit.Query{}); len(events) == 0 {
			t.Fatal("rejection left no audit event")
		}
	})

	t.Run("warn-reports", func(t *testing.T) {
		point, _, _, err := buildDecisionPoint(false, 0, 1, 1, "failover", nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		adm := testAdmin(t, point, testBase(2), analysis.ModeWarn)
		rec := httptest.NewRecorder()
		adm.handlePolicy(rec, httptest.NewRequest(http.MethodPost, "/admin/policy", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("warn POST = %d, want 200: %s", rec.Code, rec.Body)
		}
		var res wireResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatalf("response body: %v", err)
		}
		if res.Version != 1 {
			t.Fatalf("version = %d, want 1", res.Version)
		}
		findConflict(t, res.Findings)

		// GET serves the incrementally-maintained whole-base report.
		rec = httptest.NewRecorder()
		adm.handlePolicy(rec, httptest.NewRequest(http.MethodGet, "/admin/policy", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET = %d: %s", rec.Code, rec.Body)
		}
		var rep struct {
			Mode     string        `json:"mode"`
			Findings []wireFinding `json:"findings"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Mode != "warn" {
			t.Fatalf("mode = %q, want warn", rep.Mode)
		}
		findConflict(t, rep.Findings)
	})
}

// TestAdminLiveUpdates drives the daemon's live-administration pipeline in
// both deployment modes: policies posted to /admin/policy change decisions
// without a restart, deletes revoke, and updates flow through the delta
// path rather than a rebuild.
func TestAdminLiveUpdates(t *testing.T) {
	for _, tc := range []struct {
		name             string
		shards, replicas int
	}{
		{"single-engine", 1, 1},
		{"4-shard-cluster", 4, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			point, _, _, err := buildDecisionPoint(true, time.Hour, tc.shards, tc.replicas, "failover", nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			adm := testAdmin(t, point, testBase(4), analysis.ModeWarn)
			req := policy.NewAccessRequest("u", "res-1", "write")
			if got := point.Decide(context.Background(), req); got.Decision != policy.DecisionDeny {
				t.Fatalf("seed decision = %v, want deny", got.Decision)
			}

			// POST a replacement permitting write on res-1.
			updated := policy.NewPolicy("pol-res-1").
				Combining(policy.FirstApplicable).
				When(policy.MatchResourceID("res-1")).
				Rule(policy.Permit("allow").When(policy.MatchActionID("write")).Build()).
				Rule(policy.Deny("default").Build()).
				Build()
			body, err := xacml.MarshalJSON(updated)
			if err != nil {
				t.Fatal(err)
			}
			rec := httptest.NewRecorder()
			adm.handlePolicy(rec, httptest.NewRequest(http.MethodPost, "/admin/policy", bytes.NewReader(body)))
			if rec.Code != http.StatusOK {
				t.Fatalf("POST = %d: %s", rec.Code, rec.Body)
			}
			if got := point.Decide(context.Background(), req); got.Decision != policy.DecisionPermit {
				t.Fatalf("decision after POST = %v, want permit", got.Decision)
			}

			// DELETE revokes live.
			rec = httptest.NewRecorder()
			adm.handlePolicy(rec, httptest.NewRequest(http.MethodDelete, "/admin/policy?id=pol-res-1", nil))
			if rec.Code != http.StatusNoContent {
				t.Fatalf("DELETE = %d: %s", rec.Code, rec.Body)
			}
			if got := point.Decide(context.Background(), req); got.Decision != policy.DecisionNotApplicable {
				t.Fatalf("decision after DELETE = %v, want not-applicable", got.Decision)
			}
			rec = httptest.NewRecorder()
			adm.handlePolicy(rec, httptest.NewRequest(http.MethodDelete, "/admin/policy?id=pol-res-1", nil))
			if rec.Code != http.StatusNotFound {
				t.Fatalf("second DELETE = %d, want 404", rec.Code)
			}

			// Invalid documents are refused without touching the point.
			rec = httptest.NewRecorder()
			adm.handlePolicy(rec, httptest.NewRequest(http.MethodPost, "/admin/policy", bytes.NewReader([]byte("{not json"))))
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("bad body = %d, want 400", rec.Code)
			}
			if adm.refreshErrs.Load() != 0 {
				t.Fatalf("refresh errors = %d, want 0", adm.refreshErrs.Load())
			}
		})
	}
}
