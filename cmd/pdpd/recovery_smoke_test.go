package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/xacml"
)

// TestDaemonCrashRecovery is the end-to-end recovery smoke (also run as a
// dedicated CI step): start the real pdpd binary with -data-dir, write
// and delete policies over /admin/policy, record live decisions, kill -9
// the process, restart it on the same data directory, and require the
// recovered daemon to serve the exact same decisions — including the
// delete, which the seed policy file still contains and must NOT
// resurrect. A final SIGTERM checks the graceful-shutdown path exits
// cleanly.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns the real daemon")
	}
	workDir := t.TempDir()
	bin := filepath.Join(workDir, "pdpd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	seedDoc, err := xacml.MarshalJSON(testBase(3)) // pol-res-0..2
	if err != nil {
		t.Fatal(err)
	}
	seedPath := filepath.Join(workDir, "seed.json")
	if err := os.WriteFile(seedPath, seedDoc, 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(workDir, "data")
	addr := freeAddr(t)

	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-policy", seedPath, "-addr", addr,
			"-data-dir", dataDir, "-snapshot-every", "4")
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start pdpd: %v", err)
		}
		waitHealthy(t, addr)
		return cmd
	}

	daemon := start()
	defer func() { _ = daemon.Process.Kill() }()

	// Live administration: a brand-new policy and a delete of a seeded one.
	extra, err := xacml.MarshalJSON(policy.NewPolicy("pol-res-9").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("res-9")).
		Rule(policy.Permit("allow").When(policy.MatchActionID("read")).Build()).
		Rule(policy.Deny("default").Build()).
		Build())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/admin/policy", "application/json", bytes.NewReader(extra))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /admin/policy: %v (status %v)", err, resp)
	}
	resp.Body.Close()
	del, err := http.NewRequest(http.MethodDelete, "http://"+addr+"/admin/policy?id=pol-res-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(del)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE /admin/policy: %v (status %v)", err, resp)
	}
	resp.Body.Close()

	probes := []struct{ res, action string }{
		{"res-0", "read"}, {"res-0", "write"},
		{"res-1", "read"}, // deleted: must stay not-applicable after recovery
		{"res-2", "read"},
		{"res-9", "read"}, {"res-9", "write"}, // administered live
	}
	want := decideAll(t, addr, probes)
	if want[0] != policy.DecisionPermit {
		t.Fatalf("res-0 read = %v before crash, want permit", want[0])
	}
	if want[4] != policy.DecisionPermit {
		t.Fatalf("res-9 read = %v before crash, want permit (live write lost?)", want[4])
	}

	// kill -9: no shutdown hook runs; durability must come from the WAL.
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = daemon.Wait()

	daemon = start()
	got := decideAll(t, addr, probes)
	for i, p := range probes {
		if got[i] != want[i] {
			t.Fatalf("%s %s after kill -9 + restart = %v, want %v", p.res, p.action, got[i], want[i])
		}
	}
	var stats struct {
		Policies    int `json:"policies"`
		Persistence *struct {
			LastSeq           uint64 `json:"LastSeq"`
			RecoveredSnapshot int    `json:"RecoveredSnapshot"`
			RecoveredTail     int    `json:"RecoveredTail"`
		} `json:"persistence"`
	}
	resp, err = http.Get("http://" + addr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Policies != 3 { // res-0, res-2, res-9; res-1 deleted
		t.Fatalf("policies after recovery = %d, want 3", stats.Policies)
	}
	if stats.Persistence == nil || stats.Persistence.RecoveredSnapshot+stats.Persistence.RecoveredTail == 0 {
		t.Fatalf("persistence counters show no recovery: %+v", stats.Persistence)
	}

	// Graceful shutdown: SIGTERM must flush and exit zero.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("pdpd on %s never became healthy", addr)
}

func decideAll(t *testing.T, addr string, probes []struct{ res, action string }) []policy.Decision {
	t.Helper()
	client := pdp.NewClient("http://"+addr+"/decide", "smoke-test", "pdpd")
	out := make([]policy.Decision, len(probes))
	for i, p := range probes {
		res := client.Decide(context.Background(), policy.NewAccessRequest("u", p.res, p.action))
		if res.Err != nil && res.Decision != policy.DecisionNotApplicable {
			t.Fatalf("decide %s %s: %v", p.res, p.action, res.Err)
		}
		out[i] = res.Decision
	}
	return out
}
