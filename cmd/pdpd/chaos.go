package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/ha"
)

// chaosAdmin serves /admin/chaos, the fault-injection plane cmd/loadd's
// chaos schedules drive against a live daemon. It only exists behind the
// -chaos flag — production deployments never expose it — and it only
// reaches faults the decision plane is designed to survive: marking
// replicas down (ha.Failable.SetDown, the crash the ensemble fails over)
// and stalling them (SetStall, the slow-replica mode only deadline budgets
// route around). Process-level kill -9 stays outside: that is the harness
// killing the real pdpd and watching WAL recovery, not an endpoint.
type chaosAdmin struct {
	router *cluster.Router
}

// chaosRequest is the POST body: which replica of which shard, and what to
// do to it. Shard names are the ones /stats lists.
type chaosRequest struct {
	// Action is crash, revive or stall.
	Action string `json:"action"`
	// Shard names the shard group; empty applies to every shard.
	Shard string `json:"shard"`
	// Replica indexes into the shard group's replica list.
	Replica int `json:"replica"`
	// StallMs arms a per-decision stall (action=stall); 0 repairs it.
	StallMs int `json:"stall_ms"`
}

// replicaState is one replica's fault state in the response.
type replicaState struct {
	Shard   string `json:"shard"`
	Replica int    `json:"replica"`
	Name    string `json:"name"`
	Down    bool   `json:"down"`
	Queries int64  `json:"queries"`
}

// state lists every replica's fault state, shard-ordered.
func (c *chaosAdmin) state() ([]replicaState, error) {
	var out []replicaState
	for _, shard := range c.router.Shards() {
		replicas, err := c.router.Replicas(shard)
		if err != nil {
			return nil, err
		}
		for i, r := range replicas {
			out = append(out, replicaState{
				Shard: shard, Replica: i, Name: r.Name(),
				Down: r.Down(), Queries: r.Queries(),
			})
		}
	}
	return out, nil
}

// targets resolves the request's shard/replica selector.
func (c *chaosAdmin) targets(req chaosRequest) ([]*ha.Failable, error) {
	shards := c.router.Shards()
	if req.Shard != "" {
		shards = []string{req.Shard}
	}
	var out []*ha.Failable
	for _, shard := range shards {
		replicas, err := c.router.Replicas(shard)
		if err != nil {
			return nil, fmt.Errorf("shard %q: %w", shard, err)
		}
		if req.Replica < 0 || req.Replica >= len(replicas) {
			return nil, fmt.Errorf("shard %q: replica %d out of range [0,%d)", shard, req.Replica, len(replicas))
		}
		out = append(out, replicas[req.Replica])
	}
	return out, nil
}

// ServeHTTP: GET returns the fault state; POST applies one injection.
func (c *chaosAdmin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.router == nil {
		http.Error(w, "chaos injection needs cluster mode (-shards/-replicas > 1); kill the process for single-engine chaos", http.StatusServiceUnavailable)
		return
	}
	switch r.Method {
	case http.MethodGet:
		c.respondState(w)
	case http.MethodPost:
		var req chaosRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		targets, err := c.targets(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		switch req.Action {
		case "crash":
			for _, t := range targets {
				t.SetDown(true)
			}
		case "revive":
			for _, t := range targets {
				t.SetDown(false)
			}
		case "stall":
			for _, t := range targets {
				t.SetStall(time.Duration(req.StallMs) * time.Millisecond)
			}
		default:
			http.Error(w, fmt.Sprintf("unknown action %q (want crash, revive or stall)", req.Action), http.StatusBadRequest)
			return
		}
		c.respondState(w)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (c *chaosAdmin) respondState(w http.ResponseWriter) {
	state, err := c.state()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Replicas []replicaState `json:"replicas"`
	}{state})
}
