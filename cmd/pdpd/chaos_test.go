package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// chaosFixture builds a 2x2 cluster serving the workload base and the
// /admin/chaos handler over it.
func chaosFixture(t *testing.T) (*chaosAdmin, decisionPoint) {
	t.Helper()
	point, _, router, err := buildDecisionPoint(false, 0, 2, 2, "failover", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Config{Users: 10, Resources: 16, Roles: 4})
	if err := point.SetRoot(gen.PolicyBase("root")); err != nil {
		t.Fatal(err)
	}
	return &chaosAdmin{router: router}, point
}

func postChaos(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/admin/chaos", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func chaosState(t *testing.T, h http.Handler) []replicaState {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/admin/chaos", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /admin/chaos: %d %s", rec.Code, rec.Body)
	}
	var out struct {
		Replicas []replicaState `json:"replicas"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Replicas
}

func TestChaosEndpointCrashReviveSurvivesFailover(t *testing.T) {
	h, point := chaosFixture(t)
	state := chaosState(t, h)
	if len(state) != 4 {
		t.Fatalf("replica state = %+v, want 2 shards x 2 replicas", state)
	}
	shard := state[0].Shard

	// Crash replica 0 of one shard: state must show it down, and decisions
	// must keep flowing through the failover replica.
	if rec := postChaos(t, h, `{"action":"crash","shard":"`+shard+`","replica":0}`); rec.Code != http.StatusOK {
		t.Fatalf("crash: %d %s", rec.Code, rec.Body)
	}
	downs := 0
	for _, r := range chaosState(t, h) {
		if r.Down {
			downs++
			if r.Shard != shard || r.Replica != 0 {
				t.Fatalf("wrong replica down: %+v", r)
			}
		}
	}
	if downs != 1 {
		t.Fatalf("%d replicas down, want exactly 1", downs)
	}
	req := policy.NewAccessRequest(workload.UserID(0), workload.ResourceID(0), "read").
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String(workload.RoleID(0)))
	if res := point.Decide(context.Background(), req); res.Decision != policy.DecisionPermit {
		t.Fatalf("decision with one replica crashed = %v (%v), want Permit via failover", res.Decision, res.Err)
	}

	// Revive with no shard selector: every replica back up.
	if rec := postChaos(t, h, `{"action":"revive","replica":0}`); rec.Code != http.StatusOK {
		t.Fatalf("revive: %d %s", rec.Code, rec.Body)
	}
	for _, r := range chaosState(t, h) {
		if r.Down {
			t.Fatalf("replica still down after revive: %+v", r)
		}
	}
}

func TestChaosEndpointStallAndBadRequests(t *testing.T) {
	h, _ := chaosFixture(t)
	shard := chaosState(t, h)[0].Shard
	if rec := postChaos(t, h, `{"action":"stall","shard":"`+shard+`","replica":1,"stall_ms":5}`); rec.Code != http.StatusOK {
		t.Fatalf("stall: %d %s", rec.Code, rec.Body)
	}
	if rec := postChaos(t, h, `{"action":"stall","shard":"`+shard+`","replica":1,"stall_ms":0}`); rec.Code != http.StatusOK {
		t.Fatalf("unstall: %d %s", rec.Code, rec.Body)
	}

	if rec := postChaos(t, h, `{"action":"explode","replica":0}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown action: %d", rec.Code)
	}
	if rec := postChaos(t, h, `{"action":"crash","shard":"no-such-shard","replica":0}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown shard: %d", rec.Code)
	}
	if rec := postChaos(t, h, `{"action":"crash","shard":"`+shard+`","replica":9}`); rec.Code != http.StatusNotFound {
		t.Fatalf("replica out of range: %d", rec.Code)
	}
	if rec := postChaos(t, h, `not json`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", rec.Code)
	}
}

func TestChaosEndpointNeedsCluster(t *testing.T) {
	h := &chaosAdmin{router: nil} // single-engine mode
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/admin/chaos", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("single-engine chaos: %d, want 503", rec.Code)
	}
}
