// Command pdpd serves a Policy Decision Point over HTTP: the standalone
// deployment of the pull model. It loads a policy file (XML or JSON),
// listens for envelope-wrapped XACML request contexts on /decide (one per
// envelope) and /decide-batch (many per envelope, wire batch framing),
// answers with response contexts, and exposes statistics on /stats. The
// statistics are harvested from the engines' atomic counter stripes (and
// include CacheEntries, the live decision-cache occupancy summed across
// cache shards), so polling /stats never stalls the decision hot path.
//
// With -shards > 1 the daemon runs a sharded cluster instead of a single
// engine: the policy base is partitioned across shard groups by a
// consistent-hash ring over resource keys, and each shard is replicated
// -replicas ways under the chosen -strategy, so decisions survive replica
// crashes. The endpoints are identical in both modes.
//
// The daemon administers policy live: the loaded file seeds an in-process
// Policy Administration Point, and /admin/policy accepts writes while
// decisions are being served. POST (or PUT) stores the XACML policy in the
// body; DELETE ?id=... removes one. Each change propagates through the
// incremental delta pipeline — only the affected root child is patched and
// only its resource keys' cached decisions are invalidated, on only the
// owning shard group(s) in cluster mode — so policy churn does not flush
// the decision caches or stall the hot path. Root children are kept in
// policy-ID order, the administration pipeline's deterministic ordering.
// Refresh failures are counted in /stats as refresh_errors.
//
// Admin writes pass through the static policy lint gate (-policy-lint):
// "warn" (the default) runs the incremental analysis on every write and
// returns the findings the write introduces in the response; "strict"
// additionally rejects writes that introduce blocking findings (actual
// cross-policy conflicts, cross-policy shadowing) with 409 and the
// findings in the body — strict is fail-closed: the write is vetoed
// before it becomes durable or visible, so a rejected policy leaves no
// trace in the store, the WAL or the decision point. "off" disables the
// analyzer entirely. GET /admin/policy returns the current whole-base
// report. Gate decisions are audited and stamped with trace IDs.
//
// The resilience layer is opt-in per mechanism. -breaker arms per-shard
// circuit breakers (a dead shard group fails fast instead of burning every
// caller's deadline budget); -stale-grace arms bounded-staleness degraded
// mode (an open breaker answers warm keys from the last-known-good cache,
// marked degraded and audit-logged, while cold keys fail closed);
// -hedge-after arms hedged replica fan-out for batch decisions; and
// -admission arms adaptive (AIMD) admission control at ingress, shedding
// excess decision traffic with 503 + Retry-After while the admin plane,
// health probes and metric scrapes are never shed.
//
// Usage:
//
//	pdpd -policy policy.xml [-addr :8080] [-index] [-cache 30s]
//	     [-shards N] [-replicas M] [-strategy failover|quorum]
//	     [-policy-lint off|warn|strict]
//	     [-breaker] [-breaker-threshold 5] [-breaker-cooldown 1s]
//	     [-stale-grace 30s] [-hedge-after 5ms] [-admission 256]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/debughttp"
	"repro/internal/ha"
	"repro/internal/pap"
	"repro/internal/pdp"
	"repro/internal/pip"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/xacml"
)

// decisionPoint is the deployment-independent surface pdpd serves: a
// single pdp.Engine or a cluster.Router. Decisions carry the request
// context wire.HTTPHandler arms from the envelope's deadline budget, so a
// remote caller's deadline bounds the work this daemon does for it.
type decisionPoint interface {
	Decide(ctx context.Context, req *policy.Request) policy.Result
	DecideBatch(ctx context.Context, reqs []*policy.Request) []policy.Result
	ApplyUpdate(u pdp.Update) error
	SetRoot(root policy.Evaluable) error
}

func main() {
	policyPath := flag.String("policy", "", "policy file (XML or JSON)")
	addr := flag.String("addr", ":8080", "listen address")
	useIndex := flag.Bool("index", false, "enable the resource-id target index")
	cacheTTL := flag.Duration("cache", 0, "decision cache TTL (0 disables)")
	shards := flag.Int("shards", 1, "shard count; > 1 serves a consistent-hash cluster")
	replicas := flag.Int("replicas", 1, "replicas per shard group (cluster mode)")
	strategy := flag.String("strategy", "failover", "shard replication strategy: failover or quorum")
	dataDir := flag.String("data-dir", "", "durable policy store directory (empty runs in-memory only)")
	snapshotEvery := flag.Int("snapshot-every", 1024, "WAL records between snapshot/compact cycles (persistence mode)")
	traceSample := flag.Float64("trace-sample", 0.01, "decision-trace head-sampling fraction in [0,1]; slow and Indeterminate traces are always kept")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "always keep traces at least this slow (0 disables the slow path)")
	traceBuffer := flag.Int("trace-buffer", 256, "kept-trace ring capacity behind /debug/traces")
	subjectsPath := flag.String("subjects", "", "subject directory JSON file wired (behind a coalescing cache) as the engines' PIP resolver")
	policyLint := flag.String("policy-lint", "warn", "static policy lint gate on /admin/policy: off, warn, or strict (strict rejects writes introducing blocking findings, fail-closed)")
	chaosFlag := flag.Bool("chaos", false, "expose /admin/chaos fault injection (replica crash/revive/stall; cluster mode only) — load/chaos harness use, never production")
	debugAddr := flag.String("debug-addr", "", "optional pprof listen address (profiling stays off unless set)")
	breakerFlag := flag.Bool("breaker", false, "arm per-shard circuit breakers (cluster mode): a shard group observed down fails fast instead of burning per-request deadline budget")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive shard failures that open the breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", time.Second, "open-state cooldown before a single half-open probe is admitted")
	staleGrace := flag.Duration("stale-grace", 0, "bounded-staleness degraded mode: serve a last-known-good decision no older than this while the owning dependency is down (0 fails closed instead)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge replica batch fan-out after this delay (cluster mode; 0 disables)")
	admissionLimit := flag.Int("admission", 0, "adaptive (AIMD) admission control: initial concurrency limit for decision traffic, shed with 503 + Retry-After beyond it; admin/health/metrics are never shed (0 disables)")
	flag.Parse()

	if *policyPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	root, err := loadPolicy(*policyPath)
	if err != nil {
		log.Fatalf("pdpd: %v", err)
	}
	var lg *store.Log
	if *dataDir != "" {
		lg, err = store.Open(*dataDir, store.Options{SnapshotEvery: *snapshotEvery})
		if err != nil {
			log.Fatalf("pdpd: %v", err)
		}
		st := lg.Stats()
		log.Printf("pdpd: recovered %s: %d snapshot entries + %d WAL records (seq %d, %d torn bytes truncated)",
			*dataDir, st.RecoveredSnapshot, st.RecoveredTail, st.LastSeq, st.TruncatedBytes)
	}
	reg := telemetry.NewRegistry()
	tracer := trace.NewTracer(trace.Options{
		Sample:        *traceSample,
		SlowThreshold: *traceSlow,
		Capacity:      *traceBuffer,
	})
	tracer.RegisterMetrics(reg)
	if lg != nil {
		lg.RegisterMetrics(reg)
	}
	var resPolicy *resilience.Policy
	if *breakerFlag || *staleGrace > 0 || *hedgeAfter > 0 {
		resPolicy = &resilience.Policy{
			Breaker: resilience.BreakerConfig{
				Threshold: *breakerThreshold,
				Cooldown:  *breakerCooldown,
			},
			StaleGrace: *staleGrace,
			HedgeAfter: *hedgeAfter,
		}
	}
	var resolver policy.Resolver
	if *subjectsPath != "" {
		dir, err := loadSubjects(*subjectsPath)
		if err != nil {
			log.Fatalf("pdpd: %v", err)
		}
		cache := pip.NewCachedChain("pdpd-pip", 30*time.Second, dir)
		if resPolicy != nil {
			// The PIP chain gets the same protection as the shards: failed
			// lookups are remembered briefly (negative cache) and a dead
			// backend trips a breaker instead of eating deadline budget.
			cache = cache.WithNegativeTTL(2*time.Second).
				WithBreaker(resPolicy.Breaker.Threshold, resPolicy.Breaker.Cooldown)
		}
		cache.RegisterMetrics(reg)
		resolver = cache
		log.Printf("pdpd: %d subjects loaded from %s", dir.Len(), *subjectsPath)
	}
	point, stats, router, err := buildDecisionPoint(*useIndex, *cacheTTL, *shards, *replicas, *strategy, resolver, resPolicy, reg)
	if err != nil {
		log.Fatalf("pdpd: %v", err)
	}
	lintMode, err := analysis.ParseMode(*policyLint)
	if err != nil {
		log.Fatalf("pdpd: %v", err)
	}
	adm, err := newAdmin(point, root, lg, lintMode, tracer, audit.NewLog(1024))
	if err != nil {
		log.Fatalf("pdpd: %v", err)
	}
	if adm.engine != nil {
		adm.engine.RegisterMetrics(reg)
		adm.gate.RegisterMetrics(reg)
		if rep := adm.engine.Report(); !rep.Clean() {
			log.Printf("pdpd: policy lint (%s): %s", lintMode, rep.Summary())
		}
	}
	if router != nil && resPolicy != nil {
		// Every degraded serve leaves an audit trail: which shard's outage
		// was papered over, for which cache key, and how stale the answer
		// was. The ring is shared with the admin plane, so one query shows
		// the policy writes and the brownouts they rode through.
		auditLog := adm.auditLog
		router.SetOnDegraded(func(shard, key string, age time.Duration) {
			auditLog.Record(audit.Event{
				Time:      time.Now(),
				Component: "pdpd/resilience",
				Subject:   shard,
				Resource:  key,
				Action:    "serve-stale",
				By:        "breaker:open",
				Latency:   age,
			})
		})
	}

	var admission *resilience.Admission
	if *admissionLimit > 0 {
		admission = resilience.NewAdmission(resilience.AdmissionConfig{Initial: *admissionLimit})
		reg.GaugeFunc("repro_admission_limit", "Current adaptive (AIMD) admission concurrency limit.", func() int64 { return int64(admission.Limit()) })
		reg.GaugeFunc("repro_admission_inflight", "Admitted in-flight requests.", admission.Inflight)
		reg.CounterFunc("repro_admission_rejected_total", "Requests shed at ingress by admission control.", func() int64 { return admission.Stats().Rejected })
		reg.CounterFunc("repro_admission_throttles_total", "Multiplicative decreases applied to the admission limit.", func() int64 { return admission.Stats().Throttles })
	}

	mux := http.NewServeMux()
	mux.Handle("/decide", wire.HTTPHandler(pdp.Handler(point), wire.WithTracer(tracer)))
	mux.Handle("/decide-batch", wire.HTTPHandler(pdp.BatchHandler(point), wire.WithTracer(tracer)))
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", tracer.Handler())
	mux.HandleFunc("/admin/policy", adm.handlePolicy)
	if *chaosFlag {
		mux.Handle("/admin/chaos", &chaosAdmin{router: router})
		log.Printf("pdpd: chaos fault injection enabled on /admin/chaos")
	}
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := struct {
			Point         any                        `json:"point"`
			Policies      int                        `json:"policies"`
			RefreshErrors int64                      `json:"refresh_errors"`
			Persistence   *store.Stats               `json:"persistence,omitempty"`
			Admission     *resilience.AdmissionStats `json:"admission,omitempty"`
		}{stats(), len(adm.store.List()), adm.refreshErrs.Load(), nil, nil}
		if lg != nil {
			st := lg.Stats()
			out.Persistence = &st
		}
		if admission != nil {
			st := admission.Stats()
			out.Admission = &st
		}
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("pdpd: serving %s on %s (index=%v cache=%v shards=%d replicas=%d strategy=%s data-dir=%q trace-sample=%g)",
		*policyPath, *addr, *useIndex, *cacheTTL, *shards, *replicas, *strategy, *dataDir, *traceSample)
	if resPolicy != nil {
		log.Printf("pdpd: resilience armed (breaker threshold=%d cooldown=%v stale-grace=%v hedge-after=%v)",
			*breakerThreshold, *breakerCooldown, *staleGrace, *hedgeAfter)
	}
	var handler http.Handler = mux
	if admission != nil {
		handler = admission.Middleware(admissionPriority, mux)
		log.Printf("pdpd: adaptive admission control armed (initial limit %d)", *admissionLimit)
	}
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           debughttp.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("pdpd: pprof debug server on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pdpd: debug server: %v", err)
			}
		}()
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting
	// connections, drain in-flight requests, then flush and close the
	// durable log so a restart recovers from the snapshot fast path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("pdpd: signal received, shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutCtx); err != nil {
			log.Printf("pdpd: http shutdown: %v", err)
		}
		if lg != nil {
			if err := lg.Close(); err != nil {
				log.Printf("pdpd: close policy log: %v", err)
			}
		}
	}
}

// admissionPriority classifies ingress for the admission controller: the
// admin plane, health probes and observability scrapes are Critical —
// never shed before decision traffic, because they must stay reachable
// precisely when the daemon is overloaded enough to shed — and everything
// else is sheddable Decision work.
func admissionPriority(r *http.Request) resilience.Priority {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/admin/"), strings.HasPrefix(p, "/debug/"),
		p == "/healthz", p == "/metrics", p == "/stats":
		return resilience.Critical
	}
	return resilience.Decision
}

// buildDecisionPoint assembles the serving surface; the returned router is
// non-nil only in cluster mode, where it additionally exposes the replica
// handles /admin/chaos injects faults through. A non-nil res arms the
// resilience layer: per-shard breakers, serve-stale and hedging in cluster
// mode, engine-level serve-stale (PIP outages) in single-engine mode.
func buildDecisionPoint(useIndex bool, cacheTTL time.Duration, shards, replicas int, strategy string, resolver policy.Resolver, res *resilience.Policy, reg *telemetry.Registry) (decisionPoint, func() any, *cluster.Router, error) {
	var opts []pdp.Option
	if useIndex {
		opts = append(opts, pdp.WithTargetIndex())
	}
	if cacheTTL > 0 {
		opts = append(opts, pdp.WithDecisionCache(cacheTTL, 0))
	}
	if resolver != nil {
		opts = append(opts, pdp.WithResolver(resolver))
	}
	if res != nil && res.StaleGrace > 0 && cacheTTL > 0 && shards <= 1 && replicas <= 1 {
		// Single-engine degraded mode rides the decision cache: an
		// Indeterminate (dead PIP backend) is answered from the
		// last-known-good entry within the grace window.
		opts = append(opts, pdp.WithStaleGrace(res.StaleGrace))
	}

	if shards <= 1 && replicas <= 1 {
		engine := pdp.New("pdpd", opts...)
		if reg != nil {
			engine.RegisterMetrics(reg)
		}
		return engine, func() any { return engine.Stats() }, nil, nil
	}

	var strat ha.Strategy
	switch strategy {
	case "failover":
		strat = ha.Failover
	case "quorum":
		strat = ha.Quorum
	default:
		return nil, nil, nil, fmt.Errorf("unknown strategy %q (want failover or quorum)", strategy)
	}
	router, err := cluster.New("pdpd", cluster.Config{
		Shards:        shards,
		Replicas:      replicas,
		Strategy:      strat,
		EngineOptions: opts,
		Resilience:    res,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if reg != nil {
		router.RegisterMetrics(reg)
	}
	return router, func() any {
		return struct {
			Cluster cluster.Stats
			Engines pdp.Stats
			Shards  []string
			Loads   []int64
			Groups  map[string]ha.Stats
		}{router.Stats(), router.EngineStats(), router.Shards(), router.ShardLoads(), router.GroupStats()}
	}, router, nil
}

// admin owns the daemon's Policy Administration Point and pushes its
// updates into the decision point through the delta pipeline.
type admin struct {
	store     *pap.Store
	point     decisionPoint
	rootID    string
	combining policy.Algorithm
	// rootTarget and rootObligations are the loaded file root's own
	// target and obligations, carried onto every assembled root so the
	// administration pipeline preserves root-level applicability and
	// obligation semantics (the delta path preserves them via PatchChild).
	rootTarget      policy.Target
	rootObligations []policy.Obligation
	refreshErrs     atomic.Int64
	// engine and gate are the incremental static analyzer and its
	// admin-write veto; both nil when -policy-lint=off.
	engine   *analysis.Engine
	gate     *analysis.Gate
	lintMode analysis.Mode
	tracer   *trace.Tracer
	auditLog *audit.Log
}

// newAdmin seeds the store from the loaded policy file (a policy set
// contributes its children, its ID and its combining algorithm; a single
// policy becomes the lone child under deny-overrides), installs the
// assembled root, and wires store updates to the delta path. Root
// children are administered by ID, so the assembled root holds them in ID
// order and duplicate child IDs are rejected (as root validation always
// has).
//
// With a durable log the store hydrates from the recovered snapshot+WAL
// state first, and the file seeds only policies the store has never seen:
// live administration — updated versions and deletes alike — wins over
// the seed file across restarts. The log is attached as the store's
// backend during bootstrap, so the seeding Puts and every /admin/policy
// write after them are committed to the WAL before they are acknowledged.
func newAdmin(point decisionPoint, root policy.Evaluable, lg *store.Log, lint analysis.Mode, tracer *trace.Tracer, auditLog *audit.Log) (*admin, error) {
	a := &admin{
		store: pap.NewStore("pdpd"), point: point,
		rootID: "pdpd-root", combining: policy.DenyOverrides,
		lintMode: lint, tracer: tracer, auditLog: auditLog,
	}
	if lg != nil {
		// Hydrate the store only; installRoot below assembles the
		// decorated root (file-level target and obligations) itself.
		if err := lg.Bootstrap(a.store, nil, a.rootID, a.combining); err != nil {
			return nil, err
		}
	}
	seed := func(ch policy.Evaluable) error {
		if a.store.History(ch.EntityID()) > 0 {
			return nil // recovered state supersedes the seed file
		}
		_, err := a.store.Put(ch)
		return err
	}
	switch v := root.(type) {
	case *policy.PolicySet:
		a.rootID = v.ID
		a.combining = v.Combining
		a.rootTarget = v.Target
		a.rootObligations = v.Obligations
		seen := make(map[string]struct{}, len(v.Children))
		for _, ch := range v.Children {
			id := ch.EntityID()
			if _, dup := seen[id]; dup {
				return nil, fmt.Errorf("policy set %s: duplicate child ID %q", v.ID, id)
			}
			seen[id] = struct{}{}
			if err := seed(ch); err != nil {
				return nil, err
			}
		}
	default:
		if err := seed(root); err != nil {
			return nil, err
		}
	}
	if set, ok := root.(*policy.PolicySet); ok && !set.ChildrenSortedByID() {
		log.Printf("pdpd: root %s children re-ordered by policy ID for live administration; order-dependent combining (e.g. first-applicable) may decide differently than the file order", set.ID)
	}
	if err := a.installRoot(); err != nil {
		return nil, err
	}
	a.store.Watch(a.apply)
	if lint != analysis.ModeOff {
		// Seed the analyzer atomically with watcher registration so no
		// write can slip between the snapshot and the delta stream, then
		// veto through the store's pre-commit hook: the gate decision is
		// serialised with every writer and runs before durability.
		eng := analysis.NewEngine(analysis.Config{RootCombining: a.combining})
		err := a.store.WatchInstall(func(s *pap.Store) error {
			children := make([]policy.Evaluable, 0, len(s.List()))
			for _, id := range s.List() {
				e, err := s.Get(id)
				if err != nil {
					return err
				}
				children = append(children, e)
			}
			eng.Install(children...)
			return nil
		}, func(u pap.Update) {
			if u.Deleted {
				eng.Apply(u.ID, nil)
			} else {
				eng.Apply(u.ID, u.Policy)
			}
		})
		if err != nil {
			return nil, err
		}
		a.engine = eng
		a.gate = analysis.NewGate(eng, lint)
		a.store.PreCommit(func(u pap.Update) error {
			ev := u.Policy
			if u.Deleted {
				ev = nil
			}
			_, err := a.gate.Check(u.ID, ev)
			return err
		})
	}
	return a, nil
}

// installRoot assembles the store into a root and installs it, restoring
// the loaded file root's target and obligations (BuildRoot assembles a
// bare set). This is pdpd's variant of pap.Apply's rebuild fallback —
// federation/core roots are bare BuildRoot products, pdpd roots are not.
func (a *admin) installRoot() error {
	built, err := a.store.BuildRoot(a.rootID, a.combining)
	if err != nil {
		return err
	}
	built.Target = a.rootTarget
	built.Obligations = a.rootObligations
	return a.point.SetRoot(built)
}

// apply pushes one store change into the decision point: the delta path
// first, a full reassembly only when the point cannot patch; failures are
// counted and logged — the PDP may be serving stale policy and that must
// be observable.
func (a *admin) apply(u pap.Update) {
	err := a.point.ApplyUpdate(pdp.Update{ID: u.ID, Child: u.Policy})
	if errors.Is(err, pdp.ErrNotIncremental) {
		err = a.installRoot()
	}
	if err != nil {
		a.refreshErrs.Add(1)
		log.Printf("pdpd: policy refresh %s: %v", u.ID, err)
	}
}

// writeResult is the admin-plane response body: the stored version on
// success, the gate error on rejection, and — whenever the lint gate is
// on — the findings this write introduces plus the trace ID that stamps
// the audit event and the decision trace.
type writeResult struct {
	ID       string             `json:"id"`
	Version  int                `json:"version,omitempty"`
	Error    string             `json:"error,omitempty"`
	Lint     string             `json:"lint,omitempty"`
	Findings []analysis.Finding `json:"findings,omitempty"`
	TraceID  string             `json:"trace_id,omitempty"`
}

// audit records one admin-plane write outcome in the audit log.
func (a *admin) audit(action, id string, decision policy.Decision, traceID string, start time.Time) {
	a.auditLog.Record(audit.Event{
		Time:      time.Now(),
		Component: "pdpd/admin",
		Subject:   "admin",
		Resource:  id,
		Action:    action,
		Decision:  decision,
		By:        "policy-lint:" + a.lintMode.String(),
		Latency:   time.Since(start),
		TraceID:   traceID,
	})
}

// handlePolicy serves the live-administration endpoint. Writes run the
// static lint gate: findings the write would introduce come back in the
// response body, and in strict mode a write introducing blocking findings
// is rejected with 409 before it touches the store.
func (a *admin) handlePolicy(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ctx, span := a.tracer.StartRoot(r.Context(), "admin/policy")
	defer span.End()
	traceID := trace.CurrentID(ctx)
	span.SetAttr("method", r.Method)
	respond := func(status int, res writeResult) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(res)
	}
	switch r.Method {
	case http.MethodGet:
		// The current whole-base report, cheap to serve: the engine
		// maintains it incrementally across admin writes.
		if a.engine == nil {
			http.Error(w, "policy lint is off", http.StatusNotFound)
			return
		}
		rep := a.engine.Report()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Mode     string             `json:"mode"`
			Summary  string             `json:"summary"`
			Findings []analysis.Finding `json:"findings"`
		}{a.lintMode.String(), rep.Summary(), rep.Findings})
	case http.MethodPost, http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		e, err := parsePolicy(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id := e.EntityID()
		span.SetAttr("policy", id)
		// Preview the findings this write introduces for the response
		// body; enforcement happens in the pre-commit hook under the
		// store's write serialisation, so a race cannot sneak a
		// conflicting write past the gate.
		var findings []analysis.Finding
		if a.engine != nil {
			findings = a.engine.Preview(id, e).Findings
		}
		version, err := a.store.Put(e)
		if err != nil {
			span.Keep()
			if errors.Is(err, analysis.ErrRejected) {
				a.audit("put", id, policy.DecisionDeny, traceID, start)
				respond(http.StatusConflict, writeResult{
					ID: id, Error: err.Error(),
					Lint: a.lintMode.String(), Findings: findings, TraceID: traceID,
				})
				return
			}
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		a.audit("put", id, policy.DecisionPermit, traceID, start)
		res := writeResult{ID: id, Version: version, TraceID: traceID}
		if a.engine != nil {
			res.Lint = a.lintMode.String()
			res.Findings = findings
		}
		respond(http.StatusOK, res)
	case http.MethodDelete:
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		span.SetAttr("policy", id)
		if err := a.store.Delete(id); err != nil {
			span.Keep()
			status := http.StatusInternalServerError
			if errors.Is(err, pap.ErrNotFound) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		a.audit("delete", id, policy.DecisionPermit, traceID, start)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// parsePolicy decodes an XACML policy document, sniffing XML vs JSON.
func parsePolicy(body []byte) (policy.Evaluable, error) {
	if bytes.HasPrefix(bytes.TrimSpace(body), []byte("<")) {
		return xacml.UnmarshalXML(body)
	}
	return xacml.UnmarshalJSON(body)
}

// loadSubjects reads a JSON subject-directory file — an array of
// {id, domain, roles, groups, clearance} objects — into a pip.Directory.
func loadSubjects(path string) (*pip.Directory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []struct {
		ID        string   `json:"id"`
		Domain    string   `json:"domain"`
		Roles     []string `json:"roles"`
		Groups    []string `json:"groups"`
		Clearance int64    `json:"clearance"`
	}
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	dir := pip.NewDirectory("pdpd-subjects")
	for _, e := range entries {
		if e.ID == "" {
			return nil, fmt.Errorf("%s: subject entry without an id", path)
		}
		dir.AddSubject(pip.Subject{
			ID:        e.ID,
			Domain:    e.Domain,
			Roles:     e.Roles,
			Groups:    e.Groups,
			Clearance: e.Clearance,
		})
	}
	return dir, nil
}

func loadPolicy(path string) (policy.Evaluable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".json") {
		return xacml.UnmarshalJSON(data)
	}
	return xacml.UnmarshalXML(data)
}
