// Command pdpd serves a Policy Decision Point over HTTP: the standalone
// deployment of the pull model. It loads a policy file (XML or JSON),
// listens for envelope-wrapped XACML request contexts on /decide, answers
// with response contexts, and exposes engine statistics on /stats.
//
// Usage:
//
//	pdpd -policy policy.xml [-addr :8080] [-index] [-cache 30s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/wire"
	"repro/internal/xacml"
)

func main() {
	policyPath := flag.String("policy", "", "policy file (XML or JSON)")
	addr := flag.String("addr", ":8080", "listen address")
	useIndex := flag.Bool("index", false, "enable the resource-id target index")
	cacheTTL := flag.Duration("cache", 0, "decision cache TTL (0 disables)")
	flag.Parse()

	if *policyPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	engine, err := buildEngine(*policyPath, *useIndex, *cacheTTL)
	if err != nil {
		log.Fatalf("pdpd: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/decide", wire.HTTPHandler(pdp.Handler(engine)))
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(engine.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("pdpd: serving %s on %s (index=%v cache=%v)", *policyPath, *addr, *useIndex, *cacheTTL)
	server := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	log.Fatal(server.ListenAndServe())
}

func buildEngine(path string, useIndex bool, cacheTTL time.Duration) (*pdp.Engine, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var root policy.Evaluable
	if strings.HasSuffix(path, ".json") {
		root, err = xacml.UnmarshalJSON(data)
	} else {
		root, err = xacml.UnmarshalXML(data)
	}
	if err != nil {
		return nil, err
	}
	var opts []pdp.Option
	if useIndex {
		opts = append(opts, pdp.WithTargetIndex())
	}
	if cacheTTL > 0 {
		opts = append(opts, pdp.WithDecisionCache(cacheTTL, 0))
	}
	engine := pdp.New("pdpd", opts...)
	if err := engine.SetRoot(root); err != nil {
		return nil, err
	}
	return engine, nil
}
