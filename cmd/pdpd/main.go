// Command pdpd serves a Policy Decision Point over HTTP: the standalone
// deployment of the pull model. It loads a policy file (XML or JSON),
// listens for envelope-wrapped XACML request contexts on /decide (one per
// envelope) and /decide-batch (many per envelope, wire batch framing),
// answers with response contexts, and exposes statistics on /stats.
//
// With -shards > 1 the daemon runs a sharded cluster instead of a single
// engine: the policy base is partitioned across shard groups by a
// consistent-hash ring over resource keys, and each shard is replicated
// -replicas ways under the chosen -strategy, so decisions survive replica
// crashes. The endpoints are identical in both modes.
//
// Usage:
//
//	pdpd -policy policy.xml [-addr :8080] [-index] [-cache 30s]
//	     [-shards N] [-replicas M] [-strategy failover|quorum]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/ha"
	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/wire"
	"repro/internal/xacml"
)

// decisionPoint is the deployment-independent surface pdpd serves: a
// single pdp.Engine or a cluster.Router.
type decisionPoint interface {
	Decide(req *policy.Request) policy.Result
	DecideBatch(reqs []*policy.Request) []policy.Result
}

func main() {
	policyPath := flag.String("policy", "", "policy file (XML or JSON)")
	addr := flag.String("addr", ":8080", "listen address")
	useIndex := flag.Bool("index", false, "enable the resource-id target index")
	cacheTTL := flag.Duration("cache", 0, "decision cache TTL (0 disables)")
	shards := flag.Int("shards", 1, "shard count; > 1 serves a consistent-hash cluster")
	replicas := flag.Int("replicas", 1, "replicas per shard group (cluster mode)")
	strategy := flag.String("strategy", "failover", "shard replication strategy: failover or quorum")
	flag.Parse()

	if *policyPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	point, stats, err := buildDecisionPoint(*policyPath, *useIndex, *cacheTTL, *shards, *replicas, *strategy)
	if err != nil {
		log.Fatalf("pdpd: %v", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/decide", wire.HTTPHandler(pdp.Handler(point)))
	mux.Handle("/decide-batch", wire.HTTPHandler(pdp.BatchHandler(point)))
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("pdpd: serving %s on %s (index=%v cache=%v shards=%d replicas=%d strategy=%s)",
		*policyPath, *addr, *useIndex, *cacheTTL, *shards, *replicas, *strategy)
	server := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	log.Fatal(server.ListenAndServe())
}

func buildDecisionPoint(path string, useIndex bool, cacheTTL time.Duration, shards, replicas int, strategy string) (decisionPoint, func() any, error) {
	root, err := loadPolicy(path)
	if err != nil {
		return nil, nil, err
	}
	var opts []pdp.Option
	if useIndex {
		opts = append(opts, pdp.WithTargetIndex())
	}
	if cacheTTL > 0 {
		opts = append(opts, pdp.WithDecisionCache(cacheTTL, 0))
	}

	if shards <= 1 && replicas <= 1 {
		engine := pdp.New("pdpd", opts...)
		if err := engine.SetRoot(root); err != nil {
			return nil, nil, err
		}
		return engine, func() any { return engine.Stats() }, nil
	}

	var strat ha.Strategy
	switch strategy {
	case "failover":
		strat = ha.Failover
	case "quorum":
		strat = ha.Quorum
	default:
		return nil, nil, fmt.Errorf("unknown strategy %q (want failover or quorum)", strategy)
	}
	router, err := cluster.New("pdpd", cluster.Config{
		Shards:        shards,
		Replicas:      replicas,
		Strategy:      strat,
		EngineOptions: opts,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := router.SetRoot(root); err != nil {
		return nil, nil, err
	}
	return router, func() any {
		return struct {
			Cluster cluster.Stats
			Shards  []string
			Loads   []int64
			Groups  map[string]ha.Stats
		}{router.Stats(), router.Shards(), router.ShardLoads(), router.GroupStats()}
	}, nil
}

func loadPolicy(path string) (policy.Evaluable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".json") {
		return xacml.UnmarshalJSON(data)
	}
	return xacml.UnmarshalXML(data)
}
