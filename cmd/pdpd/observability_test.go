package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/audit"
	"repro/internal/pdp"
	"repro/internal/pip"
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// rolePolicy permits read on res-0 for subjects holding the auditor role.
// Requests carry only the subject ID, so the role must come from the PIP.
func rolePolicy() *policy.PolicySet {
	return policy.NewPolicySet("role-base").Combining(policy.DenyOverrides).
		Add(policy.NewPolicy("pol-res-0").
			Combining(policy.FirstApplicable).
			When(policy.MatchResourceID("res-0")).
			Rule(policy.Permit("auditors").When(policy.MatchRole("auditor")).Build()).
			Rule(policy.Deny("default").Build()).
			Build()).
		Build()
}

// TestDaemonObservabilitySurface assembles the daemon's serving surface the
// way main() does — engine with a subjects-file PIP, wire handler with a
// tracer, /metrics and /debug/traces on the mux — and checks one decision
// shows up on every exposition: the decision counters, the PIP counters,
// and a retained trace whose spans cover the wire and evaluation layers.
func TestDaemonObservabilitySurface(t *testing.T) {
	subjectsPath := filepath.Join(t.TempDir(), "subjects.json")
	err := os.WriteFile(subjectsPath,
		[]byte(`[{"id":"alice","domain":"hospital","roles":["auditor"],"clearance":3}]`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := loadSubjects(subjectsPath)
	if err != nil {
		t.Fatal(err)
	}
	if dir.Len() != 1 {
		t.Fatalf("loaded %d subjects, want 1", dir.Len())
	}

	reg := telemetry.NewRegistry()
	cache := pip.NewCachedChain("pdpd-pip", time.Minute, dir)
	cache.RegisterMetrics(reg)
	point, _, _, err := buildDecisionPoint(false, time.Minute, 1, 1, "failover", cache, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newAdmin(point, rolePolicy(), nil, analysis.ModeOff, trace.NewTracer(trace.Options{}), audit.NewLog(16)); err != nil {
		t.Fatal(err)
	}
	tracer := trace.NewTracer(trace.Options{Sample: 1})
	tracer.RegisterMetrics(reg)

	mux := http.NewServeMux()
	mux.Handle("/decide", wire.HTTPHandler(pdp.Handler(point), wire.WithTracer(tracer)))
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", tracer.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	client := pdp.NewClient(srv.URL+"/decide", "gw", "pdpd")
	res := client.Decide(context.Background(), policy.NewAccessRequest("alice", "res-0", "read"))
	if res.Decision != policy.DecisionPermit {
		t.Fatalf("decision = %v, want permit (PIP role resolution)", res.Decision)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		`repro_pdp_decisions_total{outcome="permit"} 1`,
		"repro_pdp_evaluations_total 1",
		"repro_pip_cache_misses_total 1",
		"repro_trace_started_total 1",
		`repro_trace_kept_total{cause="sampled"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Stats  trace.Stats     `json:"stats"`
		Traces []*trace.Record `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(out.Traces))
	}
	rec := out.Traces[0]
	if !strings.HasPrefix(rec.Root, "serve ") {
		t.Errorf("trace root = %q, want a serve span", rec.Root)
	}
	spanNames := make(map[string]bool, len(rec.Spans))
	for _, sp := range rec.Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"pdp.eval", "pip.fetch"} {
		if !spanNames[want] {
			t.Errorf("trace spans %v missing %q", keys(spanNames), want)
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
