// Command restgw is a REST enforcement gateway: the PEP-side counterpart
// of cmd/pdpd. It protects an upstream HTTP service behind the rest
// middleware, deciding either against a local policy file or against a
// remote PDP endpoint, with obligation-driven content redaction enabled.
//
// Usage:
//
//	restgw -upstream http://localhost:9000 -policy policy.xml \
//	       -route "/records/{id}=patient-record" [-route ...] [-addr :8081]
//	restgw -upstream http://localhost:9000 -pdp http://pdp:8080/decide \
//	       -route "/files/...=file"
//
// Policies may be XML, JSON or local-dialect (.acl) files. Subjects are
// taken from the X-Subject / X-Roles headers (substitute a verified-token
// extractor for production use).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/debughttp"
	"repro/internal/dialect"
	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/rest"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/xacml"
)

// routeFlags collects repeated -route "pattern=resource-type" flags.
type routeFlags []string

// String implements flag.Value.
func (r *routeFlags) String() string { return strings.Join(*r, ",") }

// Set implements flag.Value.
func (r *routeFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// obsConfig carries the gateway's observability settings from flags.
type obsConfig struct {
	traceSample float64
	traceSlow   time.Duration
	traceBuffer int
	debugAddr   string
}

func main() {
	var routes routeFlags
	upstream := flag.String("upstream", "", "upstream service base URL (required)")
	policyPath := flag.String("policy", "", "local policy file (XML, JSON or .acl dialect)")
	pdpEndpoint := flag.String("pdp", "", "remote PDP envelope endpoint (alternative to -policy)")
	addr := flag.String("addr", ":8081", "listen address")
	traceSample := flag.Float64("trace-sample", 0.01, "request-trace head-sampling fraction in [0,1]; slow and Indeterminate traces are always kept")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "always keep traces at least this slow (0 disables the slow path)")
	traceBuffer := flag.Int("trace-buffer", 256, "kept-trace ring capacity behind /debug/traces")
	debugAddr := flag.String("debug-addr", "", "optional pprof listen address (profiling stays off unless set)")
	admissionLimit := flag.Int("admission", 0, "adaptive (AIMD) admission control: initial concurrency limit for proxied traffic, shed with 503 + Retry-After beyond it; metrics/trace/stats endpoints are never shed (0 disables)")
	flag.Var(&routes, "route", "URI route as pattern=resource-type (repeatable)")
	flag.Parse()

	obs := obsConfig{
		traceSample: *traceSample,
		traceSlow:   *traceSlow,
		traceBuffer: *traceBuffer,
		debugAddr:   *debugAddr,
	}
	if err := run(*upstream, *policyPath, *pdpEndpoint, *addr, routes, obs, *admissionLimit); err != nil {
		log.Println("restgw:", err)
		os.Exit(1)
	}
}

func run(upstream, policyPath, pdpEndpoint, addr string, routes routeFlags, obs obsConfig, admissionLimit int) error {
	if upstream == "" {
		return fmt.Errorf("-upstream is required")
	}
	if (policyPath == "") == (pdpEndpoint == "") {
		return fmt.Errorf("exactly one of -policy or -pdp is required")
	}
	if len(routes) == 0 {
		return fmt.Errorf("at least one -route is required")
	}

	target, err := url.Parse(upstream)
	if err != nil {
		return fmt.Errorf("upstream %q: %w", upstream, err)
	}

	router := rest.NewRouter()
	for _, r := range routes {
		pattern, resourceType, ok := strings.Cut(r, "=")
		if !ok {
			return fmt.Errorf("route %q: want pattern=resource-type", r)
		}
		if err := router.Add(pattern, resourceType); err != nil {
			return err
		}
	}

	provider, localRoot, err := buildProvider(policyPath, pdpEndpoint)
	if err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	if localRoot != nil {
		// A locally-loaded policy gets a startup lint pass; the analyzer
		// counters join the gateway's /metrics exposition, mirroring pdpd.
		lintEngine := analysis.NewEngine(analysis.Config{})
		lintEngine.Install(localRoot)
		lintEngine.RegisterMetrics(reg)
		if rep := lintEngine.Report(); !rep.Clean() {
			log.Printf("restgw: policy lint: %s", rep.Summary())
		}
	}
	tracer := trace.NewTracer(trace.Options{
		Sample:        obs.traceSample,
		SlowThreshold: obs.traceSlow,
		Capacity:      obs.traceBuffer,
	})
	tracer.RegisterMetrics(reg)

	mw := rest.NewMiddleware(router, provider, rest.HeaderSubject,
		rest.WithTransformer("redact", rest.RedactJSON),
		rest.WithTransformer("check-content", rest.RequireField),
		rest.WithTracer(tracer))
	mw.RegisterMetrics(reg)
	proxy := httputil.NewSingleHostReverseProxy(target)

	mux := http.NewServeMux()
	mux.Handle("/", mw.Wrap(proxy))
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", tracer.Handler())
	mux.HandleFunc("/gw/stats", func(w http.ResponseWriter, _ *http.Request) {
		st := mw.Stats()
		fmt.Fprintf(w, "requests=%d permitted=%d denied=%d unrouted=%d unauthenticated=%d transformed=%d\n",
			st.Requests, st.Permitted, st.Denied, st.Unrouted, st.Unauthenticated, st.Transformed)
	})
	if obs.debugAddr != "" {
		dbg := &http.Server{
			Addr:              obs.debugAddr,
			Handler:           debughttp.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("restgw: pprof debug server on %s", obs.debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("restgw: debug server: %v", err)
			}
		}()
	}
	log.Printf("restgw: protecting %s on %s (%d routes, trace-sample=%g)", upstream, addr, len(routes), obs.traceSample)
	var handler http.Handler = mux
	if admissionLimit > 0 {
		// Shed excess proxied traffic at ingress before it queues into the
		// upstream or the PDP; observability endpoints are never shed.
		admission := resilience.NewAdmission(resilience.AdmissionConfig{Initial: admissionLimit})
		reg.GaugeFunc("repro_admission_limit", "Current adaptive (AIMD) admission concurrency limit.", func() int64 { return int64(admission.Limit()) })
		reg.GaugeFunc("repro_admission_inflight", "Admitted in-flight requests.", admission.Inflight)
		reg.CounterFunc("repro_admission_rejected_total", "Requests shed at ingress by admission control.", func() int64 { return admission.Stats().Rejected })
		handler = admission.Middleware(func(r *http.Request) resilience.Priority {
			p := r.URL.Path
			if strings.HasPrefix(p, "/debug/") || p == "/metrics" || p == "/gw/stats" {
				return resilience.Critical
			}
			return resilience.Decision
		}, mux)
		log.Printf("restgw: adaptive admission control armed (initial limit %d)", admissionLimit)
	}
	server := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM trigger a graceful shutdown, mirroring cmd/pdpd: stop
	// accepting connections and drain in-flight requests (whose decision
	// queries the enforcement point cancels via each request's context).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		log.Printf("restgw: signal received, shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("restgw: http shutdown: %w", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// buildProvider loads the local engine or dials the remote PDP. The root
// comes back non-nil only for a locally-loaded policy, so the caller can
// lint it (a remote PDP lints its own base behind its admin gate).
func buildProvider(policyPath, pdpEndpoint string) (rest.DecisionProvider, policy.Evaluable, error) {
	if pdpEndpoint != "" {
		return pdp.NewClient(pdpEndpoint, "restgw", "pdp"), nil, nil
	}
	data, err := os.ReadFile(policyPath)
	if err != nil {
		return nil, nil, err
	}
	var root policy.Evaluable
	switch {
	case strings.HasSuffix(policyPath, ".json"):
		root, err = xacml.UnmarshalJSON(data)
	case strings.HasSuffix(policyPath, ".acl"):
		root, err = dialect.Translate("restgw", policy.DenyOverrides, string(data))
	default:
		root, err = xacml.UnmarshalXML(data)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", policyPath, err)
	}
	engine := pdp.New("restgw-pdp")
	if err := engine.SetRoot(root); err != nil {
		return nil, nil, err
	}
	return engine, root, nil
}
