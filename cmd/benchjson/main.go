// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark numbers can be committed,
// diffed and consumed by tooling instead of being re-parsed from logs.
//
// Usage:
//
//	go test -run '^$' -bench ParallelDecide -benchmem . | benchjson > BENCH.json
//	benchjson -in bench.txt -out BENCH.json
//
// Each benchmark result line contributes one entry with its run count and
// every reported metric (ns/op, B/op, allocs/op and custom b.ReportMetric
// units alike). The goos/goarch/pkg/cpu header lines are carried into the
// document head when present.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
)

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON destination (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		defer f.Close()
		r = f
	}
	doc, err := Parse(r)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark result lines in input")
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(doc.Benchmarks), *out)
}

// Doc is the emitted document.
type Doc struct {
	// Goos, Goarch, Pkg and CPU echo the bench header when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks are the parsed result lines, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name including sub-bench path and -cpu
	// suffix, as printed (e.g. "BenchmarkParallelDecide/hit-16").
	Name string `json:"name"`
	// Runs is the measured iteration count (the b.N column).
	Runs int64 `json:"runs"`
	// Metrics maps each reported unit to its value: ns/op, B/op,
	// allocs/op and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Parse reads `go test -bench` output. Non-benchmark lines (test chatter,
// PASS/ok trailers) are skipped; malformed Benchmark lines are an error so
// truncated logs do not silently yield partial documents.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var rest string
		switch {
		case scanHeader(line, "goos: ", &rest):
			doc.Goos = rest
		case scanHeader(line, "goarch: ", &rest):
			doc.Goarch = rest
		case scanHeader(line, "pkg: ", &rest):
			doc.Pkg = rest
		case scanHeader(line, "cpu: ", &rest):
			doc.CPU = rest
		case len(line) > 9 && line[:9] == "Benchmark":
			b, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

func scanHeader(line, prefix string, rest *string) bool {
	if len(line) < len(prefix) || line[:len(prefix)] != prefix {
		return false
	}
	*rest = line[len(prefix):]
	return true
}

// parseResult parses one result line: name, iteration count, then
// value/unit pairs.
func parseResult(line string) (Benchmark, error) {
	fields := splitFields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("malformed bench line %q", line)
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bench line %q: bad run count %q", line, fields[1])
	}
	b.Runs = runs
	pairs := fields[2:]
	if len(pairs)%2 != 0 {
		return Benchmark{}, fmt.Errorf("bench line %q: odd value/unit fields", line)
	}
	for i := 0; i < len(pairs); i += 2 {
		v, err := strconv.ParseFloat(pairs[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bench line %q: bad value %q", line, pairs[i])
		}
		b.Metrics[pairs[i+1]] = v
	}
	return b, nil
}

func splitFields(line string) []string {
	var out []string
	start := -1
	for i, r := range line {
		if r == ' ' || r == '\t' {
			if start >= 0 {
				out = append(out, line[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, line[start:])
	}
	return out
}
