// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document (internal/benchfmt), so benchmark numbers
// can be committed, diffed and consumed by tooling instead of being
// re-parsed from logs — and diffs two such documents as the CI regression
// gate.
//
// Convert:
//
//	go test -run '^$' -bench ParallelDecide -benchmem . | benchjson > BENCH.json
//	benchjson -in bench.txt -out BENCH.json
//
// Compare (the regression gate): the input (stdin or -in; JSON document or
// raw bench text, sniffed) is the fresh run, -compare names the committed
// baseline, and the exit status reports the verdict — 0 clean, 1 when any
// direction-oriented metric worsened by more than -threshold percent or a
// baseline benchmark is missing from the fresh run, 2 on a load error:
//
//	go test -run '^$' -bench ParallelDecide -benchmem . \
//	  | benchjson -compare BENCH_PR8.json -threshold 40 -filter BenchmarkParallelDecide
//
// Each benchmark result line contributes one entry with its run count and
// every reported metric (ns/op, B/op, allocs/op and custom b.ReportMetric
// units alike). The goos/goarch/pkg/cpu header lines are carried into the
// document head when present.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"repro/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "bench output file (default stdin)")
	out := fs.String("out", "", "JSON destination (default stdout)")
	compare := fs.String("compare", "", "baseline BENCH_*.json to diff the input against (gate mode)")
	threshold := fs.Float64("threshold", 10, "regression threshold in percent (gate mode)")
	filter := fs.String("filter", "", "regexp restricting gate mode to matching benchmark names")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var r io.Reader = stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	doc, err := benchfmt.Read(r)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark result lines in input")
		return 2
	}

	if *compare != "" {
		return gate(doc, *compare, *threshold, *filter, stdout, stderr)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "benchjson: %d benchmarks -> %s\n", len(doc.Benchmarks), *out)
	return 0
}

// gate diffs the fresh document against the committed baseline and renders
// the verdict; the exit status is the CI contract.
func gate(fresh *benchfmt.Doc, baselinePath string, threshold float64, filter string, stdout, stderr io.Writer) int {
	f, err := os.Open(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	defer f.Close()
	baseline, err := benchfmt.Read(f)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: baseline %s: %v\n", baselinePath, err)
		return 2
	}
	var re *regexp.Regexp
	if filter != "" {
		re, err = regexp.Compile(filter)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: bad -filter: %v\n", err)
			return 2
		}
	}
	cmp := benchfmt.Compare(baseline, fresh, threshold, re)
	if len(cmp.Deltas) == 0 && len(cmp.Missing) == 0 {
		fmt.Fprintf(stderr, "benchjson: nothing to compare against %s (filter too narrow?)\n", baselinePath)
		return 2
	}
	for _, d := range cmp.Deltas {
		fmt.Fprintf(stdout, "  %s\n", d)
	}
	for _, name := range cmp.Missing {
		fmt.Fprintf(stdout, "  MISSING from fresh run: %s\n", name)
	}
	for _, name := range cmp.Added {
		fmt.Fprintf(stdout, "  new benchmark (no baseline): %s\n", name)
	}
	if !cmp.Ok() {
		fmt.Fprintf(stdout, "FAIL: %d regression(s) beyond %.1f%%, %d missing benchmark(s) vs %s\n",
			len(cmp.Regressions), threshold, len(cmp.Missing), baselinePath)
		for _, d := range cmp.Regressions {
			fmt.Fprintf(stdout, "  REGRESSION %s\n", d)
		}
		return 1
	}
	fmt.Fprintf(stdout, "ok: %d metrics within %.1f%% of %s\n", len(cmp.Deltas), threshold, baselinePath)
	return 0
}
