package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

const sampleBench = `goos: linux
BenchmarkParallelDecide/hit-16	1000	100 ns/op	1000000 decisions/s	0 allocs/op
BenchmarkParallelDecide/miss-16	500	2000 ns/op	500000 decisions/s	9 allocs/op
PASS
`

func runCLI(t *testing.T, args []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestConvertTextToJSON(t *testing.T) {
	code, stdout, stderr := runCLI(t, nil, sampleBench)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	var doc benchfmt.Doc
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 2 || doc.Goos != "linux" {
		t.Fatalf("doc = %+v", doc)
	}
}

func TestConvertEmptyInputFails(t *testing.T) {
	if code, _, _ := runCLI(t, nil, "PASS\n"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// writeBaseline converts sampleBench to a committed-baseline JSON file.
func writeBaseline(t *testing.T, scale float64) string {
	t.Helper()
	doc, err := benchfmt.Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	for i := range doc.Benchmarks {
		m := doc.Benchmarks[i].Metrics
		m["ns/op"] *= scale
		m["decisions/s"] /= scale
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinThreshold(t *testing.T) {
	baseline := writeBaseline(t, 1.0)
	code, stdout, stderr := runCLI(t,
		[]string{"-compare", baseline, "-threshold", "10"}, sampleBench)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "ok:") {
		t.Fatalf("no verdict line: %s", stdout)
	}
}

func TestGateFailsOnSyntheticFiftyPercentSlowdown(t *testing.T) {
	// Baseline ran at half the fresh run's ns/op: the fresh run is a
	// synthetic 50%+ slowdown and must exit 1.
	baseline := writeBaseline(t, 0.5)
	code, stdout, _ := runCLI(t,
		[]string{"-compare", baseline, "-threshold", "40"}, sampleBench)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "REGRESSION") {
		t.Fatalf("no regression line: %s", stdout)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	baseline := writeBaseline(t, 1.0)
	freshOnlyHit := `BenchmarkParallelDecide/hit-16	1000	100 ns/op
PASS
`
	code, stdout, _ := runCLI(t, []string{"-compare", baseline}, freshOnlyHit)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "MISSING") {
		t.Fatalf("no missing line: %s", stdout)
	}
}

func TestGateFilterNarrowsComparison(t *testing.T) {
	baseline := writeBaseline(t, 1.0)
	freshOnlyHit := `BenchmarkParallelDecide/hit-16	1000	100 ns/op	1000000 decisions/s	0 allocs/op
PASS
`
	code, stdout, _ := runCLI(t,
		[]string{"-compare", baseline, "-filter", "hit"}, freshOnlyHit)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, stdout)
	}
}

func TestGateEmptyIntersectionIsError(t *testing.T) {
	baseline := writeBaseline(t, 1.0)
	code, _, stderr := runCLI(t,
		[]string{"-compare", baseline, "-filter", "NoSuchBench"}, sampleBench)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (%s)", code, stderr)
	}
}

func TestGateMissingBaselineFileIsError(t *testing.T) {
	code, _, _ := runCLI(t, []string{"-compare", "/does/not/exist.json"}, sampleBench)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
