package loadgen

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pap"
	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/workload"
)

// testEngine builds an engine serving the workload's policy base.
func testEngine(t *testing.T, cfg workload.Config, opts ...pdp.Option) *pdp.Engine {
	t.Helper()
	gen := workload.NewGenerator(cfg)
	engine := pdp.New("loadgen-test", opts...)
	if err := engine.SetRoot(gen.PolicyBase("root")); err != nil {
		t.Fatal(err)
	}
	return engine
}

// smallConfig is a fast, deterministic run shape for unit tests.
func smallConfig(d time.Duration) Config {
	return Config{
		Workload: workload.Config{
			Users: 50, Resources: 32, Roles: 4,
			MeanInterarrival: 200 * time.Microsecond, Seed: 9,
		},
		Duration: d,
		Workers:  8,
		QueueCap: 512,
	}
}

func TestOpenLoopSteadyAccounting(t *testing.T) {
	cfg := smallConfig(300 * time.Millisecond)
	engine := testEngine(t, cfg.Workload)
	d, err := New("steady", cfg, engine, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := d.Run(context.Background())
	if res.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if res.Completed+res.Shed != res.Offered {
		t.Fatalf("accounting leak: offered %d != completed %d + shed %d",
			res.Offered, res.Completed, res.Shed)
	}
	if int64(res.Latency.Count) != res.Completed {
		t.Fatalf("histogram count %d != completed %d", res.Latency.Count, res.Completed)
	}
	// Warm requests against the matching base are all conclusive.
	if res.Indeterminate != 0 {
		t.Fatalf("%d Indeterminate decisions on a healthy engine", res.Indeterminate)
	}
	if res.Conclusive() != res.Completed {
		t.Fatalf("conclusive %d != completed %d", res.Conclusive(), res.Completed)
	}
	if res.GoodputPerSec() <= 0 {
		t.Fatal("zero goodput")
	}
	b := res.Benchmark()
	if b.Name != "Loadgen/steady" || b.Runs != res.Completed {
		t.Fatalf("benchmark entry = %+v", b)
	}
	for _, unit := range []string{"p50-ns/op", "p99-ns/op", "goodput/s", "shed/op", "indeterminate/op"} {
		if _, ok := b.Metrics[unit]; !ok {
			t.Errorf("benchmark entry missing metric %s", unit)
		}
	}
}

// slowTarget models a wedged decision point: each decision takes `delay`
// unless the caller's deadline fires first (fail-closed Indeterminate).
type slowTarget struct {
	delay   time.Duration
	decided atomic.Int64
}

func (s *slowTarget) Decide(ctx context.Context, _ *policy.Request) policy.Result {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
		s.decided.Add(1)
		return policy.Result{Decision: policy.DecisionPermit}
	case <-ctx.Done():
		return policy.Result{Decision: policy.DecisionIndeterminate, Err: ctx.Err()}
	}
}

// TestOverloadShowsUpAsLatencyNotSilentBackpressure: with service capacity
// far below the offered rate, the open-loop driver must (a) keep offering
// at the scheduled rate, (b) report queueing as latency well above the
// service time, and (c) shed — never block — once the bounded queue fills.
func TestOverloadShowsUpAsLatencyNotSilentBackpressure(t *testing.T) {
	cfg := smallConfig(250 * time.Millisecond)
	cfg.Workers = 2
	cfg.QueueCap = 8
	target := &slowTarget{delay: 5 * time.Millisecond}
	d, err := New("overload", cfg, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := d.Run(context.Background())
	// Capacity is 2 workers / 5ms = 400/s against ~5000/s offered: the
	// queue must overflow.
	if res.Shed == 0 {
		t.Fatalf("no shed under 10x overload: %+v", res)
	}
	if res.Completed+res.Shed != res.Offered {
		t.Fatalf("accounting leak: offered %d != completed %d + shed %d",
			res.Offered, res.Completed, res.Shed)
	}
	// Queueing delay dominates service time: p99 must be far above the
	// 5ms a lone decision costs.
	if p99 := res.Latency.Quantile(0.99); p99 < 15*time.Millisecond {
		t.Fatalf("p99 = %v under overload, want queueing delay >> 5ms service time", p99)
	}
	// The offered rate must not collapse to the completion rate — that
	// would be a closed loop.
	if res.Offered < 4*res.Completed {
		t.Fatalf("offered %d vs completed %d: arrival process slowed down with the target",
			res.Offered, res.Completed)
	}
}

func TestColdStormResolvesThroughPIPChain(t *testing.T) {
	cfg := smallConfig(200 * time.Millisecond)
	cfg.Cold = true
	gen := workload.NewGenerator(cfg.Workload)
	engine := testEngine(t, cfg.Workload,
		pdp.WithResolver(gen.InformationPoints("storm", 10*time.Second)))
	d, err := New("cold-storm", cfg, engine, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := d.Run(context.Background())
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Indeterminate != 0 {
		t.Fatalf("%d Indeterminate cold decisions; PIP chain not resolving", res.Indeterminate)
	}
	if res.Permit == 0 {
		t.Fatal("no permits; roles did not resolve through the PIP")
	}
}

func TestChurnWritesFlowThroughAdmin(t *testing.T) {
	cfg := smallConfig(200 * time.Millisecond)
	cfg.ChurnEvery = 16
	gen := workload.NewGenerator(cfg.Workload)
	engine := pdp.New("churn-test")
	st := pap.NewStore("churn-test")
	base := gen.PolicyBase("root")
	for _, ch := range base.Children {
		if _, err := st.Put(ch); err != nil {
			t.Fatal(err)
		}
	}
	if err := engine.SetRoot(base); err != nil {
		t.Fatal(err)
	}
	st.Watch(func(u pap.Update) {
		if err := engine.ApplyUpdate(pdp.Update{ID: u.ID, Child: u.Policy}); err != nil {
			t.Errorf("apply update %s: %v", u.ID, err)
		}
	})
	d, err := New("policy-churn", cfg, engine, StoreAdmin{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	res := d.Run(context.Background())
	if res.ChurnWrites == 0 {
		t.Fatal("no churn writes issued")
	}
	if res.ChurnErrors != 0 {
		t.Fatalf("%d churn errors", res.ChurnErrors)
	}
	if res.Indeterminate != 0 {
		t.Fatalf("%d Indeterminate decisions under churn", res.Indeterminate)
	}
}

func TestChurnRequiresAdmin(t *testing.T) {
	cfg := smallConfig(time.Millisecond)
	cfg.ChurnEvery = 8
	if _, err := New("x", cfg, &slowTarget{}, nil); err == nil {
		t.Fatal("churn without admin accepted")
	}
}

func TestNilTargetRejected(t *testing.T) {
	if _, err := New("x", smallConfig(time.Millisecond), nil, nil); err == nil {
		t.Fatal("nil target accepted")
	}
}

func TestTimeoutFailsClosed(t *testing.T) {
	cfg := smallConfig(100 * time.Millisecond)
	cfg.Timeout = 2 * time.Millisecond
	target := &slowTarget{delay: time.Second}
	cfg.Workers = 64
	cfg.QueueCap = 4096
	d, err := New("stalled", cfg, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := d.Run(context.Background())
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Indeterminate != res.Completed {
		t.Fatalf("stalled target: %d/%d decisions escaped the deadline as conclusive",
			res.Conclusive(), res.Completed)
	}
	if target.decided.Load() != 0 {
		t.Fatalf("%d decisions outran a 2ms budget on a 1s stall", target.decided.Load())
	}
}

func TestRunHonoursContextCancel(t *testing.T) {
	cfg := smallConfig(time.Hour) // would run forever without the cancel
	engine := testEngine(t, cfg.Workload)
	d, err := New("cancel", cfg, engine, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	done := make(chan Result, 1)
	go func() { done <- d.Run(ctx) }()
	select {
	case res := <-done:
		if res.Offered == 0 {
			t.Fatal("cancelled run offered nothing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after ctx cancel")
	}
}

func TestScenarioCatalog(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Catalog() {
		if s.Name == "" || s.Description == "" {
			t.Fatalf("catalog entry missing name/description: %+v", s)
		}
		if names[s.Name] {
			t.Fatalf("duplicate scenario %s", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"steady-zipf", "cold-storm", "policy-churn", "flash-crowd"} {
		if !names[want] {
			t.Errorf("catalog missing %s", want)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario looked up without error")
	}

	fc, err := Lookup("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	fc = fc.WithDuration(10 * time.Second)
	b := fc.Config.Workload.Burst
	if b.After != 4*time.Second || b.For != 2*time.Second || b.Factor <= 1 {
		t.Fatalf("burst window not anchored: %+v", b)
	}
	sz, _ := Lookup("steady-zipf")
	sz = sz.WithRate(4000)
	if got := sz.Config.Workload.MeanInterarrival; got != 250*time.Microsecond {
		t.Fatalf("WithRate(4000) mean interarrival = %v", got)
	}
}
