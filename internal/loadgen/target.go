package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/pap"
	"repro/internal/policy"
	"repro/internal/wire"
	"repro/internal/xacml"
)

// NetworkTarget drives a PDP registered on an in-process wire.Network: the
// simulated-transport flavour of the open-loop harness, where link
// partitions, latency and loss come from the network model instead of a
// real socket. Transport failures surface as Indeterminate — the same
// fail-closed contract as pdp.Client.
type NetworkTarget struct {
	// Net is the simulated network; From and To name the sending PEP and
	// the serving PDP node.
	Net  *wire.Network
	From string
	To   string
	// Budget, when positive, arms each exchange's virtual deadline.
	Budget time.Duration

	serial atomic.Int64
}

// Decide implements Target over one envelope exchange.
func (t *NetworkTarget) Decide(ctx context.Context, req *policy.Request) policy.Result {
	body, err := xacml.MarshalRequestXML(req)
	if err != nil {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("loadgen: encode request: %w", err)}
	}
	env := &wire.Envelope{
		MessageID: fmt.Sprintf("%s-l%d", t.From, t.serial.Add(1)),
		From:      t.From,
		To:        t.To,
		Action:    "pdp:decide",
		Timestamp: time.Now(),
		Deadline:  t.Budget,
		Body:      body,
	}
	reply, err := t.Net.Send(ctx, &wire.Call{}, env)
	if err != nil {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("loadgen: %w", err)}
	}
	if reply == nil {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("loadgen: empty reply from %s", t.To)}
	}
	res, err := xacml.UnmarshalResponseXML(reply.Body)
	if err != nil {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("loadgen: decode response: %w", err)}
	}
	return res
}

// StoreAdmin adapts an in-process pap.Store to the Admin plane, for
// harness runs against in-process engines and clusters.
type StoreAdmin struct {
	Store *pap.Store
}

// Put implements Admin.
func (a StoreAdmin) Put(_ context.Context, pol policy.Evaluable) error {
	_, err := a.Store.Put(pol)
	return err
}

// Delete implements Admin.
func (a StoreAdmin) Delete(_ context.Context, id string) error {
	return a.Store.Delete(id)
}

// HTTPAdmin drives a real pdpd's /admin/policy endpoint, the churn plane
// of runs against a live daemon.
type HTTPAdmin struct {
	// Endpoint is the full admin URL, e.g. "http://host:port/admin/policy".
	Endpoint string
	// Client is the underlying HTTP client; nil uses a 10s-timeout default.
	Client *http.Client
}

func (a HTTPAdmin) client() *http.Client {
	if a.Client != nil {
		return a.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Put implements Admin: POST the policy as XACML JSON. A 409 (the strict
// lint gate) and any non-2xx are errors — an unacknowledged write.
func (a HTTPAdmin) Put(ctx context.Context, pol policy.Evaluable) error {
	doc, err := xacml.MarshalJSON(pol)
	if err != nil {
		return fmt.Errorf("loadgen: encode policy: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.Endpoint, bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("loadgen: admin put %s: %s: %s", pol.EntityID(), resp.Status, body)
	}
	return nil
}

// Delete implements Admin.
func (a HTTPAdmin) Delete(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		a.Endpoint+"?id="+url.QueryEscape(id), nil)
	if err != nil {
		return err
	}
	resp, err := a.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("loadgen: admin delete %s: %s: %s", id, resp.Status, body)
	}
	return nil
}
