package loadgen

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/wire"
	"repro/internal/workload"

	"repro/internal/pdp"
)

func TestNetworkTargetDecidesOverWire(t *testing.T) {
	wcfg := workload.Config{Users: 10, Resources: 8, Roles: 2, Seed: 1}
	engine := testEngine(t, wcfg)
	net := wire.NewNetwork(time.Millisecond, 1)
	net.Register("pep", func(context.Context, *wire.Call, *wire.Envelope) (*wire.Envelope, error) {
		return nil, nil
	})
	net.Register("pdp", pdp.Handler(engine))

	target := &NetworkTarget{Net: net, From: "pep", To: "pdp"}
	req := policy.NewAccessRequest(workload.UserID(0), workload.ResourceID(0), "read").
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String(workload.RoleID(0)))
	res := target.Decide(context.Background(), req)
	if res.Decision != policy.DecisionPermit {
		t.Fatalf("decision over wire = %v (%v), want Permit", res.Decision, res.Err)
	}

	// Partition the PEP->PDP link: decisions must fail closed.
	net.SetLink("pep", "pdp", wire.LinkProps{Down: true})
	res = target.Decide(context.Background(), req)
	if res.Decision != policy.DecisionIndeterminate || !errors.Is(res.Err, wire.ErrUnreachable) {
		t.Fatalf("partitioned decision = %v (%v), want Indeterminate/unreachable", res.Decision, res.Err)
	}
	net.SetLink("pep", "pdp", wire.LinkProps{Latency: time.Millisecond})
	if res := target.Decide(context.Background(), req); res.Decision != policy.DecisionPermit {
		t.Fatalf("healed link decision = %v (%v), want Permit", res.Decision, res.Err)
	}
}

func TestNetworkTargetBudgetFailsClosed(t *testing.T) {
	wcfg := workload.Config{Users: 10, Resources: 8, Roles: 2, Seed: 1}
	engine := testEngine(t, wcfg)
	net := wire.NewNetwork(10*time.Millisecond, 1) // 10ms per hop on the virtual clock
	net.Register("pep", func(context.Context, *wire.Call, *wire.Envelope) (*wire.Envelope, error) {
		return nil, nil
	})
	net.Register("pdp", pdp.Handler(engine))
	target := &NetworkTarget{Net: net, From: "pep", To: "pdp", Budget: 5 * time.Millisecond}
	req := policy.NewAccessRequest("u", workload.ResourceID(0), "read")
	res := target.Decide(context.Background(), req)
	if res.Decision != policy.DecisionIndeterminate || !errors.Is(res.Err, wire.ErrDeadline) {
		t.Fatalf("budget < link latency: %v (%v), want Indeterminate/deadline", res.Decision, res.Err)
	}
}

func TestHTTPAdminPutAndDelete(t *testing.T) {
	var gotPut, gotDelete bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			gotPut = true
			w.WriteHeader(http.StatusOK)
		case http.MethodDelete:
			gotDelete = true
			if r.URL.Query().Get("id") == "" {
				http.Error(w, "no id", http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer srv.Close()
	adm := HTTPAdmin{Endpoint: srv.URL + "/admin/policy"}
	pol := workload.ResourcePolicy(0, 2)
	if err := adm.Put(context.Background(), pol); err != nil {
		t.Fatal(err)
	}
	if err := adm.Delete(context.Background(), pol.EntityID()); err != nil {
		t.Fatal(err)
	}
	if !gotPut || !gotDelete {
		t.Fatalf("put=%v delete=%v", gotPut, gotDelete)
	}
}

func TestHTTPAdminRejectionIsError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "conflict", http.StatusConflict)
	}))
	defer srv.Close()
	adm := HTTPAdmin{Endpoint: srv.URL}
	if err := adm.Put(context.Background(), workload.ResourcePolicy(0, 2)); err == nil {
		t.Fatal("409 put acknowledged as success")
	}
}
