package loadgen

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/workload"
)

// Scenario is a named, documented load shape — the unit cmd/loadd runs and
// the README catalogs. Each scenario states what it stresses and what a
// healthy system looks like under it; the chaos schedules compose on top.
type Scenario struct {
	// Name is the catalog key (loadd -scenario).
	Name string
	// Description states the stress and the acceptance shape, the
	// scoped-scenario style of the spacetime-sim issue template.
	Description string
	// Config is the driver configuration at the default duration;
	// WithDuration rescales the time-anchored parts.
	Config Config
}

// basePopulation is the shared population shape: enough resources that
// the Zipf tail stays long, users sized per scenario.
func basePopulation(users int) workload.Config {
	return workload.Config{
		Users:            users,
		Resources:        256,
		Roles:            16,
		ZipfS:            1.2,
		MeanInterarrival: 500 * time.Microsecond, // ~2000 arrivals/s offered
	}
}

// Catalog returns the built-in scenarios, name-sorted.
func Catalog() []Scenario {
	scenarios := []Scenario{
		{
			Name: "brownout",
			Description: "Partial-outage brownout: steady Zipf traffic while the operator " +
				"(loadd -chaos-partition or /admin/chaos) crashes one shard group mid-run. " +
				"Healthy with resilience armed: the shard's breaker opens within ~1s, warm " +
				"keys keep answering served-stale within the grace window (degraded > 0), " +
				"cold keys fail fast instead of queueing, and goodput holds a floor through " +
				"the outage; after revival the breaker probe closes and degraded stops.",
			Config: Config{
				Workload: basePopulation(10000),
				Workers:  32,
				QueueCap: 4096,
				Timeout:  250 * time.Millisecond,
			},
		},
		{
			Name: "steady-zipf",
			Description: "Steady-state open-loop baseline: Poisson arrivals at ~2k/s, " +
				"Zipf(1.2) resource popularity, warm subjects. Healthy: goodput ~= offered, " +
				"p99 well under the arrival interval, zero shed.",
			Config: Config{
				Workload: basePopulation(10000),
				Workers:  32,
				QueueCap: 4096,
				Timeout:  250 * time.Millisecond,
			},
		},
		{
			Name: "cold-storm",
			Description: "Cold-subject storm: a large subject population arrives with no " +
				"attributes, forcing every decision through the PIP chain mid-evaluation. " +
				"Healthy: miss coalescing keeps goodput up and the PIP never melts; " +
				"Indeterminate stays near zero.",
			Config: Config{
				Workload: basePopulation(50000),
				Workers:  32,
				QueueCap: 4096,
				Timeout:  250 * time.Millisecond,
				Cold:     true,
			},
		},
		{
			Name: "policy-churn",
			Description: "Admin-plane churn under read load: one policy rewrite per 64 " +
				"arrivals rides /admin/policy while decisions flow. Healthy: the delta " +
				"pipeline keeps caches warm, goodput holds, no refresh errors.",
			Config: Config{
				Workload:   basePopulation(10000),
				Workers:    32,
				QueueCap:   4096,
				Timeout:    250 * time.Millisecond,
				ChurnEvery: 64,
			},
		},
		{
			Name: "flash-crowd",
			Description: "Flash crowd on one tenant: the arrival rate jumps 10x for the " +
				"middle fifth of the run (workload.Burst), concentrated by Zipf skew on " +
				"the hottest resources. Healthy: the queue absorbs the spike as bounded " +
				"latency, shed stays near zero, and p99 recovers after the window.",
			Config: Config{
				Workload: func() workload.Config {
					w := basePopulation(10000)
					w.Burst = workload.Burst{Factor: 10} // window anchored by WithDuration
					return w
				}(),
				Workers:  32,
				QueueCap: 8192,
				Timeout:  500 * time.Millisecond,
			},
		},
	}
	sort.Slice(scenarios, func(i, j int) bool { return scenarios[i].Name < scenarios[j].Name })
	return scenarios
}

// Lookup finds a catalog scenario by name.
func Lookup(name string) (Scenario, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, len(Catalog()))
	for _, s := range Catalog() {
		names = append(names, s.Name)
	}
	return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (have %v)", name, names)
}

// WithDuration sets the run length and re-anchors time-proportional parts
// of the scenario: a Burst window (flash-crowd) spans the middle fifth of
// the run.
func (s Scenario) WithDuration(d time.Duration) Scenario {
	s.Config.Duration = d
	if s.Config.Workload.Burst.Factor > 1 {
		s.Config.Workload.Burst.After = d * 2 / 5
		s.Config.Workload.Burst.For = d / 5
	}
	return s
}

// WithRate overrides the mean arrival rate (arrivals per second).
func (s Scenario) WithRate(perSec float64) Scenario {
	if perSec > 0 {
		s.Config.Workload.MeanInterarrival = time.Duration(float64(time.Second) / perSec)
	}
	return s
}
