// Package loadgen is the open-loop traffic driver behind cmd/loadd: it
// fires Zipf-skewed decision requests at a decision point on an
// arrival-rate schedule that does not slow down when the target does. The
// paper's architecture is sized for real user populations, and a real
// population is open-loop — users arrive when they arrive, not when the
// previous answer returns. Closed-loop benchmarks hide overload behind
// coordinated omission; this driver measures every request from its
// *scheduled* arrival instant, so queueing delay under overload shows up
// as latency rather than silently shrinking the offered rate.
//
// The queue model is explicit: arrivals land in a bounded queue drained by
// a fixed pool of virtual enforcement points. A full queue sheds the
// arrival (counted, never blocking the arrival process), a slow target
// grows the queue and therefore the measured latency. Latency histograms
// reuse internal/telemetry's lock-free log-bucketed histogram; results
// export as internal/benchfmt entries so every run extends the committed
// BENCH_<PR>.json perf trajectory.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Target is the decision point under load. pdp.Engine, cluster.Router,
// pdp.Client (a real pdpd over HTTP) and NetworkTarget (the in-process
// wire network) all satisfy it.
type Target interface {
	Decide(ctx context.Context, req *policy.Request) policy.Result
}

// Admin is the policy administration plane the churn scenarios write
// through: a real pdpd's /admin/policy (HTTPAdmin) or an in-process
// pap.Store (StoreAdmin).
type Admin interface {
	Put(ctx context.Context, pol policy.Evaluable) error
	Delete(ctx context.Context, id string) error
}

// Config parameterises one open-loop run.
type Config struct {
	// Workload shapes the population and the arrival process (Zipf skew,
	// Poisson mean interarrival, optional Burst window).
	Workload workload.Config
	// Duration bounds the arrival schedule; 2s when zero.
	Duration time.Duration
	// Workers is the virtual-PEP pool draining the queue; 16 when zero.
	Workers int
	// QueueCap bounds the arrival queue; beyond it arrivals are shed
	// (counted). 1024 when zero.
	QueueCap int
	// Timeout is the per-decision deadline budget (0 leaves decisions
	// unbounded); expiry surfaces as Indeterminate, fail-closed.
	Timeout time.Duration
	// Cold sends requests without subject attributes, forcing the target
	// through its PIP chain mid-evaluation — the cold-subject storm.
	Cold bool
	// ChurnEvery issues one admin policy rewrite per that many arrivals
	// (0 disables churn). Requires an Admin on the Driver.
	ChurnEvery int
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	return c
}

// Result is the accounting of one run.
type Result struct {
	// Scenario names the run in reports and benchmark entries.
	Scenario string
	// Elapsed is the wall time from first scheduled arrival to last
	// completion.
	Elapsed time.Duration
	// Offered counts scheduled arrivals; Completed the decisions that
	// ran; Shed the arrivals dropped on a full queue.
	Offered, Completed, Shed int64
	// Permit, Deny, NotApplicable and Indeterminate split Completed by
	// outcome. Goodput is the conclusive (non-Indeterminate) share.
	Permit, Deny, NotApplicable, Indeterminate int64
	// Rejected counts decisions the server refused under admission control
	// (HTTP 503/429, wire.ErrOverload) — server-side load shedding, split
	// out of Indeterminate and distinct from harness-side queue Shed.
	Rejected int64
	// Degraded counts completed decisions marked served-stale by a
	// degraded-mode layer (open breaker downstream); they still count in
	// their outcome bucket, so brownout goodput includes them.
	Degraded int64
	// ChurnWrites and ChurnErrors count admin-plane rewrites issued by
	// the churn scenario.
	ChurnWrites, ChurnErrors int64
	// QueueMax is the deepest the arrival queue got.
	QueueMax int64
	// Latency is the scheduled-arrival-to-completion distribution: it
	// includes queueing delay, so overload reads as latency.
	Latency telemetry.HistogramSnapshot
}

// Conclusive counts decisions that answered (Permit/Deny/NotApplicable).
func (r Result) Conclusive() int64 { return r.Permit + r.Deny + r.NotApplicable }

// GoodputPerSec is the conclusive decision rate over the run.
func (r Result) GoodputPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Conclusive()) / r.Elapsed.Seconds()
}

// OfferedPerSec is the scheduled arrival rate actually achieved.
func (r Result) OfferedPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Offered) / r.Elapsed.Seconds()
}

// frac renders a per-offered fraction, 0 when nothing was offered.
func (r Result) frac(n int64) float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(n) / float64(r.Offered)
}

// Benchmark exports the result as one benchfmt entry named
// "Loadgen/<scenario>". Metric units follow the comparator's direction
// convention: *-ns/op latencies and per-offered fractions are
// lower-better, rates are higher-better.
func (r Result) Benchmark() benchfmt.Benchmark {
	return benchfmt.Benchmark{
		Name: "Loadgen/" + r.Scenario,
		Runs: r.Completed,
		Metrics: map[string]float64{
			"p50-ns/op":        float64(r.Latency.Quantile(0.50)),
			"p95-ns/op":        float64(r.Latency.Quantile(0.95)),
			"p99-ns/op":        float64(r.Latency.Quantile(0.99)),
			"mean-ns/op":       float64(r.Latency.Mean()),
			"goodput/s":        r.GoodputPerSec(),
			"offered/s":        r.OfferedPerSec(),
			"shed/op":          r.frac(r.Shed),
			"indeterminate/op": r.frac(r.Indeterminate),
			"rejected/op":      r.frac(r.Rejected),
			"degraded/op":      r.frac(r.Degraded),
		},
	}
}

// String renders the one-line human summary loadd logs per scenario.
func (r Result) String() string {
	return fmt.Sprintf(
		"%s: offered %d (%.0f/s) completed %d shed %d rejected %d | permit/deny/na/indet %d/%d/%d/%d degraded %d | goodput %.0f/s | p50 %v p99 %v max-queue %d",
		r.Scenario, r.Offered, r.OfferedPerSec(), r.Completed, r.Shed, r.Rejected,
		r.Permit, r.Deny, r.NotApplicable, r.Indeterminate, r.Degraded,
		r.GoodputPerSec(), r.Latency.Quantile(0.5), r.Latency.Quantile(0.99), r.QueueMax)
}

// Driver runs one open-loop scenario against a target.
type Driver struct {
	name   string
	cfg    Config
	target Target
	admin  Admin
}

// New builds a driver. admin may be nil unless cfg.ChurnEvery > 0.
func New(name string, cfg Config, target Target, admin Admin) (*Driver, error) {
	cfg = cfg.withDefaults()
	if target == nil {
		return nil, errors.New("loadgen: nil target")
	}
	if cfg.ChurnEvery > 0 && admin == nil {
		return nil, errors.New("loadgen: churn scenario needs an Admin")
	}
	return &Driver{name: name, cfg: cfg, target: target, admin: admin}, nil
}

// arrival is one scheduled request: latency is measured against sched, not
// against dequeue, so time spent queued is part of the answer.
type arrival struct {
	req   *policy.Request
	sched time.Time
}

// Run executes the open-loop schedule until the configured duration has
// elapsed on the arrival clock (or ctx is done, whichever is first),
// drains the queue, and returns the accounting.
func (d *Driver) Run(ctx context.Context) Result {
	cfg := d.cfg
	gen := workload.NewGenerator(cfg.Workload)
	queue := make(chan arrival, cfg.QueueCap)

	var (
		offered, shed, completed           atomic.Int64
		permit, deny, notApplicable, indet atomic.Int64
		rejected, degraded                 atomic.Int64
		churnWrites, churnErrors           atomic.Int64
		queueMax                           int64
		hist                               telemetry.Histogram
	)

	// Worker pool: each virtual PEP decides queued arrivals under the
	// per-decision timeout and records completion latency from the
	// scheduled arrival instant.
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range queue {
				dctx := ctx
				var cancel context.CancelFunc
				if cfg.Timeout > 0 {
					dctx, cancel = context.WithDeadline(ctx, a.sched.Add(cfg.Timeout))
				}
				res := d.target.Decide(dctx, a.req)
				if cancel != nil {
					cancel()
				}
				hist.Observe(time.Since(a.sched))
				completed.Add(1)
				if res.Degraded {
					degraded.Add(1)
				}
				switch {
				case res.Decision == policy.DecisionPermit:
					permit.Add(1)
				case res.Decision == policy.DecisionDeny:
					deny.Add(1)
				case res.Decision == policy.DecisionNotApplicable:
					notApplicable.Add(1)
				case errors.Is(res.Err, wire.ErrOverload):
					// Server-side admission shed: refused, not broken —
					// accounted apart from real Indeterminates.
					rejected.Add(1)
				default:
					indet.Add(1)
				}
			}
		}()
	}

	// Churn writer: admin rewrites ride a small side queue so a slow
	// admin plane never stalls the arrival process.
	var churnQ chan int
	var churnWG sync.WaitGroup
	if cfg.ChurnEvery > 0 {
		churnQ = make(chan int, 64)
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			roles := cfg.Workload.Roles
			if roles <= 0 {
				roles = 1
			}
			for i := range churnQ {
				pol := workload.ResourcePolicy(i%cfg.Workload.Resources, roles)
				if err := d.admin.Put(ctx, pol); err != nil {
					churnErrors.Add(1)
				} else {
					churnWrites.Add(1)
				}
			}
		}()
	}

	// Open-loop scheduler: arrivals fire on the virtual arrival clock
	// mapped onto wall time, independent of response progress. A full
	// queue sheds; it never pushes back on the schedule.
	start := time.Now()
	churnCountdown := cfg.ChurnEvery
	for gen.ArrivalClock() < cfg.Duration && ctx.Err() == nil {
		gen.NextInterarrival()
		sched := start.Add(gen.ArrivalClock())
		if wait := time.Until(sched); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		var req *policy.Request
		if cfg.Cold {
			req = gen.NextRequest()
		} else {
			req = gen.WarmRequest()
		}
		offered.Add(1)
		select {
		case queue <- arrival{req: req, sched: sched}:
			if depth := int64(len(queue)); depth > queueMax {
				queueMax = depth
			}
		default:
			shed.Add(1)
		}
		if cfg.ChurnEvery > 0 {
			churnCountdown--
			if churnCountdown <= 0 {
				churnCountdown = cfg.ChurnEvery
				select {
				case churnQ <- int(offered.Load()):
				default:
					// Admin plane saturated; skip rather than stall.
				}
			}
		}
	}
	close(queue)
	wg.Wait()
	if churnQ != nil {
		close(churnQ)
		churnWG.Wait()
	}

	return Result{
		Scenario:      d.name,
		Elapsed:       time.Since(start),
		Offered:       offered.Load(),
		Completed:     completed.Load(),
		Shed:          shed.Load(),
		Permit:        permit.Load(),
		Deny:          deny.Load(),
		NotApplicable: notApplicable.Load(),
		Indeterminate: indet.Load(),
		Rejected:      rejected.Load(),
		Degraded:      degraded.Load(),
		ChurnWrites:   churnWrites.Load(),
		ChurnErrors:   churnErrors.Load(),
		QueueMax:      queueMax,
		Latency:       hist.Snapshot(),
	}
}
