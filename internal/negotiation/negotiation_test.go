package negotiation

import (
	"errors"
	"testing"
)

// hospitalScenario models the paper's stranger-collaboration case: a
// researcher wants a dataset from a hospital neither has met before.
//
//	server policy: dataset needs {researcher-cert AND ethics-approval}
//	researcher-cert is guarded by the server first proving accreditation
//	accreditation is guarded by the client first showing affiliation
//	affiliation and ethics-approval are freely disclosable
func hospitalScenario() (*Party, *Party) {
	client := NewParty("researcher")
	client.AddCredential(Credential{Name: "affiliation"})
	client.AddCredential(Credential{Name: "ethics-approval"})
	client.AddCredential(Credential{
		Name:       "researcher-cert",
		Disclosure: Requirement{{"hospital-accreditation"}},
	})
	client.AddCredential(Credential{Name: "irrelevant-gym-membership"})

	server := NewParty("hospital")
	server.AddCredential(Credential{
		Name:       "hospital-accreditation",
		Disclosure: Requirement{{"affiliation"}},
	})
	server.AddCredential(Credential{Name: "irrelevant-iso-cert"})
	server.SetAccessPolicy("dataset", Requirement{{"researcher-cert", "ethics-approval"}})
	return client, server
}

func TestEagerNegotiationSucceeds(t *testing.T) {
	client, server := hospitalScenario()
	tr, err := Negotiate(client, server, "dataset", Eager)
	if err != nil {
		t.Fatalf("Negotiate: %v", err)
	}
	if !tr.Succeeded {
		t.Fatal("negotiation should succeed")
	}
	if tr.Rounds == 0 || tr.Messages < 4 {
		t.Errorf("transcript = %+v", tr)
	}
	// Eager over-shares: the irrelevant credential leaks.
	if tr.ClientDisclosed < 4 {
		t.Errorf("eager client disclosed %d credentials, expected all 4", tr.ClientDisclosed)
	}
}

func TestParsimoniousDisclosesLess(t *testing.T) {
	client, server := hospitalScenario()
	eager, err := Negotiate(client, server, "dataset", Eager)
	if err != nil {
		t.Fatal(err)
	}
	client2, server2 := hospitalScenario()
	pars, err := Negotiate(client2, server2, "dataset", Parsimonious)
	if err != nil {
		t.Fatalf("parsimonious: %v", err)
	}
	if !pars.Succeeded {
		t.Fatal("parsimonious negotiation should succeed")
	}
	if pars.ClientDisclosed >= eager.ClientDisclosed {
		t.Errorf("parsimonious disclosed %d, eager %d: parsimonious must share less",
			pars.ClientDisclosed, eager.ClientDisclosed)
	}
	// Exactly the 3 relevant client credentials.
	if pars.ClientDisclosed != 3 {
		t.Errorf("parsimonious client disclosed %d, want 3", pars.ClientDisclosed)
	}
	if pars.ServerDisclosed != 1 {
		t.Errorf("parsimonious server disclosed %d, want 1 (accreditation)", pars.ServerDisclosed)
	}
}

func TestNegotiationFailsWithoutCredentials(t *testing.T) {
	client := NewParty("stranger")
	_, server := hospitalScenario()
	tr, err := Negotiate(client, server, "dataset", Eager)
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("want ErrFailed, got %v", err)
	}
	if tr.Succeeded {
		t.Error("transcript must record failure")
	}
}

func TestNegotiationFailsOnDeadlock(t *testing.T) {
	// Mutual guarding with no unprotected entry point: a deadlock.
	client := NewParty("c")
	client.AddCredential(Credential{Name: "a", Disclosure: Requirement{{"b"}}})
	server := NewParty("s")
	server.AddCredential(Credential{Name: "b", Disclosure: Requirement{{"a"}}})
	server.SetAccessPolicy("r", Requirement{{"a"}})
	if _, err := Negotiate(client, server, "r", Eager); !errors.Is(err, ErrFailed) {
		t.Errorf("deadlock: want ErrFailed, got %v", err)
	}
}

func TestNegotiationUnknownResource(t *testing.T) {
	client, server := hospitalScenario()
	if _, err := Negotiate(client, server, "ghost", Eager); !errors.Is(err, ErrNoPolicy) {
		t.Errorf("want ErrNoPolicy, got %v", err)
	}
}

func TestDisjunctiveAccessPolicy(t *testing.T) {
	// Either a researcher certificate or a staff badge suffices.
	client := NewParty("staff-member")
	client.AddCredential(Credential{Name: "staff-badge"})
	server := NewParty("hospital")
	server.SetAccessPolicy("dataset", Requirement{
		{"researcher-cert", "ethics-approval"},
		{"staff-badge"},
	})
	tr, err := Negotiate(client, server, "dataset", Parsimonious)
	if err != nil || !tr.Succeeded {
		t.Fatalf("disjunctive policy: %+v, %v", tr, err)
	}
	if tr.ClientDisclosed != 1 {
		t.Errorf("disclosed %d, want just the badge", tr.ClientDisclosed)
	}
}

func TestUnprotectedResource(t *testing.T) {
	client := NewParty("anyone")
	server := NewParty("open-server")
	server.SetAccessPolicy("public", nil)
	tr, err := Negotiate(client, server, "public", Eager)
	if err != nil || !tr.Succeeded {
		t.Fatalf("open resource: %+v, %v", tr, err)
	}
	if tr.ClientDisclosed != 0 {
		t.Errorf("no credentials should be needed, disclosed %d", tr.ClientDisclosed)
	}
}

func TestRequirementSatisfied(t *testing.T) {
	disclosed := map[string]struct{}{"a": {}, "b": {}}
	cases := []struct {
		name string
		req  Requirement
		want bool
	}{
		{"nil", nil, true},
		{"single-hit", Requirement{{"a"}}, true},
		{"conjunction-hit", Requirement{{"a", "b"}}, true},
		{"conjunction-miss", Requirement{{"a", "c"}}, false},
		{"disjunction-hit", Requirement{{"c"}, {"b"}}, true},
		{"disjunction-miss", Requirement{{"c"}, {"d"}}, false},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.req.Satisfied(disclosed); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDeepChainNegotiation(t *testing.T) {
	// A five-deep alternating guard chain still converges.
	client := NewParty("c")
	server := NewParty("s")
	client.AddCredential(Credential{Name: "c0"})
	server.AddCredential(Credential{Name: "s0", Disclosure: Requirement{{"c0"}}})
	client.AddCredential(Credential{Name: "c1", Disclosure: Requirement{{"s0"}}})
	server.AddCredential(Credential{Name: "s1", Disclosure: Requirement{{"c1"}}})
	client.AddCredential(Credential{Name: "c2", Disclosure: Requirement{{"s1"}}})
	server.SetAccessPolicy("r", Requirement{{"c2"}})

	for _, strat := range []Strategy{Eager, Parsimonious} {
		c, s := client, server
		tr, err := Negotiate(c, s, "r", strat)
		if err != nil || !tr.Succeeded {
			t.Errorf("%s: %+v, %v", strat, tr, err)
		}
		if tr.Rounds < 4 {
			t.Errorf("%s: deep chain resolved in %d rounds, expected several", strat, tr.Rounds)
		}
	}
}
