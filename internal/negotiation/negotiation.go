// Package negotiation implements automated trust negotiation (Section 3.1
// of the paper, after Winsborough et al. and the Traust service): two
// strangers incrementally establish trust by alternately disclosing
// credentials, each protected by its own disclosure policy naming the
// credentials the peer must reveal first.
//
// Two classic strategies are provided:
//
//   - eager: each turn discloses every credential whose disclosure policy
//     the peer has already satisfied — converges fast but over-shares;
//   - parsimonious: discloses only credentials on a backward-chained path
//     from the access policy under negotiation — shares minimally at the
//     cost of extra rounds of computation.
package negotiation

import (
	"errors"
	"fmt"
	"sort"
)

// Negotiation errors, matched with errors.Is.
var (
	// ErrFailed reports a negotiation that reached a fixpoint without
	// satisfying the access policy.
	ErrFailed = errors.New("negotiation: negotiation failed")
	// ErrNoPolicy reports a resource the server has no access policy for.
	ErrNoPolicy = errors.New("negotiation: no access policy for resource")
)

// Requirement is a disjunction of conjunctions over credential names: it is
// satisfied when every credential of at least one alternative has been
// disclosed. A nil Requirement is trivially satisfied (unprotected).
type Requirement [][]string

// Satisfied evaluates the requirement against a disclosed set.
func (r Requirement) Satisfied(disclosed map[string]struct{}) bool {
	if len(r) == 0 {
		return true
	}
	for _, alt := range r {
		ok := true
		for _, c := range alt {
			if _, has := disclosed[c]; !has {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// credentials mentions every credential named anywhere in the requirement.
func (r Requirement) credentials() []string {
	seen := make(map[string]struct{})
	var out []string
	for _, alt := range r {
		for _, c := range alt {
			if _, ok := seen[c]; !ok {
				seen[c] = struct{}{}
				out = append(out, c)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Credential is a named credential with a disclosure policy.
type Credential struct {
	// Name identifies the credential, e.g. "employee-of-hospital-a".
	Name string
	// Disclosure must be satisfied by the peer's disclosures before this
	// credential is released. Nil means freely disclosable.
	Disclosure Requirement
}

// Party is one side of a negotiation: its credential wallet and, for
// resource providers, per-resource access policies.
type Party struct {
	// Name identifies the party.
	Name string

	credentials map[string]Credential
	access      map[string]Requirement
}

// NewParty builds a party with an empty wallet.
func NewParty(name string) *Party {
	return &Party{
		Name:        name,
		credentials: make(map[string]Credential),
		access:      make(map[string]Requirement),
	}
}

// AddCredential places a credential in the wallet.
func (p *Party) AddCredential(c Credential) {
	p.credentials[c.Name] = c
}

// SetAccessPolicy declares what a peer must disclose to access a resource.
func (p *Party) SetAccessPolicy(resource string, req Requirement) {
	p.access[resource] = req
}

// Strategy selects which disclosable credentials to actually disclose.
type Strategy int

// Available strategies.
const (
	// Eager discloses everything currently disclosable.
	Eager Strategy = iota + 1
	// Parsimonious discloses only credentials relevant to the
	// negotiation goal, computed by backward chaining.
	Parsimonious
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Eager:
		return "eager"
	case Parsimonious:
		return "parsimonious"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Transcript records the outcome of a negotiation for experiments.
type Transcript struct {
	// Succeeded reports whether the access policy was satisfied.
	Succeeded bool
	// Rounds counts alternating disclosure turns consumed.
	Rounds int
	// ClientDisclosed and ServerDisclosed count credentials revealed by
	// each side — the over-sharing metric distinguishing strategies.
	ClientDisclosed int
	ServerDisclosed int
	// Messages counts protocol messages (one per turn plus the initial
	// request and final grant/refusal).
	Messages int
}

// relevant computes, for both parties, the credentials worth disclosing
// under the parsimonious strategy: a backward-chained need set rooted at
// the access requirement.
func relevant(goal Requirement, client, server *Party) (clientNeed, serverNeed map[string]struct{}) {
	clientNeed = make(map[string]struct{})
	serverNeed = make(map[string]struct{})
	// Worklist items are (owner, credential name).
	type item struct {
		fromClient bool
		name       string
	}
	var queue []item
	for _, c := range goal.credentials() {
		queue = append(queue, item{fromClient: true, name: c})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		var owner *Party
		var need map[string]struct{}
		if it.fromClient {
			owner, need = client, clientNeed
		} else {
			owner, need = server, serverNeed
		}
		if _, done := need[it.name]; done {
			continue
		}
		need[it.name] = struct{}{}
		cred, ok := owner.credentials[it.name]
		if !ok {
			continue
		}
		// Whatever guards this credential must come from the peer.
		for _, peerCred := range cred.Disclosure.credentials() {
			queue = append(queue, item{fromClient: !it.fromClient, name: peerCred})
		}
	}
	return clientNeed, serverNeed
}

// disclosable lists the party's not-yet-disclosed credentials whose
// disclosure policies the peer's disclosures satisfy, filtered to the need
// set when one is given. Output is sorted for determinism.
func disclosable(p *Party, own, peer map[string]struct{}, need map[string]struct{}) []string {
	var out []string
	for name, cred := range p.credentials {
		if _, done := own[name]; done {
			continue
		}
		if need != nil {
			if _, ok := need[name]; !ok {
				continue
			}
		}
		if cred.Disclosure.Satisfied(peer) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Negotiate runs a bilateral negotiation: the client requests access to the
// server's resource and the parties alternate disclosure turns (client
// first) until the access policy is satisfied or neither side can move.
func Negotiate(client, server *Party, resource string, strategy Strategy) (*Transcript, error) {
	goal, ok := server.access[resource]
	if !ok {
		return nil, fmt.Errorf("negotiation: %s has no policy for %q: %w", server.Name, resource, ErrNoPolicy)
	}
	var clientNeed, serverNeed map[string]struct{}
	if strategy == Parsimonious {
		clientNeed, serverNeed = relevant(goal, client, server)
	}

	clientDisclosed := make(map[string]struct{})
	serverDisclosed := make(map[string]struct{})
	tr := &Transcript{Messages: 1} // the initial access request

	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		if goal.Satisfied(clientDisclosed) {
			tr.Succeeded = true
			tr.Messages++ // the final grant
			return tr, nil
		}
		progress := false

		// Client turn.
		give := disclosable(client, clientDisclosed, serverDisclosed, clientNeed)
		if len(give) > 0 {
			for _, name := range give {
				clientDisclosed[name] = struct{}{}
			}
			tr.ClientDisclosed += len(give)
			tr.Messages++
			progress = true
		}
		tr.Rounds++
		if goal.Satisfied(clientDisclosed) {
			tr.Succeeded = true
			tr.Messages++
			return tr, nil
		}

		// Server turn.
		give = disclosable(server, serverDisclosed, clientDisclosed, serverNeed)
		if len(give) > 0 {
			for _, name := range give {
				serverDisclosed[name] = struct{}{}
			}
			tr.ServerDisclosed += len(give)
			tr.Messages++
			progress = true
		}
		tr.Rounds++

		if !progress {
			tr.Messages++ // the final refusal
			return tr, fmt.Errorf("negotiation: %s -> %s for %q stalled after %d rounds: %w",
				client.Name, server.Name, resource, tr.Rounds, ErrFailed)
		}
	}
	tr.Messages++
	return tr, fmt.Errorf("negotiation: %s -> %s for %q exceeded %d rounds: %w",
		client.Name, server.Name, resource, maxRounds, ErrFailed)
}
