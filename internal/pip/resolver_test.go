package pip

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pdp"
	"repro/internal/policy"
)

// countingProvider counts backend fetches per attribute name.
type countingProvider struct {
	inner   Provider
	fetches sync.Map // name -> *int64
}

func (c *countingProvider) Name() string { return "counting" }

func (c *countingProvider) ResolveAttribute(ctx context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	n, _ := c.fetches.LoadOrStore(name, new(int64))
	atomic.AddInt64(n.(*int64), 1)
	return c.inner.ResolveAttribute(ctx, req, cat, name)
}

func (c *countingProvider) count(name string) int64 {
	n, ok := c.fetches.Load(name)
	if !ok {
		return 0
	}
	return atomic.LoadInt64(n.(*int64))
}

// TestRequestResolverMemoisesAcrossEvaluations is the per-request
// memoisation guarantee: however many evaluations one request triggers —
// here a local decision and a VO-style second decision against another
// engine, each consulting the role attribute — the attribute is fetched
// from the information point exactly once.
func TestRequestResolverMemoisesAcrossEvaluations(t *testing.T) {
	dir := NewDirectory("idp")
	dir.AddSubject(Subject{ID: "alice", Roles: []string{"doctor"}})
	backend := &countingProvider{inner: dir}
	resolver := NewRequestResolver(backend)

	rolePolicy := func(id string) *policy.PolicySet {
		return policy.NewPolicySet(id).Combining(policy.DenyOverrides).
			Add(policy.NewPolicy(id + "-p").Combining(policy.FirstApplicable).
				Rule(policy.Permit("ok").When(policy.MatchRole("doctor")).Build()).
				Rule(policy.Deny("no").Build()).
				Build()).
			Build()
	}
	local := pdp.New("local")
	if err := local.SetRoot(rolePolicy("local")); err != nil {
		t.Fatal(err)
	}
	vo := pdp.New("vo")
	if err := vo.SetRoot(rolePolicy("vo")); err != nil {
		t.Fatal(err)
	}

	req := policy.NewAccessRequest("alice", "rec-1", "read")
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ctx := context.Background()
	if res := local.DecideAtWith(ctx, req, at, resolver); res.Decision != policy.DecisionPermit {
		t.Fatalf("local decision %s: %v", res.Decision, res.Err)
	}
	if res := vo.DecideAtWith(ctx, req, at, resolver); res.Decision != policy.DecisionPermit {
		t.Fatalf("vo decision %s: %v", res.Decision, res.Err)
	}
	if got := backend.count(policy.AttrSubjectRole); got != 1 {
		t.Fatalf("role fetched %d times within one request, want exactly 1", got)
	}
}

// TestRequestResolverDoesNotMemoiseErrors: a transient fetch failure must
// not poison later evaluations of the same request.
func TestRequestResolverDoesNotMemoiseErrors(t *testing.T) {
	boom := errors.New("backend down")
	calls := 0
	flaky := policy.ResolverFunc(func(_ context.Context, _ *policy.Request, _ policy.Category, _ string) (policy.Bag, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return policy.Singleton(policy.String("doctor")), nil
	})
	r := NewRequestResolver(flaky)
	ctx := context.Background()
	if _, err := r.ResolveAttribute(ctx, nil, policy.CategorySubject, policy.AttrSubjectRole); !errors.Is(err, boom) {
		t.Fatalf("first fetch err = %v, want %v", err, boom)
	}
	bag, err := r.ResolveAttribute(ctx, nil, policy.CategorySubject, policy.AttrSubjectRole)
	if err != nil || bag.Empty() {
		t.Fatalf("retry after transient failure: bag=%v err=%v", bag, err)
	}
	if calls != 2 {
		t.Fatalf("backend calls = %d, want 2", calls)
	}
}

// blockingProvider blocks every fetch until released, honouring ctx.
type blockingProvider struct {
	release chan struct{}
	fetches atomic.Int64
}

func (b *blockingProvider) Name() string { return "blocking" }

func (b *blockingProvider) ResolveAttribute(ctx context.Context, _ *policy.Request, _ policy.Category, _ string) (policy.Bag, error) {
	b.fetches.Add(1)
	select {
	case <-b.release:
		return policy.Singleton(policy.String("v")), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestCacheCoalescesConcurrentMisses: N concurrent misses for one key
// issue one backend fetch; the waiters share its result.
func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	backend := &blockingProvider{release: make(chan struct{})}
	cache := NewCache(backend, time.Minute, 0)
	req := policy.NewAccessRequest("alice", "r", "read")

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]policy.Bag, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cache.ResolveAttribute(context.Background(), req, policy.CategorySubject, "attr")
		}(i)
	}
	// Wait for the leader to reach the backend, then give stragglers a
	// moment to pile onto the flight before releasing it.
	for backend.fetches.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(backend.release)
	wg.Wait()

	if got := backend.fetches.Load(); got != 1 {
		t.Fatalf("backend fetches = %d, want 1 (coalesced)", got)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil || results[i].Empty() {
			t.Fatalf("waiter %d: bag=%v err=%v", i, results[i], errs[i])
		}
	}
	st := cache.Stats()
	if st.Coalesced != waiters-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, waiters-1)
	}
}

// TestCacheWaiterSurvivesLeaderCancellation: when the flight leader's own
// context dies mid-fetch, waiters with live contexts are not poisoned by
// the leader's ctx error — one of them retries as the new leader and the
// burst still resolves.
func TestCacheWaiterSurvivesLeaderCancellation(t *testing.T) {
	backend := &blockingProvider{release: make(chan struct{})}
	cache := NewCache(backend, time.Minute, 0)
	req := policy.NewAccessRequest("alice", "r", "read")

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := cache.ResolveAttribute(leaderCtx, req, policy.CategorySubject, "attr")
		leaderErr <- err
	}()
	for backend.fetches.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	waiterDone := make(chan error, 1)
	var waiterBag policy.Bag
	go func() {
		bag, err := cache.ResolveAttribute(context.Background(), req, policy.CategorySubject, "attr")
		waiterBag = bag
		waiterDone <- err
	}()
	// Give the waiter a moment to join the flight, then kill the leader.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want Canceled", err)
	}
	// The waiter must retry as the new leader (a second backend fetch)...
	for backend.fetches.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	// ...and succeed once the backend answers.
	close(backend.release)
	if err := <-waiterDone; err != nil || waiterBag.Empty() {
		t.Fatalf("waiter inherited the leader's fate: bag=%v err=%v", waiterBag, err)
	}
}

// TestCacheWaiterHonoursDeadline: a waiter whose context expires abandons
// the in-flight fetch with the ctx error instead of blocking on the
// leader.
func TestCacheWaiterHonoursDeadline(t *testing.T) {
	backend := &blockingProvider{release: make(chan struct{})}
	defer close(backend.release)
	cache := NewCache(backend, time.Minute, 0)
	req := policy.NewAccessRequest("alice", "r", "read")

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _ = cache.ResolveAttribute(context.Background(), req, policy.CategorySubject, "attr")
	}()
	for backend.fetches.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cache.ResolveAttribute(ctx, req, policy.CategorySubject, "attr")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("waiter did not abandon the flight promptly")
	}
}
