// Package pip implements Policy Information Points: the components that
// supply subject, resource and environment attributes to decision points
// during evaluation (Section 2.2 of the paper).
//
// The package offers composable resolvers: static stores, a directory of
// subjects (the Identity Provider view), an access-history provider backing
// Chinese-Wall policies, a chain combining several providers, and a caching
// layer that bounds information-point traffic.
package pip

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Provider is a named attribute source. It extends policy.Resolver with
// introspection used by diagnostics and experiments.
type Provider interface {
	policy.Resolver
	// Name identifies the provider in diagnostics.
	Name() string
}

// StaticStore resolves attributes from an in-memory table keyed by category
// and attribute name. It is safe for concurrent use.
type StaticStore struct {
	name string

	mu    sync.RWMutex
	attrs map[string]policy.Bag
}

var _ Provider = (*StaticStore)(nil)

// NewStaticStore builds an empty static attribute store.
func NewStaticStore(name string) *StaticStore {
	return &StaticStore{name: name, attrs: make(map[string]policy.Bag)}
}

// Name implements Provider.
func (s *StaticStore) Name() string { return s.name }

func staticKey(cat policy.Category, name string) string {
	return cat.String() + "/" + name
}

// Set replaces the values of an attribute.
func (s *StaticStore) Set(cat policy.Category, name string, vals ...policy.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attrs[staticKey(cat, name)] = policy.BagOf(vals...)
}

// ResolveAttribute implements policy.Resolver.
func (s *StaticStore) ResolveAttribute(_ context.Context, _ *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.attrs[staticKey(cat, name)].Clone(), nil
}

// Subject is one entry of the Directory: the attributes an Identity
// Provider asserts about a principal.
type Subject struct {
	// ID is the principal's identifier.
	ID string
	// Domain is the administrative domain that issued the identity.
	Domain string
	// Roles are the subject's activatable roles.
	Roles []string
	// Groups are organisational group memberships.
	Groups []string
	// Clearance is the MAC authorisation level.
	Clearance int64
	// Extra holds any additional attributes by name.
	Extra map[string]policy.Bag
}

// Directory is a subject-attribute provider: given a request carrying a
// subject-id, it supplies the subject's roles, groups, domain, clearance and
// custom attributes. It models the Identity Provider / attribute authority
// the paper's identity-based trust approach relies on.
type Directory struct {
	name string

	mu       sync.RWMutex
	subjects map[string]Subject
}

var _ Provider = (*Directory)(nil)

// NewDirectory builds an empty subject directory.
func NewDirectory(name string) *Directory {
	return &Directory{name: name, subjects: make(map[string]Subject)}
}

// Name implements Provider.
func (d *Directory) Name() string { return d.name }

// AddSubject inserts or replaces a subject entry.
func (d *Directory) AddSubject(s Subject) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.subjects[s.ID] = s
}

// RemoveSubject deletes a subject entry, modelling deprovisioning.
func (d *Directory) RemoveSubject(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.subjects, id)
}

// Subject looks up a subject by ID.
func (d *Directory) Subject(id string) (Subject, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.subjects[id]
	return s, ok
}

// Len reports the number of provisioned subjects.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.subjects)
}

// SubjectIDs returns all provisioned subject identifiers, sorted.
func (d *Directory) SubjectIDs() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]string, 0, len(d.subjects))
	for id := range d.subjects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ResolveAttribute implements policy.Resolver: subject-category attributes
// are looked up by the request's subject-id.
func (d *Directory) ResolveAttribute(_ context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	if cat != policy.CategorySubject || req == nil {
		return nil, nil
	}
	id := req.SubjectID()
	if id == "" {
		return nil, nil
	}
	d.mu.RLock()
	s, ok := d.subjects[id]
	d.mu.RUnlock()
	if !ok {
		return nil, nil
	}
	switch name {
	case policy.AttrSubjectRole:
		bag := make(policy.Bag, 0, len(s.Roles))
		for _, r := range s.Roles {
			bag = append(bag, policy.String(r))
		}
		return bag, nil
	case policy.AttrSubjectGroup:
		bag := make(policy.Bag, 0, len(s.Groups))
		for _, g := range s.Groups {
			bag = append(bag, policy.String(g))
		}
		return bag, nil
	case policy.AttrSubjectDomain:
		if s.Domain == "" {
			return nil, nil
		}
		return policy.Singleton(policy.String(s.Domain)), nil
	case policy.AttrClearance:
		return policy.Singleton(policy.Integer(s.Clearance)), nil
	default:
		return s.Extra[name].Clone(), nil
	}
}

// HistoryProvider records which conflict-of-interest datasets each subject
// has touched, and serves that history as a subject attribute. It backs the
// Brewer–Nash Chinese Wall model (Section 3.1 of the paper).
type HistoryProvider struct {
	name string
	// AttributeName is the subject attribute under which history is
	// served; defaults to "accessed-dataset".
	AttributeName string

	mu      sync.RWMutex
	touched map[string]map[string]struct{} // subject -> dataset set
}

var _ Provider = (*HistoryProvider)(nil)

// NewHistoryProvider builds an empty access-history provider.
func NewHistoryProvider(name string) *HistoryProvider {
	return &HistoryProvider{
		name:          name,
		AttributeName: "accessed-dataset",
		touched:       make(map[string]map[string]struct{}),
	}
}

// Name implements Provider.
func (h *HistoryProvider) Name() string { return h.name }

// Record notes that the subject accessed the dataset.
func (h *HistoryProvider) Record(subject, dataset string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	set, ok := h.touched[subject]
	if !ok {
		set = make(map[string]struct{})
		h.touched[subject] = set
	}
	set[dataset] = struct{}{}
}

// Accessed reports whether the subject has touched the dataset.
func (h *HistoryProvider) Accessed(subject, dataset string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	_, ok := h.touched[subject][dataset]
	return ok
}

// ResolveAttribute implements policy.Resolver.
func (h *HistoryProvider) ResolveAttribute(_ context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	if cat != policy.CategorySubject || name != h.AttributeName || req == nil {
		return nil, nil
	}
	id := req.SubjectID()
	h.mu.RLock()
	defer h.mu.RUnlock()
	set := h.touched[id]
	if len(set) == 0 {
		return nil, nil
	}
	names := make([]string, 0, len(set))
	for ds := range set {
		names = append(names, ds)
	}
	sort.Strings(names)
	bag := make(policy.Bag, len(names))
	for i, ds := range names {
		bag[i] = policy.String(ds)
	}
	return bag, nil
}

// Chain queries providers in order and returns the first non-empty bag. It
// is the composition mechanism for multi-source attribute retrieval.
type Chain struct {
	name      string
	providers []Provider
}

var _ Provider = (*Chain)(nil)

// NewChain builds a resolver chain over the given providers.
func NewChain(name string, providers ...Provider) *Chain {
	return &Chain{name: name, providers: providers}
}

// Name implements Provider.
func (c *Chain) Name() string { return c.name }

// Append adds a provider at the end of the chain.
func (c *Chain) Append(p Provider) { c.providers = append(c.providers, p) }

// ResolveAttribute implements policy.Resolver. A done context stops the
// chain between providers, so a multi-source lookup cannot outlive the
// caller's deadline by walking every remaining source.
func (c *Chain) ResolveAttribute(ctx context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	for _, p := range c.providers {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pip: chain %s: %w", c.name, err)
		}
		bag, err := p.ResolveAttribute(ctx, req, cat, name)
		if err != nil {
			return nil, fmt.Errorf("pip: provider %s: %w", p.Name(), err)
		}
		if !bag.Empty() {
			return bag, nil
		}
	}
	return nil, nil
}

// CacheStats summarises cache effectiveness for experiments.
type CacheStats struct {
	// Hits counts lookups served from cache.
	Hits int64
	// Misses counts lookups the cache could not serve. Backend fetches
	// issued are Misses - Coalesced.
	Misses int64
	// Coalesced counts misses that piggybacked on another miss's
	// in-flight backend fetch instead of issuing their own.
	Coalesced int64
	// NegativeHits counts lookups answered by a cached failure
	// (WithNegativeTTL) without touching the backend.
	NegativeHits int64
	// BreakerFastFails counts lookups refused by an open breaker
	// (WithBreaker) without touching the backend.
	BreakerFastFails int64
}

// HitRate returns Hits / (Hits + Misses), or 0 for no traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	bag     policy.Bag
	expires time.Time
	// err, when non-nil, makes this a negative entry: the backend failed
	// recently and the failure itself is served until expiry, sparing a
	// struggling information point a retry storm (WithNegativeTTL).
	err error
}

// flight is one in-progress backend fetch that concurrent misses for the
// same key wait on instead of issuing their own.
type flight struct {
	done chan struct{}
	bag  policy.Bag
	err  error
}

// Cache wraps a provider with a TTL cache keyed by subject/attribute. It
// implements the information-point caching the paper discusses under
// Communication Performance (Section 3.2), including the staleness risk:
// values changed at the source remain visible until their entry expires.
//
// Concurrent misses for the same key are coalesced: one fetch travels to
// the backend and every waiter shares its result, so a burst of decisions
// over the same cold subject costs one information-point round-trip, not
// one per decision (the thundering-herd guard attribute resolution in the
// decision hot path requires). Waiters honour their own context: a waiter
// whose deadline expires abandons the flight with ctx.Err() while the
// leader's fetch completes and fills the cache for later lookups.
type Cache struct {
	name     string
	inner    Provider
	ttl      time.Duration
	negTTL   time.Duration
	now      func() time.Time
	maxItems int
	breaker  *resilience.Breaker

	mu       sync.Mutex
	entries  map[string]cacheEntry
	inflight map[string]*flight
	stats    CacheStats
}

var _ Provider = (*Cache)(nil)

// NewCache wraps inner with a TTL cache. A non-positive maxItems defaults to
// 4096 entries; eviction discards an arbitrary entry when full (the cache is
// a bound, not an LRU, which keeps the hot path allocation-free).
func NewCache(inner Provider, ttl time.Duration, maxItems int) *Cache {
	if maxItems <= 0 {
		maxItems = 4096
	}
	return &Cache{
		name:     inner.Name() + "+cache",
		inner:    inner,
		ttl:      ttl,
		now:      time.Now,
		maxItems: maxItems,
		entries:  make(map[string]cacheEntry),
		inflight: make(map[string]*flight),
	}
}

// NewCachedChain builds the standard information-point stack: the
// providers chained in order behind a TTL cache that coalesces concurrent
// misses. ttl <= 0 defaults to one minute. This is the recipe the
// decision pipeline wires into engines (pdp.WithResolver) and domains
// (federation.Domain.UsePIP) for live attribute resolution.
func NewCachedChain(name string, ttl time.Duration, providers ...Provider) *Cache {
	if ttl <= 0 {
		ttl = time.Minute
	}
	return NewCache(NewChain(name, providers...), ttl, 0)
}

// WithClock overrides the cache clock, for deterministic tests.
func (c *Cache) WithClock(now func() time.Time) *Cache {
	c.now = now
	return c
}

// WithNegativeTTL arms short-TTL negative caching: a failed backend fetch
// is remembered for d, and lookups within that window are answered with
// the cached failure instead of hammering a struggling information point.
// Context errors (the caller's own expired deadline) are never negatively
// cached. Keep d much shorter than the positive TTL — it bounds how long a
// recovered backend keeps looking broken.
func (c *Cache) WithNegativeTTL(d time.Duration) *Cache {
	c.negTTL = d
	return c
}

// WithBreaker guards the backend with a circuit breaker: threshold
// consecutive fetch failures trip it, and until the cooldown admits a
// probe, lookups fail fast with resilience.ErrOpen instead of queueing on
// a dead information point. The breaker shares the cache clock.
func (c *Cache) WithBreaker(threshold int, cooldown time.Duration) *Cache {
	c.breaker = resilience.NewBreaker(c.name, resilience.BreakerConfig{
		Threshold: threshold,
		Cooldown:  cooldown,
		Clock:     func() time.Time { return c.now() },
	})
	return c
}

// BreakerStats returns the backend breaker's counters; zero without
// WithBreaker.
func (c *Cache) BreakerStats() resilience.BreakerStats {
	if c.breaker == nil {
		return resilience.BreakerStats{}
	}
	return c.breaker.Stats()
}

// Name implements Provider.
func (c *Cache) Name() string { return c.name }

// Stats returns a snapshot of cache effectiveness counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RegisterMetrics exposes the cache's effectiveness counters on the
// registry, pull-model: the collector takes the cache lock only at scrape
// time.
func (c *Cache) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("repro_pip_cache_hits_total",
		"Attribute lookups served from the PIP cache.",
		func() int64 { return c.Stats().Hits })
	reg.CounterFunc("repro_pip_cache_misses_total",
		"Attribute lookups the PIP cache could not serve.",
		func() int64 { return c.Stats().Misses })
	reg.CounterFunc("repro_pip_cache_coalesced_total",
		"Misses that piggybacked on another miss's in-flight backend fetch.",
		func() int64 { return c.Stats().Coalesced })
	reg.CounterFunc("repro_pip_cache_negative_hits_total",
		"Attribute lookups answered by a cached backend failure.",
		func() int64 { return c.Stats().NegativeHits })
	reg.CounterFunc("repro_pip_cache_breaker_fast_fails_total",
		"Attribute lookups refused by the backend circuit breaker.",
		func() int64 { return c.Stats().BreakerFastFails })
}

// Invalidate drops every cached entry, modelling explicit revocation push.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]cacheEntry)
}

// ResolveAttribute implements policy.Resolver. See the Cache doc for the
// coalescing and cancellation semantics. A flight that fails because its
// *leader's* context died is not inherited by the waiters: a waiter whose
// own context is still live retries as the new leader, so one impatient
// caller cannot poison a burst of healthy ones.
func (c *Cache) ResolveAttribute(ctx context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	subject := ""
	if req != nil {
		subject = req.SubjectID()
	}
	key := subject + "|" + staticKey(cat, name)
	now := c.now()

	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok && now.Before(e.expires) {
			if e.err != nil {
				c.stats.NegativeHits++
				c.mu.Unlock()
				return nil, fmt.Errorf("pip: cache %s: negative entry: %w", c.name, e.err)
			}
			c.stats.Hits++
			c.mu.Unlock()
			return e.bag.Clone(), nil
		}
		c.stats.Misses++
		if f, ok := c.inflight[key]; ok {
			// Another miss is already fetching this key: wait for it
			// rather than thundering-herd the backend.
			c.stats.Coalesced++
			c.mu.Unlock()
			// Traced requests record the wait as its own span so the
			// trace shows the coalescing the stats only count.
			var wsp *trace.Span
			if trace.FromContext(ctx) != nil {
				_, wsp = trace.StartSpan(ctx, "pip.fetch")
				wsp.SetAttr("pip.attr", staticKey(cat, name))
				wsp.SetAttr("pip.coalesced", "true")
			}
			select {
			case <-f.done:
				wsp.End()
				if f.err == nil {
					return f.bag.Clone(), nil
				}
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					// The leader ran out of time, not the backend; this
					// waiter still has time — become the next leader.
					continue
				}
				return nil, f.err
			case <-ctx.Done():
				wsp.SetAttr("error", ctx.Err().Error())
				wsp.End()
				return nil, fmt.Errorf("pip: cache %s: %w", c.name, ctx.Err())
			}
		}
		if c.breaker != nil && !c.breaker.Allow() {
			c.stats.BreakerFastFails++
			c.mu.Unlock()
			return nil, fmt.Errorf("pip: cache %s: %w", c.name, resilience.ErrOpen)
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		// The leader's backend fetch is the round-trip worth timing.
		var fsp *trace.Span
		fctx := ctx
		if trace.FromContext(ctx) != nil {
			fctx, fsp = trace.StartSpan(ctx, "pip.fetch")
			fsp.SetAttr("pip.attr", staticKey(cat, name))
			fsp.SetAttr("pip.provider", c.inner.Name())
		}
		bag, err := c.inner.ResolveAttribute(fctx, req, cat, name)
		if err != nil {
			fsp.SetAttr("error", err.Error())
		}
		fsp.End()

		// A caller-context failure is nobody's verdict on the backend: it
		// feeds neither the breaker nor the negative cache — but if this
		// fetch held the half-open probe token, the token must go back, or
		// the breaker wedges in fail-fast until the token ages out.
		ctxFailure := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
		if c.breaker != nil {
			switch {
			case ctxFailure:
				c.breaker.OnAbandon()
			case err != nil:
				c.breaker.OnFailure()
			default:
				c.breaker.OnSuccess()
			}
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			if len(c.entries) >= c.maxItems {
				for k := range c.entries {
					delete(c.entries, k)
					break
				}
			}
			c.entries[key] = cacheEntry{bag: bag.Clone(), expires: now.Add(c.ttl)}
		} else if c.negTTL > 0 && !ctxFailure {
			if len(c.entries) >= c.maxItems {
				for k := range c.entries {
					delete(c.entries, k)
					break
				}
			}
			c.entries[key] = cacheEntry{err: err, expires: now.Add(c.negTTL)}
		}
		c.mu.Unlock()
		f.bag, f.err = bag, err
		close(f.done)
		if err != nil {
			return nil, err
		}
		return bag, nil
	}
}
