package pip

import (
	"context"
	"sync"

	"repro/internal/policy"
)

// RequestResolver is the ctx-aware policy.Resolver adapter the decision
// pipeline threads into evaluation: it fronts any resolver (a Provider, a
// Chain of providers, a federation cross-domain resolver, ...) with a
// memo scoped to one access request. Create one per request and pass it to
// every evaluation of that request.
//
// The engine's evaluation context already memoises within a single
// evaluation; the RequestResolver extends that guarantee across the
// several evaluations one request triggers — a local decision followed by
// a VO-policy decision, quorum replicas voting on the same request, or a
// candidate set whose policies test the same subject attribute — so an
// attribute is fetched from the information point at most once per
// request, however many times policy consults it.
//
// It is safe for concurrent use (quorum ensembles fan one request out to
// replicas in parallel); concurrent first lookups of the same attribute
// may both reach the inner resolver, which a pip.Cache beneath coalesces.
type RequestResolver struct {
	inner policy.Resolver

	mu   sync.Mutex
	memo map[memoKey]policy.Bag
}

type memoKey struct {
	cat  policy.Category
	name string
}

var _ policy.Resolver = (*RequestResolver)(nil)

// NewRequestResolver builds a per-request memoising resolver over inner.
// A nil inner resolves nothing (every attribute is an empty bag).
func NewRequestResolver(inner policy.Resolver) *RequestResolver {
	return &RequestResolver{inner: inner}
}

// ResolveAttribute implements policy.Resolver. The first lookup of each
// attribute reaches the inner resolver; repeats are served from the memo.
// Errors are not memoised: a failed fetch may be retried by a later
// evaluation of the same request (a quorum replica voting after a
// transient fault should not inherit it).
func (r *RequestResolver) ResolveAttribute(ctx context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	if r.inner == nil {
		return nil, nil
	}
	key := memoKey{cat: cat, name: name}
	r.mu.Lock()
	if bag, ok := r.memo[key]; ok {
		r.mu.Unlock()
		return bag, nil
	}
	r.mu.Unlock()

	bag, err := r.inner.ResolveAttribute(ctx, req, cat, name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.memo == nil {
		r.memo = make(map[memoKey]policy.Bag, 4)
	}
	r.memo[key] = bag
	r.mu.Unlock()
	return bag, nil
}
