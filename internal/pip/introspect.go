package pip

import (
	"sort"
	"strings"

	"repro/internal/policy"
)

// AttributeRef names one attribute an information source can supply.
type AttributeRef struct {
	Category policy.Category
	Name     string
}

// Introspector is an optional Provider extension enumerating the
// attributes a source can ever supply. The static policy analyser uses it
// to prove attribute references dead: a designator no registered source
// lists (and no request bag conventionally carries) can only ever resolve
// to an empty bag.
//
// complete=false marks an open-ended source that may supply attributes
// beyond the listed ones; downstream dead-attribute analysis must then
// treat every reference as potentially live.
type Introspector interface {
	SuppliedAttributes() (refs []AttributeRef, complete bool)
}

// Supplied walks a provider and returns the attributes it declares. A
// provider that does not implement Introspector is open-ended: it returns
// no refs and complete=false.
func Supplied(p Provider) ([]AttributeRef, bool) {
	if in, ok := p.(Introspector); ok {
		return in.SuppliedAttributes()
	}
	return nil, false
}

// SuppliedAttributes implements Introspector: the store's current table
// keys, exactly.
func (s *StaticStore) SuppliedAttributes() ([]AttributeRef, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	refs := make([]AttributeRef, 0, len(s.attrs))
	for key := range s.attrs {
		parts := strings.SplitN(key, "/", 2)
		if len(parts) != 2 {
			continue
		}
		cat, err := policy.CategoryFromString(parts[0])
		if err != nil {
			continue
		}
		refs = append(refs, AttributeRef{Category: cat, Name: parts[1]})
	}
	sortRefs(refs)
	return refs, true
}

// SuppliedAttributes implements Introspector: the well-known subject
// attributes the directory serves for every subject, plus the union of
// Extra attribute names across provisioned subjects.
func (d *Directory) SuppliedAttributes() ([]AttributeRef, bool) {
	refs := []AttributeRef{
		{Category: policy.CategorySubject, Name: policy.AttrSubjectRole},
		{Category: policy.CategorySubject, Name: policy.AttrSubjectGroup},
		{Category: policy.CategorySubject, Name: policy.AttrSubjectDomain},
		{Category: policy.CategorySubject, Name: policy.AttrClearance},
	}
	seen := make(map[string]struct{})
	d.mu.RLock()
	for _, s := range d.subjects {
		for name := range s.Extra {
			if _, ok := seen[name]; ok {
				continue
			}
			seen[name] = struct{}{}
			refs = append(refs, AttributeRef{Category: policy.CategorySubject, Name: name})
		}
	}
	d.mu.RUnlock()
	sortRefs(refs)
	return refs, true
}

// SuppliedAttributes implements Introspector: the single history
// attribute.
func (h *HistoryProvider) SuppliedAttributes() ([]AttributeRef, bool) {
	return []AttributeRef{{Category: policy.CategorySubject, Name: h.AttributeName}}, true
}

// SuppliedAttributes implements Introspector: the union over chain
// members. One open-ended member makes the whole chain open-ended, but
// the refs the other members declare are still returned.
func (c *Chain) SuppliedAttributes() ([]AttributeRef, bool) {
	var refs []AttributeRef
	complete := true
	for _, p := range c.providers {
		sub, ok := Supplied(p)
		refs = append(refs, sub...)
		if !ok {
			complete = false
		}
	}
	sortRefs(refs)
	return refs, complete
}

// SuppliedAttributes implements Introspector: caching never changes what
// the inner source can supply.
func (c *Cache) SuppliedAttributes() ([]AttributeRef, bool) { return Supplied(c.inner) }

func sortRefs(refs []AttributeRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Category != refs[j].Category {
			return refs[i].Category < refs[j].Category
		}
		return refs[i].Name < refs[j].Name
	})
}
