package pip

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/policy"
)

func TestStaticStore(t *testing.T) {
	s := NewStaticStore("env")
	s.Set(policy.CategoryEnvironment, "site", policy.String("newcastle"))
	bag, err := s.ResolveAttribute(context.Background(), nil, policy.CategoryEnvironment, "site")
	if err != nil {
		t.Fatal(err)
	}
	if !bag.Contains(policy.String("newcastle")) {
		t.Errorf("got %v", bag.Strings())
	}
	missing, err := s.ResolveAttribute(context.Background(), nil, policy.CategoryEnvironment, "absent")
	if err != nil || !missing.Empty() {
		t.Errorf("absent attribute: got %v, %v", missing, err)
	}
	// Mutating the returned bag must not corrupt the store.
	bag[0] = policy.String("corrupted")
	again, _ := s.ResolveAttribute(context.Background(), nil, policy.CategoryEnvironment, "site")
	if !again.Contains(policy.String("newcastle")) {
		t.Error("store aliased its internal bag")
	}
}

func directoryWithAlice() *Directory {
	d := NewDirectory("idp-a")
	d.AddSubject(Subject{
		ID:        "alice",
		Domain:    "hospital-a",
		Roles:     []string{"doctor", "researcher"},
		Groups:    []string{"cardiology"},
		Clearance: 3,
		Extra: map[string]policy.Bag{
			"email": policy.Singleton(policy.String("alice@hospital-a.example")),
		},
	})
	return d
}

func TestDirectoryResolvesSubjectAttributes(t *testing.T) {
	d := directoryWithAlice()
	req := policy.NewAccessRequest("alice", "r", "read")

	roles, err := d.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole)
	if err != nil {
		t.Fatal(err)
	}
	if !roles.Contains(policy.String("doctor")) || !roles.Contains(policy.String("researcher")) {
		t.Errorf("roles = %v", roles.Strings())
	}
	dom, _ := d.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectDomain)
	if !dom.Contains(policy.String("hospital-a")) {
		t.Errorf("domain = %v", dom.Strings())
	}
	clr, _ := d.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrClearance)
	if v, _ := clr.One(); v.Int() != 3 {
		t.Errorf("clearance = %v", clr.Strings())
	}
	email, _ := d.ResolveAttribute(context.Background(), req, policy.CategorySubject, "email")
	if !email.Contains(policy.String("alice@hospital-a.example")) {
		t.Errorf("extra attr = %v", email.Strings())
	}
	groups, _ := d.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectGroup)
	if !groups.Contains(policy.String("cardiology")) {
		t.Errorf("groups = %v", groups.Strings())
	}
}

func TestDirectoryUnknownSubjectAndCategories(t *testing.T) {
	d := directoryWithAlice()
	unknown := policy.NewAccessRequest("mallory", "r", "read")
	bag, err := d.ResolveAttribute(context.Background(), unknown, policy.CategorySubject, policy.AttrSubjectRole)
	if err != nil || !bag.Empty() {
		t.Errorf("unknown subject: %v, %v", bag, err)
	}
	// Non-subject categories are not this provider's business.
	bag, err = d.ResolveAttribute(context.Background(), policy.NewAccessRequest("alice", "r", "read"), policy.CategoryResource, "owner")
	if err != nil || !bag.Empty() {
		t.Errorf("resource category: %v, %v", bag, err)
	}
	if _, err := d.ResolveAttribute(context.Background(), nil, policy.CategorySubject, policy.AttrSubjectRole); err != nil {
		t.Errorf("nil request must not error: %v", err)
	}
}

func TestDirectoryProvisioning(t *testing.T) {
	d := directoryWithAlice()
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	d.AddSubject(Subject{ID: "bob"})
	if got := d.SubjectIDs(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Errorf("SubjectIDs = %v", got)
	}
	d.RemoveSubject("alice")
	if _, ok := d.Subject("alice"); ok {
		t.Error("alice should be deprovisioned")
	}
}

func TestHistoryProvider(t *testing.T) {
	h := NewHistoryProvider("history")
	h.Record("alice", "bank-a")
	h.Record("alice", "oil-x")
	if !h.Accessed("alice", "bank-a") || h.Accessed("bob", "bank-a") {
		t.Error("Accessed bookkeeping wrong")
	}
	req := policy.NewAccessRequest("alice", "r", "read")
	bag, err := h.ResolveAttribute(context.Background(), req, policy.CategorySubject, "accessed-dataset")
	if err != nil {
		t.Fatal(err)
	}
	if !bag.SetEquals(policy.BagOf(policy.String("bank-a"), policy.String("oil-x"))) {
		t.Errorf("history = %v", bag.Strings())
	}
	empty, _ := h.ResolveAttribute(context.Background(), policy.NewAccessRequest("bob", "r", "read"), policy.CategorySubject, "accessed-dataset")
	if !empty.Empty() {
		t.Errorf("bob should have no history, got %v", empty.Strings())
	}
}

type failingProvider struct{ err error }

func (f failingProvider) Name() string { return "failing" }
func (f failingProvider) ResolveAttribute(context.Context, *policy.Request, policy.Category, string) (policy.Bag, error) {
	return nil, f.err
}

func TestChainOrderingAndErrors(t *testing.T) {
	first := NewStaticStore("first")
	second := NewStaticStore("second")
	first.Set(policy.CategoryEnvironment, "shared", policy.String("from-first"))
	second.Set(policy.CategoryEnvironment, "shared", policy.String("from-second"))
	second.Set(policy.CategoryEnvironment, "only-second", policy.String("x"))

	chain := NewChain("chain", first, second)
	bag, err := chain.ResolveAttribute(context.Background(), nil, policy.CategoryEnvironment, "shared")
	if err != nil {
		t.Fatal(err)
	}
	if !bag.Contains(policy.String("from-first")) {
		t.Errorf("chain should prefer earlier providers, got %v", bag.Strings())
	}
	bag, _ = chain.ResolveAttribute(context.Background(), nil, policy.CategoryEnvironment, "only-second")
	if !bag.Contains(policy.String("x")) {
		t.Error("chain should fall through to later providers")
	}

	boom := errors.New("boom")
	failChain := NewChain("failing-chain", failingProvider{err: boom}, first)
	if _, err := failChain.ResolveAttribute(context.Background(), nil, policy.CategoryEnvironment, "shared"); !errors.Is(err, boom) {
		t.Errorf("chain must surface provider errors, got %v", err)
	}
}

func TestCacheHitMissAndTTL(t *testing.T) {
	d := directoryWithAlice()
	now := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	cache := NewCache(d, 30*time.Second, 0).WithClock(func() time.Time { return now })
	req := policy.NewAccessRequest("alice", "r", "read")

	for i := 0; i < 3; i++ {
		if _, err := cache.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss 2 hits", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("HitRate = %v", got)
	}

	// After the TTL the entry must be refreshed.
	now = now.Add(time.Minute)
	if _, err := cache.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Errorf("expired entry should miss, stats = %+v", st)
	}
}

func TestCacheServesStaleUntilExpiry(t *testing.T) {
	// The paper's warning: cached attributes can produce false permits
	// after revocation, bounded by the TTL.
	d := directoryWithAlice()
	now := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	cache := NewCache(d, time.Minute, 0).WithClock(func() time.Time { return now })
	req := policy.NewAccessRequest("alice", "r", "read")

	bag, _ := cache.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole)
	if !bag.Contains(policy.String("doctor")) {
		t.Fatal("precondition: alice is a doctor")
	}
	// Revoke at the source.
	d.RemoveSubject("alice")
	bag, _ = cache.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole)
	if !bag.Contains(policy.String("doctor")) {
		t.Error("within TTL the stale role is still served (expected model behaviour)")
	}
	// Explicit invalidation closes the window immediately.
	cache.Invalidate()
	bag, _ = cache.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole)
	if !bag.Empty() {
		t.Errorf("after invalidation the revocation must be visible, got %v", bag.Strings())
	}
}

func TestCacheBound(t *testing.T) {
	s := NewStaticStore("s")
	s.Set(policy.CategoryEnvironment, "k", policy.String("v"))
	cache := NewCache(s, time.Hour, 2)
	for _, subj := range []string{"a", "b", "c", "d"} {
		req := policy.NewAccessRequest(subj, "r", "read")
		if _, err := cache.ResolveAttribute(context.Background(), req, policy.CategoryEnvironment, "k"); err != nil {
			t.Fatal(err)
		}
	}
	cache.mu.Lock()
	n := len(cache.entries)
	cache.mu.Unlock()
	if n > 2 {
		t.Errorf("cache grew to %d entries, bound is 2", n)
	}
}

func TestCacheIntegratesWithPolicyContext(t *testing.T) {
	d := directoryWithAlice()
	cache := NewCache(d, time.Minute, 0)
	p := policy.NewPolicy("p").
		Combining(policy.DenyUnlessPermit).
		Rule(policy.Permit("doctors").
			If(policy.AttrContains(policy.CategorySubject, policy.AttrSubjectRole, policy.String("doctor"))).
			Build()).
		Build()
	ctx := policy.NewContext(policy.NewAccessRequest("alice", "rec", "read")).WithResolver(cache)
	if res := p.Evaluate(ctx); res.Decision != policy.DecisionPermit {
		t.Errorf("decision = %v, want Permit via PIP-resolved role", res.Decision)
	}
}
