package pip

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/resilience"
)

// flakyProvider counts fetches and fails with failErr while it is set.
type flakyProvider struct {
	fetches int
	failErr error
}

func (p *flakyProvider) Name() string { return "flaky" }

func (p *flakyProvider) ResolveAttribute(context.Context, *policy.Request, policy.Category, string) (policy.Bag, error) {
	p.fetches++
	if p.failErr != nil {
		return nil, p.failErr
	}
	return policy.Singleton(policy.String("doctor")), nil
}

func TestCacheNegativeTTL(t *testing.T) {
	backend := &flakyProvider{failErr: errors.New("ldap down")}
	now := time.Date(2026, 5, 1, 8, 0, 0, 0, time.UTC)
	c := NewCache(backend, time.Minute, 0).
		WithClock(func() time.Time { return now }).
		WithNegativeTTL(2 * time.Second)
	req := policy.NewAccessRequest("alice", "r", "read")
	lookup := func() error {
		_, err := c.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole)
		return err
	}

	if err := lookup(); err == nil {
		t.Fatal("first lookup should surface the backend failure")
	}
	if backend.fetches != 1 {
		t.Fatalf("fetches = %d, want 1", backend.fetches)
	}

	// Within the negative TTL the cached failure answers; the backend is
	// spared the retry.
	now = now.Add(time.Second)
	if err := lookup(); err == nil {
		t.Fatal("negative hit should surface the cached failure")
	}
	if backend.fetches != 1 {
		t.Fatalf("fetches = %d after negative hit, want still 1", backend.fetches)
	}
	if st := c.Stats(); st.NegativeHits != 1 {
		t.Fatalf("stats = %+v, want 1 negative hit", st)
	}

	// Past the negative TTL the backend (now healed) is retried and the
	// real value replaces the cached failure.
	backend.failErr = nil
	now = now.Add(2 * time.Second)
	if err := lookup(); err != nil {
		t.Fatalf("post-recovery lookup failed: %v", err)
	}
	if backend.fetches != 2 {
		t.Fatalf("fetches = %d, want 2", backend.fetches)
	}
	if err := lookup(); err != nil {
		t.Fatalf("positive hit failed: %v", err)
	}
	if backend.fetches != 2 {
		t.Fatalf("fetches = %d after positive hit, want still 2", backend.fetches)
	}
}

// TestCacheNegativeTTLSkipsContextErrors: the caller's own expired
// deadline must not be remembered against the backend.
func TestCacheNegativeTTLSkipsContextErrors(t *testing.T) {
	backend := &flakyProvider{failErr: context.DeadlineExceeded}
	now := time.Date(2026, 5, 1, 8, 0, 0, 0, time.UTC)
	c := NewCache(backend, time.Minute, 0).
		WithClock(func() time.Time { return now }).
		WithNegativeTTL(10 * time.Second)
	req := policy.NewAccessRequest("alice", "r", "read")

	if _, err := c.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole); err == nil {
		t.Fatal("lookup should surface the deadline error")
	}
	backend.failErr = nil
	if _, err := c.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole); err != nil {
		t.Fatalf("ctx failure was negatively cached: %v", err)
	}
	if backend.fetches != 2 {
		t.Fatalf("fetches = %d, want 2 (no negative entry for ctx errors)", backend.fetches)
	}
}

func TestCacheBreaker(t *testing.T) {
	backend := &flakyProvider{failErr: errors.New("ldap down")}
	now := time.Date(2026, 5, 1, 8, 0, 0, 0, time.UTC)
	c := NewCache(backend, time.Minute, 0).
		WithClock(func() time.Time { return now }).
		WithBreaker(2, 10*time.Second)
	// Distinct subjects defeat the positive/negative entry, so every
	// lookup is a fresh miss driving the breaker.
	lookup := func(subject string) error {
		req := policy.NewAccessRequest(subject, "r", "read")
		_, err := c.ResolveAttribute(context.Background(), req, policy.CategorySubject, policy.AttrSubjectRole)
		return err
	}

	if err := lookup("a"); err == nil {
		t.Fatal("want failure")
	}
	if err := lookup("b"); err == nil {
		t.Fatal("want failure")
	}
	// Two consecutive failures tripped the breaker: the next lookup fails
	// fast without a backend fetch.
	if err := lookup("c"); !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if backend.fetches != 2 {
		t.Fatalf("fetches = %d, want 2 (fast fail spared the backend)", backend.fetches)
	}
	if st := c.Stats(); st.BreakerFastFails != 1 {
		t.Fatalf("stats = %+v, want 1 breaker fast fail", st)
	}

	// Past the cooldown the healed backend passes the single probe and the
	// breaker closes again.
	backend.failErr = nil
	now = now.Add(11 * time.Second)
	if err := lookup("d"); err != nil {
		t.Fatalf("probe lookup failed: %v", err)
	}
	if bs := c.BreakerStats(); bs.State != resilience.StateClosed || bs.Probes != 1 {
		t.Fatalf("breaker stats = %+v, want closed after one probe", bs)
	}
}
