package pip

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/policy"
)

// openProvider implements Provider but not Introspector: an open-ended
// source whose attribute universe is unknowable.
type openProvider struct{}

func (openProvider) Name() string { return "open" }
func (openProvider) ResolveAttribute(context.Context, *policy.Request, policy.Category, string) (policy.Bag, error) {
	return policy.BagOf(), nil
}

func TestSuppliedAttributes(t *testing.T) {
	t.Run("static-store-lists-its-table", func(t *testing.T) {
		st := NewStaticStore("env")
		st.Set(policy.CategoryEnvironment, "maintenance-window", policy.Boolean(true))
		st.Set(policy.CategorySubject, "department", policy.String("oncology"))
		refs, complete := Supplied(st)
		want := []AttributeRef{
			{Category: policy.CategorySubject, Name: "department"},
			{Category: policy.CategoryEnvironment, Name: "maintenance-window"},
		}
		if !complete || !reflect.DeepEqual(refs, want) {
			t.Fatalf("static store supplied = %v (complete=%v), want %v complete", refs, complete, want)
		}
	})

	t.Run("directory-includes-extras", func(t *testing.T) {
		d := NewDirectory("idp")
		d.AddSubject(Subject{ID: "alice", Roles: []string{"doctor"},
			Extra: map[string]policy.Bag{"pager": policy.Singleton(policy.String("1234"))}})
		refs, complete := Supplied(d)
		if !complete {
			t.Fatal("directory should be a complete source")
		}
		got := make(map[string]bool)
		for _, r := range refs {
			got[r.Name] = true
		}
		for _, name := range []string{policy.AttrSubjectRole, policy.AttrSubjectGroup,
			policy.AttrSubjectDomain, policy.AttrClearance, "pager"} {
			if !got[name] {
				t.Fatalf("directory did not declare %q: %v", name, refs)
			}
		}
	})

	t.Run("history-declares-its-attribute", func(t *testing.T) {
		h := NewHistoryProvider("hist")
		refs, complete := Supplied(h)
		want := []AttributeRef{{Category: policy.CategorySubject, Name: "accessed-dataset"}}
		if !complete || !reflect.DeepEqual(refs, want) {
			t.Fatalf("history supplied = %v (complete=%v), want %v complete", refs, complete, want)
		}
	})

	t.Run("chain-unions-and-propagates-openness", func(t *testing.T) {
		st := NewStaticStore("env")
		st.Set(policy.CategoryEnvironment, "maintenance-window", policy.Boolean(true))
		closed := NewChain("closed", st, NewHistoryProvider("hist"))
		refs, complete := Supplied(closed)
		if !complete || len(refs) != 2 {
			t.Fatalf("closed chain = %v (complete=%v), want 2 refs complete", refs, complete)
		}
		open := NewChain("open", st, openProvider{})
		refs, complete = Supplied(open)
		if complete {
			t.Fatal("a chain with an open member must be open")
		}
		if len(refs) != 1 {
			t.Fatalf("open chain still lists the closed members' refs: %v", refs)
		}
	})

	t.Run("cache-delegates", func(t *testing.T) {
		h := NewHistoryProvider("hist")
		cached := NewCache(h, time.Minute, 0)
		got, gotOK := Supplied(cached)
		want, wantOK := Supplied(h)
		if gotOK != wantOK || !reflect.DeepEqual(got, want) {
			t.Fatalf("cache supplied %v/%v, inner %v/%v", got, gotOK, want, wantOK)
		}
	})

	t.Run("non-introspector-is-open", func(t *testing.T) {
		refs, complete := Supplied(openProvider{})
		if complete || refs != nil {
			t.Fatalf("open provider = %v (complete=%v), want nil, incomplete", refs, complete)
		}
	})
}
