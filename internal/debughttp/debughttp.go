// Package debughttp builds the optional operator debug surface the
// daemons serve behind -debug-addr: the net/http/pprof profiling
// endpoints on a mux of their own, so profiling stays off the production
// listener (and off entirely unless the flag is set).
package debughttp

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns a mux serving the standard pprof endpoints under
// /debug/pprof/. The handlers are registered explicitly rather than via
// net/http/pprof's DefaultServeMux side effect, so only the returned mux
// exposes them.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
