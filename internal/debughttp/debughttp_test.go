package debughttp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPprofIndexServes smoke-tests the debug surface: the pprof index
// answers 200 and lists the standard profiles.
func TestPprofIndexServes(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range []string{"goroutine", "heap"} {
		if !strings.Contains(string(body), profile) {
			t.Errorf("pprof index missing profile %q", profile)
		}
	}
}

// TestPprofProfileEndpoints checks the non-index handlers answer.
func TestPprofProfileEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	for _, path := range []string{"/debug/pprof/cmdline", "/debug/pprof/symbol", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
