package workload

import (
	"context"
	"testing"
	"time"

	"repro/internal/pdp"
	"repro/internal/policy"
)

// The cold-subject scenario: requests carry only identifiers, and subject
// attributes are fetched lazily mid-evaluation through the PIP stack —
// decisions must match the warm (pre-resolved) requests exactly, and the
// information-point cache must absorb the repeat traffic.
func TestColdSubjectDecisionsMatchWarm(t *testing.T) {
	cfg := Config{Users: 40, Resources: 100, Roles: 5, Seed: 7}
	coldGen := NewGenerator(cfg)
	warmGen := NewGenerator(cfg) // same seed: same request stream

	pipStack := coldGen.InformationPoints("pip", time.Minute)
	cold := pdp.New("cold", pdp.WithResolver(pipStack))
	if err := cold.SetRoot(coldGen.PolicyBase("base")); err != nil {
		t.Fatal(err)
	}
	// The warm engine gets no resolver at all: every attribute must
	// arrive in the request.
	warm := pdp.New("warm")
	if err := warm.SetRoot(warmGen.PolicyBase("base")); err != nil {
		t.Fatal(err)
	}

	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ctx := context.Background()
	permits := 0
	for i := 0; i < 500; i++ {
		coldReq := coldGen.NextRequest()
		warmReq := warmGen.WarmRequest()
		if got, ok := coldReq.Get(policy.CategorySubject, policy.AttrSubjectRole); ok {
			t.Fatalf("cold request %d carries roles: %v", i, got)
		}
		coldRes := cold.DecideAt(ctx, coldReq, at)
		warmRes := warm.DecideAt(ctx, warmReq, at)
		if coldRes.Decision != warmRes.Decision {
			t.Fatalf("request %d (%s): cold %s vs warm %s",
				i, coldReq, coldRes.Decision, warmRes.Decision)
		}
		if coldRes.Decision == policy.DecisionPermit {
			permits++
		}
	}
	if permits == 0 {
		t.Fatal("degenerate workload: no permits at all")
	}
	st := pipStack.Stats()
	if st.Hits == 0 {
		t.Fatalf("PIP cache never hit across 500 cold decisions: %+v", st)
	}
}
