// Package workload synthesises the populations and request streams the
// experiments run against: users with roles, resources with Zipf-skewed
// popularity, Poisson arrivals, and bulk policy-base generation for the
// scalability experiments (Section 3 of the paper argues authorisation
// must scale to large user and resource bases; this package supplies
// those bases).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/pip"
	"repro/internal/policy"
)

// Config parameterises a workload.
type Config struct {
	// Users, Resources and Roles size the populations.
	Users     int
	Resources int
	Roles     int
	// Actions lists the operations in the mix; defaults to read/write.
	Actions []string
	// ZipfS is the skew of resource popularity (>1); 1.2 when zero.
	ZipfS float64
	// ReadFraction is the share of requests using Actions[0]; 0.8 when
	// zero.
	ReadFraction float64
	// MeanInterarrival spaces request arrivals for the Poisson process;
	// 10ms when zero.
	MeanInterarrival time.Duration
	// Burst overlays a flash-crowd window on the arrival process; the
	// zero value leaves arrivals steady.
	Burst Burst
	// Seed makes the workload reproducible.
	Seed int64
}

// Burst is a flash-crowd arrival window: between After and After+For of
// cumulative arrival time, the arrival rate is multiplied by Factor (the
// mean interarrival is divided by it). It models one tenant's audience
// piling in at a known instant — the skew the autoscaling and open-loop
// load scenarios exist to expose.
type Burst struct {
	// After is the window start on the generator's arrival clock.
	After time.Duration
	// For is the window length; zero disables the burst.
	For time.Duration
	// Factor multiplies the arrival rate inside the window; values <= 1
	// disable the burst.
	Factor float64
}

// active reports whether the arrival clock instant falls in the window.
func (b Burst) active(at time.Duration) bool {
	return b.Factor > 1 && b.For > 0 && at >= b.After && at < b.After+b.For
}

func (c Config) withDefaults() Config {
	if len(c.Actions) == 0 {
		c.Actions = []string{"read", "write"}
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.8
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 10 * time.Millisecond
	}
	return c
}

// Generator produces deterministic request streams.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	// arrivalClock accumulates NextInterarrival draws: the virtual
	// instant of the most recent arrival, which positions the Burst
	// window.
	arrivalClock time.Duration
}

// NewGenerator builds a generator from the config.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Resources > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Resources-1))
	}
	return &Generator{cfg: cfg, rng: rng, zipf: zipf}
}

// UserID names the i-th user.
func UserID(i int) string { return fmt.Sprintf("user-%d", i) }

// ResourceID names the i-th resource.
func ResourceID(i int) string { return fmt.Sprintf("res-%d", i) }

// RoleID names the i-th role.
func RoleID(i int) string { return fmt.Sprintf("role-%d", i) }

// NextRequest draws one access request: a uniform user, a Zipf-popular
// resource, and an action from the read/write mix.
//
// The request is cold: it carries only the subject/resource/action
// identifiers, no subject attributes. Decisions over cold requests rely on
// the live resolution path — the engine fetches roles mid-evaluation from
// the information point wired in via pdp.WithResolver (or a domain's
// attached PIP chain). WarmRequest is the pre-resolved counterpart.
func (g *Generator) NextRequest() *policy.Request {
	user, res, action := g.draw()
	return policy.NewAccessRequest(UserID(user), ResourceID(res), action)
}

// WarmRequest draws one access request with the subject's role attribute
// pre-populated, modelling a caller that resolved attributes itself before
// asking for a decision. The cold/warm pair is the ablation axis of the
// cold-subject scenario: identical decisions, different place of
// resolution.
func (g *Generator) WarmRequest() *policy.Request {
	user, res, action := g.draw()
	return policy.NewAccessRequest(UserID(user), ResourceID(res), action).
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String(RoleID(user%g.cfg.Roles)))
}

// draw samples the (user, resource, action) triple shared by the cold and
// warm request forms.
func (g *Generator) draw() (user, res int, action string) {
	user = g.rng.Intn(g.cfg.Users)
	if g.zipf != nil {
		res = int(g.zipf.Uint64())
	}
	action = g.cfg.Actions[0]
	if g.rng.Float64() >= g.cfg.ReadFraction && len(g.cfg.Actions) > 1 {
		action = g.cfg.Actions[1+g.rng.Intn(len(g.cfg.Actions)-1)]
	}
	return user, res, action
}

// Requests draws n access requests, the bulk form of NextRequest used by
// batch-decision experiments and benchmarks.
func (g *Generator) Requests(n int) []*policy.Request {
	reqs := make([]*policy.Request, n)
	for i := range reqs {
		reqs[i] = g.NextRequest()
	}
	return reqs
}

// NextInterarrival draws an exponential interarrival time for the Poisson
// arrival process and advances the generator's arrival clock. Inside the
// configured Burst window the mean is divided by the burst factor, so the
// window carries Factor times the arrival rate — a flash crowd overlaid on
// the steady Poisson stream.
func (g *Generator) NextInterarrival() time.Duration {
	u := g.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	mean := float64(g.cfg.MeanInterarrival)
	if g.cfg.Burst.active(g.arrivalClock) {
		mean /= g.cfg.Burst.Factor
	}
	d := time.Duration(-math.Log(u) * mean)
	if d <= 0 {
		d = time.Nanosecond
	}
	g.arrivalClock += d
	return d
}

// ArrivalClock reports the cumulative virtual arrival time: the sum of
// every interarrival drawn so far.
func (g *Generator) ArrivalClock() time.Duration { return g.arrivalClock }

// Directory provisions a subject directory where user i holds role
// i mod Roles, the identity-provider population of the experiments.
func (g *Generator) Directory(name string) *pip.Directory {
	dir := pip.NewDirectory(name)
	for i := 0; i < g.cfg.Users; i++ {
		dir.AddSubject(pip.Subject{
			ID:    UserID(i),
			Roles: []string{RoleID(i % g.cfg.Roles)},
		})
	}
	return dir
}

// InformationPoints builds the standard PIP stack for the cold-subject
// scenario: the directory population behind a TTL cache that coalesces
// concurrent misses (pip.NewCachedChain), ready to hand to
// pdp.WithResolver (or a domain's UsePIP).
func (g *Generator) InformationPoints(name string, ttl time.Duration) *pip.Cache {
	return pip.NewCachedChain(name, ttl, g.Directory(name+"-idp"))
}

// ResourcePolicy builds the administered policy of resource i under a
// population with the given role count: the owning role (i mod roles) may
// read and write, everyone else is denied. It is the per-resource child of
// PolicyBase and the write unit of the policy-churn experiment and
// benchmark, shared so a rewritten child is always semantically identical
// to the original.
func ResourcePolicy(i, roles int) *policy.Policy {
	role := RoleID(i % roles)
	return policy.NewPolicy(fmt.Sprintf("pol-%s", ResourceID(i))).
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID(ResourceID(i))).
		Rule(policy.Permit("owner-read").
			When(policy.MatchRole(role), policy.MatchActionID("read")).
			Build()).
		Rule(policy.Permit("owner-write").
			When(policy.MatchRole(role), policy.MatchActionID("write")).
			Build()).
		Rule(policy.Deny("default").Build()).
		Build()
}

// PolicyBase builds one policy per resource permitting reads to the role
// owning the resource (role r owns resources where i mod Roles == r) and
// denying everything else — the bulk policy base of the scalability
// experiment E13.
func (g *Generator) PolicyBase(rootID string) *policy.PolicySet {
	b := policy.NewPolicySet(rootID).Combining(policy.DenyOverrides)
	for i := 0; i < g.cfg.Resources; i++ {
		b.Add(ResourcePolicy(i, g.cfg.Roles))
	}
	return b.Build()
}
