package workload

import (
	"context"
	"testing"
	"time"

	"repro/internal/pdp"
	"repro/internal/policy"
)

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{Users: 10, Resources: 100, Roles: 3, Seed: 42}
	g1, g2 := NewGenerator(cfg), NewGenerator(cfg)
	for i := 0; i < 50; i++ {
		a, b := g1.NextRequest(), g2.NextRequest()
		if a.CacheKey() != b.CacheKey() {
			t.Fatalf("request %d diverges", i)
		}
		if g1.NextInterarrival() != g2.NextInterarrival() {
			t.Fatalf("interarrival %d diverges", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewGenerator(Config{Users: 10, Resources: 1000, Roles: 3, Seed: 7})
	counts := make(map[string]int)
	const n = 5000
	for i := 0; i < n; i++ {
		counts[g.NextRequest().ResourceID()]++
	}
	// The most popular resource must dominate: Zipf s=1.2 concentrates
	// a large share on res-0.
	if counts[ResourceID(0)] < n/10 {
		t.Errorf("res-0 drew %d/%d requests, expected heavy skew", counts[ResourceID(0)], n)
	}
	if len(counts) < 20 {
		t.Errorf("only %d distinct resources drawn, expected a long tail", len(counts))
	}
}

func TestActionMix(t *testing.T) {
	g := NewGenerator(Config{Users: 5, Resources: 10, Roles: 2, ReadFraction: 0.8, Seed: 3})
	reads := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if g.NextRequest().ActionID() == "read" {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("read fraction = %.3f, want ~0.8", frac)
	}
}

func TestInterarrivalPositiveAndMeanish(t *testing.T) {
	g := NewGenerator(Config{Users: 1, Resources: 1, Roles: 1, MeanInterarrival: 10 * time.Millisecond, Seed: 5})
	var sum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		d := g.NextInterarrival()
		if d <= 0 {
			t.Fatalf("non-positive interarrival %v", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 8*time.Millisecond || mean > 12*time.Millisecond {
		t.Errorf("mean interarrival = %v, want ~10ms", mean)
	}
}

func TestDirectoryAndPolicyBaseAgree(t *testing.T) {
	cfg := Config{Users: 30, Resources: 20, Roles: 5, Seed: 1}
	g := NewGenerator(cfg)
	dir := g.Directory("idp")
	if dir.Len() != 30 {
		t.Fatalf("directory size = %d", dir.Len())
	}
	base := g.PolicyBase("root")
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(base.Children) != 20 {
		t.Fatalf("policy count = %d", len(base.Children))
	}

	engine := pdp.New("pdp", pdp.WithResolver(dir))
	if err := engine.SetRoot(base); err != nil {
		t.Fatal(err)
	}
	// user-7 holds role-2 (7 mod 5); resource res-12 belongs to role-2
	// (12 mod 5): permit.
	res := engine.Decide(context.Background(), policy.NewAccessRequest(UserID(7), ResourceID(12), "read"))
	if res.Decision != policy.DecisionPermit {
		t.Errorf("owner read = %v, want Permit", res.Decision)
	}
	// user-7 (role-2) on res-10 (role-0): deny.
	res = engine.Decide(context.Background(), policy.NewAccessRequest(UserID(7), ResourceID(10), "read"))
	if res.Decision != policy.DecisionDeny {
		t.Errorf("foreign read = %v, want Deny", res.Decision)
	}
}
