package workload

import (
	"math"
	"testing"
	"time"
)

// TestInterarrivalPoissonDistribution pins the arrival process to an
// exponential with the configured mean: sample mean within 1% and
// coefficient of variation within 2% of 1 (the exponential's signature —
// a uniform or normal spacing would fail the CV bound immediately).
func TestInterarrivalPoissonDistribution(t *testing.T) {
	const n = 200000
	mean := 10 * time.Millisecond
	g := NewGenerator(Config{Users: 1, Resources: 1, Roles: 1, MeanInterarrival: mean, Seed: 11})
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		d := float64(g.NextInterarrival())
		sum += d
		sumSq += d * d
	}
	m := sum / n
	if r := m / float64(mean); r < 0.99 || r > 1.01 {
		t.Errorf("sample mean = %v, want %v within 1%%", time.Duration(m), mean)
	}
	variance := sumSq/n - m*m
	cv := math.Sqrt(variance) / m
	if cv < 0.98 || cv > 1.02 {
		t.Errorf("coefficient of variation = %.4f, want ~1 (exponential)", cv)
	}
	if got := g.ArrivalClock(); math.Abs(float64(got)-sum) > float64(n) {
		t.Errorf("arrival clock %v disagrees with summed interarrivals %v", got, time.Duration(sum))
	}
}

// TestBurstMultipliesArrivalRate counts arrivals before, inside and after
// the burst window: the window must carry ~Factor times the steady rate,
// and the stream must return to the steady rate once the window closes.
func TestBurstMultipliesArrivalRate(t *testing.T) {
	mean := time.Millisecond
	burst := Burst{After: 500 * time.Millisecond, For: 250 * time.Millisecond, Factor: 10}
	g := NewGenerator(Config{
		Users: 1, Resources: 1, Roles: 1,
		MeanInterarrival: mean, Burst: burst, Seed: 21,
	})
	var before, during, after int
	for g.ArrivalClock() < 1500*time.Millisecond {
		g.NextInterarrival()
		at := g.ArrivalClock()
		switch {
		case at < burst.After:
			before++
		case at < burst.After+burst.For:
			during++
		default:
			after++
		}
	}
	// Steady segments: 500ms and 750ms at 1/ms. Burst: 250ms at 10/ms.
	if before < 400 || before > 600 {
		t.Errorf("pre-burst arrivals = %d, want ~500", before)
	}
	if during < 2100 || during > 2900 {
		t.Errorf("burst-window arrivals = %d, want ~2500 (10x rate)", during)
	}
	if after < 600 || after > 900 {
		t.Errorf("post-burst arrivals = %d, want ~750", after)
	}
	rate := func(n int, window time.Duration) float64 {
		return float64(n) / window.Seconds()
	}
	ratio := rate(during, burst.For) / rate(before, burst.After)
	if ratio < 8 || ratio > 12 {
		t.Errorf("burst/steady rate ratio = %.2f, want ~10", ratio)
	}
}

// TestBurstZeroValueIsSteady: the zero Burst leaves the process untouched
// and deterministic against an unburst twin.
func TestBurstZeroValueIsSteady(t *testing.T) {
	a := NewGenerator(Config{Users: 1, Resources: 1, Roles: 1, Seed: 3})
	b := NewGenerator(Config{Users: 1, Resources: 1, Roles: 1, Seed: 3, Burst: Burst{Factor: 1, For: time.Hour}})
	for i := 0; i < 1000; i++ {
		if a.NextInterarrival() != b.NextInterarrival() {
			t.Fatalf("factor<=1 burst changed the stream at draw %d", i)
		}
	}
}
