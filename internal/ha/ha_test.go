package ha

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pdp"
	"repro/internal/policy"
)

var testTime = time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)

func permitEngine(t *testing.T, name string) *pdp.Engine {
	t.Helper()
	e := pdp.New(name)
	root := policy.NewPolicySet(name + "-root").Combining(policy.PermitUnlessDeny).Build()
	if err := e.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	return e
}

func denyEngine(t *testing.T, name string) *pdp.Engine {
	t.Helper()
	e := pdp.New(name)
	root := policy.NewPolicySet(name + "-root").Combining(policy.DenyUnlessPermit).Build()
	if err := e.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	return e
}

func req() *policy.Request { return policy.NewAccessRequest("u", "r", "read") }

func TestFailableCrashAndRevive(t *testing.T) {
	r := NewFailable("r1", permitEngine(t, "p1"))
	if res := r.DecideAt(context.Background(), req(), testTime); res.Decision != policy.DecisionPermit {
		t.Fatalf("up replica = %v", res.Decision)
	}
	r.SetDown(true)
	res := r.DecideAt(context.Background(), req(), testTime)
	if !errors.Is(res.Err, ErrUnavailable) {
		t.Fatalf("down replica err = %v", res.Err)
	}
	r.SetDown(false)
	if res := r.DecideAt(context.Background(), req(), testTime); res.Decision != policy.DecisionPermit {
		t.Fatalf("revived replica = %v", res.Decision)
	}
	if r.Queries() != 3 {
		t.Errorf("Queries = %d, want 3", r.Queries())
	}
}

func TestFailoverSkipsDeadReplicas(t *testing.T) {
	r1 := NewFailable("r1", permitEngine(t, "p1"))
	r2 := NewFailable("r2", permitEngine(t, "p2"))
	r3 := NewFailable("r3", permitEngine(t, "p3"))
	ens := NewEnsemble("ens", Failover, r1, r2, r3)

	r1.SetDown(true)
	res := ens.DecideAt(context.Background(), req(), testTime)
	if res.Decision != policy.DecisionPermit {
		t.Fatalf("failover decision = %v (%v)", res.Decision, res.Err)
	}
	st := ens.Stats()
	if st.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", st.Failovers)
	}
	// r1 dead + r2 answered = 2 replica queries.
	if st.ReplicaQueries != 2 {
		t.Errorf("ReplicaQueries = %d, want 2", st.ReplicaQueries)
	}
}

func TestFailoverAllDown(t *testing.T) {
	r1 := NewFailable("r1", permitEngine(t, "p1"))
	r2 := NewFailable("r2", permitEngine(t, "p2"))
	ens := NewEnsemble("ens", Failover, r1, r2)
	r1.SetDown(true)
	r2.SetDown(true)
	res := ens.DecideAt(context.Background(), req(), testTime)
	if !errors.Is(res.Err, ErrAllReplicasDown) {
		t.Fatalf("want ErrAllReplicasDown, got %v", res.Err)
	}
	if st := ens.Stats(); st.Unavailable != 1 {
		t.Errorf("Unavailable = %d, want 1", st.Unavailable)
	}
}

func TestProbeReordersFailoverChain(t *testing.T) {
	r1 := NewFailable("r1", permitEngine(t, "p1"))
	r2 := NewFailable("r2", permitEngine(t, "p2"))
	ens := NewEnsemble("ens", Failover, r1, r2)
	r1.SetDown(true)
	if alive := ens.Probe(); alive != 1 {
		t.Fatalf("Probe alive = %d, want 1", alive)
	}
	// After probing, requests go straight to r2: no per-request failover
	// penalty.
	before := r1.Queries()
	for i := 0; i < 5; i++ {
		if res := ens.DecideAt(context.Background(), req(), testTime); res.Decision != policy.DecisionPermit {
			t.Fatal(res.Err)
		}
	}
	if r1.Queries() != before {
		t.Errorf("dead replica still probed %d times after reorder", r1.Queries()-before)
	}
	// Revive and re-probe: r1 serves again (order [r2, r1], r2 first).
	r1.SetDown(false)
	if alive := ens.Probe(); alive != 2 {
		t.Errorf("Probe alive = %d, want 2", alive)
	}
}

func TestQuorumMajority(t *testing.T) {
	// Two permit replicas, one stale deny replica: majority masks it.
	ens := NewEnsemble("ens", Quorum,
		NewFailable("r1", permitEngine(t, "p1")),
		NewFailable("r2", permitEngine(t, "p2")),
		NewFailable("r3", denyEngine(t, "p3")),
	)
	res := ens.DecideAt(context.Background(), req(), testTime)
	if res.Decision != policy.DecisionPermit {
		t.Fatalf("quorum = %v, want Permit by 2/3", res.Decision)
	}
	if st := ens.Stats(); st.Disagreements != 1 {
		t.Errorf("Disagreements = %d, want 1", st.Disagreements)
	}
}

func TestQuorumToleratesMinorityCrash(t *testing.T) {
	r3 := NewFailable("r3", permitEngine(t, "p3"))
	ens := NewEnsemble("ens", Quorum,
		NewFailable("r1", permitEngine(t, "p1")),
		NewFailable("r2", permitEngine(t, "p2")),
		r3,
	)
	r3.SetDown(true)
	res := ens.DecideAt(context.Background(), req(), testTime)
	if res.Decision != policy.DecisionPermit {
		t.Fatalf("quorum with 1 crash = %v (%v)", res.Decision, res.Err)
	}
}

func TestQuorumFailsWithoutMajority(t *testing.T) {
	r2 := NewFailable("r2", permitEngine(t, "p2"))
	r3 := NewFailable("r3", permitEngine(t, "p3"))
	ens := NewEnsemble("ens", Quorum,
		NewFailable("r1", permitEngine(t, "p1")),
		r2, r3,
	)
	r2.SetDown(true)
	r3.SetDown(true)
	res := ens.DecideAt(context.Background(), req(), testTime)
	if !errors.Is(res.Err, ErrNoQuorum) {
		t.Fatalf("want ErrNoQuorum, got %v", res.Err)
	}
	// A 1-of-3 answer set must never decide, even unanimously.
	if res.Decision != policy.DecisionIndeterminate {
		t.Errorf("decision = %v, want Indeterminate", res.Decision)
	}
}

func TestQuorumSplitVote(t *testing.T) {
	// 2 permit vs 2 deny in a 4-replica ensemble: no majority of 3.
	ens := NewEnsemble("ens", Quorum,
		NewFailable("r1", permitEngine(t, "p1")),
		NewFailable("r2", permitEngine(t, "p2")),
		NewFailable("r3", denyEngine(t, "p3")),
		NewFailable("r4", denyEngine(t, "p4")),
	)
	res := ens.DecideAt(context.Background(), req(), testTime)
	if !errors.Is(res.Err, ErrNoQuorum) {
		t.Fatalf("split vote: want ErrNoQuorum, got %v (%v)", res.Err, res.Decision)
	}
}

func TestEnsembleAsPEPProvider(t *testing.T) {
	// The ensemble drops into any place a single PDP fits.
	var provider DecisionProvider = NewEnsemble("ens", Failover,
		NewFailable("r1", permitEngine(t, "p1")))
	if res := provider.DecideAt(context.Background(), req(), testTime); res.Decision != policy.DecisionPermit {
		t.Errorf("provider = %v", res.Decision)
	}
}

func TestAvailabilityUnderCrashWindow(t *testing.T) {
	// A deterministic crash schedule: replica i is down during its
	// window; a 3-replica failover ensemble stays available throughout,
	// a single replica does not.
	r1 := NewFailable("r1", permitEngine(t, "p1"))
	r2 := NewFailable("r2", permitEngine(t, "p2"))
	r3 := NewFailable("r3", permitEngine(t, "p3"))
	ens := NewEnsemble("ens", Failover, r1, r2, r3)
	single := NewEnsemble("single", Failover, NewFailable("s1", permitEngine(t, "p4")))

	okEns, okSingle := 0, 0
	const steps = 100
	for i := 0; i < steps; i++ {
		at := testTime.Add(time.Duration(i) * time.Second)
		// Rolling crashes: each third of the timeline kills one replica.
		r1.SetDown(i < 33)
		r2.SetDown(i >= 33 && i < 66)
		r3.SetDown(i >= 66)
		single.replicas[0].SetDown(i%10 < 3) // 30% downtime

		if res := ens.DecideAt(context.Background(), req(), at); res.Decision == policy.DecisionPermit {
			okEns++
		}
		if res := single.DecideAt(context.Background(), req(), at); res.Decision == policy.DecisionPermit {
			okSingle++
		}
	}
	if okEns != steps {
		t.Errorf("replicated availability = %d/%d, want 100%%", okEns, steps)
	}
	if okSingle >= steps {
		t.Errorf("single replica availability = %d/%d, expected failures", okSingle, steps)
	}
}
