package ha

import (
	"context"
	"fmt"
	"time"

	"repro/internal/policy"
)

// BatchProvider is the optional extension a decision provider may implement
// to answer many requests in one call, amortising per-decision lock and
// cache overhead (pdp.Engine does). The result slice is positional: result
// i answers request i.
type BatchProvider interface {
	DecideBatchAt(ctx context.Context, reqs []*policy.Request, at time.Time) []policy.Result
}

// ScatterProvider is the zero-copy batch extension: evaluate reqs[p] for
// every p in positions (nil means every request) and write each result to
// out[p]. Callers own out, so stacked layers (cluster router → ensemble →
// replica → engine) share one result buffer instead of allocating and
// copying one per layer. pdp.Engine implements it.
type ScatterProvider interface {
	DecideScatterAt(ctx context.Context, reqs []*policy.Request, positions []int, at time.Time, out []policy.Result)
}

// eachPosition visits every selected request position.
func eachPosition(n int, positions []int, visit func(p int)) {
	if positions == nil {
		for p := 0; p < n; p++ {
			visit(p)
		}
		return
	}
	for _, p := range positions {
		visit(p)
	}
}

// DecideBatchAt implements BatchProvider over the replica; see
// DecideScatterAt.
func (f *Failable) DecideBatchAt(ctx context.Context, reqs []*policy.Request, at time.Time) []policy.Result {
	out := make([]policy.Result, len(reqs))
	f.DecideScatterAt(ctx, reqs, nil, at, out)
	return out
}

// DecideScatterAt implements ScatterProvider: a crashed replica yields an
// unavailable Indeterminate at every position; a stalled replica blocks
// once per batch (the batch is one call) for the stall or the caller's
// deadline; a live one delegates to the wrapped provider's scatter path
// when it has one and loops otherwise.
func (f *Failable) DecideScatterAt(ctx context.Context, reqs []*policy.Request, positions []int, at time.Time, out []policy.Result) {
	n := len(reqs)
	if positions != nil {
		n = len(positions)
	}
	f.queries.Add(int64(n))
	if f.down.Load() {
		eachPosition(len(reqs), positions, func(p int) {
			out[p] = policy.Result{
				Decision: policy.DecisionIndeterminate,
				Err:      fmt.Errorf("ha: replica %s: %w", f.name, ErrUnavailable),
			}
		})
		return
	}
	if err := f.stallFor(ctx); err != nil {
		eachPosition(len(reqs), positions, func(p int) {
			out[p] = policy.Result{
				Decision: policy.DecisionIndeterminate,
				Err:      fmt.Errorf("ha: replica %s: context done before decision: %w", f.name, err),
			}
		})
		return
	}
	if sp, ok := f.inner.(ScatterProvider); ok {
		sp.DecideScatterAt(ctx, reqs, positions, at, out)
		return
	}
	eachPosition(len(reqs), positions, func(p int) {
		out[p] = f.inner.DecideAt(ctx, reqs[p], at)
	})
}

// DecideBatchAt implements BatchProvider over the ensemble; see
// DecideScatterAt.
func (e *Ensemble) DecideBatchAt(ctx context.Context, reqs []*policy.Request, at time.Time) []policy.Result {
	if len(reqs) == 0 {
		return nil
	}
	out := make([]policy.Result, len(reqs))
	e.DecideScatterAt(ctx, reqs, nil, at, out)
	return out
}

// DecideScatterAt implements ScatterProvider over the ensemble. Failover
// sends the whole batch to the first live replica (a replica is
// all-or-nothing: crashed replicas fail every request, live ones answer
// every request); quorum sends the batch to all replicas and
// majority-votes per position. A ctx done between replicas stops the walk
// and fails the selected positions closed.
func (e *Ensemble) DecideScatterAt(ctx context.Context, reqs []*policy.Request, positions []int, at time.Time, out []policy.Result) {
	n := len(reqs)
	if positions != nil {
		n = len(positions)
	}
	if n == 0 {
		return
	}
	e.stats.requests.Add(int64(n))
	switch e.strategy {
	case Quorum:
		e.quorumScatter(ctx, e.replicas, reqs, positions, n, at, out)
	default:
		e.failoverScatter(ctx, e.replicas, *e.order.Load(), reqs, positions, n, at, out)
	}
}

// probe is the position checked to classify a replica's batch answer:
// replicas are all-or-nothing, so one position reveals availability.
func probe(positions []int) int {
	if positions == nil {
		return 0
	}
	return positions[0]
}

func (e *Ensemble) failoverScatter(ctx context.Context, replicas []*Failable, order []int, reqs []*policy.Request, positions []int, n int, at time.Time, out []policy.Result) {
	skipped := false
	for _, idx := range order {
		if err := ctx.Err(); err != nil {
			res := e.ctxDone(err)
			eachPosition(len(reqs), positions, func(p int) { out[p] = res })
			return
		}
		replicas[idx].DecideScatterAt(ctx, reqs, positions, at, out)
		e.stats.replicaQueries.Add(int64(n))
		if unavailable(out[probe(positions)]) {
			skipped = true
			continue
		}
		if skipped {
			e.stats.failovers.Add(int64(n))
		}
		return
	}
	e.stats.unavailable.Add(int64(n))
	eachPosition(len(reqs), positions, func(p int) {
		out[p] = policy.Result{
			Decision: policy.DecisionIndeterminate,
			Err:      fmt.Errorf("ha: ensemble %s: %w", e.name, ErrAllReplicasDown),
		}
	})
}

func (e *Ensemble) quorumScatter(ctx context.Context, replicas []*Failable, reqs []*policy.Request, positions []int, n int, at time.Time, out []policy.Result) {
	// Compact the selected requests so per-replica vote buffers are sized
	// to the selection, not the caller's whole batch.
	sel := reqs
	if positions != nil {
		sel = make([]*policy.Request, n)
		for k, p := range positions {
			sel[k] = reqs[p]
		}
	}
	votes := make([][]policy.Result, 0, len(replicas))
	for _, r := range replicas {
		if err := ctx.Err(); err != nil {
			res := e.ctxDone(err)
			eachPosition(len(reqs), positions, func(p int) { out[p] = res })
			return
		}
		rep := make([]policy.Result, n)
		r.DecideScatterAt(ctx, sel, nil, at, rep)
		votes = append(votes, rep)
	}
	need := len(replicas)/2 + 1
	var disagreements, unavail int64
	for k := 0; k < n; k++ {
		p := k
		if positions != nil {
			p = positions[k]
		}
		tally := make(map[policy.Decision]int, 4)
		results := make(map[policy.Decision]policy.Result, 4)
		answered := 0
		for _, rep := range votes {
			res := rep[k]
			if unavailable(res) {
				continue
			}
			answered++
			tally[res.Decision]++
			if _, ok := results[res.Decision]; !ok {
				results[res.Decision] = res
			}
		}
		var winner policy.Decision
		best := 0
		for d, count := range tally {
			if count > best {
				best, winner = count, d
			}
		}
		if answered > 0 && len(tally) > 1 {
			disagreements++
		}
		if best >= need {
			out[p] = results[winner]
			continue
		}
		unavail++
		out[p] = policy.Result{
			Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("ha: ensemble %s: %d/%d answered, need %d agreeing: %w",
				e.name, answered, len(replicas), need, ErrNoQuorum),
		}
	}
	e.stats.replicaQueries.Add(int64(n) * int64(len(replicas)))
	e.stats.disagreements.Add(disagreements)
	e.stats.unavailable.Add(unavail)
}
