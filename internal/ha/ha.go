// Package ha provides the dependability mechanisms behind the paper's
// title: replicated Policy Decision Point ensembles that keep authorising
// under component failure. Two strategies are offered — ordered failover
// (try replicas until one answers) and quorum voting (majority of all
// replicas, which additionally masks a minority of corrupt or stale
// answers) — plus a health monitor that reorders failover chains away from
// dead replicas.
//
// Failure injection is first-class: replicas are wrapped in Failable
// handles that experiments crash and revive on a virtual-time schedule.
package ha

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Dependability errors, matched with errors.Is.
var (
	// ErrUnavailable reports a crashed or unreachable replica.
	ErrUnavailable = errors.New("ha: replica unavailable")
	// ErrAllReplicasDown reports a failover that exhausted its chain.
	ErrAllReplicasDown = errors.New("ha: all replicas down")
	// ErrNoQuorum reports a vote without a majority agreement.
	ErrNoQuorum = errors.New("ha: no quorum")
)

// DecisionProvider is re-declared from pep to keep the package
// dependency-light; *pdp.Engine satisfies it.
type DecisionProvider interface {
	DecideAt(ctx context.Context, req *policy.Request, at time.Time) policy.Result
}

// Failable wraps a decision provider with a crash switch, the failure
// injection handle used by experiments E9, and a stall switch injecting
// per-decision latency — the slow-replica failure mode (a wedged disk, a
// GC-thrashing host, a saturated PIP backend) that deadlines exist to
// bound. A stalled replica blocks each decision for the stall duration or
// until the caller's context is done, whichever comes first.
type Failable struct {
	name  string
	inner DecisionProvider
	down  atomic.Bool
	stall atomic.Int64 // nanoseconds injected per decision
	// Queries counts decision attempts routed to this replica.
	queries atomic.Int64
}

// NewFailable wraps a provider.
func NewFailable(name string, inner DecisionProvider) *Failable {
	return &Failable{name: name, inner: inner}
}

// Name identifies the replica.
func (f *Failable) Name() string { return f.name }

// SetDown crashes or revives the replica.
func (f *Failable) SetDown(down bool) { f.down.Store(down) }

// Down reports the crash state.
func (f *Failable) Down() bool { return f.down.Load() }

// Queries reports how many decisions were attempted against this replica.
func (f *Failable) Queries() int64 { return f.queries.Load() }

// SetStall injects d of latency into every decision this replica answers;
// zero removes the injection. Unlike SetDown — which fails fast and lets
// failover skip the replica — a stalled replica is the pathological slow
// dependency: it holds the caller until the stall elapses or the caller's
// deadline fires.
func (f *Failable) SetStall(d time.Duration) { f.stall.Store(int64(d)) }

// stallFor blocks for the injected stall, aborting early when ctx is
// done. It reports the ctx error when the caller's deadline cut the stall
// short.
func (f *Failable) stallFor(ctx context.Context) error {
	d := time.Duration(f.stall.Load())
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DecideAt implements DecisionProvider: a crashed replica yields an
// unavailable Indeterminate, which ensembles treat as a liveness failure
// rather than a decision.
func (f *Failable) DecideAt(ctx context.Context, req *policy.Request, at time.Time) policy.Result {
	return f.DecideAtWith(ctx, req, at, nil)
}

// ResolverProvider is the optional extension a replica may implement to
// accept a per-call attribute resolver (pdp.Engine does); multi-domain
// deployments use it to thread cross-domain attribute retrieval through
// replicated decision points.
type ResolverProvider interface {
	DecideAtWith(ctx context.Context, req *policy.Request, at time.Time, resolver policy.Resolver) policy.Result
}

// DecideAtWith decides with a caller-supplied resolver when the wrapped
// provider supports one, falling back to DecideAt otherwise.
func (f *Failable) DecideAtWith(ctx context.Context, req *policy.Request, at time.Time, resolver policy.Resolver) policy.Result {
	f.queries.Add(1)
	if f.down.Load() {
		return policy.Result{
			Decision: policy.DecisionIndeterminate,
			Err:      fmt.Errorf("ha: replica %s: %w", f.name, ErrUnavailable),
		}
	}
	if err := f.stallFor(ctx); err != nil {
		return policy.Result{
			Decision: policy.DecisionIndeterminate,
			Err:      fmt.Errorf("ha: replica %s: context done before decision: %w", f.name, err),
		}
	}
	if resolver != nil {
		if rp, ok := f.inner.(ResolverProvider); ok {
			return rp.DecideAtWith(ctx, req, at, resolver)
		}
	}
	return f.inner.DecideAt(ctx, req, at)
}

// Strategy selects how an ensemble combines its replicas.
type Strategy int

// Ensemble strategies.
const (
	// Failover queries replicas in (health-ordered) sequence and returns
	// the first available answer.
	Failover Strategy = iota + 1
	// Quorum queries every replica and returns the majority decision,
	// masking minority corruption at the cost of querying all.
	Quorum
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Failover:
		return "failover"
	case Quorum:
		return "quorum"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Stats counts ensemble activity for the availability experiments.
type Stats struct {
	// Requests counts decisions asked of the ensemble.
	Requests int64
	// Failovers counts requests that skipped at least one dead replica.
	Failovers int64
	// Unavailable counts requests no replica could answer.
	Unavailable int64
	// Disagreements counts quorum votes whose replicas split.
	Disagreements int64
	// ReplicaQueries counts individual replica decisions issued.
	ReplicaQueries int64
	// Hedges counts requests duplicated onto a second replica because the
	// first had not answered within the hedge delay; HedgeWins counts the
	// subset the hedge answered first.
	Hedges, HedgeWins int64
}

// counters is the lock-free mutable form of Stats: decision paths
// increment the fields without taking a lock, so an ensemble in the
// cluster hot path adds no per-decision critical section of its own
// (mirrors the PDP engine's atomic stat stripes).
type counters struct {
	requests, failovers, unavailable, disagreements, replicaQueries atomic.Int64
	hedges, hedgeWins                                               atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Requests:       c.requests.Load(),
		Failovers:      c.failovers.Load(),
		Unavailable:    c.unavailable.Load(),
		Disagreements:  c.disagreements.Load(),
		ReplicaQueries: c.replicaQueries.Load(),
		Hedges:         c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
	}
}

// Ensemble is a replicated decision provider. The replica set is fixed at
// construction and the failover order is published as an immutable slice
// behind an atomic pointer, so the decision paths are lock-free: they load
// the current order, query replicas, and bump atomic counters.
type Ensemble struct {
	name     string
	strategy Strategy
	replicas []*Failable // immutable after construction

	// order is the failover preference: deciders load it without locking,
	// Probe builds a reordered copy and swaps it in.
	order   atomic.Pointer[[]int]
	probeMu sync.Mutex // serializes Probe's read-modify-write of order
	stats   counters
}

// NewEnsemble builds an ensemble over the replicas.
func NewEnsemble(name string, strategy Strategy, replicas ...*Failable) *Ensemble {
	order := make([]int, len(replicas))
	for i := range order {
		order[i] = i
	}
	e := &Ensemble{name: name, strategy: strategy, replicas: replicas}
	e.order.Store(&order)
	return e
}

// Name identifies the ensemble.
func (e *Ensemble) Name() string { return e.name }

// Stats returns a snapshot of ensemble counters.
func (e *Ensemble) Stats() Stats {
	return e.stats.snapshot()
}

// RegisterMetrics exposes the ensemble's counters on the registry,
// pull-model (collectors read the atomic counters at scrape time only).
// Deployments running a single ensemble outside a cluster use this; the
// cluster router registers per-shard ensemble families itself.
func (e *Ensemble) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("repro_ha_requests_total",
		"Decisions asked of the ensemble.",
		func() int64 { return e.Stats().Requests })
	reg.CounterFunc("repro_ha_failovers_total",
		"Decisions that skipped at least one dead replica.",
		func() int64 { return e.Stats().Failovers })
	reg.CounterFunc("repro_ha_unavailable_total",
		"Decisions no replica could answer.",
		func() int64 { return e.Stats().Unavailable })
	reg.CounterFunc("repro_ha_disagreements_total",
		"Quorum votes whose replicas split.",
		func() int64 { return e.Stats().Disagreements })
	reg.CounterFunc("repro_ha_replica_queries_total",
		"Individual replica decisions issued.",
		func() int64 { return e.Stats().ReplicaQueries })
}

// Probe health-checks every replica and moves dead ones to the back of the
// failover order, preserving relative preference among live replicas. It
// models the periodic heartbeat of a health monitor.
func (e *Ensemble) Probe() (alive int) {
	e.probeMu.Lock()
	defer e.probeMu.Unlock()
	cur := *e.order.Load()
	live := make([]int, 0, len(cur))
	var dead []int
	for _, idx := range cur {
		if e.replicas[idx].Down() {
			dead = append(dead, idx)
		} else {
			live = append(live, idx)
		}
	}
	next := append(live, dead...)
	e.order.Store(&next)
	return len(live)
}

// DecideAt implements DecisionProvider.
func (e *Ensemble) DecideAt(ctx context.Context, req *policy.Request, at time.Time) policy.Result {
	return e.DecideAtWith(ctx, req, at, nil)
}

// DecideAtWith implements ResolverProvider, threading a per-call resolver
// to every queried replica. A ctx done between replicas stops the walk:
// failover does not try further replicas for a caller that is gone, and a
// quorum vote short-circuits to Indeterminate.
func (e *Ensemble) DecideAtWith(ctx context.Context, req *policy.Request, at time.Time, resolver policy.Resolver) policy.Result {
	e.stats.requests.Add(1)
	switch e.strategy {
	case Quorum:
		return e.quorum(ctx, e.replicas, req, at, resolver)
	default:
		return e.failover(ctx, e.replicas, *e.order.Load(), req, at, resolver)
	}
}

// ctxDone renders a caller context expiring inside the ensemble.
func (e *Ensemble) ctxDone(err error) policy.Result {
	return policy.Result{
		Decision: policy.DecisionIndeterminate,
		Err:      fmt.Errorf("ha: ensemble %s: context done before decision: %w", e.name, err),
	}
}

func unavailable(res policy.Result) bool {
	return res.Decision == policy.DecisionIndeterminate && errors.Is(res.Err, ErrUnavailable)
}

func (e *Ensemble) failover(ctx context.Context, replicas []*Failable, order []int, req *policy.Request, at time.Time, resolver policy.Resolver) policy.Result {
	skipped := 0
	for _, idx := range order {
		if err := ctx.Err(); err != nil {
			return e.ctxDone(err)
		}
		res := replicas[idx].DecideAtWith(ctx, req, at, resolver)
		e.stats.replicaQueries.Add(1)
		if unavailable(res) {
			skipped++
			continue
		}
		if skipped > 0 {
			e.stats.failovers.Add(1)
			// The span lookup happens only on the degraded path: a
			// failover-free decision pays nothing here. Failover traces
			// are force-retained — a decision that survived dead replicas
			// is worth reading whatever the sampling rate.
			if sp := trace.FromContext(ctx); sp != nil {
				sp.SetInt("ha.failover_skipped", int64(skipped))
				sp.SetAttr("ha.replica", replicas[idx].Name())
				sp.Keep()
			}
		}
		return res
	}
	e.stats.unavailable.Add(1)
	if sp := trace.FromContext(ctx); sp != nil {
		sp.SetAttr("ha.error", ErrAllReplicasDown.Error())
		sp.Keep()
	}
	return policy.Result{
		Decision: policy.DecisionIndeterminate,
		Err:      fmt.Errorf("ha: ensemble %s: %w", e.name, ErrAllReplicasDown),
	}
}

func (e *Ensemble) quorum(ctx context.Context, replicas []*Failable, req *policy.Request, at time.Time, resolver policy.Resolver) policy.Result {
	votes := make(map[policy.Decision]int, 4)
	results := make(map[policy.Decision]policy.Result, 4)
	answered := 0
	for _, r := range replicas {
		if err := ctx.Err(); err != nil {
			return e.ctxDone(err)
		}
		res := r.DecideAtWith(ctx, req, at, resolver)
		e.stats.replicaQueries.Add(1)
		if unavailable(res) {
			continue
		}
		answered++
		votes[res.Decision]++
		if _, ok := results[res.Decision]; !ok {
			results[res.Decision] = res
		}
	}
	need := len(replicas)/2 + 1
	var winner policy.Decision
	best := 0
	for d, n := range votes {
		if n > best {
			best, winner = n, d
		}
	}
	if answered > 0 && len(votes) > 1 {
		e.stats.disagreements.Add(1)
		// A split vote is always worth a trace: annotate and retain.
		if sp := trace.FromContext(ctx); sp != nil {
			sp.SetInt("ha.quorum_answered", int64(answered))
			sp.SetInt("ha.quorum_votes", int64(len(votes)))
			sp.Keep()
		}
	}
	if best >= need {
		return results[winner]
	}
	e.stats.unavailable.Add(1)
	if sp := trace.FromContext(ctx); sp != nil {
		sp.SetAttr("ha.error", ErrNoQuorum.Error())
		sp.Keep()
	}
	return policy.Result{
		Decision: policy.DecisionIndeterminate,
		Err: fmt.Errorf("ha: ensemble %s: %d/%d answered, need %d agreeing: %w",
			e.name, answered, len(replicas), need, ErrNoQuorum),
	}
}
