package ha

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pdp"
	"repro/internal/policy"
)

func batchFixture(t *testing.T, decision policy.Decision) *pdp.Engine {
	t.Helper()
	b := policy.NewPolicy("p").Combining(policy.FirstApplicable)
	if decision == policy.DecisionPermit {
		b.Rule(policy.Permit("r").Build())
	} else {
		b.Rule(policy.Deny("r").Build())
	}
	engine := pdp.New("e")
	if err := engine.SetRoot(b.Build()); err != nil {
		t.Fatal(err)
	}
	return engine
}

func batchRequests(n int) []*policy.Request {
	reqs := make([]*policy.Request, n)
	for i := range reqs {
		reqs[i] = policy.NewAccessRequest("u", "res", "read")
	}
	return reqs
}

func TestFailableDecideBatch(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	f := NewFailable("r0", batchFixture(t, policy.DecisionPermit))
	reqs := batchRequests(5)
	for _, res := range f.DecideBatchAt(context.Background(), reqs, at) {
		if res.Decision != policy.DecisionPermit {
			t.Fatalf("live replica: %s, want Permit", res.Decision)
		}
	}
	f.SetDown(true)
	for _, res := range f.DecideBatchAt(context.Background(), reqs, at) {
		if !errors.Is(res.Err, ErrUnavailable) {
			t.Fatalf("crashed replica: %v, want ErrUnavailable", res.Err)
		}
	}
	if got := f.Queries(); got != 10 {
		t.Fatalf("Queries = %d, want 10", got)
	}
}

func TestEnsembleFailoverBatch(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r0 := NewFailable("r0", batchFixture(t, policy.DecisionPermit))
	r1 := NewFailable("r1", batchFixture(t, policy.DecisionPermit))
	ens := NewEnsemble("ens", Failover, r0, r1)
	reqs := batchRequests(4)

	r0.SetDown(true)
	for _, res := range ens.DecideBatchAt(context.Background(), reqs, at) {
		if res.Decision != policy.DecisionPermit {
			t.Fatalf("failover batch: %s, want Permit", res.Decision)
		}
	}
	st := ens.Stats()
	if st.Failovers != int64(len(reqs)) {
		t.Fatalf("Failovers = %d, want %d", st.Failovers, len(reqs))
	}

	r1.SetDown(true)
	for _, res := range ens.DecideBatchAt(context.Background(), reqs, at) {
		if !errors.Is(res.Err, ErrAllReplicasDown) {
			t.Fatalf("dead ensemble batch: %v, want ErrAllReplicasDown", res.Err)
		}
	}
	if got := ens.DecideBatchAt(context.Background(), nil, at); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
}

func TestEnsembleQuorumBatchMasksMinority(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	// Two replicas permit; one stale replica denies. The majority masks it.
	good0 := NewFailable("g0", batchFixture(t, policy.DecisionPermit))
	good1 := NewFailable("g1", batchFixture(t, policy.DecisionPermit))
	stale := NewFailable("stale", batchFixture(t, policy.DecisionDeny))
	ens := NewEnsemble("ens", Quorum, good0, good1, stale)

	reqs := batchRequests(3)
	for _, res := range ens.DecideBatchAt(context.Background(), reqs, at) {
		if res.Decision != policy.DecisionPermit {
			t.Fatalf("quorum batch: %s, want Permit (minority masked)", res.Decision)
		}
	}
	if st := ens.Stats(); st.Disagreements != int64(len(reqs)) {
		t.Fatalf("Disagreements = %d, want %d", st.Disagreements, len(reqs))
	}

	// Losing a good replica drops the vote to 1-1: no quorum, fail closed.
	good1.SetDown(true)
	for _, res := range ens.DecideBatchAt(context.Background(), reqs, at) {
		if !errors.Is(res.Err, ErrNoQuorum) {
			t.Fatalf("split vote: %v, want ErrNoQuorum", res.Err)
		}
	}
}
