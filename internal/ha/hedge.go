package ha

import (
	"context"
	"errors"
	"time"

	"repro/internal/policy"
)

// chainUnavailable reports whether a scatter attempt came back with an
// availability failure: one replica unavailable, or a whole failover chain
// exhausted (failoverScatter's terminal ErrAllReplicasDown — which plain
// unavailable() does not match, since it is a per-replica predicate).
func chainUnavailable(res policy.Result) bool {
	return res.Decision == policy.DecisionIndeterminate &&
		(errors.Is(res.Err, ErrUnavailable) || errors.Is(res.Err, ErrAllReplicasDown))
}

// DecideScatterHedgedAt is the tail-cutting variant of the failover
// scatter: the batch goes to the preferred replica, and if that replica
// has not answered within `after`, a hedge copy of the batch is issued to
// the rest of the failover chain — first conclusive answer wins. A stalled
// replica (wedged disk, GC pause) then costs ~after extra latency instead
// of the caller's whole deadline, at the price of duplicated work on the
// slow tail only.
//
// Both attempts write private buffers; the winner is copied into out, so
// the loser can finish (and be discarded) without racing the caller's
// result slice. It reports whether a hedge was launched and whether it
// won. Quorum ensembles, single-replica groups and after<=0 fall back to
// the plain scatter.
func (e *Ensemble) DecideScatterHedgedAt(ctx context.Context, reqs []*policy.Request, positions []int, at time.Time, out []policy.Result, after time.Duration) (hedged, hedgeWon bool) {
	n := len(reqs)
	if positions != nil {
		n = len(positions)
	}
	if n == 0 {
		return false, false
	}
	order := *e.order.Load()
	if after <= 0 || e.strategy == Quorum || len(order) < 2 {
		e.DecideScatterAt(ctx, reqs, positions, at, out)
		return false, false
	}
	e.stats.requests.Add(int64(n))

	copyInto := func(buf []policy.Result) {
		eachPosition(len(reqs), positions, func(p int) { out[p] = buf[p] })
	}

	primary := make([]policy.Result, len(reqs))
	primaryDone := make(chan struct{})
	go func() {
		defer close(primaryDone)
		e.failoverScatter(ctx, e.replicas, order[:1], reqs, positions, n, at, primary)
	}()

	timer := time.NewTimer(after)
	select {
	case <-primaryDone:
		timer.Stop()
		// Fast primary: the common case pays one goroutine and one timer.
		// An unavailable primary is not hedged here — it already failed
		// fast, so the ordinary failover walk is cheaper than a hedge.
		if !chainUnavailable(primary[probe(positions)]) {
			copyInto(primary)
			return false, false
		}
		rest := make([]policy.Result, len(reqs))
		e.failoverScatter(ctx, e.replicas, order[1:], reqs, positions, n, at, rest)
		if !chainUnavailable(rest[probe(positions)]) {
			e.stats.failovers.Add(int64(n))
		}
		copyInto(rest)
		return false, false
	case <-timer.C:
	}

	// Primary is slow: hedge on the rest of the chain.
	e.stats.hedges.Add(int64(n))
	hedge := make([]policy.Result, len(reqs))
	hedgeDone := make(chan struct{})
	go func() {
		defer close(hedgeDone)
		e.failoverScatter(ctx, e.replicas, order[1:], reqs, positions, n, at, hedge)
	}()

	select {
	case <-primaryDone:
		if chainUnavailable(primary[probe(positions)]) {
			// The slow primary came back all-replicas-down. The hedge on
			// the rest of the chain IS the failover walk the non-hedged
			// path would now perform — wait for it rather than abandoning
			// a failover that may still succeed.
			<-hedgeDone
			if !chainUnavailable(hedge[probe(positions)]) {
				e.stats.failovers.Add(int64(n))
				e.stats.hedgeWins.Add(int64(n))
				copyInto(hedge)
				return true, true
			}
		}
		copyInto(primary)
		return true, false
	case <-hedgeDone:
		if chainUnavailable(hedge[probe(positions)]) {
			// The hedge found nobody; the primary is still the only hope.
			<-primaryDone
			copyInto(primary)
			return true, false
		}
		e.stats.hedgeWins.Add(int64(n))
		copyInto(hedge)
		return true, true
	}
}
