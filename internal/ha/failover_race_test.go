package ha

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestFailoverDuringLiveBatches is the chaos-harness contract at the ha
// layer, run under -race in CI: replica r0 flaps down/up (SetDown from a
// chaos goroutine, with Probe reorders in between — exactly what
// /admin/chaos does to a live daemon) while several PEP goroutines stream
// batch decisions through the ensemble. With r1 permanently live, failover
// must answer every position of every batch conclusively and identically —
// a replica crash can cost a retry inside the ensemble, never a decision.
func TestFailoverDuringLiveBatches(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r0 := NewFailable("r0", batchFixture(t, policy.DecisionPermit))
	r1 := NewFailable("r1", batchFixture(t, policy.DecisionPermit))
	ens := NewEnsemble("ens", Failover, r0, r1)
	reqs := batchRequests(64)

	const runFor = 150 * time.Millisecond
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				r0.SetDown(false)
				return
			default:
			}
			r0.SetDown(i%2 == 0)
			if i%2 == 1 {
				// Reorder the failover chain concurrently with in-flight
				// batches, but only after a revive: the next crash then
				// leaves the dead replica first in the walk, so the skip
				// path (the failover proper) gets real coverage.
				ens.Probe()
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var batches, wrong atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(runFor)
			for time.Now().Before(deadline) {
				for _, res := range ens.DecideBatchAt(context.Background(), reqs, at) {
					if res.Decision != policy.DecisionPermit {
						wrong.Add(1)
					}
				}
				batches.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()

	if batches.Load() == 0 {
		t.Fatal("no batches decided")
	}
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d non-Permit decisions across %d live batches during failover flapping",
			n, batches.Load())
	}
	// The flapping replica must have been both used and routed around.
	if r0.Queries() == 0 || r1.Queries() == 0 {
		t.Fatalf("replica queries r0=%d r1=%d: failover path never exercised",
			r0.Queries(), r1.Queries())
	}
	if ens.Stats().Failovers == 0 {
		t.Fatal("no failovers recorded despite r0 flapping")
	}
}

// TestSetDownMidSingleDecisionStream is the single-decision flavour: the
// DecideAtWith failover walk under concurrent SetDown must stay
// race-clean and conclusive with one replica always live.
func TestSetDownMidSingleDecisionStream(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r0 := NewFailable("r0", batchFixture(t, policy.DecisionPermit))
	r1 := NewFailable("r1", batchFixture(t, policy.DecisionPermit))
	ens := NewEnsemble("ens", Failover, r0, r1)
	req := policy.NewAccessRequest("u", "res", "read")

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r0.SetDown(i%2 == 0)
		}
	}()

	var wrong atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if res := ens.DecideAt(context.Background(), req, at); res.Decision != policy.DecisionPermit {
					wrong.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d non-Permit decisions during SetDown flapping", n)
	}
}
