package ha

import (
	"context"
	"testing"
	"time"

	"repro/internal/policy"
)

// slowUnavailable is a decision provider that takes its time and then
// reports unavailability — the slow-then-down primary (a replica whose
// host dies mid-GC-pause) that must not preempt an in-flight hedge.
type slowUnavailable struct {
	delay time.Duration
}

func (s *slowUnavailable) DecideAt(ctx context.Context, req *policy.Request, at time.Time) policy.Result {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	return policy.Result{Decision: policy.DecisionIndeterminate, Err: ErrUnavailable}
}

// TestHedgeBeatsStalledPrimary is the tail-cutting happy path: the
// preferred replica stalls, the hedge answers conclusively well before
// the stall elapses.
func TestHedgeBeatsStalledPrimary(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r0 := NewFailable("r0", batchFixture(t, policy.DecisionPermit))
	r1 := NewFailable("r1", batchFixture(t, policy.DecisionPermit))
	const stall = 2 * time.Second
	r0.SetStall(stall)
	ens := NewEnsemble("ens", Failover, r0, r1)

	reqs := batchRequests(3)
	out := make([]policy.Result, len(reqs))
	start := time.Now()
	hedged, hedgeWon := ens.DecideScatterHedgedAt(context.Background(), reqs, nil, at, out, 5*time.Millisecond)
	if elapsed := time.Since(start); elapsed >= stall {
		t.Fatalf("hedged scatter took %v, should beat the %v stall", elapsed, stall)
	}
	if !hedged || !hedgeWon {
		t.Fatalf("hedged=%v hedgeWon=%v, want the hedge launched and won", hedged, hedgeWon)
	}
	for p, res := range out {
		if res.Decision != policy.DecisionPermit {
			t.Fatalf("position %d = %+v, want Permit from the hedge", p, res)
		}
	}
}

// TestHedgeWaitsForFailoverOnUnavailablePrimary: once a hedge is in
// flight, a slow primary that finally answers all-replicas-down must not
// preempt it — the hedge on the rest of the chain IS the failover walk
// the non-hedged path would perform, and abandoning it would turn a
// previously-successful failover into an Indeterminate.
func TestHedgeWaitsForFailoverOnUnavailablePrimary(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	// Primary: unavailable, but only after 40ms — slow enough that the
	// hedge launches first, fast enough to finish before the hedge does.
	r0 := NewFailable("r0", &slowUnavailable{delay: 40 * time.Millisecond})
	r1 := NewFailable("r1", batchFixture(t, policy.DecisionPermit))
	r1.SetStall(150 * time.Millisecond)
	ens := NewEnsemble("ens", Failover, r0, r1)

	reqs := batchRequests(2)
	out := make([]policy.Result, len(reqs))
	hedged, hedgeWon := ens.DecideScatterHedgedAt(context.Background(), reqs, nil, at, out, 5*time.Millisecond)
	if !hedged || !hedgeWon {
		t.Fatalf("hedged=%v hedgeWon=%v, want the hedge carried the failover", hedged, hedgeWon)
	}
	for p, res := range out {
		if res.Decision != policy.DecisionPermit {
			t.Fatalf("position %d = %+v, want the hedge's Permit, not the primary's unavailability", p, res)
		}
	}
	if st := ens.Stats(); st.HedgeWins != int64(len(reqs)) || st.Failovers != int64(len(reqs)) {
		t.Fatalf("stats = %+v, want hedge wins counted as failovers too", st)
	}
}
