package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

// virtualClock is a deterministic, manually advanced clock.
type virtualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newVirtualClock() *virtualClock {
	return &virtualClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestUntracedContextIsFree(t *testing.T) {
	ctx := context.Background()
	if sp := FromContext(ctx); sp != nil {
		t.Fatalf("FromContext(Background) = %v, want nil", sp)
	}
	ctx2, sp := StartSpan(ctx, "child")
	if ctx2 != ctx || sp != nil {
		t.Fatal("StartSpan on untraced context must return the context unchanged and a nil span")
	}
	// Every method must be a no-op on nil.
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.SetDuration("k", time.Second)
	sp.Keep()
	sp.End()
	if got := CurrentID(ctx); got != "" {
		t.Fatalf("CurrentID(untraced) = %q, want empty", got)
	}
}

func TestHeadSamplingDeterministic(t *testing.T) {
	tr := NewTracer(Options{Sample: 0.25, Capacity: 100})
	for i := 0; i < 100; i++ {
		_, sp := tr.StartRoot(context.Background(), "root")
		sp.End()
	}
	st := tr.Stats()
	if st.Kept != 25 || st.KeptSampled != 25 {
		t.Fatalf("Sample=0.25 over 100 roots kept %d (sampled %d), want 25", st.Kept, st.KeptSampled)
	}
	if st.Dropped != 75 {
		t.Fatalf("dropped = %d, want 75", st.Dropped)
	}
}

// TestSlowDecisionAlwaysKept pins the always-on invariant: with head
// sampling fully off, a root that runs past the slow threshold is
// retained, and a fast one is not.
func TestSlowDecisionAlwaysKept(t *testing.T) {
	clock := newVirtualClock()
	tr := NewTracer(Options{Sample: 0, SlowThreshold: 10 * time.Millisecond, Clock: clock.Now})

	_, fast := tr.StartRoot(context.Background(), "fast")
	clock.Advance(time.Millisecond)
	fast.End()

	_, slow := tr.StartRoot(context.Background(), "slow")
	clock.Advance(50 * time.Millisecond)
	slow.End()

	st := tr.Stats()
	if st.Kept != 1 || st.KeptSlow != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want exactly the slow trace kept", st)
	}
	recs := tr.Recent(0)
	if len(recs) != 1 || recs[0].Root != "slow" || recs[0].Kept != "slow" {
		t.Fatalf("recent = %+v, want the slow root", recs)
	}
}

// TestForcedKeepWins pins the Indeterminate path: Keep retains a fast
// trace even at zero sampling, attributed to the forced cause.
func TestForcedKeepWins(t *testing.T) {
	tr := NewTracer(Options{Sample: 0})
	ctx, root := tr.StartRoot(context.Background(), "root")
	_, child := StartSpan(ctx, "pdp.decide")
	child.SetAttr("decision", "Indeterminate")
	child.Keep()
	child.End()
	root.End()
	st := tr.Stats()
	if st.KeptForced != 1 || st.Kept != 1 {
		t.Fatalf("stats = %+v, want one forced keep", st)
	}
	rec := tr.Recent(1)[0]
	if len(rec.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(rec.Spans))
	}
	if rec.Spans[1].Parent != rec.Spans[0].ID {
		t.Fatalf("child parent = %s, want root id %s", rec.Spans[1].Parent, rec.Spans[0].ID)
	}
}

func TestRingBounded(t *testing.T) {
	tr := NewTracer(Options{Sample: 1, Capacity: 4})
	for i := 0; i < 10; i++ {
		_, sp := tr.StartRoot(context.Background(), "r")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	recs := tr.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	if tr.Stats().Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", tr.Stats().Evicted)
	}
	// Newest first.
	if recs[0].Spans[0].Attrs[0].Value != "9" {
		t.Fatalf("newest = %+v, want i=9", recs[0].Spans[0].Attrs)
	}
}

func TestRemoteJoinExportMerge(t *testing.T) {
	// Origin side: a traced context.
	tr := NewTracer(Options{Sample: 1})
	ctx, root := tr.StartRoot(context.Background(), "origin")

	// Simulate the wire: carry IDs as strings, join on the "server".
	tid, sid := root.TraceID.String(), root.ID.String()
	serverCtx, serverRoot, err := JoinRemote(context.Background(), tid, sid, "serve pdp:decide")
	if err != nil {
		t.Fatal(err)
	}
	if got := CurrentID(serverCtx); got != tid {
		t.Fatalf("server trace id = %s, want %s", got, tid)
	}
	_, inner := StartSpan(serverCtx, "pip.fetch")
	inner.SetAttr("attr", "subject-role")
	inner.End()
	serverRoot.End()
	exported := Export(serverRoot)
	if exported == nil {
		t.Fatal("Export returned nil")
	}

	// Back at the origin: merge and finish.
	if err := Merge(ctx, exported); err != nil {
		t.Fatal(err)
	}
	root.End()

	rec := tr.Find(tid)
	if rec == nil {
		t.Fatalf("trace %s not retained", tid)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("stitched trace has %d spans, want 3 (origin + serve + pip.fetch)", len(rec.Spans))
	}
	// The remote hop's root must be parented on the origin span.
	var serve *SpanRecord
	for i := range rec.Spans {
		if rec.Spans[i].Name == "serve pdp:decide" {
			serve = &rec.Spans[i]
		}
	}
	if serve == nil || serve.Parent != sid {
		t.Fatalf("serve span = %+v, want parent %s", serve, sid)
	}
}

func TestJoinRemoteRejectsBadIDs(t *testing.T) {
	if _, _, err := JoinRemote(context.Background(), "not-hex", "", "x"); err == nil {
		t.Fatal("want error for malformed trace id")
	}
	if _, _, err := JoinRemote(context.Background(), "00000000000000ab", "nope", "x"); err == nil {
		t.Fatal("want error for malformed parent span id")
	}
}

func TestMergeIntoUntracedContextIsNoop(t *testing.T) {
	if err := Merge(context.Background(), []byte(`[{"id":"01","name":"x"}]`)); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSpans exercises batch-style fan-out: many goroutines open,
// annotate and end child spans of one trace while the root waits. Run
// under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(Options{Sample: 1})
	ctx, root := tr.StartRoot(context.Background(), "batch")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := StartSpan(ctx, "shard")
			sp.SetInt("ord", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	rec := tr.Recent(1)[0]
	if len(rec.Spans) != 33 {
		t.Fatalf("spans = %d, want 33", len(rec.Spans))
	}
}

func TestIDRoundTrip(t *testing.T) {
	id := ID(nextID())
	back, err := ParseID(id.String())
	if err != nil || back != id {
		t.Fatalf("round trip %s -> %v (%v)", id, back, err)
	}
	sid := SpanID(nextID())
	sback, err := ParseSpanID(sid.String())
	if err != nil || sback != sid {
		t.Fatalf("round trip %s -> %v (%v)", sid, sback, err)
	}
}
