package trace

import "repro/internal/telemetry"

// RegisterMetrics exposes the tracer's retention counters on reg, so the
// sampling policy's behaviour (how many traces were kept, and why) is
// visible on /metrics next to the decision counters.
func (t *Tracer) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("repro_trace_started_total",
		"Traces opened at this process's roots.",
		func() int64 { return t.Stats().Started })
	reg.Register("repro_trace_kept_total",
		"Traces retained in the /debug/traces ring, by retention cause.",
		telemetry.KindCounter, func() []telemetry.Sample {
			st := t.Stats()
			return []telemetry.Sample{
				{Labels: []telemetry.Label{telemetry.L("cause", "forced")}, Value: float64(st.KeptForced)},
				{Labels: []telemetry.Label{telemetry.L("cause", "slow")}, Value: float64(st.KeptSlow)},
				{Labels: []telemetry.Label{telemetry.L("cause", "sampled")}, Value: float64(st.KeptSampled)},
			}
		})
	reg.CounterFunc("repro_trace_dropped_total",
		"Traces discarded at the root by the sampling policy.",
		func() int64 { return t.Stats().Dropped })
	reg.CounterFunc("repro_trace_evicted_total",
		"Kept traces pushed out of the ring by newer ones.",
		func() int64 { return t.Stats().Evicted })
}
