// Package trace provides end-to-end decision tracing: the observability
// counterpart of the paper's dependability argument. A dependable
// authorisation service must be able to show where a decision spent its
// time and why it failed; this package records that evidence as traces —
// trees of timed spans — threaded through the decision pipeline on the
// same context.Context that carries its deadline (PR 5).
//
// The model is deliberately small. A trace is identified by a random
// 64-bit ID and holds a flat list of spans; each span has its own ID, a
// parent span ID, a name, a start time, a duration and a bag of string
// attributes. Spans are opened at the enforcement-point entry (rest
// middleware, pep.Enforcer, the pdpd serving layer) and by layers that
// represent a real hop or fan-out (cluster shard dispatch, PIP backend
// fetches, remote PDP calls); layers in between annotate the current span
// instead of opening one (engine cache hit/miss, epoch, evaluation
// nanoseconds; ensemble failover attempts).
//
// Sampling is head-plus-exceptional: a Tracer keeps every 1/rate-th trace
// from its head-sampling counter, and additionally always keeps traces
// whose root span ran past the slow threshold and traces any layer marked
// with Keep (the pipeline marks every Indeterminate decision). Discarded
// traces cost their recording only; kept traces land in a bounded ring
// retrievable as JSON from /debug/traces on the daemons.
//
// Instrumentation is nil-safe throughout: FromContext on an untraced
// context returns nil, every Span method is a no-op on a nil receiver,
// and StartSpan returns the context unchanged — so the lock-free decision
// hot path pays one context lookup and nothing else when tracing is off.
//
// Traces cross process boundaries through the wire envelope: the caller
// writes its trace and span IDs into the signed header block, the serving
// side joins the trace with JoinRemote, records its spans, and returns
// them in the reply envelope, where Merge stitches them into the caller's
// live trace — one federated multi-hop decision yields one trace.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies a trace; SpanID identifies one span within it. Both are
// random non-zero 64-bit values rendered as 16 hex digits on the wire.
type ID uint64

// SpanID identifies a span.
type SpanID uint64

// String renders the ID in its 16-hex-digit wire form.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the span ID in its 16-hex-digit wire form.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the 16-hex-digit wire form of a trace ID.
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace id %q: %w", s, err)
	}
	return ID(v), nil
}

// ParseSpanID parses the 16-hex-digit wire form of a span ID.
func ParseSpanID(s string) (SpanID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad span id %q: %w", s, err)
	}
	return SpanID(v), nil
}

// idState is the lock-free ID generator: a splitmix64 walk seeded from
// crypto/rand at startup, so IDs are unique across processes with
// overwhelming probability and cost one atomic add to draw.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

func nextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// Attr is one span annotation.
type Attr struct {
	// Key names the annotation, dot-namespaced by layer ("pdp.cache").
	Key string `json:"k"`
	// Value is the rendered annotation value.
	Value string `json:"v"`
}

// Span is one timed operation within a trace. Spans are created by
// Tracer.StartRoot, StartSpan and JoinRemote, annotated by the layer that
// owns them, and closed with End. A span belongs to one goroutine between
// creation and End; concurrent spans of the same trace (batch fan-out) are
// safe because the trace's span list is lock-protected.
//
// All methods are no-ops on a nil receiver, so instrumentation never
// branches on whether tracing is active.
type Span struct {
	// TraceID, ID and Parent place the span in its trace tree (Parent is
	// zero for a root, or a remote span ID for a joined hop's root).
	TraceID ID
	ID      SpanID
	Parent  SpanID
	// Name describes the operation ("rest GET", "cluster.route",
	// "pip.fetch", "serve pdp:decide").
	Name string
	// Start and Duration time the operation (Duration is zero until End).
	Start    time.Time
	Duration time.Duration
	// Attrs are the span's annotations, in the order they were set.
	Attrs []Attr

	tr    *active
	ended bool
}

// SetAttr annotates the span with a string value.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.ended {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, value int64) {
	if s == nil || s.ended {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// SetDuration annotates the span with a duration value.
func (s *Span) SetDuration(key string, d time.Duration) {
	if s == nil || s.ended {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: d.String()})
}

// Keep marks the whole trace for retention regardless of the head-sampling
// decision. The pipeline calls it for every Indeterminate decision, so an
// out-of-time or failed authorisation is always captured.
func (s *Span) Keep() {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.keep.Store(true)
}

// End closes the span, fixing its duration. Ending the root span finishes
// the trace: the owning tracer decides retention and publishes it to the
// /debug/traces ring. End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Duration = s.tr.clock().Sub(s.Start)
	if s.tr.root == s && s.tr.tracer != nil {
		s.tr.tracer.finish(s.tr)
	}
}

// active is one live trace being recorded: the mutable shared state behind
// the spans handed to instrumentation. tracer is nil for remote-hop
// collectors (JoinRemote), whose spans are exported to the caller instead
// of retained locally.
type active struct {
	id     ID
	tracer *Tracer
	clock  func() time.Time
	root   *Span
	// sampled is the head-sampling verdict taken at the root; keep is the
	// forced-retention flag any layer may raise.
	sampled bool
	keep    atomic.Bool

	mu    sync.Mutex
	spans []*Span
}

// newSpan allocates a span into the trace under its lock.
func (tr *active) newSpan(name string, parent SpanID) *Span {
	sp := &Span{
		TraceID: tr.id,
		ID:      SpanID(nextID()),
		Parent:  parent,
		Name:    name,
		Start:   tr.clock(),
		tr:      tr,
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return sp
}

type ctxKey struct{}

// ContextWithSpan returns a context carrying the span as the current one.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when the context is
// untraced. The nil result is safe to annotate (no-op).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// CurrentID returns the current trace's wire-form ID, or "" when the
// context is untraced — the joinable correlation key audit records carry.
func CurrentID(ctx context.Context) string {
	if s := FromContext(ctx); s != nil {
		return s.TraceID.String()
	}
	return ""
}

// StartSpan opens a child of the current span, or returns (ctx, nil) when
// the context is untraced: layers instrument unconditionally and pay
// nothing without a trace.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.newSpan(name, parent.ID)
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// Stats counts tracer activity.
type Stats struct {
	// Started counts traces opened at this tracer's roots.
	Started int64
	// Kept counts retained traces; KeptSampled, KeptSlow and KeptForced
	// break retention down by cause (a trace counts once, in the first
	// matching cause: forced, then slow, then sampled).
	Kept, KeptSampled, KeptSlow, KeptForced int64
	// Dropped counts traces discarded at the root.
	Dropped int64
	// Evicted counts kept traces pushed out of the ring by newer ones.
	Evicted int64
}

type tracerCounters struct {
	started, kept, keptSampled, keptSlow, keptForced, dropped, evicted atomic.Int64
}

// Options parameterise a Tracer.
type Options struct {
	// Sample is the head-sampling fraction in [0, 1]: 0 keeps no trace on
	// the head decision alone (slow and forced traces are still kept), 1
	// keeps every trace. Intermediate fractions keep every round(1/Sample)-th
	// trace, deterministically, so tests and experiments are exact.
	Sample float64
	// SlowThreshold always keeps traces whose root span ran at least this
	// long; 0 disables the slow path.
	SlowThreshold time.Duration
	// Capacity bounds the kept-trace ring; <= 0 defaults to 256.
	Capacity int
	// Clock overrides time.Now, for deterministic tests.
	Clock func() time.Time
}

// Tracer owns the sampling policy and the bounded ring of kept traces for
// one process. Decision paths touch it only at the root (one atomic
// counter draw); retention work happens once per trace at the root's End.
type Tracer struct {
	sampleEvery uint64 // 0 = head-sample nothing, 1 = everything
	slow        time.Duration
	capacity    int
	clock       func() time.Time

	seq   atomic.Uint64
	stats tracerCounters

	mu   sync.Mutex
	ring []*Record
}

// NewTracer builds a tracer.
func NewTracer(o Options) *Tracer {
	t := &Tracer{slow: o.SlowThreshold, capacity: o.Capacity, clock: o.Clock}
	if t.capacity <= 0 {
		t.capacity = 256
	}
	if t.clock == nil {
		t.clock = time.Now
	}
	switch {
	case o.Sample >= 1:
		t.sampleEvery = 1
	case o.Sample > 0:
		t.sampleEvery = uint64(1/o.Sample + 0.5)
	}
	return t
}

// Stats returns a snapshot of the tracer counters.
func (t *Tracer) Stats() Stats {
	return Stats{
		Started:     t.stats.started.Load(),
		Kept:        t.stats.kept.Load(),
		KeptSampled: t.stats.keptSampled.Load(),
		KeptSlow:    t.stats.keptSlow.Load(),
		KeptForced:  t.stats.keptForced.Load(),
		Dropped:     t.stats.dropped.Load(),
		Evicted:     t.stats.evicted.Load(),
	}
}

// StartRoot opens a trace root at an entry point. When the context already
// carries a span (a layered entry: a PEP inside an already-traced serving
// layer), it opens a child instead, so composed entries yield one trace.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if FromContext(ctx) != nil {
		return StartSpan(ctx, name)
	}
	t.stats.started.Add(1)
	tr := &active{id: ID(nextID()), tracer: t, clock: t.clock}
	tr.sampled = t.sampleEvery == 1 || (t.sampleEvery > 0 && t.seq.Add(1)%t.sampleEvery == 0)
	sp := tr.newSpan(name, 0)
	tr.root = sp
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// finish applies the retention policy to a trace whose root just ended.
func (t *Tracer) finish(tr *active) {
	cause := ""
	switch {
	case tr.keep.Load():
		cause = "forced"
		t.stats.keptForced.Add(1)
	case t.slow > 0 && tr.root.Duration >= t.slow:
		cause = "slow"
		t.stats.keptSlow.Add(1)
	case tr.sampled:
		cause = "sampled"
		t.stats.keptSampled.Add(1)
	default:
		t.stats.dropped.Add(1)
		return
	}
	t.stats.kept.Add(1)
	rec := tr.record(cause)
	t.mu.Lock()
	if len(t.ring) >= t.capacity {
		n := copy(t.ring, t.ring[1:])
		t.ring = t.ring[:n]
		t.stats.evicted.Add(1)
	}
	t.ring = append(t.ring, rec)
	t.mu.Unlock()
}

// Recent returns up to limit kept traces, newest first (limit <= 0 returns
// all retained).
func (t *Tracer) Recent(limit int) []*Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]*Record, n)
	for i := 0; i < n; i++ {
		out[i] = t.ring[len(t.ring)-1-i]
	}
	return out
}

// Find returns the kept trace with the given wire-form ID, or nil.
func (t *Tracer) Find(id string) *Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].TraceID == id {
			return t.ring[i]
		}
	}
	return nil
}
