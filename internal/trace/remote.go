package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Record is one finished, retained trace in its exposition form: what
// /debug/traces serves and what crosses hops in reply envelopes.
type Record struct {
	// TraceID is the wire-form trace ID.
	TraceID string `json:"trace_id"`
	// Root names the root span; Duration is its duration.
	Root     string        `json:"root"`
	Duration time.Duration `json:"duration_ns"`
	// Kept states why the trace was retained: "sampled", "slow" or
	// "forced".
	Kept string `json:"kept"`
	// Spans are every recorded span, in creation order.
	Spans []SpanRecord `json:"spans"`
}

// SpanRecord is one span in exposition form.
type SpanRecord struct {
	ID       string        `json:"id"`
	Parent   string        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// record snapshots the trace's spans under its lock.
func (tr *active) record(cause string) *Record {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	rec := &Record{
		TraceID: tr.id.String(),
		Kept:    cause,
		Spans:   make([]SpanRecord, len(tr.spans)),
	}
	if tr.root != nil {
		rec.Root = tr.root.Name
		rec.Duration = tr.root.Duration
	}
	for i, sp := range tr.spans {
		rec.Spans[i] = SpanRecord{
			ID:       sp.ID.String(),
			Name:     sp.Name,
			Start:    sp.Start,
			Duration: sp.Duration,
			Attrs:    sp.Attrs,
		}
		if sp.Parent != 0 {
			rec.Spans[i].Parent = sp.Parent.String()
		}
	}
	return rec
}

// JoinRemote continues a trace that arrived over the wire: it opens a
// collector trace under the caller's trace ID with a root span parented on
// the caller's span, so spans this hop records nest correctly once merged
// back. The collector retains nothing locally — the serving layer exports
// its spans into the reply with Export and the caller stitches them with
// Merge. The returned root span must be ended before Export.
func JoinRemote(ctx context.Context, traceID, parentSpan, name string) (context.Context, *Span, error) {
	tid, err := ParseID(traceID)
	if err != nil {
		return ctx, nil, err
	}
	var parent SpanID
	if parentSpan != "" {
		if parent, err = ParseSpanID(parentSpan); err != nil {
			return ctx, nil, err
		}
	}
	tr := &active{id: tid, clock: time.Now}
	sp := tr.newSpan(name, parent)
	tr.root = sp
	return context.WithValue(ctx, ctxKey{}, sp), sp, nil
}

// Export serialises every span of the given span's trace for the reply
// envelope. It returns nil for a nil span. Export is meant for a finished
// hop: call it after the hop's root span has ended.
func Export(s *Span) []byte {
	if s == nil {
		return nil
	}
	rec := s.tr.record("")
	data, err := json.Marshal(rec.Spans)
	if err != nil {
		return nil
	}
	return data
}

// Merge stitches spans exported by a downstream hop into the current
// trace. Spans whose trace ID differs from the current trace are
// re-homed onto it (the downstream hop is authoritative only for its own
// span tree shape, not for trace identity). Merging into an untraced
// context is a no-op.
func Merge(ctx context.Context, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	cur := FromContext(ctx)
	if cur == nil {
		return nil
	}
	var spans []SpanRecord
	if err := json.Unmarshal(data, &spans); err != nil {
		return fmt.Errorf("trace: merge: %w", err)
	}
	tr := cur.tr
	merged := make([]*Span, 0, len(spans))
	for _, sr := range spans {
		sp := &Span{
			TraceID:  tr.id,
			Name:     sr.Name,
			Start:    sr.Start,
			Duration: sr.Duration,
			Attrs:    sr.Attrs,
			tr:       tr,
			ended:    true,
		}
		if id, err := ParseSpanID(sr.ID); err == nil {
			sp.ID = id
		} else {
			sp.ID = SpanID(nextID())
		}
		if sr.Parent != "" {
			if pid, err := ParseSpanID(sr.Parent); err == nil {
				sp.Parent = pid
			}
		}
		merged = append(merged, sp)
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, merged...)
	tr.mu.Unlock()
	return nil
}

// Handler serves the tracer's kept traces as JSON: the /debug/traces
// endpoint. ?id=<trace-id> returns one trace (404 when not retained);
// ?limit=N bounds the listing (default 32, newest first).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			rec := t.Find(id)
			if rec == nil {
				http.Error(w, fmt.Sprintf(`{"error":"trace %s not retained"}`, id), http.StatusNotFound)
				return
			}
			_ = json.NewEncoder(w).Encode(rec)
			return
		}
		limit := 32
		if v := r.URL.Query().Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				limit = n
			}
		}
		out := struct {
			Stats  Stats     `json:"stats"`
			Traces []*Record `json:"traces"`
		}{t.Stats(), t.Recent(limit)}
		_ = json.NewEncoder(w).Encode(out)
	})
}
