package pep

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/pdp"
	"repro/internal/policy"
)

func clinicRoot() *policy.PolicySet {
	return policy.NewPolicySet("root").Combining(policy.DenyOverrides).
		Add(policy.NewPolicy("records").
			Combining(policy.FirstApplicable).
			Rule(policy.Permit("doctors-read").
				When(policy.MatchRole("doctor"), policy.MatchActionID("read")).
				Obligation(policy.RequireObligation("log-access", policy.EffectPermit,
					map[string]string{"level": "info"})).
				Build()).
			Rule(policy.Permit("unknown-obligation").
				When(policy.MatchRole("experimental")).
				Obligation(policy.RequireObligation("quantum-check", policy.EffectPermit, nil)).
				Build()).
			Rule(policy.Deny("default").
				Obligation(policy.RequireObligation("alert", policy.EffectDeny, nil)).
				Build()).
			Build()).
		Build()
}

func newEngine(t *testing.T) *pdp.Engine {
	t.Helper()
	e := pdp.New("pdp")
	if err := e.SetRoot(clinicRoot()); err != nil {
		t.Fatal(err)
	}
	return e
}

func doctorReq(action string) *policy.Request {
	return policy.NewAccessRequest("alice", "rec-1", action).
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String("doctor"))
}

func TestEnforcePermitWithObligation(t *testing.T) {
	var logged []string
	enf := NewEnforcer("pep", newEngine(t),
		WithObligationHandler("log-access", func(ob policy.FulfilledObligation, req *policy.Request) error {
			logged = append(logged, req.SubjectID()+":"+ob.Attributes["level"].Str())
			return nil
		}),
		WithObligationHandler("alert", func(policy.FulfilledObligation, *policy.Request) error { return nil }),
	)
	out := enf.Enforce(context.Background(), doctorReq("read"))
	if !out.Allowed {
		t.Fatalf("denied: %v", out.Err)
	}
	if len(logged) != 1 || logged[0] != "alice:info" {
		t.Errorf("obligation handler saw %v", logged)
	}
}

func TestEnforceDeny(t *testing.T) {
	alerts := 0
	enf := NewEnforcer("pep", newEngine(t),
		WithObligationHandler("alert", func(policy.FulfilledObligation, *policy.Request) error {
			alerts++
			return nil
		}),
	)
	out := enf.Enforce(context.Background(), doctorReq("write"))
	if out.Allowed {
		t.Fatal("write must be denied")
	}
	if !errors.Is(out.Err, ErrDenied) {
		t.Errorf("want ErrDenied, got %v", out.Err)
	}
	if alerts != 1 {
		t.Errorf("deny-side obligation ran %d times, want 1", alerts)
	}
}

func TestEnforceFailClosedOnUnknownObligation(t *testing.T) {
	// The must-understand rule: a permit carrying an obligation the PEP
	// cannot handle is discarded.
	enf := NewEnforcer("pep", newEngine(t))
	req := policy.NewAccessRequest("bob", "rec-1", "read").
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String("experimental"))
	out := enf.Enforce(context.Background(), req)
	if out.Allowed {
		t.Fatal("permit with unhandled obligation must be discarded")
	}
	if !errors.Is(out.Err, ErrObligation) {
		t.Errorf("want ErrObligation, got %v", out.Err)
	}
	if st := enf.Stats(); st.ObligationFailures != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEnforceFailClosedOnObligationError(t *testing.T) {
	enf := NewEnforcer("pep", newEngine(t),
		WithObligationHandler("log-access", func(policy.FulfilledObligation, *policy.Request) error {
			return errors.New("audit log unreachable")
		}),
	)
	out := enf.Enforce(context.Background(), doctorReq("read"))
	if out.Allowed {
		t.Fatal("permit must be discarded when the obligation handler fails")
	}
	if !errors.Is(out.Err, ErrObligation) {
		t.Errorf("want ErrObligation, got %v", out.Err)
	}
}

func TestEnforceDenyBiasOnIndeterminate(t *testing.T) {
	empty := pdp.New("no-policy") // no root loaded: Indeterminate
	enf := NewEnforcer("pep", empty)
	out := enf.Enforce(context.Background(), doctorReq("read"))
	if out.Allowed {
		t.Fatal("Indeterminate must not allow access")
	}
	if !errors.Is(out.Err, ErrNotPermitted) {
		t.Errorf("want ErrNotPermitted, got %v", out.Err)
	}
}

func TestEnforceCacheReducesDecisionQueries(t *testing.T) {
	now := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	enf := NewEnforcer("pep", newEngine(t),
		WithObligationHandler("log-access", func(policy.FulfilledObligation, *policy.Request) error { return nil }),
		WithDecisionCache(time.Minute, 0),
		WithClock(func() time.Time { return now }),
	)
	for i := 0; i < 10; i++ {
		if out := enf.Enforce(context.Background(), doctorReq("read")); !out.Allowed {
			t.Fatalf("iteration %d: %v", i, out.Err)
		}
	}
	st := enf.Stats()
	if st.DecisionQueries != 1 || st.CacheHits != 9 {
		t.Errorf("stats = %+v, want 1 query + 9 hits", st)
	}

	// Obligations are re-fulfilled on every (cached) permit.
	now = now.Add(2 * time.Minute)
	enf.Enforce(context.Background(), doctorReq("read"))
	if st := enf.Stats(); st.DecisionQueries != 2 {
		t.Errorf("after TTL: queries = %d, want 2", st.DecisionQueries)
	}
}

func TestEnforceCacheStaleWindow(t *testing.T) {
	// A revoked policy keeps permitting from the cache until flushed —
	// exactly the staleness trade-off of Section 3.2.
	now := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	engine := newEngine(t)
	enf := NewEnforcer("pep", engine,
		WithObligationHandler("log-access", func(policy.FulfilledObligation, *policy.Request) error { return nil }),
		WithDecisionCache(time.Hour, 0),
		WithClock(func() time.Time { return now }),
	)
	if out := enf.Enforce(context.Background(), doctorReq("read")); !out.Allowed {
		t.Fatal(out.Err)
	}
	// Revoke: replace the policy base with deny-all.
	if err := engine.SetRoot(policy.NewPolicySet("lockdown").Combining(policy.DenyUnlessPermit).Build()); err != nil {
		t.Fatal(err)
	}
	if out := enf.Enforce(context.Background(), doctorReq("read")); !out.Allowed {
		t.Error("stale cached permit expected inside TTL (the modelled risk)")
	}
	enf.FlushCache()
	if out := enf.Enforce(context.Background(), doctorReq("read")); out.Allowed {
		t.Error("after flush the revocation must take effect")
	}
}

func TestGuardAgentModel(t *testing.T) {
	enf := NewEnforcer("agent", newEngine(t),
		WithObligationHandler("log-access", func(policy.FulfilledObligation, *policy.Request) error { return nil }),
		WithObligationHandler("alert", func(policy.FulfilledObligation, *policy.Request) error { return nil }),
	)
	guard := NewGuard(enf)
	ran := false
	if err := guard.Do(context.Background(), doctorReq("read"), func() error { ran = true; return nil }); err != nil {
		t.Fatalf("guard: %v", err)
	}
	if !ran {
		t.Error("protected operation did not run")
	}
	ran = false
	if err := guard.Do(context.Background(), doctorReq("write"), func() error { ran = true; return nil }); err == nil {
		t.Error("guard must refuse denied requests")
	}
	if ran {
		t.Error("protected operation ran despite deny")
	}
	// Errors from the operation itself propagate.
	opErr := errors.New("disk full")
	if err := guard.Do(context.Background(), doctorReq("read"), func() error { return opErr }); !errors.Is(err, opErr) {
		t.Errorf("want op error, got %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	enf := NewEnforcer("pep", newEngine(t),
		WithObligationHandler("log-access", func(policy.FulfilledObligation, *policy.Request) error { return nil }),
		WithObligationHandler("alert", func(policy.FulfilledObligation, *policy.Request) error { return nil }),
	)
	enf.Enforce(context.Background(), doctorReq("read"))  // permit
	enf.Enforce(context.Background(), doctorReq("write")) // deny
	st := enf.Stats()
	if st.Requests != 2 || st.Permitted != 1 || st.Denied != 1 || st.DecisionQueries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentEnforcement(t *testing.T) {
	enf := NewEnforcer("pep", newEngine(t),
		WithObligationHandler("log-access", func(policy.FulfilledObligation, *policy.Request) error { return nil }),
		WithObligationHandler("alert", func(policy.FulfilledObligation, *policy.Request) error { return nil }),
		WithDecisionCache(time.Minute, 128),
	)
	const workers = 8
	const perWorker = 50
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perWorker; i++ {
				action := "read"
				if i%2 == 1 {
					action = "write"
				}
				req := policy.NewAccessRequest(fmt.Sprintf("user-%d", w), "rec-1", action).
					Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String("doctor"))
				enf.Enforce(context.Background(), req)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	st := enf.Stats()
	if st.Requests != workers*perWorker {
		t.Errorf("requests = %d, want %d", st.Requests, workers*perWorker)
	}
	if st.Permitted+st.Denied != st.Requests {
		t.Errorf("outcome accounting inconsistent: %+v", st)
	}
}
