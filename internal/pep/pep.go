// Package pep implements Policy Enforcement Points: the components that
// create a barrier around resources, intercept every access, obtain
// decisions, fulfil obligations and fail closed (Section 2.2 of the paper).
//
// The package covers the three authorisation decision query sequences the
// paper discusses:
//
//   - pull (policy-issuing, Fig. 3): Enforcer consults a decision provider
//     for every access;
//   - push (capability-issuing, Fig. 2): PushEnforcer validates a
//     capability presented with the request;
//   - agent: Guard wraps a protected operation behind an Enforcer, the
//     proxy deployment of an enforcement point.
//
// Enforcement is deny-biased: anything but an explicit Permit — including
// Indeterminate decisions, unfulfillable obligations, and obligations with
// no registered handler — denies access.
package pep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/assertion"
	"repro/internal/capability"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Enforcement errors, matched with errors.Is.
var (
	// ErrDenied reports an explicit Deny decision.
	ErrDenied = errors.New("pep: access denied")
	// ErrNotPermitted reports a NotApplicable or Indeterminate decision,
	// denied under the fail-closed bias.
	ErrNotPermitted = errors.New("pep: no permit decision")
	// ErrObligation reports a permit whose obligations could not be
	// fulfilled; the permit is discarded.
	ErrObligation = errors.New("pep: obligation not fulfilled")
)

// DecisionProvider abstracts where decisions come from: a local pdp.Engine,
// a remote client, or a replicated ensemble. In the paper's architecture a
// decision is a network call to an autonomous authorisation service, so
// every query carries the enforcement point's context: a deadline or
// cancellation bounds the round-trip, and an out-of-time decision comes
// back Indeterminate — which the deny bias below refuses. Losing the PDP,
// or merely being too slow, fails closed at the PEP.
type DecisionProvider interface {
	DecideAt(ctx context.Context, req *policy.Request, at time.Time) policy.Result
}

// ObligationHandler performs one obligation before access is granted or
// denied. Returning an error vetoes a permit.
type ObligationHandler func(ob policy.FulfilledObligation, req *policy.Request) error

// Stats counts enforcement activity.
type Stats struct {
	// Requests counts accesses intercepted.
	Requests int64
	// Permitted and Denied count final outcomes after obligation
	// handling and bias.
	Permitted, Denied int64
	// DecisionQueries counts round-trips to the decision provider
	// (cache misses).
	DecisionQueries int64
	// CacheHits counts decisions served from the PEP-local cache.
	CacheHits int64
	// ObligationFailures counts permits discarded over obligations.
	ObligationFailures int64
	// ServedStale counts degraded enforcements answered from an expired
	// cache entry within the WithServeStale grace window while the decision
	// provider was unavailable.
	ServedStale int64
}

// Outcome is the result of one enforcement.
type Outcome struct {
	// Allowed reports whether access proceeds.
	Allowed bool
	// Decision is the underlying decision.
	Decision policy.Decision
	// By identifies the deciding rule or policy.
	By string
	// Err explains a refusal.
	Err error
}

type cacheEntry struct {
	res     policy.Result
	expires time.Time
	// stored is the decision time, the age baseline for WithServeStale.
	stored time.Time
}

// Enforcer is a pull-model enforcement point.
type Enforcer struct {
	name       string
	pdp        DecisionProvider
	handlers   map[string]ObligationHandler
	now        func() time.Time
	cacheTTL   time.Duration
	cacheMax   int
	staleGrace time.Duration
	tracer     *trace.Tracer

	mu    sync.Mutex
	cache map[string]cacheEntry
	stats Stats
}

// EnforcerOption configures an Enforcer.
type EnforcerOption func(*Enforcer)

// WithObligationHandler registers the handler for an obligation ID.
func WithObligationHandler(id string, h ObligationHandler) EnforcerOption {
	return func(e *Enforcer) { e.handlers[id] = h }
}

// WithDecisionCache enables a PEP-local decision cache, the message-saving
// mechanism of Section 3.2 (Woo & Lam). maxItems <= 0 defaults to 4096.
func WithDecisionCache(ttl time.Duration, maxItems int) EnforcerOption {
	return func(e *Enforcer) {
		if maxItems <= 0 {
			maxItems = 4096
		}
		e.cacheTTL = ttl
		e.cacheMax = maxItems
		e.cache = make(map[string]cacheEntry, 64)
	}
}

// WithServeStale arms bounded-staleness degraded enforcement: when the
// decision provider answers Indeterminate while the caller's own context
// is still alive (an unreachable PDP, an open circuit breaker downstream),
// the enforcer may serve the key's expired cached decision as long as its
// age is within grace. Served decisions are marked Degraded and aged by
// StaleFor; beyond grace — or for keys never decided — enforcement stays
// fail-closed. Requires WithDecisionCache; inert without it. In this mode
// Indeterminates are never cached, so an outage cannot clobber the last
// known good entry.
func WithServeStale(grace time.Duration) EnforcerOption {
	return func(e *Enforcer) { e.staleGrace = grace }
}

// WithClock overrides the enforcement clock.
func WithClock(now func() time.Time) EnforcerOption {
	return func(e *Enforcer) { e.now = now }
}

// WithTracer roots a decision trace at the enforcement point: each
// enforced request not already under a trace becomes one, spanning the
// decision through every layer below (engine, cluster, PIP, remote hops).
func WithTracer(t *trace.Tracer) EnforcerOption {
	return func(e *Enforcer) { e.tracer = t }
}

// NewEnforcer builds a pull-model enforcement point over the decision
// provider.
func NewEnforcer(name string, pdp DecisionProvider, opts ...EnforcerOption) *Enforcer {
	e := &Enforcer{
		name:     name,
		pdp:      pdp,
		handlers: make(map[string]ObligationHandler),
		now:      time.Now,
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Name identifies the enforcement point.
func (e *Enforcer) Name() string { return e.name }

// Stats returns a snapshot of enforcement counters.
func (e *Enforcer) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// FlushCache drops cached decisions, modelling a revocation push.
func (e *Enforcer) FlushCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cache != nil {
		e.cache = make(map[string]cacheEntry, 64)
	}
}

// Enforce intercepts one access request and produces the final outcome,
// bounded by ctx.
func (e *Enforcer) Enforce(ctx context.Context, req *policy.Request) Outcome {
	return e.EnforceAt(ctx, req, e.now())
}

// EnforceAt enforces at an explicit time. ctx bounds the decision query: a
// deadline expiring mid-query surfaces as an Indeterminate decision, which
// the deny bias refuses. Decisions poisoned by an expired context are not
// cached — the next request with time to spare must be able to earn a real
// decision.
func (e *Enforcer) EnforceAt(ctx context.Context, req *policy.Request, at time.Time) Outcome {
	var root *trace.Span
	if e.tracer != nil {
		ctx, root = e.tracer.StartRoot(ctx, "pep "+e.name)
		defer root.End()
		root.SetAttr("pep.subject", req.SubjectID())
		root.SetAttr("pep.resource", req.ResourceID())
	}
	e.mu.Lock()
	e.stats.Requests++
	useCache := e.cache != nil
	var res policy.Result
	hit := false
	var key string
	if useCache {
		key = req.CacheKey()
		if entry, ok := e.cache[key]; ok && at.Before(entry.expires) {
			res = entry.res
			hit = true
			e.stats.CacheHits++
		}
	}
	e.mu.Unlock()

	if !hit {
		res = e.pdp.DecideAt(ctx, req, at)
		e.mu.Lock()
		e.stats.DecisionQueries++
		served := false
		if useCache && e.staleGrace > 0 && res.Decision == policy.DecisionIndeterminate && ctx.Err() == nil {
			if entry, ok := e.cache[key]; ok {
				if age := at.Sub(entry.stored); age <= e.staleGrace {
					if age < 0 {
						age = 0
					}
					res = entry.res
					res.Degraded = true
					res.StaleFor = age
					e.stats.ServedStale++
					served = true
				} else {
					// The staleness bound is enforced on touch: an entry
					// aged out of the grace window can never serve again.
					delete(e.cache, key)
				}
			}
		}
		if useCache && !served && e.cacheable(ctx, res) {
			if len(e.cache) >= e.cacheMax {
				for k := range e.cache {
					delete(e.cache, k)
					break
				}
			}
			e.cache[key] = cacheEntry{res: res, expires: at.Add(e.cacheTTL), stored: at}
		}
		e.mu.Unlock()
	}
	if root != nil {
		if hit {
			root.SetAttr("pep.cache", "hit")
		}
		if res.Degraded {
			root.SetAttr("pep.degraded", "true")
			root.Keep()
		}
		root.SetAttr("pep.decision", res.Decision.String())
		if res.Decision == policy.DecisionIndeterminate {
			root.Keep()
		}
	}
	return e.finalize(req, res)
}

// cacheable reports whether a fresh decision may be cached: never one
// poisoned by the caller's expired context, and — with WithServeStale
// armed — never an Indeterminate. Callers hold e.mu.
func (e *Enforcer) cacheable(ctx context.Context, res policy.Result) bool {
	if res.Err != nil && ctx.Err() != nil {
		return false
	}
	if e.staleGrace > 0 && res.Decision == policy.DecisionIndeterminate {
		return false
	}
	return true
}

// finalize applies obligations and the deny bias to a raw decision.
func (e *Enforcer) finalize(req *policy.Request, res policy.Result) Outcome {
	out := Outcome{Decision: res.Decision, By: res.By}
	switch res.Decision {
	case policy.DecisionPermit:
		if err := e.fulfil(res.Obligations, req); err != nil {
			e.count(false, true)
			out.Err = err
			return out
		}
		e.count(true, false)
		out.Allowed = true
		return out
	case policy.DecisionDeny:
		// Deny-side obligations (e.g. alerting) run best-effort; their
		// failure cannot turn a deny into a permit.
		_ = e.fulfil(res.Obligations, req)
		e.count(false, false)
		out.Err = fmt.Errorf("pep %s: denied by %s: %w", e.name, res.By, ErrDenied)
		return out
	default:
		e.count(false, false)
		out.Err = fmt.Errorf("pep %s: decision %s: %w", e.name, res.Decision, ErrNotPermitted)
		if res.Err != nil {
			out.Err = fmt.Errorf("%w (cause: %v)", out.Err, res.Err)
		}
		return out
	}
}

func (e *Enforcer) count(permitted, obligationFailure bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if permitted {
		e.stats.Permitted++
	} else {
		e.stats.Denied++
	}
	if obligationFailure {
		e.stats.ObligationFailures++
	}
}

// fulfil runs every obligation through its registered handler. An unknown
// obligation is a must-understand failure.
func (e *Enforcer) fulfil(obs []policy.FulfilledObligation, req *policy.Request) error {
	for _, ob := range obs {
		h, ok := e.handlers[ob.ID]
		if !ok {
			return fmt.Errorf("pep %s: no handler for obligation %q: %w", e.name, ob.ID, ErrObligation)
		}
		if err := h(ob, req); err != nil {
			return fmt.Errorf("pep %s: obligation %q: %v: %w", e.name, ob.ID, err, ErrObligation)
		}
	}
	return nil
}

// Guard is the agent-model deployment: it proxies a protected operation
// behind an enforcer.
type Guard struct {
	enforcer *Enforcer
}

// NewGuard wraps an enforcer as an agent in front of a service.
func NewGuard(e *Enforcer) *Guard { return &Guard{enforcer: e} }

// Do enforces the request and, when allowed, invokes the protected
// operation. ctx bounds the decision; the operation itself is the
// caller's to bound.
func (g *Guard) Do(ctx context.Context, req *policy.Request, op func() error) error {
	out := g.enforcer.Enforce(ctx, req)
	if !out.Allowed {
		return out.Err
	}
	return op()
}

// PushEnforcer is the push-model enforcement point of Fig. 2: it validates
// capabilities presented with requests instead of querying a PDP.
type PushEnforcer struct {
	name      string
	validator *capability.Validator
	now       func() time.Time

	mu    sync.Mutex
	stats Stats
}

// NewPushEnforcer builds a push-model enforcement point.
func NewPushEnforcer(name string, v *capability.Validator) *PushEnforcer {
	return &PushEnforcer{name: name, validator: v, now: time.Now}
}

// WithClock overrides the enforcement clock.
func (e *PushEnforcer) WithClock(now func() time.Time) *PushEnforcer {
	e.now = now
	return e
}

// Stats returns a snapshot of enforcement counters.
func (e *PushEnforcer) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// EnforceCapability validates the presented capability for the request's
// resource and action.
func (e *PushEnforcer) EnforceCapability(ctx context.Context, req *policy.Request, cap *assertion.Assertion) Outcome {
	return e.EnforceCapabilityAt(ctx, req, cap, e.now())
}

// EnforceCapabilityAt validates at an explicit time. Validation is local —
// no PDP round-trip — but the enforcement still honours the caller's
// context: a request whose deadline already passed is refused outright,
// keeping push- and pull-model enforcement uniformly fail-closed under
// time pressure.
func (e *PushEnforcer) EnforceCapabilityAt(ctx context.Context, req *policy.Request, cap *assertion.Assertion, at time.Time) Outcome {
	e.mu.Lock()
	e.stats.Requests++
	e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		e.countPush(false)
		return Outcome{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("pep %s: context done before enforcement: %v: %w", e.name, err, ErrNotPermitted)}
	}
	if cap == nil {
		e.countPush(false)
		return Outcome{Decision: policy.DecisionDeny,
			Err: fmt.Errorf("pep %s: no capability presented: %w", e.name, ErrNotPermitted)}
	}
	if err := e.validator.ValidateCapability(cap, req.ResourceID(), req.ActionID(), at); err != nil {
		e.countPush(false)
		return Outcome{Decision: policy.DecisionDeny,
			Err: fmt.Errorf("pep %s: %v: %w", e.name, err, ErrDenied)}
	}
	if cap.Subject != req.SubjectID() {
		e.countPush(false)
		return Outcome{Decision: policy.DecisionDeny,
			Err: fmt.Errorf("pep %s: capability subject %s does not match requester %s: %w",
				e.name, cap.Subject, req.SubjectID(), ErrDenied)}
	}
	e.countPush(true)
	return Outcome{Allowed: true, Decision: policy.DecisionPermit, By: cap.Issuer}
}

func (e *PushEnforcer) countPush(permitted bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if permitted {
		e.stats.Permitted++
	} else {
		e.stats.Denied++
	}
}
