package pep

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/policy"
)

// outageProvider permits until broken, then answers Indeterminate — an
// unreachable PDP as the enforcer sees it.
type outageProvider struct {
	broken bool
}

func (p *outageProvider) DecideAt(context.Context, *policy.Request, time.Time) policy.Result {
	if p.broken {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: errors.New("pdp unreachable")}
	}
	return policy.Result{Decision: policy.DecisionPermit, By: "p"}
}

func TestEnforcerServeStale(t *testing.T) {
	provider := &outageProvider{}
	t0 := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	e := NewEnforcer("pep", provider,
		WithDecisionCache(time.Second, 0),
		WithServeStale(30*time.Second))
	warm := policy.NewAccessRequest("alice", "ward", "read")
	cold := policy.NewAccessRequest("bob", "ward", "read")

	if out := e.EnforceAt(context.Background(), warm, t0); !out.Allowed {
		t.Fatalf("healthy enforcement = %+v, want allowed", out)
	}

	// The PDP dies and the cached permit's TTL lapses: the grace window
	// keeps the warm key allowed, the cold key stays fail-closed.
	provider.broken = true
	at := t0.Add(5 * time.Second)
	if out := e.EnforceAt(context.Background(), warm, at); !out.Allowed {
		t.Fatalf("degraded enforcement = %+v, want allowed from stale permit", out)
	}
	if out := e.EnforceAt(context.Background(), cold, at); out.Allowed || !errors.Is(out.Err, ErrNotPermitted) {
		t.Fatalf("cold-key enforcement = %+v, want fail-closed", out)
	}

	// Beyond grace the warm key fails closed too, permanently.
	at = t0.Add(31 * time.Second)
	if out := e.EnforceAt(context.Background(), warm, at); out.Allowed {
		t.Fatalf("over-grace enforcement = %+v, want fail-closed", out)
	}

	st := e.Stats()
	if st.ServedStale != 1 {
		t.Fatalf("ServedStale = %d, want 1", st.ServedStale)
	}

	// Recovery: the outage's Indeterminates were never cached, so a healed
	// PDP immediately answers fresh.
	provider.broken = false
	if out := e.EnforceAt(context.Background(), warm, at); !out.Allowed {
		t.Fatalf("post-recovery enforcement = %+v, want allowed", out)
	}
}

// TestEnforcerServeStaleExpiredCaller: a dead caller context never earns a
// stale permit.
func TestEnforcerServeStaleExpiredCaller(t *testing.T) {
	provider := &outageProvider{}
	t0 := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	e := NewEnforcer("pep", provider,
		WithDecisionCache(time.Second, 0),
		WithServeStale(30*time.Second))
	warm := policy.NewAccessRequest("alice", "ward", "read")
	e.EnforceAt(context.Background(), warm, t0)

	provider.broken = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if out := e.EnforceAt(ctx, warm, t0.Add(5*time.Second)); out.Allowed {
		t.Fatalf("expired-caller enforcement = %+v, want fail-closed", out)
	}
}
