package pep

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/assertion"
	"repro/internal/capability"
	"repro/internal/pdp"
	"repro/internal/pip"
	"repro/internal/pki"
	"repro/internal/policy"
)

// The push-model enforcement point of Fig. 2: a capability service issues a
// signed capability once; the PEP validates it locally with no PDP
// round-trip.

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

var (
	pushEpoch = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	pushNow   = pushEpoch.Add(time.Hour)
)

type pushFixture struct {
	svc *capability.Service
	enf *PushEnforcer
}

func newPushFixture(t *testing.T) *pushFixture {
	t.Helper()
	notAfter := pushEpoch.AddDate(1, 0, 0)
	root, err := pki.NewRootAuthority("vo-ca", newDetRand(1), pushEpoch, notAfter)
	if err != nil {
		t.Fatal(err)
	}
	key, err := pki.GenerateKeyPair(newDetRand(2))
	if err != nil {
		t.Fatal(err)
	}
	cert := root.Issue("cas.vo", key.Public, pushEpoch, notAfter, false)

	dir := pip.NewDirectory("idp")
	dir.AddSubject(pip.Subject{ID: "alice", Roles: []string{"doctor"}})

	engine := pdp.New("cas-pdp", pdp.WithResolver(dir))
	rootPolicy := policy.NewPolicySet("vo").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("doctors").
			Combining(policy.DenyUnlessPermit).
			Rule(policy.Permit("doctors-read").
				When(policy.MatchRole("doctor"), policy.MatchActionID("read")).
				Build()).
			Build()).
		Build()
	if err := engine.SetRoot(rootPolicy); err != nil {
		t.Fatal(err)
	}

	svc := capability.NewService("cas.vo", key, engine, dir, 15*time.Minute).
		WithClock(func() time.Time { return pushNow })
	trust := pki.NewTrustStore()
	trust.AddRoot(root.Certificate())
	enf := NewPushEnforcer("pep.hospital-b", capability.NewValidator(trust, "pep.hospital-b", cert)).
		WithClock(func() time.Time { return pushNow.Add(time.Minute) })
	return &pushFixture{svc: svc, enf: enf}
}

func (f *pushFixture) issue(t *testing.T, subject, resource, action string) *assertion.Assertion {
	t.Helper()
	cap, err := f.svc.IssueCapability(context.Background(), policy.NewAccessRequest(subject, resource, action), "pep.hospital-b")
	if err != nil {
		t.Fatalf("IssueCapability: %v", err)
	}
	return cap
}

func TestPushEnforcerPermitsValidCapability(t *testing.T) {
	f := newPushFixture(t)
	cap := f.issue(t, "alice", "rec-7", "read")
	out := f.enf.EnforceCapability(context.Background(), policy.NewAccessRequest("alice", "rec-7", "read"), cap)
	if !out.Allowed {
		t.Fatalf("valid capability denied: %v", out.Err)
	}
	if out.Decision != policy.DecisionPermit || out.By != "cas.vo" {
		t.Errorf("outcome = %+v, want permit by cas.vo", out)
	}
	st := f.enf.Stats()
	if st.Requests != 1 || st.Permitted != 1 || st.Denied != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.DecisionQueries != 0 {
		t.Errorf("push model must not query a PDP, got %d queries", st.DecisionQueries)
	}
}

func TestPushEnforcerDeniesMissingCapability(t *testing.T) {
	f := newPushFixture(t)
	out := f.enf.EnforceCapability(context.Background(), policy.NewAccessRequest("alice", "rec-7", "read"), nil)
	if out.Allowed {
		t.Fatal("nil capability must deny")
	}
	if !errors.Is(out.Err, ErrNotPermitted) {
		t.Errorf("want ErrNotPermitted, got %v", out.Err)
	}
}

func TestPushEnforcerDeniesWrongResourceOrAction(t *testing.T) {
	f := newPushFixture(t)
	cap := f.issue(t, "alice", "rec-7", "read")
	for _, req := range []*policy.Request{
		policy.NewAccessRequest("alice", "rec-8", "read"),
		policy.NewAccessRequest("alice", "rec-7", "write"),
	} {
		out := f.enf.EnforceCapability(context.Background(), req, cap)
		if out.Allowed {
			t.Errorf("capability for rec-7/read accepted for %s/%s", req.ResourceID(), req.ActionID())
		}
		if !errors.Is(out.Err, ErrDenied) {
			t.Errorf("want ErrDenied, got %v", out.Err)
		}
	}
	st := f.enf.Stats()
	if st.Denied != 2 {
		t.Errorf("denied = %d, want 2", st.Denied)
	}
}

func TestPushEnforcerDeniesStolenCapability(t *testing.T) {
	// A capability names its subject; presenting someone else's capability
	// must fail even though the token itself verifies.
	f := newPushFixture(t)
	cap := f.issue(t, "alice", "rec-7", "read")
	out := f.enf.EnforceCapability(context.Background(), policy.NewAccessRequest("mallory", "rec-7", "read"), cap)
	if out.Allowed {
		t.Fatal("stolen capability accepted")
	}
	if !errors.Is(out.Err, ErrDenied) {
		t.Errorf("want ErrDenied, got %v", out.Err)
	}
}

func TestPushEnforcerDeniesExpiredCapability(t *testing.T) {
	f := newPushFixture(t)
	cap := f.issue(t, "alice", "rec-7", "read")
	out := f.enf.EnforceCapabilityAt(context.Background(), policy.NewAccessRequest("alice", "rec-7", "read"),
		cap, pushNow.Add(time.Hour)) // TTL is 15 minutes
	if out.Allowed {
		t.Fatal("expired capability accepted")
	}
}

func TestPushEnforcerDeniesTamperedCapability(t *testing.T) {
	f := newPushFixture(t)
	cap := f.issue(t, "alice", "rec-7", "read")
	forged := *cap
	forged.Subject = "mallory" // breaks the signature
	out := f.enf.EnforceCapability(context.Background(), policy.NewAccessRequest("mallory", "rec-7", "read"), &forged)
	if out.Allowed {
		t.Fatal("tampered capability accepted")
	}
	if !errors.Is(out.Err, ErrDenied) {
		t.Errorf("want ErrDenied, got %v", out.Err)
	}
}
