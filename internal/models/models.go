// Package models implements the three classical access-control models the
// paper's Section 2.2 surveys alongside RBAC: discretionary access control
// (identity-based ACLs with owner-managed grants), mandatory access control
// (Bell–LaPadula sensitivity labels), and the Brewer–Nash Chinese Wall
// model (history-based conflict-of-interest classes, Section 3.1).
//
// Each model exposes a direct decision function and, where meaningful, a
// bridge into the attribute-based policy engine.
package models

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/pip"
	"repro/internal/policy"
)

// Errors surfaced by the models, matched with errors.Is.
var (
	// ErrNotOwner reports a DAC grant attempted by a non-owner without
	// grant rights.
	ErrNotOwner = errors.New("models: subject may not administer this object")
	// ErrUnknownObject reports an operation on an unregistered object.
	ErrUnknownObject = errors.New("models: unknown object")
	// ErrWallViolation reports an access the Chinese Wall forbids.
	ErrWallViolation = errors.New("models: chinese wall violation")
)

// --- Discretionary access control ---

// DACEntry is one ACL entry: a subject's allowed actions, optionally with
// the right to grant those actions onward.
type DACEntry struct {
	// Actions the subject may perform.
	Actions map[string]struct{}
	// GrantOption allows the subject to grant its actions to others,
	// modelling discretionary delegation.
	GrantOption bool
}

// DAC is an owner-administered access-control-list model.
type DAC struct {
	mu     sync.RWMutex
	owners map[string]string              // object -> owner
	acls   map[string]map[string]DACEntry // object -> subject -> entry
}

// NewDAC builds an empty DAC model.
func NewDAC() *DAC {
	return &DAC{
		owners: make(map[string]string),
		acls:   make(map[string]map[string]DACEntry),
	}
}

// Register declares an object and its owner; the owner holds every right.
func (d *DAC) Register(object, owner string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.owners[object] = owner
	if d.acls[object] == nil {
		d.acls[object] = make(map[string]DACEntry)
	}
}

// Owner returns the object's owner.
func (d *DAC) Owner(object string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	o, ok := d.owners[object]
	return o, ok
}

// Grant lets grantor give grantee an action on the object. The grantor must
// be the owner or hold the action with the grant option.
func (d *DAC) Grant(grantor, grantee, object, action string, withGrant bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	owner, ok := d.owners[object]
	if !ok {
		return fmt.Errorf("models: %q: %w", object, ErrUnknownObject)
	}
	if grantor != owner {
		entry, ok := d.acls[object][grantor]
		if !ok || !entry.GrantOption {
			return fmt.Errorf("models: %s granting on %s: %w", grantor, object, ErrNotOwner)
		}
		if _, holds := entry.Actions[action]; !holds {
			return fmt.Errorf("models: %s does not hold %s on %s: %w", grantor, action, object, ErrNotOwner)
		}
	}
	entry, ok := d.acls[object][grantee]
	if !ok {
		entry = DACEntry{Actions: make(map[string]struct{})}
	}
	entry.Actions[action] = struct{}{}
	entry.GrantOption = entry.GrantOption || withGrant
	d.acls[object][grantee] = entry
	return nil
}

// Revoke removes a subject's action on the object; only the owner revokes.
func (d *DAC) Revoke(revoker, subject, object, action string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	owner, ok := d.owners[object]
	if !ok {
		return fmt.Errorf("models: %q: %w", object, ErrUnknownObject)
	}
	if revoker != owner {
		return fmt.Errorf("models: %s revoking on %s: %w", revoker, object, ErrNotOwner)
	}
	if entry, ok := d.acls[object][subject]; ok {
		delete(entry.Actions, action)
		if len(entry.Actions) == 0 {
			delete(d.acls[object], subject)
		} else {
			d.acls[object][subject] = entry
		}
	}
	return nil
}

// Check reports whether the subject may perform the action. Owners hold
// every right on their objects.
func (d *DAC) Check(subject, object, action string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.owners[object] == subject {
		return true
	}
	entry, ok := d.acls[object][subject]
	if !ok {
		return false
	}
	_, holds := entry.Actions[action]
	return holds
}

// Subjects lists the subjects with entries on the object, sorted; used by
// audits.
func (d *DAC) Subjects(object string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.acls[object]))
	for s := range d.acls[object] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// --- Mandatory access control (Bell–LaPadula) ---

// Level is a sensitivity level; higher values are more sensitive.
type Level int

// Conventional levels; any ordered ints work.
const (
	Unclassified Level = iota + 1
	Confidential
	Secret
	TopSecret
)

// String names the conventional levels.
func (l Level) String() string {
	switch l {
	case Unclassified:
		return "unclassified"
	case Confidential:
		return "confidential"
	case Secret:
		return "secret"
	case TopSecret:
		return "top-secret"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// MAC is a Bell–LaPadula lattice model over levels and need-to-know
// compartments.
type MAC struct {
	mu         sync.RWMutex
	clearances map[string]Level               // subject -> clearance
	labels     map[string]Level               // object -> classification
	compSubj   map[string]map[string]struct{} // subject -> compartments
	compObj    map[string]map[string]struct{} // object -> compartments
}

// NewMAC builds an empty MAC model.
func NewMAC() *MAC {
	return &MAC{
		clearances: make(map[string]Level),
		labels:     make(map[string]Level),
		compSubj:   make(map[string]map[string]struct{}),
		compObj:    make(map[string]map[string]struct{}),
	}
}

// Clear assigns a subject's clearance and compartments.
func (m *MAC) Clear(subject string, level Level, compartments ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clearances[subject] = level
	set := make(map[string]struct{}, len(compartments))
	for _, c := range compartments {
		set[c] = struct{}{}
	}
	m.compSubj[subject] = set
}

// Label classifies an object.
func (m *MAC) Label(object string, level Level, compartments ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.labels[object] = level
	set := make(map[string]struct{}, len(compartments))
	for _, c := range compartments {
		set[c] = struct{}{}
	}
	m.compObj[object] = set
}

// dominates reports whether the subject's label dominates the object's:
// clearance >= classification and compartments are a superset.
func (m *MAC) dominates(subject, object string) bool {
	clr, ok := m.clearances[subject]
	if !ok {
		return false
	}
	lbl, ok := m.labels[object]
	if !ok {
		return false
	}
	if clr < lbl {
		return false
	}
	for c := range m.compObj[object] {
		if _, ok := m.compSubj[subject][c]; !ok {
			return false
		}
	}
	return true
}

// CanRead implements the simple security property: no read up.
func (m *MAC) CanRead(subject, object string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.dominates(subject, object)
}

// CanWrite implements the star property: no write down. A subject may write
// only to objects whose label dominates the subject's level (and the object
// must carry every compartment context is lost to).
func (m *MAC) CanWrite(subject, object string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	clr, ok := m.clearances[subject]
	if !ok {
		return false
	}
	lbl, ok := m.labels[object]
	if !ok {
		return false
	}
	if lbl < clr {
		return false
	}
	for c := range m.compSubj[subject] {
		if _, ok := m.compObj[object][c]; !ok {
			return false
		}
	}
	return true
}

// Resolver bridges MAC labels into the policy engine: it serves subject
// clearance and resource classification as integer attributes.
func (m *MAC) ResolveAttribute(_ context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	switch {
	case cat == policy.CategorySubject && name == policy.AttrClearance && req != nil:
		if lvl, ok := m.clearances[req.SubjectID()]; ok {
			return policy.Singleton(policy.Integer(int64(lvl))), nil
		}
	case cat == policy.CategoryResource && name == policy.AttrClassification && req != nil:
		if lvl, ok := m.labels[req.ResourceID()]; ok {
			return policy.Singleton(policy.Integer(int64(lvl))), nil
		}
	}
	return nil, nil
}

var _ policy.Resolver = (*MAC)(nil)

// --- Chinese Wall (Brewer–Nash) ---

// ChineseWall tracks conflict-of-interest classes of datasets and the
// access history of each subject. A subject may access a dataset unless it
// has already accessed a different dataset in the same conflict class.
type ChineseWall struct {
	history *pip.HistoryProvider

	mu      sync.RWMutex
	classOf map[string]string // dataset -> conflict class
}

// NewChineseWall builds a wall over the given history provider; a nil
// provider gets a fresh one.
func NewChineseWall(history *pip.HistoryProvider) *ChineseWall {
	if history == nil {
		history = pip.NewHistoryProvider("chinese-wall-history")
	}
	return &ChineseWall{history: history, classOf: make(map[string]string)}
}

// History exposes the underlying provider so PDPs can serve the
// accessed-dataset attribute from it.
func (w *ChineseWall) History() *pip.HistoryProvider { return w.history }

// DeclareDataset places a dataset into a conflict-of-interest class.
func (w *ChineseWall) DeclareDataset(dataset, conflictClass string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.classOf[dataset] = conflictClass
}

// Check reports whether the subject may access the dataset under the wall
// rule. Datasets outside any declared class are unrestricted.
func (w *ChineseWall) Check(subject, dataset string) error {
	w.mu.RLock()
	class, classified := w.classOf[dataset]
	if !classified {
		w.mu.RUnlock()
		return nil
	}
	var conflicting []string
	for ds, c := range w.classOf {
		if c == class && ds != dataset {
			conflicting = append(conflicting, ds)
		}
	}
	w.mu.RUnlock()
	for _, ds := range conflicting {
		if w.history.Accessed(subject, ds) {
			return fmt.Errorf("models: %s already accessed %s in class %s, cannot access %s: %w",
				subject, ds, class, dataset, ErrWallViolation)
		}
	}
	return nil
}

// Access checks the wall and, when allowed, records the access in the
// history — the complete Brewer–Nash transition.
func (w *ChineseWall) Access(subject, dataset string) error {
	if err := w.Check(subject, dataset); err != nil {
		return err
	}
	w.history.Record(subject, dataset)
	return nil
}
