package models

import (
	"context"
	"errors"
	"testing"

	"repro/internal/pdp"
	"repro/internal/policy"
)

func TestDACOwnership(t *testing.T) {
	d := NewDAC()
	d.Register("report.doc", "alice")
	if owner, ok := d.Owner("report.doc"); !ok || owner != "alice" {
		t.Fatalf("Owner = %s, %v", owner, ok)
	}
	if !d.Check("alice", "report.doc", "write") {
		t.Error("owner holds every right")
	}
	if d.Check("bob", "report.doc", "read") {
		t.Error("ungranted subject must be refused")
	}
}

func TestDACGrantAndRevoke(t *testing.T) {
	d := NewDAC()
	d.Register("report.doc", "alice")
	if err := d.Grant("alice", "bob", "report.doc", "read", false); err != nil {
		t.Fatal(err)
	}
	if !d.Check("bob", "report.doc", "read") {
		t.Error("granted read refused")
	}
	if d.Check("bob", "report.doc", "write") {
		t.Error("bob must not hold write")
	}
	if err := d.Revoke("alice", "bob", "report.doc", "read"); err != nil {
		t.Fatal(err)
	}
	if d.Check("bob", "report.doc", "read") {
		t.Error("revoked right still active")
	}
}

func TestDACGrantOptionDelegation(t *testing.T) {
	d := NewDAC()
	d.Register("data.csv", "alice")
	// Without the grant option bob cannot re-grant.
	if err := d.Grant("alice", "bob", "data.csv", "read", false); err != nil {
		t.Fatal(err)
	}
	if err := d.Grant("bob", "carol", "data.csv", "read", false); !errors.Is(err, ErrNotOwner) {
		t.Errorf("want ErrNotOwner, got %v", err)
	}
	// With it, he can — but only for actions he holds.
	if err := d.Grant("alice", "bob", "data.csv", "read", true); err != nil {
		t.Fatal(err)
	}
	if err := d.Grant("bob", "carol", "data.csv", "read", false); err != nil {
		t.Errorf("grant-option delegation: %v", err)
	}
	if err := d.Grant("bob", "carol", "data.csv", "write", false); !errors.Is(err, ErrNotOwner) {
		t.Errorf("bob lacks write: want ErrNotOwner, got %v", err)
	}
	if !d.Check("carol", "data.csv", "read") {
		t.Error("carol's delegated read refused")
	}
	// Only the owner revokes.
	if err := d.Revoke("bob", "carol", "data.csv", "read"); !errors.Is(err, ErrNotOwner) {
		t.Errorf("want ErrNotOwner, got %v", err)
	}
}

func TestDACUnknownObject(t *testing.T) {
	d := NewDAC()
	if err := d.Grant("a", "b", "ghost", "read", false); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("want ErrUnknownObject, got %v", err)
	}
	if err := d.Revoke("a", "b", "ghost", "read"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("want ErrUnknownObject, got %v", err)
	}
}

func TestMACNoReadUp(t *testing.T) {
	m := NewMAC()
	m.Clear("analyst", Secret)
	m.Label("briefing", Confidential)
	m.Label("warplan", TopSecret)
	if !m.CanRead("analyst", "briefing") {
		t.Error("read down must be allowed")
	}
	if m.CanRead("analyst", "warplan") {
		t.Error("read up must be refused")
	}
}

func TestMACNoWriteDown(t *testing.T) {
	m := NewMAC()
	m.Clear("analyst", Secret)
	m.Label("briefing", Confidential)
	m.Label("warplan", TopSecret)
	m.Label("journal", Secret)
	if m.CanWrite("analyst", "briefing") {
		t.Error("write down must be refused (star property)")
	}
	if !m.CanWrite("analyst", "warplan") {
		t.Error("write up must be allowed")
	}
	if !m.CanWrite("analyst", "journal") {
		t.Error("write at level must be allowed")
	}
}

func TestMACCompartments(t *testing.T) {
	m := NewMAC()
	m.Clear("ops", Secret, "crypto")
	m.Clear("generalist", Secret)
	m.Label("keys", Secret, "crypto")
	if !m.CanRead("ops", "keys") {
		t.Error("compartment holder must read")
	}
	if m.CanRead("generalist", "keys") {
		t.Error("missing compartment must refuse read")
	}
	// Writing from a compartmented subject into an uncompartmented object
	// would leak the compartment.
	m.Label("wiki", Secret)
	if m.CanWrite("ops", "wiki") {
		t.Error("compartment leak on write must be refused")
	}
}

func TestMACUnknownParties(t *testing.T) {
	m := NewMAC()
	m.Label("doc", Secret)
	if m.CanRead("ghost", "doc") || m.CanWrite("ghost", "doc") {
		t.Error("uncleared subject must be refused")
	}
	m.Clear("subj", Secret)
	if m.CanRead("subj", "ghost-doc") || m.CanWrite("subj", "ghost-doc") {
		t.Error("unlabelled object must be refused")
	}
}

func TestMACAsResolverWithPolicy(t *testing.T) {
	// A policy expressing Bell–LaPadula "no read up" over MAC-served
	// attributes: permit read iff clearance >= classification.
	m := NewMAC()
	m.Clear("analyst", Secret)
	m.Label("briefing", Confidential)
	m.Label("warplan", TopSecret)

	noReadUp := policy.NewPolicySet("mac").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("read-down").
			Combining(policy.DenyUnlessPermit).
			When(policy.MatchActionID("read")).
			Rule(policy.Permit("dominates").
				If(policy.Call(policy.FnGreaterOrEqual,
					policy.Call(policy.FnOneAndOnly, policy.Required(policy.CategorySubject, policy.AttrClearance)),
					policy.Call(policy.FnOneAndOnly, policy.Required(policy.CategoryResource, policy.AttrClassification)))).
				Build()).
			Build()).
		Build()
	engine := pdp.New("mac-pdp", pdp.WithResolver(m))
	if err := engine.SetRoot(noReadUp); err != nil {
		t.Fatal(err)
	}
	if res := engine.Decide(context.Background(), policy.NewAccessRequest("analyst", "briefing", "read")); res.Decision != policy.DecisionPermit {
		t.Errorf("read down via policy = %v", res.Decision)
	}
	if res := engine.Decide(context.Background(), policy.NewAccessRequest("analyst", "warplan", "read")); res.Decision != policy.DecisionDeny {
		t.Errorf("read up via policy = %v", res.Decision)
	}
}

func TestChineseWall(t *testing.T) {
	w := NewChineseWall(nil)
	w.DeclareDataset("bank-a", "banking")
	w.DeclareDataset("bank-b", "banking")
	w.DeclareDataset("oil-x", "petroleum")

	// First access in a class is free.
	if err := w.Access("consultant", "bank-a"); err != nil {
		t.Fatal(err)
	}
	// Same dataset again is fine.
	if err := w.Access("consultant", "bank-a"); err != nil {
		t.Errorf("repeat access: %v", err)
	}
	// A different dataset in the same class is forbidden.
	if err := w.Access("consultant", "bank-b"); !errors.Is(err, ErrWallViolation) {
		t.Errorf("want ErrWallViolation, got %v", err)
	}
	// Another class is unaffected.
	if err := w.Access("consultant", "oil-x"); err != nil {
		t.Errorf("cross-class access: %v", err)
	}
	// Another consultant is unaffected.
	if err := w.Access("other", "bank-b"); err != nil {
		t.Errorf("second subject: %v", err)
	}
	// Undeclared datasets are unrestricted.
	if err := w.Access("consultant", "public-data"); err != nil {
		t.Errorf("unclassified dataset: %v", err)
	}
}

func TestChineseWallCheckDoesNotRecord(t *testing.T) {
	w := NewChineseWall(nil)
	w.DeclareDataset("bank-a", "banking")
	w.DeclareDataset("bank-b", "banking")
	if err := w.Check("c", "bank-a"); err != nil {
		t.Fatal(err)
	}
	// Check alone must not bind the consultant to the class.
	if err := w.Access("c", "bank-b"); err != nil {
		t.Errorf("check must not record history: %v", err)
	}
}

func TestChineseWallHistoryAttribute(t *testing.T) {
	w := NewChineseWall(nil)
	w.DeclareDataset("bank-a", "banking")
	if err := w.Access("carol", "bank-a"); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("carol", "bank-b", "read")
	bag, err := w.History().ResolveAttribute(context.Background(), req, policy.CategorySubject, "accessed-dataset")
	if err != nil {
		t.Fatal(err)
	}
	if !bag.Contains(policy.String("bank-a")) {
		t.Errorf("history attribute = %v", bag.Strings())
	}
}
