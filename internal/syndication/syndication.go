// Package syndication implements the Policy Administration Point /
// policy-syndication-server hierarchy of Fig. 5 in the paper: a global PAP
// holds the authoritative policy and pushes updates down a tree of local
// PAPs, each of which applies the update only when its local constraints
// accept it, relays it onward, and reports the outcome back up.
//
// The tree rides on the wire package's simulated network, so every push is
// a real envelope with a realistic encoded size, and propagation latency
// is accounted on virtual clocks. Fan-out at each level is concurrent in
// the modelled system, so subtree propagation latency is the edge latency
// plus the maximum over children, not the sum.
package syndication

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/pap"
	"repro/internal/policy"
	"repro/internal/wire"
	"repro/internal/xacml"
)

// Filter decides whether a node's local constraints accept a policy; nil
// accepts everything.
type Filter func(policy.Evaluable) bool

// Node is one PAP in the syndication tree.
type Node struct {
	// Name is the node's network address.
	Name string
	// Store is the node's local administration point.
	Store *pap.Store
	// Filter guards local application of syndicated updates.
	Filter Filter

	net      *wire.Network
	mu       sync.Mutex
	children []*Node
}

// NewNode builds a syndication node on the network. The node registers an
// acknowledgement handler so pushes to it are countable network messages.
func NewNode(name string, net *wire.Network, filter Filter) *Node {
	n := &Node{
		Name:   name,
		Store:  pap.NewStore(name),
		Filter: filter,
		net:    net,
	}
	net.Register(name, func(_ context.Context, _ *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
		// The push protocol acknowledges receipt; application and
		// further relaying are handled by the tree walk, which owns
		// the recursion so propagation latency composes correctly.
		return &wire.Envelope{Action: env.Action + "-ack", Timestamp: env.Timestamp}, nil
	})
	return n
}

// Attach adds a child node.
func (n *Node) Attach(child *Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.children = append(n.children, child)
}

// Children returns a snapshot of the node's children.
func (n *Node) Children() []*Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Node, len(n.children))
	copy(out, n.children)
	return out
}

// Report summarises one publication.
type Report struct {
	// Applied and Rejected count nodes that stored or filtered out the
	// update; Unreachable counts nodes the push could not reach.
	Applied     int
	Rejected    int
	Unreachable int
	// Messages and Bytes count syndication traffic.
	Messages int
	Bytes    int
	// Propagation is the virtual time until the last reachable node
	// applied the update (concurrent fan-out).
	Propagation time.Duration
}

func (r *Report) merge(child Report) {
	r.Applied += child.Applied
	r.Rejected += child.Rejected
	r.Unreachable += child.Unreachable
	r.Messages += child.Messages
	r.Bytes += child.Bytes
	if child.Propagation > r.Propagation {
		r.Propagation = child.Propagation
	}
}

// Publish stores the policy at this node (subject to its filter) and
// syndicates it through the subtree, returning the aggregated report. ctx
// bounds the push fan-out: a canceled publication stops descending and
// reports the unreached subtree as unreachable.
func (n *Node) Publish(ctx context.Context, e policy.Evaluable, at time.Time) (Report, error) {
	data, err := xacml.MarshalXML(e)
	if err != nil {
		return Report{}, fmt.Errorf("syndication: encode: %w", err)
	}
	return n.apply(ctx, e, data, at)
}

// apply stores locally and pushes to children.
func (n *Node) apply(ctx context.Context, e policy.Evaluable, data []byte, at time.Time) (Report, error) {
	var rep Report
	if n.Filter == nil || n.Filter(e) {
		if _, err := n.Store.Put(e); err != nil {
			return rep, fmt.Errorf("syndication: node %s: %w", n.Name, err)
		}
		rep.Applied++
	} else {
		rep.Rejected++
	}
	for _, child := range n.Children() {
		call := &wire.Call{}
		env := &wire.Envelope{
			From:      n.Name,
			To:        child.Name,
			Action:    "pap:syndicate",
			Timestamp: at,
			Body:      data,
		}
		if _, err := n.net.Send(ctx, call, env); err != nil {
			// The child (and its whole subtree) misses this update:
			// the staleness risk of Section 3.2.
			rep.Unreachable += child.subtreeSize()
			continue
		}
		childRep, err := child.apply(ctx, e, data, at)
		if err != nil {
			return rep, err
		}
		childRep.Messages += call.Messages
		childRep.Bytes += call.Bytes
		childRep.Propagation += call.Elapsed
		rep.merge(childRep)
	}
	return rep, nil
}

func (n *Node) subtreeSize() int {
	size := 1
	for _, c := range n.Children() {
		size += c.subtreeSize()
	}
	return size
}

// SubtreeSize reports the number of nodes in this node's subtree
// (including itself).
func (n *Node) SubtreeSize() int { return n.subtreeSize() }

// BuildTree assembles a uniform tree of the given fan-out and depth under
// a root node (depth 0 is just the root). Node names are
// "<prefix>-d<depth>-<index>". All nodes accept all policies.
func BuildTree(prefix string, net *wire.Network, fanOut, depth int) *Node {
	root := NewNode(prefix+"-root", net, nil)
	level := []*Node{root}
	for d := 1; d <= depth; d++ {
		var next []*Node
		for _, parent := range level {
			for i := 0; i < fanOut; i++ {
				child := NewNode(fmt.Sprintf("%s-d%d-%d", prefix, d, len(next)), net, nil)
				parent.Attach(child)
				next = append(next, child)
			}
		}
		level = next
	}
	return root
}

// Leaves returns the leaf nodes of the subtree.
func (n *Node) Leaves() []*Node {
	children := n.Children()
	if len(children) == 0 {
		return []*Node{n}
	}
	var out []*Node
	for _, c := range children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// PullAll models the centralised alternative the paper contrasts with
// syndication: every leaf PAP pulls the named policy directly from this
// (global) node on demand. It returns the traffic such a refresh costs,
// for the E5 ablation.
func (n *Node) PullAll(ctx context.Context, policyID string, at time.Time) (Report, error) {
	e, err := n.Store.Get(policyID)
	if err != nil {
		return Report{}, err
	}
	data, err := xacml.MarshalXML(e)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	for _, leaf := range n.Leaves() {
		if leaf == n {
			continue
		}
		call := &wire.Call{}
		reqEnv := &wire.Envelope{
			From:      leaf.Name,
			To:        n.Name,
			Action:    "pap:pull",
			Timestamp: at,
			Body:      []byte(policyID),
		}
		if _, err := n.net.Send(ctx, call, reqEnv); err != nil {
			rep.Unreachable++
			continue
		}
		// The response carries the policy body; account its size
		// explicitly since the ack handler returns a small envelope.
		respEnv := &wire.Envelope{
			From: n.Name, To: leaf.Name, Action: "pap:pull-response",
			Timestamp: at, Body: data,
		}
		rep.Bytes += respEnv.WireSize()
		rep.Messages += call.Messages
		rep.Bytes += call.Bytes
		if call.Elapsed > rep.Propagation {
			rep.Propagation = call.Elapsed
		}
		if _, err := leaf.Store.Put(e); err != nil {
			return rep, err
		}
		rep.Applied++
	}
	return rep, nil
}
