package syndication

import (
	"context"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/wire"
)

var at = time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)

func permitPolicy(id string) *policy.Policy {
	return policy.NewPolicy(id).
		Combining(policy.DenyUnlessPermit).
		Rule(policy.Permit(id + "-allow").Build()).
		Build()
}

func TestPublishReachesWholeTree(t *testing.T) {
	net := wire.NewNetwork(5*time.Millisecond, 1)
	root := BuildTree("pap", net, 2, 2) // 1 + 2 + 4 = 7 nodes
	if root.SubtreeSize() != 7 {
		t.Fatalf("tree size = %d, want 7", root.SubtreeSize())
	}
	rep, err := root.Publish(context.Background(), permitPolicy("global"), at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 7 || rep.Rejected != 0 || rep.Unreachable != 0 {
		t.Errorf("report = %+v", rep)
	}
	// Every node stores the policy.
	for _, leaf := range root.Leaves() {
		if _, err := leaf.Store.Get("global"); err != nil {
			t.Errorf("leaf %s missing policy: %v", leaf.Name, err)
		}
	}
	// 6 edges, each a request + ack: 12 messages.
	if rep.Messages != 12 {
		t.Errorf("messages = %d, want 12", rep.Messages)
	}
	// Concurrent fan-out: propagation is depth * round-trip edge cost,
	// not the sum over all 6 edges.
	if rep.Propagation != 2*10*time.Millisecond {
		t.Errorf("propagation = %v, want 20ms (2 levels x 10ms round trip)", rep.Propagation)
	}
}

func TestLocalConstraintsFilter(t *testing.T) {
	net := wire.NewNetwork(time.Millisecond, 1)
	root := NewNode("root", net, nil)
	// The strict child refuses policies that are not deny-biased; its
	// child still receives the relay.
	strict := NewNode("strict", net, func(e policy.Evaluable) bool {
		p, ok := e.(*policy.Policy)
		return ok && p.Combining == policy.DenyOverrides
	})
	grandchild := NewNode("grandchild", net, nil)
	root.Attach(strict)
	strict.Attach(grandchild)

	rep, err := root.Publish(context.Background(), permitPolicy("permissive"), at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 2 || rep.Rejected != 1 {
		t.Errorf("report = %+v, want 2 applied (root+grandchild), 1 rejected", rep)
	}
	if _, err := strict.Store.Get("permissive"); err == nil {
		t.Error("strict node must not store the filtered policy")
	}
	if _, err := grandchild.Store.Get("permissive"); err != nil {
		t.Error("relaying must continue past a rejecting node")
	}
}

func TestUnreachableSubtreeCounted(t *testing.T) {
	net := wire.NewNetwork(time.Millisecond, 1)
	root := BuildTree("pap", net, 2, 2)
	// Cut one depth-1 node: its subtree of 3 goes stale.
	victim := root.Children()[0]
	net.SetNodeDown(victim.Name, true)

	rep, err := root.Publish(context.Background(), permitPolicy("p"), at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreachable != 3 {
		t.Errorf("unreachable = %d, want 3", rep.Unreachable)
	}
	if rep.Applied != 4 { // root + other child + its 2 children
		t.Errorf("applied = %d, want 4", rep.Applied)
	}
	if _, err := victim.Store.Get("p"); err == nil {
		t.Error("unreachable node must be stale")
	}
}

func TestRepublishBumpsVersions(t *testing.T) {
	net := wire.NewNetwork(time.Millisecond, 1)
	root := BuildTree("pap", net, 2, 1)
	if _, err := root.Publish(context.Background(), permitPolicy("p"), at); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Publish(context.Background(), permitPolicy("p"), at.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	for _, leaf := range root.Leaves() {
		if leaf.Store.History("p") != 2 {
			t.Errorf("leaf %s history = %d, want 2", leaf.Name, leaf.Store.History("p"))
		}
	}
}

func TestPullAllComparison(t *testing.T) {
	net := wire.NewNetwork(5*time.Millisecond, 1)
	root := BuildTree("pap", net, 3, 2) // 9 leaves
	if _, err := root.Store.Put(permitPolicy("p")); err != nil {
		t.Fatal(err)
	}
	rep, err := root.PullAll(context.Background(), "p", at)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied != 9 {
		t.Errorf("applied = %d, want 9 leaves", rep.Applied)
	}
	if rep.Messages != 18 { // request + response per leaf
		t.Errorf("messages = %d, want 18", rep.Messages)
	}
	if rep.Bytes == 0 {
		t.Error("pull traffic must be accounted")
	}
	for _, leaf := range root.Leaves() {
		if _, err := leaf.Store.Get("p"); err != nil {
			t.Errorf("leaf %s missing pulled policy", leaf.Name)
		}
	}
}

func TestBuildTreeShape(t *testing.T) {
	net := wire.NewNetwork(time.Millisecond, 1)
	root := BuildTree("x", net, 3, 3)
	want := 1 + 3 + 9 + 27
	if got := root.SubtreeSize(); got != want {
		t.Errorf("size = %d, want %d", got, want)
	}
	if got := len(root.Leaves()); got != 27 {
		t.Errorf("leaves = %d, want 27", got)
	}
	// Depth 0 tree is a single node that is its own leaf.
	solo := BuildTree("solo", net, 4, 0)
	if solo.SubtreeSize() != 1 || len(solo.Leaves()) != 1 {
		t.Error("depth-0 tree malformed")
	}
}
