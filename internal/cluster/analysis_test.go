package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/policy"
	"repro/internal/workload"
)

// TestAnalyzeBaseMatchesFullAnalysis is the sharded-aggregation property:
// per-shard analysis merged across the ring equals one whole-base
// analysis, because every overlapping claim pair co-resides on at least
// one shard (shared exact resource key, or a replicated catch-all).
func TestAnalyzeBaseMatchesFullAnalysis(t *testing.T) {
	for _, shards := range []int{2, 5} {
		t.Run(fmt.Sprintf("%d-shards", shards), func(t *testing.T) {
			gen := workload.NewGenerator(workload.Config{
				Users: 20, Resources: 60, Roles: 4, Seed: 7,
			})
			base := gen.PolicyBase("base")
			// Salt the generated base with hand-made defects so the
			// property is not vacuously about clean reports: a catch-all
			// conflicting with everything, and a duplicate-coverage pair.
			rng := rand.New(rand.NewSource(3))
			base.Children = append(base.Children,
				policy.NewPolicy("zz-catchall").Combining(policy.FirstApplicable).
					Rule(policy.Deny("deny-everything").Build()).
					Build(),
				policy.NewPolicy("aa-dup").Combining(policy.DenyOverrides).
					When(policy.MatchResourceID(fmt.Sprintf("res-%d", rng.Intn(60)))).
					Rule(policy.Permit("open").Build()).
					Build())

			router, err := New("c", Config{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if err := router.SetRoot(base); err != nil {
				t.Fatal(err)
			}
			got, err := router.AnalyzeBase(analysis.Config{})
			if err != nil {
				t.Fatal(err)
			}
			children := make([]policy.Evaluable, len(base.Children))
			copy(children, base.Children)
			want := analysis.Analyze(analysis.Config{RootCombining: base.Combining}, children...)
			if want.Clean() {
				t.Fatal("whole-base analysis is clean; the fixture should produce findings")
			}
			if !reflect.DeepEqual(got.Findings, want.Findings) {
				t.Fatalf("sharded analysis diverged:\nsharded (%d):\n%swhole (%d):\n%s",
					len(got.Findings), got.Text(), len(want.Findings), want.Text())
			}
		})
	}
}

func TestAnalyzeBaseWithoutRoot(t *testing.T) {
	router, err := New("c", Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := router.AnalyzeBase(analysis.Config{}); err == nil {
		t.Fatal("AnalyzeBase with no installed root did not error")
	}
}
