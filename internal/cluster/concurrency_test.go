package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/workload"
)

// TestClusterConcurrentDecideAndRebalance drives parallel Decide and
// DecideBatch traffic against a cluster that is simultaneously growing and
// shrinking. Run under -race. The policy base answers Permit or Deny for
// every workload request, so any Indeterminate or NotApplicable verdict
// would mean a request was routed to a shard that did not hold its
// policies mid-rebalance.
func TestClusterConcurrentDecideAndRebalance(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{
		Users: 50, Resources: 300, Roles: 5, Seed: 7,
	})
	router, err := New("c", Config{
		Shards:        4,
		Replicas:      2,
		EngineOptions: []pdp.Option{pdp.WithResolver(gen.Directory("idp"))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetRoot(gen.PolicyBase("base")); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	const (
		deciders   = 4
		batchers   = 2
		iterations = 200
	)
	requests := make([][]*policy.Request, deciders+batchers)
	for i := range requests {
		requests[i] = gen.Requests(iterations)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 1)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}

	for d := 0; d < deciders; d++ {
		wg.Add(1)
		go func(reqs []*policy.Request) {
			defer wg.Done()
			for _, req := range reqs {
				res := router.DecideAt(context.Background(), req, at)
				if res.Decision != policy.DecisionPermit && res.Decision != policy.DecisionDeny {
					report("Decide returned " + res.Decision.String() + " during rebalance")
					return
				}
			}
		}(requests[d])
	}
	for b := 0; b < batchers; b++ {
		wg.Add(1)
		go func(reqs []*policy.Request) {
			defer wg.Done()
			const batch = 20
			for i := 0; i+batch <= len(reqs); i += batch {
				for _, res := range router.DecideBatchAt(context.Background(), reqs[i:i+batch], at) {
					if res.Decision != policy.DecisionPermit && res.Decision != policy.DecisionDeny {
						report("DecideBatch returned " + res.Decision.String() + " during rebalance")
						return
					}
				}
			}
		}(requests[deciders+b])
	}

	// The rebalancer grows and shrinks the cluster throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			name, err := router.AddShard()
			if err != nil {
				report("AddShard: " + err.Error())
				return
			}
			if err := router.RemoveShard(name); err != nil {
				report("RemoveShard: " + err.Error())
				return
			}
		}
	}()

	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if got := router.Stats().Rebalances; got != 40 {
		t.Fatalf("Rebalances = %d, want 40", got)
	}
}

// TestClusterConcurrentBatchSameShard hammers one shard group with
// overlapping batches to exercise the engine's batched cache path under
// contention.
func TestClusterConcurrentBatchSameShard(t *testing.T) {
	gen := workload.NewGenerator(workload.Config{
		Users: 20, Resources: 50, Roles: 5, Seed: 9,
	})
	router, err := New("c", Config{
		Shards: 1,
		EngineOptions: []pdp.Option{
			pdp.WithResolver(gen.Directory("idp")),
			pdp.WithDecisionCache(time.Hour, 128),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetRoot(gen.PolicyBase("base")); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	reqs := gen.Requests(100)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				for _, res := range router.DecideBatchAt(context.Background(), reqs, at) {
					if res.Decision != policy.DecisionPermit && res.Decision != policy.DecisionDeny {
						t.Errorf("unexpected decision %s", res.Decision)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
