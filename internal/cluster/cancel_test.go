package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/policy"
)

// Cancellation semantics of the routed decision pipeline: a caller that
// runs out of time gets fail-closed Indeterminates promptly — never a
// hang on a slow shard, never a permit it did not earn.

// stallAllShards injects per-decision latency into every replica of every
// shard group.
func stallAllShards(t *testing.T, router *Router, d time.Duration) {
	t.Helper()
	for _, name := range router.Shards() {
		replicas, err := router.Replicas(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range replicas {
			r.SetStall(d)
		}
	}
}

// TestCancelMidBatchReturnsPromptlyFailClosed is the headline cancellation
// property: canceling mid-DecideBatch on a 4-shard router returns long
// before the stalled shards would have answered, with Indeterminate for
// every unfinished position.
func TestCancelMidBatchReturnsPromptlyFailClosed(t *testing.T) {
	const stall = 5 * time.Second
	_, router, gen := fixture(t, Config{Shards: 4}, 200)
	reqs := gen.Requests(64)
	stallAllShards(t, router, stall)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond) // let the batch get in flight
		cancel()
	}()
	start := time.Now()
	results := router.DecideBatchAt(ctx, reqs, testEpoch)
	elapsed := time.Since(start)
	if elapsed >= stall {
		t.Fatalf("batch took %v; cancellation did not cut the stall short", elapsed)
	}
	for i, res := range results {
		if res.Decision != policy.DecisionIndeterminate {
			t.Fatalf("position %d: decision %s after cancellation, want Indeterminate", i, res.Decision)
		}
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("position %d: err %v does not carry context.Canceled", i, res.Err)
		}
	}
}

// TestDeadlineShedsOnlySlowShard checks partial progress under a deadline:
// with one shard stalled past the budget, positions owned by healthy
// shards keep their real verdicts while the slow shard's positions fail
// closed with the deadline cause.
func TestDeadlineShedsOnlySlowShard(t *testing.T) {
	const stall = 5 * time.Second
	single, router, _ := fixture(t, Config{Shards: 4}, 200)

	// Stall the last shard in dispatch order: on hosts without spare
	// parallelism the router evaluates groups sequentially by ordinal, so
	// the healthy groups must come first for partial progress to be
	// observable at all (with parallelism the order is irrelevant).
	shards := router.Shards()
	slow := shards[len(shards)-1]
	replicas, err := router.Replicas(slow)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range replicas {
		r.SetStall(stall)
	}

	// Build a batch that provably covers the slow shard and at least one
	// healthy shard.
	var reqs []*policy.Request
	slowOwned, healthyOwned := 0, 0
	for i := 0; i < 200 && len(reqs) < 128; i++ {
		resource := policyResource(i)
		owner, ok := router.Owner(resource)
		if !ok {
			continue
		}
		if owner == slow {
			slowOwned++
		} else {
			healthyOwned++
		}
		reqs = append(reqs, policy.NewAccessRequest("user-1", resource, "read"))
	}
	if slowOwned == 0 || healthyOwned == 0 {
		t.Fatalf("degenerate ownership split: slow=%d healthy=%d", slowOwned, healthyOwned)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	results := router.DecideBatchAt(ctx, reqs, testEpoch)
	if elapsed := time.Since(start); elapsed >= stall {
		t.Fatalf("batch took %v; deadline did not bound the slow shard", elapsed)
	}

	shed, answered := 0, 0
	for i, res := range results {
		owner, _ := router.Owner(reqs[i].ResourceID())
		if owner == slow {
			if res.Decision != policy.DecisionIndeterminate || !errors.Is(res.Err, context.DeadlineExceeded) {
				t.Fatalf("slow-shard position %d: got %s (%v), want deadline Indeterminate", i, res.Decision, res.Err)
			}
			shed++
			continue
		}
		want := single.DecideAt(context.Background(), reqs[i], testEpoch)
		if res.Decision != want.Decision {
			t.Fatalf("healthy position %d: got %s, want %s", i, res.Decision, want.Decision)
		}
		answered++
	}
	if shed == 0 || answered == 0 {
		t.Fatalf("degenerate split: shed=%d answered=%d (want both non-zero)", shed, answered)
	}
}

// policyResource names the i-th generated resource (workload.ResourceID,
// re-derived here to keep the request construction explicit).
func policyResource(i int) string { return fmt.Sprintf("res-%d", i) }

// TestExpiredContextSingleDecide covers the per-request path: an already
// expired context yields an immediate fail-closed Indeterminate.
func TestExpiredContextSingleDecide(t *testing.T) {
	_, router, gen := fixture(t, Config{Shards: 4}, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := router.DecideAt(ctx, gen.NextRequest(), testEpoch)
	if res.Decision != policy.DecisionIndeterminate || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("got %s (%v), want canceled Indeterminate", res.Decision, res.Err)
	}
}
