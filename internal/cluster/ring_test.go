package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	for _, n := range []string{"s0", "s1", "s2"} {
		a.Add(n)
		b.Add(n)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("res-%d", i)
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatalf("no owner for %s", key)
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("rings disagree on %s: %s vs %s", key, oa, ob)
		}
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("res-1"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Add("s0")
	r.Add("s0") // duplicate add is a no-op
	if got := r.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	r.Remove("nope") // unknown remove is a no-op
	if owner, ok := r.Owner("res-1"); !ok || owner != "s0" {
		t.Fatalf("Owner = %q,%v, want s0", owner, ok)
	}
	r.Remove("s0")
	if _, ok := r.Owner("res-1"); ok {
		t.Fatal("emptied ring claimed an owner")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	const nodes = 4
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("s%d", i))
	}
	counts := make(map[string]int, nodes)
	const keys = 10000
	for i := 0; i < keys; i++ {
		owner, _ := r.Owner(fmt.Sprintf("res-%d", i))
		counts[owner]++
	}
	for node, n := range counts {
		share := float64(n) / keys
		// Perfect balance is 25%; virtual nodes should hold every shard
		// within a loose 2x band.
		if share < 0.125 || share > 0.5 {
			t.Errorf("node %s owns %.1f%% of keys, outside [12.5%%, 50%%]", node, 100*share)
		}
	}
}

func TestRingStabilityOnMembershipChange(t *testing.T) {
	r := NewRing(0)
	const nodes = 4
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("s%d", i))
	}
	const keys = 10000
	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Owner(fmt.Sprintf("res-%d", i))
	}

	r.Add("s4")
	movedOnAdd := 0
	for i := range before {
		owner, _ := r.Owner(fmt.Sprintf("res-%d", i))
		if owner != before[i] {
			if owner != "s4" {
				t.Fatalf("key res-%d moved between pre-existing nodes (%s -> %s)", i, before[i], owner)
			}
			movedOnAdd++
		}
	}
	// Expected move share is 1/5; allow up to double.
	if share := float64(movedOnAdd) / keys; share > 0.4 {
		t.Errorf("add moved %.1f%% of keys, want ≲ 20%%", 100*share)
	}

	r.Remove("s4")
	for i := range before {
		owner, _ := r.Owner(fmt.Sprintf("res-%d", i))
		if owner != before[i] {
			t.Fatalf("remove did not restore ownership of res-%d (%s -> %s)", i, before[i], owner)
		}
	}
}
