package cluster

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/policy"
)

// AnalyzeBase runs the static policy analysis shard by shard over the
// partitioned base and merges the per-shard reports into one.
//
// The aggregation is lossless: every pairwise finding requires its two
// claims to overlap on the resource dimension, so they either share an
// exact resource key — and the key's owning shard serves both children —
// or one of them is a catch-all, which repartitioning replicates to every
// shard. Any finding pair therefore co-resides on at least one shard;
// findings discovered on several shards deduplicate in analysis.Merge.
// Single-policy findings surface on whichever shards serve the policy.
//
// A zero cfg.RootCombining defaults to the installed root's combining
// algorithm. The router's read lock is held across the analysis, so a
// concurrent rebalance cannot tear the shard slices mid-scan; decisions
// (also read-locked) proceed concurrently.
func (r *Router) AnalyzeBase(cfg analysis.Config) (analysis.Report, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.root == nil {
		return analysis.Report{}, fmt.Errorf("cluster %s: no policy base installed", r.name)
	}
	set, partitionable := r.root.(*policy.PolicySet)
	if !partitionable {
		return analysis.Analyze(cfg, r.root), nil
	}
	if cfg.RootCombining == 0 {
		cfg.RootCombining = set.Combining
	}
	reports := make([]analysis.Report, 0, len(r.order))
	for _, name := range r.order {
		s := r.shards[name]
		children := make([]policy.Evaluable, 0, len(s.children))
		for _, idx := range s.children {
			children = append(children, set.Children[idx])
		}
		reports = append(reports, analysis.Analyze(cfg, children...))
	}
	return analysis.Merge(reports...), nil
}
