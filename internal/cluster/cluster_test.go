package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ha"
	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/workload"
)

var testEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// fixture builds a single reference engine and a cluster over the same
// generated policy base and subject directory.
func fixture(t *testing.T, cfg Config, resources int) (*pdp.Engine, *Router, *workload.Generator) {
	t.Helper()
	gen := workload.NewGenerator(workload.Config{
		Users: 50, Resources: resources, Roles: 5, Seed: 42,
	})
	dir := gen.Directory("idp")
	base := gen.PolicyBase("base")

	single := pdp.New("single", pdp.WithResolver(dir))
	if err := single.SetRoot(base); err != nil {
		t.Fatal(err)
	}
	cfg.EngineOptions = append(cfg.EngineOptions, pdp.WithResolver(dir))
	router, err := New("c", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetRoot(base); err != nil {
		t.Fatal(err)
	}
	return single, router, gen
}

// TestClusterMatchesSingleEngine is the property check of the Router
// contract: over a generated workload, a sharded cluster returns exactly
// the verdicts of a single engine evaluating the full base.
func TestClusterMatchesSingleEngine(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"1-shard", Config{Shards: 1}},
		{"4-shard", Config{Shards: 4}},
		{"16-shard", Config{Shards: 16}},
		{"4-shard-3-replica-failover", Config{Shards: 4, Replicas: 3, Strategy: ha.Failover}},
		{"4-shard-3-replica-quorum", Config{Shards: 4, Replicas: 3, Strategy: ha.Quorum}},
		{"4-shard-indexed", Config{Shards: 4, EngineOptions: []pdp.Option{pdp.WithTargetIndex()}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			single, router, gen := fixture(t, tc.cfg, 200)
			for i := 0; i < 500; i++ {
				req := gen.NextRequest()
				want := single.DecideAt(context.Background(), req, testEpoch)
				got := router.DecideAt(context.Background(), req, testEpoch)
				if got.Decision != want.Decision || got.By != want.By {
					t.Fatalf("request %d (%s): cluster says %s by %s, single engine %s by %s",
						i, req, got.Decision, got.By, want.Decision, want.By)
				}
			}
		})
	}
}

func TestClusterDecideBatchMatchesDecide(t *testing.T) {
	single, router, gen := fixture(t, Config{Shards: 4}, 200)
	reqs := gen.Requests(300)
	results := router.DecideBatchAt(context.Background(), reqs, testEpoch)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results {
		want := single.DecideAt(context.Background(), reqs[i], testEpoch)
		if res.Decision != want.Decision || res.By != want.By {
			t.Fatalf("batch item %d: %s by %s, want %s by %s",
				i, res.Decision, res.By, want.Decision, want.By)
		}
	}
	if got := router.DecideBatchAt(context.Background(), nil, testEpoch); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
	st := router.Stats()
	if st.Batches != 1 || st.BatchRequests != 300 {
		t.Fatalf("stats = %+v, want 1 batch of 300", st)
	}
}

// TestClusterRebalanceStability checks the consistent-hashing promise at
// the policy layer: growing a 4-shard cluster by one moves roughly 1/5 of
// the policy children, and verdicts stay identical throughout.
func TestClusterRebalanceStability(t *testing.T) {
	const resources = 500
	single, router, gen := fixture(t, Config{Shards: 4}, resources)

	keyOwner := func() map[string]string {
		owners := make(map[string]string, resources)
		for i := 0; i < resources; i++ {
			key := workload.ResourceID(i)
			owner, ok := router.Owner(key)
			if !ok {
				t.Fatalf("no owner for %s", key)
			}
			owners[key] = owner
		}
		return owners
	}

	before := keyOwner()
	added, err := router.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	after := keyOwner()
	moved := 0
	for key, owner := range after {
		if owner != before[key] {
			if owner != added {
				t.Fatalf("%s moved between pre-existing shards (%s -> %s)", key, before[key], owner)
			}
			moved++
		}
	}
	if share := float64(moved) / resources; share > 0.4 {
		t.Errorf("AddShard moved %.1f%% of keys, want ≲ 20%%", 100*share)
	}
	if st := router.Stats(); st.Rebalances != 1 || st.ChildrenMoved == 0 {
		t.Errorf("stats = %+v, want 1 rebalance with moved children", st)
	}

	check := func() {
		for i := 0; i < 300; i++ {
			req := gen.NextRequest()
			want := single.DecideAt(context.Background(), req, testEpoch)
			got := router.DecideAt(context.Background(), req, testEpoch)
			if got.Decision != want.Decision || got.By != want.By {
				t.Fatalf("after rebalance, %s: %s by %s, want %s by %s",
					req, got.Decision, got.By, want.Decision, want.By)
			}
		}
	}
	check()

	if err := router.RemoveShard(added); err != nil {
		t.Fatal(err)
	}
	for key, owner := range keyOwner() {
		if owner != before[key] {
			t.Fatalf("RemoveShard did not restore ownership of %s", key)
		}
	}
	check()
}

// TestClusterShardFailover crashes replicas inside one shard group: the
// group keeps answering until every replica is down, and only requests
// owned by the dead shard fail (closed).
func TestClusterShardFailover(t *testing.T) {
	single, router, _ := fixture(t, Config{Shards: 4, Replicas: 3, Strategy: ha.Failover}, 200)

	// Find a resource owned by the first shard.
	victim := router.Shards()[0]
	var victimReq *policy.Request
	for i := 0; i < 200; i++ {
		key := workload.ResourceID(i)
		if owner, _ := router.Owner(key); owner == victim {
			victimReq = policy.NewAccessRequest("user-1", key, "read")
			break
		}
	}
	if victimReq == nil {
		t.Fatal("no resource owned by the victim shard")
	}
	want := single.DecideAt(context.Background(), victimReq, testEpoch)

	replicas, err := router.Replicas(victim)
	if err != nil {
		t.Fatal(err)
	}
	// Two of three replicas down: failover keeps the verdict identical.
	replicas[0].SetDown(true)
	replicas[1].SetDown(true)
	if got := router.DecideAt(context.Background(), victimReq, testEpoch); got.Decision != want.Decision {
		t.Fatalf("with 2/3 replicas down: %s, want %s", got.Decision, want.Decision)
	}

	// All three down: the shard's requests fail closed...
	replicas[2].SetDown(true)
	got := router.DecideAt(context.Background(), victimReq, testEpoch)
	if got.Decision != policy.DecisionIndeterminate || !errors.Is(got.Err, ha.ErrAllReplicasDown) {
		t.Fatalf("with 3/3 replicas down: %s (%v), want Indeterminate/all-replicas-down", got.Decision, got.Err)
	}
	// ...and batches against the dead shard fail closed per-request too.
	for _, res := range router.DecideBatchAt(context.Background(), []*policy.Request{victimReq, victimReq}, testEpoch) {
		if res.Decision != policy.DecisionIndeterminate {
			t.Fatalf("batch against dead shard: %s, want Indeterminate", res.Decision)
		}
	}

	// Other shards are unaffected.
	other := ""
	for i := 0; i < 200; i++ {
		key := workload.ResourceID(i)
		if owner, _ := router.Owner(key); owner != victim {
			other = key
			break
		}
	}
	req := policy.NewAccessRequest("user-1", other, "read")
	want = single.DecideAt(context.Background(), req, testEpoch)
	if got := router.DecideAt(context.Background(), req, testEpoch); got.Decision != want.Decision {
		t.Fatalf("healthy shard affected by sibling crash: %s, want %s", got.Decision, want.Decision)
	}

	// Revive: the victim answers again.
	for _, rep := range replicas {
		rep.SetDown(false)
	}
	want = single.DecideAt(context.Background(), victimReq, testEpoch)
	if got := router.DecideAt(context.Background(), victimReq, testEpoch); got.Decision != want.Decision {
		t.Fatalf("after revival: %s, want %s", got.Decision, want.Decision)
	}
}

// TestClusterRebalanceFlushesMovedCaches checks the cache-invalidation
// contract: after AddShard, shards whose ownership changed drop their
// cached decisions (a reinstalled base flushes the engine cache), so no
// stale verdict can outlive a rebalance.
func TestClusterRebalanceFlushesMovedCaches(t *testing.T) {
	_, router, gen := fixture(t, Config{
		Shards:        4,
		EngineOptions: []pdp.Option{pdp.WithDecisionCache(time.Hour, 0)},
	}, 500)

	reqs := gen.Requests(200)
	for _, req := range reqs {
		router.DecideAt(context.Background(), req, testEpoch)
		router.DecideAt(context.Background(), req, testEpoch) // warm the per-shard caches
	}
	if _, err := router.AddShard(); err != nil {
		t.Fatal(err)
	}
	// Decisions for moved resources re-evaluate on the new owner rather
	// than serving another shard's stale cache; verdicts stay correct.
	for _, req := range reqs {
		res := router.DecideAt(context.Background(), req, testEpoch)
		if res.Decision == policy.DecisionIndeterminate {
			t.Fatalf("post-rebalance Indeterminate for %s: %v", req, res.Err)
		}
	}
}

func TestClusterConfigAndErrors(t *testing.T) {
	if _, err := New("c", Config{Shards: 0}); err == nil {
		t.Fatal("New accepted 0 shards")
	}
	router, err := New("c", Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetRoot(nil); err == nil {
		t.Fatal("SetRoot accepted nil root")
	}
	// Deciding before any root is installed fails closed.
	res := router.DecideAt(context.Background(), policy.NewAccessRequest("u", "r", "read"), testEpoch)
	if res.Decision != policy.DecisionIndeterminate {
		t.Fatalf("rootless decide: %s, want Indeterminate", res.Decision)
	}
	if err := router.RemoveShard(router.Shards()[0]); !errors.Is(err, ErrLastShard) {
		t.Fatalf("RemoveShard(last) = %v, want ErrLastShard", err)
	}
	if err := router.RemoveShard("nope"); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("RemoveShard(unknown) = %v, want ErrUnknownShard", err)
	}
	if _, err := router.Replicas("nope"); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("Replicas(unknown) = %v, want ErrUnknownShard", err)
	}
}

// TestClusterNonPartitionableRoot replicates a bare Policy (no PolicySet
// children to split) to every shard; verdicts still match a single engine.
func TestClusterNonPartitionableRoot(t *testing.T) {
	root := policy.NewPolicy("allow-reads").
		Combining(policy.FirstApplicable).
		Rule(policy.Permit("reads").When(policy.MatchActionID("read")).Build()).
		Rule(policy.Deny("default").Build()).
		Build()
	single := pdp.New("single")
	if err := single.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	router, err := New("c", Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	for _, action := range []string{"read", "write"} {
		for i := 0; i < 30; i++ {
			req := policy.NewAccessRequest("u", workload.ResourceID(i), action)
			want := single.DecideAt(context.Background(), req, testEpoch)
			got := router.DecideAt(context.Background(), req, testEpoch)
			if got.Decision != want.Decision {
				t.Fatalf("%s %s: %s, want %s", action, workload.ResourceID(i), got.Decision, want.Decision)
			}
		}
	}
	// Growing a cluster with a non-partitionable root installs the full
	// base on the new shard too.
	if _, err := router.AddShard(); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("u", "anything", "read")
	if got := router.DecideAt(context.Background(), req, testEpoch); got.Decision != policy.DecisionPermit {
		t.Fatalf("new shard after rebalance: %s, want Permit", got.Decision)
	}
}

// TestClusterDisjunctiveTargetReplicated guards the partitioner against
// unsound exact-match extraction: a child whose target ORs a resource
// match with a role match (resource-id==res-0 OR role==admin) applies to
// ANY resource for admins, so it must be treated as a catch-all and
// replicated to every shard — an admin request routed to any shard gets
// the same Permit a single engine gives.
func TestClusterDisjunctiveTargetReplicated(t *testing.T) {
	base := policy.NewPolicySet("base").Combining(policy.FirstApplicable)
	base.Add(policy.NewPolicy("admin-or-res0").
		Combining(policy.FirstApplicable).
		WhenAny(policy.MatchResourceID(workload.ResourceID(0)), policy.MatchRole("admin")).
		Rule(policy.Permit("allow").Build()).
		Build())
	for i := 1; i < 40; i++ {
		base.Add(policy.NewPolicy(fmt.Sprintf("pol-%d", i)).
			Combining(policy.FirstApplicable).
			When(policy.MatchResourceID(workload.ResourceID(i))).
			Rule(policy.Deny("default").Build()).
			Build())
	}
	root := base.Build()

	single := pdp.New("single")
	if err := single.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	router, err := New("c", Config{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		req := policy.NewAccessRequest("root", workload.ResourceID(i), "write").
			Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String("admin"))
		want := single.DecideAt(context.Background(), req, testEpoch)
		got := router.DecideAt(context.Background(), req, testEpoch)
		if want.Decision != policy.DecisionPermit {
			t.Fatalf("single engine: admin on %s = %s, want Permit", workload.ResourceID(i), want.Decision)
		}
		if got.Decision != want.Decision {
			t.Fatalf("admin on %s: cluster %s, single %s — disjunctive child not replicated",
				workload.ResourceID(i), got.Decision, want.Decision)
		}
	}
}

// TestClusterLoadBalance drives a Zipf workload and checks no shard is
// left idle.
func TestClusterLoadBalance(t *testing.T) {
	_, router, gen := fixture(t, Config{Shards: 4}, 500)
	for _, req := range gen.Requests(2000) {
		router.DecideAt(context.Background(), req, testEpoch)
	}
	loads := router.ShardLoads()
	if len(loads) != 4 {
		t.Fatalf("ShardLoads reported %d shards", len(loads))
	}
	for i, l := range loads {
		if l == 0 {
			t.Errorf("shard %d received no load", i)
		}
	}
}
