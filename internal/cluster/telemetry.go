package cluster

import (
	"repro/internal/telemetry"
)

// RegisterMetrics exposes router and per-shard activity on the registry
// and enables per-shard decision-latency observation (two clock reads per
// routed decision; the path stays lock-free and allocation-free).
//
// Per-shard families are collected dynamically: the collectors walk the
// live shard list at scrape time, so AddShard/RemoveShard membership
// changes appear on the next scrape without re-registration.
func (r *Router) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("repro_cluster_requests_total",
		"Single decisions routed.",
		func() int64 { return r.Stats().Requests })
	reg.CounterFunc("repro_cluster_batches_total",
		"Batch decisions routed.",
		func() int64 { return r.Stats().Batches })
	reg.CounterFunc("repro_cluster_batch_requests_total",
		"Requests carried by routed batches.",
		func() int64 { return r.Stats().BatchRequests })
	reg.CounterFunc("repro_cluster_rebalances_total",
		"Shard membership changes.",
		func() int64 { return r.Stats().Rebalances })
	reg.CounterFunc("repro_cluster_children_moved_total",
		"Policy-base children whose owning shard changed across rebalances.",
		func() int64 { return r.Stats().ChildrenMoved })
	reg.CounterFunc("repro_cluster_updates_total",
		"Incremental policy deltas applied.",
		func() int64 { return r.Stats().Updates })
	reg.GaugeFunc("repro_cluster_shards",
		"Current shard count.",
		func() int64 {
			r.mu.RLock()
			defer r.mu.RUnlock()
			return int64(len(r.order))
		})
	reg.Register("repro_cluster_shard_queries_total",
		"Decisions handled per shard (replica queries summed over the group).",
		telemetry.KindCounter, func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			out := make([]telemetry.Sample, 0, len(r.order))
			for _, name := range r.order {
				var n int64
				for _, rep := range r.shards[name].replicas {
					n += rep.Queries()
				}
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{telemetry.L("shard", name)},
					Value:  float64(n),
				})
			}
			return out
		})
	reg.Register("repro_cluster_shard_decide_seconds",
		"Decision latency per shard group (router-observed).",
		telemetry.KindHistogram, func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			out := make([]telemetry.Sample, 0, len(r.order))
			for _, name := range r.order {
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{telemetry.L("shard", name)},
					Hist:   r.shards[name].lat.Snapshot(),
				})
			}
			return out
		})
	reg.Register("repro_pdp_decisions_total",
		"Decisions by outcome, aggregated across every shard engine.",
		telemetry.KindCounter, func() []telemetry.Sample {
			st := r.EngineStats()
			return []telemetry.Sample{
				{Labels: []telemetry.Label{telemetry.L("outcome", "permit")}, Value: float64(st.Permits)},
				{Labels: []telemetry.Label{telemetry.L("outcome", "deny")}, Value: float64(st.Denies)},
				{Labels: []telemetry.Label{telemetry.L("outcome", "not_applicable")}, Value: float64(st.NotApplicables)},
				{Labels: []telemetry.Label{telemetry.L("outcome", "indeterminate")}, Value: float64(st.Indeterminates)},
			}
		})
	reg.CounterFunc("repro_pdp_evaluations_total",
		"Decisions computed by the shard engines (cache misses included).",
		func() int64 { return r.EngineStats().Evaluations })
	reg.CounterFunc("repro_pdp_cache_hits_total",
		"Decisions served from the shard engines' decision caches.",
		func() int64 { return r.EngineStats().CacheHits })
	reg.GaugeFunc("repro_pdp_cache_entries",
		"Live decision-cache occupancy summed across shard engines.",
		func() int64 { return r.EngineStats().CacheEntries })
	reg.Register("repro_cluster_shard_failovers_total",
		"Failover reroutes per shard group.",
		telemetry.KindCounter, func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			out := make([]telemetry.Sample, 0, len(r.order))
			for _, name := range r.order {
				st := r.shards[name].group.Stats()
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{telemetry.L("shard", name)},
					Value:  float64(st.Failovers),
				})
			}
			return out
		})
	reg.CounterFunc("repro_cluster_stale_served_total",
		"Degraded decisions answered from the last-known-good cache while a shard breaker was open.",
		func() int64 { return r.Stats().StaleServed })
	reg.CounterFunc("repro_cluster_degraded_rejects_total",
		"Open-breaker requests with no usable stale entry (failed fast and closed).",
		func() int64 { return r.Stats().DegradedRejects })
	reg.Register("repro_cluster_breaker_state",
		"Per-shard circuit-breaker state: 0 closed, 1 open, 2 half-open.",
		telemetry.KindGauge, func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			out := make([]telemetry.Sample, 0, len(r.order))
			for _, name := range r.order {
				s := r.shards[name]
				if s.breaker == nil {
					continue
				}
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{telemetry.L("shard", name)},
					Value:  float64(s.breaker.State()),
				})
			}
			return out
		})
	reg.Register("repro_cluster_breaker_opens_total",
		"Per-shard breaker trips (closed or half-open to open).",
		telemetry.KindCounter, func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			out := make([]telemetry.Sample, 0, len(r.order))
			for _, name := range r.order {
				s := r.shards[name]
				if s.breaker == nil {
					continue
				}
				out = append(out, telemetry.Sample{
					Labels: []telemetry.Label{telemetry.L("shard", name)},
					Value:  float64(s.breaker.Stats().Opens),
				})
			}
			return out
		})
	reg.Register("repro_cluster_shard_hedges_total",
		"Hedged batch dispatches per shard group (and the subset the hedge won).",
		telemetry.KindCounter, func() []telemetry.Sample {
			r.mu.RLock()
			defer r.mu.RUnlock()
			out := make([]telemetry.Sample, 0, 2*len(r.order))
			for _, name := range r.order {
				st := r.shards[name].group.Stats()
				out = append(out,
					telemetry.Sample{
						Labels: []telemetry.Label{telemetry.L("shard", name), telemetry.L("outcome", "launched")},
						Value:  float64(st.Hedges),
					},
					telemetry.Sample{
						Labels: []telemetry.Label{telemetry.L("shard", name), telemetry.L("outcome", "won")},
						Value:  float64(st.HedgeWins),
					})
			}
			return out
		})
	r.metricsOn.Store(true)
}
