// Package cluster scales the Policy Decision Point horizontally: the
// paper's Section 3 scalability challenge met by a fleet of engines rather
// than one. A consistent-hash ring partitions the policy base across N
// shards by the resource keys their targets constrain; a Router implements
// the same DecisionProvider contract as a single pdp.Engine, so
// enforcement points (pep, rest, capability) work against a cluster
// unchanged. Each shard is a replicated group built from the ha package's
// failover or quorum ensembles, so a shard survives replica crashes.
//
// Routing preserves single-engine semantics: a shard's base holds, in
// original order, every root child whose resource-id target maps to a key
// the shard owns, plus every child that does not constrain resource-id
// (the catch-alls, replicated to all shards). For any request the owning
// shard therefore sees exactly the children a single engine's evaluation
// could match, and returns the identical decision.
//
// DecideBatch groups requests by owning shard and evaluates each group in
// one engine pass through the zero-copy scatter path (one shared result
// buffer from router to engine), amortising lock, cache-sweep and index
// overhead; groups evaluate concurrently across shards when the runtime
// has spare parallelism. AddShard and RemoveShard rebalance live:
// consistent hashing moves only ~1/N of the key space, and only shards
// whose ownership changed have their policy base reinstalled (which also
// invalidates their decision caches — stale entries cannot outlive a
// rebalance).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ha"
	"repro/internal/pdp"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Cluster errors, matched with errors.Is.
var (
	// ErrNoShards reports an operation against an empty cluster.
	ErrNoShards = errors.New("cluster: no shards")
	// ErrLastShard reports a RemoveShard that would empty the cluster.
	ErrLastShard = errors.New("cluster: cannot remove the last shard")
	// ErrUnknownShard reports a shard name not in the ring.
	ErrUnknownShard = errors.New("cluster: unknown shard")
)

// Config parameterises a Router.
type Config struct {
	// Shards is the initial shard count; at least 1.
	Shards int
	// Replicas is the number of engine replicas per shard group; 1 when
	// zero or negative.
	Replicas int
	// Strategy combines a shard group's replicas; ha.Failover when zero.
	Strategy ha.Strategy
	// VirtualNodes sets ring balance; DefaultVirtualNodes when zero.
	VirtualNodes int
	// EngineOptions configure every replica engine (resolver, target
	// index, decision cache, clock).
	EngineOptions []pdp.Option
	// Clock drives Decide and DecideBatch; time.Now when nil.
	Clock func() time.Time
	// Resilience, when non-nil, arms the router's degraded-mode machinery:
	// a circuit breaker per shard group, a bounded-staleness last-known-good
	// cache serving warm keys while a breaker is open, and optional hedged
	// batch dispatch. Nil keeps the decision path exactly as before — no
	// breaker check, no stale bookkeeping.
	Resilience *resilience.Policy
}

// Stats aggregates router activity.
type Stats struct {
	// Requests counts single decisions routed.
	Requests int64
	// Batches and BatchRequests count DecideBatch calls and the requests
	// they carried.
	Batches, BatchRequests int64
	// Rebalances counts AddShard/RemoveShard membership changes.
	Rebalances int64
	// ChildrenMoved counts policy-base children whose owning shard changed
	// across rebalances, the rebalancing cost measure.
	ChildrenMoved int64
	// Updates counts incremental policy deltas applied via ApplyUpdate.
	Updates int64
	// UpdateShardsTouched sums the shard groups each delta reached; the
	// remaining shards kept their policy bases and decision caches.
	UpdateShardsTouched int64
	// StaleServed counts degraded decisions answered from the
	// last-known-good cache while a shard breaker was open.
	StaleServed int64
	// DegradedRejects counts open-breaker requests with no usable stale
	// entry: they failed fast and closed (resilience.ErrOpen).
	DegradedRejects int64
}

// counters is the lock-free mutable form of Stats: decisions increment it
// under the router's read lock, so the fields must be atomic.
type counters struct {
	requests, batches, batchRequests, rebalances, childrenMoved atomic.Int64
	updates, updateShardsTouched                                atomic.Int64
	staleServed, degradedRejects                                atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Requests:            c.requests.Load(),
		Batches:             c.batches.Load(),
		BatchRequests:       c.batchRequests.Load(),
		Rebalances:          c.rebalances.Load(),
		ChildrenMoved:       c.childrenMoved.Load(),
		Updates:             c.updates.Load(),
		UpdateShardsTouched: c.updateShardsTouched.Load(),
		StaleServed:         c.staleServed.Load(),
		DegradedRejects:     c.degradedRejects.Load(),
	}
}

// shard is one replicated partition of the policy base.
type shard struct {
	name string
	// ord is the shard's position in the router's creation order, used
	// for map-free batch grouping.
	ord      int
	engines  []*pdp.Engine
	replicas []*ha.Failable
	group    *ha.Ensemble
	// children are the root-child indexes this shard currently serves
	// (nil means the whole, unpartitionable root).
	children []int
	// installed reports whether a base has ever been installed, so fresh
	// shards are always populated on their first repartition.
	installed bool
	// lat is the shard's decision-latency histogram, observed only while
	// the router's metrics are registered (see Router.metricsOn).
	lat telemetry.Histogram
	// breaker guards the shard group's availability when Config.Resilience
	// is set; nil otherwise.
	breaker *resilience.Breaker
}

// Router is a horizontally sharded Policy Decision Point. It satisfies the
// DecisionProvider interfaces of pep, rest, capability and ha, and the
// pdp.BatchProvider/ha.BatchProvider batch contract.
type Router struct {
	name string
	cfg  Config
	now  func() time.Time

	mu     sync.RWMutex
	ring   *Ring
	shards map[string]*shard
	order  []string // shard names in creation order, for deterministic iteration
	byOrd  []*shard // shards indexed by ordinal, maintained on membership change
	nextID int
	root   policy.Evaluable
	// ownerIndex maps every resource key the policy base constrains by
	// equality to its owning shard, built during repartition: O(1) routing
	// for the hot path, with the ring as fallback for unlisted keys. The
	// index agrees with the ring by construction, so both routes give the
	// same owner.
	ownerIndex map[string]*shard
	stats      counters
	// metricsOn gates per-decision latency observation: zero clock reads
	// on the decision path until RegisterMetrics flips it.
	metricsOn atomic.Bool
	// res and stale carry the degraded-mode state armed by
	// Config.Resilience; both nil when resilience is off.
	res   *resilience.Policy
	stale *resilience.StaleCache
	// onDegraded, when set (SetOnDegraded), observes every stale serve —
	// the audit hook. Called under the router's read lock.
	onDegraded func(shard, cacheKey string, age time.Duration)
}

// New builds a cluster of cfg.Shards empty shard groups.
func New(name string, cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster %s: need at least 1 shard, got %d", name, cfg.Shards)
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = ha.Failover
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	r := &Router{
		name:   name,
		cfg:    cfg,
		now:    cfg.Clock,
		ring:   NewRing(cfg.VirtualNodes),
		shards: make(map[string]*shard, cfg.Shards),
	}
	if cfg.Resilience != nil {
		// Copy the policy so breaker defaults (and the clock fallback to
		// the router clock, which keeps virtual-clock tests honest) never
		// mutate the caller's struct.
		res := *cfg.Resilience
		if res.Breaker.Clock == nil {
			res.Breaker.Clock = cfg.Clock
		}
		r.res = &res
		if res.StaleGrace > 0 {
			r.stale = resilience.NewStaleCache(res.StaleItems)
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		r.addShardLocked()
	}
	return r, nil
}

// addShardLocked creates the next shard group and joins it to the ring.
// Callers hold r.mu (or own r exclusively during construction).
func (r *Router) addShardLocked() *shard {
	name := fmt.Sprintf("%s/shard-%d", r.name, r.nextID)
	r.nextID++
	s := &shard{name: name, ord: len(r.order)}
	for j := 0; j < r.cfg.Replicas; j++ {
		engine := pdp.New(fmt.Sprintf("%s/r%d", name, j), r.cfg.EngineOptions...)
		s.engines = append(s.engines, engine)
		s.replicas = append(s.replicas, ha.NewFailable(fmt.Sprintf("%s/r%d", name, j), engine))
	}
	s.group = ha.NewEnsemble(name, r.cfg.Strategy, s.replicas...)
	if r.res != nil {
		s.breaker = resilience.NewBreaker(name, r.res.Breaker)
	}
	r.shards[name] = s
	r.order = append(r.order, name)
	r.byOrd = append(r.byOrd, s)
	r.ring.Add(name)
	return s
}

// Name identifies the cluster in diagnostics.
func (r *Router) Name() string { return r.name }

// Stats returns a snapshot of router counters.
func (r *Router) Stats() Stats {
	return r.stats.snapshot()
}

// Shards returns the current shard names in creation order.
func (r *Router) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Replicas exposes a shard group's failure-injection handles, so
// experiments and tests can crash and revive replicas (ha.Failable).
func (r *Router) Replicas(shardName string) ([]*ha.Failable, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.shards[shardName]
	if !ok {
		return nil, fmt.Errorf("cluster %s: %q: %w", r.name, shardName, ErrUnknownShard)
	}
	return append([]*ha.Failable(nil), s.replicas...), nil
}

// GroupStats returns each shard group's ensemble counters, keyed by shard
// name.
func (r *Router) GroupStats() map[string]ha.Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]ha.Stats, len(r.shards))
	for name, s := range r.shards {
		out[name] = s.group.Stats()
	}
	return out
}

// ShardLoads returns per-shard decision counts (replica queries summed
// over the group), in shard creation order — the balance measure.
func (r *Router) ShardLoads() []int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]int64, 0, len(r.order))
	for _, name := range r.order {
		var n int64
		for _, rep := range r.shards[name].replicas {
			n += rep.Queries()
		}
		out = append(out, n)
	}
	return out
}

// Owner reports which shard currently owns a resource key.
func (r *Router) Owner(resourceID string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Owner(resourceID)
}

// SetRoot validates the policy base, partitions it across the shards and
// installs each partition on every replica of its group.
func (r *Router) SetRoot(root policy.Evaluable) error {
	if root == nil {
		return fmt.Errorf("cluster %s: nil root", r.name)
	}
	if err := root.Validate(); err != nil {
		return fmt.Errorf("cluster %s: %w", r.name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.root = root
	return r.repartitionLocked(true)
}

// Root returns the installed (unpartitioned) policy base, or nil.
func (r *Router) Root() policy.Evaluable {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.root
}

// AddShard grows the cluster by one replicated shard group, rebalancing
// policy ownership. It returns the new shard's name. If installing the
// rebalanced bases fails, the membership change is rolled back so the
// half-joined empty shard cannot stay in the ring fail-closing its slice
// of the key space.
func (r *Router) AddShard() (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.addShardLocked()
	if err := r.repartitionLocked(false); err != nil {
		r.ring.Remove(s.name)
		delete(r.shards, s.name)
		r.order = r.order[:len(r.order)-1]
		r.byOrd = r.byOrd[:len(r.byOrd)-1]
		// Reinstall any shard the failed repartition already shrank;
		// shards whose recorded children still match skip the install.
		if rerr := r.repartitionLocked(false); rerr != nil {
			return "", fmt.Errorf("cluster %s: rollback after failed add: %w", r.name, errors.Join(err, rerr))
		}
		return "", err
	}
	r.stats.rebalances.Add(1)
	return s.name, nil
}

// RemoveShard shrinks the cluster, folding the shard's key range into its
// ring successors. The last shard cannot be removed.
func (r *Router) RemoveShard(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[name]; !ok {
		return fmt.Errorf("cluster %s: %q: %w", r.name, name, ErrUnknownShard)
	}
	if len(r.shards) == 1 {
		return fmt.Errorf("cluster %s: %w", r.name, ErrLastShard)
	}
	r.ring.Remove(name)
	delete(r.shards, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.byOrd = make([]*shard, len(r.order))
	for i, n := range r.order {
		r.shards[n].ord = i
		r.byOrd[i] = r.shards[n]
	}
	r.stats.rebalances.Add(1)
	return r.repartitionLocked(false)
}

// repartitionLocked recomputes every shard's slice of the policy base and
// reinstalls the bases that changed. force reinstalls everywhere (a new
// root). Reinstalling flushes the affected engines' decision caches, so a
// rebalance invalidates exactly the cached decisions whose ownership
// moved. Callers hold r.mu.
func (r *Router) repartitionLocked(force bool) error {
	if r.root == nil {
		return nil
	}
	set, partitionable := r.root.(*policy.PolicySet)
	var parts map[string][]int
	var ownerIndex map[string]*shard
	if partitionable {
		// One pass over the root children assigns each child to the
		// shards serving it and records every exact resource key's owner
		// for O(1) request routing. A child with an exact resource-id
		// target goes to the owners of its keys; a catch-all child (no
		// equality constraint) goes to every shard. Appending in child
		// order keeps each shard's list ascending, preserving
		// order-dependent combining semantics.
		parts = make(map[string][]int, len(r.order))
		ownerIndex = make(map[string]*shard, len(set.Children))
		for i, ch := range set.Children {
			keys, catchAll := policy.ResourceKeys(ch)
			if catchAll {
				for _, name := range r.order {
					parts[name] = append(parts[name], i)
				}
				continue
			}
			var assigned []string
			for _, key := range keys {
				owner, ok := r.ring.Owner(key)
				if !ok {
					continue
				}
				ownerIndex[key] = r.shards[owner]
				dup := false
				for _, a := range assigned {
					if a == owner {
						dup = true
						break
					}
				}
				if !dup {
					assigned = append(assigned, owner)
					parts[owner] = append(parts[owner], i)
				}
			}
		}
	}
	r.ownerIndex = ownerIndex
	for _, name := range r.order {
		s := r.shards[name]
		var children []int
		var base policy.Evaluable
		if partitionable {
			children = parts[name]
			base = subsetPolicySet(set, children)
		} else {
			base = r.root
		}
		if !force && s.installed && equalInts(children, s.children) {
			continue
		}
		if !force {
			// Children arriving at this shard (including a brand-new
			// shard's first slice) moved here from elsewhere.
			r.stats.childrenMoved.Add(int64(movedCount(s.children, children)))
		}
		for _, engine := range s.engines {
			if err := engine.SetRoot(base); err != nil {
				return fmt.Errorf("cluster %s: install %s: %w", r.name, s.name, err)
			}
		}
		s.children = children
		s.installed = true
	}
	return nil
}

// subsetPolicySet rebuilds the root set over the selected children,
// preserving identity, combining algorithm and obligations so combining
// semantics (including order dependence) match the full base.
func subsetPolicySet(set *policy.PolicySet, children []int) *policy.PolicySet {
	subset := make([]policy.Evaluable, len(children))
	for i, pos := range children {
		subset[i] = set.Children[pos]
	}
	return &policy.PolicySet{
		ID:          set.ID,
		Version:     set.Version,
		Issuer:      set.Issuer,
		Target:      set.Target,
		Combining:   set.Combining,
		Children:    subset,
		Obligations: set.Obligations,
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// movedCount counts elements of next absent from prev: the children whose
// ownership arrived at this shard in a rebalance.
func movedCount(prev, next []int) int {
	had := make(map[int]struct{}, len(prev))
	for _, i := range prev {
		had[i] = struct{}{}
	}
	moved := 0
	for _, i := range next {
		if _, ok := had[i]; !ok {
			moved++
		}
	}
	return moved
}

// Decide routes the request at the router clock.
func (r *Router) Decide(ctx context.Context, req *policy.Request) policy.Result {
	return r.DecideAt(ctx, req, r.now())
}

// DecideAt implements the DecisionProvider contract: route the request to
// the shard owning its resource key and decide there, bounded by ctx. The
// read lock is held across evaluation so a concurrent rebalance can never
// route a request to a shard that no longer serves its policies.
func (r *Router) DecideAt(ctx context.Context, req *policy.Request, at time.Time) policy.Result {
	return r.DecideAtWith(ctx, req, at, nil)
}

// DecideAtWith implements the ha.ResolverProvider extension, threading a
// per-call attribute resolver to the owning shard group.
func (r *Router) DecideAtWith(ctx context.Context, req *policy.Request, at time.Time, resolver policy.Resolver) policy.Result {
	if err := ctx.Err(); err != nil {
		return r.ctxDone(err)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.stats.requests.Add(1)
	s := r.shardForLocked(req)
	if s == nil {
		return r.noShards()
	}
	if sp := trace.FromContext(ctx); sp != nil {
		var route *trace.Span
		ctx, route = trace.StartSpan(ctx, "cluster.route")
		route.SetAttr("cluster.shard", s.name)
		defer route.End()
	}
	if s.breaker != nil && !s.breaker.Allow() {
		return r.serveDegradedLocked(ctx, s, req, at)
	}
	var res policy.Result
	if r.metricsOn.Load() {
		start := time.Now()
		res = s.group.DecideAtWith(ctx, req, at, resolver)
		s.lat.Observe(time.Since(start))
	} else {
		res = s.group.DecideAtWith(ctx, req, at, resolver)
	}
	r.observeShardLocked(s, req, at, res)
	return res
}

// ctxDone renders a caller context expiring at the router: the fail-closed
// Indeterminate every layer of the pipeline surfaces for out-of-time work.
func (r *Router) ctxDone(err error) policy.Result {
	return policy.Result{Decision: policy.DecisionIndeterminate,
		Err: fmt.Errorf("cluster %s: context done before decision: %w", r.name, err)}
}

// shardForLocked resolves the owning shard. Keys the policy base
// constrains resolve through the O(1) owner index; anything else falls
// back to the ring (same owner either way). A nil shard means the cluster
// is empty. Callers hold r.mu.
func (r *Router) shardForLocked(req *policy.Request) *shard {
	key := req.ResourceID()
	if s, ok := r.ownerIndex[key]; ok {
		return s
	}
	owner, ok := r.ring.Owner(key)
	if !ok {
		return nil
	}
	return r.shards[owner]
}

// noShards reports an empty cluster as a fail-closed result.
func (r *Router) noShards() policy.Result {
	return policy.Result{Decision: policy.DecisionIndeterminate,
		Err: fmt.Errorf("cluster %s: %w", r.name, ErrNoShards)}
}

// DecideBatch evaluates many requests at the router clock. See
// DecideBatchAt.
func (r *Router) DecideBatch(ctx context.Context, reqs []*policy.Request) []policy.Result {
	return r.DecideBatchAt(ctx, reqs, r.now())
}

// DecideBatchAt implements the batch contract: requests are grouped by
// owning shard and each group is evaluated in one pass on its shard group,
// amortising lock, cache-sweep and index overhead in the engines. Result i
// answers request i.
//
// ctx bounds the whole scatter: once it is done the router stops fanning
// out — undispatched shard groups are never started, in-flight groups see
// the same ctx and abort inside the engine (or inside a stalled replica's
// injected latency), and every position that did not finish returns
// Indeterminate with the cause. One slow shard therefore bounds the
// batch's latency at the caller's deadline instead of the shard's worst
// case.
//
// Groups evaluate concurrently across shards only when the runtime has
// spare parallelism (GOMAXPROCS > 2): policy evaluation is allocation-
// heavy, and on small or heavily virtualised hosts the scheduler and GC
// handoff cost of fan-out goroutines exceeds the overlap they buy.
func (r *Router) DecideBatchAt(ctx context.Context, reqs []*policy.Request, at time.Time) []policy.Result {
	if len(reqs) == 0 {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.stats.batches.Add(1)
	r.stats.batchRequests.Add(int64(len(reqs)))

	out := make([]policy.Result, len(reqs))
	if err := ctx.Err(); err != nil {
		res := r.ctxDone(err)
		for i := range out {
			out[i] = res
		}
		return out
	}
	// Group request positions by shard ordinal: a slice walk, not a map,
	// on the hot path.
	groups := make([][]int, len(r.order))
	byOrd := r.byOrd
	live := 0
	for i, req := range reqs {
		s := r.shardForLocked(req)
		if s == nil {
			out[i] = r.noShards()
			continue
		}
		if groups[s.ord] == nil {
			live++
		}
		groups[s.ord] = append(groups[s.ord], i)
	}

	// Traced batches get a scatter span plus one span per shard group; the
	// group spans record shed positions when the deadline expires mid-
	// scatter — the trace shows which shards never ran and why.
	var scatter *trace.Span
	traced := trace.FromContext(ctx) != nil
	if traced {
		ctx, scatter = trace.StartSpan(ctx, "cluster.scatter")
		scatter.SetInt("batch.n", int64(len(reqs)))
		scatter.SetInt("cluster.groups", int64(live))
		defer scatter.End()
	}

	// The scatter path threads the shared out buffer through ensemble,
	// replica and engine: no per-group request slice, no per-layer result
	// allocation, no copy-back. A group that is not dispatched because ctx
	// expired first fails its positions closed here.
	evaluate := func(s *shard, indexes []int) {
		gctx := ctx
		var gsp *trace.Span
		if traced {
			gctx, gsp = trace.StartSpan(ctx, "cluster.shard")
			gsp.SetAttr("cluster.shard", s.name)
			gsp.SetInt("batch.n", int64(len(indexes)))
			defer gsp.End()
		}
		if err := ctx.Err(); err != nil {
			res := r.ctxDone(err)
			for _, p := range indexes {
				out[p] = res
			}
			gsp.SetInt("cluster.shed", int64(len(indexes)))
			gsp.Keep()
			return
		}
		if s.breaker != nil && !s.breaker.Allow() {
			for _, p := range indexes {
				out[p] = r.serveDegradedLocked(gctx, s, reqs[p], at)
			}
			gsp.SetInt("cluster.degraded", int64(len(indexes)))
			gsp.Keep()
			return
		}
		dispatch := func() {
			if r.res != nil && r.res.HedgeAfter > 0 {
				s.group.DecideScatterHedgedAt(gctx, reqs, indexes, at, out, r.res.HedgeAfter)
				return
			}
			s.group.DecideScatterAt(gctx, reqs, indexes, at, out)
		}
		if r.metricsOn.Load() {
			start := time.Now()
			dispatch()
			s.lat.Observe(time.Since(start))
		} else {
			dispatch()
		}
		r.observeGroupLocked(s, reqs, indexes, at, out)
	}

	if live <= 1 || runtime.GOMAXPROCS(0) <= 2 {
		for ord, indexes := range groups {
			if indexes != nil {
				evaluate(byOrd[ord], indexes)
			}
		}
		return out
	}
	// Bounded fan-out: one worker per available P, never more than one
	// goroutine per group. Unbounded fan-out loses on small hosts, where
	// scheduler and GC handoff for excess goroutines costs more than the
	// overlap buys.
	workers := runtime.GOMAXPROCS(0)
	if workers > live {
		workers = live
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ord := int(next.Add(1)) - 1
				if ord >= len(groups) {
					return
				}
				if groups[ord] != nil {
					evaluate(byOrd[ord], groups[ord])
				}
			}
		}()
	}
	wg.Wait()
	return out
}
