package cluster

import (
	"errors"
	"fmt"

	"repro/internal/pdp"
	"repro/internal/policy"
)

// ApplyUpdate routes a single-child policy delta to just the shard groups
// whose ownership the change touches, leaving the other N-1 shards' policy
// bases — and, critically, their decision caches — untouched. The owning
// shards patch their subsets through pdp.Engine.ApplyUpdate, so within a
// touched shard only the cached decisions for the changed child's resource
// keys are invalidated.
//
// A replace whose keys moved between shards decomposes into a delete on the
// old owners and an insert on the new; a catch-all child (no resource-id
// equality constraint on either side) is replicated everywhere and touches
// every shard, exactly as repartitioning would. The routing ownerIndex
// gains the new child's keys in place; keys only a removed child
// constrained are left to resolve through the ring (same owner either way)
// until the next repartition rebuilds the index.
//
// The router root must be a partitionable *policy.PolicySet; otherwise the
// error wraps pdp.ErrNotIncremental and the caller should fall back to a
// full SetRoot. If an engine rejects its patch mid-way, the router restores
// consistency with a full repartition of the updated root before returning.
func (r *Router) ApplyUpdate(u pdp.Update) error {
	if u.ID == "" {
		return fmt.Errorf("cluster %s: update with empty ID", r.name)
	}
	if u.Child != nil {
		if got := u.Child.EntityID(); got != u.ID {
			return fmt.Errorf("cluster %s: update ID %q does not match child ID %q", r.name, u.ID, got)
		}
		if err := u.Child.Validate(); err != nil {
			return fmt.Errorf("cluster %s: %w", r.name, err)
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	set, ok := r.root.(*policy.PolicySet)
	if !ok || set == nil {
		return fmt.Errorf("cluster %s: %w", r.name, pdp.ErrNotIncremental)
	}

	// Patch the unpartitioned root copy-on-write through the same
	// policy.PatchChild rule the engines apply, so router bookkeeping and
	// engine subsets cannot diverge.
	newRoot, pos, delta, oldChild := set.PatchChild(u.ID, u.Child)
	if newRoot == nil {
		return nil // removing an absent child is a no-op
	}
	oldOwners := r.ownersLocked(oldChild)
	newOwners := r.ownersLocked(u.Child)
	// An engine-subset insert happens on a global insert (delta > 0) and
	// on a replace whose keys reached a shard that did not serve the old
	// child. On a root whose children are not ID-ordered (a caller-built
	// SetRoot base rather than a BuildRoot one), the router's global
	// position and an engine's independent subset insert search could
	// disagree, so such updates take the full repartition path instead of
	// the delta.
	needsInsert := delta > 0
	if !needsInsert {
		for s := range newOwners {
			if _, ok := oldOwners[s]; !ok {
				needsInsert = true
				break
			}
		}
	}
	if needsInsert && !set.ChildrenSortedByID() {
		r.root = newRoot
		if err := r.repartitionLocked(true); err != nil {
			return fmt.Errorf("cluster %s: update %s: %w", r.name, u.ID, err)
		}
		r.stats.updates.Add(1)
		r.stats.updateShardsTouched.Add(int64(len(r.byOrd)))
		return nil
	}
	r.root = newRoot

	touched := 0
	for _, s := range r.byOrd {
		_, isOld := oldOwners[s]
		_, isNew := newOwners[s]
		if !isOld && !isNew {
			continue
		}
		touched++
		op := pdp.Update{ID: u.ID} // delete from shards losing the child
		if isNew {
			op = u // engine replaces or inserts by ID
		}
		for _, engine := range s.engines {
			if err := engine.ApplyUpdate(op); err != nil {
				// A half-applied delta would desynchronise replicas;
				// restore consistency with a full reinstall of the
				// updated root.
				if ferr := r.repartitionLocked(true); ferr != nil {
					return fmt.Errorf("cluster %s: update %s: %w", r.name, u.ID, errors.Join(err, ferr))
				}
				r.stats.updates.Add(1)
				r.stats.updateShardsTouched.Add(int64(len(r.byOrd)))
				return nil
			}
		}
	}

	// Bookkeeping: an insert or delete shifts every shard's recorded
	// child positions, owners also gain or lose pos; no engine other than
	// the touched shards' is reinstalled.
	for _, s := range r.byOrd {
		_, isNew := newOwners[s]
		s.children = remapPositions(s.children, pos, delta, isNew)
	}
	if u.Child != nil {
		if keys, catchAll := policy.ResourceKeys(u.Child); !catchAll {
			if r.ownerIndex == nil {
				r.ownerIndex = make(map[string]*shard, len(keys))
			}
			for _, k := range keys {
				if owner, ok := r.ring.Owner(k); ok {
					r.ownerIndex[k] = r.shards[owner]
				}
			}
		}
	}
	r.stats.updates.Add(1)
	r.stats.updateShardsTouched.Add(int64(touched))
	return nil
}

// ownersLocked resolves the set of shards serving a child: the ring owners
// of its exact resource keys, or every shard for a catch-all. Callers hold
// r.mu.
func (r *Router) ownersLocked(ch policy.Evaluable) map[*shard]struct{} {
	if ch == nil {
		return nil
	}
	keys, catchAll := policy.ResourceKeys(ch)
	if catchAll {
		all := make(map[*shard]struct{}, len(r.byOrd))
		for _, s := range r.byOrd {
			all[s] = struct{}{}
		}
		return all
	}
	owners := make(map[*shard]struct{}, len(keys))
	for _, k := range keys {
		if owner, ok := r.ring.Owner(k); ok {
			owners[r.shards[owner]] = struct{}{}
		}
	}
	return owners
}

// remapPositions rewrites one shard's recorded child positions after the
// root child at pos changed, via the shared policy rule; pos is re-added
// when the shard owns the new child.
func remapPositions(positions []int, pos, delta int, owns bool) []int {
	next := policy.RemapPositions(positions, pos, delta)
	if owns {
		next = policy.InsertPosition(next, pos)
	}
	return next
}

// EngineStats sums replica engine counters across every shard group: the
// cluster-wide view of evaluations, cache hits and incremental updates the
// churn experiment and benchmarks report. Each engine aggregates its own
// atomic stat stripes (and cache-shard occupancy) at read time, so this
// never pauses the decision hot path.
func (r *Router) EngineStats() pdp.Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sum pdp.Stats
	for _, s := range r.byOrd {
		for _, engine := range s.engines {
			st := engine.Stats()
			sum.Evaluations += st.Evaluations
			sum.CacheHits += st.CacheHits
			sum.Permits += st.Permits
			sum.Denies += st.Denies
			sum.NotApplicables += st.NotApplicables
			sum.Indeterminates += st.Indeterminates
			sum.IndexedCandidates += st.IndexedCandidates
			sum.Updates += st.Updates
			sum.CacheInvalidations += st.CacheInvalidations
			sum.CacheEntries += st.CacheEntries
			sum.CompiledEvaluations += st.CompiledEvaluations
			sum.InterpretedEvaluations += st.InterpretedEvaluations
			sum.Compiles += st.Compiles
			sum.CompileNanos += st.CompileNanos
			sum.CompiledChildren += st.CompiledChildren
			sum.RootChildren += st.RootChildren
			if st.MaxCandidates > sum.MaxCandidates {
				sum.MaxCandidates = st.MaxCandidates
			}
		}
	}
	return sum
}
