package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ha"
	"repro/internal/policy"
	"repro/internal/resilience"
)

// resilienceRoot: "db" permits, every other resource denies via the
// catch-all — every decision is conclusive, so warm keys always have a
// last known good to fall back on.
func resilienceRoot() policy.Evaluable {
	return policy.NewPolicySet("base").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("db-readers").Combining(policy.FirstApplicable).
			When(policy.MatchResourceID("db")).
			Rule(policy.Permit("ok").Build()).
			Build()).
		Build()
}

func resilienceCluster(t *testing.T, clock func() time.Time, res *resilience.Policy) *Router {
	t.Helper()
	router, err := New("c", Config{Shards: 1, Clock: clock, Resilience: res})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetRoot(resilienceRoot()); err != nil {
		t.Fatal(err)
	}
	return router
}

func downShard(t *testing.T, r *Router, down bool) []*ha.Failable {
	t.Helper()
	reps, err := r.Replicas(r.Shards()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		rep.SetDown(down)
	}
	return reps
}

// TestClusterBreakerDegradedMode walks the whole degraded lifecycle under a
// virtual clock: trip, serve-stale within grace, fail fast on cold keys,
// fail closed beyond grace, recover through the half-open probe.
func TestClusterBreakerDegradedMode(t *testing.T) {
	t0 := testEpoch
	now := t0
	clock := func() time.Time { return now }
	router := resilienceCluster(t, clock, &resilience.Policy{
		Breaker:    resilience.BreakerConfig{Threshold: 3, Cooldown: time.Minute},
		StaleGrace: 30 * time.Second,
	})
	var hookShard, hookKey string
	var hookAge time.Duration
	hooked := 0
	router.SetOnDegraded(func(shard, key string, age time.Duration) {
		hookShard, hookKey, hookAge = shard, key, age
		hooked++
	})

	warm := policy.NewAccessRequest("alice", "db", "read")
	cold := policy.NewAccessRequest("alice", "ledger", "read")

	if res := router.DecideAt(context.Background(), warm, t0); res.Decision != policy.DecisionPermit || res.Degraded {
		t.Fatalf("healthy decision = %+v, want fresh Permit", res)
	}

	reps := downShard(t, router, true)
	for i := 0; i < 3; i++ {
		res := router.DecideAt(context.Background(), warm, now)
		if !errors.Is(res.Err, ha.ErrAllReplicasDown) {
			t.Fatalf("failure %d = %+v, want all-replicas-down", i, res)
		}
	}
	bs := router.BreakerStats()[router.Shards()[0]]
	if bs.State != resilience.StateOpen || bs.Opens != 1 {
		t.Fatalf("breaker after threshold = %+v, want open after one trip", bs)
	}

	// Open breaker, warm key, within grace: the last known good serves,
	// marked and aged — without touching the dead replicas.
	queriesBefore := reps[0].Queries()
	now = t0.Add(2 * time.Second)
	res := router.DecideAt(context.Background(), warm, now)
	if res.Decision != policy.DecisionPermit || !res.Degraded || res.StaleFor != 2*time.Second {
		t.Fatalf("degraded decision = %+v, want stale Permit aged 2s", res)
	}
	if got := reps[0].Queries(); got != queriesBefore {
		t.Fatalf("stale serve touched the dead replica (%d -> %d queries)", queriesBefore, got)
	}
	if hooked != 1 || hookShard != router.Shards()[0] || hookKey != warm.CacheKey() || hookAge != 2*time.Second {
		t.Fatalf("audit hook saw (%q, %q, %v) x%d", hookShard, hookKey, hookAge, hooked)
	}

	// Cold key: no last known good, fail fast and closed.
	res = router.DecideAt(context.Background(), cold, now)
	if res.Decision != policy.DecisionIndeterminate || !errors.Is(res.Err, resilience.ErrOpen) {
		t.Fatalf("cold-key decision = %+v, want ErrOpen Indeterminate", res)
	}

	// Beyond the grace window even the warm key fails closed.
	now = t0.Add(31 * time.Second)
	res = router.DecideAt(context.Background(), warm, now)
	if res.Decision != policy.DecisionIndeterminate || !errors.Is(res.Err, resilience.ErrOpen) || res.Degraded {
		t.Fatalf("over-grace decision = %+v, want fail-closed ErrOpen", res)
	}

	st := router.Stats()
	if st.StaleServed != 1 || st.DegradedRejects != 2 {
		t.Fatalf("stats = %+v, want 1 stale serve and 2 rejects", st)
	}

	// Revive and pass the cooldown: the single half-open probe goes
	// through, succeeds, and closes the breaker.
	downShard(t, router, false)
	now = t0.Add(2 * time.Minute)
	res = router.DecideAt(context.Background(), warm, now)
	if res.Decision != policy.DecisionPermit || res.Degraded {
		t.Fatalf("post-recovery decision = %+v, want fresh Permit", res)
	}
	bs = router.BreakerStats()[router.Shards()[0]]
	if bs.State != resilience.StateClosed || bs.Probes < 1 {
		t.Fatalf("breaker after recovery = %+v, want closed via probe", bs)
	}
}

// TestClusterBatchDegradedPositions: in one batch against an open breaker,
// warm positions serve stale and cold positions fail fast — per position,
// not per batch.
func TestClusterBatchDegradedPositions(t *testing.T) {
	t0 := testEpoch
	now := t0
	router := resilienceCluster(t, func() time.Time { return now }, &resilience.Policy{
		Breaker:    resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		StaleGrace: 30 * time.Second,
	})
	warm1 := policy.NewAccessRequest("alice", "db", "read")
	warm2 := policy.NewAccessRequest("bob", "files", "read")
	cold := policy.NewAccessRequest("carol", "vault", "read")

	router.DecideBatchAt(context.Background(), []*policy.Request{warm1, warm2}, t0)

	downShard(t, router, true)
	for i := 0; i < 2; i++ {
		router.DecideAt(context.Background(), warm1, t0)
	}

	now = t0.Add(10 * time.Second)
	out := router.DecideBatchAt(context.Background(), []*policy.Request{warm1, cold, warm2}, now)
	if !out[0].Degraded || out[0].Decision != policy.DecisionPermit || out[0].StaleFor != 10*time.Second {
		t.Fatalf("warm position 0 = %+v, want stale Permit aged 10s", out[0])
	}
	if !out[2].Degraded || out[2].Decision != policy.DecisionDeny {
		t.Fatalf("warm position 2 = %+v, want stale Deny", out[2])
	}
	if out[1].Degraded || !errors.Is(out[1].Err, resilience.ErrOpen) {
		t.Fatalf("cold position 1 = %+v, want ErrOpen", out[1])
	}
}

// TestClusterHedgedBatch: with a stalled preferred replica and HedgeAfter
// armed, the batch is answered by the hedge well before the stall elapses.
func TestClusterHedgedBatch(t *testing.T) {
	router, err := New("c", Config{
		Shards: 1, Replicas: 3,
		Resilience: &resilience.Policy{HedgeAfter: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.SetRoot(resilienceRoot()); err != nil {
		t.Fatal(err)
	}
	reps, err := router.Replicas(router.Shards()[0])
	if err != nil {
		t.Fatal(err)
	}
	const stall = 2 * time.Second
	reps[0].SetStall(stall)

	reqs := []*policy.Request{
		policy.NewAccessRequest("alice", "db", "read"),
		policy.NewAccessRequest("bob", "files", "read"),
	}
	start := time.Now()
	out := router.DecideBatchAt(context.Background(), reqs, testEpoch)
	if elapsed := time.Since(start); elapsed >= stall {
		t.Fatalf("batch took %v, the hedge should beat the %v stall", elapsed, stall)
	}
	if out[0].Decision != policy.DecisionPermit || out[1].Decision != policy.DecisionDeny {
		t.Fatalf("hedged batch = %+v, want conclusive verdicts", out)
	}
	gs := router.GroupStats()[router.Shards()[0]]
	if gs.Hedges == 0 || gs.HedgeWins == 0 {
		t.Fatalf("group stats = %+v, want hedges launched and won", gs)
	}
}

// TestClusterBreakerNeutralOnCallerExpiry: a caller context that expires
// mid-dispatch proves nothing about the shard — it must neither close a
// half-open breaker (cancellation-heavy overload would flap a dead shard's
// breaker closed) nor leak the half-open probe token (which would wedge
// the breaker in fail-fast until the token ages out).
func TestClusterBreakerNeutralOnCallerExpiry(t *testing.T) {
	t0 := testEpoch
	now := t0
	router := resilienceCluster(t, func() time.Time { return now }, &resilience.Policy{
		Breaker: resilience.BreakerConfig{Threshold: 3, Cooldown: time.Minute},
	})
	warm := policy.NewAccessRequest("alice", "db", "read")

	reps := downShard(t, router, true)
	for i := 0; i < 3; i++ {
		router.DecideAt(context.Background(), warm, now)
	}
	if bs := router.BreakerStats()[router.Shards()[0]]; bs.State != resilience.StateOpen {
		t.Fatalf("breaker = %+v after threshold failures, want open", bs)
	}

	// Revive the shard but make it pathologically slow, and pass the
	// cooldown: the next call is the half-open probe, and its caller's
	// deadline fires long before the stall elapses.
	downShard(t, router, false)
	for _, rep := range reps {
		rep.SetStall(30 * time.Second)
	}
	now = t0.Add(2 * time.Minute)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	res := router.DecideAt(ctx, warm, now)
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("stalled probe = %+v, want caller deadline expiry", res)
	}
	bs := router.BreakerStats()[router.Shards()[0]]
	if bs.State != resilience.StateHalfOpen {
		t.Fatalf("breaker = %+v after ctx-expired probe, want half-open (neutral)", bs)
	}

	// The token went back with OnAbandon: a patient caller is admitted as
	// the next probe immediately and closes the breaker.
	for _, rep := range reps {
		rep.SetStall(0)
	}
	res = router.DecideAt(context.Background(), warm, now)
	if res.Decision != policy.DecisionPermit {
		t.Fatalf("post-expiry probe = %+v, want fresh Permit", res)
	}
	if bs := router.BreakerStats()[router.Shards()[0]]; bs.State != resilience.StateClosed {
		t.Fatalf("breaker = %+v after successful re-probe, want closed", bs)
	}
}

// TestClusterBreakerFlapping hammers a resilient cluster while a chaos
// goroutine flaps the shard's replicas, checking (under -race) that the
// breaker lifecycle, stale cache and router counters stay coherent and the
// cluster answers cleanly once the flapping stops.
func TestClusterBreakerFlapping(t *testing.T) {
	router := resilienceCluster(t, nil, &resilience.Policy{
		Breaker:    resilience.BreakerConfig{Threshold: 2, Cooldown: 2 * time.Millisecond},
		StaleGrace: time.Minute,
	})
	warm := policy.NewAccessRequest("alice", "db", "read")
	router.Decide(context.Background(), warm)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		down := false
		for !stop.Load() {
			down = !down
			downShard(t, router, down)
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reqs := []*policy.Request{
				policy.NewAccessRequest("alice", "db", "read"),
				policy.NewAccessRequest("bob", "other", "read"),
			}
			for i := 0; i < 400; i++ {
				router.Decide(context.Background(), warm)
				router.DecideBatch(context.Background(), reqs)
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	downShard(t, router, false)
	time.Sleep(5 * time.Millisecond)
	deadline := time.Now().Add(time.Second)
	for {
		res := router.Decide(context.Background(), warm)
		if res.Decision == policy.DecisionPermit && !res.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered after flapping: %+v", res)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
