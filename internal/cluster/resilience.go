package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ha"
	"repro/internal/policy"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Degraded-mode routing (Config.Resilience): each shard group carries a
// circuit breaker fed by the availability of its ensemble. While a breaker
// is open the router stops dispatching to the group and answers from a
// bounded-staleness last-known-good cache instead — warm keys get their
// most recent conclusive decision (marked Degraded, aged by StaleFor, at
// most StaleGrace old), cold keys fail fast and closed with
// resilience.ErrOpen. An expired caller context never reaches this path:
// the ctx check at the top of every entry point fails it closed first.

// SetOnDegraded installs the audit hook observing every stale serve: shard
// name, the request's cache key, and the served entry's age. The hook runs
// on the decision path under the router's read lock, so it must be cheap
// and must not call back into the router.
func (r *Router) SetOnDegraded(hook func(shard, cacheKey string, age time.Duration)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onDegraded = hook
}

// BreakerStats returns each shard group's breaker counters keyed by shard
// name; empty when resilience is off.
func (r *Router) BreakerStats() map[string]resilience.BreakerStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]resilience.BreakerStats, len(r.shards))
	for name, s := range r.shards {
		if s.breaker != nil {
			out[name] = s.breaker.Stats()
		}
	}
	return out
}

// StaleStats returns the last-known-good cache counters; zero when
// degraded mode is off.
func (r *Router) StaleStats() resilience.StaleCacheStats {
	if r.stale == nil {
		return resilience.StaleCacheStats{}
	}
	return r.stale.Stats()
}

// serveDegradedLocked answers a request whose shard breaker is open: the
// last known good decision when the key is warm and within grace, a fast
// fail-closed Indeterminate wrapping resilience.ErrOpen otherwise. Callers
// hold r.mu read-locked.
func (r *Router) serveDegradedLocked(ctx context.Context, s *shard, req *policy.Request, at time.Time) policy.Result {
	if r.stale != nil {
		if res, age, ok := r.stale.Get(req.CacheKey(), req.CacheKeyHash(), at, r.res.StaleGrace); ok {
			res.Degraded = true
			res.StaleFor = age
			r.stats.staleServed.Add(1)
			if sp := trace.FromContext(ctx); sp != nil {
				sp.SetAttr("cluster.degraded", "true")
				sp.Keep()
			}
			if r.onDegraded != nil {
				r.onDegraded(s.name, req.CacheKey(), age)
			}
			return res
		}
	}
	r.stats.degradedRejects.Add(1)
	return policy.Result{Decision: policy.DecisionIndeterminate,
		Err: fmt.Errorf("cluster %s: shard %s: %w", r.name, s.name, resilience.ErrOpen)}
}

// shardFailure reports whether a result indicts the shard group's
// availability — the only signal that feeds its breaker. Application-level
// Indeterminates (a failing resolver inside a healthy replica, a dead
// caller context) are not the shard's fault and must not trip it.
func shardFailure(res policy.Result) bool {
	if res.Err == nil {
		return false
	}
	return errors.Is(res.Err, ha.ErrUnavailable) ||
		errors.Is(res.Err, ha.ErrAllReplicasDown) ||
		errors.Is(res.Err, ha.ErrNoQuorum)
}

// ctxExpired reports whether a result died with the caller's own context
// mid-dispatch. Such a call proves nothing about the shard either way: it
// must not trip the breaker, and it must not reset the failure count or
// close a half-open breaker — under cancellation-heavy overload a dead
// shard's breaker would otherwise flap closed and keep admitting traffic.
func ctxExpired(res policy.Result) bool {
	return res.Err != nil &&
		(errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded))
}

// conclusive reports whether a decision is worth remembering as last known
// good: anything but an Indeterminate.
func conclusive(res policy.Result) bool {
	switch res.Decision {
	case policy.DecisionPermit, policy.DecisionDeny, policy.DecisionNotApplicable:
		return res.Err == nil
	}
	return false
}

// observeShardLocked classifies one dispatched decision for the shard's
// breaker and retains conclusive outcomes in the last-known-good cache.
// Callers hold r.mu read-locked.
func (r *Router) observeShardLocked(s *shard, req *policy.Request, at time.Time, res policy.Result) {
	if s.breaker == nil {
		return
	}
	if shardFailure(res) {
		s.breaker.OnFailure()
		return
	}
	if ctxExpired(res) {
		s.breaker.OnAbandon()
		return
	}
	s.breaker.OnSuccess()
	if r.stale != nil && conclusive(res) {
		r.stale.Put(req.CacheKey(), req.CacheKeyHash(), res, at)
	}
}

// observeGroupLocked classifies one dispatched batch group: the breaker
// hears a single verdict per group call (availability failures strike the
// whole group at once), while every conclusive position refreshes the
// last-known-good cache. Callers hold r.mu read-locked.
func (r *Router) observeGroupLocked(s *shard, reqs []*policy.Request, indexes []int, at time.Time, out []policy.Result) {
	if s.breaker == nil {
		return
	}
	failed, expired := false, false
	for _, p := range indexes {
		if shardFailure(out[p]) {
			failed = true
			break
		}
		if ctxExpired(out[p]) {
			expired = true
		}
	}
	switch {
	case failed:
		s.breaker.OnFailure()
		return
	case expired:
		// The caller ran out of time mid-batch: neutral for the breaker,
		// but any positions that did complete conclusively are still worth
		// remembering below.
		s.breaker.OnAbandon()
	default:
		s.breaker.OnSuccess()
	}
	if r.stale == nil {
		return
	}
	for _, p := range indexes {
		if conclusive(out[p]) {
			r.stale.Put(reqs[p].CacheKey(), reqs[p].CacheKeyHash(), out[p], at)
		}
	}
}
