package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/ha"
	"repro/internal/pdp"
	"repro/internal/policy"
)

// updPolicy builds version v of the policy administering one resource:
// even versions permit read only, odd versions permit write only.
func updPolicy(res string, v int) *policy.Policy {
	allowed := "read"
	if v%2 == 1 {
		allowed = "write"
	}
	return policy.NewPolicy("pol-" + res).
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID(res)).
		Rule(policy.Permit("allow").When(policy.MatchActionID(allowed)).Build()).
		Rule(policy.Deny("default").Build()).
		Build()
}

// updCatchAll denies one action for every resource (no resource-id pin).
func updCatchAll(v int) *policy.Policy {
	action := "purge"
	if v%2 == 1 {
		action = "audit"
	}
	return policy.NewPolicy("global-guard").
		Combining(policy.FirstApplicable).
		Rule(policy.Deny("no-" + action).When(policy.MatchActionID(action)).Build()).
		Build()
}

// updRoaming targets a different resource each version: its keys move
// between shards, decomposing into delete-on-old-owner/insert-on-new.
func updRoaming(v int) *policy.Policy {
	return policy.NewPolicy("roaming").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID(fmt.Sprintf("res-%d", v%9))).
		Rule(policy.Deny("roam-deny").When(policy.MatchActionID("write")).Build()).
		Build()
}

// updModelRoot assembles the reference root in ID order, BuildRoot-style.
func updModelRoot(model map[string]policy.Evaluable) *policy.PolicySet {
	ids := make([]string, 0, len(model))
	for id := range model {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	b := policy.NewPolicySet("root").Combining(policy.DenyOverrides)
	for _, id := range ids {
		b.Add(model[id])
	}
	return b.Build()
}

func updRequests(resources int) []*policy.Request {
	var reqs []*policy.Request
	for i := 0; i < resources; i++ {
		res := fmt.Sprintf("res-%d", i)
		for _, action := range []string{"read", "write", "purge", "audit"} {
			reqs = append(reqs, policy.NewAccessRequest("alice", res, action))
		}
	}
	return append(reqs, policy.NewAccessRequest("alice", "res-unknown", "read"))
}

// TestRouterApplyUpdateEquivalence is the cluster half of the delta
// property test: any sequence of Put/Delete deltas routed through
// Router.ApplyUpdate yields decisions identical to a single fresh engine
// evaluating the rebuilt full base — shard routing, subset patching and
// selective invalidation included.
func TestRouterApplyUpdateEquivalence(t *testing.T) {
	const resources = 9
	reqs := updRequests(resources)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"4-shard-indexed-cached", Config{Shards: 4, EngineOptions: []pdp.Option{
			pdp.WithTargetIndex(), pdp.WithDecisionCache(time.Hour, 0)}}},
		{"3-shard-2-replica", Config{Shards: 3, Replicas: 2, Strategy: ha.Failover}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				rng := rand.New(rand.NewSource(seed))
				model := make(map[string]policy.Evaluable)
				router, err := New("c", tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := router.SetRoot(updModelRoot(model)); err != nil {
					t.Fatal(err)
				}
				version := 0
				for op := 0; op < 80; op++ {
					version++
					var u pdp.Update
					switch r := rng.Intn(10); {
					case r < 5:
						p := updPolicy(fmt.Sprintf("res-%d", rng.Intn(resources)), version)
						u = pdp.Update{ID: p.ID, Child: p}
					case r < 6:
						p := updCatchAll(version)
						u = pdp.Update{ID: p.ID, Child: p}
					case r < 7:
						p := updRoaming(version)
						u = pdp.Update{ID: p.ID, Child: p}
					default:
						ids := []string{"global-guard", "roaming"}
						for i := 0; i < resources; i++ {
							ids = append(ids, fmt.Sprintf("pol-res-%d", i))
						}
						u = pdp.Update{ID: ids[rng.Intn(len(ids))]}
					}
					if u.Child != nil {
						model[u.ID] = u.Child
					} else {
						delete(model, u.ID)
					}
					if err := router.ApplyUpdate(u); err != nil {
						t.Fatalf("seed %d op %d: ApplyUpdate: %v", seed, op, err)
					}
					if op%16 != 15 {
						continue
					}
					rebuilt := pdp.New("rebuilt")
					if err := rebuilt.SetRoot(updModelRoot(model)); err != nil {
						t.Fatalf("seed %d op %d: rebuild: %v", seed, op, err)
					}
					for _, req := range reqs {
						got := router.DecideAt(context.Background(), req, testEpoch)
						want := rebuilt.DecideAt(context.Background(), req, testEpoch)
						if got.Decision != want.Decision || got.By != want.By {
							t.Fatalf("seed %d op %d: %s on %s: cluster delta = %v by %s, rebuild = %v by %s",
								seed, op, req.ActionID(), req.ResourceID(),
								got.Decision, got.By, want.Decision, want.By)
						}
					}
				}
			}
		})
	}
}

// TestRouterApplyUpdateKeepsOtherShardsWarm asserts the routed delta's
// locality: one changed resource touches one shard group, every other
// shard's decision cache keeps serving hits, and even the touched shard
// only recomputes the changed resource.
func TestRouterApplyUpdateKeepsOtherShardsWarm(t *testing.T) {
	const resources = 50
	router, err := New("c", Config{Shards: 4, EngineOptions: []pdp.Option{
		pdp.WithTargetIndex(), pdp.WithDecisionCache(time.Hour, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[string]policy.Evaluable, resources)
	for i := 0; i < resources; i++ {
		p := updPolicy(fmt.Sprintf("res-%d", i), 0)
		model[p.ID] = p
	}
	if err := router.SetRoot(updModelRoot(model)); err != nil {
		t.Fatal(err)
	}
	var warm []*policy.Request
	for i := 0; i < resources; i++ {
		warm = append(warm, policy.NewAccessRequest("u", fmt.Sprintf("res-%d", i), "read"))
	}
	for _, req := range warm {
		if got := router.DecideAt(context.Background(), req, testEpoch); got.Decision != policy.DecisionPermit {
			t.Fatalf("warm-up %s: %v", req.ResourceID(), got.Decision)
		}
	}
	before := router.EngineStats()

	if err := router.ApplyUpdate(pdp.Update{ID: "pol-res-0", Child: updPolicy("res-0", 1)}); err != nil {
		t.Fatal(err)
	}
	st := router.Stats()
	if st.Updates != 1 || st.UpdateShardsTouched != 1 {
		t.Fatalf("router stats = %+v, want 1 update touching 1 shard", st)
	}

	for _, req := range warm[1:] {
		if got := router.DecideAt(context.Background(), req, testEpoch); got.Decision != policy.DecisionPermit {
			t.Fatalf("unaffected %s: %v", req.ResourceID(), got.Decision)
		}
	}
	if got := router.DecideAt(context.Background(), warm[0], testEpoch); got.Decision != policy.DecisionDeny {
		t.Fatalf("res-0 read after update = %v, want deny", got.Decision)
	}
	after := router.EngineStats()
	if hits := after.CacheHits - before.CacheHits; hits != int64(resources-1) {
		t.Errorf("cache hits across update = %d, want %d (all untouched resources warm)", hits, resources-1)
	}
	if evals := after.Evaluations - before.Evaluations; evals != 1 {
		t.Errorf("evaluations across update = %d, want 1", evals)
	}
	if after.CacheInvalidations-before.CacheInvalidations != 1 {
		t.Errorf("cache invalidations = %d, want 1", after.CacheInvalidations-before.CacheInvalidations)
	}

	// Contrast: the full-rebuild path flushes every cache cluster-wide.
	if err := router.SetRoot(router.Root()); err != nil {
		t.Fatal(err)
	}
	mid := router.EngineStats()
	for _, req := range warm {
		router.DecideAt(context.Background(), req, testEpoch)
	}
	cold := router.EngineStats()
	if hits := cold.CacheHits - mid.CacheHits; hits != 0 {
		t.Errorf("cache hits after full SetRoot = %d, want 0 (full flush)", hits)
	}
}

// TestRouterApplyUpdateUnsortedInsertFallsBack pins the safety fallback:
// inserting a new child into a root whose children are not ID-ordered (a
// caller-built SetRoot base) must take the full repartition path — the
// router's global insert position and each engine's independent subset
// insert could otherwise land at inconsistent positions — and the cluster
// must keep deciding exactly like a single engine over the router's root.
func TestRouterApplyUpdateUnsortedInsertFallsBack(t *testing.T) {
	router, err := New("c", Config{Shards: 2, EngineOptions: []pdp.Option{
		pdp.WithTargetIndex(), pdp.WithDecisionCache(time.Hour, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	// Generation order pol-res-0..pol-res-11 is not lexicographic
	// (pol-res-10 < pol-res-2), so this root is unsorted by ID.
	b := policy.NewPolicySet("root").Combining(policy.FirstApplicable)
	for i := 0; i < 12; i++ {
		b.Add(updPolicy(fmt.Sprintf("res-%d", i), 0))
	}
	if err := router.SetRoot(b.Build()); err != nil {
		t.Fatal(err)
	}
	guard := policy.NewPolicy("aaa-guard").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("res-5")).
		Rule(policy.Deny("no-read").When(policy.MatchActionID("read")).Build()).
		Build()
	if err := router.ApplyUpdate(pdp.Update{ID: "aaa-guard", Child: guard}); err != nil {
		t.Fatal(err)
	}
	if st := router.Stats(); st.UpdateShardsTouched != 2 {
		t.Errorf("unsorted insert touched %d shards, want all 2 (full repartition fallback)", st.UpdateShardsTouched)
	}
	assertMatchesEngine := func(resources []string) {
		t.Helper()
		ref := pdp.New("ref")
		if err := ref.SetRoot(router.Root()); err != nil {
			t.Fatal(err)
		}
		for _, res := range resources {
			for _, action := range []string{"read", "write"} {
				req := policy.NewAccessRequest("u", res, action)
				got := router.DecideAt(context.Background(), req, testEpoch)
				want := ref.DecideAt(context.Background(), req, testEpoch)
				if got.Decision != want.Decision || got.By != want.By {
					t.Fatalf("%s %s: cluster = %v by %s, engine = %v by %s",
						action, res, got.Decision, got.By, want.Decision, want.By)
				}
			}
		}
	}
	var all []string
	for i := 0; i < 12; i++ {
		all = append(all, fmt.Sprintf("res-%d", i))
	}
	assertMatchesEngine(all)

	// A replace whose keys move to a shard that did not serve the old
	// child triggers an engine-subset insert there, so it must also take
	// the full path on an unsorted root. Find a key owned by the other
	// shard deterministically via the ring.
	oldOwner, _ := router.Owner("res-5")
	moved := ""
	for i := 100; i < 200; i++ {
		cand := fmt.Sprintf("res-%d", i)
		if owner, ok := router.Owner(cand); ok && owner != oldOwner {
			moved = cand
			break
		}
	}
	if moved == "" {
		t.Fatal("no cross-shard key found")
	}
	retargeted := policy.NewPolicy("pol-res-5").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID(moved)).
		Rule(policy.Permit("allow").When(policy.MatchActionID("read")).Build()).
		Rule(policy.Deny("default").Build()).
		Build()
	before := router.Stats()
	if err := router.ApplyUpdate(pdp.Update{ID: "pol-res-5", Child: retargeted}); err != nil {
		t.Fatal(err)
	}
	if st := router.Stats(); st.UpdateShardsTouched-before.UpdateShardsTouched != 2 {
		t.Errorf("cross-shard key move on unsorted root touched %d shards, want all 2 (full repartition fallback)",
			st.UpdateShardsTouched-before.UpdateShardsTouched)
	}
	assertMatchesEngine(append(all, moved))
}

// TestRouterApplyUpdateNotIncremental covers the fallback contract.
func TestRouterApplyUpdateNotIncremental(t *testing.T) {
	router, err := New("c", Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := updPolicy("res-0", 0)
	if err := router.ApplyUpdate(pdp.Update{ID: p.ID, Child: p}); !errors.Is(err, pdp.ErrNotIncremental) {
		t.Errorf("no root: err = %v, want ErrNotIncremental", err)
	}
	if err := router.SetRoot(updPolicy("res-1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := router.ApplyUpdate(pdp.Update{ID: p.ID, Child: p}); !errors.Is(err, pdp.ErrNotIncremental) {
		t.Errorf("non-set root: err = %v, want ErrNotIncremental", err)
	}
}

// TestAddShardRollback forces the rebalanced install to fail and asserts
// the membership change is rolled back: no half-joined empty shard may
// stay in the ring fail-closing its slice of the key space. The invalid
// root is injected directly (no public path installs one), modelling a
// corrupted policy source discovered mid-rebalance.
func TestAddShardRollback(t *testing.T) {
	router, err := New("c", Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[string]policy.Evaluable)
	for i := 0; i < 12; i++ {
		p := updPolicy(fmt.Sprintf("res-%d", i), 0)
		model[p.ID] = p
	}
	if err := router.SetRoot(updModelRoot(model)); err != nil {
		t.Fatal(err)
	}
	want := router.DecideAt(context.Background(), policy.NewAccessRequest("u", "res-3", "read"), testEpoch)
	if want.Decision != policy.DecisionPermit {
		t.Fatalf("baseline decision = %v", want.Decision)
	}

	// Corrupt the held root: an invalid catch-all child (empty target ⇒
	// replicated everywhere) makes the very first shard reinstall fail.
	bad := &policy.Policy{ID: "bad"} // combining 0 is invalid
	corrupt := updModelRoot(model)
	corrupt.Children = append(corrupt.Children, bad)
	router.mu.Lock()
	router.root = corrupt
	router.mu.Unlock()

	if _, err := router.AddShard(); err == nil {
		t.Fatal("AddShard with a corrupt root must fail")
	}
	if got := router.Shards(); len(got) != 1 {
		t.Fatalf("shards after failed AddShard = %v, want the original 1", got)
	}
	// Every key must still resolve to the surviving shard — before the
	// rollback fix, ~1/2 of the key space landed on the half-joined empty
	// shard and failed closed.
	for i := 0; i < 12; i++ {
		owner, ok := router.Owner(fmt.Sprintf("res-%d", i))
		if !ok || owner != "c/shard-0" {
			t.Fatalf("res-%d owner = %q after rollback, want c/shard-0", i, owner)
		}
	}
	got := router.DecideAt(context.Background(), policy.NewAccessRequest("u", "res-3", "read"), testEpoch)
	if got.Decision != want.Decision {
		t.Fatalf("decision after rollback = %v, want %v", got.Decision, want.Decision)
	}
}
