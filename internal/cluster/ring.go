package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring mapping resource keys to shard names.
// Every shard is projected onto the ring at vnodes points, so ownership is
// spread evenly and membership changes move only ~1/N of the key space
// (Section 3 of the paper argues the decision point must scale with the
// resource population; the ring is what lets the policy base be split
// across engines without a central routing table).
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []point // ascending by hash
	nodes  map[string]struct{}
}

type point struct {
	hash uint64
	node string
}

// DefaultVirtualNodes balances ownership to within a few percent for small
// shard counts while keeping the ring tiny.
const DefaultVirtualNodes = 128

// NewRing builds an empty ring; vnodes <= 0 selects DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// hashKey hashes a key onto the ring. FNV-1a alone distributes short,
// similar keys (shard-0#1, shard-0#2, ...) poorly across the 64-bit
// space, so a splitmix64 finaliser avalanches the bits.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add projects a node onto the ring. Adding an existing node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hashKey(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove takes a node off the ring; its key range folds into the
// clockwise successors. Removing an unknown node is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the node owning the key: the first ring point at or after
// the key's hash, wrapping at the top. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// Nodes returns the member nodes, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
