// Package core is the public facade of the repository: it assembles the
// paper's dependable multi-domain access control architecture from the
// substrate packages and exposes the operations a deployment performs —
// admitting domains into a Virtual Organisation, admitting policies
// through a validation pipeline (structural validation, static conflict
// analysis, delegation reduction), replicating decision points for
// dependability, and issuing authorisation requests through the pull and
// push flows.
//
// The facade is what the examples and the experiment harness program
// against; each constituent subsystem remains usable on its own.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/delegation"
	"repro/internal/dialect"
	"repro/internal/federation"
	"repro/internal/ha"
	"repro/internal/pap"
	"repro/internal/pdp"
	"repro/internal/pip"
	"repro/internal/policy"
	"repro/internal/wire"
)

// ErrConflict reports a policy admission refused because static analysis
// found an actual modality conflict with the installed policy base.
var ErrConflict = errors.New("core: policy conflicts with installed policies")

// detRand is a deterministic entropy source so whole systems are
// reproducible from one seed.
type detRand struct{ r *rand.Rand }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

// Config parameterises a System.
type Config struct {
	// Name names the Virtual Organisation.
	Name string
	// Seed drives all key generation and the network loss model.
	Seed int64
	// LinkLatency is the default one-way latency between components.
	LinkLatency time.Duration
	// Epoch is the start of certificate validity and virtual time.
	Epoch time.Time
	// Lifetime bounds certificate validity; one year when zero.
	Lifetime time.Duration
}

func (c Config) withDefaults() Config {
	if c.LinkLatency == 0 {
		c.LinkLatency = 5 * time.Millisecond
	}
	if c.Epoch.IsZero() {
		c.Epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Lifetime == 0 {
		c.Lifetime = 365 * 24 * time.Hour
	}
	return c
}

// System is an assembled multi-domain access control deployment.
type System struct {
	// Name identifies the system (and its VO).
	Name string
	// Net is the simulated network all components share.
	Net *wire.Network
	// VO is the federation layer.
	VO *federation.VO
	// Epoch is the base of virtual time.
	Epoch time.Time

	cfg     Config
	entropy *detRand

	// analyzers holds one incremental static analyser per domain, fed by
	// the domain PAP's delta stream; see domainAnalyzer.
	mu        sync.Mutex
	analyzers map[string]*analysis.Engine
}

// NewSystem assembles a Virtual Organisation with no member domains.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	entropy := &detRand{r: rand.New(rand.NewSource(cfg.Seed))}
	net := wire.NewNetwork(cfg.LinkLatency, cfg.Seed)
	vo, err := federation.NewVO(cfg.Name, net, entropy, cfg.Epoch, cfg.Epoch.Add(cfg.Lifetime))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{
		Name:      cfg.Name,
		Net:       net,
		VO:        vo,
		Epoch:     cfg.Epoch,
		cfg:       cfg,
		entropy:   entropy,
		analyzers: make(map[string]*analysis.Engine),
	}, nil
}

// AddDomain admits a new autonomous domain to the organisation.
func (s *System) AddDomain(name string) (*federation.Domain, error) {
	d, err := federation.NewDomain(name, s.entropy, s.cfg.Epoch, s.cfg.Epoch.Add(s.cfg.Lifetime))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.VO.AddDomain(d)
	return d, nil
}

// AdmitPolicy runs the paper's policy-management pipeline before a policy
// enters a domain's administration point:
//
//  1. structural validation,
//  2. delegation reduction when the policy names a non-local issuer
//     (Section 3.2, Access Control Delegation), and
//  3. static conflict analysis against the installed base; actual
//     modality conflicts are refused (Section 3.1, Policy Conflict
//     Resolution) — potential (conditional) conflicts are admitted, since
//     runtime combining algorithms arbitrate them.
func (s *System) AdmitPolicy(d *federation.Domain, p *policy.Policy, at time.Time) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("core: admit %s: %w", p.ID, err)
	}
	if p.Issuer != "" && p.Issuer != "authority."+d.Name {
		if err := s.VO.Delegation.ValidatePolicy(p, at); err != nil {
			return fmt.Errorf("core: admit %s: %w", p.ID, err)
		}
	}
	eng, err := s.domainAnalyzer(d)
	if err != nil {
		return fmt.Errorf("core: admit %s: %w", p.ID, err)
	}
	// Preview analyses the candidate against only the claims that can
	// overlap it — incremental cost per admission instead of re-running
	// the full pairwise analysis over the installed base. Its findings
	// all involve p, and a replacement is not compared with its own
	// previous revision, so the refusal rule below matches the original
	// from-scratch check. An intra-policy clash (same owner on both
	// sides) is resolved by the policy's own combining algorithm; it is
	// the author's explicit choice and admitted.
	for _, f := range eng.Preview(p.ID, p).Findings {
		if f.Kind == analysis.KindConflict && f.Actual && f.Subject.Owner != f.Other.Owner {
			return fmt.Errorf("core: admit %s: %s: %w", p.ID, f.Detail, ErrConflict)
		}
	}
	if _, err := d.PAP.Put(p); err != nil {
		return fmt.Errorf("core: admit %s: %w", p.ID, err)
	}
	return nil
}

// domainAnalyzer returns the domain's incremental static analyser,
// creating it on first use: the engine is seeded from the domain's
// administration point and registered as a watcher atomically
// (WatchInstall), so every later Put or Delete folds into the claim index
// as a delta. N admissions therefore cost N incremental analyses instead
// of N full pairwise scans of an ever-growing base.
func (s *System) domainAnalyzer(d *federation.Domain) (*analysis.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if eng, ok := s.analyzers[d.Name]; ok {
		return eng, nil
	}
	eng := analysis.NewEngine(analysis.Config{RootCombining: policy.DenyOverrides})
	install := func(store *pap.Store) error {
		children := make([]policy.Evaluable, 0, 8)
		for _, id := range store.List() {
			e, err := store.Get(id)
			if err != nil {
				return err
			}
			children = append(children, e)
		}
		eng.Install(children...)
		return nil
	}
	err := d.PAP.WatchInstall(install, func(u pap.Update) {
		if u.Deleted {
			eng.Apply(u.ID, nil)
			return
		}
		eng.Apply(u.ID, u.Policy)
	})
	if err != nil {
		return nil, err
	}
	s.analyzers[d.Name] = eng
	return eng, nil
}

// AdmitDialectSource translates a local-dialect policy document (Section
// 3.1, Policy Heterogeneity Management) and admits every policy in it
// through the same pipeline as AdmitPolicy. Admission is atomic per
// policy, not per document: an early policy may be installed when a later
// one is refused, matching PAP versioning semantics (re-admitting the
// fixed document overwrites by ID).
func (s *System) AdmitDialectSource(d *federation.Domain, src string, at time.Time) error {
	doc, err := dialect.Parse(src)
	if err != nil {
		return fmt.Errorf("core: admit dialect: %w", err)
	}
	pols, err := dialect.Compile(doc)
	if err != nil {
		return fmt.Errorf("core: admit dialect: %w", err)
	}
	for _, p := range pols {
		if err := s.AdmitPolicy(d, p, at); err != nil {
			return err
		}
	}
	return nil
}

// AttachInformationPoints wires a chain of Policy Information Points into
// a domain's decision path: attributes neither the request nor the
// domain's Directory carries are resolved lazily, mid-evaluation, from the
// providers in order. The chain sits behind a TTL cache that coalesces
// concurrent misses, so a burst of decisions over one cold subject costs a
// single backend fetch; the returned cache exposes hit/miss/coalesce
// counters. This is the live resolution path of the decision pipeline —
// requests no longer need attributes pre-populated by the caller. ttl <= 0
// defaults to one minute.
func (s *System) AttachInformationPoints(d *federation.Domain, ttl time.Duration, providers ...pip.Provider) *pip.Cache {
	cache := pip.NewCachedChain(d.Name+"-pip", ttl, providers...)
	d.UsePIP(cache)
	return cache
}

// Delegate grants issuing authority from one VO authority to another; use
// "authority.<domain>" or "authority.<vo>" names. Root authorities are
// registered automatically when domains join.
func (s *System) Delegate(delegator, delegate string, scope delegation.Scope, maxDepth int, expires, at time.Time) (*delegation.Grant, error) {
	return s.VO.Delegation.Delegate(delegator, delegate, scope, maxDepth, expires, at)
}

// ReplicatePDP replaces a domain's single decision point with an ensemble
// of n replicas sharing the domain's policy base, returning the replica
// handles for failure injection and the ensemble for inspection. The
// domain keeps serving through the federation flows; decisions route
// through the ensemble.
func (s *System) ReplicatePDP(d *federation.Domain, n int, strategy ha.Strategy) (*ha.Ensemble, []*ha.Failable, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("core: need at least one replica")
	}
	replicas := make([]*ha.Failable, n)
	for i := 0; i < n; i++ {
		engine := pdp.New(fmt.Sprintf("%s-replica-%d", d.Name, i))
		root, err := d.PAP.BuildRoot(d.Name+"-root", policy.DenyOverrides)
		if err != nil {
			return nil, nil, fmt.Errorf("core: replicate %s: %w", d.Name, err)
		}
		if err := engine.SetRoot(root); err != nil {
			return nil, nil, fmt.Errorf("core: replicate %s: %w", d.Name, err)
		}
		replicas[i] = ha.NewFailable(engine.Name(), engine)
	}
	ensemble := ha.NewEnsemble(d.Name+"-ensemble", strategy, replicas...)
	return ensemble, replicas, nil
}

// InstallReplicatedPDP replicates a domain's decision point and wires the
// ensemble into the federated flows: every access handled by the domain's
// PEP is decided by the ensemble, and PAP updates reach every replica
// through the incremental delta pipeline — each update patches the one
// affected root child per replica (invalidating only that child's cached
// decisions) instead of rebuilding and reinstalling the whole root, so
// revocations reach the ensemble without flushing every decision cache.
// Refresh failures are surfaced through the domain's RefreshErrors counter
// and OnRefreshError callback. Returns the replica handles for failure
// injection.
func (s *System) InstallReplicatedPDP(d *federation.Domain, n int, strategy ha.Strategy) (*ha.Ensemble, []*ha.Failable, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("core: need at least one replica")
	}
	engines := make([]*pdp.Engine, n)
	replicas := make([]*ha.Failable, n)
	for i := 0; i < n; i++ {
		engines[i] = pdp.New(fmt.Sprintf("%s-replica-%d", d.Name, i))
		replicas[i] = ha.NewFailable(engines[i].Name(), engines[i])
	}
	// Initial install and watcher registration are atomic (WatchInstall):
	// an update committing between a plain snapshot and a later Watch
	// would never reach the delta pipeline, leaving replicas permanently
	// serving the missed version.
	install := func(store *pap.Store) error {
		root, err := store.BuildRoot(d.Name+"-root", policy.DenyOverrides)
		if err != nil {
			return err
		}
		for _, e := range engines {
			if err := e.SetRoot(root); err != nil {
				return err
			}
		}
		return nil
	}
	err := d.PAP.WatchInstall(install, func(u pap.Update) {
		for _, e := range engines {
			if err := federation.ApplyPAPUpdate(e, d.PAP, u, d.Name+"-root"); err != nil {
				d.ReportRefreshError(err)
			}
		}
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: replicate %s: %w", d.Name, err)
	}
	ensemble := ha.NewEnsemble(d.Name+"-ensemble", strategy, replicas...)
	d.UseDecider(ensemble)
	return ensemble, replicas, nil
}

// At converts an offset from the system epoch into an absolute virtual
// time, the convention experiments use.
func (s *System) At(offset time.Duration) time.Time { return s.Epoch.Add(offset) }
