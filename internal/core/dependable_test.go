package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/ha"
	"repro/internal/pip"
	"repro/internal/policy"
)

// dependableFixture builds a two-domain VO where hospital-a's decisions
// are served by a replicated PDP ensemble wired into the federated flow.
func dependableFixture(t *testing.T, strategy ha.Strategy, n int) (*System, []*ha.Failable) {
	t.Helper()
	s, err := NewSystem(Config{Name: "ha-vo", Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.AddDomain("hospital-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AddDomain("hospital-b")
	if err != nil {
		t.Fatal(err)
	}
	b.Directory.AddSubject(pip.Subject{ID: "bob", Domain: "hospital-b", Roles: []string{"doctor"}})
	if err := s.AdmitPolicy(a, doctorsReadPolicy("records"), s.At(0)); err != nil {
		t.Fatal(err)
	}
	_, replicas, err := s.InstallReplicatedPDP(a, n, strategy)
	if err != nil {
		t.Fatal(err)
	}
	return s, replicas
}

func crossDomainReq() *policy.Request {
	return policy.NewAccessRequest("bob", "rec-1", "read").
		Add(policy.CategorySubject, policy.AttrSubjectDomain, policy.String("hospital-b")).
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("hospital-a")).
		Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record"))
}

func TestFederatedRequestsThroughEnsemble(t *testing.T) {
	s, _ := dependableFixture(t, ha.Failover, 3)
	out := s.VO.Request(context.Background(), "hospital-b", crossDomainReq(), s.At(time.Hour))
	if !out.Allowed {
		t.Fatalf("ensemble-backed request refused: %v", out.Err)
	}
	// Cross-domain attribute retrieval still happens (6 messages): the
	// resolver threads through the ensemble into the replica engines.
	if out.Messages != 6 {
		t.Errorf("messages = %d, want 6", out.Messages)
	}
}

func TestFederatedFlowSurvivesReplicaCrashes(t *testing.T) {
	s, replicas := dependableFixture(t, ha.Failover, 3)
	replicas[0].SetDown(true)
	replicas[1].SetDown(true)
	out := s.VO.Request(context.Background(), "hospital-b", crossDomainReq(), s.At(time.Hour))
	if !out.Allowed {
		t.Fatalf("request with 2/3 replicas down refused: %v", out.Err)
	}
	// All three down: deny-biased refusal, not a hang or a permit.
	replicas[2].SetDown(true)
	out = s.VO.Request(context.Background(), "hospital-b", crossDomainReq(), s.At(time.Hour))
	if out.Allowed {
		t.Fatal("request with all replicas down must be refused")
	}
	if out.Decision != policy.DecisionIndeterminate && out.Decision != policy.DecisionDeny {
		t.Errorf("decision = %v", out.Decision)
	}
}

func TestRevocationReachesAllReplicas(t *testing.T) {
	s, _ := dependableFixture(t, ha.Quorum, 3)
	out := s.VO.Request(context.Background(), "hospital-b", crossDomainReq(), s.At(time.Hour))
	if !out.Allowed {
		t.Fatalf("precondition: %v", out.Err)
	}
	// The domain revokes via its PAP; the watch must refresh every
	// replica, so the quorum flips to deny with no stale minority.
	a, _ := s.VO.Domain("hospital-a")
	if _, err := a.PAP.Put(policy.NewPolicy("records").
		Combining(policy.FirstApplicable).
		Rule(policy.Deny("lockdown").Build()).
		Build()); err != nil {
		t.Fatal(err)
	}
	out = s.VO.Request(context.Background(), "hospital-b", crossDomainReq(), s.At(2*time.Hour))
	if out.Allowed {
		t.Fatal("revocation must propagate to every replica")
	}
}

func TestQuorumEnsembleInFederation(t *testing.T) {
	s, replicas := dependableFixture(t, ha.Quorum, 3)
	// A quorum tolerates one crash.
	replicas[1].SetDown(true)
	out := s.VO.Request(context.Background(), "hospital-b", crossDomainReq(), s.At(time.Hour))
	if !out.Allowed {
		t.Fatalf("quorum with one crash refused: %v", out.Err)
	}
	// Two crashes break the majority: refused.
	replicas[2].SetDown(true)
	out = s.VO.Request(context.Background(), "hospital-b", crossDomainReq(), s.At(time.Hour))
	if out.Allowed {
		t.Fatal("no quorum must refuse")
	}
}

func TestUseDeciderRestoresDefault(t *testing.T) {
	s, replicas := dependableFixture(t, ha.Failover, 1)
	a, _ := s.VO.Domain("hospital-a")
	replicas[0].SetDown(true)
	if out := s.VO.Request(context.Background(), "hospital-b", crossDomainReq(), s.At(time.Hour)); out.Allowed {
		t.Fatal("downed single replica must refuse")
	}
	// Restoring the built-in engine brings the domain back.
	a.UseDecider(nil)
	if out := s.VO.Request(context.Background(), "hospital-b", crossDomainReq(), s.At(time.Hour)); !out.Allowed {
		t.Fatalf("default engine restore: %v", out.Err)
	}
}
