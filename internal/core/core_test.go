package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/delegation"
	"repro/internal/ha"
	"repro/internal/pip"
	"repro/internal/policy"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(Config{Name: "test-vo", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func doctorsReadPolicy(id string) *policy.Policy {
	return policy.NewPolicy(id).
		Combining(policy.FirstApplicable).
		When(policy.MatchResource(policy.AttrResourceType, policy.String("patient-record"))).
		Rule(policy.Permit("doctors-read").
			When(policy.MatchRole("doctor"), policy.MatchActionID("read")).
			Build()).
		Rule(policy.Deny("default").Build()).
		Build()
}

func TestSystemEndToEnd(t *testing.T) {
	s := newSystem(t)
	a, err := s.AddDomain("hospital-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddDomain("hospital-b"); err != nil {
		t.Fatal(err)
	}
	a.Directory.AddSubject(pip.Subject{ID: "alice", Domain: "hospital-a", Roles: []string{"doctor"}})
	if err := s.AdmitPolicy(a, doctorsReadPolicy("records"), s.At(0)); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("alice", "rec-1", "read").
		Add(policy.CategorySubject, policy.AttrSubjectDomain, policy.String("hospital-a")).
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("hospital-a")).
		Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record"))
	out := s.VO.Request(context.Background(), "hospital-a", req, s.At(time.Hour))
	if !out.Allowed {
		t.Fatalf("end-to-end request refused: %v", out.Err)
	}
}

func TestSystemDeterministicFromSeed(t *testing.T) {
	build := func() string {
		s, err := NewSystem(Config{Name: "vo", Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		d, err := s.AddDomain("dom")
		if err != nil {
			t.Fatal(err)
		}
		return string(d.CA.Certificate().PublicKey)
	}
	if build() != build() {
		t.Error("systems built from one seed must have identical keys")
	}
}

func TestAdmitPolicyRejectsInvalid(t *testing.T) {
	s := newSystem(t)
	d, err := s.AddDomain("dom")
	if err != nil {
		t.Fatal(err)
	}
	bad := &policy.Policy{ID: "", Combining: policy.DenyOverrides}
	if err := s.AdmitPolicy(d, bad, s.At(0)); err == nil {
		t.Error("invalid policy must be refused")
	}
}

func TestAdmitPolicyRejectsActualConflict(t *testing.T) {
	s := newSystem(t)
	d, err := s.AddDomain("dom")
	if err != nil {
		t.Fatal(err)
	}
	permit := policy.NewPolicy("allow-read").
		Combining(policy.FirstApplicable).
		Rule(policy.Permit("p").
			When(policy.MatchResourceID("db"), policy.MatchActionID("read")).
			Build()).
		Build()
	if err := s.AdmitPolicy(d, permit, s.At(0)); err != nil {
		t.Fatal(err)
	}
	deny := policy.NewPolicy("deny-read").
		Combining(policy.FirstApplicable).
		Rule(policy.Deny("d").
			When(policy.MatchResourceID("db"), policy.MatchActionID("read")).
			Build()).
		Build()
	if err := s.AdmitPolicy(d, deny, s.At(0)); !errors.Is(err, ErrConflict) {
		t.Errorf("want ErrConflict, got %v", err)
	}
	// A conditional clash is only potential: admitted.
	conditional := policy.NewPolicy("deny-read-night").
		Combining(policy.FirstApplicable).
		Rule(policy.Deny("d").
			When(policy.MatchResourceID("db"), policy.MatchActionID("read")).
			If(policy.Lit(policy.Boolean(true))).
			Build()).
		Build()
	if err := s.AdmitPolicy(d, conditional, s.At(0)); err != nil {
		t.Errorf("potential conflict must be admitted: %v", err)
	}
	// Replacing an existing policy does not conflict with its old self.
	if err := s.AdmitPolicy(d, permit, s.At(0)); err != nil {
		t.Errorf("replacement: %v", err)
	}
}

func TestAdmitPolicyDelegationGate(t *testing.T) {
	s := newSystem(t)
	d, err := s.AddDomain("dom")
	if err != nil {
		t.Fatal(err)
	}
	foreign := doctorsReadPolicy("foreign-policy")
	foreign.Issuer = "authority.partner"
	// No grant: refused.
	if err := s.AdmitPolicy(d, foreign, s.At(0)); err == nil {
		t.Fatal("undelegated foreign issuer must be refused")
	}
	// Grant the partner authority over everything; then admitted.
	s.VO.Delegation.AddRoot("authority.partner")
	if err := s.AdmitPolicy(d, foreign, s.At(0)); err != nil {
		t.Errorf("after delegation: %v", err)
	}
	// Locally issued policies need no grant. Target a disjoint resource
	// type so the new policy cannot clash with the admitted one.
	local := policy.NewPolicy("local-policy").
		IssuedBy("authority.dom").
		Combining(policy.FirstApplicable).
		When(policy.MatchResource(policy.AttrResourceType, policy.String("lab-result"))).
		Rule(policy.Permit("labs-read").
			When(policy.MatchRole("doctor"), policy.MatchActionID("read")).
			Build()).
		Build()
	if err := s.AdmitPolicy(d, local, s.At(0)); err != nil {
		t.Errorf("local issuer: %v", err)
	}
}

func TestDelegateThroughSystem(t *testing.T) {
	s := newSystem(t)
	if _, err := s.AddDomain("dom"); err != nil {
		t.Fatal(err)
	}
	g, err := s.Delegate("authority.dom", "authority.team", delegation.UnrestrictedScope(), 0, time.Time{}, s.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if g.Delegate != "authority.team" {
		t.Errorf("grant = %+v", g)
	}
	if _, err := s.VO.Delegation.ValidateIssuer("authority.team", "r", "a", s.At(time.Hour)); err != nil {
		t.Errorf("delegated issuer: %v", err)
	}
}

func TestReplicatePDP(t *testing.T) {
	s := newSystem(t)
	d, err := s.AddDomain("dom")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdmitPolicy(d, doctorsReadPolicy("records"), s.At(0)); err != nil {
		t.Fatal(err)
	}
	ensemble, replicas, err := s.ReplicatePDP(d, 3, ha.Failover)
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 3 {
		t.Fatalf("replicas = %d", len(replicas))
	}
	req := policy.NewAccessRequest("u", "rec", "read").
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String("doctor")).
		Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record"))
	if res := ensemble.DecideAt(context.Background(), req, s.At(0)); res.Decision != policy.DecisionPermit {
		t.Fatalf("ensemble decision = %v", res.Decision)
	}
	// Survives two crashes under failover.
	replicas[0].SetDown(true)
	replicas[1].SetDown(true)
	if res := ensemble.DecideAt(context.Background(), req, s.At(0)); res.Decision != policy.DecisionPermit {
		t.Errorf("2-crash decision = %v (%v)", res.Decision, res.Err)
	}
	if _, _, err := s.ReplicatePDP(d, 0, ha.Failover); err == nil {
		t.Error("zero replicas must be rejected")
	}
}
