package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/pip"
	"repro/internal/policy"
)

// A domain joins the VO with policies written in its own local dialect;
// admission must translate them and the federation flows must serve them
// like native policies (Section 3.1, Policy Heterogeneity Management).
func TestAdmitDialectSourceServesFederatedTraffic(t *testing.T) {
	s := newSystem(t)
	b, err := s.AddDomain("hospital-b")
	if err != nil {
		t.Fatal(err)
	}
	b.Directory.AddSubject(pip.Subject{ID: "bob", Domain: "hospital-b", Roles: []string{"doctor"}})
	b.Directory.AddSubject(pip.Subject{ID: "mallory", Domain: "hospital-b", Roles: []string{"visitor"}})

	src := `
policy records first-applicable {
  target resource.resource-type == "patient-record"
  permit doctors-read when subject.role has "doctor" and action.action-id == "read"
  deny default
}`
	if err := s.AdmitDialectSource(b, src, s.At(0)); err != nil {
		t.Fatal(err)
	}

	req := func(subject string) *policy.Request {
		return policy.NewAccessRequest(subject, "rec-9", "read").
			Add(policy.CategorySubject, policy.AttrSubjectDomain, policy.String("hospital-b")).
			Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("hospital-b")).
			Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record"))
	}
	if out := s.VO.Request(context.Background(), "hospital-b", req("bob"), s.At(time.Hour)); !out.Allowed {
		t.Fatalf("dialect-admitted policy refused bob: %v", out.Err)
	}
	if out := s.VO.Request(context.Background(), "hospital-b", req("mallory"), s.At(time.Hour)); out.Allowed {
		t.Fatal("dialect-admitted policy permitted mallory")
	}
}

func TestAdmitDialectSourceRefusesConflicts(t *testing.T) {
	// A dialect policy that contradicts an installed one must be refused
	// by the same static conflict analysis native admissions face.
	s := newSystem(t)
	d, err := s.AddDomain("lab")
	if err != nil {
		t.Fatal(err)
	}
	installed := policy.NewPolicy("allow-reads").
		Combining(policy.FirstApplicable).
		Rule(policy.Permit("ok").
			When(policy.MatchRole("analyst"), policy.MatchActionID("read"), policy.MatchResourceID("dataset")).
			Build()).
		Build()
	if err := s.AdmitPolicy(d, installed, s.At(0)); err != nil {
		t.Fatal(err)
	}
	// A 'when'-guarded deny compiles to a conditional rule: only a
	// potential conflict, which admission leaves to the runtime combining
	// algorithms.
	src := `
policy block-reads first-applicable {
  deny no-reads when true
}`
	if err := s.AdmitDialectSource(d, src, s.At(0)); err != nil {
		t.Fatalf("conditional overlap must be admitted (runtime algorithms arbitrate): %v", err)
	}
	// A target-scoped unconditional deny on the same tuple is an actual
	// modality conflict and must be refused.
	src = `
policy block-reads-hard first-applicable {
  target subject.role == "analyst" and action.action-id == "read" and resource.resource-id == "dataset"
  deny no-reads
}`
	err = s.AdmitDialectSource(d, src, s.At(0))
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("actual conflict admitted: %v", err)
	}
}

func TestAdmitDialectSourceSyntaxErrorsCarryPosition(t *testing.T) {
	s := newSystem(t)
	d, err := s.AddDomain("lab")
	if err != nil {
		t.Fatal(err)
	}
	err = s.AdmitDialectSource(d, "policy p nope { permit r }", s.At(0))
	if err == nil || !strings.Contains(err.Error(), "unknown combining algorithm") {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "1:10") {
		t.Errorf("error lacks source position: %v", err)
	}
}
