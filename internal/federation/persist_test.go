package federation

import (
	"context"
	"testing"

	"repro/internal/policy"
	"repro/internal/store"
)

func persistPolicy(id, resource string) *policy.Policy {
	return policy.NewPolicy(id).
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID(resource)).
		Rule(policy.Permit("allow").When(policy.MatchActionID("read")).Build()).
		Rule(policy.Deny("default").Build()).
		Build()
}

// TestDomainHydratePAP: a restarted domain hydrated from a durable log
// serves exactly the decisions it acknowledged before the crash — the
// delete included — and keeps persisting new administration.
func TestDomainHydratePAP(t *testing.T) {
	dir := t.TempDir()
	lg, err := store.Open(dir, store.Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, err := NewDomain("hospital-a", newDetRand(1), epoch, later)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.HydratePAP(lg); err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ id, res string }{
		{"p-records", "records"}, {"p-labs", "labs"}, {"p-wards", "wards"},
		{"p-archive", "archive"}, {"p-billing", "billing"},
	} {
		if _, err := first.PAP.Put(persistPolicy(p.id, p.res)); err != nil {
			t.Fatal(err)
		}
	}
	if err := first.PAP.Delete("p-billing"); err != nil {
		t.Fatal(err)
	}
	read := func(d *Domain, res string) policy.Decision {
		return d.PDP.Decide(context.Background(), policy.NewAccessRequest("alice", res, "read")).Decision
	}
	if got := read(first, "records"); got != policy.DecisionPermit {
		t.Fatalf("records pre-crash = %v", got)
	}
	// kill -9: no graceful close, no final compaction.
	if err := lg.Crash(); err != nil {
		t.Fatal(err)
	}

	rlg, err := store.Open(dir, store.Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rlg.Close()
	if rlg.Stats().RecoveredSnapshot == 0 || rlg.Stats().RecoveredTail == 0 {
		t.Fatalf("want snapshot and tail both exercised: %+v", rlg.Stats())
	}
	second, err := NewDomain("hospital-a", newDetRand(2), epoch, later)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.HydratePAP(rlg); err != nil {
		t.Fatal(err)
	}
	for res, want := range map[string]policy.Decision{
		"records": policy.DecisionPermit,
		"labs":    policy.DecisionPermit,
		"billing": policy.DecisionNotApplicable, // deleted pre-crash: must not resurrect
	} {
		if got := read(second, res); got != want {
			t.Fatalf("%s after recovery = %v, want %v", res, got, want)
		}
	}
	if st := second.PDP.Stats(); st.Updates == 0 {
		t.Fatalf("tail did not replay through the delta path: %+v", st)
	}
	// The domain's normal watcher pipeline keeps working, now durably.
	if _, err := second.PAP.Put(persistPolicy("p-icu", "icu")); err != nil {
		t.Fatal(err)
	}
	if got := read(second, "icu"); got != policy.DecisionPermit {
		t.Fatalf("post-recovery put = %v", got)
	}
	if rlg.Stats().LastSeq != 7 {
		t.Fatalf("LastSeq = %d, want 7 (6 pre-crash + 1 post-recovery)", rlg.Stats().LastSeq)
	}
}
