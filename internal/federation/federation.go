// Package federation is the multi-domain layer of Fig. 1 in the paper: it
// assembles autonomous domains — each with its own Identity Provider,
// Policy Administration Point, Policy Decision Point and Policy
// Enforcement Point — into a Virtual Organisation with cross-certified
// trust, a VO-level policy, a PDP discovery registry, a delegation
// registry and a consolidated audit log.
//
// Two authorisation flows are provided, matching Figs. 2 and 3:
//
//   - the pull (policy-issuing) flow: the resource domain's PEP queries
//     its PDP per access; cross-domain subjects cost an extra attribute
//     round-trip to the subject's home Identity Provider; the local
//     decision is then combined with the VO policy under domain autonomy
//     (a local or VO deny is final, access requires a local permit);
//   - the push (capability-issuing) flow: the client first obtains a
//     signed capability from the VO capability service, then presents it
//     to the resource PEP, which validates it locally without contacting
//     any PDP.
//
// Every hop is a wire envelope on the simulated network, so experiments
// observe the exact message counts and virtual latencies the paper's
// Communication Performance section reasons about.
package federation

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/assertion"
	"repro/internal/audit"
	"repro/internal/capability"
	"repro/internal/delegation"
	"repro/internal/pap"
	"repro/internal/pdp"
	"repro/internal/pip"
	"repro/internal/pki"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/xacml"
)

// Federation errors, matched with errors.Is.
var (
	// ErrUnknownDomain reports a request routed to an unregistered
	// domain.
	ErrUnknownDomain = errors.New("federation: unknown domain")
	// ErrDenied reports a refused access.
	ErrDenied = errors.New("federation: access denied")
)

// Node-name helpers: every component is addressable on the network.

// PEPAddr returns the network name of a domain's enforcement point.
func PEPAddr(domain string) string { return "pep." + domain }

// PDPAddr returns the network name of a domain's decision point.
func PDPAddr(domain string) string { return "pdp." + domain }

// IdPAddr returns the network name of a domain's identity provider.
func IdPAddr(domain string) string { return "idp." + domain }

// ClientAddr returns the network name of a domain's client gateway.
func ClientAddr(domain string) string { return "client." + domain }

// Domain is one autonomous member of the Virtual Organisation.
type Domain struct {
	// Name identifies the domain.
	Name string
	// CA is the domain's certificate authority, cross-certified into
	// the VO trust store on admission.
	CA *pki.Authority
	// Directory is the domain's Identity Provider.
	Directory *pip.Directory
	// PAP is the domain's administration point.
	PAP *pap.Store
	// PDP is the domain's decision engine.
	PDP *pdp.Engine

	vo *VO

	deciderMu sync.RWMutex
	decider   Decider

	pipMu sync.RWMutex
	pip   policy.Resolver

	refreshMu    sync.Mutex
	refreshErrs  atomic.Int64
	onRefreshErr func(error)
}

// Decider abstracts where a domain's decisions come from: the single PDP
// engine (the default) or a replicated ha.Ensemble installed for
// dependability. The resolver threads per-call cross-domain attribute
// retrieval; ctx bounds the decision, resolver round-trips included.
type Decider interface {
	DecideAtWith(ctx context.Context, req *policy.Request, at time.Time, resolver policy.Resolver) policy.Result
}

// UseDecider replaces the domain's decision source; a nil decider restores
// the built-in PDP engine.
func (d *Domain) UseDecider(dec Decider) {
	d.deciderMu.Lock()
	defer d.deciderMu.Unlock()
	d.decider = dec
}

// currentDecider returns the active decision source.
func (d *Domain) currentDecider() Decider {
	d.deciderMu.RLock()
	defer d.deciderMu.RUnlock()
	if d.decider != nil {
		return d.decider
	}
	return d.PDP
}

// UsePIP attaches an information point consulted during this domain's
// decisions for attributes neither the request nor the Directory supplies
// — the hook through which resource metadata stores, access-history
// providers and external attribute authorities join the live resolution
// path. A nil resolver detaches it. Chains built from pip providers
// (typically behind a pip.Cache) are the intended argument.
func (d *Domain) UsePIP(p policy.Resolver) {
	d.pipMu.Lock()
	defer d.pipMu.Unlock()
	d.pip = p
}

// currentPIP returns the attached information point, or nil.
func (d *Domain) currentPIP() policy.Resolver {
	d.pipMu.RLock()
	defer d.pipMu.RUnlock()
	return d.pip
}

// NewDomain builds a domain with a fresh CA (deterministic from the
// entropy source), an empty directory and an empty PAP. Policies put into
// the PAP reach the PDP through the incremental delta pipeline: each
// pap.Update patches the one affected root child in place (invalidating
// only the cached decisions its resource keys constrain), falling back to
// a full BuildRoot+SetRoot only when the PDP has no patchable root yet.
// Refresh failures are counted and reported through OnRefreshError, so a
// PDP silently serving stale policy is observable.
func NewDomain(name string, entropy io.Reader, notBefore, notAfter time.Time) (*Domain, error) {
	ca, err := pki.NewRootAuthority("ca."+name, entropy, notBefore, notAfter)
	if err != nil {
		return nil, fmt.Errorf("federation: domain %s: %w", name, err)
	}
	d := &Domain{
		Name:      name,
		CA:        ca,
		Directory: pip.NewDirectory(IdPAddr(name)),
		PAP:       pap.NewStore("pap." + name),
		PDP:       pdp.New(PDPAddr(name)),
	}
	d.PAP.Watch(func(u pap.Update) {
		if err := ApplyPAPUpdate(d.PDP, d.PAP, u, d.Name+"-root"); err != nil {
			d.ReportRefreshError(err)
		}
	})
	return d, nil
}

// ApplyPAPUpdate pushes one store change into a decision point through
// pap.Apply with the domain convention (deny-overrides combining): the
// delta path, rebuilding the root from the store only when the target
// cannot be patched incrementally.
func ApplyPAPUpdate(point pap.RootInstaller, store *pap.Store, u pap.Update, rootID string) error {
	return pap.Apply(point, store, u, rootID, policy.DenyOverrides)
}

// ReportRefreshError records a failed PAP→PDP refresh: the PDP may be
// serving stale policy. Exported so the core facade's replicated deciders
// report through the same counter.
func (d *Domain) ReportRefreshError(err error) {
	d.refreshErrs.Add(1)
	d.refreshMu.Lock()
	cb := d.onRefreshErr
	d.refreshMu.Unlock()
	if cb != nil {
		cb(err)
	}
}

// RefreshErrors reports how many PAP→PDP refreshes have failed since the
// domain was built.
func (d *Domain) RefreshErrors() int64 { return d.refreshErrs.Load() }

// OnRefreshError registers a callback invoked with every refresh failure,
// for alerting on stale-policy serving; a nil fn clears it.
func (d *Domain) OnRefreshError(fn func(error)) {
	d.refreshMu.Lock()
	defer d.refreshMu.Unlock()
	d.onRefreshErr = fn
}

// VO is a Virtual Organisation: the federation of domains.
type VO struct {
	// Name identifies the organisation.
	Name string
	// Net is the shared simulated network.
	Net *wire.Network
	// Trust holds every member CA plus the VO's own.
	Trust *pki.TrustStore
	// Delegation tracks cross-domain administrative delegation rooted
	// at the VO authority.
	Delegation *delegation.Registry
	// Audit is the consolidated audit log.
	Audit *audit.Log

	ca      *pki.Authority
	voPDP   *pdp.Engine
	capKey  pki.KeyPair
	capCert *pki.Certificate

	mu      sync.RWMutex
	domains map[string]*Domain
}

// CASAddr returns the network name of the VO capability service.
func (vo *VO) CASAddr() string { return "cas." + vo.Name }

// NewVO builds a Virtual Organisation on the given network. The VO policy
// defaults to permit-unless-deny (the VO only vetoes; domains decide), and
// can be replaced with SetVOPolicy.
func NewVO(name string, net *wire.Network, entropy io.Reader, notBefore, notAfter time.Time) (*VO, error) {
	ca, err := pki.NewRootAuthority("ca."+name, entropy, notBefore, notAfter)
	if err != nil {
		return nil, fmt.Errorf("federation: vo %s: %w", name, err)
	}
	capKey, err := pki.GenerateKeyPair(entropy)
	if err != nil {
		return nil, fmt.Errorf("federation: vo %s: %w", name, err)
	}
	vo := &VO{
		Name:       name,
		Net:        net,
		Trust:      pki.NewTrustStore(),
		Delegation: delegation.NewRegistry(),
		Audit:      audit.NewLog(0),
		ca:         ca,
		voPDP:      pdp.New("pdp." + name),
		capKey:     capKey,
		domains:    make(map[string]*Domain),
	}
	vo.Trust.AddRoot(ca.Certificate())
	vo.capCert = ca.Issue("cas."+name, capKey.Public, notBefore, notAfter, false)
	vo.Delegation.AddRoot("authority." + name)
	_ = vo.voPDP.SetRoot(policy.NewPolicySet(name + "-vo-policy").Combining(policy.PermitUnlessDeny).Build())
	net.Register(vo.CASAddr(), vo.handleCapabilityRequest)
	return vo, nil
}

// CapabilityCert returns the capability service's certificate, which
// member PEPs trust.
func (vo *VO) CapabilityCert() *pki.Certificate { return vo.capCert }

// SetVOPolicy installs the organisation-wide policy evaluated alongside
// every domain decision.
func (vo *VO) SetVOPolicy(root policy.Evaluable) error {
	return vo.voPDP.SetRoot(root)
}

// AddDomain admits a domain: its CA is cross-certified into the VO trust
// store, its components are registered on the network, and it is listed in
// the PDP discovery registry.
func (vo *VO) AddDomain(d *Domain) {
	vo.mu.Lock()
	vo.domains[d.Name] = d
	vo.mu.Unlock()
	d.vo = vo
	vo.Trust.AddRoot(d.CA.Certificate())
	vo.Delegation.AddRoot("authority." + d.Name)

	vo.Net.Register(ClientAddr(d.Name), func(_ context.Context, _ *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
		return &wire.Envelope{Action: "ack", Timestamp: env.Timestamp}, nil
	})
	vo.Net.Register(IdPAddr(d.Name), d.handleAttributeQuery)
	vo.Net.Register(PDPAddr(d.Name), d.handleDecide)
	vo.Net.Register(PEPAddr(d.Name), d.handleAccess)
}

// Domain looks a member up in the discovery registry.
func (vo *VO) Domain(name string) (*Domain, bool) {
	vo.mu.RLock()
	defer vo.mu.RUnlock()
	d, ok := vo.domains[name]
	return d, ok
}

// Domains lists member names, sorted.
func (vo *VO) Domains() []string {
	vo.mu.RLock()
	defer vo.mu.RUnlock()
	out := make([]string, 0, len(vo.domains))
	for n := range vo.domains {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- attribute retrieval across domains ---

type attrQuery struct {
	Subject  string `json:"subject"`
	Category string `json:"category"`
	Name     string `json:"name"`
}

type attrReply struct {
	Values []struct {
		Kind string `json:"kind"`
		Text string `json:"value"`
	} `json:"values"`
}

// handleAttributeQuery serves the domain's IdP attributes over the wire.
func (d *Domain) handleAttributeQuery(ctx context.Context, _ *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
	var q attrQuery
	if err := json.Unmarshal(env.Body, &q); err != nil {
		return nil, fmt.Errorf("federation: idp %s: %w", d.Name, err)
	}
	cat, err := policy.CategoryFromString(q.Category)
	if err != nil {
		return nil, err
	}
	probe := policy.NewRequest().Add(policy.CategorySubject, policy.AttrSubjectID, policy.String(q.Subject))
	bag, err := d.Directory.ResolveAttribute(ctx, probe, cat, q.Name)
	if err != nil {
		return nil, err
	}
	var reply attrReply
	for _, v := range bag {
		reply.Values = append(reply.Values, struct {
			Kind string `json:"kind"`
			Text string `json:"value"`
		}{Kind: v.Kind().String(), Text: v.String()})
	}
	body, err := json.Marshal(&reply)
	if err != nil {
		return nil, err
	}
	return &wire.Envelope{Action: "idp:attributes", Timestamp: env.Timestamp, Body: body}, nil
}

// crossDomainResolver resolves subject attributes from the subject's home
// IdP: locally when the subject is home, over the network otherwise.
type crossDomainResolver struct {
	local *Domain
	call  *wire.Call
	at    time.Time
}

var _ policy.Resolver = (*crossDomainResolver)(nil)

func (r *crossDomainResolver) ResolveAttribute(ctx context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	if cat != policy.CategorySubject || req == nil {
		// Non-subject attributes never cross domains; the domain's own
		// information point (if any) is their only source.
		return r.localPIP(ctx, req, cat, name)
	}
	home := ""
	if bag, ok := req.Get(policy.CategorySubject, policy.AttrSubjectDomain); ok && !bag.Empty() {
		home = bag[0].String()
	}
	if home == "" || home == r.local.Name {
		bag, err := r.local.Directory.ResolveAttribute(ctx, req, cat, name)
		if err != nil || !bag.Empty() {
			return bag, err
		}
		return r.localPIP(ctx, req, cat, name)
	}
	vo := r.local.vo
	if vo == nil {
		return nil, fmt.Errorf("federation: domain %s not in a VO", r.local.Name)
	}
	if _, ok := vo.Domain(home); !ok {
		return nil, fmt.Errorf("federation: subject domain %s: %w", home, ErrUnknownDomain)
	}
	q := attrQuery{Subject: req.SubjectID(), Category: cat.String(), Name: name}
	body, err := json.Marshal(&q)
	if err != nil {
		return nil, err
	}
	reply, err := vo.Net.Send(ctx, r.call, &wire.Envelope{
		From:      PDPAddr(r.local.Name),
		To:        IdPAddr(home),
		Action:    "idp:query",
		Timestamp: r.at,
		Body:      body,
	})
	if err != nil {
		return nil, err
	}
	var ar attrReply
	if err := json.Unmarshal(reply.Body, &ar); err != nil {
		return nil, err
	}
	bag := make(policy.Bag, 0, len(ar.Values))
	for _, v := range ar.Values {
		kind, err := policy.KindFromString(v.Kind)
		if err != nil {
			return nil, err
		}
		val, err := policy.ParseValue(kind, v.Text)
		if err != nil {
			return nil, err
		}
		bag = append(bag, val)
	}
	return bag, nil
}

// localPIP consults the domain's attached information point, if any.
func (r *crossDomainResolver) localPIP(ctx context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	if p := r.local.currentPIP(); p != nil {
		return p.ResolveAttribute(ctx, req, cat, name)
	}
	return nil, nil
}

// --- the pull flow ---

// armDeadline translates a caller context deadline into the envelope's
// Deadline budget (when the envelope does not already carry one), so the
// simulated network's virtual clock enforces the same bound a real
// transport would. Every client-facing flow entry point uses it.
func armDeadline(ctx context.Context, env *wire.Envelope) *wire.Envelope {
	if env.Deadline > 0 {
		return env
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			env.Deadline = rem
		}
	}
	return env
}

// combine applies domain autonomy: access requires a local permit and
// survives only if the VO policy does not veto it.
func combine(local, vo policy.Result) policy.Result {
	if local.Decision != policy.DecisionPermit {
		return local
	}
	if vo.Decision == policy.DecisionDeny || vo.Decision == policy.DecisionIndeterminate {
		return vo
	}
	return local
}

// handleDecide answers authorisation decision queries at the domain PDP,
// consulting foreign IdPs and the VO policy as needed. The cross-domain
// resolver is fronted by a per-request memo (pip.RequestResolver), so an
// attribute fetched for the local decision is not fetched again when the
// VO policy consults it — one IdP round-trip per attribute per request.
func (d *Domain) handleDecide(ctx context.Context, call *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
	req, err := xacml.UnmarshalRequestJSON(env.Body)
	if err != nil {
		return nil, err
	}
	resolver := pip.NewRequestResolver(&crossDomainResolver{local: d, call: call, at: env.Timestamp})
	local := d.currentDecider().DecideAtWith(ctx, req, env.Timestamp, resolver)
	var final policy.Result
	if d.vo != nil {
		voRes := d.vo.voPDP.DecideAtWith(ctx, req, env.Timestamp, resolver)
		final = combine(local, voRes)
	} else {
		final = local
	}
	body, err := xacml.MarshalResponseJSON(final)
	if err != nil {
		return nil, err
	}
	return &wire.Envelope{Action: "pdp:decision", Timestamp: env.Timestamp, Body: body}, nil
}

// handleAccess is the domain PEP: it receives resource access requests,
// obtains a decision from the domain PDP (one wire round-trip), enforces
// deny-bias and records the audit event.
func (d *Domain) handleAccess(ctx context.Context, call *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
	req, err := xacml.UnmarshalRequestJSON(env.Body)
	if err != nil {
		return nil, err
	}
	startElapsed := call.Elapsed
	reply, err := d.vo.Net.Send(ctx, call, &wire.Envelope{
		From:      PEPAddr(d.Name),
		To:        PDPAddr(d.Name),
		Action:    "pdp:decide",
		Timestamp: env.Timestamp,
		Body:      env.Body,
	})
	var res policy.Result
	if err != nil {
		res = policy.Result{Decision: policy.DecisionIndeterminate, Err: err}
	} else {
		res, err = xacml.UnmarshalResponseJSON(reply.Body)
		if err != nil {
			return nil, err
		}
	}
	d.vo.Audit.Record(audit.Event{
		Time:      env.Timestamp,
		Domain:    d.Name,
		Component: PEPAddr(d.Name),
		Subject:   req.SubjectID(),
		Resource:  req.ResourceID(),
		Action:    req.ActionID(),
		Decision:  res.Decision,
		By:        res.By,
		Latency:   call.Elapsed - startElapsed,
		TraceID:   trace.CurrentID(ctx),
	})
	body, err := xacml.MarshalResponseJSON(res)
	if err != nil {
		return nil, err
	}
	return &wire.Envelope{Action: "resource:response", Timestamp: env.Timestamp, Body: body}, nil
}

// Outcome reports one federated access attempt.
type Outcome struct {
	// Allowed reports whether the access proceeded.
	Allowed bool
	// Decision is the combined decision.
	Decision policy.Decision
	// By attributes the decision.
	By string
	// Latency is the virtual end-to-end latency; Messages and Bytes
	// count wire traffic for this access.
	Latency  time.Duration
	Messages int
	Bytes    int
	// Err explains refusals.
	Err error
}

// Request runs the pull-model flow of Fig. 3: the client in clientDomain
// accesses a resource in the domain named by the request's
// resource-domain attribute. ctx bounds the whole flow; a ctx deadline is
// additionally translated into an envelope deadline budget, so every hop
// of the flow (PEP → PDP → foreign IdP) spends the one budget on the
// network's virtual clock and an over-budget flow fails closed.
func (vo *VO) Request(ctx context.Context, clientDomain string, req *policy.Request, at time.Time) Outcome {
	resourceDomain := ""
	if bag, ok := req.Get(policy.CategoryResource, policy.AttrResourceDomain); ok && !bag.Empty() {
		resourceDomain = bag[0].String()
	}
	if _, ok := vo.Domain(resourceDomain); !ok {
		return Outcome{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("federation: resource domain %q: %w", resourceDomain, ErrUnknownDomain)}
	}
	body, err := xacml.MarshalRequestJSON(req)
	if err != nil {
		return Outcome{Decision: policy.DecisionIndeterminate, Err: err}
	}
	call := &wire.Call{}
	env := armDeadline(ctx, &wire.Envelope{
		From:      ClientAddr(clientDomain),
		To:        PEPAddr(resourceDomain),
		Action:    "resource:access",
		Timestamp: at,
		Body:      body,
	})
	reply, err := vo.Net.Send(ctx, call, env)
	out := Outcome{Latency: call.Elapsed, Messages: call.Messages, Bytes: call.Bytes}
	if err != nil {
		out.Decision = policy.DecisionIndeterminate
		out.Err = err
		return out
	}
	res, err := xacml.UnmarshalResponseJSON(reply.Body)
	if err != nil {
		out.Decision = policy.DecisionIndeterminate
		out.Err = err
		return out
	}
	out.Decision = res.Decision
	out.By = res.By
	if res.Decision == policy.DecisionPermit {
		out.Allowed = true
	} else {
		out.Err = fmt.Errorf("federation: %s on %s by %s: %s: %w",
			req.ActionID(), req.ResourceID(), req.SubjectID(), res.Decision, ErrDenied)
	}
	return out
}

// --- the push flow ---

// handleCapabilityRequest serves the VO capability service over the wire:
// the body is a request context; the reply is a signed capability
// assertion or a refusal.
func (vo *VO) handleCapabilityRequest(ctx context.Context, call *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
	req, err := xacml.UnmarshalRequestJSON(env.Body)
	if err != nil {
		return nil, err
	}
	resourceDomain := ""
	if bag, ok := req.Get(policy.CategoryResource, policy.AttrResourceDomain); ok && !bag.Empty() {
		resourceDomain = bag[0].String()
	}
	d, ok := vo.Domain(resourceDomain)
	if !ok {
		return nil, fmt.Errorf("federation: capability for domain %q: %w", resourceDomain, ErrUnknownDomain)
	}
	// The CAS pre-screens against the same combined view the pull flow
	// enforces: resource-domain policy plus VO policy, sharing one
	// per-request attribute memo across both evaluations.
	resolver := pip.NewRequestResolver(&crossDomainResolver{local: d, call: call, at: env.Timestamp})
	local := d.PDP.DecideAtWith(ctx, req, env.Timestamp, resolver)
	final := combine(local, vo.voPDP.DecideAtWith(ctx, req, env.Timestamp, resolver))
	if final.Decision != policy.DecisionPermit {
		return nil, fmt.Errorf("federation: capability refused: %s: %w", final.Decision, capability.ErrNotAuthorized)
	}
	now := env.Timestamp
	a := &assertion.Assertion{
		ID:           vo.Net.NextMessageID("cap"),
		Issuer:       "cas." + vo.Name,
		Subject:      req.SubjectID(),
		IssuedAt:     now,
		NotBefore:    now,
		NotOnOrAfter: now.Add(15 * time.Minute),
		Audience:     PEPAddr(resourceDomain),
		Decision: &assertion.AuthzDecision{
			Resource: req.ResourceID(),
			Action:   req.ActionID(),
			Decision: policy.DecisionPermit,
		},
	}
	a.Sign(vo.capKey)
	body, err := assertion.MarshalXML(a)
	if err != nil {
		return nil, err
	}
	return &wire.Envelope{Action: "cas:capability", Timestamp: env.Timestamp, Body: body}, nil
}

// RequestCapability obtains a capability from the VO capability service
// (steps I-II of Fig. 2), returning it with the traffic spent.
func (vo *VO) RequestCapability(ctx context.Context, clientDomain string, req *policy.Request, at time.Time) (*assertion.Assertion, Outcome) {
	body, err := xacml.MarshalRequestJSON(req)
	if err != nil {
		return nil, Outcome{Decision: policy.DecisionIndeterminate, Err: err}
	}
	call := &wire.Call{}
	reply, err := vo.Net.Send(ctx, call, armDeadline(ctx, &wire.Envelope{
		From:      ClientAddr(clientDomain),
		To:        vo.CASAddr(),
		Action:    "cas:request",
		Timestamp: at,
		Body:      body,
	}))
	out := Outcome{Latency: call.Elapsed, Messages: call.Messages, Bytes: call.Bytes}
	if err != nil {
		out.Decision = policy.DecisionIndeterminate
		out.Err = err
		return nil, out
	}
	a, err := assertion.UnmarshalXML(reply.Body)
	if err != nil {
		out.Decision = policy.DecisionIndeterminate
		out.Err = err
		return nil, out
	}
	out.Allowed = true
	out.Decision = policy.DecisionPermit
	return a, out
}

// RequestWithCapability presents a previously issued capability to the
// resource PEP (steps III-IV of Fig. 2). Validation is local to the PEP:
// no PDP round-trip occurs.
func (vo *VO) RequestWithCapability(ctx context.Context, clientDomain string, req *policy.Request, cap *assertion.Assertion, at time.Time) Outcome {
	resourceDomain := ""
	if bag, ok := req.Get(policy.CategoryResource, policy.AttrResourceDomain); ok && !bag.Empty() {
		resourceDomain = bag[0].String()
	}
	d, ok := vo.Domain(resourceDomain)
	if !ok {
		return Outcome{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("federation: resource domain %q: %w", resourceDomain, ErrUnknownDomain)}
	}
	capBody, err := assertion.MarshalXML(cap)
	if err != nil {
		return Outcome{Decision: policy.DecisionIndeterminate, Err: err}
	}
	call := &wire.Call{}
	env := armDeadline(ctx, &wire.Envelope{
		From:      ClientAddr(clientDomain),
		To:        PEPAddr(resourceDomain) + ".push",
		Action:    "resource:access-with-capability",
		Timestamp: at,
		Body:      capBody,
	})
	// The push endpoint is registered lazily per domain.
	vo.ensurePushEndpoint(d)
	reply, err := vo.Net.Send(ctx, call, env)
	out := Outcome{Latency: call.Elapsed, Messages: call.Messages, Bytes: call.Bytes}
	if err != nil {
		out.Decision = policy.DecisionIndeterminate
		out.Err = err
		return out
	}
	res, err := xacml.UnmarshalResponseJSON(reply.Body)
	if err != nil {
		out.Decision = policy.DecisionIndeterminate
		out.Err = err
		return out
	}
	out.Decision = res.Decision
	out.By = res.By
	if res.Decision == policy.DecisionPermit {
		out.Allowed = true
	} else {
		out.Err = fmt.Errorf("federation: capability access: %s: %w", res.Decision, ErrDenied)
	}
	// The push endpoint cannot see the original request; sufficiency is
	// validated against the capability's own statement, so bind the
	// outcome to the request here.
	if out.Allowed && (cap.Decision == nil || cap.Decision.Resource != req.ResourceID() || cap.Decision.Action != req.ActionID() || cap.Subject != req.SubjectID()) {
		out.Allowed = false
		out.Decision = policy.DecisionDeny
		out.Err = fmt.Errorf("federation: capability does not match request: %w", ErrDenied)
	}
	return out
}

func (vo *VO) ensurePushEndpoint(d *Domain) {
	name := PEPAddr(d.Name) + ".push"
	validator := capability.NewValidator(vo.Trust, PEPAddr(d.Name), vo.capCert)
	vo.Net.Register(name, func(ctx context.Context, call *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
		a, err := assertion.UnmarshalXML(env.Body)
		var res policy.Result
		if err != nil {
			res = policy.Result{Decision: policy.DecisionIndeterminate, Err: err}
		} else if a.Decision == nil {
			res = policy.Result{Decision: policy.DecisionDeny, Err: capability.ErrNoDecision, By: a.Issuer}
		} else if verr := validator.ValidateCapability(a, a.Decision.Resource, a.Decision.Action, env.Timestamp); verr != nil {
			res = policy.Result{Decision: policy.DecisionDeny, Err: verr, By: a.Issuer}
		} else {
			res = policy.Result{Decision: policy.DecisionPermit, By: a.Issuer}
		}
		subject, resource, action := "", "", ""
		if a != nil {
			subject = a.Subject
			if a.Decision != nil {
				resource, action = a.Decision.Resource, a.Decision.Action
			}
		}
		vo.Audit.Record(audit.Event{
			Time: env.Timestamp, Domain: d.Name, Component: name,
			Subject: subject, Resource: resource, Action: action,
			Decision: res.Decision, By: res.By,
			TraceID: trace.CurrentID(ctx),
		})
		body, err := xacml.MarshalResponseJSON(res)
		if err != nil {
			return nil, err
		}
		return &wire.Envelope{Action: "resource:response", Timestamp: env.Timestamp, Body: body}, nil
	})
}
