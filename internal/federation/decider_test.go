package federation

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ha"
	"repro/internal/policy"
)

// stubDecider counts calls and returns a fixed result, standing in for a
// replicated ensemble.
type stubDecider struct {
	calls int64
	res   policy.Result
}

func (s *stubDecider) DecideAtWith(context.Context, *policy.Request, time.Time, policy.Resolver) policy.Result {
	atomic.AddInt64(&s.calls, 1)
	return s.res
}

func TestUseDeciderReplacesAndRestoresDecisionSource(t *testing.T) {
	vo, a, _ := twoHospitalVO(t)
	req := recordReq("alice", "hospital-a")

	// Baseline: the built-in PDP permits alice.
	if out := vo.Request(context.Background(), "hospital-a", req, at); !out.Allowed {
		t.Fatalf("baseline refused: %v", out.Err)
	}

	// A replacement decider takes over the domain's decisions entirely.
	stub := &stubDecider{res: policy.Result{Decision: policy.DecisionDeny, By: "stub"}}
	a.UseDecider(stub)
	out := vo.Request(context.Background(), "hospital-a", req, at.Add(time.Second))
	if out.Allowed {
		t.Fatal("stub decider's deny was ignored")
	}
	if !errors.Is(out.Err, ErrDenied) || out.By != "stub" {
		t.Errorf("outcome = %+v, want deny by stub", out)
	}
	if atomic.LoadInt64(&stub.calls) != 1 {
		t.Errorf("stub decider calls = %d, want 1", stub.calls)
	}

	// nil restores the built-in PDP.
	a.UseDecider(nil)
	if out := vo.Request(context.Background(), "hospital-a", req, at.Add(2*time.Second)); !out.Allowed {
		t.Fatalf("restored PDP refused: %v", out.Err)
	}
}

func TestUseDeciderWithReplicatedEnsemble(t *testing.T) {
	// The dependability deployment: the domain decides through a failover
	// ensemble whose primary is crashed; traffic must keep flowing.
	vo, a, _ := twoHospitalVO(t)

	primary := ha.NewFailable("pdp-a-1", a.PDP)
	backup := ha.NewFailable("pdp-a-2", a.PDP)
	ens := ha.NewEnsemble("ens-a", ha.Failover, primary, backup)
	a.UseDecider(ens)

	primary.SetDown(true)
	out := vo.Request(context.Background(), "hospital-b", recordReq("bob", "hospital-b"), at)
	if !out.Allowed {
		t.Fatalf("cross-domain read through ensemble with crashed primary refused: %v", out.Err)
	}
	if got := ens.Stats().Failovers; got == 0 {
		t.Error("expected at least one failover")
	}
}

func TestCapabilityCertVerifiesAgainstVOTrust(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	cert := vo.CapabilityCert()
	if cert == nil {
		t.Fatal("nil capability certificate")
	}
	if cert.Subject != vo.CASAddr() {
		t.Errorf("subject = %q, want %q", cert.Subject, vo.CASAddr())
	}
	if err := vo.Trust.VerifyChain(cert, nil, at); err != nil {
		t.Errorf("capability cert does not verify against VO trust: %v", err)
	}
}
