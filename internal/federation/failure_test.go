package federation

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/wire"
)

// Failure-path behaviour of the federation flows: every infrastructure
// fault must end in a refusal (fail closed), never a permit and never a
// hang.

func TestRequestWithoutResourceDomain(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	req := policy.NewAccessRequest("alice", "rec-7", "read") // no resource-domain
	out := vo.Request(context.Background(), "hospital-a", req, at)
	if out.Allowed {
		t.Fatal("domainless request permitted")
	}
	if !errors.Is(out.Err, ErrUnknownDomain) {
		t.Errorf("err = %v, want ErrUnknownDomain", out.Err)
	}
}

func TestRequestToUnknownDomain(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	req := policy.NewAccessRequest("alice", "rec-7", "read").
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("hospital-z"))
	if out := vo.Request(context.Background(), "hospital-a", req, at); !errors.Is(out.Err, ErrUnknownDomain) {
		t.Errorf("err = %v, want ErrUnknownDomain", out.Err)
	}
}

func TestSubjectFromUnknownDomainFailsClosed(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	req := policy.NewAccessRequest("ghost", "rec-7", "read").
		Add(policy.CategorySubject, policy.AttrSubjectDomain, policy.String("hospital-z")).
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("hospital-a")).
		Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record"))
	out := vo.Request(context.Background(), "hospital-a", req, at)
	if out.Allowed {
		t.Fatal("subject with unknown home domain permitted")
	}
}

func TestCrashedPDPFailsClosed(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	vo.Net.SetNodeDown(PDPAddr("hospital-a"), true)
	out := vo.Request(context.Background(), "hospital-a", recordReq("alice", "hospital-a"), at)
	if out.Allowed {
		t.Fatal("request permitted with the PDP down")
	}
	if out.Decision == policy.DecisionPermit {
		t.Errorf("decision = %v", out.Decision)
	}
}

func TestCrashedForeignIdPFailsClosed(t *testing.T) {
	// bob's attributes live in hospital-b; with that IdP down, the
	// cross-domain read must be refused, not permitted on empty
	// attributes.
	vo, _, _ := twoHospitalVO(t)
	vo.Net.SetNodeDown(IdPAddr("hospital-b"), true)
	out := vo.Request(context.Background(), "hospital-b", recordReq("bob", "hospital-b"), at)
	if out.Allowed {
		t.Fatal("cross-domain request permitted with the home IdP down")
	}
}

func TestCapabilityForUnknownDomainRefused(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	req := policy.NewAccessRequest("alice", "rec-7", "read").
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("hospital-z"))
	cap, out := vo.RequestCapability(context.Background(), "hospital-a", req, at)
	if cap != nil || out.Allowed {
		t.Fatalf("capability issued for unknown domain: %+v", out)
	}
}

func TestCapabilityRequestMismatchRefused(t *testing.T) {
	// A capability for rec-7/read presented with a request for rec-8 must
	// be refused by the outcome binding even though the token verifies.
	vo, _, _ := twoHospitalVO(t)
	issueReq := recordReq("alice", "hospital-a")
	cap, out := vo.RequestCapability(context.Background(), "hospital-a", issueReq, at)
	if cap == nil {
		t.Fatalf("issuance failed: %v", out.Err)
	}
	otherReq := policy.NewAccessRequest("alice", "rec-8", "read").
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("hospital-a"))
	out = vo.RequestWithCapability(context.Background(), "hospital-a", otherReq, cap, at.Add(time.Minute))
	if out.Allowed {
		t.Fatal("capability accepted for a different resource")
	}
	if !errors.Is(out.Err, ErrDenied) {
		t.Errorf("err = %v, want ErrDenied", out.Err)
	}
}

func TestPushToUnknownDomainRefused(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	cap, out := vo.RequestCapability(context.Background(), "hospital-a", recordReq("alice", "hospital-a"), at)
	if cap == nil {
		t.Fatalf("issuance failed: %v", out.Err)
	}
	req := policy.NewAccessRequest("alice", "rec-7", "read").
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("hospital-z"))
	if out := vo.RequestWithCapability(context.Background(), "hospital-a", req, cap, at); !errors.Is(out.Err, ErrUnknownDomain) {
		t.Errorf("err = %v, want ErrUnknownDomain", out.Err)
	}
}

func TestIdPRejectsMalformedQueries(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	send := func(body []byte) error {
		_, err := vo.Net.Send(context.Background(), &wire.Call{}, &wire.Envelope{
			From: ClientAddr("hospital-a"), To: IdPAddr("hospital-a"),
			Action: "idp:query", Timestamp: at, Body: body,
		})
		return err
	}
	if err := send([]byte("not json")); err == nil {
		t.Error("malformed attribute query accepted")
	}
	bad, err := json.Marshal(map[string]string{"subject": "alice", "category": "nowhere", "name": "role"})
	if err != nil {
		t.Fatal(err)
	}
	if err := send(bad); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestPEPRejectsMalformedAccessBody(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	_, err := vo.Net.Send(context.Background(), &wire.Call{}, &wire.Envelope{
		From: ClientAddr("hospital-a"), To: PEPAddr("hospital-a"),
		Action: "resource:access", Timestamp: at, Body: []byte("garbage"),
	})
	if err == nil {
		t.Error("malformed access body accepted")
	}
}
