package federation

import (
	"context"
	"testing"

	"repro/internal/pap"
	"repro/internal/policy"
)

func refreshPolicy(id, res, allowed string) *policy.Policy {
	return policy.NewPolicy(id).
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID(res)).
		Rule(policy.Permit("allow").When(policy.MatchActionID(allowed)).Build()).
		Rule(policy.Deny("default").Build()).
		Build()
}

// TestDomainPDPFollowsPAPIncrementally verifies the domain's PAP→PDP
// pipeline: the first update installs a root, later updates patch it in
// place (observable through the engine's Updates counter), and decisions
// always reflect the latest administered policy.
func TestDomainPDPFollowsPAPIncrementally(t *testing.T) {
	d, err := NewDomain("clinic", newDetRand(7), epoch, later)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PAP.Put(refreshPolicy("p-records", "records", "read")); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("alice", "records", "read")
	if got := d.PDP.DecideAt(context.Background(), req, at); got.Decision != policy.DecisionPermit {
		t.Fatalf("after first Put: %v", got.Decision)
	}
	// Flip to write-only: the revocation must reach the PDP as a delta.
	if _, err := d.PAP.Put(refreshPolicy("p-records", "records", "write")); err != nil {
		t.Fatal(err)
	}
	if got := d.PDP.DecideAt(context.Background(), req, at); got.Decision != policy.DecisionDeny {
		t.Fatalf("after revocation: %v, want deny", got.Decision)
	}
	if st := d.PDP.Stats(); st.Updates < 1 {
		t.Errorf("engine Updates = %d, want >= 1 (delta path, not rebuild)", st.Updates)
	}
	if err := d.PAP.Delete("p-records"); err != nil {
		t.Fatal(err)
	}
	if got := d.PDP.DecideAt(context.Background(), req, at); got.Decision != policy.DecisionNotApplicable {
		t.Fatalf("after delete: %v, want not-applicable", got.Decision)
	}
	if n := d.RefreshErrors(); n != 0 {
		t.Errorf("refresh errors = %d, want 0", n)
	}
}

// TestDomainRefreshErrorSurfaced drives the refresh pipeline into a
// failing rebuild and asserts the failure is counted and reported instead
// of swallowed — the stale-policy observability fix. The store is
// corrupted through a retained policy pointer, modelling an administered
// policy going bad between validation and reassembly.
func TestDomainRefreshErrorSurfaced(t *testing.T) {
	d, err := NewDomain("clinic", newDetRand(8), epoch, later)
	if err != nil {
		t.Fatal(err)
	}
	var reported []error
	d.OnRefreshError(func(err error) { reported = append(reported, err) })

	p1 := refreshPolicy("p-a", "records", "read")
	if _, err := d.PAP.Put(p1); err != nil {
		t.Fatal(err)
	}
	// Force the next refresh down the full-rebuild fallback (a bare
	// policy root cannot be patched incrementally) and corrupt the stored
	// policy so the rebuild fails.
	if err := d.PDP.SetRoot(refreshPolicy("standalone", "other", "read")); err != nil {
		t.Fatal(err)
	}
	p1.Combining = 0 // invalidates the copy held by the store

	if _, err := d.PAP.Put(refreshPolicy("p-b", "charts", "read")); err != nil {
		t.Fatal(err)
	}
	if n := d.RefreshErrors(); n != 1 {
		t.Fatalf("refresh errors = %d, want 1", n)
	}
	if len(reported) != 1 || reported[0] == nil {
		t.Fatalf("callback reports = %v, want one error", reported)
	}
	// The helper itself propagates the rebuild failure.
	pb, err := d.PAP.Get("p-b")
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyPAPUpdate(d.PDP, d.PAP, pap.Update{ID: "p-b", Version: 1, Policy: pb}, "clinic-root"); err == nil {
		t.Error("ApplyPAPUpdate with a corrupt store must fail")
	}
}
