package federation

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/pip"
	"repro/internal/policy"
	"repro/internal/wire"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

var (
	epoch = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	later = epoch.AddDate(1, 0, 0)
	at    = epoch.Add(time.Hour)
)

// twoHospitalVO builds the running multi-domain scenario: hospital-a hosts
// records and permits doctors (from any member domain) to read them;
// hospital-b provisions the visiting doctor bob.
func twoHospitalVO(t *testing.T) (*VO, *Domain, *Domain) {
	t.Helper()
	net := wire.NewNetwork(5*time.Millisecond, 1)
	vo, err := NewVO("med-vo", net, newDetRand(1), epoch, later)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewDomain("hospital-a", newDetRand(2), epoch, later)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDomain("hospital-b", newDetRand(3), epoch, later)
	if err != nil {
		t.Fatal(err)
	}
	vo.AddDomain(a)
	vo.AddDomain(b)

	a.Directory.AddSubject(pip.Subject{ID: "alice", Domain: "hospital-a", Roles: []string{"doctor"}})
	b.Directory.AddSubject(pip.Subject{ID: "bob", Domain: "hospital-b", Roles: []string{"doctor"}})
	b.Directory.AddSubject(pip.Subject{ID: "mallory", Domain: "hospital-b", Roles: []string{"visitor"}})

	if _, err := a.PAP.Put(policy.NewPolicy("records").
		Combining(policy.FirstApplicable).
		When(policy.MatchResource(policy.AttrResourceType, policy.String("patient-record"))).
		Rule(policy.Permit("doctors-read").
			When(policy.MatchRole("doctor"), policy.MatchActionID("read")).
			Build()).
		Rule(policy.Deny("default").Build()).
		Build()); err != nil {
		t.Fatal(err)
	}
	return vo, a, b
}

func recordReq(subject, subjectDomain string) *policy.Request {
	return policy.NewAccessRequest(subject, "rec-7", "read").
		Add(policy.CategorySubject, policy.AttrSubjectDomain, policy.String(subjectDomain)).
		Add(policy.CategoryResource, policy.AttrResourceDomain, policy.String("hospital-a")).
		Add(policy.CategoryResource, policy.AttrResourceType, policy.String("patient-record"))
}

func TestLocalDomainRequest(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	out := vo.Request(context.Background(), "hospital-a", recordReq("alice", "hospital-a"), at)
	if !out.Allowed {
		t.Fatalf("alice local read refused: %v", out.Err)
	}
	// client->pep, pep->pdp and back: 4 messages, no cross-domain IdP.
	if out.Messages != 4 {
		t.Errorf("messages = %d, want 4", out.Messages)
	}
	if out.Latency != 4*5*time.Millisecond {
		t.Errorf("latency = %v, want 20ms", out.Latency)
	}
}

func TestCrossDomainRequestCostsIdPRoundTrip(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	out := vo.Request(context.Background(), "hospital-b", recordReq("bob", "hospital-b"), at)
	if !out.Allowed {
		t.Fatalf("visiting doctor refused: %v", out.Err)
	}
	// The role is resolved from hospital-b's IdP: + 2 messages.
	if out.Messages != 6 {
		t.Errorf("messages = %d, want 6 (extra IdP round trip)", out.Messages)
	}
}

func TestCrossDomainDeniesNonDoctors(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	out := vo.Request(context.Background(), "hospital-b", recordReq("mallory", "hospital-b"), at)
	if out.Allowed {
		t.Fatal("visitor must be denied")
	}
	if !errors.Is(out.Err, ErrDenied) {
		t.Errorf("want ErrDenied, got %v", out.Err)
	}
}

func TestVOPolicyVetoes(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	// The VO forbids access to embargoed resources across the whole
	// organisation, even where local policy permits.
	if err := vo.SetVOPolicy(policy.NewPolicySet("vo-policy").
		Combining(policy.PermitUnlessDeny).
		Add(policy.NewPolicy("embargo").
			Combining(policy.PermitUnlessDeny).
			Rule(policy.Deny("embargoed").
				When(policy.MatchResource("embargoed", policy.String("true"))).
				Build()).
			Build()).
		Build()); err != nil {
		t.Fatal(err)
	}
	req := recordReq("alice", "hospital-a").
		Add(policy.CategoryResource, "embargoed", policy.String("true"))
	out := vo.Request(context.Background(), "hospital-a", req, at)
	if out.Allowed {
		t.Fatal("VO veto must hold")
	}
	// Without the embargo attribute the VO abstains and local permit wins.
	out = vo.Request(context.Background(), "hospital-a", recordReq("alice", "hospital-a"), at)
	if !out.Allowed {
		t.Fatalf("non-embargoed access: %v", out.Err)
	}
}

func TestDomainAutonomyLocalDenyIsFinal(t *testing.T) {
	vo, a, _ := twoHospitalVO(t)
	// A wide-open VO policy cannot override hospital-a's deny.
	if err := vo.SetVOPolicy(policy.NewPolicySet("vo-open").
		Combining(policy.PermitUnlessDeny).Build()); err != nil {
		t.Fatal(err)
	}
	_ = a
	out := vo.Request(context.Background(), "hospital-b", recordReq("mallory", "hospital-b"), at)
	if out.Allowed {
		t.Fatal("local deny must be final (domain autonomy)")
	}
}

func TestUnknownDomains(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	req := recordReq("alice", "hospital-a")
	req.Set(policy.CategoryResource, policy.AttrResourceDomain, policy.Singleton(policy.String("ghost")))
	out := vo.Request(context.Background(), "hospital-a", req, at)
	if !errors.Is(out.Err, ErrUnknownDomain) {
		t.Errorf("want ErrUnknownDomain, got %v", out.Err)
	}
	// Unknown subject domain surfaces as Indeterminate -> denied.
	req2 := recordReq("bob", "ghost-domain")
	out = vo.Request(context.Background(), "hospital-b", req2, at)
	if out.Allowed {
		t.Error("unknown subject domain must not be allowed")
	}
}

func TestPushFlowCapability(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	req := recordReq("bob", "hospital-b")

	cap, capOut := vo.RequestCapability(context.Background(), "hospital-b", req, at)
	if cap == nil {
		t.Fatalf("capability refused: %v", capOut.Err)
	}
	if capOut.Messages != 4 { // client->cas (+IdP round trip inside) ... verify
		// The CAS consults hospital-b's IdP for bob's role: 2 + 2.
		t.Errorf("capability messages = %d, want 4", capOut.Messages)
	}
	out := vo.RequestWithCapability(context.Background(), "hospital-b", req, cap, at)
	if !out.Allowed {
		t.Fatalf("capability access refused: %v", out.Err)
	}
	// Validation is PEP-local: just client->pep.push and back.
	if out.Messages != 2 {
		t.Errorf("access messages = %d, want 2", out.Messages)
	}

	// Reuse amortisation: k accesses cost 2 messages each after one
	// issuance — the push-vs-pull trade-off of Fig. 2/3.
	for i := 0; i < 3; i++ {
		if out := vo.RequestWithCapability(context.Background(), "hospital-b", req, cap, at.Add(time.Duration(i)*time.Minute)); !out.Allowed {
			t.Fatalf("reuse %d refused: %v", i, out.Err)
		}
	}
}

func TestPushFlowRefusesUnauthorised(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	req := recordReq("mallory", "hospital-b")
	if cap, out := vo.RequestCapability(context.Background(), "hospital-b", req, at); cap != nil {
		t.Fatalf("capability for visitor must be refused, got one (out=%+v)", out)
	}
}

func TestPushFlowRejectsMismatchedCapability(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	readReq := recordReq("bob", "hospital-b")
	cap, _ := vo.RequestCapability(context.Background(), "hospital-b", readReq, at)
	if cap == nil {
		t.Fatal("precondition: capability issued")
	}
	// Try to use the read capability for a write.
	writeReq := recordReq("bob", "hospital-b")
	writeReq.Set(policy.CategoryAction, policy.AttrActionID, policy.Singleton(policy.String("write")))
	out := vo.RequestWithCapability(context.Background(), "hospital-b", writeReq, cap, at)
	if out.Allowed {
		t.Fatal("capability must not cover a different action")
	}
	// Expired capability.
	out = vo.RequestWithCapability(context.Background(), "hospital-b", readReq, cap, at.Add(time.Hour))
	if out.Allowed {
		t.Fatal("expired capability must be refused")
	}
}

func TestAuditConsolidation(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	vo.Request(context.Background(), "hospital-a", recordReq("alice", "hospital-a"), at)
	vo.Request(context.Background(), "hospital-b", recordReq("mallory", "hospital-b"), at)
	sum := vo.Audit.Summarise()
	a := sum["hospital-a"]
	if a == nil || a.Permits != 1 || a.Denies != 1 {
		t.Errorf("consolidated audit for hospital-a = %+v", a)
	}
}

func TestPolicyUpdateRefreshesPDP(t *testing.T) {
	vo, a, _ := twoHospitalVO(t)
	out := vo.Request(context.Background(), "hospital-a", recordReq("alice", "hospital-a"), at)
	if !out.Allowed {
		t.Fatal("precondition")
	}
	// Hospital-a replaces its policy with a lockdown.
	if _, err := a.PAP.Put(policy.NewPolicy("records").
		Combining(policy.FirstApplicable).
		Rule(policy.Deny("lockdown").Build()).
		Build()); err != nil {
		t.Fatal(err)
	}
	out = vo.Request(context.Background(), "hospital-a", recordReq("alice", "hospital-a"), at.Add(time.Minute))
	if out.Allowed {
		t.Fatal("policy update must take effect via the PAP watch")
	}
}

func TestDiscoveryRegistry(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	got := vo.Domains()
	if len(got) != 2 || got[0] != "hospital-a" || got[1] != "hospital-b" {
		t.Errorf("Domains = %v", got)
	}
	if _, ok := vo.Domain("hospital-a"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := vo.Domain("ghost"); ok {
		t.Error("ghost domain found")
	}
}
