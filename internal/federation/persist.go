package federation

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/store"
)

// HydratePAP bootstraps the domain's policy base from a durable policy
// log: snapshot state hydrates the PAP and installs as the PDP root, the
// WAL tail replays through the incremental delta pipeline (the same
// pap.Apply path live administration uses), and the log becomes the PAP's
// backend so every later administrative write is durable before it is
// acknowledged. Call it on a fresh domain, before the first Put — a
// restarted domain then serves exactly the decisions it acknowledged
// before the crash instead of fail-closing on an empty base.
func (d *Domain) HydratePAP(lg *store.Log) error {
	if err := lg.Bootstrap(d.PAP, d.PDP, d.Name+"-root", policy.DenyOverrides); err != nil {
		return fmt.Errorf("federation: domain %s: %w", d.Name, err)
	}
	return nil
}
