package federation

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/wire"
	"repro/internal/xacml"
)

// TestWirePropagatedDeadlineFailsClosed is the satellite requirement: a
// deadline propagated through the envelope that is shorter than the
// injected network latency must surface as a refused (Indeterminate, not
// Permit) outcome — and, the network being virtual, must not burn real
// time doing it. Pre-refactor this exchange simply took the full latency;
// with a hung hop it took forever.
func TestWirePropagatedDeadlineFailsClosed(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	// Inject a slow client->PEP link: 5 virtual seconds one way.
	vo.Net.SetLink(ClientAddr("hospital-a"), PEPAddr("hospital-a"),
		wire.LinkProps{Latency: 5 * time.Second})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	out := vo.Request(ctx, "hospital-a", recordReq("alice", "hospital-a"), at)
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline-bounded request burned real time against a virtual link")
	}
	if out.Allowed {
		t.Fatal("request permitted although its budget could not cover the link")
	}
	if out.Decision == policy.DecisionPermit {
		t.Fatalf("decision = %v", out.Decision)
	}
	if !errors.Is(out.Err, wire.ErrDeadline) {
		t.Fatalf("err = %v, want wire.ErrDeadline", out.Err)
	}
}

// TestDeadlineCoversAllHopsOfPullFlow: the envelope budget is spent across
// the whole multi-hop pull flow (client -> PEP -> PDP -> IdP), not per
// hop: a budget that covers the first hop but not the flow's total virtual
// latency is refused. The budget is set directly on the envelope here to
// keep the test independent of real scheduling time.
func TestDeadlineCoversAllHopsOfPullFlow(t *testing.T) {
	vo, _, _ := twoHospitalVO(t)
	// Measure the flow's total virtual cost unbounded first.
	unbounded := vo.Request(context.Background(), "hospital-b", recordReq("bob", "hospital-b"), at)
	if !unbounded.Allowed {
		t.Fatalf("baseline cross-domain request refused: %v", unbounded.Err)
	}
	if unbounded.Latency <= 0 {
		t.Fatal("baseline latency not accounted")
	}

	body, err := xacml.MarshalRequestJSON(recordReq("bob", "hospital-b"))
	if err != nil {
		t.Fatal(err)
	}
	send := func(budget time.Duration) error {
		_, err := vo.Net.Send(context.Background(), &wire.Call{}, &wire.Envelope{
			From: ClientAddr("hospital-b"), To: PEPAddr("hospital-b"),
			Action: "resource:access", Timestamp: at, Body: body,
			Deadline: budget,
		})
		return err
	}
	// A generous budget covers the whole flow.
	if err := send(2 * unbounded.Latency); err != nil {
		t.Fatalf("over-budget flow failed: %v", err)
	}
	// A budget below the total (but above one hop) must fail closed with
	// the deadline cause.
	if err := send(unbounded.Latency / 2); !errors.Is(err, wire.ErrDeadline) {
		t.Fatalf("err = %v, want wire.ErrDeadline", err)
	}
}
