package federation

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestConcurrentFederatedTraffic drives local and cross-domain pull
// requests from parallel clients while an administrator republishes the
// records policy (which rebuilds the PDP root through the PAP watch).
// Decisions must remain principal-correct throughout: doctors always
// permitted, visitors never.
func TestConcurrentFederatedTraffic(t *testing.T) {
	vo, a, _ := twoHospitalVO(t)
	const perClient = 80
	var wg sync.WaitGroup
	errs := make(chan string, 3)

	run := func(subject, domain string, wantAllowed bool) {
		defer wg.Done()
		for i := 0; i < perClient; i++ {
			out := vo.Request(context.Background(), domain, recordReq(subject, domain), at.Add(time.Duration(i)*time.Second))
			if out.Allowed != wantAllowed {
				errs <- subject + ": unexpected outcome"
				return
			}
		}
	}
	wg.Add(3)
	go run("alice", "hospital-a", true)
	go run("bob", "hospital-b", true)
	go run("mallory", "hospital-b", false)

	wg.Add(1)
	go func() {
		defer wg.Done()
		// Republishing the same policy exercises the PAP->PDP rebuild
		// path without changing semantics.
		for i := 0; i < 40; i++ {
			if _, err := a.PAP.Put(policy.NewPolicy("records").
				Combining(policy.FirstApplicable).
				When(policy.MatchResource(policy.AttrResourceType, policy.String("patient-record"))).
				Rule(policy.Permit("doctors-read").
					When(policy.MatchRole("doctor"), policy.MatchActionID("read")).
					Build()).
				Rule(policy.Deny("default").Build()).
				Build()); err != nil {
				errs <- "republish: " + err.Error()
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if got := vo.Audit.Len(); got != 3*perClient {
		t.Errorf("audit recorded %d events, want %d", got, 3*perClient)
	}
}
