package resilience

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
)

// staleShards stripes the last-known-good cache the same way the PDP
// decision cache is striped: entries land in the shard addressed by the
// request's memoised cache-key hash, so concurrent Puts from the decision
// hot path contend per-stripe, not globally.
const staleShards = 16

type staleEntry struct {
	res    policy.Result
	stored time.Time
}

type staleShard struct {
	mu      sync.Mutex
	entries map[string]staleEntry
	max     int
	// pad the shard to its own cache line so neighbouring shard mutexes
	// do not false-share.
	_ [40]byte
}

// StaleCache is the bounded last-known-good store behind degraded mode:
// every conclusive decision is remembered with its stored-at time, and
// while a dependency's breaker is open a warm key may be answered from
// here — if and only if the entry's age is within the caller's grace
// window. Entries beyond the grace window are dropped on touch, so a
// degraded answer can never exceed the staleness bound.
type StaleCache struct {
	shards [staleShards]staleShard

	puts     atomic.Int64
	served   atomic.Int64
	tooOld   atomic.Int64
	coldMiss atomic.Int64
}

// StaleCacheStats is a snapshot of stale-cache activity.
type StaleCacheStats struct {
	// Entries is the current occupancy.
	Entries int
	// Puts counts conclusive decisions remembered.
	Puts int64
	// Served counts degraded answers handed out within the grace window.
	Served int64
	// TooOld counts lookups that found an entry beyond the grace window
	// (the request failed closed instead).
	TooOld int64
	// ColdMisses counts lookups for keys with no entry at all.
	ColdMisses int64
}

// NewStaleCache builds a cache bounded at maxItems entries (8192 when
// zero or negative).
func NewStaleCache(maxItems int) *StaleCache {
	if maxItems <= 0 {
		maxItems = 8192
	}
	perShard := maxItems / staleShards
	if perShard < 1 {
		perShard = 1
	}
	c := &StaleCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]staleEntry)
		c.shards[i].max = perShard
	}
	return c
}

func (c *StaleCache) shard(hash uint64) *staleShard {
	return &c.shards[hash%staleShards]
}

// Put remembers a conclusive decision as the key's last known good. The
// caller is responsible for filtering: only conclusive (non-Indeterminate)
// results from a live dependency belong here.
func (c *StaleCache) Put(key string, hash uint64, res policy.Result, at time.Time) {
	sh := c.shard(hash)
	sh.mu.Lock()
	if _, exists := sh.entries[key]; !exists && len(sh.entries) >= sh.max {
		sh.evictOldestLocked()
	}
	sh.entries[key] = staleEntry{res: res, stored: at}
	sh.mu.Unlock()
	c.puts.Add(1)
}

// evictOldestLocked drops the oldest of up to 8 probed entries — the same
// probabilistic eviction the decision cache uses, O(1) instead of a full
// scan, biased toward dropping the stalest data first.
func (sh *staleShard) evictOldestLocked() {
	const probe = 8
	var victim string
	var oldest time.Time
	n := 0
	for k, e := range sh.entries {
		if n == 0 || e.stored.Before(oldest) {
			victim, oldest = k, e.stored
		}
		n++
		if n >= probe {
			break
		}
	}
	if n > 0 {
		delete(sh.entries, victim)
	}
}

// Get returns the key's last known good decision if its age at `at` is
// within grace, along with that age. An entry beyond grace is deleted and
// reported as a miss: the staleness bound is enforced here, not at the
// caller's discretion.
func (c *StaleCache) Get(key string, hash uint64, at time.Time, grace time.Duration) (policy.Result, time.Duration, bool) {
	sh := c.shard(hash)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		c.coldMiss.Add(1)
		return policy.Result{}, 0, false
	}
	age := at.Sub(e.stored)
	if age > grace {
		delete(sh.entries, key)
		sh.mu.Unlock()
		c.tooOld.Add(1)
		return policy.Result{}, 0, false
	}
	sh.mu.Unlock()
	if age < 0 {
		age = 0
	}
	c.served.Add(1)
	return e.res, age, true
}

// Len returns current occupancy.
func (c *StaleCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of cache counters.
func (c *StaleCache) Stats() StaleCacheStats {
	return StaleCacheStats{
		Entries:    c.Len(),
		Puts:       c.puts.Load(),
		Served:     c.served.Load(),
		TooOld:     c.tooOld.Load(),
		ColdMisses: c.coldMiss.Load(),
	}
}
