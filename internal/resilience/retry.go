package resilience

import (
	"sync/atomic"
	"time"
)

// RetryBudget bounds retry amplification with a token bucket that only
// successes refill: each retry withdraws one token, each success deposits
// a fraction of one. Under total failure the bucket drains and retries
// stop — a hard-down dependency is probed at the deposit rate of the
// remaining successful traffic instead of multiplying the offered load.
// The balance is milli-tokens in one atomic word; Withdraw and Deposit are
// lock-free.
type RetryBudget struct {
	capMilli     int64
	depositMilli int64
	balance      atomic.Int64

	withdrawals atomic.Int64
	exhaustions atomic.Int64
}

// RetryBudgetStats is a snapshot of budget activity.
type RetryBudgetStats struct {
	// Balance is the current token balance.
	Balance float64
	// Withdrawals counts retries the budget paid for.
	Withdrawals int64
	// Exhaustions counts retries refused for an empty bucket.
	Exhaustions int64
}

// NewRetryBudget builds a full bucket holding capacity tokens, refilled at
// depositRate tokens per reported success. capacity <= 0 defaults to 10;
// depositRate <= 0 defaults to 0.1 (one retry earned per ten successes).
func NewRetryBudget(capacity, depositRate float64) *RetryBudget {
	if capacity <= 0 {
		capacity = 10
	}
	if depositRate <= 0 {
		depositRate = 0.1
	}
	b := &RetryBudget{
		capMilli:     int64(capacity * 1000),
		depositMilli: int64(depositRate * 1000),
	}
	if b.depositMilli < 1 {
		b.depositMilli = 1
	}
	b.balance.Store(b.capMilli)
	return b
}

// Withdraw takes one token for a retry, reporting false (and counting an
// exhaustion) when fewer than one whole token remains.
func (b *RetryBudget) Withdraw() bool {
	for {
		cur := b.balance.Load()
		if cur < 1000 {
			b.exhaustions.Add(1)
			return false
		}
		if b.balance.CompareAndSwap(cur, cur-1000) {
			b.withdrawals.Add(1)
			return true
		}
	}
}

// Deposit credits one success, capped at the bucket capacity.
func (b *RetryBudget) Deposit() {
	for {
		cur := b.balance.Load()
		next := cur + b.depositMilli
		if next > b.capMilli {
			next = b.capMilli
		}
		if next == cur || b.balance.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Balance returns the current token balance.
func (b *RetryBudget) Balance() float64 {
	return float64(b.balance.Load()) / 1000
}

// Stats returns a snapshot of budget counters.
func (b *RetryBudget) Stats() RetryBudgetStats {
	return RetryBudgetStats{
		Balance:     b.Balance(),
		Withdrawals: b.withdrawals.Load(),
		Exhaustions: b.exhaustions.Load(),
	}
}

// Decorrelated computes the next capped decorrelated-jitter backoff:
//
//	next = min(max, base + rnd*(min(3*prev, max) - base))
//
// with rnd in [0, 1). Unlike plain exponential backoff, consecutive delays
// are drawn from a widening window anchored at base rather than doubling
// in lockstep, so a thundering herd of retriers decorrelates instead of
// re-colliding every 2^n. The returned delay is always at least base
// (callers may rely on a failed attempt costing no less than its timeout)
// and at most max. rnd comes from the caller so deterministic simulations
// stay deterministic.
func Decorrelated(base, max, prev time.Duration, rnd float64) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	if prev < base {
		prev = base
	}
	hi := 3 * prev
	if hi > max || hi < 0 { // hi < 0: 3*prev overflowed
		hi = max
	}
	if rnd < 0 {
		rnd = 0
	} else if rnd >= 1 {
		rnd = 0.999999
	}
	return base + time.Duration(rnd*float64(hi-base))
}
