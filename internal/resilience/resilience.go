// Package resilience provides the fault-handling building blocks that let
// the decision fabric survive the failures the chaos harness injects,
// instead of merely detecting them: circuit breakers around unreliable
// dependencies, retry budgets with capped decorrelated-jitter backoff,
// adaptive admission control at ingress, and a bounded-staleness
// last-known-good cache backing the degraded serving mode.
//
// The pieces compose into one overload story:
//
//   - A Breaker turns a dead dependency (crashed shard group, stalled PIP
//     backend, partitioned federation peer) from a per-request
//     deadline-budget timeout into one fast local check. State is a single
//     atomic word; the half-open probe is claimed by compare-and-swap, so
//     exactly one request tests a recovering dependency while the rest
//     keep failing fast. Outcomes are three-valued: OnSuccess, OnFailure,
//     and the neutral OnAbandon for calls killed by their own caller's
//     context, which returns a held probe token without moving the state;
//     a probe claim never reported at all ages out after a cooldown and
//     is reclaimed by the next Allow.
//
//   - A RetryBudget bounds the retry amplification a failing dependency
//     can provoke: retries withdraw from a token bucket that only
//     successes refill, so a hard-down peer is retried at a small fraction
//     of the offered load instead of multiplying it. Decorrelated jitter
//     (Backoff/Decorrelated) spreads the retries that do happen.
//
//   - An Admission controller sheds excess concurrency at ingress with an
//     AIMD limit, rejecting early with 503 + Retry-After while the caller
//     still has deadline budget to go elsewhere — instead of queueing the
//     request into certain expiry. Priorities are strict: Critical traffic
//     (admin-plane writes, health probes) is never shed before Decision
//     traffic. Only server-indicted completions (5xx, over-target latency)
//     shrink the limit; a client that hangs up releases neutrally, so a
//     burst of impatient callers cannot talk a healthy server into
//     shedding.
//
//   - A StaleCache holds the last conclusive decision per cache key so an
//     open breaker can serve bounded-staleness answers for warm keys
//     within a configurable grace window — degraded (counted, audit
//     logged, stamped degraded=true on the trace span) but conclusive —
//     while cold keys keep failing closed.
//
// Fail-closed versus serve-stale, the decision table the enforcement
// points implement:
//
//	caller ctx already expired    -> fail closed (Indeterminate), always
//	dependency up                 -> fresh decision, never stale
//	dependency down, warm key,
//	  entry age <= grace          -> serve stale, Degraded=true
//	dependency down, cold key     -> fail fast (breaker short-circuit)
//	dependency down, entry older
//	  than grace                  -> fail closed (staleness bound wins)
//
// Everything here is allocation-free and lock-free on its hot path
// (atomics; the stale cache uses striped shard mutexes like the PDP
// decision cache) and takes an injectable clock, so the chaos and load
// tests drive it on virtual time.
package resilience

import (
	"errors"
	"time"
)

// ErrOpen reports a request short-circuited by an open circuit breaker:
// the dependency was recently observed dead, and the fast local failure
// stands in for the timeout the caller would otherwise pay. Matched with
// errors.Is; enforcement points treat it as an unavailability (deny-biased
// Indeterminate), and degraded mode may answer it from the stale cache.
var ErrOpen = errors.New("resilience: circuit open")

// Policy bundles the resilience configuration a layered deployment (the
// cluster router, pdpd) threads through its construction. The zero value
// of each knob means "that mechanism off": a nil *Policy or a zero Policy
// adds no behaviour and no hot-path cost.
type Policy struct {
	// Breaker configures the per-dependency circuit breakers; a zero
	// value uses the defaults (see BreakerConfig).
	Breaker BreakerConfig
	// StaleGrace bounds degraded-mode staleness: with a breaker open, a
	// cached conclusive decision no older than StaleGrace may be served
	// marked Degraded. Zero disables serve-stale (pure fail-fast).
	StaleGrace time.Duration
	// StaleItems caps the last-known-good cache; 8192 when zero.
	StaleItems int
	// HedgeAfter arms hedged batch fan-out: a replica group that has not
	// answered a batch within HedgeAfter gets a second request on the
	// next replica, first conclusive answer wins. Zero disables hedging.
	HedgeAfter time.Duration
	// Clock overrides time.Now for the breakers and staleness checks.
	Clock func() time.Time
}

// Now returns the policy clock, defaulting to time.Now.
func (p *Policy) Now() func() time.Time {
	if p != nil && p.Clock != nil {
		return p.Clock
	}
	return time.Now
}
