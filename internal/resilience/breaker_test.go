package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// vclock is a virtual clock the tests advance by hand.
type vclock struct {
	mu  sync.Mutex
	now time.Time
}

func newVclock() *vclock {
	return &vclock{now: time.Unix(1_700_000_000, 0)}
}

func (c *vclock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *vclock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *vclock) *Breaker {
	return NewBreaker("dep", BreakerConfig{Threshold: 3, Cooldown: time.Second, Clock: clk.Now})
}

func TestBreakerOpensAfterThresholdAndFailsFast(t *testing.T) {
	clk := newVclock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.OnFailure()
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %s after threshold failures, want open", b.StateName())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	if st := b.Stats(); st.Opens != 1 || st.FastFailures == 0 {
		t.Fatalf("stats = %+v, want 1 open and >0 fast failures", st)
	}
}

func TestBreakerInterleavedSuccessResetsCount(t *testing.T) {
	clk := newVclock()
	b := testBreaker(clk)
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("breaker tripped at iteration %d despite interleaved successes", i)
		}
		b.OnFailure()
		b.OnFailure()
		b.OnSuccess() // two failures never reach the threshold of three
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %s, want closed", b.StateName())
	}
}

func TestBreakerProbeSuccessClosesProbeFailureReopens(t *testing.T) {
	clk := newVclock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}

	// Probe after cooldown fails: reopen for a fresh cooldown.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe not admitted")
	}
	b.OnFailure()
	if b.State() != StateOpen {
		t.Fatalf("state = %s after failed probe, want open", b.StateName())
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a call before the new cooldown elapsed")
	}

	// Next probe succeeds: breaker closes and traffic flows.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	b.OnSuccess()
	if b.State() != StateClosed {
		t.Fatalf("state = %s after successful probe, want closed", b.StateName())
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected traffic")
	}
}

// TestBreakerAbandonReleasesProbeToken: a half-open probe whose call died
// with the caller's own context reports OnAbandon, which returns the probe
// token without moving the state — the next Allow admits a fresh probe
// immediately instead of failing fast until the token ages out.
func TestBreakerAbandonReleasesProbeToken(t *testing.T) {
	clk := newVclock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe not admitted")
	}
	if b.Allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
	b.OnAbandon()
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %s after abandoned probe, want half-open", b.StateName())
	}
	if !b.Allow() {
		t.Fatal("probe token not reusable after OnAbandon")
	}
	b.OnSuccess()
	if b.State() != StateClosed {
		t.Fatalf("state = %s after successful re-probe, want closed", b.StateName())
	}
}

// TestBreakerStaleProbeReclaimed: a probe owner that vanishes without any
// report at all (no OnSuccess/OnFailure/OnAbandon) must not wedge the
// breaker in fail-fast forever — a claim older than a full cooldown is
// reclaimable by the next Allow.
func TestBreakerStaleProbeReclaimed(t *testing.T) {
	clk := newVclock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe not admitted")
	}
	// The owner never reports. Inside the cooldown the token is still his...
	if b.Allow() {
		t.Fatal("held probe token reclaimed before the claim aged out")
	}
	// ...but a claim older than a cooldown is abandoned by definition.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("stale probe token not reclaimed after a full cooldown")
	}
	b.OnSuccess()
	if b.State() != StateClosed {
		t.Fatalf("state = %s after reclaimed probe succeeded, want closed", b.StateName())
	}
}

// TestBreakerHalfOpenSingleProbe races many goroutines against the
// half-open transition: exactly one may win the probe, whatever the
// interleaving (-race exercises the CAS arbitration).
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	for round := 0; round < 50; round++ {
		clk := newVclock()
		b := testBreaker(clk)
		for i := 0; i < 3; i++ {
			b.OnFailure()
		}
		clk.Advance(time.Second)

		const goroutines = 32
		var admitted atomic.Int64
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				defer done.Done()
				start.Wait()
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		start.Done()
		done.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d probes admitted through a half-open breaker, want exactly 1", round, n)
		}
	}
}

// TestBreakerConcurrentLifecycle hammers the full state machine from many
// goroutines while the clock advances; the test asserts nothing beyond
// "no race, no panic, coherent final state" — -race is the oracle.
func TestBreakerConcurrentLifecycle(t *testing.T) {
	clk := newVclock()
	b := testBreaker(clk)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if b.Allow() {
					switch (i + seed) % 4 {
					case 0:
						b.OnFailure()
					case 1:
						b.OnAbandon()
					default:
						b.OnSuccess()
					}
				}
				if i%100 == 0 {
					clk.Advance(100 * time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	switch b.State() {
	case StateClosed, StateOpen, StateHalfOpen:
	default:
		t.Fatalf("incoherent final state %d", b.State())
	}
}
