package resilience

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
)

func staleKey(i int) (string, uint64) {
	k := fmt.Sprintf("key-%d", i)
	return k, policy.HashString(k)
}

// TestStaleNeverExceedsGraceWindow is the staleness-bound proof on a
// virtual clock: an entry is served while (and only while) its age is
// within grace, and the first over-grace touch removes it for good.
func TestStaleNeverExceedsGraceWindow(t *testing.T) {
	c := NewStaleCache(64)
	now := time.Unix(1_700_000_000, 0)
	grace := 30 * time.Second
	key, hash := staleKey(1)
	want := policy.Result{Decision: policy.DecisionPermit, By: "p1"}
	c.Put(key, hash, want, now)

	for _, step := range []time.Duration{0, time.Second, 29 * time.Second, grace} {
		res, age, ok := c.Get(key, hash, now.Add(step), grace)
		if !ok {
			t.Fatalf("entry aged %v not served within grace %v", step, grace)
		}
		if res.Decision != want.Decision || res.By != want.By {
			t.Fatalf("served %+v, want %+v", res, want)
		}
		if age != step {
			t.Fatalf("age = %v, want %v", age, step)
		}
	}

	if _, _, ok := c.Get(key, hash, now.Add(grace+time.Nanosecond), grace); ok {
		t.Fatal("entry served beyond the grace window")
	}
	// The over-grace touch evicted: even rolling the clock back cannot
	// resurrect it.
	if _, _, ok := c.Get(key, hash, now, grace); ok {
		t.Fatal("over-grace entry resurrected")
	}
	if st := c.Stats(); st.TooOld != 1 {
		t.Fatalf("stats = %+v, want 1 too-old rejection", st)
	}
}

func TestStaleCacheColdMiss(t *testing.T) {
	c := NewStaleCache(64)
	key, hash := staleKey(7)
	if _, _, ok := c.Get(key, hash, time.Unix(0, 0), time.Hour); ok {
		t.Fatal("cold key served")
	}
	if st := c.Stats(); st.ColdMisses != 1 {
		t.Fatalf("stats = %+v, want 1 cold miss", st)
	}
}

func TestStaleCacheBounded(t *testing.T) {
	const max = 64
	c := NewStaleCache(max)
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 10*max; i++ {
		key, hash := staleKey(i)
		c.Put(key, hash, policy.Result{Decision: policy.DecisionPermit}, now.Add(time.Duration(i)*time.Second))
	}
	if n := c.Len(); n > max {
		t.Fatalf("occupancy %d exceeds bound %d", n, max)
	}
}

func TestStaleCacheConcurrent(t *testing.T) {
	c := NewStaleCache(256)
	base := time.Unix(1_700_000_000, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				key, hash := staleKey((seed*31 + i) % 512)
				at := base.Add(time.Duration(i) * time.Millisecond)
				if i%2 == 0 {
					c.Put(key, hash, policy.Result{Decision: policy.DecisionDeny}, at)
				} else if res, age, ok := c.Get(key, hash, at, time.Minute); ok {
					if res.Decision != policy.DecisionDeny || age > time.Minute {
						panic(fmt.Sprintf("incoherent stale read: %+v age %v", res, age))
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
