package resilience

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryBudgetExhaustionUnderConcurrentFailures drains a budget from
// many goroutines at once: the total number of successful withdrawals must
// equal the capacity exactly — the token bucket cannot be over-drawn by a
// race (-race exercises the CAS loop).
func TestRetryBudgetExhaustionUnderConcurrentFailures(t *testing.T) {
	const capacity = 100
	b := NewRetryBudget(capacity, 0.1)

	const goroutines = 16
	var granted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < capacity; i++ { // 16x oversubscription
				if b.Withdraw() {
					granted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := granted.Load(); n != capacity {
		t.Fatalf("%d withdrawals granted from a %d-token budget", n, capacity)
	}
	if b.Withdraw() {
		t.Fatal("withdrawal granted from an exhausted budget")
	}
	if st := b.Stats(); st.Exhaustions == 0 {
		t.Fatalf("stats = %+v, want exhaustions counted", st)
	}
}

func TestRetryBudgetSuccessesRefill(t *testing.T) {
	b := NewRetryBudget(10, 0.5)
	for i := 0; i < 10; i++ {
		if !b.Withdraw() {
			t.Fatalf("fresh budget refused withdrawal %d", i)
		}
	}
	if b.Withdraw() {
		t.Fatal("empty budget granted a withdrawal")
	}
	// Two successes at 0.5 tokens each earn exactly one retry.
	b.Deposit()
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("refilled budget refused a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("budget granted more than the deposits earned")
	}
	// The balance never exceeds capacity.
	for i := 0; i < 1000; i++ {
		b.Deposit()
	}
	if bal := b.Balance(); bal > 10 {
		t.Fatalf("balance %v exceeds capacity 10", bal)
	}
}

func TestRetryBudgetConcurrentDepositWithdraw(t *testing.T) {
	b := NewRetryBudget(50, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if i%2 == 0 {
					b.Deposit()
				} else {
					b.Withdraw()
				}
			}
		}()
	}
	wg.Wait()
	if bal := b.Balance(); bal < 0 || bal > 50 {
		t.Fatalf("balance %v escaped [0, 50]", bal)
	}
}

func TestDecorrelatedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := 10 * time.Millisecond
	max := 200 * time.Millisecond
	prev := base
	for i := 0; i < 10_000; i++ {
		d := Decorrelated(base, max, prev, rng.Float64())
		if d < base {
			t.Fatalf("backoff %v below base %v at iteration %d", d, base, i)
		}
		if d > max {
			t.Fatalf("backoff %v above cap %v at iteration %d", d, max, i)
		}
		prev = d
	}
}

func TestDecorrelatedWidensThenCaps(t *testing.T) {
	base := 10 * time.Millisecond
	max := time.Second
	// rnd=0.999999 tracks the top of the window: 3x growth per step until
	// the cap pins it.
	prev := base
	var last time.Duration
	for i := 0; i < 10; i++ {
		d := Decorrelated(base, max, prev, 0.999999)
		if d < last {
			t.Fatalf("upper envelope shrank: %v -> %v", last, d)
		}
		last, prev = d, d
	}
	if last < max-time.Millisecond {
		t.Fatalf("upper envelope %v never reached the cap %v", last, max)
	}
	// Degenerate inputs clamp instead of exploding.
	if d := Decorrelated(0, 0, -time.Second, 2); d <= 0 {
		t.Fatalf("degenerate inputs produced %v", d)
	}
}
