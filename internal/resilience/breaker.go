package resilience

import (
	"sync/atomic"
	"time"
)

// Breaker states. The state machine is the classic three-state breaker:
// Closed (calls pass, consecutive failures counted) -> Open (calls fail
// fast for the cooldown) -> HalfOpen (exactly one probe call passes;
// success closes, failure reopens).
const (
	StateClosed int32 = iota
	StateOpen
	StateHalfOpen
)

// BreakerConfig parameterises a Breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker;
	// 5 when zero or negative.
	Threshold int
	// Cooldown is how long an open breaker fails fast before admitting a
	// half-open probe; 1s when zero or negative.
	Cooldown time.Duration
	// Clock overrides time.Now, for virtual-time tests.
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// BreakerStats is a snapshot of breaker activity.
type BreakerStats struct {
	// State is the current state word (StateClosed/StateOpen/StateHalfOpen).
	State int32
	// Opens counts transitions into Open, reopens after a failed probe
	// included.
	Opens int64
	// FastFailures counts calls rejected without touching the dependency.
	FastFailures int64
	// Probes counts half-open probe admissions.
	Probes int64
}

// Breaker is a per-dependency circuit breaker. All state is atomic: Allow,
// OnSuccess, OnFailure and OnAbandon are lock-free and safe for concurrent use, and
// the half-open probe token is claimed by compare-and-swap so exactly one
// caller tests a recovering dependency.
//
// Usage is advisory, not wrapping: the caller asks Allow() before the
// dependency call and reports the outcome with OnSuccess()/OnFailure(),
// or OnAbandon() when the outcome says nothing about the dependency (the
// caller's own context died mid-call). That keeps the breaker out of the
// call's data path (no closures, no allocation) and lets layered code
// classify failures itself — only dependency failures (unavailable, timed
// out) should count, never the caller's own expired context.
type Breaker struct {
	name string
	cfg  BreakerConfig

	state    atomic.Int32
	failures atomic.Int32 // consecutive failures while closed
	openedAt atomic.Int64 // UnixNano of the last trip
	probing  atomic.Bool  // the single half-open probe token
	probedAt atomic.Int64 // UnixNano of the last probe-token claim

	opens     atomic.Int64
	fastFails atomic.Int64
	probes    atomic.Int64
}

// NewBreaker builds a closed breaker for one named dependency.
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	return &Breaker{name: name, cfg: cfg.withDefaults()}
}

// Name identifies the guarded dependency in metrics and diagnostics.
func (b *Breaker) Name() string { return b.name }

// Allow reports whether the caller may attempt the dependency. Closed
// always admits; open fails fast until the cooldown elapses, then admits
// exactly one half-open probe (the compare-and-swap on the probe token is
// the race arbiter); half-open admits nothing beyond that probe.
func (b *Breaker) Allow() bool {
	for {
		switch b.state.Load() {
		case StateClosed:
			return true
		case StateOpen:
			if b.cfg.Clock().Sub(time.Unix(0, b.openedAt.Load())) < b.cfg.Cooldown {
				b.fastFails.Add(1)
				return false
			}
			// Cooldown elapsed: claim the probe token first, then move the
			// state. The token, not the state word, is what makes the probe
			// single — a competing Allow that observes HalfOpen below still
			// has to win the same token.
			if b.probing.CompareAndSwap(false, true) {
				b.probedAt.Store(b.cfg.Clock().UnixNano())
				b.state.CompareAndSwap(StateOpen, StateHalfOpen)
				b.probes.Add(1)
				return true
			}
			b.fastFails.Add(1)
			return false
		default: // StateHalfOpen
			if b.probing.CompareAndSwap(false, true) {
				// The probe owner may have resolved the state between our
				// load and the claim; re-classify rather than probe a
				// closed or freshly reopened breaker.
				if b.state.Load() != StateHalfOpen {
					b.probing.Store(false)
					continue
				}
				b.probedAt.Store(b.cfg.Clock().UnixNano())
				b.probes.Add(1)
				return true
			}
			// The token is held. A probe whose outcome is never reported
			// (the owner vanished without OnSuccess/OnFailure/OnAbandon)
			// must not wedge the breaker in fail-fast forever: a claim
			// older than a full cooldown is reclaimable, with the CAS on
			// the claim timestamp arbitrating competing reclaimers.
			pa := b.probedAt.Load()
			now := b.cfg.Clock()
			if now.Sub(time.Unix(0, pa)) >= b.cfg.Cooldown &&
				b.probedAt.CompareAndSwap(pa, now.UnixNano()) {
				b.probes.Add(1)
				return true
			}
			b.fastFails.Add(1)
			return false
		}
	}
}

// OnSuccess reports a successful dependency call: the consecutive-failure
// count resets, and a half-open (or open — a straggler admitted before the
// trip proves the dependency lives) breaker closes.
func (b *Breaker) OnSuccess() {
	b.failures.Store(0)
	st := b.state.Load()
	if st == StateClosed {
		return
	}
	if b.state.CompareAndSwap(st, StateClosed) {
		b.probing.Store(false)
	}
}

// OnFailure reports a failed dependency call. While closed it counts
// toward the trip threshold; a failed half-open probe reopens for a full
// cooldown; failures reported while already open (stragglers) are ignored.
func (b *Breaker) OnFailure() {
	switch b.state.Load() {
	case StateHalfOpen:
		b.openedAt.Store(b.cfg.Clock().UnixNano())
		if b.state.CompareAndSwap(StateHalfOpen, StateOpen) {
			b.opens.Add(1)
		}
		b.probing.Store(false)
	case StateOpen:
		// Straggler from before the trip; the cooldown clock stands.
	default:
		if int(b.failures.Add(1)) >= b.cfg.Threshold {
			b.openedAt.Store(b.cfg.Clock().UnixNano())
			if b.state.CompareAndSwap(StateClosed, StateOpen) {
				b.opens.Add(1)
				b.failures.Store(0)
			}
		}
	}
}

// OnAbandon reports a call whose outcome proves nothing about the
// dependency — the caller's own context was cancelled or its deadline
// expired mid-call. It is neutral: the consecutive-failure count and the
// state stand, but a held half-open probe token is returned so the next
// Allow can admit a fresh probe instead of failing fast until the stale
// token ages past the cooldown.
func (b *Breaker) OnAbandon() {
	b.probing.Store(false)
}

// State returns the current state word.
func (b *Breaker) State() int32 { return b.state.Load() }

// StateName renders the current state for gauges and logs.
func (b *Breaker) StateName() string {
	switch b.state.Load() {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// Stats returns a snapshot of breaker counters.
func (b *Breaker) Stats() BreakerStats {
	return BreakerStats{
		State:        b.state.Load(),
		Opens:        b.opens.Load(),
		FastFailures: b.fastFails.Load(),
		Probes:       b.probes.Load(),
	}
}
