package resilience

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionLimitEnforced(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Initial: 4, Min: 4, Max: 8})
	var releases []func(Outcome)
	for i := 0; i < 4; i++ {
		rel, ok := a.Acquire(Decision)
		if !ok {
			t.Fatalf("acquire %d rejected below the limit", i)
		}
		releases = append(releases, rel)
	}
	if _, ok := a.Acquire(Decision); ok {
		t.Fatal("acquire admitted beyond the limit")
	}
	// Critical traffic is never shed, even at the limit.
	rel, ok := a.Acquire(Critical)
	if !ok {
		t.Fatal("critical request shed")
	}
	rel(OutcomeSuccess)
	for _, r := range releases {
		r(OutcomeSuccess)
	}
	if in := a.Inflight(); in != 0 {
		t.Fatalf("inflight = %d after all releases", in)
	}
}

func TestAdmissionAIMD(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Initial: 10, Min: 4, Max: 100})
	start := a.Limit()

	// Failures shrink the limit multiplicatively...
	for i := 0; i < 5; i++ {
		rel, ok := a.Acquire(Decision)
		if !ok {
			t.Fatalf("acquire %d rejected", i)
		}
		rel(OutcomeFailure)
	}
	shrunk := a.Limit()
	if shrunk >= start {
		t.Fatalf("limit %v did not shrink from %v under failures", shrunk, start)
	}
	// ...to the floor, never below.
	for i := 0; i < 100; i++ {
		if rel, ok := a.Acquire(Decision); ok {
			rel(OutcomeFailure)
		}
	}
	if lim := a.Limit(); lim < 4 {
		t.Fatalf("limit %v fell below the floor", lim)
	}

	// Successes regrow it additively toward the ceiling.
	for i := 0; i < 20_000; i++ {
		if rel, ok := a.Acquire(Decision); ok {
			rel(OutcomeSuccess)
		}
	}
	if lim := a.Limit(); lim != 100 {
		t.Fatalf("limit %v did not regrow to the ceiling under sustained success", lim)
	}
}

func TestAdmissionLatencyTargetCountsAsPressure(t *testing.T) {
	now := time.Unix(0, 0)
	a := NewAdmission(AdmissionConfig{
		Initial: 10, Min: 4, Max: 100,
		LatencyTarget: 10 * time.Millisecond,
		Clock:         func() time.Time { return now },
	})
	before := a.Limit()
	rel, _ := a.Acquire(Decision)
	now = now.Add(50 * time.Millisecond) // completion over target
	rel(OutcomeSuccess)
	if lim := a.Limit(); lim >= before {
		t.Fatalf("limit %v did not shrink on an over-target completion (was %v)", lim, before)
	}
}

func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Initial: 16, Min: 4, Max: 64})
	var peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				rel, ok := a.Acquire(Decision)
				if !ok {
					continue
				}
				if in := a.Inflight(); in > peak.Load() {
					peak.Store(in)
				}
				if i%10 == 0 {
					rel(OutcomeFailure)
				} else {
					rel(OutcomeSuccess)
				}
			}
		}()
	}
	wg.Wait()
	if in := a.Inflight(); in != 0 {
		t.Fatalf("inflight = %d after all goroutines drained", in)
	}
	// The limit never exceeded its ceiling, so admitted concurrency stays
	// within Max plus the transient Add-then-check window.
	if p := peak.Load(); p > 64+32 {
		t.Fatalf("peak inflight %d far exceeds the configured ceiling", p)
	}
}

// TestAdmissionNeutralRelease: client cancellations say nothing about
// server congestion, so a neutral release moves the limit in neither
// direction while still freeing the slot.
func TestAdmissionNeutralRelease(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Initial: 10, Min: 4, Max: 100})
	before := a.Limit()
	for i := 0; i < 50; i++ {
		rel, ok := a.Acquire(Decision)
		if !ok {
			t.Fatalf("acquire %d rejected below the limit", i)
		}
		rel(OutcomeNeutral)
	}
	if lim := a.Limit(); lim != before {
		t.Fatalf("limit moved %v -> %v under neutral releases", before, lim)
	}
	if in := a.Inflight(); in != 0 {
		t.Fatalf("inflight = %d after all neutral releases", in)
	}
}

// TestAdmissionMiddlewareClientCancelIsNeutral: a burst of impatient
// clients (request context dead at completion, response still 2xx) must
// not multiplicatively shrink the limit on a healthy server.
func TestAdmissionMiddlewareClientCancelIsNeutral(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Initial: 10, Min: 4, Max: 100})
	handler := a.Middleware(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	before := a.Limit()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/decide", nil).WithContext(ctx))
	}
	if lim := a.Limit(); lim < before {
		t.Fatalf("client cancellations shrank the limit %v -> %v", before, lim)
	}
	// A genuine server failure still counts.
	boom := a.Middleware(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	boom.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/decide", nil))
	if lim := a.Limit(); lim >= before {
		t.Fatalf("limit %v did not shrink on a 5xx completion (was %v)", a.Limit(), before)
	}
}

// hijackRecorder is a ResponseWriter that supports hijacking, recording
// whether the call reached it.
type hijackRecorder struct {
	http.ResponseWriter
	hijacked bool
}

func (h *hijackRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h.hijacked = true
	return nil, nil, nil
}

// TestStatusWriterForwardsOptionalInterfaces: the admission middleware's
// wrapper must not hide Hijacker (WebSocket upgrades) or the other
// optional ResponseWriter interfaces from wrapped handlers.
func TestStatusWriterForwardsOptionalInterfaces(t *testing.T) {
	h := &hijackRecorder{ResponseWriter: httptest.NewRecorder()}
	sw := &statusWriter{ResponseWriter: h, code: http.StatusOK}
	if _, _, err := sw.Hijack(); err != nil || !h.hijacked {
		t.Fatalf("Hijack not forwarded (err=%v, reached=%v)", err, h.hijacked)
	}
	if got := sw.Unwrap(); got != http.ResponseWriter(h) {
		t.Fatal("Unwrap did not expose the underlying writer")
	}
	// A writer without Hijack support degrades to an error, not a panic.
	plain := &statusWriter{ResponseWriter: httptest.NewRecorder(), code: http.StatusOK}
	if _, _, err := plain.Hijack(); err == nil {
		t.Fatal("Hijack on a non-hijackable writer reported success")
	}
	if err := plain.Push("/asset", nil); err == nil {
		t.Fatal("Push on a non-pusher writer reported success")
	}
}

func TestAdmissionMiddleware(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Initial: 4, Min: 4, Max: 4})
	blocked := make(chan struct{})
	release := make(chan struct{})
	handler := a.Middleware(
		func(r *http.Request) Priority {
			if r.URL.Path == "/healthz" {
				return Critical
			}
			return Decision
		},
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/slow" {
				blocked <- struct{}{}
				<-release
			}
			w.WriteHeader(http.StatusOK)
		}))

	// Fill the limit with parked decision requests.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/slow", nil))
		}()
	}
	for i := 0; i < 4; i++ {
		<-blocked
	}

	// The next decision request sheds with 503 + Retry-After.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/decide", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d at the limit, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}

	// A health probe still gets through.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("health probe shed with %d at the limit", rec.Code)
	}

	close(release)
	wg.Wait()
	if st := a.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want exactly the one shed decision request", st.Rejected)
	}
}
