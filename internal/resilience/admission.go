package resilience

import (
	"bufio"
	"io"
	"math"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Priority classes admission control distinguishes. The ordering is
// strict: Critical is never shed while Decision traffic is being admitted
// — the admin plane and health probes must stay reachable precisely when
// the system is overloaded enough to shed.
type Priority int

const (
	// Decision is sheddable decision-plane traffic.
	Decision Priority = iota
	// Critical is admin-plane writes, health probes and scrapes: admitted
	// regardless of the concurrency limit.
	Critical
)

// Outcome classifies a completed admitted request for the AIMD signal.
type Outcome int

const (
	// OutcomeSuccess grows the limit additively (subject to the latency
	// target — an over-target success still counts as congestion).
	OutcomeSuccess Outcome = iota
	// OutcomeFailure shrinks the limit multiplicatively: the server
	// indicted itself (5xx, timeout serving).
	OutcomeFailure
	// OutcomeNeutral releases the slot without moving the limit: the
	// client hung up or its deadline expired, which says nothing about
	// server congestion — a burst of impatient clients must not shrink
	// the limit on an otherwise healthy server.
	OutcomeNeutral
)

// AdmissionConfig parameterises an Admission controller.
type AdmissionConfig struct {
	// Initial is the starting concurrency limit; 64 when zero or negative.
	Initial int
	// Min floors the limit under multiplicative decrease; 4 when zero.
	Min int
	// Max ceilings the limit under additive increase; 16384 when zero.
	Max int
	// Backoff is the multiplicative-decrease factor applied per failed or
	// over-target completion; 0.9 when out of (0, 1).
	Backoff float64
	// LatencyTarget, when positive, counts completions slower than it as
	// congestion even if they succeeded — the gradient signal that shrinks
	// the limit before queueing turns into deadline expiry.
	LatencyTarget time.Duration
	// Clock overrides time.Now for latency measurement.
	Clock func() time.Time
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Initial <= 0 {
		c.Initial = 64
	}
	if c.Min <= 0 {
		c.Min = 4
	}
	if c.Max <= 0 {
		c.Max = 16384
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.9
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// AdmissionStats is a snapshot of controller activity.
type AdmissionStats struct {
	// Limit is the current adaptive concurrency limit.
	Limit float64
	// Inflight is the current admitted concurrency.
	Inflight int64
	// Admitted and Rejected count Acquire outcomes (Critical admissions
	// included in Admitted).
	Admitted, Rejected int64
	// Throttles counts multiplicative decreases applied to the limit.
	Throttles int64
}

// Admission is an adaptive (AIMD) concurrency limiter for ingress.
// Successful completions grow the limit additively (+1 per limit's worth
// of successes); failures and over-target latencies shrink it
// multiplicatively. Acquire/release are lock-free: an atomic inflight
// count checked against an atomic float limit.
type Admission struct {
	cfg      AdmissionConfig
	limit    atomic.Uint64 // math.Float64bits of the current limit
	inflight atomic.Int64

	admitted  atomic.Int64
	rejected  atomic.Int64
	throttles atomic.Int64
}

// NewAdmission builds a controller at cfg.Initial concurrency.
func NewAdmission(cfg AdmissionConfig) *Admission {
	a := &Admission{cfg: cfg.withDefaults()}
	a.limit.Store(math.Float64bits(float64(a.cfg.Initial)))
	return a
}

// Limit returns the current adaptive concurrency limit.
func (a *Admission) Limit() float64 {
	return math.Float64frombits(a.limit.Load())
}

// Inflight returns the admitted concurrency right now.
func (a *Admission) Inflight() int64 { return a.inflight.Load() }

// Acquire admits or rejects one request. Critical requests are always
// admitted; Decision requests are rejected when admitting them would
// exceed the current limit. The returned release must be called exactly
// once when the request completes, with the Outcome that classifies it:
// only server-indicted failures (and over-target successes, when a
// LatencyTarget is set) shrink the limit; OutcomeNeutral — client
// cancellation — leaves it untouched. Acquire returns (nil, false) on
// rejection.
func (a *Admission) Acquire(p Priority) (release func(Outcome), ok bool) {
	in := a.inflight.Add(1)
	if p != Critical && float64(in) > a.Limit() {
		a.inflight.Add(-1)
		a.rejected.Add(1)
		return nil, false
	}
	a.admitted.Add(1)
	start := a.cfg.Clock()
	return func(o Outcome) {
		a.inflight.Add(-1)
		if o == OutcomeSuccess && a.cfg.LatencyTarget > 0 && a.cfg.Clock().Sub(start) > a.cfg.LatencyTarget {
			o = OutcomeFailure
		}
		switch o {
		case OutcomeFailure:
			a.decrease()
		case OutcomeSuccess:
			a.increase()
		}
	}, true
}

// increase applies the additive step: limit += 1/limit, so the limit grows
// by ~1 per limit's worth of successful completions.
func (a *Admission) increase() {
	for {
		cur := a.limit.Load()
		lim := math.Float64frombits(cur)
		next := lim + 1/lim
		if next > float64(a.cfg.Max) {
			next = float64(a.cfg.Max)
		}
		if next == lim || a.limit.CompareAndSwap(cur, math.Float64bits(next)) {
			return
		}
	}
}

// decrease applies the multiplicative step: limit *= Backoff, floored at
// Min.
func (a *Admission) decrease() {
	for {
		cur := a.limit.Load()
		lim := math.Float64frombits(cur)
		next := lim * a.cfg.Backoff
		if next < float64(a.cfg.Min) {
			next = float64(a.cfg.Min)
		}
		if next == lim {
			return
		}
		if a.limit.CompareAndSwap(cur, math.Float64bits(next)) {
			a.throttles.Add(1)
			return
		}
	}
}

// Stats returns a snapshot of controller counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Limit:     a.Limit(),
		Inflight:  a.inflight.Load(),
		Admitted:  a.admitted.Load(),
		Rejected:  a.rejected.Load(),
		Throttles: a.throttles.Load(),
	}
}

// Middleware wraps an HTTP handler with admission control. classify maps
// each request to its priority (nil classifies everything as Decision).
// Rejected requests get 503 with Retry-After: 1 — a distinct, fast signal
// the caller can act on while its deadline budget is still alive, unlike
// queueing into expiry. Only server-indicted completions (5xx, and
// over-target latencies via LatencyTarget) count as failure for the AIMD
// signal; a request context dead at completion means the client hung up
// and releases neutrally.
func (a *Admission) Middleware(classify func(*http.Request) Priority, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := Decision
		if classify != nil {
			p = classify(r)
		}
		release, ok := a.Acquire(p)
		if !ok {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded: admission limit reached", http.StatusServiceUnavailable)
			return
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		switch {
		case sw.code >= http.StatusInternalServerError:
			release(OutcomeFailure)
		case r.Context().Err() != nil:
			release(OutcomeNeutral)
		default:
			release(OutcomeSuccess)
		}
	})
}

// statusWriter records the response code for the admission failure signal.
// It forwards the optional ResponseWriter interfaces (Flusher, Hijacker,
// ReaderFrom, Pusher) so handlers behind the admission middleware keep
// streaming, WebSocket upgrades and sendfile, and unwraps for
// http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if h, ok := w.ResponseWriter.(http.Hijacker); ok {
		return h.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}

func (w *statusWriter) ReadFrom(src io.Reader) (int64, error) {
	// io.Copy uses the underlying writer's ReadFrom when it has one and
	// falls back to a plain copy otherwise.
	return io.Copy(w.ResponseWriter, src)
}

func (w *statusWriter) Push(target string, opts *http.PushOptions) error {
	if p, ok := w.ResponseWriter.(http.Pusher); ok {
		return p.Push(target, opts)
	}
	return http.ErrNotSupported
}
