package pap

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/policy"
)

// stubBackend records commits and can fail on demand; the full-featured
// double lives in internal/store (Memory), which this internal test
// cannot import without a cycle.
type stubBackend struct {
	commits []Update
	// observed is called inside Commit so tests can examine store state
	// at commit time, before the write becomes visible.
	observed func(Update)
	err      error
}

func (b *stubBackend) Commit(u Update) error {
	if b.err != nil {
		return b.err
	}
	if b.observed != nil {
		b.observed(u)
	}
	b.commits = append(b.commits, u)
	return nil
}

func backedStore(t *testing.T) (*Store, *stubBackend) {
	t.Helper()
	s := NewStore("backed")
	b := &stubBackend{}
	s.SetBackend(b)
	return s, b
}

func backedPolicy(id string) *policy.Policy {
	return policy.NewPolicy(id).
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("res-" + id)).
		Rule(policy.Permit("allow").Build()).
		Build()
}

// TestBackendDurabilityBeforeVisibility pins the ordering contract: at
// the moment Commit runs, the write is not yet readable; once Put
// returns, it is.
func TestBackendDurabilityBeforeVisibility(t *testing.T) {
	s, b := backedStore(t)
	b.observed = func(u Update) {
		if _, err := s.Get(u.ID); !errors.Is(err, ErrNotFound) {
			t.Errorf("write %s visible before Commit returned", u.ID)
		}
	}
	if _, err := s.Put(backedPolicy("p-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("p-a"); err != nil {
		t.Fatalf("write invisible after ack: %v", err)
	}
	if len(b.commits) != 1 || b.commits[0].Version != 1 || b.commits[0].Policy == nil {
		t.Fatalf("commits = %+v", b.commits)
	}
}

// TestBackendFailureAbortsWrite: a failed commit must leave no trace — no
// state change, no watcher notification, and version numbering continues
// as if the write never happened.
func TestBackendFailureAbortsWrite(t *testing.T) {
	s, b := backedStore(t)
	if _, err := s.Put(backedPolicy("p-a")); err != nil {
		t.Fatal(err)
	}
	var notified []Update
	s.Watch(func(u Update) { notified = append(notified, u) })

	boom := errors.New("wal unwritable")
	b.err = boom
	if _, err := s.Put(backedPolicy("p-a")); !errors.Is(err, boom) {
		t.Fatalf("Put = %v, want %v", err, boom)
	}
	if err := s.Delete("p-a"); !errors.Is(err, boom) {
		t.Fatalf("Delete = %v, want %v", err, boom)
	}
	if len(notified) != 0 {
		t.Fatalf("watchers saw %d aborted writes", len(notified))
	}
	if s.History("p-a") != 1 {
		t.Fatalf("History = %d after aborted writes, want 1", s.History("p-a"))
	}
	if _, err := s.Get("p-a"); err != nil {
		t.Fatalf("prior version lost: %v", err)
	}

	b.err = nil
	v, err := s.Put(backedPolicy("p-a"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("version after healed backend = %d, want 2 (aborted write must not burn a number)", v)
	}
	if len(b.commits) != 2 || b.commits[1].Version != 2 {
		t.Fatalf("commits = %+v", b.commits)
	}
}

// TestBackendCommitOrderMatchesWatchers: the backend and the watchers see
// one identical, serialised update sequence.
func TestBackendCommitOrderMatchesWatchers(t *testing.T) {
	s, b := backedStore(t)
	var notified []Update
	s.Watch(func(u Update) { notified = append(notified, u) })
	for i := 0; i < 5; i++ {
		if _, err := s.Put(backedPolicy(fmt.Sprintf("p-%d", i%2))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("p-0"); err != nil {
		t.Fatal(err)
	}
	if len(b.commits) != len(notified) {
		t.Fatalf("backend saw %d updates, watchers %d", len(b.commits), len(notified))
	}
	for i := range notified {
		c, w := b.commits[i], notified[i]
		if c.ID != w.ID || c.Version != w.Version || c.Deleted != w.Deleted {
			t.Fatalf("update %d: backend %+v, watcher %+v", i, c, w)
		}
	}
}

func TestHydrateAndReplay(t *testing.T) {
	s := NewStore("recovered")
	if err := s.Hydrate("p-a", 3, false, backedPolicy("p-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Hydrate("p-gone", 2, true, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Hydrate("p-a", 1, false, backedPolicy("p-a")); err == nil {
		t.Fatal("double hydrate accepted")
	}
	if s.History("p-a") != 3 {
		t.Fatalf("History = %d, want 3", s.History("p-a"))
	}
	if _, err := s.GetVersion("p-a", 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("compacted version readable: %v", err)
	}
	if _, err := s.GetVersion("p-a", 3); err != nil {
		t.Fatalf("latest version unreadable: %v", err)
	}
	if got := s.List(); len(got) != 1 || got[0] != "p-a" {
		t.Fatalf("List = %v", got)
	}

	// Replay continues exactly where the snapshot left off.
	if err := s.Replay(Update{ID: "p-a", Version: 4, Policy: backedPolicy("p-a")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Replay(Update{ID: "p-a", Version: 4, Policy: backedPolicy("p-a")}); err == nil {
		t.Fatal("out-of-order replay accepted")
	}
	if err := s.Replay(Update{ID: "p-gone", Version: 3, Policy: backedPolicy("p-gone")}); err != nil {
		t.Fatalf("resurrecting a deleted policy via replay: %v", err)
	}
	if err := s.Replay(Update{ID: "p-a", Deleted: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Replay(Update{ID: "p-a", Deleted: true}); err == nil {
		t.Fatal("replaying delete of a dead policy accepted")
	}
	if got := s.List(); len(got) != 1 || got[0] != "p-gone" {
		t.Fatalf("List = %v", got)
	}
	// Post-recovery writes continue the version numbering.
	v, err := s.Put(backedPolicy("p-a"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("version after recovery = %d, want 5", v)
	}
}
