package pap

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestPreCommitVeto pins the fail-closed contract the admin-plane lint
// gate builds on: a vetoing hook aborts the write before it is durable or
// visible — no version is assigned, no watcher fires, the store reads as
// if the write never happened — while passing writes proceed untouched.
func TestPreCommitVeto(t *testing.T) {
	s := NewStore("pap")
	if _, err := s.Put(permitPolicy("seed")); err != nil {
		t.Fatal(err)
	}

	var notified []string
	s.Watch(func(u Update) { notified = append(notified, u.ID) })

	veto := errors.New("lint gate says no")
	var hookSaw []Update
	s.PreCommit(func(u Update) error {
		hookSaw = append(hookSaw, u)
		if u.ID == "bad" || (u.Deleted && u.ID == "seed") {
			return veto
		}
		return nil
	})

	if _, err := s.Put(permitPolicy("bad")); !errors.Is(err, veto) {
		t.Fatalf("vetoed Put err = %v, want the hook's error", err)
	}
	if got := s.History("bad"); got != 0 {
		t.Fatalf("vetoed policy has %d versions, want 0", got)
	}
	if _, err := s.Get("bad"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("vetoed policy is readable: %v", err)
	}
	if err := s.Delete("seed"); !errors.Is(err, veto) {
		t.Fatalf("vetoed Delete err = %v, want the hook's error", err)
	}
	if got := s.History("seed"); got != 1 {
		t.Fatalf("vetoed delete changed history: %d versions, want 1", got)
	}
	if len(notified) != 0 {
		t.Fatalf("vetoed writes notified watchers: %v", notified)
	}

	// The hook saw both attempts, with the delete marked as such.
	if len(hookSaw) != 2 || hookSaw[0].ID != "bad" || !hookSaw[1].Deleted {
		t.Fatalf("hook observed %+v, want the put then the delete", hookSaw)
	}

	// Passing writes commit and notify normally.
	if _, err := s.Put(permitPolicy("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("good"); err != nil {
		t.Fatal(err)
	}
	if len(notified) != 2 {
		t.Fatalf("passing writes notified %d times, want 2", len(notified))
	}
}

// TestPreCommitErrorNames the store and policy so operators can attribute
// rejections in logs.
func TestPreCommitErrorContext(t *testing.T) {
	s := NewStore("ward-pap")
	s.PreCommit(func(Update) error { return fmt.Errorf("nope") })
	_, err := s.Put(permitPolicy("p1"))
	if err == nil {
		t.Fatal("vetoed Put returned nil")
	}
	for _, want := range []string{"ward-pap", "p1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}
