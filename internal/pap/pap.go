// Package pap implements Policy Administration Points: versioned policy
// repositories with validation, change notification, and self-protection
// (Sections 2.2 and 3.2 of the paper).
//
// A Store holds validated policies with full version history and notifies
// watchers of changes, which the syndication and PDP layers build on. A
// GuardedStore protects the administrative interface itself with the same
// PEP/PDP mechanism that protects ordinary resources — the administrative
// self-protection design the paper highlights (Section 3.2, "Security of
// Access Control Systems"), which keeps the whole system manageable with a
// single policy language.
package pap

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/pdp"
	"repro/internal/pep"
	"repro/internal/policy"
)

// Store errors, matched with errors.Is.
var (
	// ErrNotFound reports an unknown policy ID or version.
	ErrNotFound = errors.New("pap: policy not found")
	// ErrForbidden reports an administrative request the guard denied.
	ErrForbidden = errors.New("pap: administrative request denied")
)

// Update describes one change to the store. Carrying the new policy itself
// makes the notification a self-contained delta: watchers feed it straight
// into pdp.Engine.ApplyUpdate / cluster.Router.ApplyUpdate without a
// read-back that could race later writes.
type Update struct {
	// ID names the changed policy.
	ID string
	// Version is the new version number, 0 for deletions.
	Version int
	// Deleted marks removal.
	Deleted bool
	// Policy is the stored policy this update installed, nil for
	// deletions.
	Policy policy.Evaluable
}

// Watcher receives store change notifications. Watchers run synchronously
// in commit order: the store serialises notification delivery, so a
// watcher observing version n for a policy has already observed every
// earlier version. Watchers may read from the store but must not write to
// it (a write from a watcher would self-deadlock on the notification
// lock).
type Watcher func(Update)

// entry is the version history of one policy.
type entry struct {
	versions []policy.Evaluable // index i holds version i+1
	deleted  bool
}

// Store is a thread-safe versioned policy repository.
type Store struct {
	name string

	// notifyMu serialises change notification: it is taken before mu by
	// every writer and held until the watchers have run, so watchers see
	// updates in commit order — without it, two concurrent Puts of the
	// same policy could reach a watcher newest-first and leave a PDP
	// serving the older version (the PAP→PDP refresh race).
	notifyMu sync.Mutex

	mu       sync.RWMutex
	entries  map[string]*entry
	watchers []Watcher

	// backend, when attached, makes writes durable: every change is
	// committed to it — under notifyMu, so in commit order — before it
	// becomes visible to readers or watchers, and a failed commit aborts
	// the write entirely. See Backend in persist.go.
	backend Backend

	// preCommits run under notifyMu after validation but before the
	// backend commit; an error aborts the write. See PreCommit.
	preCommits []func(Update) error
}

// NewStore builds an empty administration point.
func NewStore(name string) *Store {
	return &Store{name: name, entries: make(map[string]*entry)}
}

// Name identifies the store.
func (s *Store) Name() string { return s.name }

// Watch registers a watcher invoked synchronously after every change.
func (s *Store) Watch(w Watcher) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watchers = append(s.watchers, w)
}

// WatchInstall runs install while change notification is quiesced and then
// registers the watcher, atomically: no Put or Delete can commit between
// install's snapshot of the store (e.g. BuildRoot + SetRoot on a fleet of
// engines) and the registration. A delta-driven consumer attached to a
// live store needs this — with plain Watch after a snapshot, an update
// committing in between would never reach the watcher, and a delta
// pipeline (unlike a full-rebuild watcher) would never heal the gap.
// install must not write to the store.
func (s *Store) WatchInstall(install func(*Store) error, w Watcher) error {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	if err := install(s); err != nil {
		return err
	}
	s.mu.Lock()
	s.watchers = append(s.watchers, w)
	s.mu.Unlock()
	return nil
}

// PreCommit registers a hook consulted before every write commits. Hooks
// run under the notification lock — serialised with all other writers and
// before the change becomes durable or visible — so a hook sees the store
// exactly as it is the instant before the write, with no later write
// racing past it. A hook returning an error aborts the write entirely;
// the store is unchanged and no watcher fires. This is how the static
// policy lint gate vetoes admin-plane writes invariantly. Hooks may read
// from the store but must not write to it (same self-deadlock rule as
// watchers).
func (s *Store) PreCommit(hook func(Update) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.preCommits = append(s.preCommits, hook)
}

// runPreCommits consults the registered hooks; callers hold notifyMu.
func (s *Store) runPreCommits(u Update) error {
	s.mu.RLock()
	hooks := s.preCommits
	s.mu.RUnlock()
	for _, hook := range hooks {
		if err := hook(u); err != nil {
			return fmt.Errorf("pap %s: pre-commit %s: %w", s.name, u.ID, err)
		}
	}
	return nil
}

// Put validates and stores a policy, returning its new version number. The
// policy's Version field is rewritten to the store-assigned version so
// retrieved policies self-describe.
func (s *Store) Put(e policy.Evaluable) (int, error) {
	if e == nil {
		return 0, fmt.Errorf("pap %s: nil policy", s.name)
	}
	if err := e.Validate(); err != nil {
		return 0, fmt.Errorf("pap %s: %w", s.name, err)
	}
	id := e.EntityID()
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()

	// Writers are serialised by notifyMu, so the version assigned under a
	// read lock cannot be invalidated by a concurrent writer; only readers
	// run while the backend makes the write durable below.
	s.mu.RLock()
	version := 1
	if ent, ok := s.entries[id]; ok {
		version = len(ent.versions) + 1
	}
	backend := s.backend
	s.mu.RUnlock()
	setVersion(e, version)
	u := Update{ID: id, Version: version, Policy: e}

	// Pre-commit hooks veto before durability: an aborted write leaves no
	// trace in the backend either.
	if err := s.runPreCommits(u); err != nil {
		return 0, err
	}

	// Durability before visibility: the change reaches the backend before
	// the in-memory state or any watcher can observe it, so an
	// acknowledged write survives a crash and an aborted one was never
	// served.
	if backend != nil {
		if err := backend.Commit(u); err != nil {
			return 0, fmt.Errorf("pap %s: commit %s: %w", s.name, id, err)
		}
	}

	s.mu.Lock()
	ent, ok := s.entries[id]
	if !ok {
		ent = &entry{}
		s.entries[id] = ent
	}
	ent.deleted = false
	ent.versions = append(ent.versions, e)
	watchers := s.watchers
	s.mu.Unlock()

	for _, w := range watchers {
		w(u)
	}
	return version, nil
}

func setVersion(e policy.Evaluable, v int) {
	switch x := e.(type) {
	case *policy.Policy:
		x.Version = strconv.Itoa(v)
	case *policy.PolicySet:
		x.Version = strconv.Itoa(v)
	}
}

// Get returns the latest version of the policy.
func (s *Store) Get(id string) (policy.Evaluable, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ent, ok := s.entries[id]
	if !ok || ent.deleted || len(ent.versions) == 0 {
		return nil, fmt.Errorf("pap %s: %q: %w", s.name, id, ErrNotFound)
	}
	return ent.versions[len(ent.versions)-1], nil
}

// GetVersion returns a specific historical version (1-based).
func (s *Store) GetVersion(id string, version int) (policy.Evaluable, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ent, ok := s.entries[id]
	if !ok || version < 1 || version > len(ent.versions) {
		return nil, fmt.Errorf("pap %s: %q version %d: %w", s.name, id, version, ErrNotFound)
	}
	e := ent.versions[version-1]
	if e == nil {
		// Pre-snapshot history is compacted away by crash recovery
		// (Store.Hydrate): the slot exists to keep numbering, the
		// policy itself is gone.
		return nil, fmt.Errorf("pap %s: %q version %d: history compacted: %w", s.name, id, version, ErrNotFound)
	}
	return e, nil
}

// Delete removes the policy (history is retained for audit).
func (s *Store) Delete(id string) error {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	s.mu.RLock()
	ent, ok := s.entries[id]
	live := ok && !ent.deleted
	backend := s.backend
	s.mu.RUnlock()
	if !live {
		return fmt.Errorf("pap %s: %q: %w", s.name, id, ErrNotFound)
	}
	u := Update{ID: id, Deleted: true}
	if err := s.runPreCommits(u); err != nil {
		return err
	}
	if backend != nil {
		if err := backend.Commit(u); err != nil {
			return fmt.Errorf("pap %s: commit delete %s: %w", s.name, id, err)
		}
	}
	s.mu.Lock()
	ent.deleted = true
	watchers := s.watchers
	s.mu.Unlock()
	for _, w := range watchers {
		w(u)
	}
	return nil
}

// List returns the IDs of live policies, sorted.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.entries))
	for id, ent := range s.entries {
		if !ent.deleted && len(ent.versions) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// History returns how many versions a policy has accumulated (including
// versions of deleted policies).
func (s *Store) History(id string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ent, ok := s.entries[id]
	if !ok {
		return 0
	}
	return len(ent.versions)
}

// BuildRoot assembles all live policies into a policy set ready to install
// in a PDP. Children are ordered by ID for determinism; the caller selects
// the combining algorithm. The live set is snapshotted under one read lock,
// so a concurrent Put or Delete can never make assembly fail or mix pre-
// and post-update state.
func (s *Store) BuildRoot(id string, combining policy.Algorithm) (*policy.PolicySet, error) {
	s.mu.RLock()
	live := make([]policy.Evaluable, 0, len(s.entries))
	for _, ent := range s.entries {
		if !ent.deleted && len(ent.versions) > 0 {
			live = append(live, ent.versions[len(ent.versions)-1])
		}
	}
	s.mu.RUnlock()
	sort.Slice(live, func(i, j int) bool { return live[i].EntityID() < live[j].EntityID() })
	b := policy.NewPolicySet(id).Combining(combining)
	for _, e := range live {
		b.Add(e)
	}
	root := b.Build()
	if err := root.Validate(); err != nil {
		return nil, fmt.Errorf("pap %s: assembled root: %w", s.name, err)
	}
	return root, nil
}

// RootInstaller is the decision-point surface the PAP→PDP refresh
// pipeline drives: incremental deltas with a full reinstall as fallback.
// Both *pdp.Engine and *cluster.Router satisfy it.
type RootInstaller interface {
	ApplyUpdate(u pdp.Update) error
	SetRoot(root policy.Evaluable) error
}

// Apply pushes one store change into a decision point: the delta path
// first, a full BuildRoot+SetRoot only when the point cannot be patched
// incrementally (pdp.ErrNotIncremental — e.g. no root installed yet).
// This is the one canonical refresh protocol; federation domains, the
// core facade's replicated deciders and the pdpd daemon all route
// through it.
func Apply(point RootInstaller, store *Store, u Update, rootID string, combining policy.Algorithm) error {
	err := point.ApplyUpdate(pdp.Update{ID: u.ID, Child: u.Policy})
	if errors.Is(err, pdp.ErrNotIncremental) {
		root, berr := store.BuildRoot(rootID, combining)
		if berr != nil {
			return berr
		}
		err = point.SetRoot(root)
	}
	return err
}

// Administrative action and resource-type names used by GuardedStore when
// composing administrative access requests. Administrative policies target
// these, so the authorisation system protects itself with its own language.
const (
	ActionPolicyRead   = "policy:read"
	ActionPolicyWrite  = "policy:write"
	ActionPolicyDelete = "policy:delete"
	ResourceTypePolicy = "policy"
)

// AdminRequest builds the access request describing an administrative
// operation on the store, evaluated against administrative policies.
func AdminRequest(admin, storeName, policyID, action string) *policy.Request {
	return policy.NewAccessRequest(admin, "pap:"+storeName+"/"+policyID, action).
		Add(policy.CategoryResource, policy.AttrResourceType, policy.String(ResourceTypePolicy)).
		Add(policy.CategoryResource, "policy-id", policy.String(policyID))
}

// GuardedStore protects a Store's administrative interface with an
// enforcement point.
type GuardedStore struct {
	store *Store
	guard *pep.Enforcer
}

// NewGuardedStore wraps the store behind the enforcer.
func NewGuardedStore(store *Store, guard *pep.Enforcer) *GuardedStore {
	return &GuardedStore{store: store, guard: guard}
}

// Put stores a policy if the administrator is authorised to write it.
func (g *GuardedStore) Put(ctx context.Context, admin string, e policy.Evaluable) (int, error) {
	if e == nil {
		return 0, fmt.Errorf("pap %s: nil policy", g.store.Name())
	}
	req := AdminRequest(admin, g.store.Name(), e.EntityID(), ActionPolicyWrite)
	if out := g.guard.Enforce(ctx, req); !out.Allowed {
		return 0, fmt.Errorf("pap %s: %s may not write %s: %v: %w",
			g.store.Name(), admin, e.EntityID(), out.Err, ErrForbidden)
	}
	return g.store.Put(e)
}

// Get retrieves a policy if the administrator is authorised to read it.
func (g *GuardedStore) Get(ctx context.Context, admin, id string) (policy.Evaluable, error) {
	req := AdminRequest(admin, g.store.Name(), id, ActionPolicyRead)
	if out := g.guard.Enforce(ctx, req); !out.Allowed {
		return nil, fmt.Errorf("pap %s: %s may not read %s: %v: %w",
			g.store.Name(), admin, id, out.Err, ErrForbidden)
	}
	return g.store.Get(id)
}

// Delete removes a policy if the administrator is authorised to delete it.
func (g *GuardedStore) Delete(ctx context.Context, admin, id string) error {
	req := AdminRequest(admin, g.store.Name(), id, ActionPolicyDelete)
	if out := g.guard.Enforce(ctx, req); !out.Allowed {
		return fmt.Errorf("pap %s: %s may not delete %s: %v: %w",
			g.store.Name(), admin, id, out.Err, ErrForbidden)
	}
	return g.store.Delete(id)
}

// Store exposes the underlying unguarded store for trusted internal use
// (PDP refresh, syndication).
func (g *GuardedStore) Store() *Store { return g.store }
