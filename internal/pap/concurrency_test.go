package pap

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/policy"
)

// TestConcurrentPutDeleteBuildRoot hammers the store with concurrent
// writers, deleters and root builders. Before BuildRoot snapshotted the
// live set under one lock, a Delete racing the List→Get window made root
// assembly fail with ErrNotFound; any such error now fails the test (run
// with -race).
func TestConcurrentPutDeleteBuildRoot(t *testing.T) {
	s := NewStore("pap")
	// Seed a stable population so BuildRoot always has work to do.
	for i := 0; i < 20; i++ {
		if _, err := s.Put(permitPolicy(fmt.Sprintf("stable-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	const (
		writers = 4
		rounds  = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*rounds*2)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("churn-%d-%02d", w, i%5)
				if _, err := s.Put(permitPolicy(id)); err != nil {
					errs <- err
					return
				}
				if err := s.Delete(id); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writers*rounds; i++ {
			root, err := s.BuildRoot("root", policy.DenyOverrides)
			if err != nil {
				errs <- fmt.Errorf("BuildRoot during churn: %w", err)
				return
			}
			if len(root.Children) < 20 {
				errs <- fmt.Errorf("BuildRoot dropped stable policies: %d children", len(root.Children))
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWatcherCommitOrder verifies the refresh-race fix: watchers observe
// updates in commit order, so a watcher can apply deltas blindly and end
// in the store's final state. Concurrent Puts of the same ID must never
// reach the watcher newest-first.
func TestWatcherCommitOrder(t *testing.T) {
	s := NewStore("pap")
	lastVersion := make(map[string]int)
	var mu sync.Mutex
	var outOfOrder []string
	s.Watch(func(u Update) {
		mu.Lock()
		defer mu.Unlock()
		if u.Deleted {
			return
		}
		if u.Version != lastVersion[u.ID]+1 {
			outOfOrder = append(outOfOrder,
				fmt.Sprintf("%s: saw version %d after %d", u.ID, u.Version, lastVersion[u.ID]))
		}
		lastVersion[u.ID] = u.Version
		if u.Policy == nil {
			outOfOrder = append(outOfOrder, u.ID+": update without policy payload")
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := s.Put(permitPolicy("contested")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(outOfOrder) > 0 {
		t.Fatalf("watcher saw updates out of commit order: %v", outOfOrder[:min(3, len(outOfOrder))])
	}
	if lastVersion["contested"] != 8*40 {
		t.Fatalf("final version = %d, want %d", lastVersion["contested"], 8*40)
	}
}

// TestWatchInstallNoLostUpdates races WatchInstall against a writer and
// asserts the atomicity contract: the first update a freshly registered
// watcher sees is exactly the successor of the version the install
// snapshot observed — no update can commit in between, so a delta-driven
// consumer starting from the snapshot misses nothing.
func TestWatchInstallNoLostUpdates(t *testing.T) {
	s := NewStore("pap")
	if _, err := s.Put(permitPolicy("p")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			if _, err := s.Put(permitPolicy("p")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var snap int
	var mu sync.Mutex
	first := -1
	err := s.WatchInstall(func(st *Store) error {
		e, err := st.Get("p")
		if err != nil {
			return err
		}
		snap, err = strconv.Atoi(e.(*policy.Policy).Version)
		return err
	}, func(u Update) {
		mu.Lock()
		defer mu.Unlock()
		if first < 0 {
			first = u.Version
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	if first >= 0 && first != snap+1 {
		t.Fatalf("first watched version = %d after snapshot of version %d: an update was lost in the watch window", first, snap)
	}
}
