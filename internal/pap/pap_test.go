package pap

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/pdp"
	"repro/internal/pep"
	"repro/internal/policy"
)

func permitPolicy(id string) *policy.Policy {
	return policy.NewPolicy(id).
		Combining(policy.DenyUnlessPermit).
		Rule(policy.Permit(id + "-allow").Build()).
		Build()
}

func TestPutGetVersioning(t *testing.T) {
	s := NewStore("pap-a")
	v1, err := s.Put(permitPolicy("p1"))
	if err != nil || v1 != 1 {
		t.Fatalf("Put v1 = %d, %v", v1, err)
	}
	v2, err := s.Put(permitPolicy("p1"))
	if err != nil || v2 != 2 {
		t.Fatalf("Put v2 = %d, %v", v2, err)
	}
	latest, err := s.Get("p1")
	if err != nil {
		t.Fatal(err)
	}
	if latest.(*policy.Policy).Version != "2" {
		t.Errorf("latest version = %s, want 2", latest.(*policy.Policy).Version)
	}
	old, err := s.GetVersion("p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if old.(*policy.Policy).Version != "1" {
		t.Errorf("historical version = %s, want 1", old.(*policy.Policy).Version)
	}
	if s.History("p1") != 2 {
		t.Errorf("History = %d, want 2", s.History("p1"))
	}
}

func TestPutRejectsInvalid(t *testing.T) {
	s := NewStore("pap")
	if _, err := s.Put(nil); err == nil {
		t.Error("nil policy must be rejected")
	}
	if _, err := s.Put(&policy.Policy{Combining: policy.DenyOverrides}); err == nil {
		t.Error("invalid policy must be rejected")
	}
}

func TestDeleteAndNotFound(t *testing.T) {
	s := NewStore("pap")
	if _, err := s.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
	if _, err := s.Put(permitPolicy("p1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("p1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted policy should be NotFound, got %v", err)
	}
	if err := s.Delete("p1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: want ErrNotFound, got %v", err)
	}
	// History survives deletion for audit.
	if s.History("p1") != 1 {
		t.Errorf("history after delete = %d, want 1", s.History("p1"))
	}
	// Re-adding continues the version sequence.
	v, err := s.Put(permitPolicy("p1"))
	if err != nil || v != 2 {
		t.Errorf("re-add version = %d, %v; want 2", v, err)
	}
}

func TestListSorted(t *testing.T) {
	s := NewStore("pap")
	for _, id := range []string{"zeta", "alpha", "mid"} {
		if _, err := s.Put(permitPolicy(id)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestWatchNotifications(t *testing.T) {
	s := NewStore("pap")
	var updates []Update
	s.Watch(func(u Update) { updates = append(updates, u) })
	if _, err := s.Put(permitPolicy("p1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(permitPolicy("p1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("p1"); err != nil {
		t.Fatal(err)
	}
	if len(updates) != 3 {
		t.Fatalf("got %d updates, want 3: %+v", len(updates), updates)
	}
	if updates[0].Version != 1 || updates[1].Version != 2 || !updates[2].Deleted {
		t.Errorf("updates = %+v", updates)
	}
}

func TestBuildRoot(t *testing.T) {
	s := NewStore("pap")
	if _, err := s.Put(permitPolicy("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(permitPolicy("a")); err != nil {
		t.Fatal(err)
	}
	root, err := s.BuildRoot("domain-root", policy.DenyOverrides)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 2 || root.Children[0].EntityID() != "a" {
		t.Errorf("root children = %v", root.Children)
	}
	// The assembled root drives a PDP directly.
	engine := pdp.New("pdp")
	if err := engine.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	if res := engine.Decide(context.Background(), policy.NewAccessRequest("u", "r", "read")); res.Decision != policy.DecisionPermit {
		t.Errorf("decision = %v", res.Decision)
	}
}

// adminGuard builds an enforcer whose policy allows only "root-admin" to
// write policies and anyone to read them.
func adminGuard(t *testing.T) *pep.Enforcer {
	t.Helper()
	adminPolicy := policy.NewPolicySet("admin").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("admin-rules").
			Combining(policy.FirstApplicable).
			When(policy.MatchResource(policy.AttrResourceType, policy.String(ResourceTypePolicy))).
			Rule(policy.Permit("reads").When(policy.MatchActionID(ActionPolicyRead)).Build()).
			Rule(policy.Permit("root-writes").
				When(policy.MatchSubject(policy.AttrSubjectID, policy.String("root-admin"))).
				Build()).
			Rule(policy.Deny("default").Build()).
			Build()).
		Build()
	engine := pdp.New("admin-pdp")
	if err := engine.SetRoot(adminPolicy); err != nil {
		t.Fatal(err)
	}
	return pep.NewEnforcer("admin-pep", engine)
}

func TestGuardedStoreSelfProtection(t *testing.T) {
	gs := NewGuardedStore(NewStore("pap"), adminGuard(t))

	// root-admin can write.
	if _, err := gs.Put(context.Background(), "root-admin", permitPolicy("p1")); err != nil {
		t.Fatalf("root-admin write: %v", err)
	}
	// An intern cannot.
	if _, err := gs.Put(context.Background(), "intern", permitPolicy("p2")); !errors.Is(err, ErrForbidden) {
		t.Errorf("intern write: want ErrForbidden, got %v", err)
	}
	// Anyone can read.
	if _, err := gs.Get(context.Background(), "intern", "p1"); err != nil {
		t.Errorf("intern read: %v", err)
	}
	// Delete requires write-grade rights; the policy above permits only
	// reads and root-admin, so intern deletion is refused.
	if err := gs.Delete(context.Background(), "intern", "p1"); !errors.Is(err, ErrForbidden) {
		t.Errorf("intern delete: want ErrForbidden, got %v", err)
	}
	if err := gs.Delete(context.Background(), "root-admin", "p1"); err != nil {
		t.Errorf("root-admin delete: %v", err)
	}
	if _, err := gs.Put(context.Background(), "root-admin", nil); err == nil {
		t.Error("nil policy must be rejected before enforcement")
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := NewStore("pap")
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 20; i++ {
				_, err = s.Put(permitPolicy(fmt.Sprintf("p-%d", w)))
				if err != nil {
					break
				}
			}
			done <- err
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if len(s.List()) != workers {
		t.Errorf("List len = %d, want %d", len(s.List()), workers)
	}
	for w := 0; w < workers; w++ {
		if s.History(fmt.Sprintf("p-%d", w)) != 20 {
			t.Errorf("worker %d history = %d, want 20", w, s.History(fmt.Sprintf("p-%d", w)))
		}
	}
}
