package pap

import (
	"fmt"

	"repro/internal/policy"
)

// Backend is the optional durability layer beneath a Store: a write-ahead
// log (internal/store) or a test double. Commit is called once per change
// with writers serialised in commit order — the same order watchers later
// observe — strictly before the change becomes visible to readers and
// before any watcher runs. An error from Commit aborts the write: the
// store is left untouched and the caller's Put or Delete fails, so an
// acknowledged write is always durable and a durable log never contains a
// write the store did not acknowledge... except for the final record of a
// crash window, which recovery handles by replaying the log (an extra
// committed-but-unacknowledged tail record is safe to re-apply because the
// client never saw the ack).
type Backend interface {
	Commit(Update) error
}

// SetBackend attaches the durability layer. Writes committed while no
// backend is attached are volatile; recovery bootstrap
// (store.Log.Bootstrap) hydrates the store first and attaches the log
// last, so replayed state is not re-appended to the log.
func (s *Store) SetBackend(b Backend) {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	s.mu.Lock()
	s.backend = b
	s.mu.Unlock()
}

// Hydrate installs one recovered snapshot entry: the policy's latest
// version at its pre-crash version number, or a tombstone for a deleted
// policy (preserving the version counter so post-recovery Puts continue
// the numbering). Earlier versions were compacted away by the snapshot, so
// GetVersion reports them as not found. Hydrate bypasses both the backend
// and the watchers — it rebuilds state that is already durable — and
// refuses to overwrite an existing entry.
func (s *Store) Hydrate(id string, versions int, deleted bool, latest policy.Evaluable) error {
	if id == "" || versions < 1 {
		return fmt.Errorf("pap %s: hydrate %q: need an ID and at least one version", s.name, id)
	}
	if !deleted {
		if latest == nil {
			return fmt.Errorf("pap %s: hydrate %q: live entry without a policy", s.name, id)
		}
		if got := latest.EntityID(); got != id {
			return fmt.Errorf("pap %s: hydrate %q: policy carries ID %q", s.name, id, got)
		}
		if err := latest.Validate(); err != nil {
			return fmt.Errorf("pap %s: hydrate %q: %w", s.name, id, err)
		}
	}
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[id]; exists {
		return fmt.Errorf("pap %s: hydrate %q: entry already present", s.name, id)
	}
	vs := make([]policy.Evaluable, versions)
	if !deleted {
		vs[versions-1] = latest
	}
	s.entries[id] = &entry{versions: vs, deleted: deleted}
	return nil
}

// Replay applies one recovered WAL delta: a Put at exactly the version the
// log recorded, or a Delete. Like Hydrate it bypasses the backend and the
// watchers. A version that does not follow the entry's current history is
// corruption (the log replayed out of order or against the wrong
// snapshot) and is rejected rather than papered over.
func (s *Store) Replay(u Update) error {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.Deleted {
		ent, ok := s.entries[u.ID]
		if !ok || ent.deleted {
			return fmt.Errorf("pap %s: replay delete %q: no live entry", s.name, u.ID)
		}
		ent.deleted = true
		return nil
	}
	if u.Policy == nil {
		return fmt.Errorf("pap %s: replay %q: update without a policy", s.name, u.ID)
	}
	if got := u.Policy.EntityID(); got != u.ID {
		return fmt.Errorf("pap %s: replay %q: policy carries ID %q", s.name, u.ID, got)
	}
	if err := u.Policy.Validate(); err != nil {
		return fmt.Errorf("pap %s: replay %q: %w", s.name, u.ID, err)
	}
	ent, ok := s.entries[u.ID]
	if !ok {
		ent = &entry{}
		s.entries[u.ID] = ent
	}
	if want := len(ent.versions) + 1; u.Version != want {
		return fmt.Errorf("pap %s: replay %q: version %d does not follow %d",
			s.name, u.ID, u.Version, len(ent.versions))
	}
	ent.deleted = false
	ent.versions = append(ent.versions, u.Policy)
	return nil
}
