package rest

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/policy"
)

// Ready-made content transformers for the obligation-driven content-based
// access control of Section 3.1. Policies parameterise them through
// obligation assignments, so one registered transformer serves arbitrarily
// many policies.

// RedactJSON removes fields from a JSON object (or from every element of a
// JSON array of objects) before release. The obligation's "fields"
// assignment names the fields to drop, comma-separated:
//
//	obligate redact on permit { fields = "ssn,insurance-id" }
func RedactJSON(ob policy.FulfilledObligation, body []byte) ([]byte, error) {
	spec, ok := ob.Attributes["fields"]
	if !ok {
		return nil, fmt.Errorf("rest: obligation %s: no fields assignment", ob.ID)
	}
	fields := make(map[string]struct{})
	for _, f := range strings.Split(spec.Str(), ",") {
		if f = strings.TrimSpace(f); f != "" {
			fields[f] = struct{}{}
		}
	}
	var doc any
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("rest: obligation %s: response is not JSON: %w", ob.ID, err)
	}
	doc = redactValue(doc, fields)
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("rest: obligation %s: %w", ob.ID, err)
	}
	return out, nil
}

func redactValue(v any, fields map[string]struct{}) any {
	switch x := v.(type) {
	case map[string]any:
		for name := range fields {
			delete(x, name)
		}
		for k, inner := range x {
			x[k] = redactValue(inner, fields)
		}
		return x
	case []any:
		for i, inner := range x {
			x[i] = redactValue(inner, fields)
		}
		return x
	default:
		return v
	}
}

// RequireField refuses release unless the JSON response object carries the
// field/value pair named by the obligation's "field" and "value"
// assignments — the paper's "advanced checks ... determine whether the
// resource should be sent back" case. For example, a policy may release
// documents only when their embedded classification matches the request:
//
//	obligate check-classification on permit { field = "classification" value = "public" }
func RequireField(ob policy.FulfilledObligation, body []byte) ([]byte, error) {
	fieldAttr, ok := ob.Attributes["field"]
	if !ok {
		return nil, fmt.Errorf("rest: obligation %s: no field assignment", ob.ID)
	}
	wantAttr, ok := ob.Attributes["value"]
	if !ok {
		return nil, fmt.Errorf("rest: obligation %s: no value assignment", ob.ID)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("rest: obligation %s: response is not a JSON object: %w", ob.ID, err)
	}
	got, ok := doc[fieldAttr.Str()]
	if !ok {
		return nil, fmt.Errorf("rest: obligation %s: response lacks field %q", ob.ID, fieldAttr.Str())
	}
	if fmt.Sprint(got) != wantAttr.String() {
		return nil, fmt.Errorf("rest: obligation %s: content check failed: %s = %v, want %s",
			ob.ID, fieldAttr.Str(), got, wantAttr)
	}
	return body, nil
}
