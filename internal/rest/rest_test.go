package rest

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/pdp"
	"repro/internal/policy"
)

func TestRouterMatching(t *testing.T) {
	r := NewRouter()
	r.MustAdd("/records/{id}", "patient-record")
	r.MustAdd("/wards/{ward}/records/{id}", "patient-record")
	r.MustAdd("/files/...", "file")
	r.MustAdd("/files/manifest", "manifest")
	r.MustAdd("/", "root")

	cases := []struct {
		path     string
		wantType string
		wantVars map[string]string
		wantRest string
	}{
		{"/records/rec-7", "patient-record", map[string]string{"id": "rec-7"}, ""},
		{"/wards/3/records/rec-9", "patient-record", map[string]string{"ward": "3", "id": "rec-9"}, ""},
		{"/files/a/b/c.txt", "file", nil, "a/b/c.txt"},
		// The literal route must beat the wildcard.
		{"/files/manifest", "manifest", nil, ""},
		{"/", "root", nil, ""},
	}
	for _, tt := range cases {
		t.Run(tt.path, func(t *testing.T) {
			m, err := r.Match(tt.path)
			if err != nil {
				t.Fatal(err)
			}
			if m.Route.ResourceType != tt.wantType {
				t.Errorf("type = %q, want %q", m.Route.ResourceType, tt.wantType)
			}
			if len(m.Vars) != len(tt.wantVars) {
				t.Errorf("vars = %v, want %v", m.Vars, tt.wantVars)
			}
			for k, v := range tt.wantVars {
				if m.Vars[k] != v {
					t.Errorf("var %s = %q, want %q", k, m.Vars[k], v)
				}
			}
			if m.Rest != tt.wantRest {
				t.Errorf("rest = %q, want %q", m.Rest, tt.wantRest)
			}
		})
	}

	if _, err := r.Match("/nowhere/at/all"); !errors.Is(err, ErrNoRoute) {
		t.Errorf("unrouted path: %v", err)
	}
}

func TestRouterBadPatterns(t *testing.T) {
	r := NewRouter()
	cases := []string{
		"records/{id}", // no leading slash
		"/a/.../b",     // wildcard not last
		"/a/{}",        // empty variable
		"/a//b",        // empty segment
		"/{x}/{x}",     // duplicate variable
	}
	for _, pattern := range cases {
		if err := r.Add(pattern, "t"); !errors.Is(err, ErrBadPattern) {
			t.Errorf("%q: err = %v, want ErrBadPattern", pattern, err)
		}
	}
}

func TestBuildRequest(t *testing.T) {
	r := NewRouter()
	r.MustAdd("/wards/{ward}/records/{id}", "patient-record")
	req, m, err := r.BuildRequest(http.MethodGet, "/wards/3/records/rec-7", nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Route.Pattern != "/wards/{ward}/records/{id}" {
		t.Errorf("route = %q", m.Route.Pattern)
	}
	if req.ResourceID() != "/wards/3/records/rec-7" {
		t.Errorf("resource-id = %q", req.ResourceID())
	}
	if req.ActionID() != "read" {
		t.Errorf("action = %q", req.ActionID())
	}
	if bag, _ := req.Get(policy.CategoryResource, "ward"); len(bag) != 1 || bag[0].Str() != "3" {
		t.Errorf("ward = %v", bag)
	}
	if bag, _ := req.Get(policy.CategoryResource, policy.AttrResourceType); len(bag) != 1 || bag[0].Str() != "patient-record" {
		t.Errorf("resource-type = %v", bag)
	}

	// Custom action table and unknown methods.
	req, _, err = r.BuildRequest("PROPFIND", "/wards/3/records/rec-7", map[string]string{"PROPFIND": "list"})
	if err != nil {
		t.Fatal(err)
	}
	if req.ActionID() != "list" {
		t.Errorf("custom action = %q", req.ActionID())
	}
	req, _, err = r.BuildRequest("BREW", "/wards/3/records/rec-7", nil)
	if err != nil {
		t.Fatal(err)
	}
	if req.ActionID() != "brew" {
		t.Errorf("fallback action = %q", req.ActionID())
	}
}

// recordsAPI is the protected upstream: it serves a JSON patient record.
func recordsAPI() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"id":"rec-7","diagnosis":"...","ssn":"123-45-6789","insurance-id":"I-9"}`)
	})
}

// clinicEngine permits doctors everything and nurses read-with-redaction.
func clinicEngine(t *testing.T) *pdp.Engine {
	t.Helper()
	root := policy.NewPolicySet("root").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("records").
			Combining(policy.FirstApplicable).
			When(policy.MatchResource(policy.AttrResourceType, policy.String("patient-record"))).
			Rule(policy.Permit("doctors").
				When(policy.MatchRole("doctor")).
				Build()).
			Rule(policy.Permit("nurses-redacted").
				When(policy.MatchRole("nurse"), policy.MatchActionID("read")).
				Obligation(policy.RequireObligation("redact", policy.EffectPermit,
					map[string]string{"fields": "ssn,insurance-id"})).
				Build()).
			Rule(policy.Permit("auditors-checked").
				When(policy.MatchRole("auditor")).
				Obligation(policy.RequireObligation("mystery-check", policy.EffectPermit, nil)).
				Build()).
			Build()).
		Build()
	e := pdp.New("clinic")
	if err := e.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	return e
}

func newClinicServer(t *testing.T) (*Middleware, *httptest.Server) {
	t.Helper()
	router := NewRouter()
	router.MustAdd("/records/{id}", "patient-record")
	mw := NewMiddleware(router, clinicEngine(t), HeaderSubject,
		WithTransformer("redact", RedactJSON))
	srv := httptest.NewServer(mw.Wrap(recordsAPI()))
	t.Cleanup(srv.Close)
	return mw, srv
}

func get(t *testing.T, url, subject, roles string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if subject != "" {
		req.Header.Set("X-Subject", subject)
	}
	if roles != "" {
		req.Header.Set("X-Roles", roles)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMiddlewareDoctorSeesEverything(t *testing.T) {
	_, srv := newClinicServer(t)
	resp, body := get(t, srv.URL+"/records/rec-7", "alice", "doctor")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "ssn") {
		t.Errorf("doctor response redacted: %s", body)
	}
}

func TestMiddlewareNurseGetsRedactedContent(t *testing.T) {
	mw, srv := newClinicServer(t)
	resp, body := get(t, srv.URL+"/records/rec-7", "nina", "nurse")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if strings.Contains(body, "ssn") || strings.Contains(body, "insurance-id") {
		t.Errorf("redaction failed: %s", body)
	}
	if !strings.Contains(body, "diagnosis") {
		t.Errorf("over-redacted: %s", body)
	}
	if st := mw.Stats(); st.Transformed != 1 || st.Permitted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMiddlewareDeniesStrangersAndUnknownPaths(t *testing.T) {
	mw, srv := newClinicServer(t)
	resp, _ := get(t, srv.URL+"/records/rec-7", "mallory", "visitor")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("visitor status = %d, want 403", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/records/rec-7", "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("anonymous status = %d, want 401", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/admin/users", "alice", "doctor")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unrouted status = %d, want 404", resp.StatusCode)
	}
	st := mw.Stats()
	if st.Denied != 3 || st.Unauthenticated != 1 || st.Unrouted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMiddlewareUnknownObligationFailsClosed(t *testing.T) {
	// The auditor's permit carries mystery-check, for which no transformer
	// is registered: obligations are must-understand, so access is refused.
	_, srv := newClinicServer(t)
	resp, _ := get(t, srv.URL+"/records/rec-7", "audrey", "auditor")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d, want 403", resp.StatusCode)
	}
}

func TestMiddlewareFailedContentCheckRefuses(t *testing.T) {
	// RedactJSON on a non-JSON body must refuse the whole response.
	router := NewRouter()
	router.MustAdd("/records/{id}", "patient-record")
	mw := NewMiddleware(router, clinicEngine(t), HeaderSubject,
		WithTransformer("redact", RedactJSON))
	srv := httptest.NewServer(mw.Wrap(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "this is not json")
	})))
	defer srv.Close()
	resp, _ := get(t, srv.URL+"/records/rec-7", "nina", "nurse")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d, want 403 (content check failed)", resp.StatusCode)
	}
}

func TestRedactJSONNestedAndArrays(t *testing.T) {
	ob := policy.FulfilledObligation{
		ID:         "redact",
		Attributes: map[string]policy.Value{"fields": policy.String("secret")},
	}
	in := []byte(`[{"a":1,"secret":2,"nested":{"secret":3,"keep":4}},{"secret":5}]`)
	out, err := RedactJSON(ob, in)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if strings.Contains(s, "secret") {
		t.Errorf("redaction incomplete: %s", s)
	}
	if !strings.Contains(s, `"keep":4`) || !strings.Contains(s, `"a":1`) {
		t.Errorf("over-redaction: %s", s)
	}
}

func TestRedactJSONMissingFieldsAssignment(t *testing.T) {
	if _, err := RedactJSON(policy.FulfilledObligation{ID: "redact"}, []byte(`{}`)); err == nil {
		t.Error("missing fields assignment must fail")
	}
}

func TestRequireField(t *testing.T) {
	ob := policy.FulfilledObligation{
		ID: "check",
		Attributes: map[string]policy.Value{
			"field": policy.String("classification"),
			"value": policy.String("public"),
		},
	}
	if _, err := RequireField(ob, []byte(`{"classification":"public","body":"x"}`)); err != nil {
		t.Errorf("matching content refused: %v", err)
	}
	if _, err := RequireField(ob, []byte(`{"classification":"secret"}`)); err == nil {
		t.Error("mismatching content released")
	}
	if _, err := RequireField(ob, []byte(`{"body":"x"}`)); err == nil {
		t.Error("missing field released")
	}
	if _, err := RequireField(ob, []byte(`not json`)); err == nil {
		t.Error("non-JSON released")
	}
}
