package rest

import (
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentMiddleware hammers the enforcement point with parallel
// clients of different privilege levels. Outcomes must stay principal-
// correct under contention: redaction applies exactly to nurses, refusals
// exactly to visitors.
func TestConcurrentMiddleware(t *testing.T) {
	mw, srv := newClinicServer(t)
	const perClient = 60
	var wg sync.WaitGroup
	errs := make(chan string, 3)
	run := func(subject, roles string, check func(status int, body string) string) {
		defer wg.Done()
		for i := 0; i < perClient; i++ {
			resp, body := get(t, srv.URL+"/records/rec-7", subject, roles)
			if msg := check(resp.StatusCode, body); msg != "" {
				errs <- subject + ": " + msg
				return
			}
		}
	}
	wg.Add(3)
	go run("alice", "doctor", func(status int, body string) string {
		if status != http.StatusOK || !strings.Contains(body, "ssn") {
			return "doctor lost full view"
		}
		return ""
	})
	go run("nina", "nurse", func(status int, body string) string {
		if status != http.StatusOK || strings.Contains(body, "ssn") {
			return "nurse redaction broke"
		}
		return ""
	})
	go run("mallory", "visitor", func(status int, _ string) string {
		if status != http.StatusForbidden {
			return "visitor slipped through"
		}
		return ""
	})
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	st := mw.Stats()
	if st.Requests != 3*perClient || st.Permitted != 2*perClient || st.Denied != perClient {
		t.Errorf("stats = %+v", st)
	}
	if st.Transformed != perClient {
		t.Errorf("transformed = %d, want %d", st.Transformed, perClient)
	}
}

// TestConcurrentRouterMutation exercises Add concurrent with Match; the
// race detector guards the route table.
func TestConcurrentRouterMutation(t *testing.T) {
	r := NewRouter()
	r.MustAdd("/records/{id}", "patient-record")
	srvDone := make(chan struct{})
	go func() {
		defer close(srvDone)
		for i := 0; i < 500; i++ {
			_ = r.Add("/extra/{id}", "extra")
		}
	}()
	for i := 0; i < 500; i++ {
		if _, err := r.Match("/records/rec-1"); err != nil {
			t.Fatalf("match lost existing route: %v", err)
		}
	}
	<-srvDone
}
