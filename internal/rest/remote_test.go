package rest

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/pdp"
	"repro/internal/wire"
)

// TestMiddlewareAgainstRemotePDP is the full externalised-authorisation
// deployment of the paper: the REST enforcement point in one process, the
// decision point behind an HTTP envelope endpoint in another. Decisions,
// obligations (content redaction) and fail-closed behaviour must all
// survive the network hop.
func TestMiddlewareAgainstRemotePDP(t *testing.T) {
	pdpSrv := httptest.NewServer(wire.HTTPHandler(pdp.Handler(clinicEngine(t))))
	defer pdpSrv.Close()
	client := pdp.NewClient(pdpSrv.URL, "pep.rest", "pdp.clinic")

	router := NewRouter()
	router.MustAdd("/records/{id}", "patient-record")
	mw := NewMiddleware(router, client, HeaderSubject,
		WithTransformer("redact", RedactJSON))
	apiSrv := httptest.NewServer(mw.Wrap(recordsAPI()))
	defer apiSrv.Close()

	resp, body := get(t, apiSrv.URL+"/records/rec-7", "alice", "doctor")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ssn") {
		t.Errorf("doctor via remote PDP: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, apiSrv.URL+"/records/rec-7", "nina", "nurse")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nurse via remote PDP: %d %s", resp.StatusCode, body)
	}
	if strings.Contains(body, "ssn") {
		t.Errorf("obligation lost crossing the wire: %s", body)
	}
	resp, _ = get(t, apiSrv.URL+"/records/rec-7", "mallory", "visitor")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("visitor via remote PDP: %d, want 403", resp.StatusCode)
	}

	// Kill the PDP: enforcement must fail closed, not open.
	pdpSrv.Close()
	resp, _ = get(t, apiSrv.URL+"/records/rec-7", "alice", "doctor")
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("dead PDP: %d, want 403 (fail closed)", resp.StatusCode)
	}
}
