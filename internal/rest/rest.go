// Package rest enforces access control over RESTful resource interfaces.
//
// Section 3.1 of the paper notes that for RESTful Web Services, where
// resources are addressed by URI and manipulated with the uniform HTTP
// method set, "it is much easier to control access" than for SOAP endpoints
// multiplexed behind a single URI — provided the enforcement point
// understands the URI space. This package supplies that enforcement point:
//
//   - Router maps URI templates such as /wards/{ward}/records/{id} onto
//     policy requests, binding path variables as resource attributes;
//   - Middleware wraps any http.Handler behind a deny-biased PEP that
//     derives a policy request from method + path, queries a decision
//     provider and enforces the outcome;
//   - response transformers implement the content-based access control the
//     paper derives from XACML obligations: a permit may carry an
//     obligation to inspect or redact the resource body before release,
//     and an obligation the middleware does not understand fails closed.
package rest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Package errors, matched with errors.Is.
var (
	// ErrNoRoute reports a path no route covers.
	ErrNoRoute = errors.New("rest: no route matches")
	// ErrBadPattern reports an invalid URI template.
	ErrBadPattern = errors.New("rest: invalid pattern")
)

// DefaultActions maps HTTP methods onto the action vocabulary policies use.
// The mapping follows REST conventions: safe methods read, PUT/PATCH/POST
// write, DELETE deletes.
var DefaultActions = map[string]string{
	http.MethodGet:    "read",
	http.MethodHead:   "read",
	http.MethodPost:   "write",
	http.MethodPut:    "write",
	http.MethodPatch:  "write",
	http.MethodDelete: "delete",
}

// Route is one URI template with its resource typing.
type Route struct {
	// Pattern is the URI template: literal segments, {name} variable
	// segments, and an optional trailing "..." wildcard that matches any
	// remainder. Patterns must start with '/'.
	Pattern string
	// ResourceType is bound as the resource-type attribute of matched
	// requests.
	ResourceType string

	segments []string
	wildcard bool
}

// MatchedRoute is the result of routing one path.
type MatchedRoute struct {
	// Route is the winning route.
	Route *Route
	// Vars holds the values captured by {name} segments.
	Vars map[string]string
	// Rest is the remainder consumed by a trailing wildcard.
	Rest string
}

// Router resolves request paths against an ordered route table. Routes are
// tried most-specific first: more literal segments win, declaration order
// breaks ties.
type Router struct {
	mu     sync.RWMutex
	routes []*Route
}

// NewRouter builds an empty router.
func NewRouter() *Router { return &Router{} }

// Add parses and registers a route.
func (r *Router) Add(pattern, resourceType string) error {
	rt, err := compileRoute(pattern, resourceType)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes = append(r.routes, rt)
	return nil
}

// MustAdd is Add for static route tables; it panics on a bad pattern.
func (r *Router) MustAdd(pattern, resourceType string) {
	if err := r.Add(pattern, resourceType); err != nil {
		panic(err)
	}
}

func compileRoute(pattern, resourceType string) (*Route, error) {
	if !strings.HasPrefix(pattern, "/") {
		return nil, fmt.Errorf("%w: %q must start with '/'", ErrBadPattern, pattern)
	}
	rt := &Route{Pattern: pattern, ResourceType: resourceType}
	trimmed := strings.Trim(pattern, "/")
	if trimmed != "" {
		rt.segments = strings.Split(trimmed, "/")
	}
	seen := make(map[string]struct{})
	for i, seg := range rt.segments {
		switch {
		case seg == "...":
			if i != len(rt.segments)-1 {
				return nil, fmt.Errorf("%w: %q: wildcard must be the last segment", ErrBadPattern, pattern)
			}
			rt.wildcard = true
			rt.segments = rt.segments[:i]
		case strings.HasPrefix(seg, "{") && strings.HasSuffix(seg, "}"):
			name := seg[1 : len(seg)-1]
			if name == "" {
				return nil, fmt.Errorf("%w: %q: empty variable name", ErrBadPattern, pattern)
			}
			if _, dup := seen[name]; dup {
				return nil, fmt.Errorf("%w: %q: duplicate variable %q", ErrBadPattern, pattern, name)
			}
			seen[name] = struct{}{}
		case seg == "":
			return nil, fmt.Errorf("%w: %q: empty segment", ErrBadPattern, pattern)
		}
	}
	return rt, nil
}

// literals counts non-variable segments, the specificity measure.
func (rt *Route) literals() int {
	n := 0
	for _, seg := range rt.segments {
		if !strings.HasPrefix(seg, "{") {
			n++
		}
	}
	return n
}

// match attempts to bind the path segments to the route.
func (rt *Route) match(parts []string) (map[string]string, string, bool) {
	if rt.wildcard {
		if len(parts) < len(rt.segments) {
			return nil, "", false
		}
	} else if len(parts) != len(rt.segments) {
		return nil, "", false
	}
	var vars map[string]string
	for i, seg := range rt.segments {
		if strings.HasPrefix(seg, "{") {
			if vars == nil {
				vars = make(map[string]string, 2)
			}
			vars[seg[1:len(seg)-1]] = parts[i]
			continue
		}
		if seg != parts[i] {
			return nil, "", false
		}
	}
	rest := ""
	if rt.wildcard {
		rest = strings.Join(parts[len(rt.segments):], "/")
	}
	return vars, rest, true
}

// Match resolves a path to its most specific route.
func (r *Router) Match(path string) (*MatchedRoute, error) {
	trimmed := strings.Trim(path, "/")
	var parts []string
	if trimmed != "" {
		parts = strings.Split(trimmed, "/")
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var best *MatchedRoute
	bestScore := -1
	for _, rt := range r.routes {
		vars, rest, ok := rt.match(parts)
		if !ok {
			continue
		}
		// Exact-length routes beat wildcard routes of the same literal
		// count; more literals always win.
		score := rt.literals() * 2
		if !rt.wildcard {
			score++
		}
		if score > bestScore {
			best = &MatchedRoute{Route: rt, Vars: vars, Rest: rest}
			bestScore = score
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, path)
	}
	return best, nil
}

// BuildRequest derives a policy request from an HTTP method and path:
// resource-id is the full path, resource-type comes from the route, path
// variables become resource attributes, and the method maps to an action
// through the actions table (DefaultActions when nil).
func (r *Router) BuildRequest(method, path string, actions map[string]string) (*policy.Request, *MatchedRoute, error) {
	m, err := r.Match(path)
	if err != nil {
		return nil, nil, err
	}
	if actions == nil {
		actions = DefaultActions
	}
	action, ok := actions[method]
	if !ok {
		action = strings.ToLower(method)
	}
	req := policy.NewRequest().
		Add(policy.CategoryResource, policy.AttrResourceID, policy.String(path)).
		Add(policy.CategoryAction, policy.AttrActionID, policy.String(action))
	if m.Route.ResourceType != "" {
		req.Add(policy.CategoryResource, policy.AttrResourceType, policy.String(m.Route.ResourceType))
	}
	for name, value := range m.Vars {
		req.Add(policy.CategoryResource, name, policy.String(value))
	}
	if m.Rest != "" {
		req.Add(policy.CategoryResource, "path-rest", policy.String(m.Rest))
	}
	return req, m, nil
}

// DecisionProvider abstracts the PDP the middleware queries. The incoming
// http.Request's context is threaded into every query, so a client that
// disconnects — or a server write deadline about to fire — cancels the
// decision instead of leaving it running; an out-of-time decision is
// Indeterminate, which the middleware denies.
type DecisionProvider interface {
	DecideAt(ctx context.Context, req *policy.Request, at time.Time) policy.Result
}

// SubjectFunc extracts the requesting subject from the HTTP request and
// adds its attributes to the policy request. Returning an error refuses the
// request as unauthenticated (401).
type SubjectFunc func(r *http.Request, req *policy.Request) error

// HeaderSubject derives the subject from plain headers, the simplest
// deployment: X-Subject carries the identifier, X-Roles a comma-separated
// role list. Production deployments substitute a verified-token extractor
// with the same shape.
func HeaderSubject(r *http.Request, req *policy.Request) error {
	id := r.Header.Get("X-Subject")
	if id == "" {
		return errors.New("rest: no X-Subject header")
	}
	req.Add(policy.CategorySubject, policy.AttrSubjectID, policy.String(id))
	if roles := r.Header.Get("X-Roles"); roles != "" {
		for _, role := range strings.Split(roles, ",") {
			req.Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String(strings.TrimSpace(role)))
		}
	}
	return nil
}

// Transformer rewrites a response body to discharge one content obligation.
type Transformer func(ob policy.FulfilledObligation, body []byte) ([]byte, error)

// Middleware is the REST enforcement point.
type Middleware struct {
	router       *Router
	pdp          DecisionProvider
	subject      SubjectFunc
	actions      map[string]string
	transformers map[string]Transformer
	now          func() time.Time
	tracer       *trace.Tracer

	mu    sync.Mutex
	stats Stats
}

// Stats counts middleware activity.
type Stats struct {
	// Requests counts accesses intercepted.
	Requests int64
	// Permitted and Denied count outcomes; Unrouted counts paths outside
	// the route table (denied), Unauthenticated counts missing subjects.
	Permitted, Denied, Unrouted, Unauthenticated int64
	// Transformed counts responses rewritten by content obligations.
	Transformed int64
}

// MiddlewareOption configures the middleware.
type MiddlewareOption func(*Middleware)

// WithActions overrides the method-to-action table.
func WithActions(actions map[string]string) MiddlewareOption {
	return func(m *Middleware) { m.actions = actions }
}

// WithTransformer registers the handler for a content obligation ID.
func WithTransformer(obligationID string, t Transformer) MiddlewareOption {
	return func(m *Middleware) { m.transformers[obligationID] = t }
}

// WithClock overrides the middleware clock.
func WithClock(now func() time.Time) MiddlewareOption {
	return func(m *Middleware) { m.now = now }
}

// WithTracer roots a decision trace at the enforcement point: each
// intercepted request becomes a trace whose spans follow the decision
// through engine, cluster, PIP and any remote PDP hop. Sampled (and
// slow/Indeterminate) traces are retained by the tracer; every traced
// response carries its ID in the X-Trace-Id header so a caller can quote
// it against /debug/traces.
func WithTracer(t *trace.Tracer) MiddlewareOption {
	return func(m *Middleware) { m.tracer = t }
}

// NewMiddleware builds the enforcement point.
func NewMiddleware(router *Router, pdp DecisionProvider, subject SubjectFunc, opts ...MiddlewareOption) *Middleware {
	m := &Middleware{
		router:       router,
		pdp:          pdp,
		subject:      subject,
		transformers: make(map[string]Transformer),
		now:          time.Now,
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Stats returns a snapshot of the counters.
func (m *Middleware) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// RegisterMetrics exposes the enforcement point's counters on the
// registry (pull-model; the collector takes the stats lock at scrape time
// only).
func (m *Middleware) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("repro_rest_requests_total",
		"Accesses intercepted by the REST enforcement point.",
		func() int64 { return m.Stats().Requests })
	reg.Register("repro_rest_outcomes_total",
		"Enforcement outcomes at the REST enforcement point.",
		telemetry.KindCounter, func() []telemetry.Sample {
			st := m.Stats()
			return []telemetry.Sample{
				{Labels: []telemetry.Label{telemetry.L("outcome", "permitted")}, Value: float64(st.Permitted)},
				{Labels: []telemetry.Label{telemetry.L("outcome", "denied")}, Value: float64(st.Denied)},
				{Labels: []telemetry.Label{telemetry.L("outcome", "unrouted")}, Value: float64(st.Unrouted)},
				{Labels: []telemetry.Label{telemetry.L("outcome", "unauthenticated")}, Value: float64(st.Unauthenticated)},
			}
		})
	reg.CounterFunc("repro_rest_transformed_total",
		"Responses rewritten by content obligations.",
		func() int64 { return m.Stats().Transformed })
}

func (m *Middleware) count(f func(*Stats)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f(&m.stats)
}

// bodyRecorder buffers the downstream response so content obligations can
// rewrite it before release.
type bodyRecorder struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBodyRecorder() *bodyRecorder {
	return &bodyRecorder{header: make(http.Header), status: http.StatusOK}
}

// Header implements http.ResponseWriter.
func (b *bodyRecorder) Header() http.Header { return b.header }

// WriteHeader implements http.ResponseWriter.
func (b *bodyRecorder) WriteHeader(status int) { b.status = status }

// Write implements http.ResponseWriter.
func (b *bodyRecorder) Write(p []byte) (int, error) { return b.body.Write(p) }

// Wrap guards the handler: every request must earn a Permit, and permits
// carrying content obligations have their responses transformed (or, when
// no transformer is registered, refused — obligations are must-understand).
func (m *Middleware) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.count(func(s *Stats) { s.Requests++ })
		ctx := r.Context()
		var root *trace.Span
		if m.tracer != nil {
			ctx, root = m.tracer.StartRoot(ctx, "rest "+r.Method+" "+r.URL.Path)
			defer root.End()
			root.SetAttr("http.method", r.Method)
			root.SetAttr("http.path", r.URL.Path)
			w.Header().Set("X-Trace-Id", root.TraceID.String())
			r = r.WithContext(ctx)
		}
		req, _, err := m.router.BuildRequest(r.Method, r.URL.Path, m.actions)
		if err != nil {
			m.count(func(s *Stats) { s.Unrouted++; s.Denied++ })
			root.SetAttr("rest.outcome", "unrouted")
			http.Error(w, "no such resource", http.StatusNotFound)
			return
		}
		if err := m.subject(r, req); err != nil {
			m.count(func(s *Stats) { s.Unauthenticated++; s.Denied++ })
			root.SetAttr("rest.outcome", "unauthenticated")
			http.Error(w, "authentication required", http.StatusUnauthorized)
			return
		}
		root.SetAttr("rest.subject", req.SubjectID())
		res := m.pdp.DecideAt(ctx, req, m.now())
		root.SetAttr("rest.decision", res.Decision.String())
		if res.Decision == policy.DecisionIndeterminate {
			// The always-capture invariant at the enforcement point: a
			// decision that failed closed is retained whatever the
			// sampling rate says.
			root.Keep()
		}
		if res.Decision != policy.DecisionPermit {
			m.count(func(s *Stats) { s.Denied++ })
			http.Error(w, "access denied", http.StatusForbidden)
			return
		}
		// Split obligations into content transformations and the rest;
		// anything without a transformer vetoes the permit.
		var pending []policy.FulfilledObligation
		for _, ob := range res.Obligations {
			if _, ok := m.transformers[ob.ID]; !ok {
				m.count(func(s *Stats) { s.Denied++ })
				http.Error(w, "access denied", http.StatusForbidden)
				return
			}
			pending = append(pending, ob)
		}
		if len(pending) == 0 {
			m.count(func(s *Stats) { s.Permitted++ })
			next.ServeHTTP(w, r)
			return
		}
		rec := newBodyRecorder()
		next.ServeHTTP(rec, r)
		body := rec.body.Bytes()
		for _, ob := range pending {
			body, err = m.transformers[ob.ID](ob, body)
			if err != nil {
				// The content check failed: the paper's content-based
				// access control demands refusal, not partial release.
				m.count(func(s *Stats) { s.Denied++ })
				http.Error(w, "access denied", http.StatusForbidden)
				return
			}
		}
		m.count(func(s *Stats) { s.Permitted++; s.Transformed++ })
		for k, vals := range rec.header {
			if k == "Content-Length" {
				continue
			}
			w.Header()[k] = vals
		}
		w.WriteHeader(rec.status)
		_, _ = w.Write(body)
	})
}
