package pdp

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/policy"
)

type cacheEntry struct {
	res     policy.Result
	expires time.Time
	// stored is the evaluation time — the staleness metadata degraded
	// mode measures its grace window against.
	stored time.Time
	// resID keys the entry by the request's resource, so ApplyUpdate can
	// invalidate only the decisions a changed child constrains.
	resID string
}

// decisionCache is the engine's TTL decision cache, striped across a
// power-of-two array of shards keyed by the request's memoised cache-key
// hash. A hit or fill takes exactly one shard mutex, so concurrent
// decisions for different keys proceed without contending on a single
// engine-wide lock; size bounds and eviction are per shard, so an eviction
// sweep never stalls the other shards either.
type decisionCache struct {
	ttl  time.Duration
	mask uint64
	// grace keeps expired entries touchable for bounded-staleness
	// degraded serving (WithStaleGrace): an expired entry survives until
	// its age exceeds grace, available to getStale but never to get. Zero
	// restores delete-on-touch expiry.
	grace  time.Duration
	shards []cacheShard
}

// cacheShard is one stripe of the cache. The trailing pad keeps each
// shard's mutex on its own cache line, so shard locks taken by different
// cores do not false-share.
type cacheShard struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	max     int
	_       [40]byte
}

// minShardCapacity floors each shard's entry bound when splitting the
// configured total: below it, a small cache spread over many shards would
// hold far fewer decisions than the caller sized it for, and hot keys
// colliding in a near-empty shard would evict each other on every miss.
const minShardCapacity = 64

// newDecisionCache sizes the stripe count to the available parallelism
// (rounded up to a power of two, capped at 256), then shrinks it until
// every shard keeps a useful share of the total entry bound, which is
// split across shards rounding up — striping trades at most n-1 entries
// of over-capacity, never under-capacity.
func newDecisionCache(ttl time.Duration, maxItems int) *decisionCache {
	n := 1
	for n < runtime.GOMAXPROCS(0)*4 && n < 256 {
		n <<= 1
	}
	for n > 1 && maxItems/n < minShardCapacity {
		n >>= 1
	}
	perShard := (maxItems + n - 1) / n
	c := &decisionCache{ttl: ttl, mask: uint64(n - 1), shards: make([]cacheShard, n)}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]cacheEntry, 8)
		c.shards[i].max = perShard
	}
	return c
}

func (c *decisionCache) shard(hash uint64) *cacheShard {
	return &c.shards[hash&c.mask]
}

// get returns the live cached decision for the key, deleting the entry
// instead when it has expired so dead entries stop pinning memory the
// moment they are touched (the insert-time sweep reclaims untouched ones).
func (c *decisionCache) get(key string, hash uint64, at time.Time) (policy.Result, bool) {
	sh := c.shard(hash)
	sh.mu.Lock()
	entry, ok := sh.entries[key]
	if ok && at.Before(entry.expires) {
		sh.mu.Unlock()
		return entry.res, true
	}
	if ok && (c.grace <= 0 || at.Sub(entry.stored) > c.grace) {
		// Beyond TTL — and, when degraded mode keeps a grace window,
		// beyond that too: nothing can ever serve it again.
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	return policy.Result{}, false
}

// getStale returns the entry for the key regardless of TTL expiry, as long
// as its age at `at` is within the configured grace window, along with
// that age — the degraded-mode read path. Over-grace entries are deleted
// on touch: the staleness bound is enforced here.
func (c *decisionCache) getStale(key string, hash uint64, at time.Time) (policy.Result, time.Duration, bool) {
	sh := c.shard(hash)
	sh.mu.Lock()
	entry, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		return policy.Result{}, 0, false
	}
	age := at.Sub(entry.stored)
	if age > c.grace {
		delete(sh.entries, key)
		sh.mu.Unlock()
		return policy.Result{}, 0, false
	}
	sh.mu.Unlock()
	if age < 0 {
		age = 0
	}
	return entry.res, age, true
}

// evictProbe bounds the expired-first scan on an at-capacity insert, so
// reclamation stays O(1) per miss instead of sweeping the whole shard
// under its lock.
const evictProbe = 8

// insertLocked stores an entry, making room at the shard bound by probing
// a bounded sample for expired entries first (map iteration order is
// randomized, so a full shard of dead entries drains across successive
// fills) and evicting one sampled live entry only when nothing in the
// sample has expired. Callers hold sh.mu.
func (sh *cacheShard) insertLocked(key string, entry cacheEntry, at time.Time) {
	if _, exists := sh.entries[key]; !exists && len(sh.entries) >= sh.max {
		victim := ""
		scanned, reclaimed := 0, false
		for k, en := range sh.entries {
			if scanned == 0 {
				victim = k
			}
			if !at.Before(en.expires) {
				delete(sh.entries, k)
				reclaimed = true
			}
			if scanned++; scanned >= evictProbe {
				break
			}
		}
		if !reclaimed {
			delete(sh.entries, victim)
		}
	}
	sh.entries[key] = entry
}

// invalidate drops every entry whose resource key is in affected,
// returning how many were dropped. Each shard is swept under its own lock;
// concurrent hits in other shards proceed untouched.
func (c *decisionCache) invalidate(affected map[string]struct{}) int64 {
	var dropped int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, entry := range sh.entries {
			if _, hit := affected[entry.resID]; hit {
				delete(sh.entries, key)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// flush drops every cached decision.
func (c *decisionCache) flush() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]cacheEntry, 8)
		sh.mu.Unlock()
	}
}

// len reports the cached entry count across all shards.
func (c *decisionCache) len() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return n
}
