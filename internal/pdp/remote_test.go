package pdp

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/wire"
)

// newRemotePDP serves an engine over the envelope HTTP binding, the
// cmd/pdpd deployment in miniature.
func newRemotePDP(t *testing.T) *httptest.Server {
	t.Helper()
	engine := New("remote")
	if err := engine.SetRoot(rolePolicy()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wire.HTTPHandler(Handler(engine)))
	t.Cleanup(srv.Close)
	return srv
}

func TestRemoteClientRoundTrip(t *testing.T) {
	srv := newRemotePDP(t)
	client := NewClient(srv.URL, "pep.test", "pdp.remote")
	at := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)

	doctor := policy.NewAccessRequest("alice", "rec-1", "read").
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String("doctor"))
	res := client.DecideAt(context.Background(), doctor, at)
	if res.Decision != policy.DecisionPermit {
		t.Fatalf("remote decision = %v (%v), want Permit", res.Decision, res.Err)
	}
	if res.By == "" {
		t.Error("decider attribution lost in transit")
	}

	visitor := policy.NewAccessRequest("eve", "rec-1", "read")
	if res := client.Decide(context.Background(), visitor); res.Decision != policy.DecisionDeny {
		t.Errorf("visitor decision = %v, want Deny", res.Decision)
	}
}

func TestRemoteClientFailsClosed(t *testing.T) {
	// A dead endpoint must produce Indeterminate (which deny-biased PEPs
	// refuse), never a permit and never a panic.
	srv := newRemotePDP(t)
	srv.Close()
	client := NewClient(srv.URL, "pep.test", "pdp.remote")
	res := client.Decide(context.Background(), policy.NewAccessRequest("alice", "rec-1", "read"))
	if res.Decision != policy.DecisionIndeterminate || res.Err == nil {
		t.Errorf("dead PDP: got %+v, want Indeterminate with error", res)
	}
}

func TestRemoteClientRejectsGarbageEndpoint(t *testing.T) {
	// An endpoint that answers non-envelope bodies fails closed too.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("I am not an envelope"))
	}))
	defer srv.Close()
	client := NewClient(srv.URL, "pep.test", "pdp.remote")
	res := client.Decide(context.Background(), policy.NewAccessRequest("alice", "rec-1", "read"))
	if res.Decision != policy.DecisionIndeterminate {
		t.Errorf("garbage endpoint: got %v, want Indeterminate", res.Decision)
	}
}

func TestHandlerRejectsUndecodableContext(t *testing.T) {
	engine := New("remote")
	if err := engine.SetRoot(rolePolicy()); err != nil {
		t.Fatal(err)
	}
	h := Handler(engine)
	_, err := h(context.Background(), &wire.Call{}, &wire.Envelope{Body: []byte("neither xml nor json")})
	if err == nil {
		t.Error("undecodable context must error")
	}
}
