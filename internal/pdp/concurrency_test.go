package pdp

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestConcurrentDecideWithAdministration hammers one engine with parallel
// decisions while an administrator swaps the policy base and flushes the
// cache — the live-reconfiguration scenario of Section 3.2 (Management).
// Every decision must be a valid outcome of one of the two installed
// bases; the race detector guards the internals.
func TestConcurrentDecideWithAdministration(t *testing.T) {
	permitBase := policy.NewPolicySet("permit-base").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("open").
			Combining(policy.DenyUnlessPermit).
			Rule(policy.Permit("read-all").When(policy.MatchActionID("read")).Build()).
			Build()).
		Build()
	denyBase := policy.NewPolicySet("deny-base").Combining(policy.DenyOverrides).
		Add(policy.NewPolicy("closed").
			Combining(policy.FirstApplicable).
			Rule(policy.Deny("deny-all").Build()).
			Build()).
		Build()

	e := New("concurrent", WithDecisionCache(time.Second, 0), WithTargetIndex())
	if err := e.SetRoot(permitBase); err != nil {
		t.Fatal(err)
	}

	const (
		readers   = 8
		decisions = 500
	)
	at := time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			req := policy.NewAccessRequest("u", "res", "read")
			for i := 0; i < decisions; i++ {
				res := e.DecideAt(context.Background(), req, at.Add(time.Duration(i)*time.Millisecond))
				if res.Decision != policy.DecisionPermit && res.Decision != policy.DecisionDeny {
					errs <- res.Decision.String()
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			base := policy.Evaluable(permitBase)
			if i%2 == 1 {
				base = denyBase
			}
			if err := e.SetRoot(base); err != nil {
				errs <- err.Error()
				return
			}
			e.FlushCache()
			_ = e.Stats()
		}
	}()
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatalf("concurrent decision/administration failed: %s", msg)
	}
}
