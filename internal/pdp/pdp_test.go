package pdp

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/pip"
	"repro/internal/policy"
)

// resourcePolicies builds a policy base with one policy per resource plus a
// global deny for the "restricted" classification.
func resourcePolicies(n int) *policy.PolicySet {
	b := policy.NewPolicySet("base").Combining(policy.DenyOverrides)
	for i := 0; i < n; i++ {
		res := fmt.Sprintf("res-%d", i)
		b.Add(policy.NewPolicy("pol-" + res).
			Combining(policy.FirstApplicable).
			When(policy.MatchResourceID(res)).
			Rule(policy.Permit("allow-read").When(policy.MatchActionID("read")).Build()).
			Rule(policy.Deny("default").Build()).
			Build())
	}
	b.Add(policy.NewPolicy("global-restricted").
		Combining(policy.FirstApplicable).
		When(policy.MatchResource(policy.AttrClassification, policy.String("restricted"))).
		Rule(policy.Deny("no-restricted").Build()).
		Build())
	return b.Build()
}

func TestEngineBasicDecisions(t *testing.T) {
	e := New("pdp-1")
	if err := e.SetRoot(resourcePolicies(4)); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		req  *policy.Request
		want policy.Decision
	}{
		{"read-allowed", policy.NewAccessRequest("u", "res-2", "read"), policy.DecisionPermit},
		{"write-denied", policy.NewAccessRequest("u", "res-2", "write"), policy.DecisionDeny},
		{"unknown-resource", policy.NewAccessRequest("u", "res-99", "read"), policy.DecisionNotApplicable},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := e.Decide(context.Background(), tt.req); got.Decision != tt.want {
				t.Errorf("got %v, want %v", got.Decision, tt.want)
			}
		})
	}
	st := e.Stats()
	if st.Evaluations != 3 || st.Permits != 1 || st.Denies != 1 || st.NotApplicables != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineNoPolicy(t *testing.T) {
	e := New("empty")
	res := e.Decide(context.Background(), policy.NewAccessRequest("u", "r", "read"))
	if res.Decision != policy.DecisionIndeterminate || !errors.Is(res.Err, ErrNoPolicy) {
		t.Errorf("got %v / %v, want Indeterminate / ErrNoPolicy", res.Decision, res.Err)
	}
}

func TestEngineRejectsInvalidRoot(t *testing.T) {
	e := New("pdp")
	if err := e.SetRoot(nil); err == nil {
		t.Error("nil root must be rejected")
	}
	bad := &policy.Policy{ID: "", Combining: policy.DenyOverrides}
	if err := e.SetRoot(bad); err == nil {
		t.Error("invalid root must be rejected")
	}
}

func TestIndexMatchesLinearScan(t *testing.T) {
	// The target index is an optimisation: it must never change decisions.
	root := resourcePolicies(50)
	linear := New("linear")
	indexed := New("indexed", WithTargetIndex())
	if err := linear.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	if err := indexed.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	reqs := []*policy.Request{
		policy.NewAccessRequest("u", "res-0", "read"),
		policy.NewAccessRequest("u", "res-49", "write"),
		policy.NewAccessRequest("u", "res-7", "read").
			Add(policy.CategoryResource, policy.AttrClassification, policy.String("restricted")),
		policy.NewAccessRequest("u", "nonexistent", "read"),
	}
	for i, req := range reqs {
		a := linear.Decide(context.Background(), req)
		b := indexed.Decide(context.Background(), req)
		if a.Decision != b.Decision {
			t.Errorf("request %d: linear=%v indexed=%v", i, a.Decision, b.Decision)
		}
		if a.By != b.By {
			t.Errorf("request %d: deciders diverge: %q vs %q", i, a.By, b.By)
		}
	}
	st := indexed.Stats()
	if st.IndexedCandidates == 0 {
		t.Error("index should report candidate counts")
	}
	// Selectivity: with 51 children, candidates per request must be tiny.
	perReq := float64(st.IndexedCandidates) / float64(st.Evaluations)
	if perReq > 3 {
		t.Errorf("index considered %.1f candidates/request, want <= 3", perReq)
	}
}

func TestIndexPreservesFirstApplicableOrder(t *testing.T) {
	// A catch-all deny placed before a specific permit must win under
	// first-applicable even when the index pulls the specific policy.
	root := policy.NewPolicySet("ordered").Combining(policy.FirstApplicable).
		Add(
			policy.NewPolicy("freeze").
				Combining(policy.FirstApplicable).
				Rule(policy.Deny("deny-all").When(policy.MatchActionID("write")).Build()).
				Build(),
			policy.NewPolicy("specific").
				Combining(policy.FirstApplicable).
				When(policy.MatchResourceID("db")).
				Rule(policy.Permit("ok").Build()).
				Build(),
		).Build()
	indexed := New("indexed", WithTargetIndex())
	if err := indexed.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	res := indexed.Decide(context.Background(), policy.NewAccessRequest("u", "db", "write"))
	if res.Decision != policy.DecisionDeny {
		t.Errorf("got %v, want Deny (catch-all must keep its position)", res.Decision)
	}
	res = indexed.Decide(context.Background(), policy.NewAccessRequest("u", "db", "read"))
	if res.Decision != policy.DecisionPermit {
		t.Errorf("got %v, want Permit", res.Decision)
	}
}

func TestDecisionCache(t *testing.T) {
	now := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	e := New("cached",
		WithDecisionCache(30*time.Second, 0),
		WithClock(func() time.Time { return now }))
	if err := e.SetRoot(resourcePolicies(4)); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("u", "res-1", "read")
	for i := 0; i < 5; i++ {
		if res := e.Decide(context.Background(), req); res.Decision != policy.DecisionPermit {
			t.Fatalf("decision %d = %v", i, res.Decision)
		}
	}
	st := e.Stats()
	if st.Evaluations != 1 || st.CacheHits != 4 {
		t.Errorf("stats = %+v, want 1 evaluation + 4 hits", st)
	}

	// TTL expiry forces re-evaluation.
	now = now.Add(time.Minute)
	e.Decide(context.Background(), req)
	if st := e.Stats(); st.Evaluations != 2 {
		t.Errorf("after TTL: evaluations = %d, want 2", st.Evaluations)
	}
}

func TestSetRootFlushesCache(t *testing.T) {
	now := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	e := New("cached",
		WithDecisionCache(time.Hour, 0),
		WithClock(func() time.Time { return now }))
	permitAll := policy.NewPolicySet("v1").Combining(policy.PermitUnlessDeny).Build()
	if err := e.SetRoot(permitAll); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("u", "r", "read")
	if res := e.Decide(context.Background(), req); res.Decision != policy.DecisionPermit {
		t.Fatalf("v1 decision = %v", res.Decision)
	}
	denyAll := policy.NewPolicySet("v2").Combining(policy.DenyUnlessPermit).Build()
	if err := e.SetRoot(denyAll); err != nil {
		t.Fatal(err)
	}
	if res := e.Decide(context.Background(), req); res.Decision != policy.DecisionDeny {
		t.Errorf("after policy update decision = %v, want Deny (cache flushed)", res.Decision)
	}
}

func TestCacheBoundEviction(t *testing.T) {
	e := New("small-cache", WithDecisionCache(time.Hour, 2))
	if err := e.SetRoot(resourcePolicies(8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		e.Decide(context.Background(), policy.NewAccessRequest("u", fmt.Sprintf("res-%d", i), "read"))
	}
	if n := e.Stats().CacheEntries; n > 2 {
		t.Errorf("cache holds %d entries, bound is 2", n)
	}
}

func TestEngineWithResolver(t *testing.T) {
	dir := pip.NewDirectory("idp")
	dir.AddSubject(pip.Subject{ID: "alice", Roles: []string{"auditor"}})
	root := policy.NewPolicySet("base").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("auditors").
			Combining(policy.DenyUnlessPermit).
			Rule(policy.Permit("allow").
				If(policy.AttrContains(policy.CategorySubject, policy.AttrSubjectRole, policy.String("auditor"))).
				Build()).
			Build()).
		Build()
	e := New("pdp", WithResolver(dir))
	if err := e.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	if res := e.Decide(context.Background(), policy.NewAccessRequest("alice", "ledger", "read")); res.Decision != policy.DecisionPermit {
		t.Errorf("alice = %v, want Permit", res.Decision)
	}
	if res := e.Decide(context.Background(), policy.NewAccessRequest("bob", "ledger", "read")); res.Decision != policy.DecisionDeny {
		t.Errorf("bob = %v, want Deny", res.Decision)
	}
}

func TestDecideAtTimeDependentPolicy(t *testing.T) {
	day := policy.Call(policy.FnLessThan,
		policy.Call(policy.FnHourOfDay, policy.Call(policy.FnOneAndOnly, policy.EnvAttr(policy.AttrCurrentTime))),
		policy.Lit(policy.Integer(18)))
	root := policy.NewPolicySet("time").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("office-hours").
			Combining(policy.DenyUnlessPermit).
			Rule(policy.Permit("day-only").If(day).Build()).
			Build()).
		Build()
	e := New("pdp")
	if err := e.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("u", "r", "read")
	noon := time.Date(2026, 6, 12, 12, 0, 0, 0, time.UTC)
	night := time.Date(2026, 6, 12, 22, 0, 0, 0, time.UTC)
	if res := e.DecideAt(context.Background(), req, noon); res.Decision != policy.DecisionPermit {
		t.Errorf("noon = %v, want Permit", res.Decision)
	}
	if res := e.DecideAt(context.Background(), req, night); res.Decision != policy.DecisionDeny {
		t.Errorf("night = %v, want Deny", res.Decision)
	}
}

func TestMergeSorted(t *testing.T) {
	cases := []struct {
		a, b, want []int
	}{
		{[]int{1, 3}, []int{2, 4}, []int{1, 2, 3, 4}},
		{nil, []int{0}, []int{0}},
		{[]int{5}, nil, []int{5}},
		{[]int{1, 2}, []int{2, 3}, []int{1, 2, 3}},
		{nil, nil, []int{}},
	}
	for _, c := range cases {
		got := mergeSorted(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("mergeSorted(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("mergeSorted(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
				break
			}
		}
	}
}
