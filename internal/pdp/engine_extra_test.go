package pdp

import (
	"context"
	"testing"
	"time"

	"repro/internal/policy"
)

// rolePolicy permits read when the subject carries the doctor role, which
// only a resolver can supply in these tests (requests omit it).
func rolePolicy() *policy.PolicySet {
	return policy.NewPolicySet("base").Combining(policy.DenyUnlessPermit).
		Add(policy.NewPolicy("doctors").
			Combining(policy.DenyUnlessPermit).
			Rule(policy.Permit("doctors-read").
				When(policy.MatchRole("doctor"), policy.MatchActionID("read")).
				Build()).
			Build()).
		Build()
}

func roleResolver(role string) policy.Resolver {
	return policy.ResolverFunc(func(_ context.Context, _ *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
		if cat == policy.CategorySubject && name == policy.AttrSubjectRole {
			return policy.Singleton(policy.String(role)), nil
		}
		return nil, nil
	})
}

func TestDecideAtWithOverridesResolver(t *testing.T) {
	// The engine's configured resolver says "visitor"; a per-call resolver
	// (the multi-domain cross-domain retrieval path) says "doctor" and must
	// win for that call only.
	e := New("pdp", WithResolver(roleResolver("visitor")))
	if err := e.SetRoot(rolePolicy()); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	req := policy.NewAccessRequest("alice", "rec-1", "read")

	if got := e.DecideAt(context.Background(), req, at); got.Decision != policy.DecisionDeny {
		t.Fatalf("configured resolver: got %v, want Deny", got.Decision)
	}
	if got := e.DecideAtWith(context.Background(), req, at, roleResolver("doctor")); got.Decision != policy.DecisionPermit {
		t.Fatalf("per-call resolver: got %v, want Permit", got.Decision)
	}
	// Falling back to nil must use the configured resolver again.
	if got := e.DecideAtWith(context.Background(), req, at, nil); got.Decision != policy.DecisionDeny {
		t.Fatalf("nil per-call resolver: got %v, want Deny", got.Decision)
	}
}

func TestDecideAtWithBypassesCache(t *testing.T) {
	// Per-call resolvers see per-call state; their decisions must neither
	// read nor populate the shared decision cache.
	e := New("pdp", WithDecisionCache(time.Minute, 0))
	if err := e.SetRoot(rolePolicy()); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	req := policy.NewAccessRequest("alice", "rec-1", "read")

	if got := e.DecideAtWith(context.Background(), req, at, roleResolver("doctor")); got.Decision != policy.DecisionPermit {
		t.Fatalf("got %v, want Permit", got.Decision)
	}
	// A cached permit here would be a cross-context information leak.
	if got := e.DecideAt(context.Background(), req, at.Add(time.Second)); got.Decision != policy.DecisionDeny {
		t.Fatalf("cache leaked a per-call decision: got %v, want Deny", got.Decision)
	}
	if hits := e.Stats().CacheHits; hits != 0 {
		t.Errorf("cache hits = %d, want 0", hits)
	}
}

func TestDecideAtWithNoPolicy(t *testing.T) {
	e := New("empty")
	res := e.DecideAtWith(context.Background(), policy.NewRequest(), time.Now(), nil)
	if res.Decision != policy.DecisionIndeterminate || res.Err == nil {
		t.Errorf("no-policy engine: got %+v, want Indeterminate with error", res)
	}
}

func TestRootAndName(t *testing.T) {
	e := New("pdp-7")
	if e.Name() != "pdp-7" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.Root() != nil {
		t.Error("fresh engine must have nil root")
	}
	root := rolePolicy()
	if err := e.SetRoot(root); err != nil {
		t.Fatal(err)
	}
	if e.Root() != policy.Evaluable(root) {
		t.Error("Root() does not return the installed base")
	}
}

func TestFlushCacheForcesReevaluation(t *testing.T) {
	e := New("pdp", WithDecisionCache(time.Hour, 0))
	if err := e.SetRoot(rolePolicy()); err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)
	req := policy.NewAccessRequest("alice", "rec-1", "read").
		Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String("doctor"))

	e.DecideAt(context.Background(), req, at)
	e.DecideAt(context.Background(), req, at.Add(time.Second))
	if st := e.Stats(); st.CacheHits != 1 || st.Evaluations != 1 {
		t.Fatalf("before flush: %+v", st)
	}
	e.FlushCache()
	e.DecideAt(context.Background(), req, at.Add(2*time.Second))
	if st := e.Stats(); st.CacheHits != 1 || st.Evaluations != 2 {
		t.Errorf("after flush: %+v, want a fresh evaluation", st)
	}
}
