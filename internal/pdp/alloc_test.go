//go:build !race

package pdp

import (
	"context"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestCacheHitDecideAllocsFree guards the acceptance bound of the
// lock-free refactor: a cache-hit decision performs zero heap allocations
// — one snapshot pointer load, the memoised cache key and hash, one shard
// mutex, and atomic counter bumps. Skipped under -race, whose
// instrumentation perturbs allocation accounting.
func TestCacheHitDecideAllocsFree(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New("allocs", WithTargetIndex(), WithDecisionCache(time.Hour, 0))
	if err := e.SetRoot(resourcePolicies(8)); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("u", "res-3", "read")
	if res := e.DecideAt(context.Background(), req, at); res.Decision != policy.DecisionPermit {
		t.Fatalf("warm-up decision = %v", res.Decision)
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.DecideAt(context.Background(), req, at)
	})
	if allocs != 0 {
		t.Fatalf("cache-hit DecideAt allocates %.1f objects/op, want 0", allocs)
	}
	if st := e.Stats(); st.CacheHits == 0 {
		t.Fatal("guard did not exercise the cache-hit path")
	}
}

// TestCompiledMissDecideAllocsFree guards the PR 10 acceptance bound: a
// cache-miss decision answered by the compiled program performs zero heap
// allocations on the common path — pooled evaluation context, pooled
// candidate scratch, precomputed results. No decision cache is configured,
// so every DecideAt below is a full compiled evaluation.
func TestCompiledMissDecideAllocsFree(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New("compiled-allocs")
	if err := e.SetRoot(resourcePolicies(8)); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("u", "res-3", "read")
	if res := e.DecideAt(context.Background(), req, at); res.Decision != policy.DecisionPermit {
		t.Fatalf("warm-up decision = %v", res.Decision)
	}
	allocs := testing.AllocsPerRun(200, func() {
		e.DecideAt(context.Background(), req, at)
	})
	if allocs != 0 {
		t.Fatalf("compiled miss DecideAt allocates %.1f objects/op, want 0", allocs)
	}
	st := e.Stats()
	if st.CompiledEvaluations == 0 || st.CompiledEvaluations != st.Evaluations {
		t.Fatalf("guard did not stay on the compiled path: %d/%d evaluations compiled",
			st.CompiledEvaluations, st.Evaluations)
	}
}
