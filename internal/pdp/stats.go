package pdp

import (
	"sync/atomic"

	"repro/internal/policy"
)

// statsStripes is the number of counter stripes decisions scatter across;
// a power of two so stripe selection is a mask of the request hash.
const statsStripes = 8

// decisionCounters is one stripe of the engine's decision counters. The
// trailing pad rounds the struct to a multiple of the cache line, so
// stripes incremented by different cores never false-share.
type decisionCounters struct {
	evaluations       atomic.Int64
	cacheHits         atomic.Int64
	permits           atomic.Int64
	denies            atomic.Int64
	notApplicables    atomic.Int64
	indeterminates    atomic.Int64
	indexedCandidates atomic.Int64
	compiledEvals     atomic.Int64
	maxCandidates     atomic.Int64
	_                 [56]byte
}

// recordEvaluation counts one computed (non-cached) decision: the
// evaluation itself, the candidates it considered (and the running
// maximum), whether the compiled program answered it, and the outcome.
func (c *decisionCounters) recordEvaluation(res policy.Result, candidates int, compiled bool) {
	c.evaluations.Add(1)
	c.indexedCandidates.Add(int64(candidates))
	if compiled {
		c.compiledEvals.Add(1)
	}
	if n := int64(candidates); n > c.maxCandidates.Load() {
		for {
			cur := c.maxCandidates.Load()
			if n <= cur || c.maxCandidates.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	c.record(res.Decision)
}

func (c *decisionCounters) record(d policy.Decision) {
	switch d {
	case policy.DecisionPermit:
		c.permits.Add(1)
	case policy.DecisionDeny:
		c.denies.Add(1)
	case policy.DecisionNotApplicable:
		c.notApplicables.Add(1)
	case policy.DecisionIndeterminate:
		c.indeterminates.Add(1)
	}
}

// engineStats is the lock-free mutable form of Stats: the decision hot
// path increments a hash-selected stripe, writers bump the two
// administration counters, and Stats() aggregates everything on read.
type engineStats struct {
	stripes            [statsStripes]decisionCounters
	updates            atomic.Int64
	cacheInvalidations atomic.Int64
}

func (s *engineStats) stripe(hash uint64) *decisionCounters {
	return &s.stripes[hash&(statsStripes-1)]
}

func (s *engineStats) snapshot() Stats {
	var out Stats
	for i := range s.stripes {
		c := &s.stripes[i]
		out.Evaluations += c.evaluations.Load()
		out.CacheHits += c.cacheHits.Load()
		out.Permits += c.permits.Load()
		out.Denies += c.denies.Load()
		out.NotApplicables += c.notApplicables.Load()
		out.Indeterminates += c.indeterminates.Load()
		out.IndexedCandidates += c.indexedCandidates.Load()
		out.CompiledEvaluations += c.compiledEvals.Load()
		if m := c.maxCandidates.Load(); m > out.MaxCandidates {
			out.MaxCandidates = m
		}
	}
	out.InterpretedEvaluations = out.Evaluations - out.CompiledEvaluations
	out.Updates = s.updates.Load()
	out.CacheInvalidations = s.cacheInvalidations.Load()
	return out
}
