package pdp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/policy"
)

// The compiled decision program must be observationally identical to the
// tree-walking interpreter: same Decision, same By chain, same error text,
// same fulfilled obligations, for every base × request pair — including
// bases with constructs the compiler cannot lower (conditions, non-equality
// matches, nested sets, dynamic obligations), which must fall back child by
// child without changing semantics. The tests here drive that equivalence
// with randomized bases, randomized requests, a failing attribute resolver,
// and randomized ApplyUpdate churn.

var equivAt = time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)

// flakyEquivResolver resolves roles for known subjects, errors for the
// subject "flaky" (exercising Indeterminate propagation through both
// paths), and returns an empty bag otherwise.
var flakyEquivResolver = policy.ResolverFunc(func(_ context.Context, req *policy.Request, cat policy.Category, name string) (policy.Bag, error) {
	if req.SubjectID() == "flaky" {
		return nil, errors.New("attribute store unavailable")
	}
	if cat == policy.CategorySubject && name == policy.AttrSubjectRole {
		switch req.SubjectID() {
		case "alice":
			return policy.Singleton(policy.String("admin")), nil
		case "bob":
			return policy.Bag{policy.String("dev"), policy.String("auditor")}, nil
		}
	}
	return nil, nil
})

var (
	equivResources = []string{"res-0", "res-1", "res-2", "res-3", "res-4", "res-5", "res-6", "res-7"}
	equivActions   = []string{"read", "write", "delete", "audit"}
	equivRoles     = []string{"admin", "dev", "auditor", "guest"}
	equivAlgs      = []policy.Algorithm{
		policy.DenyOverrides, policy.PermitOverrides, policy.FirstApplicable,
		policy.OnlyOneApplicable, policy.DenyUnlessPermit, policy.PermitUnlessDeny,
	}
	equivRuleAlgs = []policy.Algorithm{
		policy.DenyOverrides, policy.PermitOverrides, policy.FirstApplicable,
		policy.DenyUnlessPermit, policy.PermitUnlessDeny,
	}
)

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// randomEquivRule covers targeted, disjunctive, conditioned (fallback) and
// obligated (static and dynamic-fallback) rule shapes.
func randomEquivRule(rng *rand.Rand, i int) *policy.Rule {
	b := policy.NewRule(fmt.Sprintf("rule-%d", i))
	if rng.Intn(2) == 0 {
		b.Permits()
	}
	switch rng.Intn(6) {
	case 0: // bare rule
	case 1:
		b.When(policy.MatchActionID(pick(rng, equivActions)))
	case 2:
		b.WhenAny(policy.MatchActionID(pick(rng, equivActions)), policy.MatchActionID(pick(rng, equivActions)))
	case 3:
		b.When(policy.MatchRole(pick(rng, equivRoles)))
	case 4:
		// Condition: the whole policy must fall back to the interpreter.
		b.If(policy.AttrEquals(policy.CategorySubject, policy.AttrClearance, policy.Integer(int64(rng.Intn(3)))))
	case 5:
		b.When(policy.MatchResourceID(pick(rng, equivResources)), policy.MatchActionID(pick(rng, equivActions)))
	}
	switch rng.Intn(5) {
	case 0:
		effect := policy.EffectDeny
		if rng.Intn(2) == 0 {
			effect = policy.EffectPermit
		}
		b.Obligation(policy.RequireObligation(fmt.Sprintf("log-%d", i), effect,
			map[string]string{"channel": pick(rng, equivActions)}))
	case 1:
		// Dynamic assignment: not a literal, so the policy is uncompilable.
		b.Obligation(policy.Obligation{
			ID:        fmt.Sprintf("notify-%d", i),
			FulfillOn: policy.EffectPermit,
			Assignments: []policy.Assignment{
				{Name: "who", Expr: policy.Attr(policy.CategorySubject, policy.AttrSubjectID)},
			},
		})
	}
	return b.Build()
}

// randomEquivPolicy covers pinned-resource, pinned-role, pinned-action,
// disjunctive, mixed-first-group (unpinned), non-equality (fallback) and
// empty targets, every rule-combining algorithm and optional policy-level
// obligations.
func randomEquivPolicy(rng *rand.Rand, id string) *policy.Policy {
	b := policy.NewPolicy(id).Combining(pick(rng, equivRuleAlgs))
	switch rng.Intn(8) {
	case 0: // catch-all child
	case 1:
		b.When(policy.MatchResourceID(pick(rng, equivResources)))
	case 2:
		b.WhenAny(policy.MatchResourceID(pick(rng, equivResources)), policy.MatchResourceID(pick(rng, equivResources)))
	case 3:
		b.When(policy.MatchResourceID(pick(rng, equivResources)), policy.MatchActionID(pick(rng, equivActions)))
	case 4:
		b.When(policy.MatchRole(pick(rng, equivRoles)))
	case 5:
		b.When(policy.MatchActionID(pick(rng, equivActions)))
	case 6:
		// First group mixes attributes: compilable but pinned in no
		// dimension, so it rides the catch-all lists.
		b.Target(policy.Target{policy.AnyOf{policy.AllOf{
			policy.MatchResourceID(pick(rng, equivResources)),
			policy.MatchRole(pick(rng, equivRoles)),
		}}})
	case 7:
		// Non-equality predicate: compileTarget rejects, interpreter child.
		b.Target(policy.Target{policy.AnyOf{policy.AllOf{policy.Match{
			Category: policy.CategorySubject,
			Name:     policy.AttrClearance,
			Function: policy.FnLessThan,
			Value:    policy.Integer(int64(rng.Intn(4))),
		}}}})
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		b.Rule(randomEquivRule(rng, i))
	}
	if rng.Intn(4) == 0 {
		effect := policy.EffectDeny
		if rng.Intn(2) == 0 {
			effect = policy.EffectPermit
		}
		b.Obligation(policy.RequireObligation(id+"-audit", effect, map[string]string{"sink": "wal"}))
	}
	return b.Build()
}

// randomEquivRoot builds a root set over policy children plus an occasional
// nested policy set (always an interpreter-fallback child).
func randomEquivRoot(rng *rand.Rand) *policy.PolicySet {
	b := policy.NewPolicySet("root").Combining(pick(rng, equivAlgs))
	if rng.Intn(8) == 0 {
		b.When(policy.MatchActionID("read"))
	}
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("child-%d", i)
		if rng.Intn(6) == 0 {
			b.Add(policy.NewPolicySet(id).
				Combining(policy.FirstApplicable).
				When(policy.MatchResourceID(pick(rng, equivResources))).
				Add(randomEquivPolicy(rng, id+"-inner")).
				Build())
			continue
		}
		b.Add(randomEquivPolicy(rng, id))
	}
	return b.Build()
}

func randomEquivRequest(rng *rand.Rand) *policy.Request {
	req := policy.NewRequest()
	if s := pick(rng, []string{"alice", "bob", "flaky", "carol", ""}); s != "" {
		req.Add(policy.CategorySubject, policy.AttrSubjectID, policy.String(s))
	}
	switch rng.Intn(8) {
	case 0: // no resource-id at all
	case 1:
		req.Add(policy.CategoryResource, policy.AttrResourceID, policy.String("res-unknown"))
	case 2: // multi-valued resource-id
		req.Add(policy.CategoryResource, policy.AttrResourceID,
			policy.String(pick(rng, equivResources)), policy.String(pick(rng, equivResources)))
	case 3: // cross-kind value keys
		req.Add(policy.CategoryResource, policy.AttrResourceID, policy.Integer(int64(rng.Intn(8))))
	default:
		req.Add(policy.CategoryResource, policy.AttrResourceID, policy.String(pick(rng, equivResources)))
	}
	req.Add(policy.CategoryAction, policy.AttrActionID, policy.String(pick(rng, equivActions)))
	if rng.Intn(2) == 0 {
		req.Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String(pick(rng, equivRoles)))
		if rng.Intn(4) == 0 {
			req.Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String(pick(rng, equivRoles)))
		}
	}
	if rng.Intn(3) == 0 {
		req.Add(policy.CategorySubject, policy.AttrClearance, policy.Integer(int64(rng.Intn(3))))
	}
	if rng.Intn(5) == 0 {
		req.Add(policy.CategoryResource, policy.AttrClassification, policy.String("restricted"))
	}
	return req
}

// requireSameResult fails the test when two results differ in any
// observable dimension.
func requireSameResult(t *testing.T, req *policy.Request, got, want policy.Result) {
	t.Helper()
	if got.Decision != want.Decision || got.By != want.By {
		t.Fatalf("%v: compiled (%v by %q) != interpreter (%v by %q)",
			req, got.Decision, got.By, want.Decision, want.By)
	}
	ge, we := "", ""
	if got.Err != nil {
		ge = got.Err.Error()
	}
	if want.Err != nil {
		we = want.Err.Error()
	}
	if ge != we {
		t.Fatalf("%v: compiled err %q != interpreter err %q", req, ge, we)
	}
	if len(got.Obligations) != 0 || len(want.Obligations) != 0 {
		if !reflect.DeepEqual(got.Obligations, want.Obligations) {
			t.Fatalf("%v: compiled obligations %+v != interpreter %+v", req, got.Obligations, want.Obligations)
		}
	}
}

// TestCompiledEquivalentToInterpreter decides hundreds of randomized
// requests against randomized policy bases on two engines sharing a
// resolver — one compiled, one with compilation ablated — and requires
// identical results throughout.
func TestCompiledEquivalentToInterpreter(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			root := randomEquivRoot(rng)
			if err := root.Validate(); err != nil {
				t.Fatalf("generated root invalid: %v", err)
			}
			compiled := New("equiv-compiled", WithResolver(flakyEquivResolver))
			interp := New("equiv-interp", WithResolver(flakyEquivResolver), WithoutCompilation())
			indexed := New("equiv-indexed", WithResolver(flakyEquivResolver), WithoutCompilation(), WithTargetIndex())
			for _, e := range []*Engine{compiled, interp, indexed} {
				if err := e.SetRoot(root); err != nil {
					t.Fatal(err)
				}
			}
			if st := compiled.Stats(); st.RootChildren == 0 {
				t.Fatal("root did not compile: no program installed")
			}
			for i := 0; i < 300; i++ {
				req := randomEquivRequest(rng)
				want := interp.DecideAt(ctx, req, equivAt)
				requireSameResult(t, req, compiled.DecideAt(ctx, req, equivAt), want)
				requireSameResult(t, req, indexed.DecideAt(ctx, req, equivAt), want)
			}
			st := compiled.Stats()
			if st.CompiledEvaluations == 0 {
				t.Fatal("no evaluation took the compiled path")
			}
			if it := interp.Stats(); it.CompiledEvaluations != 0 {
				t.Fatalf("ablated engine reported %d compiled evaluations", it.CompiledEvaluations)
			}
		})
	}
}

// TestCompiledDeltaEquivalence churns a live compiled engine through random
// ApplyUpdate sequences and checks it against a from-scratch interpreter
// rebuild of the same model after every few operations: the delta-patched
// program must stay equivalent to full recompilation and to the
// interpreter.
func TestCompiledDeltaEquivalence(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			model := make(map[string]policy.Evaluable)
			for i := 0; i < 6; i++ {
				p := churnPolicy(fmt.Sprintf("res-%d", i), rng.Intn(4))
				model[p.ID] = p
			}
			guard := catchAllPolicy(0)
			model[guard.ID] = guard

			live := New("delta-compiled", WithTargetIndex(), WithDecisionCache(time.Hour, 0))
			if err := live.SetRoot(modelRoot(model)); err != nil {
				t.Fatal(err)
			}
			version := 1
			for op := 0; op < 120; op++ {
				version++
				var u Update
				switch rng.Intn(10) {
				case 6:
					p := catchAllPolicy(version)
					u = Update{ID: p.ID, Child: p}
				case 7:
					p := roamingPolicy(version)
					u = Update{ID: p.ID, Child: p}
				case 8, 9:
					if len(model) > 2 {
						ids := make([]string, 0, len(model))
						for id := range model {
							ids = append(ids, id)
						}
						u = Update{ID: pick(rng, ids)}
						break
					}
					fallthrough
				default:
					p := churnPolicy(fmt.Sprintf("res-%d", rng.Intn(10)), version)
					u = Update{ID: p.ID, Child: p}
				}
				if err := live.ApplyUpdate(u); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				if u.Child == nil {
					delete(model, u.ID)
				} else {
					model[u.ID] = u.Child
				}
				if op%10 != 0 {
					continue
				}
				ref := New("delta-ref", WithoutCompilation())
				if err := ref.SetRoot(modelRoot(model)); err != nil {
					t.Fatalf("op %d: rebuild: %v", op, err)
				}
				for _, req := range churnRequests(10) {
					requireSameResult(t, req,
						live.DecideAt(ctx, req, equivAt),
						ref.DecideAt(ctx, req, equivAt))
				}
			}
			st := live.Stats()
			if st.Updates != 120 {
				t.Fatalf("updates = %d, want 120", st.Updates)
			}
			if st.Compiles < 121 {
				t.Fatalf("compiles = %d, want one per install and patch", st.Compiles)
			}
			if st.RootChildren != int64(len(model)) {
				t.Fatalf("program tracks %d children, model has %d", st.RootChildren, len(model))
			}
		})
	}
}

// TestStaticObligationsRejectsNilLiteral pins the defensive branch fuzzing
// motivated: a typed-nil *Literal assignment must report "not static", not
// dereference.
func TestStaticObligationsRejectsNilLiteral(t *testing.T) {
	obs := []policy.Obligation{{
		ID:          "broken",
		FulfillOn:   policy.EffectPermit,
		Assignments: []policy.Assignment{{Name: "x", Expr: (*policy.Literal)(nil)}},
	}}
	if _, ok := policy.StaticObligations(obs, policy.EffectPermit); ok {
		t.Fatal("nil *Literal assignment reported as static")
	}
	// An obligation for the other effect is skipped before inspection.
	if got, ok := policy.StaticObligations(obs, policy.EffectDeny); !ok || got != nil {
		t.Fatalf("other-effect obligations = %v, %v; want nil, true", got, ok)
	}
}

// fuzzByteReader streams fuzz input bytes, yielding zeros once exhausted.
type fuzzByteReader struct {
	data []byte
	pos  int
}

func (r *fuzzByteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func fuzzValue(b byte) policy.Value {
	switch b % 4 {
	case 0:
		return policy.String(fmt.Sprintf("res-%d", b%8))
	case 1:
		return policy.String("read")
	case 2:
		return policy.Integer(int64(b % 5))
	default:
		return policy.Value{} // invalid kind: Equal is false against anything
	}
}

func fuzzMatch(r *fuzzByteReader) policy.Match {
	names := []string{policy.AttrResourceID, policy.AttrActionID, policy.AttrSubjectRole, policy.AttrClearance}
	fns := []string{"", policy.FnEqual, policy.FnLessThan, "bogus"}
	return policy.Match{
		Category: policy.Category(r.next() % 5), // includes the invalid zero category
		Name:     names[int(r.next())%len(names)],
		Function: fns[int(r.next())%len(fns)],
		Value:    fuzzValue(r.next()),
	}
}

// fuzzTarget produces structurally odd targets: empty groups, empty
// alternatives, empty conjunctions, mixed attributes and bogus predicates.
func fuzzTarget(r *fuzzByteReader) policy.Target {
	ngroups := int(r.next() % 3)
	if ngroups == 0 {
		return nil
	}
	t := make(policy.Target, 0, ngroups)
	for g := 0; g < ngroups; g++ {
		nalts := int(r.next() % 3)
		any := make(policy.AnyOf, 0, nalts)
		for a := 0; a < nalts; a++ {
			nm := int(r.next() % 3)
			all := make(policy.AllOf, 0, nm)
			for m := 0; m < nm; m++ {
				all = append(all, fuzzMatch(r))
			}
			any = append(any, all)
		}
		t = append(t, any)
	}
	return t
}

func fuzzChild(r *fuzzByteReader, id string) policy.Evaluable {
	if r.next()%8 == 0 {
		return nil // compileProgram must reject nil children without panicking
	}
	p := &policy.Policy{
		ID:        id,
		Version:   "1",
		Combining: policy.Algorithm(r.next() % 8), // includes invalid values
		Target:    fuzzTarget(r),
	}
	nrules := int(r.next() % 3)
	for i := 0; i < nrules; i++ {
		rule := &policy.Rule{
			ID:     fmt.Sprintf("%s-r%d", id, i),
			Effect: policy.Effect(r.next() % 3), // includes the invalid zero effect
			Target: fuzzTarget(r),
		}
		switch r.next() % 4 {
		case 0:
			rule.Condition = policy.AttrEquals(policy.CategorySubject, policy.AttrClearance, policy.Integer(int64(r.next()%3)))
		case 1:
			rule.Obligations = []policy.Obligation{policy.RequireObligation(rule.ID+"-ob", policy.EffectPermit, map[string]string{"k": "v"})}
		}
		p.Rules = append(p.Rules, rule)
	}
	return p
}

func fuzzRoot(data []byte) *policy.PolicySet {
	r := &fuzzByteReader{data: data}
	root := &policy.PolicySet{
		ID:        "root",
		Version:   "1",
		Combining: policy.Algorithm(r.next() % 8),
		Target:    fuzzTarget(r),
	}
	if r.next()%8 == 0 {
		root.Obligations = []policy.Obligation{policy.RequireObligation("root-ob", policy.EffectDeny, map[string]string{"k": "v"})}
	}
	n := int(r.next() % 5)
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, fuzzChild(r, fmt.Sprintf("c%d", i)))
	}
	return root
}

// FuzzCompile feeds arbitrary (frequently invalid) policy structures
// straight through the compiler: compileProgram must never panic, and
// whenever the base validates, engine-level decisions on compiled and
// ablated engines must agree.
func FuzzCompile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{7, 0, 0, 3, 1, 1, 2, 2, 3, 3, 0, 1, 2, 250, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{4, 2, 2, 2, 1, 0, 3, 9, 27, 81, 243, 217, 139, 41, 123, 5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		root := fuzzRoot(data)
		prog := compileProgram(root) // must not panic, compilable or not
		if root.Validate() != nil {
			return // invalid bases only exercise the no-panic guarantee
		}
		compiled := New("fuzz-compiled")
		interp := New("fuzz-interp", WithoutCompilation())
		if err := compiled.SetRoot(root); err != nil {
			t.Fatalf("validated root rejected: %v", err)
		}
		if err := interp.SetRoot(root); err != nil {
			t.Fatalf("validated root rejected: %v", err)
		}
		if prog == nil && compiled.Stats().RootChildren != 0 {
			t.Fatal("engine installed a program the direct compile refused")
		}
		ctx := context.Background()
		r := &fuzzByteReader{data: data}
		for i := 0; i < 3; i++ {
			req := policy.NewAccessRequest("u", fmt.Sprintf("res-%d", r.next()%8), []string{"read", "write"}[int(r.next())%2])
			if r.next()%2 == 0 {
				req.Add(policy.CategorySubject, policy.AttrClearance, policy.Integer(int64(r.next()%5)))
			}
			got := compiled.DecideAt(ctx, req, equivAt)
			want := interp.DecideAt(ctx, req, equivAt)
			requireSameResult(t, req, got, want)
		}
	})
}
