package pdp

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
)

// Bounded-staleness degraded mode (WithStaleGrace): when evaluation comes
// back Indeterminate and the caller is still alive, the engine may serve
// the key's expired cache entry as long as its age is within the grace
// window — never beyond it, and never to a cold key.

// toggleResolver serves a fixed role until broken, then fails every fetch.
type toggleResolver struct {
	broken atomic.Bool
}

func (r *toggleResolver) ResolveAttribute(_ context.Context, _ *policy.Request, _ policy.Category, _ string) (policy.Bag, error) {
	if r.broken.Load() {
		return nil, context.DeadlineExceeded
	}
	return policy.Singleton(policy.String("doctor")), nil
}

func TestStaleGraceServesLastKnownGood(t *testing.T) {
	resolver := &toggleResolver{}
	now := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	t0 := now
	e := New("degraded",
		WithResolver(resolver),
		WithDecisionCache(time.Second, 0),
		WithStaleGrace(30*time.Second),
		WithClock(func() time.Time { return now }))
	if err := e.SetRoot(ctxTestRoot(t)); err != nil {
		t.Fatal(err)
	}
	warm := policy.NewAccessRequest("alice", "ward", "read")
	cold := policy.NewAccessRequest("bob", "ward", "read")

	if res := e.Decide(context.Background(), warm); res.Decision != policy.DecisionPermit || res.Degraded {
		t.Fatalf("healthy decision = %+v, want fresh Permit", res)
	}

	// Resolver dies; the TTL has lapsed, so only the grace window can answer.
	resolver.broken.Store(true)
	now = t0.Add(2 * time.Second)
	res := e.Decide(context.Background(), warm)
	if res.Decision != policy.DecisionPermit || !res.Degraded {
		t.Fatalf("degraded decision = %+v, want stale Permit", res)
	}
	if res.StaleFor != 2*time.Second {
		t.Fatalf("StaleFor = %v, want exactly 2s under the virtual clock", res.StaleFor)
	}

	// A key never decided before the outage has no last known good: fail
	// closed, not open.
	if res := e.Decide(context.Background(), cold); res.Decision != policy.DecisionIndeterminate || res.Degraded {
		t.Fatalf("cold-key decision = %+v, want fail-closed Indeterminate", res)
	}

	// At exactly the grace bound the entry still serves; one nanosecond
	// past it the bound wins.
	now = t0.Add(30 * time.Second)
	if res := e.Decide(context.Background(), warm); !res.Degraded || res.StaleFor != 30*time.Second {
		t.Fatalf("at-bound decision = %+v, want StaleFor=30s", res)
	}
	now = t0.Add(30*time.Second + time.Nanosecond)
	if res := e.Decide(context.Background(), warm); res.Decision != policy.DecisionIndeterminate || res.Degraded {
		t.Fatalf("over-grace decision = %+v, want fail-closed Indeterminate", res)
	}

	st := e.Stats()
	if st.StaleServed != 2 {
		t.Fatalf("StaleServed = %d, want 2", st.StaleServed)
	}

	// Recovery: the outage's Indeterminates must not have been cached, so a
	// healed resolver immediately earns a fresh Permit.
	resolver.broken.Store(false)
	if res := e.Decide(context.Background(), warm); res.Decision != policy.DecisionPermit || res.Degraded {
		t.Fatalf("post-recovery decision = %+v, want fresh Permit", res)
	}
}

func TestStaleGraceBatchPath(t *testing.T) {
	resolver := &toggleResolver{}
	now := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	e := New("degraded-batch",
		WithResolver(resolver),
		WithDecisionCache(time.Second, 0),
		WithStaleGrace(30*time.Second),
		WithClock(func() time.Time { return now }))
	if err := e.SetRoot(ctxTestRoot(t)); err != nil {
		t.Fatal(err)
	}
	warm := policy.NewAccessRequest("alice", "ward", "read")
	cold := policy.NewAccessRequest("carol", "ward", "read")
	e.Decide(context.Background(), warm)

	resolver.broken.Store(true)
	now = now.Add(5 * time.Second)
	results := e.DecideBatch(context.Background(), []*policy.Request{warm, cold})
	if !results[0].Degraded || results[0].Decision != policy.DecisionPermit || results[0].StaleFor != 5*time.Second {
		t.Fatalf("warm batch position = %+v, want stale Permit aged 5s", results[0])
	}
	if results[1].Degraded || results[1].Decision != policy.DecisionIndeterminate {
		t.Fatalf("cold batch position = %+v, want fail-closed Indeterminate", results[1])
	}
}

// TestStaleGraceExpiredCallerFailsClosed: an already-dead caller context
// never earns a stale answer — ctx expiry is the caller's fault, not the
// dependency's.
func TestStaleGraceExpiredCallerFailsClosed(t *testing.T) {
	resolver := &toggleResolver{}
	now := time.Date(2026, 6, 12, 9, 0, 0, 0, time.UTC)
	e := New("degraded-ctx",
		WithResolver(resolver),
		WithDecisionCache(time.Second, 0),
		WithStaleGrace(30*time.Second),
		WithClock(func() time.Time { return now }))
	if err := e.SetRoot(ctxTestRoot(t)); err != nil {
		t.Fatal(err)
	}
	warm := policy.NewAccessRequest("alice", "ward", "read")
	e.Decide(context.Background(), warm)

	resolver.broken.Store(true)
	now = now.Add(2 * time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res := e.DecideAt(ctx, warm, now); res.Degraded || res.Decision != policy.DecisionIndeterminate {
		t.Fatalf("expired-caller decision = %+v, want fail-closed Indeterminate", res)
	}
}
