package pdp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestStressDecideAgainstAdministration is the concurrency-model property
// test of the lock-free hot path (run with -race): reader goroutines
// hammer DecideAt and DecideBatchAt while one administrator applies
// incremental updates, flushes the cache and reinstalls equivalent roots.
// It extends the delta-equivalence property to the RCU engine with a
// freshness assertion: once the update that invalidates a decision has
// committed, no reader may be served the superseded decision again.
//
// The administrator brackets every ApplyUpdate between a started[r] and a
// committed[r] version bump. A reader snapshots committed[r] before its
// decision and started[r] after it: if the two agree at version v, the
// whole decision ran in a window where v was the only committed policy for
// the resource and no newer update had begun, so the decision must be
// exactly v's (read permitted iff v is even). Any stale cache entry or
// torn snapshot surfaces as a parity mismatch.
func TestStressDecideAgainstAdministration(t *testing.T) {
	const (
		resources = 6
		readers   = 4
		updates   = 400
	)
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New("stress", WithTargetIndex(), WithDecisionCache(time.Hour, 0))
	model := make(map[string]policy.Evaluable, resources)
	for i := 0; i < resources; i++ {
		p := churnPolicy(fmt.Sprintf("res-%d", i), 0)
		model[p.ID] = p
	}
	if err := e.SetRoot(modelRoot(model)); err != nil {
		t.Fatal(err)
	}

	var started, committed [resources]atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, readers)

	// expect reports whether version v of a resource's policy permits the
	// action (churnPolicy: even versions permit read, odd permit write).
	expect := func(v int64, action string) policy.Decision {
		permitted := "read"
		if v%2 == 1 {
			permitted = "write"
		}
		if action == permitted {
			return policy.DecisionPermit
		}
		return policy.DecisionDeny
	}

	check := func(r int, action string, decide func(req *policy.Request) policy.Result) bool {
		req := policy.NewAccessRequest("alice", fmt.Sprintf("res-%d", r), action)
		before := committed[r].Load()
		res := decide(req)
		after := started[r].Load()
		if before != after {
			return true // an update overlapped: both versions are legal
		}
		if want := expect(before, action); res.Decision != want {
			errs <- fmt.Sprintf("res-%d %s at stable version %d: got %v, want %v (stale decision served after its invalidating update committed)",
				r, action, before, res.Decision, want)
			return false
		}
		return true
	}

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]*policy.Request, resources)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := (i + w) % resources
				action := "read"
				if i%2 == 1 {
					action = "write"
				}
				if !check(r, action, func(req *policy.Request) policy.Result { return e.DecideAt(context.Background(), req, at) }) {
					return
				}
				// Every few rounds, push the same freshness property
				// through the batch scatter path.
				if i%8 == 0 {
					if !check(r, action, func(req *policy.Request) policy.Result {
						for j := range batch {
							batch[j] = policy.NewAccessRequest("alice", fmt.Sprintf("res-%d", j), action)
						}
						batch[0] = req
						return e.DecideBatchAt(context.Background(), batch, at)[0]
					}) {
						return
					}
				}
			}
		}(w)
	}

	version := make([]int64, resources)
	for v := 1; v <= updates; v++ {
		r := (v * 5) % resources
		version[r]++
		p := churnPolicy(fmt.Sprintf("res-%d", r), int(version[r]))
		started[r].Add(1)
		if err := e.ApplyUpdate(Update{ID: p.ID, Child: p}); err != nil {
			t.Fatal(err)
		}
		committed[r].Add(1)
		model[p.ID] = p
		switch {
		case v%97 == 0:
			// Reinstalling an equivalent root must be invisible to the
			// freshness property (it flushes, never rolls back).
			if err := e.SetRoot(modelRoot(model)); err != nil {
				t.Fatal(err)
			}
		case v%41 == 0:
			e.FlushCache()
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	// Quiesced equivalence: the churned engine must now decide exactly as
	// a fresh engine built from the final model.
	ref := New("ref")
	if err := ref.SetRoot(modelRoot(model)); err != nil {
		t.Fatal(err)
	}
	for _, req := range churnRequests(resources) {
		got := e.DecideAt(context.Background(), req, at)
		want := ref.DecideAt(context.Background(), req, at)
		if got.Decision != want.Decision || got.By != want.By {
			t.Fatalf("%s on %s after stress = %v by %s, want %v by %s",
				req.ActionID(), req.ResourceID(), got.Decision, got.By, want.Decision, want.By)
		}
	}
}

// TestCacheShardExpiredFirstEviction pins the at-capacity behaviour of a
// cache shard: expired entries are reclaimed before any live entry is
// evicted, and only when nothing has expired does one live entry go.
func TestCacheShardExpiredFirstEviction(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	expires := at.Add(time.Minute)
	sh := &cacheShard{entries: make(map[string]cacheEntry), max: 2}
	sh.insertLocked("a", cacheEntry{expires: expires, resID: "res-a"}, at)
	sh.insertLocked("b", cacheEntry{expires: expires, resID: "res-b"}, at)

	// Both residents are expired at insert time: the sweep must reclaim
	// them rather than evict arbitrarily, leaving only the new entry.
	later := at.Add(2 * time.Minute)
	sh.insertLocked("c", cacheEntry{expires: later.Add(time.Minute), resID: "res-c"}, later)
	if len(sh.entries) != 1 {
		t.Fatalf("shard holds %d entries after expired sweep, want 1", len(sh.entries))
	}
	if _, ok := sh.entries["c"]; !ok {
		t.Fatal("new entry missing after expired sweep")
	}

	// With only live residents the bound still holds via arbitrary
	// eviction.
	sh.insertLocked("d", cacheEntry{expires: later.Add(time.Minute), resID: "res-d"}, later)
	sh.insertLocked("e", cacheEntry{expires: later.Add(time.Minute), resID: "res-e"}, later)
	if len(sh.entries) != 2 {
		t.Fatalf("shard holds %d live entries, bound is 2", len(sh.entries))
	}
}

// TestCacheExpiredLookupReclaims pins the lookup half of TTL hygiene: an
// expired entry is deleted the moment a lookup touches it, instead of
// pinning memory until eviction churn reaches it.
func TestCacheExpiredLookupReclaims(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New("reclaim", WithDecisionCache(time.Minute, 1024))
	if err := e.SetRoot(resourcePolicies(4)); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("u", "res-1", "read")
	e.DecideAt(context.Background(), req, at)
	if n := e.Stats().CacheEntries; n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}
	// Past the TTL the lookup misses, deletes the dead entry, and the
	// re-evaluation fills a fresh one: still exactly one entry.
	later := at.Add(2 * time.Minute)
	if res := e.DecideAt(context.Background(), req, later); res.Decision != policy.DecisionPermit {
		t.Fatalf("post-TTL decision = %v", res.Decision)
	}
	st := e.Stats()
	if st.Evaluations != 2 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v, want 2 evaluations and no hits", st)
	}
	if st.CacheEntries != 1 {
		t.Errorf("cache holds %d entries, want 1 (expired entry reclaimed on lookup)", st.CacheEntries)
	}
}
