package pdp

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/workload"
)

func TestEngineDecideBatchMatchesDecide(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	gen := workload.NewGenerator(workload.Config{Users: 20, Resources: 100, Roles: 5, Seed: 3})
	for _, opts := range map[string][]Option{
		"plain":   {WithResolver(gen.Directory("idp"))},
		"indexed": {WithResolver(gen.Directory("idp")), WithTargetIndex()},
		"cached":  {WithResolver(gen.Directory("idp")), WithDecisionCache(time.Hour, 0)},
	} {
		reference := New("ref", WithResolver(gen.Directory("idp")))
		if err := reference.SetRoot(gen.PolicyBase("base")); err != nil {
			t.Fatal(err)
		}
		engine := New("batch", opts...)
		if err := engine.SetRoot(gen.PolicyBase("base")); err != nil {
			t.Fatal(err)
		}
		reqs := gen.Requests(200)
		results := engine.DecideBatchAt(context.Background(), reqs, at)
		if len(results) != len(reqs) {
			t.Fatalf("got %d results for %d requests", len(results), len(reqs))
		}
		for i, res := range results {
			want := reference.DecideAt(context.Background(), reqs[i], at)
			if res.Decision != want.Decision || res.By != want.By {
				t.Fatalf("item %d: %s by %s, want %s by %s", i, res.Decision, res.By, want.Decision, want.By)
			}
		}
	}
}

func TestEngineDecideBatchCacheHits(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	gen := workload.NewGenerator(workload.Config{Users: 10, Resources: 20, Roles: 2, Seed: 5})
	engine := New("e", WithResolver(gen.Directory("idp")), WithDecisionCache(time.Hour, 0))
	if err := engine.SetRoot(gen.PolicyBase("base")); err != nil {
		t.Fatal(err)
	}
	reqs := gen.Requests(50)
	engine.DecideBatchAt(context.Background(), reqs, at)
	first := engine.Stats()
	engine.DecideBatchAt(context.Background(), reqs, at)
	second := engine.Stats()
	if second.Evaluations != first.Evaluations {
		t.Fatalf("second batch evaluated %d fresh decisions, want 0",
			second.Evaluations-first.Evaluations)
	}
	if second.CacheHits-first.CacheHits != int64(len(reqs)) {
		t.Fatalf("second batch hit cache %d times, want %d",
			second.CacheHits-first.CacheHits, len(reqs))
	}
}

func TestEngineDecideBatchNoRoot(t *testing.T) {
	engine := New("e")
	results := engine.DecideBatchAt(context.Background(), []*policy.Request{policy.NewAccessRequest("u", "r", "read")}, time.Now())
	if len(results) != 1 || !errors.Is(results[0].Err, ErrNoPolicy) {
		t.Fatalf("rootless batch = %+v, want ErrNoPolicy", results)
	}
	if got := engine.DecideBatchAt(context.Background(), nil, time.Now()); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
}
