package pdp

import (
	"fmt"
	"time"

	"repro/internal/policy"
	"repro/internal/wire"
	"repro/internal/xacml"
)

// Client is a decision provider backed by a remote PDP's envelope endpoint
// (the deployment cmd/pdpd serves): the static PEP→PDP binding of Section
// 3.2 "Location of Policy Decision Points". It satisfies the
// DecisionProvider interfaces of the pep, rest and capability packages, so
// an enforcement point moves from an in-process engine to a remote one by
// swapping a constructor.
//
// Transport failures surface as Indeterminate decisions, which deny-biased
// enforcement points refuse — losing the PDP fails closed, never open.
type Client struct {
	http *wire.HTTPClient
	from string
	to   string
	now  func() time.Time
}

// NewClient builds a client for the PDP at the given envelope endpoint
// (e.g. "http://pdp.example:8080/decide"). from names this enforcement
// point in envelope headers; to names the decision point.
func NewClient(endpoint, from, to string) *Client {
	return &Client{
		http: &wire.HTTPClient{Endpoint: endpoint},
		from: from,
		to:   to,
		now:  time.Now,
	}
}

// WithClock overrides the message-ID clock, used by deterministic tests.
func (c *Client) WithClock(now func() time.Time) *Client {
	c.now = now
	return c
}

// Decide queries the remote PDP at the current time.
func (c *Client) Decide(req *policy.Request) policy.Result {
	return c.DecideAt(req, c.now())
}

// DecideAt queries the remote PDP. The at time stamps the envelope; the
// remote engine evaluates at its own clock, as a real deployment would.
func (c *Client) DecideAt(req *policy.Request, at time.Time) policy.Result {
	body, err := xacml.MarshalRequestXML(req)
	if err != nil {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("pdp client: encode request: %w", err)}
	}
	reply, err := c.http.Send(&wire.Envelope{
		MessageID: fmt.Sprintf("%s-%d", c.from, at.UnixNano()),
		From:      c.from,
		To:        c.to,
		Action:    "pdp:decide",
		Timestamp: at,
		Body:      body,
	})
	if err != nil {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("pdp client: %w", err)}
	}
	if reply == nil {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("pdp client: empty reply from %s", c.to)}
	}
	res, err := xacml.UnmarshalResponseXML(reply.Body)
	if err != nil {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("pdp client: decode response: %w", err)}
	}
	return res
}

// Handler adapts an engine to the envelope endpoint the Client speaks,
// shared by cmd/pdpd and tests. It accepts XML or JSON request contexts
// and answers XML response contexts.
func Handler(engine *Engine) wire.Handler {
	return func(_ *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
		req, err := xacml.UnmarshalRequestXML(env.Body)
		if err != nil {
			req, err = xacml.UnmarshalRequestJSON(env.Body)
			if err != nil {
				return nil, fmt.Errorf("pdp: undecodable request context: %w", err)
			}
		}
		res := engine.Decide(req)
		body, err := xacml.MarshalResponseXML(res)
		if err != nil {
			return nil, err
		}
		return &wire.Envelope{Action: "pdp:decision", Timestamp: env.Timestamp, Body: body}, nil
	}
}
