package pdp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/xacml"
)

// Client is a decision provider backed by a remote PDP's envelope endpoint
// (the deployment cmd/pdpd serves): the static PEP→PDP binding of Section
// 3.2 "Location of Policy Decision Points". It satisfies the
// DecisionProvider interfaces of the pep, rest and capability packages, so
// an enforcement point moves from an in-process engine to a remote one by
// swapping a constructor.
//
// Transport failures surface as Indeterminate decisions, which deny-biased
// enforcement points refuse — losing the PDP fails closed, never open.
type Client struct {
	http *wire.HTTPClient
	from string
	to   string
	now  func() time.Time
}

// NewClient builds a client for the PDP at the given envelope endpoint
// (e.g. "http://pdp.example:8080/decide"). from names this enforcement
// point in envelope headers; to names the decision point.
func NewClient(endpoint, from, to string) *Client {
	return &Client{
		http: &wire.HTTPClient{Endpoint: endpoint},
		from: from,
		to:   to,
		now:  time.Now,
	}
}

// WithClock overrides the message-ID clock, used by deterministic tests.
func (c *Client) WithClock(now func() time.Time) *Client {
	c.now = now
	return c
}

// Decide queries the remote PDP at the current time.
func (c *Client) Decide(ctx context.Context, req *policy.Request) policy.Result {
	return c.DecideAt(ctx, req, c.now())
}

// DecideAt queries the remote PDP. The at time stamps the envelope; the
// remote engine evaluates at its own clock, as a real deployment would.
// ctx bounds the round-trip, and its remaining deadline budget travels in
// the envelope so the remote PDP arms the same deadline (see
// wire.HTTPClient.Send) — a dead or slow PDP yields Indeterminate within
// the budget instead of hanging the enforcement point.
func (c *Client) DecideAt(ctx context.Context, req *policy.Request, at time.Time) policy.Result {
	ctx, sp := trace.StartSpan(ctx, "pdp.remote")
	defer sp.End()
	sp.SetAttr("rpc.to", c.to)
	body, err := xacml.MarshalRequestXML(req)
	if err != nil {
		return policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("pdp client: encode request: %w", err)}
	}
	reply, err := c.http.Send(ctx, &wire.Envelope{
		MessageID: fmt.Sprintf("%s-%d", c.from, at.UnixNano()),
		From:      c.from,
		To:        c.to,
		Action:    "pdp:decide",
		Timestamp: at,
		Body:      body,
	})
	if err != nil {
		res := policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("pdp client: %w", err)}
		annotateResultSpan(sp, res)
		return res
	}
	if reply == nil {
		res := policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("pdp client: empty reply from %s", c.to)}
		annotateResultSpan(sp, res)
		return res
	}
	res, err := xacml.UnmarshalResponseXML(reply.Body)
	if err != nil {
		res = policy.Result{Decision: policy.DecisionIndeterminate,
			Err: fmt.Errorf("pdp client: decode response: %w", err)}
	}
	// A transport or decode failure surfaced as Indeterminate forces
	// retention via annotateResultSpan — lost-PDP traces are the ones
	// worth reading.
	annotateResultSpan(sp, res)
	return res
}

// DecideBatchAt queries a remote batch endpoint (cmd/pdpd's
// /decide-batch) with every request in one envelope. Transport failures
// fail every request closed, mirroring DecideAt.
func (c *Client) DecideBatchAt(ctx context.Context, reqs []*policy.Request, at time.Time) []policy.Result {
	if len(reqs) == 0 {
		return nil
	}
	fail := func(err error) []policy.Result {
		out := make([]policy.Result, len(reqs))
		for i := range out {
			out[i] = policy.Result{Decision: policy.DecisionIndeterminate, Err: err}
		}
		return out
	}
	bodies := make([][]byte, len(reqs))
	for i, req := range reqs {
		body, err := xacml.MarshalRequestXML(req)
		if err != nil {
			return fail(fmt.Errorf("pdp client: encode request %d: %w", i, err))
		}
		bodies[i] = body
	}
	frame, err := wire.EncodeBodies(bodies)
	if err != nil {
		return fail(fmt.Errorf("pdp client: %w", err))
	}
	reply, err := c.http.Send(ctx, &wire.Envelope{
		MessageID: fmt.Sprintf("%s-%d", c.from, at.UnixNano()),
		From:      c.from,
		To:        c.to,
		Action:    "pdp:decide-batch",
		Timestamp: at,
		Body:      frame,
	})
	if err != nil {
		return fail(fmt.Errorf("pdp client: %w", err))
	}
	if reply == nil {
		return fail(fmt.Errorf("pdp client: empty reply from %s", c.to))
	}
	replies, err := wire.DecodeBodies(reply.Body)
	if err != nil {
		return fail(fmt.Errorf("pdp client: %w", err))
	}
	if len(replies) != len(reqs) {
		return fail(fmt.Errorf("pdp client: %d replies for %d requests", len(replies), len(reqs)))
	}
	out := make([]policy.Result, len(reqs))
	for i, b := range replies {
		res, err := xacml.UnmarshalResponseXML(b)
		if err != nil {
			out[i] = policy.Result{Decision: policy.DecisionIndeterminate,
				Err: fmt.Errorf("pdp client: decode response %d: %w", i, err)}
			continue
		}
		out[i] = res
	}
	return out
}

// Provider is the minimal decision interface Handler serves; *Engine and
// cluster.Router satisfy it, so cmd/pdpd exposes a single engine and a
// sharded cluster through the same endpoint.
type Provider interface {
	Decide(ctx context.Context, req *policy.Request) policy.Result
}

// BatchProvider answers many requests in one pass; result i answers
// request i. *Engine and cluster.Router satisfy it.
type BatchProvider interface {
	DecideBatch(ctx context.Context, reqs []*policy.Request) []policy.Result
}

// Handler adapts a decision provider to the envelope endpoint the Client
// speaks, shared by cmd/pdpd and tests. It accepts XML or JSON request
// contexts and answers XML response contexts. The handler ctx — carrying
// the deadline the transport armed from the envelope's budget — bounds
// the decision.
func Handler(p Provider) wire.Handler {
	return func(ctx context.Context, _ *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
		req, err := decodeRequestContext(env.Body)
		if err != nil {
			return nil, err
		}
		res := p.Decide(ctx, req)
		// Annotate the serving hop's span (opened by the transport when
		// the envelope carried trace headers) so the caller's stitched
		// trace shows the decision this hop produced.
		annotateResultSpan(trace.FromContext(ctx), res)
		body, err := xacml.MarshalResponseXML(res)
		if err != nil {
			return nil, err
		}
		return &wire.Envelope{Action: "pdp:decision", Timestamp: env.Timestamp, Body: body}, nil
	}
}

// BatchHandler serves the pdp:decide-batch action: the envelope body is a
// wire batch frame of request contexts; the reply is a frame of response
// contexts in the same order. Clusters use it to amortise transport and
// evaluation overhead across a whole burst of queries.
func BatchHandler(p BatchProvider) wire.Handler {
	return func(ctx context.Context, _ *wire.Call, env *wire.Envelope) (*wire.Envelope, error) {
		bodies, err := wire.DecodeBodies(env.Body)
		if err != nil {
			return nil, err
		}
		reqs := make([]*policy.Request, len(bodies))
		for i, b := range bodies {
			if reqs[i], err = decodeRequestContext(b); err != nil {
				return nil, fmt.Errorf("pdp: batch item %d: %w", i, err)
			}
		}
		results := p.DecideBatch(ctx, reqs)
		replies := make([][]byte, len(results))
		for i, res := range results {
			if replies[i], err = xacml.MarshalResponseXML(res); err != nil {
				return nil, err
			}
		}
		body, err := wire.EncodeBodies(replies)
		if err != nil {
			return nil, err
		}
		return &wire.Envelope{Action: "pdp:decision-batch", Timestamp: env.Timestamp, Body: body}, nil
	}
}

func decodeRequestContext(body []byte) (*policy.Request, error) {
	req, err := xacml.UnmarshalRequestXML(body)
	if err != nil {
		req, err = xacml.UnmarshalRequestJSON(body)
		if err != nil {
			return nil, fmt.Errorf("pdp: undecodable request context: %w", err)
		}
	}
	return req, nil
}
