package pdp

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/policy"
)

// This file implements the compiled decision program: the flattened,
// attribute-indexed form of the policy base built at snapshot publication
// (SetRoot / ApplyUpdate) and evaluated on the decision miss path.
//
// Compilation trades publish-time work for decision-time work. The root's
// direct children are flattened into per-child compiled policies — target
// matcher, rule array with the decision, decider chain ("root/policy/rule")
// and statically fulfilled obligations precomputed per rule — and indexed
// by three posting-list dimensions (resource-id, action-id, subject-role).
// A miss then assembles a candidate position list from the postings of the
// attributes the request carries and runs the root combining algorithm
// over those candidates only, with pooled scratch so the common path does
// not allocate.
//
// Everything here mirrors the interpreter in internal/policy exactly; the
// compiled program is an optimisation, never a semantic fork. Constructs
// the compiler does not cover fall back per entity, decided at compile
// time: a child with conditions, dynamic obligations, non-equality match
// functions or a nested policy-set shape keeps its interpretive Evaluate,
// wrapped so the root's decorate step is still applied. Roots that are not
// policy sets, carry obligations, or use non-equality targets do not
// compile at all (compileProgram returns nil) and the engine keeps its
// interpretive paths.

// progDimCount is the number of posting-list dimensions a program indexes.
const progDimCount = 3

// progDimSpecs are the attributes the compiler indexes children by: the
// well-known identifiers nearly every target pins first. Children pinned on
// other attributes are simply catch-alls in every dimension.
var progDimSpecs = [progDimCount]struct {
	cat  policy.Category
	name string
}{
	{policy.CategoryResource, policy.AttrResourceID},
	{policy.CategoryAction, policy.AttrActionID},
	{policy.CategorySubject, policy.AttrSubjectRole},
}

// compiledMatch is one equality test against a request attribute. It is
// semantically Match with FnEqual, minus the function-registry indirection
// and its per-call bag allocations.
type compiledMatch struct {
	cat   policy.Category
	name  string
	value policy.Value
}

// compiledAllOf is a conjunction of equality matches.
type compiledAllOf []compiledMatch

// compiledAnyOf is a disjunction of conjunctions.
type compiledAnyOf []compiledAllOf

// compiledTarget mirrors policy.Target: an AND of AnyOf groups.
type compiledTarget []compiledAnyOf

func (a compiledAllOf) eval(ec *policy.Context) (policy.MatchResult, error) {
	for _, m := range a {
		bag, err := ec.Attribute(m.cat, m.name)
		if err != nil {
			return policy.MatchIndeterminate, err
		}
		if !bag.Contains(m.value) {
			return policy.MatchNo, nil
		}
	}
	return policy.MatchYes, nil
}

func (a compiledAnyOf) eval(ec *policy.Context) (policy.MatchResult, error) {
	sawIndeterminate := false
	var firstErr error
	for _, all := range a {
		r, err := all.eval(ec)
		switch r {
		case policy.MatchYes:
			return policy.MatchYes, nil
		case policy.MatchIndeterminate:
			sawIndeterminate = true
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if sawIndeterminate {
		return policy.MatchIndeterminate, firstErr
	}
	return policy.MatchNo, nil
}

func (t compiledTarget) eval(ec *policy.Context) (policy.MatchResult, error) {
	for _, group := range t {
		r, err := group.eval(ec)
		if err != nil || r == policy.MatchIndeterminate {
			return policy.MatchIndeterminate, err
		}
		if r == policy.MatchNo {
			return policy.MatchNo, nil
		}
	}
	return policy.MatchYes, nil
}

// compileTarget lowers a target whose matches are all plain equality;
// anything else (custom predicate functions) reports false and the entity
// falls back to the interpreter.
func compileTarget(t policy.Target) (compiledTarget, bool) {
	if len(t) == 0 {
		return nil, true
	}
	out := make(compiledTarget, len(t))
	for gi, group := range t {
		cg := make(compiledAnyOf, len(group))
		for ai, all := range group {
			ca := make(compiledAllOf, len(all))
			for mi, m := range all {
				if m.Function != "" && m.Function != policy.FnEqual {
					return nil, false
				}
				ca[mi] = compiledMatch{cat: m.Category, name: m.Name, value: m.Value}
			}
			cg[ai] = ca
		}
		out[gi] = cg
	}
	return out, true
}

// compiledRule is a rule whose applicable decision is fully precomputed:
// when the target matches, the evaluation IS r.res — decision, complete
// decider chain and statically fulfilled obligations, no work left.
type compiledRule struct {
	// id is the bare rule ID, the By of a target-Indeterminate result.
	id     string
	target compiledTarget
	// res is the shared precomputed result. Its Obligations slice is
	// clipped, so combiner merges append into fresh backing instead of
	// scribbling over a result another request may hold.
	res policy.Result
}

func (r *compiledRule) eval(ec *policy.Context) policy.Result {
	match, err := r.target.eval(ec)
	if match == policy.MatchIndeterminate {
		return policy.Result{Decision: policy.DecisionIndeterminate, By: r.id, Err: err}
	}
	if match == policy.MatchNo {
		return policy.Result{Decision: policy.DecisionNotApplicable}
	}
	return r.res
}

// compiledPolicy is one root child lowered to a rule array with the
// combining algorithm's short-circuits baked in. Results it returns are
// fully decorated, root prefix included — the root combiner never
// post-processes them.
type compiledPolicy struct {
	id        string
	combining policy.Algorithm
	target    compiledTarget
	rules     []compiledRule
	// polObs holds the policy's statically fulfilled obligations by effect
	// (index Effect-1), appended to Permit/Deny results like decorate does.
	polObs [2][]policy.FulfilledObligation
	// defaultRes is the precomputed defaulting result for
	// deny-unless-permit / permit-unless-deny, decoration included.
	defaultRes policy.Result
}

func (cp *compiledPolicy) eval(ec *policy.Context) policy.Result {
	match, err := cp.target.eval(ec)
	if match == policy.MatchIndeterminate {
		return policy.Result{Decision: policy.DecisionIndeterminate, By: cp.id, Err: err}
	}
	if match == policy.MatchNo {
		return policy.Result{Decision: policy.DecisionNotApplicable}
	}
	switch cp.combining {
	case policy.DenyOverrides:
		return cp.decorate(cp.combineRules(ec, policy.DecisionDeny, policy.DecisionPermit))
	case policy.PermitOverrides:
		return cp.decorate(cp.combineRules(ec, policy.DecisionPermit, policy.DecisionDeny))
	case policy.FirstApplicable:
		for i := range cp.rules {
			if res := cp.rules[i].eval(ec); res.Decision != policy.DecisionNotApplicable {
				return cp.decorate(res)
			}
		}
		return policy.Result{Decision: policy.DecisionNotApplicable}
	case policy.DenyUnlessPermit:
		return cp.evalDefaulting(ec, policy.DecisionPermit)
	default: // PermitUnlessDeny — compilePolicy admits nothing else
		return cp.evalDefaulting(ec, policy.DecisionDeny)
	}
}

// combineRules is deny-overrides (override=Deny) or permit-overrides
// (override=Permit) over the rule array, mirroring the interpreter: the
// override effect returns immediately, results of the merged effect pool
// their obligations in evaluation order, and the first Indeterminate beats
// any merged result.
func (cp *compiledPolicy) combineRules(ec *policy.Context, override, merged policy.Decision) policy.Result {
	var (
		sawMerged, sawIndeterminate bool
		mergedRes, indetRes         policy.Result
	)
	for i := range cp.rules {
		res := cp.rules[i].eval(ec)
		switch res.Decision {
		case override:
			return res
		case merged:
			if !sawMerged {
				sawMerged = true
				mergedRes = res
			} else {
				mergedRes.Obligations = append(mergedRes.Obligations, res.Obligations...)
			}
		case policy.DecisionIndeterminate:
			if !sawIndeterminate {
				sawIndeterminate = true
				indetRes = res
			}
		}
	}
	if sawIndeterminate {
		return indetRes
	}
	if sawMerged {
		return mergedRes
	}
	return policy.Result{Decision: policy.DecisionNotApplicable}
}

// evalDefaulting is deny-unless-permit / permit-unless-deny: the first rule
// producing the override decision wins (decorated), anything else —
// including Indeterminate — is skipped, and the precomputed default result
// covers the rest.
func (cp *compiledPolicy) evalDefaulting(ec *policy.Context, override policy.Decision) policy.Result {
	for i := range cp.rules {
		if res := cp.rules[i].eval(ec); res.Decision == override {
			return cp.decorate(res)
		}
	}
	return cp.defaultRes
}

// decorate appends the policy's statically fulfilled obligations to a
// Permit/Deny result. The By chain is already complete (precomputed in
// each rule's result), so unlike the interpreter's decorate there is no
// prefixing left to do.
func (cp *compiledPolicy) decorate(res policy.Result) policy.Result {
	switch res.Decision {
	case policy.DecisionPermit:
		if obs := cp.polObs[policy.EffectPermit-1]; len(obs) > 0 {
			res.Obligations = append(res.Obligations, obs...)
		}
	case policy.DecisionDeny:
		if obs := cp.polObs[policy.EffectDeny-1]; len(obs) > 0 {
			res.Obligations = append(res.Obligations, obs...)
		}
	}
	return res
}

// progChild is one root child: compiled when pol is non-nil, otherwise an
// interpretive fallback evaluated through src with the root decoration
// applied manually.
type progChild struct {
	id  string
	pol *compiledPolicy
	src policy.Evaluable
}

// dimension is one posting-list index over the root's children. posting
// maps a pinned attribute value (canonical string form) to the ascending
// positions of children pinned to it; catchAll holds every child the
// dimension cannot prune. pinned mirrors posting per position — the keys
// child i is pinned to, nil when it is a catch-all here — so candidate
// lists assembled by another dimension can be filtered through this one
// without consulting the map.
//
// Pinning uses Target.PinnedFirstGroup, which is deliberately stricter
// than the target index's ExactMatches: a child is pinned only when its
// target's FIRST group is purely equality matches on this dimension's
// attribute. For a request that carries the attribute without any pinned
// value, that first group evaluates MatchNo from the request bag alone —
// no resolver, no possible error — and short-circuits the whole target, so
// pruning the child is exactly equivalent to evaluating it (NotApplicable
// either way), Indeterminate outcomes included. ExactMatches-style pruning
// lacks that guarantee: a later group could still have gone Indeterminate.
type dimension struct {
	cat      policy.Category
	name     string
	posting  map[string][]int32
	catchAll []int32
	pinned   [][]string
	// active gates use of the dimension: when half or more of the children
	// are catch-alls here, probing it cannot prune enough to pay for
	// itself, so candidate assembly and filtering skip it.
	active bool
}

// program is the compiled decision program for one published root. It is
// immutable after construction, shared by every reader of its snapshot.
type program struct {
	rootID    string
	combining policy.Algorithm
	target    compiledTarget
	children  []progChild
	// compiled counts children with a non-nil compiledPolicy.
	compiled int
	dims     [progDimCount]dimension
	// universe lists every child position, the candidate set when no
	// dimension applies to a request.
	universe []int32
}

// valueKey renders a value for posting-list keying. Two Equal values
// always share a key; distinct values of different kinds may collide,
// which only ever widens a candidate set, never narrows it.
func valueKey(v policy.Value) string {
	if v.Kind() == policy.KindString {
		return v.Str()
	}
	return v.String()
}

// targetOf extracts the gating target of a root child.
func targetOf(e policy.Evaluable) policy.Target {
	switch v := e.(type) {
	case *policy.Policy:
		return v.Target
	case *policy.PolicySet:
		return v.Target
	default:
		return nil
	}
}

// compileProgram lowers a validated root into a program, or returns nil
// when the root itself is uncompilable — not a policy set, obligations at
// the root (their per-request fulfilment order cannot be precomputed
// per child), a target with custom predicates, or an unknown combining
// algorithm. Child-level constructs never fail the whole compile; they
// demote that child to interpretive fallback.
func compileProgram(root policy.Evaluable) *program {
	set, ok := root.(*policy.PolicySet)
	if !ok || set == nil {
		return nil
	}
	if len(set.Obligations) > 0 {
		return nil
	}
	switch set.Combining {
	case policy.DenyOverrides, policy.PermitOverrides, policy.FirstApplicable,
		policy.OnlyOneApplicable, policy.DenyUnlessPermit, policy.PermitUnlessDeny:
	default:
		return nil
	}
	target, ok := compileTarget(set.Target)
	if !ok {
		return nil
	}
	p := &program{
		rootID:    set.ID,
		combining: set.Combining,
		target:    target,
		children:  make([]progChild, len(set.Children)),
		universe:  make([]int32, len(set.Children)),
	}
	for i, ch := range set.Children {
		if ch == nil {
			return nil // Validate rejects this; stay safe under fuzzing
		}
		p.children[i] = compileChild(set.ID, ch)
		if p.children[i].pol != nil {
			p.compiled++
		}
		p.universe[i] = int32(i)
	}
	for di := range p.dims {
		p.dims[di] = buildDimension(di, set.Children)
	}
	return p
}

// compileChild lowers one root child, keeping the interpretive Evaluable
// alongside for fallback and for only-one-applicable diagnostics.
func compileChild(rootID string, ch policy.Evaluable) progChild {
	pc := progChild{id: ch.EntityID(), src: ch}
	if pol, ok := ch.(*policy.Policy); ok && pol != nil {
		pc.pol = compilePolicy(rootID, pol)
	}
	return pc
}

// compilePolicy lowers one policy, or returns nil when any construct needs
// the interpreter: a custom-predicate target, a rule condition (arbitrary
// expression), an obligation with non-literal assignments, or a combining
// algorithm outside the rule set.
func compilePolicy(rootID string, pol *policy.Policy) *compiledPolicy {
	switch pol.Combining {
	case policy.DenyOverrides, policy.PermitOverrides, policy.FirstApplicable,
		policy.DenyUnlessPermit, policy.PermitUnlessDeny:
	default:
		return nil
	}
	target, ok := compileTarget(pol.Target)
	if !ok {
		return nil
	}
	permitObs, ok := policy.StaticObligations(pol.Obligations, policy.EffectPermit)
	if !ok {
		return nil
	}
	denyObs, ok := policy.StaticObligations(pol.Obligations, policy.EffectDeny)
	if !ok {
		return nil
	}
	cp := &compiledPolicy{id: pol.ID, combining: pol.Combining, target: target}
	cp.polObs[policy.EffectPermit-1] = clipObs(permitObs)
	cp.polObs[policy.EffectDeny-1] = clipObs(denyObs)
	prefix := rootID + "/" + pol.ID
	cp.rules = make([]compiledRule, len(pol.Rules))
	for i, r := range pol.Rules {
		if r == nil || r.Condition != nil {
			return nil
		}
		if r.Effect != policy.EffectPermit && r.Effect != policy.EffectDeny {
			return nil
		}
		rt, ok := compileTarget(r.Target)
		if !ok {
			return nil
		}
		robs, ok := policy.StaticObligations(r.Obligations, r.Effect)
		if !ok {
			return nil
		}
		dec := policy.DecisionPermit
		if r.Effect == policy.EffectDeny {
			dec = policy.DecisionDeny
		}
		cp.rules[i] = compiledRule{
			id:     r.ID,
			target: rt,
			res: policy.Result{
				Decision:    dec,
				By:          prefix + "/" + r.ID,
				Obligations: clipObs(robs),
			},
		}
	}
	switch pol.Combining {
	case policy.DenyUnlessPermit:
		cp.defaultRes = policy.Result{
			Decision:    policy.DecisionDeny,
			By:          prefix,
			Obligations: cp.polObs[policy.EffectDeny-1],
		}
	case policy.PermitUnlessDeny:
		cp.defaultRes = policy.Result{
			Decision:    policy.DecisionPermit,
			By:          prefix,
			Obligations: cp.polObs[policy.EffectPermit-1],
		}
	}
	return cp
}

// buildDimension indexes the children along one dimension spec.
func buildDimension(di int, children []policy.Evaluable) dimension {
	spec := progDimSpecs[di]
	d := dimension{
		cat:     spec.cat,
		name:    spec.name,
		posting: make(map[string][]int32),
		pinned:  make([][]string, len(children)),
	}
	for i, ch := range children {
		keys := pinnedKeys(targetOf(ch), d.cat, d.name)
		if keys == nil {
			d.catchAll = append(d.catchAll, int32(i))
			continue
		}
		d.pinned[i] = keys
		for _, k := range keys {
			d.posting[k] = append(d.posting[k], int32(i))
		}
	}
	d.active = 2*len(d.catchAll) <= len(children)
	return d
}

// pinnedKeys returns the deduplicated posting keys a target's first group
// pins the attribute to, nil when it does not pin it.
func pinnedKeys(t policy.Target, cat policy.Category, name string) []string {
	vals, ok := t.PinnedFirstGroup(cat, name)
	if !ok || len(vals) == 0 {
		return nil
	}
	keys := make([]string, 0, len(vals))
	for _, v := range vals {
		k := valueKey(v)
		if !slices.Contains(keys, k) {
			keys = append(keys, k)
		}
	}
	return keys
}

func clipObs(obs []policy.FulfilledObligation) []policy.FulfilledObligation {
	if len(obs) == 0 {
		return nil
	}
	return slices.Clip(obs)
}

// progScratch is the pooled per-evaluation scratch buffer candidate
// assembly reuses, keeping the compiled miss path allocation-free once
// warm.
type progScratch struct {
	cand []int32
}

var progScratchPool = sync.Pool{New: func() any { return new(progScratch) }}

// evaluate runs the program against the request, returning the result and
// the candidate-set size considered (for selectivity stats).
func (p *program) evaluate(ec *policy.Context, req *policy.Request) (policy.Result, int) {
	match, err := p.target.eval(ec)
	if match == policy.MatchIndeterminate {
		return policy.Result{Decision: policy.DecisionIndeterminate, By: p.rootID, Err: err}, 0
	}
	if match == policy.MatchNo {
		return policy.Result{Decision: policy.DecisionNotApplicable}, 0
	}
	sc := progScratchPool.Get().(*progScratch)
	cand, usedBuf := p.candidates(req, sc.cand[:0])
	res := p.combineChildren(ec, cand)
	n := len(cand)
	if usedBuf {
		// Never stash the shared universe slice: the pool only recycles
		// buffers this evaluation assembled itself.
		sc.cand = cand
	}
	progScratchPool.Put(sc)
	return res, n
}

// candidates assembles the ascending child positions that could apply to
// the request. The most selective active dimension the request carries an
// attribute for drives assembly (its catch-alls plus the postings of the
// carried values); the remaining carried dimensions filter the list via
// their per-position pins. Children outside the returned list are
// guaranteed MatchNo for this request (see dimension), so the root
// combining algorithms can skip them exactly. When no dimension applies,
// every child is a candidate.
func (p *program) candidates(req *policy.Request, buf []int32) (cand []int32, usedBuf bool) {
	var driver *dimension
	var driverBag policy.Bag
	best := -1
	for di := range p.dims {
		d := &p.dims[di]
		if !d.active {
			continue
		}
		bag, ok := req.Get(d.cat, d.name)
		if !ok {
			continue
		}
		est := len(d.catchAll)
		for _, v := range bag {
			est += len(d.posting[valueKey(v)])
		}
		if best < 0 || est < best {
			best = est
			driver = d
			driverBag = bag
		}
	}
	if driver == nil {
		return p.universe, false
	}

	lists := 0
	if len(driver.catchAll) > 0 {
		buf = append(buf, driver.catchAll...)
		lists++
	}
	for _, v := range driverBag {
		if pl := driver.posting[valueKey(v)]; len(pl) > 0 {
			buf = append(buf, pl...)
			lists++
		}
	}
	if lists > 1 {
		// Each source list is ascending; restore global child order (the
		// combining algorithms are order-sensitive) and drop the overlaps
		// a multi-valued attribute can introduce.
		slices.Sort(buf)
		buf = dedupSorted(buf)
	}

	for di := range p.dims {
		d := &p.dims[di]
		if !d.active || d == driver {
			continue
		}
		bag, ok := req.Get(d.cat, d.name)
		if !ok {
			continue
		}
		keep := buf[:0]
		for _, pos := range buf {
			pins := d.pinned[pos]
			if pins == nil || bagHasAnyKey(bag, pins) {
				keep = append(keep, pos)
			}
		}
		buf = keep
	}
	return buf, true
}

// bagHasAnyKey reports whether any bag value's posting key appears in
// keys. A key match does not imply a value match (cross-kind collisions),
// but a key miss does imply no value Equal — the direction pruning needs.
func bagHasAnyKey(bag policy.Bag, keys []string) bool {
	for _, v := range bag {
		k := valueKey(v)
		for _, key := range keys {
			if k == key {
				return true
			}
		}
	}
	return false
}

// dedupSorted removes adjacent duplicates in place.
func dedupSorted(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// combineChildren runs the root combining algorithm over the candidate
// positions, mirroring policy.combine plus the root's decorate step
// (By-prefixing only: compiled roots carry no obligations).
func (p *program) combineChildren(ec *policy.Context, cand []int32) policy.Result {
	switch p.combining {
	case policy.DenyOverrides:
		return p.combineRootOverrides(ec, cand, policy.DecisionDeny, policy.DecisionPermit)
	case policy.PermitOverrides:
		return p.combineRootOverrides(ec, cand, policy.DecisionPermit, policy.DecisionDeny)
	case policy.FirstApplicable:
		for _, pos := range cand {
			if res := p.evalChild(ec, pos); res.Decision != policy.DecisionNotApplicable {
				return res
			}
		}
		return policy.Result{Decision: policy.DecisionNotApplicable}
	case policy.OnlyOneApplicable:
		return p.combineRootOnlyOne(ec, cand)
	case policy.DenyUnlessPermit:
		return p.combineRootDefaulting(ec, cand, policy.DecisionPermit, policy.DecisionDeny)
	default: // PermitUnlessDeny — compileProgram admits nothing else
		return p.combineRootDefaulting(ec, cand, policy.DecisionDeny, policy.DecisionPermit)
	}
}

func (p *program) combineRootOverrides(ec *policy.Context, cand []int32, override, merged policy.Decision) policy.Result {
	var (
		sawMerged, sawIndeterminate bool
		mergedRes, indetRes         policy.Result
	)
	for _, pos := range cand {
		res := p.evalChild(ec, pos)
		switch res.Decision {
		case override:
			return res
		case merged:
			if !sawMerged {
				sawMerged = true
				mergedRes = res
			} else {
				mergedRes.Obligations = append(mergedRes.Obligations, res.Obligations...)
			}
		case policy.DecisionIndeterminate:
			if !sawIndeterminate {
				sawIndeterminate = true
				indetRes = res
			}
		}
	}
	if sawIndeterminate {
		return indetRes
	}
	if sawMerged {
		return mergedRes
	}
	return policy.Result{Decision: policy.DecisionNotApplicable}
}

func (p *program) combineRootDefaulting(ec *policy.Context, cand []int32, override, def policy.Decision) policy.Result {
	for _, pos := range cand {
		if res := p.evalChild(ec, pos); res.Decision == override {
			return res
		}
	}
	// The interpreter's bare default result picks up By through the
	// root's decorate; here that is the whole decoration.
	return policy.Result{Decision: def, By: p.rootID}
}

func (p *program) combineRootOnlyOne(ec *policy.Context, cand []int32) policy.Result {
	selected := int32(-1)
	for _, pos := range cand {
		match, err := p.childTargetMatch(ec, pos)
		if match == policy.MatchIndeterminate {
			return policy.Result{Decision: policy.DecisionIndeterminate, By: p.children[pos].id, Err: err}
		}
		if match != policy.MatchYes {
			continue
		}
		if selected >= 0 {
			return policy.Result{
				Decision: policy.DecisionIndeterminate,
				By:       p.children[pos].id,
				Err: fmt.Errorf("policy: %s and %s both applicable: %w",
					p.children[selected].id, p.children[pos].id, policy.ErrOnlyOneApplicable),
			}
		}
		selected = pos
	}
	if selected < 0 {
		return policy.Result{Decision: policy.DecisionNotApplicable}
	}
	return p.evalChild(ec, selected)
}

func (p *program) childTargetMatch(ec *policy.Context, pos int32) (policy.MatchResult, error) {
	ch := &p.children[pos]
	if ch.pol != nil {
		return ch.pol.target.eval(ec)
	}
	return ch.src.TargetMatch(ec)
}

// evalChild evaluates one child to a fully decorated result. Compiled
// children come back complete; interpretive fallbacks get the root's
// By-prefix applied here (the interpreter's decorate, minus obligations —
// compiled roots have none).
func (p *program) evalChild(ec *policy.Context, pos int32) policy.Result {
	ch := &p.children[pos]
	if ch.pol != nil {
		return ch.pol.eval(ec)
	}
	res := ch.src.Evaluate(ec)
	if res.Decision == policy.DecisionPermit || res.Decision == policy.DecisionDeny {
		if res.By == "" {
			res.By = p.rootID
		} else {
			res.By = p.rootID + "/" + res.By
		}
	}
	return res
}

// patched returns a copy of the program over newSet's children where the
// child at pos was replaced (delta 0), inserted (delta +1) or removed
// (delta -1), recompiling only the new child; everything unchanged is
// shared with the receiver, and posting lists are remapped with the same
// position rule the target index uses. The receiver is never mutated.
func (p *program) patched(newSet *policy.PolicySet, pos, delta int, add policy.Evaluable) *program {
	n := len(newSet.Children)
	out := &program{
		rootID:    p.rootID,
		combining: p.combining,
		target:    p.target,
		children:  make([]progChild, 0, n),
		compiled:  p.compiled,
	}
	tail := pos
	if delta <= 0 {
		tail = pos + 1
		if p.children[pos].pol != nil {
			out.compiled--
		}
	}
	out.children = append(out.children, p.children[:pos]...)
	if add != nil {
		out.children = append(out.children, compileChild(p.rootID, add))
		if out.children[pos].pol != nil {
			out.compiled++
		}
	}
	out.children = append(out.children, p.children[tail:]...)

	if delta == 0 {
		out.universe = p.universe
	} else {
		out.universe = make([]int32, n)
		for i := range out.universe {
			out.universe[i] = int32(i)
		}
	}
	for di := range p.dims {
		out.dims[di] = p.dims[di].patched(n, pos, delta, tail, add)
	}
	return out
}

// patched rebuilds one dimension after a child splice: postings and
// catch-alls remapped by position, the pinned array re-spliced, the new
// child (nil on delete) indexed at pos, and activity re-derived — a
// dimension can regain or lose selectivity as the base churns. Cost is
// O(dimension size) integer work; no unchanged child is re-derived.
func (d *dimension) patched(n, pos, delta, tail int, add policy.Evaluable) dimension {
	out := dimension{
		cat:     d.cat,
		name:    d.name,
		posting: make(map[string][]int32, len(d.posting)),
		pinned:  make([][]string, 0, n),
	}
	for key, positions := range d.posting {
		if next := remap32(positions, pos, delta); len(next) > 0 {
			out.posting[key] = next
		}
	}
	out.catchAll = remap32(d.catchAll, pos, delta)
	out.pinned = append(out.pinned, d.pinned[:pos]...)
	if add != nil {
		keys := pinnedKeys(targetOf(add), d.cat, d.name)
		out.pinned = append(out.pinned, keys)
		if keys == nil {
			out.catchAll = insertPos32(out.catchAll, int32(pos))
		} else {
			for _, k := range keys {
				out.posting[k] = insertPos32(out.posting[k], int32(pos))
			}
		}
	}
	out.pinned = append(out.pinned, d.pinned[tail:]...)
	out.active = 2*len(out.catchAll) <= n
	return out
}

// remap32 is policy.RemapPositions over int32 position lists.
func remap32(positions []int32, pos, delta int) []int32 {
	next := make([]int32, 0, len(positions)+1)
	for _, p := range positions {
		switch {
		case delta <= 0 && int(p) == pos:
			// replaced or removed: dropped; the caller re-adds the new
			// child where it lands
		case int(p) >= pos:
			next = append(next, p+int32(delta))
		default:
			next = append(next, p)
		}
	}
	return next
}

// insertPos32 is policy.InsertPosition over int32 position lists.
func insertPos32(positions []int32, pos int32) []int32 {
	i, found := slices.BinarySearch(positions, pos)
	if found {
		return positions
	}
	out := make([]int32, 0, len(positions)+1)
	out = append(out, positions[:i]...)
	out = append(out, pos)
	out = append(out, positions[i:]...)
	return out
}
