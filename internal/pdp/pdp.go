// Package pdp implements the Policy Decision Point: the engine that
// evaluates authorisation decision queries against the policy base
// (Section 2.2 of the paper).
//
// The engine supports two performance mechanisms the paper's challenges
// motivate: a target index that narrows evaluation to policies whose
// targets can apply to the requested resource (Section 3 scalability), and
// a TTL decision cache bounding PEP–PDP traffic (Section 3.2 Communication
// Performance). Both are optional and ablated in the benchmarks.
//
// The decision hot path is lock-free for readers, RCU-style: the root,
// target index and epoch live in one immutable snapshot published through
// an atomic pointer, so Decide* loads a single pointer per call (per batch,
// for the batch paths) and never blocks on policy administration. The
// decision cache is striped across power-of-two shards keyed by a hash of
// the request's cache key — a cache hit costs one shard lock and zero
// allocations — and engine counters are padded atomic stripes aggregated on
// read. Writers (SetRoot, ApplyUpdate, FlushCache) serialize on a writer
// lock, publish the next snapshot, and then invalidate; the epoch carried
// in each snapshot guards the cache against resurrection of a decision
// evaluated against a superseded root (see cache.go).
//
// A single engine is also the building block of larger deployments. The
// batch entry points (DecideBatch, DecideScatterAt) answer many requests
// per call, sharing one snapshot load and index candidate sets across
// same-resource requests. internal/ha replicates engines into
// failover/quorum ensembles, and internal/cluster shards the policy base
// across many such ensembles behind a consistent-hash router — the
// horizontal answer to the Section 3 performance argument when one
// engine's throughput ceiling is reached.
//
// At publication the root is additionally compiled into a flattened
// decision program (see compile.go): per-child rule arrays with
// precomputed decisions, decider chains and statically fulfilled
// obligations, indexed by attribute-keyed posting lists over resource-id,
// action-id and subject-role. A cache miss then assembles a candidate set
// from the attributes the request carries and runs the combining algorithm
// over those children only, allocation-free once warm. The program lives
// inside the snapshot, so readers get it off the same single atomic load.
// Compilation is semantics-preserving by construction: constructs the
// compiler does not cover (rule conditions, dynamic obligation values,
// custom match predicates, nested policy sets) fall back to the
// interpreter per child, chosen at compile time — never per request — and
// a root the compiler cannot handle at all leaves the program nil and the
// interpretive paths in charge. ApplyUpdate recompiles only the patched
// child and remaps the posting lists; WithoutCompilation ablates the whole
// mechanism.
//
// The engine also supports live policy administration: ApplyUpdate
// patches one root child in place — index patched, not rebuilt; only the
// changed child's resource keys invalidated from the decision cache — so
// a policy write never flushes the working set the way SetRoot must (see
// update.go).
//
// Every decision is bounded by the caller's context.Context: a deadline
// or cancellation — observed at entry, between batch positions, and
// inside resolver round-trips mid-evaluation — surfaces as Indeterminate
// carrying the cause, which deny-biased enforcement points refuse. A
// result poisoned by an expired context is never written to the decision
// cache.
package pdp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrNoPolicy is returned when the engine is asked to decide before any
// policy has been loaded.
var ErrNoPolicy = errors.New("pdp: no policy loaded")

// ctxResult renders a done request context as the fail-closed decision the
// pipeline surfaces everywhere: Indeterminate carrying the cancellation or
// deadline cause as its status message. Deny-biased enforcement points
// refuse it, so running out of time never grants access.
func ctxResult(name string, err error) policy.Result {
	return policy.Result{
		Decision: policy.DecisionIndeterminate,
		Err:      fmt.Errorf("pdp %s: request context done before decision: %w", name, err),
	}
}

// traceDecision annotates the request's span with the decision outcome.
// Indeterminate decisions force trace retention (trace.Span.Keep): the
// decisions that need explaining most are always captured, whatever the
// sampling rate. A nil span (untraced request) costs nothing.
func (e *Engine) traceDecision(sp *trace.Span, epoch uint64, res policy.Result, cache string, candidates int) {
	if sp == nil {
		return
	}
	sp.SetAttr("pdp.engine", e.name)
	sp.SetAttr("pdp.cache", cache)
	sp.SetAttr("pdp.decision", res.Decision.String())
	sp.SetInt("pdp.epoch", int64(epoch))
	if candidates > 0 {
		sp.SetInt("pdp.candidates", int64(candidates))
	}
	if res.Decision == policy.DecisionIndeterminate {
		sp.Keep()
	}
}

// Stats aggregates engine activity for experiments and monitoring.
type Stats struct {
	// Evaluations counts decisions computed (cache misses included).
	Evaluations int64
	// CacheHits counts decisions served from the decision cache.
	CacheHits int64
	// Permits, Denies, NotApplicables and Indeterminates count outcomes.
	Permits, Denies, NotApplicables, Indeterminates int64
	// IndexedCandidates sums the candidate-set sizes considered when the
	// target index is enabled, for measuring index selectivity.
	IndexedCandidates int64
	// StaleServed counts degraded decisions answered from expired cache
	// entries within the stale grace window (WithStaleGrace).
	StaleServed int64
	// Updates counts incremental root patches applied via ApplyUpdate.
	Updates int64
	// CacheInvalidations counts cached decisions dropped by ApplyUpdate
	// (a full catch-all flush counts once).
	CacheInvalidations int64
	// CacheEntries is the number of decisions cached at snapshot time, a
	// gauge summed across cache shards (zero when the cache is disabled).
	CacheEntries int64
	// CompiledEvaluations counts evaluations answered by the compiled
	// decision program; InterpretedEvaluations counts the rest (no program:
	// compilation disabled, or the root was uncompilable).
	CompiledEvaluations    int64
	InterpretedEvaluations int64
	// MaxCandidates is the largest candidate set a single evaluation
	// considered, complementing the IndexedCandidates sum for selectivity
	// monitoring.
	MaxCandidates int64
	// Compiles counts policy-base compilations (full on SetRoot, delta on
	// ApplyUpdate) and CompileNanos sums their wall time.
	Compiles     int64
	CompileNanos int64
	// CompiledChildren and RootChildren describe the current program's
	// coverage: how many direct root children compiled versus fell back to
	// the interpreter. Both are zero when no program is installed.
	CompiledChildren int64
	RootChildren     int64
}

// Option configures an Engine.
type Option func(*Engine)

// WithResolver attaches the information-point resolver consulted for
// attributes missing from requests.
func WithResolver(r policy.Resolver) Option {
	return func(e *Engine) { e.resolver = r }
}

// WithTargetIndex enables resource-id target indexing of the root policy
// set's direct children.
func WithTargetIndex() Option {
	return func(e *Engine) { e.indexEnabled = true }
}

// WithoutCompilation disables ahead-of-time compilation of the policy
// base, keeping interpretive evaluation (with the target index when
// enabled). It exists as the ablation arm for benchmarks, experiments and
// the compiled-vs-interpreter equivalence tests; production engines have
// no reason to use it.
func WithoutCompilation() Option {
	return func(e *Engine) { e.compileDisabled = true }
}

// WithDecisionCache enables a TTL decision cache. maxItems <= 0 defaults to
// 8192 entries.
func WithDecisionCache(ttl time.Duration, maxItems int) Option {
	return func(e *Engine) {
		if maxItems <= 0 {
			maxItems = 8192
		}
		e.cache = newDecisionCache(ttl, maxItems)
	}
}

// WithClock overrides the engine clock, used by deterministic tests and the
// virtual-time simulator.
func WithClock(now func() time.Time) Option {
	return func(e *Engine) { e.now = now }
}

// WithStaleGrace enables bounded-staleness degraded serving on the
// decision cache: an evaluation that comes back Indeterminate while the
// caller's context is still alive — a failed attribute resolution, a down
// information point — is answered from the key's expired cache entry
// instead, provided the entry's age is within the grace window. Served
// results are marked Degraded with their StaleFor age, counted, and
// stamped on the trace span; Indeterminate results are never cached in
// this mode, so a resolver outage cannot clobber the last known good.
// Requires WithDecisionCache; without one the option is inert.
func WithStaleGrace(grace time.Duration) Option {
	return func(e *Engine) { e.staleGrace = grace }
}

// snapshot is the immutable unit of the engine's RCU scheme: the installed
// policy base, its target index, and the epoch that publication bumped.
// Readers load one snapshot per decision (per batch, for the batch paths)
// and evaluate against it without locks; writers construct the next
// snapshot copy-on-write and publish it atomically, never mutating one a
// reader may hold.
type snapshot struct {
	root  policy.Evaluable
	index *targetIndex
	// prog is the compiled decision program, nil when compilation is
	// disabled or the root is uncompilable. Non-nil, it is the evaluation
	// strategy; the index and the interpretive walk are the fallbacks.
	prog *program
	// epoch counts snapshot publications (installs, patches and flushes).
	// Cache fills re-check it inside the shard lock and skip the write
	// when it moved, so an evaluation that raced a policy change can never
	// resurrect a stale decision in the freshly invalidated cache.
	epoch uint64
}

// Engine is a thread-safe Policy Decision Point. Decisions never block on
// each other or on policy administration: they share an atomically
// published snapshot, a striped decision cache and striped atomic counters.
type Engine struct {
	name         string
	resolver     policy.Resolver
	indexEnabled bool
	// compileDisabled keeps the interpretive paths (WithoutCompilation).
	compileDisabled bool
	now             func() time.Time
	// staleGrace bounds degraded-mode staleness; zero disables it.
	staleGrace  time.Duration
	staleServed atomic.Int64

	// compiles / compileNanos / compileHist account policy-base
	// compilation work: full compiles at SetRoot and delta recompiles at
	// ApplyUpdate. Telemetry only — never consulted on the decision path.
	compiles     atomic.Int64
	compileNanos atomic.Int64
	compileHist  telemetry.Histogram

	// snap is the current root/index/epoch triple, nil until SetRoot.
	snap atomic.Pointer[snapshot]
	// cache is the striped TTL decision cache, nil when disabled.
	cache *decisionCache
	stats engineStats

	// writerMu serializes snapshot publication (SetRoot, ApplyUpdate,
	// FlushCache) and orders each publication before its cache
	// invalidation — the pairing the epoch guard's correctness relies on.
	// Decision paths never take it.
	writerMu sync.Mutex
}

// New builds an engine with the given options.
func New(name string, opts ...Option) *Engine {
	e := &Engine{name: name, now: time.Now}
	for _, opt := range opts {
		opt(e)
	}
	if e.cache != nil && e.staleGrace > 0 {
		// Option order is free: the grace window lands on whichever cache
		// the options built.
		e.cache.grace = e.staleGrace
	}
	return e
}

// Name identifies the engine in diagnostics.
func (e *Engine) Name() string { return e.name }

// SetRoot validates and installs the policy base, rebuilding the target
// index and flushing the decision cache so revocations take effect.
func (e *Engine) SetRoot(root policy.Evaluable) error {
	if root == nil {
		return fmt.Errorf("pdp %s: nil root", e.name)
	}
	if err := root.Validate(); err != nil {
		return fmt.Errorf("pdp %s: %w", e.name, err)
	}
	var idx *targetIndex
	if e.indexEnabled {
		if set, ok := root.(*policy.PolicySet); ok {
			idx = buildIndex(set)
		}
	}
	var prog *program
	if !e.compileDisabled {
		start := time.Now()
		if prog = compileProgram(root); prog != nil {
			e.observeCompile(time.Since(start))
		}
	}
	e.writerMu.Lock()
	defer e.writerMu.Unlock()
	epoch := uint64(1)
	if old := e.snap.Load(); old != nil {
		epoch = old.epoch + 1
	}
	e.snap.Store(&snapshot{root: root, index: idx, prog: prog, epoch: epoch})
	if e.cache != nil {
		e.cache.flush()
	}
	return nil
}

// observeCompile accounts one successful policy-base compilation (full or
// delta) for stats and the repro_pdp_compile_ns histogram.
func (e *Engine) observeCompile(d time.Duration) {
	e.compiles.Add(1)
	e.compileNanos.Add(int64(d))
	e.compileHist.Observe(d)
}

// Root returns the installed policy base, or nil.
func (e *Engine) Root() policy.Evaluable {
	if snap := e.snap.Load(); snap != nil {
		return snap.root
	}
	return nil
}

// Stats returns a snapshot of the engine counters, aggregated across the
// atomic stat stripes.
func (e *Engine) Stats() Stats {
	st := e.stats.snapshot()
	if e.cache != nil {
		st.CacheEntries = e.cache.len()
	}
	st.StaleServed = e.staleServed.Load()
	st.Compiles = e.compiles.Load()
	st.CompileNanos = e.compileNanos.Load()
	if snap := e.snap.Load(); snap != nil && snap.prog != nil {
		st.CompiledChildren = int64(snap.prog.compiled)
		st.RootChildren = int64(len(snap.prog.children))
	}
	return st
}

// FlushCache drops all cached decisions.
func (e *Engine) FlushCache() {
	e.writerMu.Lock()
	defer e.writerMu.Unlock()
	// Publish the epoch move first: in-flight evaluations of the current
	// root must not refill the cache behind the flush.
	if old := e.snap.Load(); old != nil {
		e.snap.Store(&snapshot{root: old.root, index: old.index, prog: old.prog, epoch: old.epoch + 1})
	}
	if e.cache != nil {
		e.cache.flush()
	}
}

// Decide evaluates the request against the policy base at the current
// engine clock, bounded by ctx.
func (e *Engine) Decide(ctx context.Context, req *policy.Request) policy.Result {
	return e.DecideAt(ctx, req, e.now())
}

// DecideAtWith evaluates the request at an explicit time with a caller-
// supplied resolver overriding the engine's configured one. Multi-domain
// deployments use this to thread per-call network context (virtual clocks,
// message accounting) into cross-domain attribute retrieval; ctx bounds
// the evaluation, including any resolver round-trips it triggers.
// Decisions made through a caller-supplied resolver bypass the decision
// cache, since the resolver's view may differ per call.
func (e *Engine) DecideAtWith(ctx context.Context, req *policy.Request, at time.Time, resolver policy.Resolver) policy.Result {
	if err := ctx.Err(); err != nil {
		return ctxResult(e.name, err)
	}
	snap := e.snap.Load()
	if snap == nil {
		return policy.Result{Decision: policy.DecisionIndeterminate, Err: ErrNoPolicy}
	}
	var ev *trace.Span
	if sp := trace.FromContext(ctx); sp != nil {
		ctx, ev = trace.StartSpan(ctx, "pdp.eval")
	}
	res, candidates, compiled := e.evaluate(ctx, snap, req, at, resolver)
	e.stats.stripe(policy.HashString(req.ResourceID())).recordEvaluation(res, candidates, compiled)
	e.traceDecision(ev, snap.epoch, res, "bypass", candidates)
	ev.End()
	return res
}

// evaluate runs one uncached evaluation against the snapshot with a pooled
// evaluation context carrying the request ctx. resolver nil falls back to
// the engine's configured resolver. The Result never aliases the
// evaluation context, so it is released before return.
func (e *Engine) evaluate(ctx context.Context, snap *snapshot, req *policy.Request, at time.Time, resolver policy.Resolver) (policy.Result, int, bool) {
	ec := policy.AcquireContext(ctx, req, at)
	if resolver == nil {
		resolver = e.resolver
	}
	if resolver != nil {
		ec.WithResolver(resolver)
	}
	var res policy.Result
	candidates := 0
	compiled := false
	switch {
	case snap.prog != nil:
		res, candidates = snap.prog.evaluate(ec, req)
		compiled = true
	case snap.index != nil:
		res, candidates = snap.index.evaluate(ec, req)
	default:
		res = snap.root.Evaluate(ec)
	}
	policy.ReleaseContext(ec)
	return res, candidates, compiled
}

// DecideAt evaluates the request at an explicit time, bounded by ctx: a
// context done before or during evaluation (a stuck information point, an
// expired caller deadline) yields Indeterminate with the cause, never a
// hang. A cache hit takes no engine-wide lock — one snapshot pointer load,
// one shard mutex, zero allocations.
func (e *Engine) DecideAt(ctx context.Context, req *policy.Request, at time.Time) policy.Result {
	if err := ctx.Err(); err != nil {
		return ctxResult(e.name, err)
	}
	snap := e.snap.Load()
	if snap == nil {
		return policy.Result{Decision: policy.DecisionIndeterminate, Err: ErrNoPolicy}
	}

	// One context lookup is the whole tracing cost for untraced requests;
	// the cache-hit fast path below stays lock-free and allocation-free.
	sp := trace.FromContext(ctx)

	if e.cache == nil {
		var ev *trace.Span
		if sp != nil {
			ctx, ev = trace.StartSpan(ctx, "pdp.eval")
		}
		res, candidates, compiled := e.evaluate(ctx, snap, req, at, nil)
		e.stats.stripe(policy.HashString(req.ResourceID())).recordEvaluation(res, candidates, compiled)
		e.traceDecision(ev, snap.epoch, res, "off", candidates)
		ev.End()
		return res
	}

	key := req.CacheKey()
	hash := req.CacheKeyHash()
	st := e.stats.stripe(hash)
	if res, ok := e.cache.get(key, hash, at); ok {
		st.cacheHits.Add(1)
		st.record(res.Decision)
		e.traceDecision(sp, snap.epoch, res, "hit", 0)
		return res
	}

	var ev *trace.Span
	if sp != nil {
		ctx, ev = trace.StartSpan(ctx, "pdp.eval")
	}
	res, candidates, compiled := e.evaluate(ctx, snap, req, at, nil)
	st.recordEvaluation(res, candidates, compiled)
	if stale, ok := e.serveStale(ctx, key, hash, at, res); ok {
		ev.SetAttr("pdp.degraded", "true")
		ev.Keep()
		e.traceDecision(ev, snap.epoch, stale, "stale", candidates)
		ev.End()
		return stale
	}
	if e.cacheable(ctx, res) {
		e.fill(snap, key, hash, req.ResourceID(), res, at)
	}
	e.traceDecision(ev, snap.epoch, res, "miss", candidates)
	ev.End()
	return res
}

// serveStale answers a failed evaluation from the key's expired cache
// entry when degraded mode (WithStaleGrace) allows it: the evaluation came
// back Indeterminate, the caller's own context is still alive (an expired
// caller always fails closed), and the entry's age is within the grace
// window.
func (e *Engine) serveStale(ctx context.Context, key string, hash uint64, at time.Time, res policy.Result) (policy.Result, bool) {
	if e.staleGrace <= 0 || e.cache == nil || res.Decision != policy.DecisionIndeterminate || ctx.Err() != nil {
		return res, false
	}
	stale, age, ok := e.cache.getStale(key, hash, at)
	if !ok {
		return res, false
	}
	stale.Degraded = true
	stale.StaleFor = age
	e.staleServed.Add(1)
	return stale, true
}

// cacheable reports whether an evaluated result may be written back: never
// one poisoned by the caller's expired context, and — in degraded mode —
// never an Indeterminate, which would clobber the last known good entry a
// resolver outage needs.
func (e *Engine) cacheable(ctx context.Context, res policy.Result) bool {
	if res.Err != nil && ctx.Err() != nil {
		return false
	}
	if e.staleGrace > 0 && res.Decision == policy.DecisionIndeterminate {
		return false
	}
	return true
}

// fill writes an evaluated decision back into the cache unless the policy
// base changed since the evaluation's snapshot was loaded. The epoch
// re-check happens inside the shard lock: a writer publishes its snapshot
// before sweeping shards, so either this fill observes the moved epoch and
// skips, or its entry lands before the sweep and the sweep removes it —
// a stale decision can never outlive the update that invalidated it.
func (e *Engine) fill(snap *snapshot, key string, hash uint64, resID string, res policy.Result, at time.Time) {
	sh := e.cache.shard(hash)
	sh.mu.Lock()
	if cur := e.snap.Load(); cur != nil && cur.epoch == snap.epoch {
		sh.insertLocked(key, cacheEntry{res: res, expires: at.Add(e.cache.ttl), stored: at, resID: resID}, at)
	}
	sh.mu.Unlock()
}

// DecideBatch evaluates many requests at the current engine clock. See
// DecideBatchAt.
func (e *Engine) DecideBatch(ctx context.Context, reqs []*policy.Request) []policy.Result {
	return e.DecideBatchAt(ctx, reqs, e.now())
}

// DecideBatchAt evaluates many requests in one pass, answering position i
// of the result slice for request i. Compared to per-request DecideAt it
// amortises snapshot loads (one per batch) and shares index candidate
// sets across same-resource requests; cache lookups and fills still cost
// only their one shard lock each. A ctx done mid-batch stops evaluating:
// finished positions keep their decisions, unfinished ones are
// Indeterminate with the cause.
func (e *Engine) DecideBatchAt(ctx context.Context, reqs []*policy.Request, at time.Time) []policy.Result {
	if len(reqs) == 0 {
		return nil
	}
	out := make([]policy.Result, len(reqs))
	e.DecideScatterAt(ctx, reqs, nil, at, out)
	return out
}

// DecideScatterAt is the zero-copy batch primitive behind DecideBatchAt:
// evaluate reqs[p] for every p in positions (nil means every request) and
// write each result to out[p]. The caller owns out, so layered deployments
// (cluster router → ha ensemble → engine) share one result buffer instead
// of allocating and copying per layer. The whole batch evaluates against
// one snapshot, so its decisions are mutually consistent.
func (e *Engine) DecideScatterAt(ctx context.Context, reqs []*policy.Request, positions []int, at time.Time, out []policy.Result) {
	n := len(reqs)
	if positions != nil {
		n = len(positions)
	}
	if n == 0 {
		return
	}
	fail := func(res policy.Result) {
		if positions == nil {
			for i := range out {
				out[i] = res
			}
		} else {
			for _, p := range positions {
				out[p] = res
			}
		}
	}
	if err := ctx.Err(); err != nil {
		fail(ctxResult(e.name, err))
		return
	}
	snap := e.snap.Load()
	if snap == nil {
		fail(policy.Result{Decision: policy.DecisionIndeterminate, Err: ErrNoPolicy})
		return
	}

	// Traced batches get one span covering the whole scatter, not one per
	// position: the batch is the unit of work the caller dispatched.
	var batchSpan *trace.Span
	if sp := trace.FromContext(ctx); sp != nil {
		ctx, batchSpan = trace.StartSpan(ctx, "pdp.batch")
		batchSpan.SetAttr("pdp.engine", e.name)
		batchSpan.SetInt("pdp.epoch", int64(snap.epoch))
		batchSpan.SetInt("batch.n", int64(n))
		defer func() {
			indeterminate := 0
			if positions == nil {
				for i := range out {
					if out[i].Decision == policy.DecisionIndeterminate {
						indeterminate++
					}
				}
			} else {
				for _, p := range positions {
					if out[p].Decision == policy.DecisionIndeterminate {
						indeterminate++
					}
				}
			}
			if indeterminate > 0 {
				batchSpan.SetInt("batch.indeterminate", int64(indeterminate))
				batchSpan.Keep()
			}
			batchSpan.End()
		}()
	}

	misses := make([]int, 0, n)
	if e.cache != nil {
		sweep := func(p int) {
			req := reqs[p]
			key := req.CacheKey()
			hash := req.CacheKeyHash()
			if res, ok := e.cache.get(key, hash, at); ok {
				out[p] = res
				st := e.stats.stripe(hash)
				st.cacheHits.Add(1)
				st.record(res.Decision)
				return
			}
			misses = append(misses, p)
		}
		if positions == nil {
			for p := range reqs {
				sweep(p)
			}
		} else {
			for _, p := range positions {
				sweep(p)
			}
		}
		if len(misses) == 0 {
			return
		}
	} else if positions == nil {
		for p := range reqs {
			misses = append(misses, p)
		}
	} else {
		misses = positions
	}

	batchSpan.SetInt("batch.misses", int64(len(misses)))

	// Within one batch, requests for the same resource share the same
	// index candidate set; memoising the assembled subset amortises the
	// per-request candidate merge across the batch (Zipf-skewed workloads
	// repeat popular resources heavily). The compiled program needs no
	// memo: its candidate assembly is a few posting-list probes per
	// request.
	var subsets map[string]indexSubset
	if snap.prog == nil && snap.index != nil {
		subsets = make(map[string]indexSubset, len(misses))
	}
	for mi, p := range misses {
		// A ctx done mid-batch sheds the unfinished tail: those positions
		// fail closed immediately instead of evaluating against a dead
		// caller.
		if err := ctx.Err(); err != nil {
			res := ctxResult(e.name, err)
			for _, q := range misses[mi:] {
				out[q] = res
			}
			return
		}
		req := reqs[p]
		ec := policy.AcquireContext(ctx, req, at)
		if e.resolver != nil {
			ec.WithResolver(e.resolver)
		}
		candidates := 0
		compiled := false
		switch {
		case snap.prog != nil:
			out[p], candidates = snap.prog.evaluate(ec, req)
			compiled = true
		case snap.index != nil:
			var sub indexSubset
			if key, single := resourceMemoKey(req); single {
				var hit bool
				if sub, hit = subsets[key]; !hit {
					sub = snap.index.subsetFor(key)
					subsets[key] = sub
				}
			} else {
				// Multi-valued or absent resource-id: assembled per
				// request, never memoised under a single-value key.
				sub = snap.index.subsetForRequest(req)
			}
			out[p] = sub.set.Evaluate(ec)
			candidates = sub.candidates
		default:
			out[p] = snap.root.Evaluate(ec)
		}
		policy.ReleaseContext(ec)

		var hash uint64
		if e.cache != nil {
			hash = req.CacheKeyHash()
		} else {
			hash = policy.HashString(req.ResourceID())
		}
		e.stats.stripe(hash).recordEvaluation(out[p], candidates, compiled)
		if e.cache == nil {
			continue
		}
		if stale, ok := e.serveStale(ctx, req.CacheKey(), hash, at, out[p]); ok {
			out[p] = stale
			continue
		}
		if e.cacheable(ctx, out[p]) {
			e.fill(snap, req.CacheKey(), hash, req.ResourceID(), out[p], at)
		}
	}
}

// targetIndex partitions the direct children of a policy set by the exact
// resource-id values their targets require. Children whose targets do not
// constrain resource-id by equality land in the catch-all list and are
// considered for every request. Original child order is preserved within
// the merged candidate list, keeping order-dependent combining algorithms
// (first-applicable) correct.
type targetIndex struct {
	set        *policy.PolicySet
	byResource map[string][]int
	catchAll   []int
}

func buildIndex(set *policy.PolicySet) *targetIndex {
	idx := &targetIndex{set: set, byResource: make(map[string][]int)}
	for i, ch := range set.Children {
		keys, catchAll := policy.ResourceKeys(ch)
		if catchAll {
			idx.catchAll = append(idx.catchAll, i)
			continue
		}
		for _, key := range keys {
			idx.byResource[key] = append(idx.byResource[key], i)
		}
	}
	return idx
}

// indexSubset is the assembled candidate policy set for one resource key,
// shareable across every evaluation of that key (the set is stateless;
// each evaluation brings its own context).
type indexSubset struct {
	set        *policy.PolicySet
	candidates int
}

// subsetFor assembles the candidate sub-set for a single resource key.
func (idx *targetIndex) subsetFor(resID string) indexSubset {
	return idx.subsetOf(mergeSorted(idx.byResource[resID], idx.catchAll))
}

// subsetForRequest assembles the candidate sub-set for the request's
// resource-id bag, whatever its shape. A multi-valued bag takes the union
// of every value's posting list (a target pinned to any one of the values
// can match). A request with no resource-id at all cannot be pruned: a
// resolver could still supply any value — or fail — so skipping a pinned
// child would turn its Indeterminate into NotApplicable.
func (idx *targetIndex) subsetForRequest(req *policy.Request) indexSubset {
	bag, ok := req.Get(policy.CategoryResource, policy.AttrResourceID)
	switch {
	case !ok || bag.Empty():
		return indexSubset{set: idx.set, candidates: len(idx.set.Children)}
	case len(bag) == 1:
		return idx.subsetFor(bag[0].String())
	default:
		merged := idx.catchAll
		for _, v := range bag {
			if matched := idx.byResource[v.String()]; len(matched) > 0 {
				merged = mergeSorted(matched, merged)
			}
		}
		return idx.subsetOf(merged)
	}
}

// subsetOf materialises the sub-set holding the children at the given
// ascending positions.
func (idx *targetIndex) subsetOf(candidates []int) indexSubset {
	children := make([]policy.Evaluable, len(candidates))
	for i, pos := range candidates {
		children[i] = idx.set.Children[pos]
	}
	return indexSubset{
		set: &policy.PolicySet{
			ID:          idx.set.ID,
			Version:     idx.set.Version,
			Issuer:      idx.set.Issuer,
			Target:      idx.set.Target,
			Combining:   idx.set.Combining,
			Children:    children,
			Obligations: idx.set.Obligations,
		},
		candidates: len(candidates),
	}
}

// resourceMemoKey returns the memoisation key for a request's index
// subset: only requests with exactly one resource-id value share subsets
// keyed by that value.
func resourceMemoKey(req *policy.Request) (string, bool) {
	bag, ok := req.Get(policy.CategoryResource, policy.AttrResourceID)
	if !ok || len(bag) != 1 {
		return "", false
	}
	return bag[0].String(), true
}

// evaluate runs the set's combining algorithm over the candidate children
// only, reporting the candidate count for selectivity metrics.
func (idx *targetIndex) evaluate(ctx *policy.Context, req *policy.Request) (policy.Result, int) {
	sub := idx.subsetForRequest(req)
	return sub.set.Evaluate(ctx), sub.candidates
}

// mergeSorted merges two ascending index slices preserving order and
// dropping duplicates.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
