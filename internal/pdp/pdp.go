// Package pdp implements the Policy Decision Point: the engine that
// evaluates authorisation decision queries against the policy base
// (Section 2.2 of the paper).
//
// The engine supports two performance mechanisms the paper's challenges
// motivate: a target index that narrows evaluation to policies whose
// targets can apply to the requested resource (Section 3 scalability), and
// a TTL decision cache bounding PEP–PDP traffic (Section 3.2 Communication
// Performance). Both are optional and ablated in the benchmarks.
//
// A single engine is also the building block of larger deployments. The
// batch entry points (DecideBatch, DecideScatterAt) answer many requests
// per call, sweeping the decision cache and recording stats in one
// critical section per batch and sharing index candidate sets across
// same-resource requests. internal/ha replicates engines into
// failover/quorum ensembles, and internal/cluster shards the policy base
// across many such ensembles behind a consistent-hash router — the
// horizontal answer to the Section 3 performance argument when one
// engine's throughput ceiling is reached.
//
// The engine also supports live policy administration: ApplyUpdate
// patches one root child in place — index patched, not rebuilt; only the
// changed child's resource keys invalidated from the decision cache — so
// a policy write never flushes the working set the way SetRoot must (see
// update.go).
package pdp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/policy"
)

// ErrNoPolicy is returned when the engine is asked to decide before any
// policy has been loaded.
var ErrNoPolicy = errors.New("pdp: no policy loaded")

// Stats aggregates engine activity for experiments and monitoring.
type Stats struct {
	// Evaluations counts decisions computed (cache misses included).
	Evaluations int64
	// CacheHits counts decisions served from the decision cache.
	CacheHits int64
	// Permits, Denies, NotApplicables and Indeterminates count outcomes.
	Permits, Denies, NotApplicables, Indeterminates int64
	// IndexedCandidates sums the candidate-set sizes considered when the
	// target index is enabled, for measuring index selectivity.
	IndexedCandidates int64
	// Updates counts incremental root patches applied via ApplyUpdate.
	Updates int64
	// CacheInvalidations counts cached decisions dropped by ApplyUpdate
	// (a full catch-all flush counts once).
	CacheInvalidations int64
}

func (s *Stats) record(d policy.Decision) {
	switch d {
	case policy.DecisionPermit:
		s.Permits++
	case policy.DecisionDeny:
		s.Denies++
	case policy.DecisionNotApplicable:
		s.NotApplicables++
	case policy.DecisionIndeterminate:
		s.Indeterminates++
	}
}

// Option configures an Engine.
type Option func(*Engine)

// WithResolver attaches the information-point resolver consulted for
// attributes missing from requests.
func WithResolver(r policy.Resolver) Option {
	return func(e *Engine) { e.resolver = r }
}

// WithTargetIndex enables resource-id target indexing of the root policy
// set's direct children.
func WithTargetIndex() Option {
	return func(e *Engine) { e.indexEnabled = true }
}

// WithDecisionCache enables a TTL decision cache. maxItems <= 0 defaults to
// 8192 entries.
func WithDecisionCache(ttl time.Duration, maxItems int) Option {
	return func(e *Engine) {
		if maxItems <= 0 {
			maxItems = 8192
		}
		e.cacheTTL = ttl
		e.cacheMax = maxItems
		e.cache = make(map[string]cacheEntry, 64)
	}
}

// WithClock overrides the engine clock, used by deterministic tests and the
// virtual-time simulator.
func WithClock(now func() time.Time) Option {
	return func(e *Engine) { e.now = now }
}

type cacheEntry struct {
	res     policy.Result
	expires time.Time
	// resID keys the entry by the request's resource, so ApplyUpdate can
	// invalidate only the decisions a changed child constrains.
	resID string
}

// Engine is a thread-safe Policy Decision Point.
type Engine struct {
	name         string
	resolver     policy.Resolver
	indexEnabled bool
	cacheTTL     time.Duration
	cacheMax     int
	now          func() time.Time

	mu    sync.RWMutex
	root  policy.Evaluable
	index *targetIndex
	cache map[string]cacheEntry
	stats Stats
	// epoch counts root installs, patches and flushes. Decisions snapshot
	// it with the root and skip the cache fill when it moved, so an
	// evaluation that raced a policy change can never write a stale
	// decision back into the freshly invalidated cache.
	epoch uint64
}

// New builds an engine with the given options.
func New(name string, opts ...Option) *Engine {
	e := &Engine{name: name, now: time.Now}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Name identifies the engine in diagnostics.
func (e *Engine) Name() string { return e.name }

// SetRoot validates and installs the policy base, rebuilding the target
// index and flushing the decision cache so revocations take effect.
func (e *Engine) SetRoot(root policy.Evaluable) error {
	if root == nil {
		return fmt.Errorf("pdp %s: nil root", e.name)
	}
	if err := root.Validate(); err != nil {
		return fmt.Errorf("pdp %s: %w", e.name, err)
	}
	var idx *targetIndex
	if e.indexEnabled {
		if set, ok := root.(*policy.PolicySet); ok {
			idx = buildIndex(set)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.root = root
	e.index = idx
	e.epoch++
	if e.cache != nil {
		e.cache = make(map[string]cacheEntry, 64)
	}
	return nil
}

// Root returns the installed policy base, or nil.
func (e *Engine) Root() policy.Evaluable {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.root
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stats
}

// FlushCache drops all cached decisions.
func (e *Engine) FlushCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epoch++
	if e.cache != nil {
		e.cache = make(map[string]cacheEntry, 64)
	}
}

// Decide evaluates the request against the policy base at the current
// engine clock.
func (e *Engine) Decide(req *policy.Request) policy.Result {
	return e.DecideAt(req, e.now())
}

// DecideAtWith evaluates the request at an explicit time with a caller-
// supplied resolver overriding the engine's configured one. Multi-domain
// deployments use this to thread per-call network context (virtual clocks,
// message accounting) into cross-domain attribute retrieval. Decisions
// made through a caller-supplied resolver bypass the decision cache, since
// the resolver's view may differ per call.
func (e *Engine) DecideAtWith(req *policy.Request, at time.Time, resolver policy.Resolver) policy.Result {
	e.mu.RLock()
	root := e.root
	idx := e.index
	e.mu.RUnlock()
	if root == nil {
		return policy.Result{Decision: policy.DecisionIndeterminate, Err: ErrNoPolicy}
	}
	ctx := policy.NewContextAt(req, at)
	if resolver != nil {
		ctx.WithResolver(resolver)
	} else if e.resolver != nil {
		ctx.WithResolver(e.resolver)
	}
	var res policy.Result
	var candidates int
	if idx != nil {
		res, candidates = idx.evaluate(ctx, req)
	} else {
		res = root.Evaluate(ctx)
	}
	e.mu.Lock()
	e.stats.Evaluations++
	e.stats.IndexedCandidates += int64(candidates)
	e.stats.record(res.Decision)
	e.mu.Unlock()
	return res
}

// DecideAt evaluates the request at an explicit time.
func (e *Engine) DecideAt(req *policy.Request, at time.Time) policy.Result {
	e.mu.RLock()
	root := e.root
	idx := e.index
	useCache := e.cache != nil
	epoch := e.epoch
	e.mu.RUnlock()

	if root == nil {
		return policy.Result{Decision: policy.DecisionIndeterminate, Err: ErrNoPolicy}
	}

	var key string
	if useCache {
		key = req.CacheKey()
		e.mu.Lock()
		if entry, ok := e.cache[key]; ok && at.Before(entry.expires) {
			e.stats.CacheHits++
			e.stats.record(entry.res.Decision)
			e.mu.Unlock()
			return entry.res
		}
		e.mu.Unlock()
	}

	ctx := policy.NewContextAt(req, at)
	if e.resolver != nil {
		ctx.WithResolver(e.resolver)
	}

	var res policy.Result
	var candidates int
	if idx != nil {
		res, candidates = idx.evaluate(ctx, req)
	} else {
		res = root.Evaluate(ctx)
	}

	e.mu.Lock()
	e.stats.Evaluations++
	e.stats.IndexedCandidates += int64(candidates)
	e.stats.record(res.Decision)
	// A moved epoch means the policy base changed under this evaluation;
	// writing the result back could resurrect a just-invalidated decision.
	if useCache && e.epoch == epoch {
		if len(e.cache) >= e.cacheMax {
			for k := range e.cache {
				delete(e.cache, k)
				break
			}
		}
		e.cache[key] = cacheEntry{res: res, expires: at.Add(e.cacheTTL), resID: req.ResourceID()}
	}
	e.mu.Unlock()
	return res
}

// DecideBatch evaluates many requests at the current engine clock. See
// DecideBatchAt.
func (e *Engine) DecideBatch(reqs []*policy.Request) []policy.Result {
	return e.DecideBatchAt(reqs, e.now())
}

// DecideBatchAt evaluates many requests in one pass, answering position i
// of the result slice for request i. Compared to per-request DecideAt it
// amortises lock traffic: one critical section sweeps the decision cache
// for the whole batch and one more records stats and fills the cache,
// instead of two per request. Evaluation of cache misses runs outside any
// lock, exactly as in DecideAt.
func (e *Engine) DecideBatchAt(reqs []*policy.Request, at time.Time) []policy.Result {
	if len(reqs) == 0 {
		return nil
	}
	out := make([]policy.Result, len(reqs))
	e.DecideScatterAt(reqs, nil, at, out)
	return out
}

// DecideScatterAt is the zero-copy batch primitive behind DecideBatchAt:
// evaluate reqs[p] for every p in positions (nil means every request) and
// write each result to out[p]. The caller owns out, so layered deployments
// (cluster router → ha ensemble → engine) share one result buffer instead
// of allocating and copying per layer.
func (e *Engine) DecideScatterAt(reqs []*policy.Request, positions []int, at time.Time, out []policy.Result) {
	n := len(reqs)
	if positions != nil {
		n = len(positions)
	}
	if n == 0 {
		return
	}
	e.mu.RLock()
	root := e.root
	idx := e.index
	useCache := e.cache != nil
	epoch := e.epoch
	e.mu.RUnlock()

	if root == nil {
		res := policy.Result{Decision: policy.DecisionIndeterminate, Err: ErrNoPolicy}
		if positions == nil {
			for i := range out {
				out[i] = res
			}
		} else {
			for _, p := range positions {
				out[p] = res
			}
		}
		return
	}

	misses := make([]int, 0, n)
	if useCache {
		// Render any unmemoised cache keys before taking the lock, so the
		// critical section is map lookups only; re-reading CacheKey inside
		// (and in the fill stage below) is then a pointer load.
		if positions == nil {
			for _, req := range reqs {
				_ = req.CacheKey()
			}
		} else {
			for _, p := range positions {
				_ = reqs[p].CacheKey()
			}
		}
		e.mu.Lock()
		sweep := func(p int) {
			if entry, ok := e.cache[reqs[p].CacheKey()]; ok && at.Before(entry.expires) {
				out[p] = entry.res
				e.stats.CacheHits++
				e.stats.record(entry.res.Decision)
				return
			}
			misses = append(misses, p)
		}
		if positions == nil {
			for p := range reqs {
				sweep(p)
			}
		} else {
			for _, p := range positions {
				sweep(p)
			}
		}
		e.mu.Unlock()
		if len(misses) == 0 {
			return
		}
	} else if positions == nil {
		for p := range reqs {
			misses = append(misses, p)
		}
	} else {
		misses = positions
	}

	candidates := make([]int, len(misses))
	// Within one batch, requests for the same resource share the same
	// index candidate set; memoising the assembled subset amortises the
	// per-request candidate merge across the batch (Zipf-skewed workloads
	// repeat popular resources heavily).
	var subsets map[string]indexSubset
	if idx != nil {
		subsets = make(map[string]indexSubset, len(misses))
	}
	for mi, p := range misses {
		ctx := policy.NewContextAt(reqs[p], at)
		if e.resolver != nil {
			ctx.WithResolver(e.resolver)
		}
		if idx != nil {
			resID := reqs[p].ResourceID()
			sub, ok := subsets[resID]
			if !ok {
				sub = idx.subsetFor(resID)
				subsets[resID] = sub
			}
			out[p] = sub.set.Evaluate(ctx)
			candidates[mi] = sub.candidates
		} else {
			out[p] = root.Evaluate(ctx)
		}
	}

	e.mu.Lock()
	// See DecideAt: a moved epoch means the policy base changed under
	// this batch, so the results must not be written back.
	fill := useCache && e.epoch == epoch
	for mi, p := range misses {
		e.stats.Evaluations++
		e.stats.IndexedCandidates += int64(candidates[mi])
		e.stats.record(out[p].Decision)
		if fill {
			if len(e.cache) >= e.cacheMax {
				for k := range e.cache {
					delete(e.cache, k)
					break
				}
			}
			e.cache[reqs[p].CacheKey()] = cacheEntry{res: out[p], expires: at.Add(e.cacheTTL), resID: reqs[p].ResourceID()}
		}
	}
	e.mu.Unlock()
}

// targetIndex partitions the direct children of a policy set by the exact
// resource-id values their targets require. Children whose targets do not
// constrain resource-id by equality land in the catch-all list and are
// considered for every request. Original child order is preserved within
// the merged candidate list, keeping order-dependent combining algorithms
// (first-applicable) correct.
type targetIndex struct {
	set        *policy.PolicySet
	byResource map[string][]int
	catchAll   []int
}

func buildIndex(set *policy.PolicySet) *targetIndex {
	idx := &targetIndex{set: set, byResource: make(map[string][]int)}
	for i, ch := range set.Children {
		keys, catchAll := policy.ResourceKeys(ch)
		if catchAll {
			idx.catchAll = append(idx.catchAll, i)
			continue
		}
		for _, key := range keys {
			idx.byResource[key] = append(idx.byResource[key], i)
		}
	}
	return idx
}

// indexSubset is the assembled candidate policy set for one resource key,
// shareable across every evaluation of that key (the set is stateless;
// each evaluation brings its own context).
type indexSubset struct {
	set        *policy.PolicySet
	candidates int
}

// subsetFor assembles the candidate sub-set for a resource key.
func (idx *targetIndex) subsetFor(resID string) indexSubset {
	matched := idx.byResource[resID]
	candidates := mergeSorted(matched, idx.catchAll)

	children := make([]policy.Evaluable, len(candidates))
	for i, pos := range candidates {
		children[i] = idx.set.Children[pos]
	}
	return indexSubset{
		set: &policy.PolicySet{
			ID:          idx.set.ID,
			Version:     idx.set.Version,
			Issuer:      idx.set.Issuer,
			Target:      idx.set.Target,
			Combining:   idx.set.Combining,
			Children:    children,
			Obligations: idx.set.Obligations,
		},
		candidates: len(candidates),
	}
}

// evaluate runs the set's combining algorithm over the candidate children
// only, reporting the candidate count for selectivity metrics.
func (idx *targetIndex) evaluate(ctx *policy.Context, req *policy.Request) (policy.Result, int) {
	sub := idx.subsetFor(req.ResourceID())
	return sub.set.Evaluate(ctx), sub.candidates
}

// mergeSorted merges two ascending index slices preserving order and
// dropping duplicates.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
