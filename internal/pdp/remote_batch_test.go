package pdp

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/wire"
)

func TestRemoteBatchRoundTrip(t *testing.T) {
	engine := New("remote")
	if err := engine.SetRoot(rolePolicy()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wire.HTTPHandler(BatchHandler(engine)))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, "pep.test", "pdp.remote")
	at := time.Date(2026, 6, 12, 10, 0, 0, 0, time.UTC)

	reqs := []*policy.Request{
		policy.NewAccessRequest("alice", "rec-1", "read").
			Add(policy.CategorySubject, policy.AttrSubjectRole, policy.String("doctor")),
		policy.NewAccessRequest("eve", "rec-1", "read"),
	}
	results := client.DecideBatchAt(context.Background(), reqs, at)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Decision != policy.DecisionPermit {
		t.Errorf("doctor decision = %v (%v), want Permit", results[0].Decision, results[0].Err)
	}
	if results[1].Decision != policy.DecisionDeny {
		t.Errorf("visitor decision = %v, want Deny", results[1].Decision)
	}
	if got := client.DecideBatchAt(context.Background(), nil, at); got != nil {
		t.Errorf("empty batch returned %v", got)
	}
}

func TestRemoteBatchFailsClosed(t *testing.T) {
	engine := New("remote")
	if err := engine.SetRoot(rolePolicy()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wire.HTTPHandler(BatchHandler(engine)))
	srv.Close()
	client := NewClient(srv.URL, "pep.test", "pdp.remote")
	results := client.DecideBatchAt(context.Background(), []*policy.Request{
		policy.NewAccessRequest("alice", "rec-1", "read"),
	}, time.Now())
	if len(results) != 1 || results[0].Decision != policy.DecisionIndeterminate || results[0].Err == nil {
		t.Errorf("dead batch endpoint: got %+v, want Indeterminate with error", results)
	}
}

func TestBatchHandlerRejectsBadFrame(t *testing.T) {
	engine := New("remote")
	if err := engine.SetRoot(rolePolicy()); err != nil {
		t.Fatal(err)
	}
	h := BatchHandler(engine)
	if _, err := h(context.Background(), &wire.Call{}, &wire.Envelope{Body: []byte("not a frame")}); err == nil {
		t.Error("undecodable batch frame must error")
	}
}
