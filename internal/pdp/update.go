package pdp

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/policy"
)

// ErrNotIncremental reports an update the engine cannot apply as a delta —
// no root is loaded yet, or the root is not a policy set whose children can
// be patched one at a time. Callers fall back to a full SetRoot rebuild.
var ErrNotIncremental = errors.New("pdp: root cannot be patched incrementally")

// Update describes one change to a single direct child of the root policy
// set: the delta unit of the PAP→PDP propagation pipeline. A nil Child
// removes the identified child; a non-nil Child replaces the child with the
// same ID, or inserts it (in ID order, matching pap.Store.BuildRoot's
// deterministic child ordering) when no child carries that ID.
type Update struct {
	// ID names the root child being changed.
	ID string
	// Child is the new version of the child, nil for removal.
	Child policy.Evaluable
}

// ApplyUpdate patches a single root child in place of a full rebuild: the
// delta path of live policy administration. Only the new child is
// validated (the rest of the root was validated when installed), the target
// index is patched rather than rebuilt, and — the point of the exercise —
// only cached decisions whose resource keys the old or new child constrains
// are invalidated. When either side of the change is a catch-all (its
// target does not pin resource-id), any cached decision could be affected
// and the whole cache is flushed, exactly as SetRoot would.
//
// The update is published as a fresh snapshot: readers that loaded the
// previous one keep evaluating a consistent root/index pair, and the
// snapshot swap happens before the cache sweep so the epoch guard can
// reject any stale fill that raced the change. The root must be a
// *policy.PolicySet; otherwise ErrNotIncremental is returned and the caller
// should rebuild via SetRoot.
func (e *Engine) ApplyUpdate(u Update) error {
	if u.ID == "" {
		return fmt.Errorf("pdp %s: update with empty ID", e.name)
	}
	if u.Child != nil {
		if got := u.Child.EntityID(); got != u.ID {
			return fmt.Errorf("pdp %s: update ID %q does not match child ID %q", e.name, u.ID, got)
		}
		if err := u.Child.Validate(); err != nil {
			return fmt.Errorf("pdp %s: %w", e.name, err)
		}
	}

	e.writerMu.Lock()
	defer e.writerMu.Unlock()
	snap := e.snap.Load()
	var set *policy.PolicySet
	if snap != nil {
		set, _ = snap.root.(*policy.PolicySet)
	}
	if set == nil {
		return fmt.Errorf("pdp %s: %w", e.name, ErrNotIncremental)
	}

	newSet, pos, delta, oldChild := set.PatchChild(u.ID, u.Child)
	if newSet == nil {
		return nil // removing an absent child is a no-op
	}
	next := &snapshot{root: newSet, epoch: snap.epoch + 1}
	if e.indexEnabled {
		if snap.index != nil {
			next.index = snap.index.patched(newSet, pos, delta, u.Child)
		} else {
			next.index = buildIndex(newSet)
		}
	}
	if snap.prog != nil {
		// Delta recompile: only the new child is lowered; posting lists are
		// remapped, untouched children shared. A nil program stays nil —
		// patching a child cannot cure the root-level construct that made
		// the base uncompilable.
		start := time.Now()
		next.prog = snap.prog.patched(newSet, pos, delta, u.Child)
		e.observeCompile(time.Since(start))
	}
	// Publish before invalidating: in-flight evaluations of the old
	// snapshot either observe the moved epoch and skip their cache fill,
	// or land before the sweep below and are removed by it.
	e.snap.Store(next)
	e.stats.updates.Add(1)
	e.invalidate(oldChild, u.Child)
	return nil
}

// invalidate drops exactly the cached decisions the change can affect:
// entries whose resource key the old or new child constrains, swept shard
// by shard under each shard's own lock. A catch-all on either side forces
// a full flush. Callers hold e.writerMu.
func (e *Engine) invalidate(oldChild, newChild policy.Evaluable) {
	if e.cache == nil {
		return
	}
	affected := make(map[string]struct{}, 4)
	for _, ch := range []policy.Evaluable{oldChild, newChild} {
		if ch == nil {
			continue
		}
		keys, catchAll := policy.ResourceKeys(ch)
		if catchAll {
			e.cache.flush()
			e.stats.cacheInvalidations.Add(1)
			return
		}
		for _, k := range keys {
			affected[k] = struct{}{}
		}
	}
	e.stats.cacheInvalidations.Add(e.cache.invalidate(affected))
}

// patched returns a copy of the index over newSet's children where the
// child at pos was replaced (delta 0), inserted (delta +1) or removed
// (delta -1), via the shared policy.RemapPositions rule. add (nil on
// delete) is then indexed at pos. The receiver is never mutated, so
// concurrent readers holding it keep a consistent snapshot. Cost is
// O(index size) integer work — no target re-derivation for unchanged
// children, and no revalidation of anything.
func (idx *targetIndex) patched(newSet *policy.PolicySet, pos, delta int, add policy.Evaluable) *targetIndex {
	out := &targetIndex{set: newSet, byResource: make(map[string][]int, len(idx.byResource))}
	for key, positions := range idx.byResource {
		if next := policy.RemapPositions(positions, pos, delta); len(next) > 0 {
			out.byResource[key] = next
		}
	}
	out.catchAll = policy.RemapPositions(idx.catchAll, pos, delta)
	if add != nil {
		keys, catchAll := policy.ResourceKeys(add)
		if catchAll {
			out.catchAll = policy.InsertPosition(out.catchAll, pos)
		} else {
			for _, k := range keys {
				out.byResource[k] = policy.InsertPosition(out.byResource[k], pos)
			}
		}
	}
	return out
}
