package pdp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
)

// churnPolicy builds version v of the policy administering one resource:
// even versions permit read only, odd versions permit write only, so a
// stale cached decision is always observably wrong.
func churnPolicy(res string, v int) *policy.Policy {
	allowed := "read"
	if v%2 == 1 {
		allowed = "write"
	}
	return policy.NewPolicy("pol-" + res).
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID(res)).
		Rule(policy.Permit("allow").When(policy.MatchActionID(allowed)).Build()).
		Rule(policy.Deny("default").Build()).
		Build()
}

// catchAllPolicy denies the "purge" action for every resource: a child with
// no resource-id constraint, exercising the full-flush fallback.
func catchAllPolicy(v int) *policy.Policy {
	action := "purge"
	if v%2 == 1 {
		action = "audit"
	}
	return policy.NewPolicy("global-guard").
		Combining(policy.FirstApplicable).
		Rule(policy.Deny("no-" + action).When(policy.MatchActionID(action)).Build()).
		Build()
}

// roamingPolicy administers a different resource each version, exercising
// key moves (delete on the old owner, insert on the new, in a cluster).
func roamingPolicy(v int) *policy.Policy {
	res := fmt.Sprintf("res-%d", v%7)
	return policy.NewPolicy("roaming").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID(res)).
		Rule(policy.Deny("roam-deny").When(policy.MatchActionID("write")).Build()).
		Build()
}

// modelRoot assembles the reference root from the model state exactly as
// pap.Store.BuildRoot would: children in ID order under deny-overrides.
func modelRoot(model map[string]policy.Evaluable) *policy.PolicySet {
	ids := make([]string, 0, len(model))
	for id := range model {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	b := policy.NewPolicySet("root").Combining(policy.DenyOverrides)
	for _, id := range ids {
		b.Add(model[id])
	}
	return b.Build()
}

// churnRequests spans every administered resource and action, plus an
// unadministered resource.
func churnRequests(resources int) []*policy.Request {
	var reqs []*policy.Request
	for i := 0; i < resources; i++ {
		res := fmt.Sprintf("res-%d", i)
		for _, action := range []string{"read", "write", "purge", "audit"} {
			reqs = append(reqs, policy.NewAccessRequest("alice", res, action))
		}
	}
	reqs = append(reqs, policy.NewAccessRequest("alice", "res-unknown", "read"))
	return reqs
}

// TestApplyUpdateEquivalentToRebuild is the delta-pipeline property test:
// any sequence of Put/Delete deltas applied incrementally yields decisions
// identical to a from-scratch rebuild of the same state — across plain,
// indexed, and indexed+cached engines (the cached variant also proves the
// selective invalidation never serves a stale decision).
func TestApplyUpdateEquivalentToRebuild(t *testing.T) {
	variants := []struct {
		name string
		opts []Option
	}{
		{"plain", nil},
		{"indexed", []Option{WithTargetIndex()}},
		{"indexed+cached", []Option{WithTargetIndex(), WithDecisionCache(time.Hour, 0)}},
	}
	const resources = 7
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	reqs := churnRequests(resources)
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				model := make(map[string]policy.Evaluable)
				live := New("live", v.opts...)
				if err := live.SetRoot(modelRoot(model)); err != nil {
					t.Fatal(err)
				}
				version := 0
				for op := 0; op < 120; op++ {
					version++
					var u Update
					switch r := rng.Intn(10); {
					case r < 5: // put a per-resource policy
						p := churnPolicy(fmt.Sprintf("res-%d", rng.Intn(resources)), version)
						u = Update{ID: p.ID, Child: p}
					case r < 6: // put the catch-all
						p := catchAllPolicy(version)
						u = Update{ID: p.ID, Child: p}
					case r < 7: // put the roaming policy (keys move)
						p := roamingPolicy(version)
						u = Update{ID: p.ID, Child: p}
					default: // delete something that may or may not exist
						ids := []string{"global-guard", "roaming"}
						for i := 0; i < resources; i++ {
							ids = append(ids, fmt.Sprintf("pol-res-%d", i))
						}
						u = Update{ID: ids[rng.Intn(len(ids))]}
					}
					if u.Child != nil {
						model[u.ID] = u.Child
					} else {
						delete(model, u.ID)
					}
					if err := live.ApplyUpdate(u); err != nil {
						t.Fatalf("seed %d op %d: ApplyUpdate: %v", seed, op, err)
					}
					if op%20 != 19 {
						continue
					}
					rebuilt := New("rebuilt", v.opts...)
					if err := rebuilt.SetRoot(modelRoot(model)); err != nil {
						t.Fatalf("seed %d op %d: rebuild: %v", seed, op, err)
					}
					for _, req := range reqs {
						got := live.DecideAt(context.Background(), req, at)
						want := rebuilt.DecideAt(context.Background(), req, at)
						if got.Decision != want.Decision || got.By != want.By {
							t.Fatalf("seed %d op %d: %s on %s: delta path = %v by %s, rebuild = %v by %s",
								seed, op, req.ActionID(), req.ResourceID(),
								got.Decision, got.By, want.Decision, want.By)
						}
					}
				}
			}
		})
	}
}

// TestApplyUpdatePreservesUnaffectedCache asserts the point of the delta
// path: patching one child invalidates only that child's resource keys,
// and every other cached decision keeps serving.
func TestApplyUpdatePreservesUnaffectedCache(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New("e", WithTargetIndex(), WithDecisionCache(time.Hour, 0))
	if err := e.SetRoot(resourcePolicies(5)); err != nil {
		t.Fatal(err)
	}
	var warm []*policy.Request
	for i := 0; i < 5; i++ {
		warm = append(warm, policy.NewAccessRequest("u", fmt.Sprintf("res-%d", i), "read"))
	}
	for _, req := range warm {
		if got := e.DecideAt(context.Background(), req, at); got.Decision != policy.DecisionPermit {
			t.Fatalf("warm-up %s: %v", req.ResourceID(), got.Decision)
		}
	}
	before := e.Stats()

	// Flip res-0 to write-only: read becomes deny.
	if err := e.ApplyUpdate(Update{ID: "pol-res-0", Child: churnPolicy("res-0", 1)}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Updates != 1 || st.CacheInvalidations != 1 {
		t.Fatalf("stats after update = %+v, want 1 update invalidating 1 entry", st)
	}

	for _, req := range warm[1:] {
		if got := e.DecideAt(context.Background(), req, at); got.Decision != policy.DecisionPermit {
			t.Fatalf("unaffected %s: %v", req.ResourceID(), got.Decision)
		}
	}
	if got := e.DecideAt(context.Background(), warm[0], at); got.Decision != policy.DecisionDeny {
		t.Fatalf("res-0 read after update = %v, want deny", got.Decision)
	}
	after := e.Stats()
	if hits := after.CacheHits - before.CacheHits; hits != 4 {
		t.Errorf("cache hits across update = %d, want 4 (untouched resources stay warm)", hits)
	}
	if evals := after.Evaluations - before.Evaluations; evals != 1 {
		t.Errorf("evaluations across update = %d, want 1 (only the changed resource)", evals)
	}
}

// TestApplyUpdateCatchAllFlushes asserts the documented fallback: a child
// that does not pin resource-id can affect any decision, so the whole
// cache is dropped.
func TestApplyUpdateCatchAllFlushes(t *testing.T) {
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New("e", WithTargetIndex(), WithDecisionCache(time.Hour, 0))
	if err := e.SetRoot(resourcePolicies(3)); err != nil {
		t.Fatal(err)
	}
	var warm []*policy.Request
	for i := 0; i < 3; i++ {
		warm = append(warm, policy.NewAccessRequest("u", fmt.Sprintf("res-%d", i), "read"))
	}
	for _, req := range warm {
		e.DecideAt(context.Background(), req, at)
	}
	before := e.Stats()
	if err := e.ApplyUpdate(Update{ID: "global-guard", Child: catchAllPolicy(0)}); err != nil {
		t.Fatal(err)
	}
	for _, req := range warm {
		e.DecideAt(context.Background(), req, at)
	}
	after := e.Stats()
	if hits := after.CacheHits - before.CacheHits; hits != 0 {
		t.Errorf("cache hits after catch-all update = %d, want 0 (full flush)", hits)
	}
	if evals := after.Evaluations - before.Evaluations; evals != 3 {
		t.Errorf("evaluations after catch-all update = %d, want 3", evals)
	}
}

// TestConcurrentDecideAndApplyUpdate races cached decisions against delta
// updates (run with -race) and then verifies no stale decision survived in
// the cache: once the writers stop, every decision must match a fresh
// engine built from the final policy state. The epoch guard makes this
// hold — an evaluation that crossed an update must not write its result
// back into the freshly invalidated cache.
func TestConcurrentDecideAndApplyUpdate(t *testing.T) {
	const resources = 8
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := New("e", WithTargetIndex(), WithDecisionCache(time.Hour, 0))
	model := make(map[string]policy.Evaluable)
	for i := 0; i < resources; i++ {
		p := churnPolicy(fmt.Sprintf("res-%d", i), 0)
		model[p.ID] = p
	}
	if err := e.SetRoot(modelRoot(model)); err != nil {
		t.Fatal(err)
	}
	reqs := churnRequests(resources)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					e.DecideAt(context.Background(), reqs[i%len(reqs)], at)
				}
			}
		}()
	}
	finalVersion := make([]int, resources)
	for v := 1; v <= 200; v++ {
		res := (v * 3) % resources
		finalVersion[res] = v
		p := churnPolicy(fmt.Sprintf("res-%d", res), v)
		if err := e.ApplyUpdate(Update{ID: p.ID, Child: p}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	for i := 0; i < resources; i++ {
		model[fmt.Sprintf("pol-res-%d", i)] = churnPolicy(fmt.Sprintf("res-%d", i), finalVersion[i])
	}
	ref := New("ref")
	if err := ref.SetRoot(modelRoot(model)); err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		got := e.DecideAt(context.Background(), req, at)
		want := ref.DecideAt(context.Background(), req, at)
		if got.Decision != want.Decision {
			t.Fatalf("%s on %s after churn = %v, want %v (stale cache entry?)",
				req.ActionID(), req.ResourceID(), got.Decision, want.Decision)
		}
	}
}

func TestApplyUpdateErrors(t *testing.T) {
	e := New("e")
	p := churnPolicy("res-0", 0)
	if err := e.ApplyUpdate(Update{ID: p.ID, Child: p}); !errors.Is(err, ErrNotIncremental) {
		t.Errorf("no root: err = %v, want ErrNotIncremental", err)
	}
	if err := e.SetRoot(churnPolicy("res-1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyUpdate(Update{ID: p.ID, Child: p}); !errors.Is(err, ErrNotIncremental) {
		t.Errorf("non-set root: err = %v, want ErrNotIncremental", err)
	}
	if err := e.SetRoot(resourcePolicies(2)); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyUpdate(Update{}); err == nil {
		t.Error("empty ID must be rejected")
	}
	if err := e.ApplyUpdate(Update{ID: "other", Child: p}); err == nil {
		t.Error("ID/child mismatch must be rejected")
	}
	if err := e.ApplyUpdate(Update{ID: "bad", Child: &policy.Policy{ID: "bad"}}); err == nil {
		t.Error("invalid child must be rejected")
	}
	if err := e.ApplyUpdate(Update{ID: "absent"}); err != nil {
		t.Errorf("deleting an absent child = %v, want no-op", err)
	}
	if got := e.Stats().Updates; got != 0 {
		t.Errorf("failed updates must not count, got %d", got)
	}
}
