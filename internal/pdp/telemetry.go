package pdp

import (
	"repro/internal/policy"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// RegisterMetrics exposes the engine's counters on the registry. The
// bridge is pull-model: collectors aggregate the engine's padded atomic
// stat stripes only at scrape time, so registration adds nothing to the
// decision hot path. Call once per registry; duplicate registration
// panics (telemetry.Registry semantics).
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	reg.Register("repro_pdp_decisions_total",
		"Decisions returned, by outcome (cache hits included).",
		telemetry.KindCounter, func() []telemetry.Sample {
			st := e.Stats()
			return []telemetry.Sample{
				{Labels: []telemetry.Label{telemetry.L("outcome", "permit")}, Value: float64(st.Permits)},
				{Labels: []telemetry.Label{telemetry.L("outcome", "deny")}, Value: float64(st.Denies)},
				{Labels: []telemetry.Label{telemetry.L("outcome", "not_applicable")}, Value: float64(st.NotApplicables)},
				{Labels: []telemetry.Label{telemetry.L("outcome", "indeterminate")}, Value: float64(st.Indeterminates)},
			}
		})
	reg.CounterFunc("repro_pdp_evaluations_total",
		"Full policy evaluations (decision cache misses).",
		func() int64 { return e.Stats().Evaluations })
	reg.CounterFunc("repro_pdp_cache_hits_total",
		"Decisions served from the decision cache.",
		func() int64 { return e.Stats().CacheHits })
	reg.GaugeFunc("repro_pdp_cache_entries",
		"Decisions currently cached, summed across cache shards.",
		func() int64 { return e.Stats().CacheEntries })
	reg.CounterFunc("repro_pdp_cache_invalidations_total",
		"Cached decisions dropped by live policy updates.",
		func() int64 { return e.Stats().CacheInvalidations })
	reg.CounterFunc("repro_pdp_updates_total",
		"Incremental root patches applied.",
		func() int64 { return e.Stats().Updates })
	reg.CounterFunc("repro_pdp_indexed_candidates_total",
		"Sum of target-index candidate-set sizes considered.",
		func() int64 { return e.Stats().IndexedCandidates })
	reg.CounterFunc("repro_pdp_compiled_evaluations_total",
		"Evaluations answered by the compiled decision program.",
		func() int64 { return e.Stats().CompiledEvaluations })
	reg.CounterFunc("repro_pdp_interpreted_evaluations_total",
		"Evaluations answered by the interpretive paths (no compiled program).",
		func() int64 { return e.Stats().InterpretedEvaluations })
	reg.GaugeFunc("repro_pdp_max_candidates",
		"Largest candidate set a single evaluation considered.",
		func() int64 { return e.Stats().MaxCandidates })
	reg.CounterFunc("repro_pdp_compiles_total",
		"Policy-base compilations (full on SetRoot, delta on ApplyUpdate).",
		func() int64 { return e.Stats().Compiles })
	reg.Register("repro_pdp_compile_ns",
		"Policy-base compilation latency (full and delta compiles).",
		telemetry.KindHistogram, func() []telemetry.Sample {
			return []telemetry.Sample{{Hist: e.compileHist.Snapshot()}}
		})
	reg.GaugeFunc("repro_pdp_compiled_children",
		"Direct root children lowered by the compiler in the current program.",
		func() int64 { return e.Stats().CompiledChildren })
	reg.GaugeFunc("repro_pdp_root_children",
		"Direct root children in the current compiled program.",
		func() int64 { return e.Stats().RootChildren })
	reg.GaugeFunc("repro_pdp_epoch",
		"Policy snapshot epoch (bumps on installs, patches and flushes).",
		func() int64 {
			if snap := e.snap.Load(); snap != nil {
				return int64(snap.epoch)
			}
			return 0
		})
}

// annotateResultSpan marks a span with a decision outcome, forcing trace
// retention for Indeterminate — shared by the remote client and handler.
// Nil-safe, like all Span methods.
func annotateResultSpan(sp *trace.Span, res policy.Result) {
	if sp == nil {
		return
	}
	sp.SetAttr("pdp.decision", res.Decision.String())
	if res.Err != nil {
		sp.SetAttr("error", res.Err.Error())
	}
	if res.Decision == policy.DecisionIndeterminate {
		sp.Keep()
	}
}
