package pdp

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/policy"
)

// Context semantics of the engine itself: expiry surfaces as Indeterminate
// with the cause, mid-evaluation resolver fetches abort, and a decision
// poisoned by an expired context never enters the decision cache.

func ctxTestRoot(t *testing.T) policy.Evaluable {
	t.Helper()
	return policy.NewPolicySet("root").Combining(policy.DenyOverrides).
		Add(policy.NewPolicy("p").Combining(policy.FirstApplicable).
			Rule(policy.Permit("ok").When(policy.MatchRole("doctor")).Build()).
			Rule(policy.Deny("no").Build()).
			Build()).
		Build()
}

func TestEngineExpiredContextIndeterminate(t *testing.T) {
	e := New("pdp")
	if err := e.SetRoot(ctxTestRoot(t)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.DecideAt(ctx, policy.NewAccessRequest("alice", "r", "read"), time.Now())
	if res.Decision != policy.DecisionIndeterminate {
		t.Fatalf("decision = %s, want Indeterminate", res.Decision)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled carried as the status message", res.Err)
	}
}

func TestEngineCancelAbortsBlockedResolver(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	blocking := policy.ResolverFunc(func(ctx context.Context, _ *policy.Request, _ policy.Category, _ string) (policy.Bag, error) {
		select {
		case <-release:
			return policy.Singleton(policy.String("doctor")), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	e := New("pdp", WithResolver(blocking))
	if err := e.SetRoot(ctxTestRoot(t)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := e.DecideAt(ctx, policy.NewAccessRequest("alice", "r", "read"), time.Now())
	if time.Since(start) > 2*time.Second {
		t.Fatal("decision blocked past the deadline on a stuck information point")
	}
	if res.Decision != policy.DecisionIndeterminate || !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("got %s (%v), want deadline Indeterminate", res.Decision, res.Err)
	}
}

// TestDeadlinePoisonedDecisionNotCached: the Indeterminate produced by an
// expired context must not be served from the decision cache to the next
// caller, who has time to earn a real decision.
func TestDeadlinePoisonedDecisionNotCached(t *testing.T) {
	calls := 0
	resolver := policy.ResolverFunc(func(ctx context.Context, _ *policy.Request, _ policy.Category, _ string) (policy.Bag, error) {
		calls++
		if calls == 1 {
			<-ctx.Done() // first fetch rides into the deadline
			return nil, ctx.Err()
		}
		return policy.Singleton(policy.String("doctor")), nil
	})
	e := New("pdp", WithResolver(resolver), WithDecisionCache(time.Hour, 0))
	if err := e.SetRoot(ctxTestRoot(t)); err != nil {
		t.Fatal(err)
	}
	req := policy.NewAccessRequest("alice", "r", "read")
	at := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	res := e.DecideAt(ctx, req, at)
	cancel()
	if res.Decision != policy.DecisionIndeterminate {
		t.Fatalf("poisoned decision = %s, want Indeterminate", res.Decision)
	}

	res = e.DecideAt(context.Background(), req, at)
	if res.Decision != policy.DecisionPermit {
		t.Fatalf("fresh decision = %s (%v), want Permit — the poisoned result leaked from the cache", res.Decision, res.Err)
	}
	if st := e.Stats(); st.CacheHits != 0 {
		t.Fatalf("cache hits = %d; the poisoned entry was served", st.CacheHits)
	}
}

// TestBatchCancelledMidwayShedsTail: a batch whose context dies after some
// positions evaluated keeps those verdicts and sheds the rest closed.
func TestBatchCancelledMidwayShedsTail(t *testing.T) {
	evaluated := 0
	ctx, cancel := context.WithCancel(context.Background())
	resolver := policy.ResolverFunc(func(_ context.Context, _ *policy.Request, _ policy.Category, _ string) (policy.Bag, error) {
		evaluated++
		if evaluated == 3 {
			cancel() // the caller dies mid-batch
		}
		return policy.Singleton(policy.String("doctor")), nil
	})
	e := New("pdp", WithResolver(resolver))
	if err := e.SetRoot(ctxTestRoot(t)); err != nil {
		t.Fatal(err)
	}
	reqs := make([]*policy.Request, 8)
	for i := range reqs {
		// Distinct subjects so the per-evaluation memo cannot absorb the
		// resolver calls.
		reqs[i] = policy.NewAccessRequest("user-"+string(rune('a'+i)), "r", "read")
	}
	results := e.DecideBatchAt(ctx, reqs, time.Now())
	permits, shed := 0, 0
	for _, res := range results {
		switch {
		case res.Decision == policy.DecisionPermit:
			permits++
		case errors.Is(res.Err, context.Canceled):
			shed++
		}
	}
	if permits == 0 || shed == 0 {
		t.Fatalf("permits=%d shed=%d; want finished positions kept and the tail shed", permits, shed)
	}
	if permits+shed != len(reqs) {
		t.Fatalf("permits=%d shed=%d of %d positions", permits, shed, len(reqs))
	}
}
