package conflict

import (
	"testing"

	"repro/internal/policy"
)

func permitFor(id, role, action, resource string) *policy.Policy {
	b := policy.NewPolicy(id).Combining(policy.FirstApplicable)
	var matches []policy.Match
	if role != "" {
		matches = append(matches, policy.MatchRole(role))
	}
	if action != "" {
		matches = append(matches, policy.MatchActionID(action))
	}
	if resource != "" {
		matches = append(matches, policy.MatchResourceID(resource))
	}
	return b.Rule(policy.Permit(id + "-allow").When(matches...).Build()).Build()
}

func denyFor(id, role, action, resource string) *policy.Policy {
	b := policy.NewPolicy(id).Combining(policy.FirstApplicable)
	var matches []policy.Match
	if role != "" {
		matches = append(matches, policy.MatchRole(role))
	}
	if action != "" {
		matches = append(matches, policy.MatchActionID(action))
	}
	if resource != "" {
		matches = append(matches, policy.MatchResourceID(resource))
	}
	return b.Rule(policy.Deny(id + "-deny").When(matches...).Build()).Build()
}

func TestExtractClaimsMergesTargets(t *testing.T) {
	p := policy.NewPolicy("p").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("db")).
		Rule(policy.Permit("r1").When(policy.MatchActionID("read")).Build()).
		Rule(policy.Deny("r2").If(policy.Lit(policy.Boolean(true))).Build()).
		Build()
	claims := ExtractClaims(p)
	if len(claims) != 2 {
		t.Fatalf("claims = %d, want 2", len(claims))
	}
	r1 := claims[0]
	if r1.Resources.String() != "db" || r1.Actions.String() != "read" || !r1.Subjects.Wildcard() {
		t.Errorf("r1 constraints wrong: %s", r1)
	}
	if r1.Conditional {
		t.Error("r1 has no condition")
	}
	if !claims[1].Conditional {
		t.Error("r2 must be conditional")
	}
}

func TestAnalyzeFindsActualConflict(t *testing.T) {
	policies := []*policy.Policy{
		permitFor("p-allow", "doctor", "read", "rec"),
		denyFor("p-deny", "doctor", "read", "rec"),
	}
	conflicts := Analyze(policies)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(conflicts))
	}
	c := conflicts[0]
	if !c.Actual {
		t.Error("condition-free clash must be Actual")
	}
	if c.Permit.PolicyID != "p-allow" || c.Deny.PolicyID != "p-deny" {
		t.Errorf("wrong pairing: %s", c)
	}
}

func TestAnalyzeNoConflictWhenDisjoint(t *testing.T) {
	cases := []struct {
		name     string
		policies []*policy.Policy
	}{
		{"different-resources", []*policy.Policy{
			permitFor("a", "doctor", "read", "rec-1"),
			denyFor("b", "doctor", "read", "rec-2"),
		}},
		{"different-actions", []*policy.Policy{
			permitFor("a", "doctor", "read", "rec"),
			denyFor("b", "doctor", "write", "rec"),
		}},
		{"different-roles", []*policy.Policy{
			permitFor("a", "doctor", "read", "rec"),
			denyFor("b", "nurse", "read", "rec"),
		}},
		{"same-modality", []*policy.Policy{
			permitFor("a", "doctor", "read", "rec"),
			permitFor("b", "doctor", "read", "rec"),
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if got := Analyze(tt.policies); len(got) != 0 {
				t.Errorf("found %d conflicts, want 0: %v", len(got), got)
			}
		})
	}
}

func TestAnalyzeWildcardOverlaps(t *testing.T) {
	// A blanket deny conflicts with any permit.
	policies := []*policy.Policy{
		permitFor("specific", "doctor", "read", "rec"),
		denyFor("blanket", "", "", ""),
	}
	conflicts := Analyze(policies)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(conflicts))
	}
}

func TestAnalyzeConditionalIsPotential(t *testing.T) {
	conditional := policy.NewPolicy("cond").
		Combining(policy.FirstApplicable).
		Rule(policy.Deny("night-deny").
			When(policy.MatchActionID("read")).
			If(policy.Lit(policy.Boolean(true))).
			Build()).
		Build()
	policies := []*policy.Policy{permitFor("allow", "", "read", ""), conditional}
	conflicts := Analyze(policies)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(conflicts))
	}
	if conflicts[0].Actual {
		t.Error("conditional clash must be Potential, not Actual")
	}
}

func TestAnalyzeCrossDomain(t *testing.T) {
	a := permitFor("a", "doctor", "read", "rec")
	a.Issuer = "hospital-a"
	b := denyFor("b", "doctor", "read", "rec")
	b.Issuer = "hospital-b"
	conflicts := Analyze([]*policy.Policy{a, b})
	if len(conflicts) != 1 || !conflicts[0].CrossDomain {
		t.Errorf("cross-domain flag missing: %v", conflicts)
	}
}

func TestUnsatisfiableClaimsIgnored(t *testing.T) {
	// Policy target requires resource db1, rule target requires db2:
	// the rule can never apply, so it must not report conflicts.
	impossible := policy.NewPolicy("imp").
		Combining(policy.FirstApplicable).
		When(policy.MatchResourceID("db1")).
		Rule(policy.Deny("never").When(policy.MatchResourceID("db2")).Build()).
		Build()
	policies := []*policy.Policy{permitFor("allow", "", "", ""), impossible}
	if got := Analyze(policies); len(got) != 0 {
		t.Errorf("unsatisfiable claim produced conflicts: %v", got)
	}
}

func conflictFixture() Conflict {
	return Analyze([]*policy.Policy{
		permitFor("allow-doctors", "doctor", "read", "rec"),
		denyFor("blanket", "", "", ""),
	})[0]
}

func TestPrecedenceStrategies(t *testing.T) {
	c := conflictFixture()
	eff, _, err := PrecedenceStrategy{}.Resolve(c)
	if err != nil || eff != policy.EffectDeny {
		t.Errorf("deny-overrides: %v, %v", eff, err)
	}
	eff, _, err = PrecedenceStrategy{PermitWins: true}.Resolve(c)
	if err != nil || eff != policy.EffectPermit {
		t.Errorf("permit-overrides: %v, %v", eff, err)
	}
}

func TestSpecificityStrategy(t *testing.T) {
	c := conflictFixture() // permit has 3 constrained dims, deny 0
	eff, reason, err := SpecificityStrategy{}.Resolve(c)
	if err != nil || eff != policy.EffectPermit {
		t.Errorf("specificity: %v (%s), %v", eff, reason, err)
	}
	// Ties fail closed.
	tie := Analyze([]*policy.Policy{
		permitFor("a", "doctor", "read", "rec"),
		denyFor("b", "doctor", "read", "rec"),
	})[0]
	eff, _, err = SpecificityStrategy{}.Resolve(tie)
	if err != nil || eff != policy.EffectDeny {
		t.Errorf("tie must fail closed: %v, %v", eff, err)
	}
}

func TestPriorityStrategy(t *testing.T) {
	c := conflictFixture()
	s := PriorityStrategy{Priorities: map[string]int{"allow-doctors": 10, "blanket": 1}}
	eff, _, err := s.Resolve(c)
	if err != nil || eff != policy.EffectPermit {
		t.Errorf("priority: %v, %v", eff, err)
	}
	s = PriorityStrategy{Priorities: map[string]int{"blanket": 10}}
	eff, _, err = s.Resolve(c)
	if err != nil || eff != policy.EffectDeny {
		t.Errorf("priority deny: %v, %v", eff, err)
	}
	// Unknown policies tie at 0 and fail closed.
	eff, _, err = PriorityStrategy{}.Resolve(c)
	if err != nil || eff != policy.EffectDeny {
		t.Errorf("default priority: %v, %v", eff, err)
	}
}

func TestResolveAll(t *testing.T) {
	conflicts := Analyze([]*policy.Policy{
		permitFor("p1", "doctor", "read", "rec"),
		denyFor("d1", "doctor", "read", "rec"),
		permitFor("p2", "nurse", "write", "log"),
		denyFor("d2", "nurse", "write", "log"),
	})
	if len(conflicts) != 2 {
		t.Fatalf("conflicts = %d, want 2", len(conflicts))
	}
	res, err := ResolveAll(conflicts, PrecedenceStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Winner != policy.EffectDeny {
			t.Errorf("deny-overrides resolution = %v", r.Winner)
		}
		if r.Reason == "" {
			t.Error("resolutions must carry explanations")
		}
	}
}

func TestCheckSoD(t *testing.T) {
	// One role may both raise and approve payments: a violation.
	policies := []*policy.Policy{
		permitFor("raise", "clerk", "raise", "payment"),
		permitFor("approve", "clerk", "approve", "payment"),
		permitFor("other", "auditor", "read", "ledger"),
	}
	reqs := []SoDRequirement{{
		Name:           "payment-sod",
		FirstAction:    "raise",
		FirstResource:  "payment",
		SecondAction:   "approve",
		SecondResource: "payment",
	}}
	violations := CheckSoD(policies, reqs)
	if len(violations) == 0 {
		t.Fatal("expected a SoD violation")
	}
	// Separated roles do not violate.
	separated := []*policy.Policy{
		permitFor("raise", "clerk", "raise", "payment"),
		permitFor("approve", "supervisor", "approve", "payment"),
	}
	if got := CheckSoD(separated, reqs); len(got) != 0 {
		t.Errorf("separated duties flagged: %v", got)
	}
	// A wildcard-role permit covering both duties violates.
	blanket := []*policy.Policy{permitFor("super", "", "", "")}
	if got := CheckSoD(blanket, reqs); len(got) == 0 {
		t.Error("blanket permit must violate SoD")
	}
}

func TestConstraintSetOps(t *testing.T) {
	var wild ConstraintSet
	ab := ConstraintSet{"a", "b"}
	cd := ConstraintSet{"c", "d"}
	bc := ConstraintSet{"b", "c"}
	if !wild.Overlaps(ab) || !ab.Overlaps(wild) {
		t.Error("wildcard overlaps everything")
	}
	if ab.Overlaps(cd) {
		t.Error("disjoint sets must not overlap")
	}
	if !ab.Overlaps(bc) {
		t.Error("sharing b must overlap")
	}
	if !ab.MoreSpecificThan(wild) || wild.MoreSpecificThan(ab) {
		t.Error("specificity ordering wrong")
	}
	if got := intersectConstraints(ab, bc); len(got) != 1 || got[0] != "b" {
		t.Errorf("intersect = %v", got)
	}
	if got := intersectConstraints(ab, cd); got == nil || len(got) != 0 {
		t.Errorf("disjoint intersect must be empty-marker, got %v", got)
	}
	if got := intersectConstraints(wild, ab); got.String() != "a|b" {
		t.Errorf("wildcard identity: %v", got)
	}
}
