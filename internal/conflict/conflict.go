// Package conflict implements the static policy-conflict analysis of
// Section 3.1 of the paper (after Lupu & Sloman): it extracts the
// {subject, action, target} authorisation claims each policy makes,
// detects modality conflicts (a permit and a deny applicable to the same
// tuple), classifies them as potential or actual, and resolves them under
// the strategies the paper lists — combining-algorithm precedence,
// specificity, explicit priority, and application-specific meta-policies
// such as separation of duty.
package conflict

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/policy"
)

// ConstraintSet is the set of values a claim requires for one dimension.
// A nil set means unconstrained (wildcard).
type ConstraintSet []string

// Wildcard reports whether the set accepts any value.
func (c ConstraintSet) Wildcard() bool { return len(c) == 0 }

// Overlaps reports whether two constraint sets can both apply to one value.
func (c ConstraintSet) Overlaps(o ConstraintSet) bool {
	if c.Wildcard() || o.Wildcard() {
		return true
	}
	for _, v := range c {
		for _, w := range o {
			if v == w {
				return true
			}
		}
	}
	return false
}

// MoreSpecificThan reports whether this set constrains strictly more than
// the other (non-wildcard beats wildcard).
func (c ConstraintSet) MoreSpecificThan(o ConstraintSet) bool {
	return !c.Wildcard() && o.Wildcard()
}

// Covers reports whether every value the other set admits is admitted by
// this set: the one-dimensional subsumption test behind shadowing and
// redundancy analysis. A wildcard covers everything; nothing but a
// wildcard covers a wildcard.
func (c ConstraintSet) Covers(o ConstraintSet) bool {
	if c.Wildcard() {
		return true
	}
	if o.Wildcard() {
		return false
	}
	for _, v := range o {
		if !contains(c, v) {
			return false
		}
	}
	return true
}

// Intersect narrows this set with another; wildcard is the identity. Two
// disjoint non-wildcard sets intersect to the empty non-nil marker, which
// keeps Overlaps false and marks the claim unsatisfiable.
func (c ConstraintSet) Intersect(o ConstraintSet) ConstraintSet {
	return intersectConstraints(c, o)
}

func (c ConstraintSet) String() string {
	if c.Wildcard() {
		return "*"
	}
	return strings.Join(c, "|")
}

// Claim is one authorisation statement extracted from a rule: the effect a
// policy asserts for the tuples its targets cover.
type Claim struct {
	// PolicyID and RuleID locate the claim's origin.
	PolicyID string
	RuleID   string
	// Issuer is the authority behind the policy, used by cross-domain
	// analyses.
	Issuer string
	// Effect is the asserted outcome.
	Effect policy.Effect
	// Subjects, Roles, Actions, Resources and ResourceTypes constrain
	// applicability.
	Subjects      ConstraintSet
	Roles         ConstraintSet
	Actions       ConstraintSet
	Resources     ConstraintSet
	ResourceTypes ConstraintSet
	// Conditional marks rules with runtime conditions: their conflicts
	// are potential rather than actual.
	Conditional bool
	// RuleIndex is the rule's position within its policy, the order input
	// of shadowing analysis under order-dependent combining algorithms.
	RuleIndex int
	// Algorithm is the rule-combining algorithm of the policy the claim
	// came from, governing intra-policy claim relationships.
	Algorithm policy.Algorithm
}

// Covers reports whether this claim applies to every tuple the other claim
// applies to: five-dimensional subsumption, the input of shadowing,
// redundancy and dead-zone analysis.
func (c Claim) Covers(o Claim) bool {
	return c.Subjects.Covers(o.Subjects) &&
		c.Roles.Covers(o.Roles) &&
		c.Actions.Covers(o.Actions) &&
		c.Resources.Covers(o.Resources) &&
		c.ResourceTypes.Covers(o.ResourceTypes)
}

// Specificity counts constrained dimensions, the paper's "more specific
// wins" resolution input.
func (c Claim) Specificity() int {
	n := 0
	for _, s := range []ConstraintSet{c.Subjects, c.Roles, c.Actions, c.Resources, c.ResourceTypes} {
		if !s.Wildcard() {
			n++
		}
	}
	return n
}

func (c Claim) String() string {
	return fmt.Sprintf("%s/%s %s subjects=%s roles=%s actions=%s resources=%s types=%s",
		c.PolicyID, c.RuleID, c.Effect, c.Subjects, c.Roles, c.Actions, c.Resources, c.ResourceTypes)
}

// ExtractClaims derives the claims a policy makes, merging the policy-level
// target constraints into each rule's.
func ExtractClaims(p *policy.Policy) []Claim {
	base := Claim{PolicyID: p.ID, Issuer: p.Issuer}
	base.Subjects = exact(p.Target, policy.CategorySubject, policy.AttrSubjectID)
	base.Roles = exact(p.Target, policy.CategorySubject, policy.AttrSubjectRole)
	base.Actions = exact(p.Target, policy.CategoryAction, policy.AttrActionID)
	base.Resources = exact(p.Target, policy.CategoryResource, policy.AttrResourceID)
	base.ResourceTypes = exact(p.Target, policy.CategoryResource, policy.AttrResourceType)

	claims := make([]Claim, 0, len(p.Rules))
	for i, r := range p.Rules {
		c := base
		c.RuleID = r.ID
		c.RuleIndex = i
		c.Algorithm = p.Combining
		c.Effect = r.Effect
		c.Conditional = r.Condition != nil
		c.Subjects = intersectConstraints(c.Subjects, exact(r.Target, policy.CategorySubject, policy.AttrSubjectID))
		c.Roles = intersectConstraints(c.Roles, exact(r.Target, policy.CategorySubject, policy.AttrSubjectRole))
		c.Actions = intersectConstraints(c.Actions, exact(r.Target, policy.CategoryAction, policy.AttrActionID))
		c.Resources = intersectConstraints(c.Resources, exact(r.Target, policy.CategoryResource, policy.AttrResourceID))
		c.ResourceTypes = intersectConstraints(c.ResourceTypes, exact(r.Target, policy.CategoryResource, policy.AttrResourceType))
		claims = append(claims, c)
	}
	return claims
}

// TargetConstraint extracts the equality constraint a target places on one
// attribute as a ConstraintSet (nil = unconstrained), the normalisation
// primitive shared with the static analyser's policy-set handling.
func TargetConstraint(t policy.Target, cat policy.Category, name string) ConstraintSet {
	return exact(t, cat, name)
}

func exact(t policy.Target, cat policy.Category, name string) ConstraintSet {
	vals, constrained := t.ExactMatches(cat, name)
	if !constrained {
		return nil
	}
	out := make(ConstraintSet, 0, len(vals))
	for _, v := range vals {
		out = append(out, v.String())
	}
	sort.Strings(out)
	return out
}

// intersectConstraints narrows a with b; wildcard is the identity.
func intersectConstraints(a, b ConstraintSet) ConstraintSet {
	switch {
	case a.Wildcard():
		return b
	case b.Wildcard():
		return a
	default:
		var out ConstraintSet
		for _, v := range a {
			for _, w := range b {
				if v == w {
					out = append(out, v)
					break
				}
			}
		}
		if out == nil {
			// Disjoint constraints: the claim is unsatisfiable; keep
			// the narrower marker so Overlaps() stays false.
			return ConstraintSet{}
		}
		return out
	}
}

// Conflict pairs a permit claim with a deny claim covering a shared tuple.
type Conflict struct {
	// Permit and Deny are the clashing claims.
	Permit Claim
	Deny   Claim
	// Actual marks condition-free clashes that will certainly fire;
	// conditional clashes are Potential only.
	Actual bool
	// CrossDomain marks conflicts between different issuers, the
	// multi-domain case of Section 3.1.
	CrossDomain bool
}

func (c Conflict) String() string {
	kind := "potential"
	if c.Actual {
		kind = "actual"
	}
	return fmt.Sprintf("%s conflict: [%s] vs [%s]", kind, c.Permit, c.Deny)
}

// Unsatisfiable reports a claim whose narrowed constraints admit no tuple
// (a rule target disjoint from its policy target). Such claims make no
// authorisation statement and are excluded from analysis.
func (c Claim) Unsatisfiable() bool {
	for _, s := range []ConstraintSet{c.Subjects, c.Roles, c.Actions, c.Resources, c.ResourceTypes} {
		if s != nil && len(s) == 0 {
			return true
		}
	}
	return false
}

// unsatisfiable reports a claim whose narrowed constraints admit no tuple.
func unsatisfiable(c Claim) bool { return c.Unsatisfiable() }

// Overlap reports whether two claims can apply to one access tuple.
func Overlap(a, b Claim) bool {
	return a.Subjects.Overlaps(b.Subjects) &&
		a.Roles.Overlaps(b.Roles) &&
		a.Actions.Overlaps(b.Actions) &&
		a.Resources.Overlaps(b.Resources) &&
		a.ResourceTypes.Overlaps(b.ResourceTypes)
}

// overlap reports whether two claims can apply to one access tuple.
func overlap(a, b Claim) bool { return Overlap(a, b) }

// Analyze detects modality conflicts across the policies.
func Analyze(policies []*policy.Policy) []Conflict {
	var claims []Claim
	for _, p := range policies {
		for _, c := range ExtractClaims(p) {
			if !unsatisfiable(c) {
				claims = append(claims, c)
			}
		}
	}
	var out []Conflict
	for i, a := range claims {
		if a.Effect != policy.EffectPermit {
			continue
		}
		for j, b := range claims {
			if i == j || b.Effect != policy.EffectDeny {
				continue
			}
			if !overlap(a, b) {
				continue
			}
			out = append(out, Conflict{
				Permit:      a,
				Deny:        b,
				Actual:      !a.Conditional && !b.Conditional,
				CrossDomain: a.Issuer != b.Issuer,
			})
		}
	}
	return out
}

// Strategy resolves a conflict to a winning effect.
type Strategy interface {
	// Resolve picks the winning effect, or an explanation of why the
	// conflict cannot be resolved.
	Resolve(c Conflict) (policy.Effect, string, error)
	// Name identifies the strategy in reports.
	Name() string
}

// PrecedenceStrategy resolves with a fixed modality precedence, mirroring
// the deny-overrides / permit-overrides combining algorithms.
type PrecedenceStrategy struct {
	// PermitWins selects permit-overrides; the default is deny-overrides.
	PermitWins bool
}

var _ Strategy = PrecedenceStrategy{}

// Name implements Strategy.
func (s PrecedenceStrategy) Name() string {
	if s.PermitWins {
		return "permit-overrides"
	}
	return "deny-overrides"
}

// Resolve implements Strategy.
func (s PrecedenceStrategy) Resolve(c Conflict) (policy.Effect, string, error) {
	if s.PermitWins {
		return policy.EffectPermit, fmt.Sprintf("permit-overrides favours %s/%s", c.Permit.PolicyID, c.Permit.RuleID), nil
	}
	return policy.EffectDeny, fmt.Sprintf("deny-overrides favours %s/%s", c.Deny.PolicyID, c.Deny.RuleID), nil
}

// SpecificityStrategy resolves in favour of the more specific claim,
// falling back to deny on ties (fail closed).
type SpecificityStrategy struct{}

var _ Strategy = SpecificityStrategy{}

// Name implements Strategy.
func (SpecificityStrategy) Name() string { return "specificity" }

// Resolve implements Strategy.
func (SpecificityStrategy) Resolve(c Conflict) (policy.Effect, string, error) {
	ps, ds := c.Permit.Specificity(), c.Deny.Specificity()
	switch {
	case ps > ds:
		return policy.EffectPermit, fmt.Sprintf("permit claim is more specific (%d > %d)", ps, ds), nil
	case ds > ps:
		return policy.EffectDeny, fmt.Sprintf("deny claim is more specific (%d > %d)", ds, ps), nil
	default:
		return policy.EffectDeny, "equal specificity: failing closed", nil
	}
}

// PriorityStrategy resolves by explicit per-policy priorities (higher
// wins); unknown policies have priority 0; ties fail closed.
type PriorityStrategy struct {
	// Priorities maps policy IDs to their rank.
	Priorities map[string]int
}

var _ Strategy = PriorityStrategy{}

// Name implements Strategy.
func (PriorityStrategy) Name() string { return "priority" }

// Resolve implements Strategy.
func (s PriorityStrategy) Resolve(c Conflict) (policy.Effect, string, error) {
	pp, dp := s.Priorities[c.Permit.PolicyID], s.Priorities[c.Deny.PolicyID]
	switch {
	case pp > dp:
		return policy.EffectPermit, fmt.Sprintf("policy %s outranks %s (%d > %d)", c.Permit.PolicyID, c.Deny.PolicyID, pp, dp), nil
	case dp > pp:
		return policy.EffectDeny, fmt.Sprintf("policy %s outranks %s (%d > %d)", c.Deny.PolicyID, c.Permit.PolicyID, dp, pp), nil
	default:
		return policy.EffectDeny, "equal priority: failing closed", nil
	}
}

// Resolution is one resolved conflict in a report.
type Resolution struct {
	// Conflict is the detected clash.
	Conflict Conflict
	// Winner is the effect the strategy chose.
	Winner policy.Effect
	// Reason explains the choice.
	Reason string
}

// ResolveAll applies a strategy to every conflict.
func ResolveAll(conflicts []Conflict, s Strategy) ([]Resolution, error) {
	out := make([]Resolution, 0, len(conflicts))
	for _, c := range conflicts {
		winner, reason, err := s.Resolve(c)
		if err != nil {
			return nil, fmt.Errorf("conflict: strategy %s: %w", s.Name(), err)
		}
		out = append(out, Resolution{Conflict: c, Winner: winner, Reason: reason})
	}
	return out, nil
}

// SoDRequirement is an application-specific meta-policy constraint
// (Section 3.1): no single subject population may be permitted both of two
// duties. Duties are (action, resource) pairs.
type SoDRequirement struct {
	// Name identifies the requirement.
	Name string
	// First and Second are the duties that must be separated.
	FirstAction, FirstResource   string
	SecondAction, SecondResource string
}

// SoDViolation reports two permit claims that jointly break a requirement.
type SoDViolation struct {
	// Requirement is the broken constraint.
	Requirement SoDRequirement
	// First and Second are the offending permits.
	First, Second Claim
}

func (v SoDViolation) String() string {
	return fmt.Sprintf("SoD %s: [%s] and [%s] reachable by one subject population",
		v.Requirement.Name, v.First, v.Second)
}

// CheckSoD searches the policy base for permit claims that grant both
// duties of a requirement to overlapping subject populations — the
// meta-policy check the paper proposes for conflicts invisible to pure
// modality analysis.
func CheckSoD(policies []*policy.Policy, reqs []SoDRequirement) []SoDViolation {
	var permits []Claim
	for _, p := range policies {
		for _, c := range ExtractClaims(p) {
			if c.Effect == policy.EffectPermit && !unsatisfiable(c) {
				permits = append(permits, c)
			}
		}
	}
	covers := func(c Claim, action, resource string) bool {
		return (c.Actions.Wildcard() || contains(c.Actions, action)) &&
			(c.Resources.Wildcard() || contains(c.Resources, resource))
	}
	var out []SoDViolation
	for _, req := range reqs {
		// i <= j so each unordered pair is reported once; i == j catches a
		// single blanket permit covering both duties by itself.
		for i, a := range permits {
			for j := i; j < len(permits); j++ {
				b := permits[j]
				pairCovers := (covers(a, req.FirstAction, req.FirstResource) && covers(b, req.SecondAction, req.SecondResource)) ||
					(covers(b, req.FirstAction, req.FirstResource) && covers(a, req.SecondAction, req.SecondResource))
				if !pairCovers {
					continue
				}
				if a.Subjects.Overlaps(b.Subjects) && a.Roles.Overlaps(b.Roles) {
					out = append(out, SoDViolation{Requirement: req, First: a, Second: b})
				}
			}
		}
	}
	return out
}

func contains(set ConstraintSet, v string) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}
