package assertion

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/pki"
	"repro/internal/policy"
)

type detRand struct{ r *rand.Rand }

func newDetRand(seed int64) *detRand { return &detRand{r: rand.New(rand.NewSource(seed))} }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

var (
	epoch = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	later = epoch.AddDate(1, 0, 0)
)

type fixture struct {
	root  *pki.Authority
	key   pki.KeyPair
	cert  *pki.Certificate
	trust *pki.TrustStore
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	root, err := pki.NewRootAuthority("vo-ca", newDetRand(1), epoch, later)
	if err != nil {
		t.Fatal(err)
	}
	key, err := pki.GenerateKeyPair(newDetRand(2))
	if err != nil {
		t.Fatal(err)
	}
	cert := root.Issue("cas.vo.example", key.Public, epoch, later, false)
	trust := pki.NewTrustStore()
	trust.AddRoot(root.Certificate())
	return &fixture{root: root, key: key, cert: cert, trust: trust}
}

func sampleAssertion() *Assertion {
	return &Assertion{
		ID:           "as-1",
		Issuer:       "cas.vo.example",
		Subject:      "alice",
		IssuedAt:     epoch.Add(time.Hour),
		NotBefore:    epoch.Add(time.Hour),
		NotOnOrAfter: epoch.Add(2 * time.Hour),
		Audience:     "pep.hospital-b",
		Attributes: map[string]policy.Bag{
			policy.AttrSubjectRole: policy.BagOf(policy.String("doctor"), policy.String("researcher")),
			policy.AttrClearance:   policy.Singleton(policy.Integer(3)),
		},
		Decision: &AuthzDecision{
			Resource: "rec-7",
			Action:   "read",
			Decision: policy.DecisionPermit,
		},
	}
}

func (f *fixture) opts(at time.Time) VerifyOptions {
	return VerifyOptions{
		Trust:      f.trust,
		IssuerCert: f.cert,
		At:         at,
		Audience:   "pep.hospital-b",
	}
}

func TestSignAndVerify(t *testing.T) {
	f := newFixture(t)
	a := sampleAssertion()
	a.Sign(f.key)
	if err := a.Verify(f.opts(epoch.Add(90 * time.Minute))); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyRejectsUnsigned(t *testing.T) {
	f := newFixture(t)
	a := sampleAssertion()
	if err := a.Verify(f.opts(epoch.Add(90 * time.Minute))); !errors.Is(err, ErrUnsigned) {
		t.Errorf("want ErrUnsigned, got %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	f := newFixture(t)
	at := epoch.Add(90 * time.Minute)

	tamper := []struct {
		name string
		mut  func(*Assertion)
	}{
		{"subject", func(a *Assertion) { a.Subject = "mallory" }},
		{"decision", func(a *Assertion) { a.Decision.Decision = policy.DecisionDeny }},
		{"resource", func(a *Assertion) { a.Decision.Resource = "rec-8" }},
		{"attribute", func(a *Assertion) {
			a.Attributes[policy.AttrSubjectRole] = policy.Singleton(policy.String("admin"))
		}},
		{"extend-validity", func(a *Assertion) { a.NotOnOrAfter = a.NotOnOrAfter.Add(24 * time.Hour) }},
	}
	for _, tt := range tamper {
		t.Run(tt.name, func(t *testing.T) {
			a := sampleAssertion()
			a.Sign(f.key)
			tt.mut(a)
			if err := a.Verify(f.opts(at)); !errors.Is(err, pki.ErrBadSignature) {
				t.Errorf("want ErrBadSignature after tampering, got %v", err)
			}
		})
	}
}

func TestVerifyWindow(t *testing.T) {
	f := newFixture(t)
	a := sampleAssertion()
	a.Sign(f.key)
	if err := a.Verify(f.opts(epoch.Add(30 * time.Minute))); !errors.Is(err, ErrExpired) {
		t.Errorf("before window: want ErrExpired, got %v", err)
	}
	if err := a.Verify(f.opts(epoch.Add(3 * time.Hour))); !errors.Is(err, ErrExpired) {
		t.Errorf("after window: want ErrExpired, got %v", err)
	}
	// NotOnOrAfter is exclusive.
	if err := a.Verify(f.opts(a.NotOnOrAfter)); !errors.Is(err, ErrExpired) {
		t.Errorf("at NotOnOrAfter: want ErrExpired, got %v", err)
	}
}

func TestVerifyAudience(t *testing.T) {
	f := newFixture(t)
	a := sampleAssertion()
	a.Sign(f.key)
	opts := f.opts(epoch.Add(90 * time.Minute))
	opts.Audience = "pep.other-domain"
	if err := a.Verify(opts); !errors.Is(err, ErrAudience) {
		t.Errorf("want ErrAudience, got %v", err)
	}
	// Empty audience on the assertion means unrestricted.
	b := sampleAssertion()
	b.Audience = ""
	b.Sign(f.key)
	if err := b.Verify(opts); err != nil {
		t.Errorf("unrestricted audience: %v", err)
	}
}

func TestVerifyRejectsWrongIssuerCert(t *testing.T) {
	f := newFixture(t)
	a := sampleAssertion()
	a.Sign(f.key)
	otherKey, _ := pki.GenerateKeyPair(newDetRand(9))
	otherCert := f.root.Issue("someone-else", otherKey.Public, epoch, later, false)
	opts := f.opts(epoch.Add(90 * time.Minute))
	opts.IssuerCert = otherCert
	if err := a.Verify(opts); !errors.Is(err, pki.ErrUntrusted) {
		t.Errorf("want ErrUntrusted, got %v", err)
	}
}

func TestVerifyRejectsRevokedIssuer(t *testing.T) {
	f := newFixture(t)
	a := sampleAssertion()
	a.Sign(f.key)
	f.root.Revoke(f.cert.Serial, epoch.Add(time.Hour))
	f.trust.SetCRL(f.root.Name(), f.root.CRL())
	if err := a.Verify(f.opts(epoch.Add(90 * time.Minute))); !errors.Is(err, pki.ErrRevoked) {
		t.Errorf("want ErrRevoked, got %v", err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	f := newFixture(t)
	a := sampleAssertion()
	a.Sign(f.key)
	data, err := MarshalXML(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalXML(data)
	if err != nil {
		t.Fatalf("UnmarshalXML: %v\n%s", err, data)
	}
	// The round-tripped assertion must still verify: canonical form and
	// signature survived the encoding.
	if err := got.Verify(f.opts(epoch.Add(90 * time.Minute))); err != nil {
		t.Errorf("round-tripped assertion fails verification: %v", err)
	}
	if got.Subject != "alice" || got.Decision == nil || got.Decision.Action != "read" {
		t.Errorf("payload lost: %+v", got)
	}
	if !got.Attributes[policy.AttrClearance].Contains(policy.Integer(3)) {
		t.Error("typed attribute lost")
	}
}

func TestXMLRoundTripWithoutOptionalParts(t *testing.T) {
	f := newFixture(t)
	a := &Assertion{
		ID: "bare", Issuer: "cas.vo.example", Subject: "bob",
		IssuedAt: epoch, NotBefore: epoch, NotOnOrAfter: epoch.Add(time.Hour),
	}
	a.Sign(f.key)
	data, err := MarshalXML(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Decision != nil || len(got.Attributes) != 0 || got.Audience != "" {
		t.Errorf("optional parts should be absent: %+v", got)
	}
	opts := VerifyOptions{Trust: f.trust, IssuerCert: f.cert, At: epoch.Add(time.Minute)}
	if err := got.Verify(opts); err != nil {
		t.Errorf("bare assertion verification: %v", err)
	}
}

func TestCanonicalOrderInsensitive(t *testing.T) {
	a := sampleAssertion()
	b := sampleAssertion()
	// Same content built in a different map insertion order.
	b.Attributes = map[string]policy.Bag{
		policy.AttrClearance:   policy.Singleton(policy.Integer(3)),
		policy.AttrSubjectRole: policy.BagOf(policy.String("researcher"), policy.String("doctor")),
	}
	if string(a.Canonical()) != string(b.Canonical()) {
		t.Error("canonical form must be attribute-order insensitive")
	}
}
