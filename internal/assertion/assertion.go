// Package assertion implements SAML-style signed security assertions: the
// portable statements of identity attributes and authorisation decisions
// that the paper's capability-issuing architecture transports between
// domains (Sections 2.2 and 2.3).
//
// Two statement types are supported, mirroring the SAML statements the
// paper relies on:
//
//   - attribute statements, asserting subject attributes (the VOMS-style
//     attribute-certificate role), and
//   - authorisation decision statements, asserting that a subject may
//     perform an action on a resource (the CAS-style capability role).
//
// Assertions carry validity windows and audience restrictions, and are
// signed with the issuer's pki key. Verification checks the signature
// against a certificate chained to a trust store, the validity window, and
// the audience.
package assertion

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/pki"
	"repro/internal/policy"
)

// Verification errors, matched with errors.Is.
var (
	// ErrExpired reports an assertion used outside its validity window.
	ErrExpired = errors.New("assertion: outside validity window")
	// ErrAudience reports an assertion presented to the wrong audience.
	ErrAudience = errors.New("assertion: audience mismatch")
	// ErrUnsigned reports a missing signature.
	ErrUnsigned = errors.New("assertion: not signed")
)

// AuthzDecision asserts the issuer's decision that Subject may perform
// Action on Resource — the paper's capability payload.
type AuthzDecision struct {
	// Resource identifies the target of the decision.
	Resource string
	// Action identifies the permitted (or denied) operation.
	Action string
	// Decision is the asserted outcome.
	Decision policy.Decision
}

// Assertion is a signed statement by an issuer about a subject.
type Assertion struct {
	// ID uniquely identifies the assertion.
	ID string
	// Issuer names the asserting party; its certificate must chain to a
	// root the consumer trusts.
	Issuer string
	// Subject names the principal the statements are about.
	Subject string
	// IssuedAt, NotBefore and NotOnOrAfter bound the assertion's life.
	IssuedAt     time.Time
	NotBefore    time.Time
	NotOnOrAfter time.Time
	// Audience optionally restricts the consuming party; empty means any.
	Audience string
	// Attributes holds attribute statements by name.
	Attributes map[string]policy.Bag
	// Decision optionally holds an authorisation decision statement.
	Decision *AuthzDecision
	// Signature is the issuer's Ed25519 signature over Canonical().
	Signature []byte
}

// Canonical returns the deterministic byte encoding covered by the
// signature. Attribute names are sorted so logically equal assertions share
// one canonical form.
func (a *Assertion) Canonical() []byte {
	var buf bytes.Buffer
	for _, s := range []string{a.ID, a.Issuer, a.Subject, a.Audience} {
		writeLenPrefixed(&buf, []byte(s))
	}
	for _, ts := range []time.Time{a.IssuedAt, a.NotBefore, a.NotOnOrAfter} {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(ts.UnixNano()))
		buf.Write(b[:])
	}
	names := make([]string, 0, len(a.Attributes))
	for n := range a.Attributes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeLenPrefixed(&buf, []byte(n))
		vals := a.Attributes[n].Strings()
		sort.Strings(vals)
		for _, v := range vals {
			writeLenPrefixed(&buf, []byte(v))
		}
	}
	if a.Decision != nil {
		writeLenPrefixed(&buf, []byte(a.Decision.Resource))
		writeLenPrefixed(&buf, []byte(a.Decision.Action))
		writeLenPrefixed(&buf, []byte(a.Decision.Decision.String()))
	}
	return buf.Bytes()
}

func writeLenPrefixed(buf *bytes.Buffer, b []byte) {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(b)))
	buf.Write(l[:])
	buf.Write(b)
}

// Sign signs the assertion with the issuer's key pair.
func (a *Assertion) Sign(key pki.KeyPair) {
	a.Signature = key.Sign(a.Canonical())
}

// VerifyOptions parameterise assertion verification.
type VerifyOptions struct {
	// Trust is the consumer's trust store; the issuer certificate must
	// chain into it.
	Trust *pki.TrustStore
	// IssuerCert is the certificate presented for the issuer.
	IssuerCert *pki.Certificate
	// Intermediates supply any chain between IssuerCert and a root.
	Intermediates []*pki.Certificate
	// At is the verification time.
	At time.Time
	// Audience is the verifying party's identity for audience checks.
	Audience string
}

// Verify checks signature, chain, validity window and audience.
func (a *Assertion) Verify(opts VerifyOptions) error {
	if len(a.Signature) == 0 {
		return fmt.Errorf("assertion %s: %w", a.ID, ErrUnsigned)
	}
	if opts.IssuerCert == nil || opts.IssuerCert.Subject != a.Issuer {
		return fmt.Errorf("assertion %s: issuer certificate missing or mismatched: %w", a.ID, pki.ErrUntrusted)
	}
	if err := opts.Trust.VerifySignature(opts.IssuerCert, opts.Intermediates, opts.At, a.Canonical(), a.Signature); err != nil {
		return fmt.Errorf("assertion %s: %w", a.ID, err)
	}
	if opts.At.Before(a.NotBefore) || !opts.At.Before(a.NotOnOrAfter) {
		return fmt.Errorf("assertion %s valid [%v, %v), checked at %v: %w",
			a.ID, a.NotBefore, a.NotOnOrAfter, opts.At, ErrExpired)
	}
	if a.Audience != "" && a.Audience != opts.Audience {
		return fmt.Errorf("assertion %s for audience %q presented to %q: %w",
			a.ID, a.Audience, opts.Audience, ErrAudience)
	}
	return nil
}

// --- XML encoding (SAML-flavoured) ---

type xmlAttrValue struct {
	DataType string `xml:"DataType,attr"`
	Text     string `xml:",chardata"`
}

type xmlAttr struct {
	Name   string         `xml:"Name,attr"`
	Values []xmlAttrValue `xml:"AttributeValue"`
}

type xmlDecision struct {
	Resource string `xml:"Resource,attr"`
	Action   string `xml:"Action,attr"`
	Decision string `xml:"Decision,attr"`
}

type xmlAssertion struct {
	XMLName      xml.Name     `xml:"Assertion"`
	ID           string       `xml:"ID,attr"`
	Issuer       string       `xml:"Issuer"`
	Subject      string       `xml:"Subject"`
	IssuedAt     string       `xml:"IssueInstant,attr"`
	NotBefore    string       `xml:"Conditions>NotBefore"`
	NotOnOrAfter string       `xml:"Conditions>NotOnOrAfter"`
	Audience     string       `xml:"Conditions>AudienceRestriction>Audience,omitempty"`
	Attributes   []xmlAttr    `xml:"AttributeStatement>Attribute,omitempty"`
	Decision     *xmlDecision `xml:"AuthzDecisionStatement,omitempty"`
	Signature    string       `xml:"Signature"`
}

// MarshalXML encodes the assertion in a SAML-flavoured XML form.
func MarshalXML(a *Assertion) ([]byte, error) {
	out := xmlAssertion{
		ID:           a.ID,
		Issuer:       a.Issuer,
		Subject:      a.Subject,
		IssuedAt:     a.IssuedAt.Format(time.RFC3339Nano),
		NotBefore:    a.NotBefore.Format(time.RFC3339Nano),
		NotOnOrAfter: a.NotOnOrAfter.Format(time.RFC3339Nano),
		Audience:     a.Audience,
		Signature:    base64.StdEncoding.EncodeToString(a.Signature),
	}
	names := make([]string, 0, len(a.Attributes))
	for n := range a.Attributes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		xa := xmlAttr{Name: n}
		for _, v := range a.Attributes[n] {
			xa.Values = append(xa.Values, xmlAttrValue{DataType: v.Kind().String(), Text: v.String()})
		}
		out.Attributes = append(out.Attributes, xa)
	}
	if a.Decision != nil {
		out.Decision = &xmlDecision{
			Resource: a.Decision.Resource,
			Action:   a.Decision.Action,
			Decision: a.Decision.Decision.String(),
		}
	}
	data, err := xml.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("assertion: marshal: %w", err)
	}
	return data, nil
}

// UnmarshalXML decodes an assertion from its XML form.
func UnmarshalXML(data []byte) (*Assertion, error) {
	var in xmlAssertion
	if err := xml.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("assertion: unmarshal: %w", err)
	}
	sig, err := base64.StdEncoding.DecodeString(in.Signature)
	if err != nil {
		return nil, fmt.Errorf("assertion: signature: %w", err)
	}
	a := &Assertion{
		ID:        in.ID,
		Issuer:    in.Issuer,
		Subject:   in.Subject,
		Audience:  in.Audience,
		Signature: sig,
	}
	if a.IssuedAt, err = time.Parse(time.RFC3339Nano, in.IssuedAt); err != nil {
		return nil, fmt.Errorf("assertion: issue instant: %w", err)
	}
	if a.NotBefore, err = time.Parse(time.RFC3339Nano, in.NotBefore); err != nil {
		return nil, fmt.Errorf("assertion: not-before: %w", err)
	}
	if a.NotOnOrAfter, err = time.Parse(time.RFC3339Nano, in.NotOnOrAfter); err != nil {
		return nil, fmt.Errorf("assertion: not-on-or-after: %w", err)
	}
	if len(in.Attributes) > 0 {
		a.Attributes = make(map[string]policy.Bag, len(in.Attributes))
		for _, xa := range in.Attributes {
			bag := make(policy.Bag, 0, len(xa.Values))
			for _, xv := range xa.Values {
				kind, err := policy.KindFromString(xv.DataType)
				if err != nil {
					return nil, fmt.Errorf("assertion: attribute %s: %w", xa.Name, err)
				}
				v, err := policy.ParseValue(kind, xv.Text)
				if err != nil {
					return nil, fmt.Errorf("assertion: attribute %s: %w", xa.Name, err)
				}
				bag = append(bag, v)
			}
			a.Attributes[xa.Name] = bag
		}
	}
	if in.Decision != nil {
		dec, err := policy.DecisionFromString(in.Decision.Decision)
		if err != nil {
			return nil, fmt.Errorf("assertion: decision: %w", err)
		}
		a.Decision = &AuthzDecision{
			Resource: in.Decision.Resource,
			Action:   in.Decision.Action,
			Decision: dec,
		}
	}
	return a, nil
}
