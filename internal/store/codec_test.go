package store

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pap"
	"repro/internal/policy"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenUpdates are the fixtures whose encodings are pinned on disk: the
// on-disk format is a compatibility surface (a node must replay logs an
// older build wrote), so any byte change here must be deliberate and
// version-bumped.
func goldenUpdates() []struct {
	name string
	seq  uint64
	u    pap.Update
} {
	withObligation := policy.NewPolicy("audit-reads").
		Combining(policy.DenyOverrides).
		When(policy.MatchResourceID("res-ledger")).
		Rule(policy.Permit("allow").When(policy.MatchActionID("read")).Build()).
		Obligation(policy.Obligation{
			ID:        "log-access",
			FulfillOn: policy.EffectPermit,
			Assignments: []policy.Assignment{
				{Name: "subject", Expr: policy.Attr(policy.CategorySubject, policy.AttrSubjectID)},
			},
		}).
		Build()
	return []struct {
		name string
		seq  uint64
		u    pap.Update
	}{
		{"record-put", 7, pap.Update{ID: "pol-res-0", Version: 3, Policy: testPolicy("pol-res-0", "res-0", "v3")}},
		{"record-put-obligation", 8, pap.Update{ID: "audit-reads", Version: 1, Policy: withObligation}},
		{"record-delete", 9, pap.Update{ID: "pol-res-0", Deleted: true}},
	}
}

func TestUpdateCodecGolden(t *testing.T) {
	for _, tc := range goldenUpdates() {
		t.Run(tc.name, func(t *testing.T) {
			data, err := MarshalUpdate(tc.seq, tc.u)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to regenerate): %v", err)
			}
			if string(data) != string(want) {
				t.Fatalf("on-disk format drifted from %s:\n got: %s\nwant: %s", path, data, want)
			}
			// And the pinned bytes still decode to the same update.
			seq, u, err := UnmarshalUpdate(want)
			if err != nil {
				t.Fatal(err)
			}
			if seq != tc.seq {
				t.Fatalf("seq = %d, want %d", seq, tc.seq)
			}
			sameUpdate(t, u, tc.u)
		})
	}
}

func TestSnapshotCodecGolden(t *testing.T) {
	state := map[string]*stateEntry{}
	for _, tc := range goldenUpdates() {
		payload, doc, err := encodeRecord(tc.seq, tc.u)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := decodeRecord(payload); err != nil {
			t.Fatal(err)
		}
		ent := &stateEntry{ID: tc.u.ID, Versions: tc.u.Version, Deleted: tc.u.Deleted, Policy: doc}
		if tc.u.Deleted {
			ent.Versions = 3
		}
		state[tc.u.ID] = ent
	}
	data, err := marshalSnapshot(9, state)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "snapshot.golden")
	if *updateGolden {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if string(data) != string(want) {
		t.Fatalf("snapshot format drifted from %s:\n got: %s\nwant: %s", path, data, want)
	}
	doc, err := unmarshalSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Seq != 9 || len(doc.Entries) != 2 {
		t.Fatalf("decoded snapshot = seq %d, %d entries", doc.Seq, len(doc.Entries))
	}
}

func TestCodecRejectsUnknownVersionAndOp(t *testing.T) {
	if _, _, err := UnmarshalUpdate([]byte(`{"v":99,"seq":1,"op":"put","id":"x"}`)); err == nil {
		t.Fatal("future format version accepted")
	}
	if _, _, err := UnmarshalUpdate([]byte(`{"v":1,"seq":1,"op":"merge","id":"x"}`)); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := unmarshalSnapshot([]byte(`{"v":2,"seq":1,"entries":[]}`)); err == nil {
		t.Fatal("future snapshot version accepted")
	}
}
