package store

import (
	"fmt"

	"repro/internal/pap"
	"repro/internal/policy"
)

// Bootstrap replays the recovered state into a live system and attaches
// the log as the store's durability backend, in the order the delta
// pipeline requires:
//
//  1. snapshot entries hydrate the pap.Store (version counters,
//     tombstones and latest policies, without waking watchers);
//  2. when a decision point is given, the root assembled from that
//     snapshot state installs via SetRoot — exactly what a fresh shard or
//     domain would receive;
//  3. each WAL tail record replays into the store and then through
//     pap.Apply, i.e. pdp.Engine.ApplyUpdate / cluster.Router.ApplyUpdate
//     — the same incremental path live administration uses;
//  4. the log becomes the store's Backend, so every later write is
//     committed before it is acknowledged.
//
// Both *pdp.Engine and *cluster.Router satisfy pap.RootInstaller; point
// may be nil to hydrate only the store (the caller installs roots itself,
// as cmd/pdpd does to preserve root-level targets and obligations).
func (l *Log) Bootstrap(s *pap.Store, point pap.RootInstaller, rootID string, combining policy.Algorithm) error {
	for _, ent := range l.recoveredSnap {
		if err := s.Hydrate(ent.ID, ent.Versions, ent.Deleted, ent.Policy); err != nil {
			return fmt.Errorf("store: bootstrap: %w", err)
		}
	}
	if point != nil {
		root, err := s.BuildRoot(rootID, combining)
		if err != nil {
			return fmt.Errorf("store: bootstrap: %w", err)
		}
		if err := point.SetRoot(root); err != nil {
			return fmt.Errorf("store: bootstrap: %w", err)
		}
	}
	for _, u := range l.recoveredTail {
		if err := s.Replay(u); err != nil {
			return fmt.Errorf("store: bootstrap: %w", err)
		}
		if point != nil {
			if err := pap.Apply(point, s, u, rootID, combining); err != nil {
				return fmt.Errorf("store: bootstrap: replay %s: %w", u.ID, err)
			}
		}
	}
	// The recovered trees are now owned by the store; holding a second
	// copy for the log's lifetime would double the resident policy base.
	// The counts live on in Stats.
	l.recoveredSnap, l.recoveredTail = nil, nil
	s.SetBackend(l)
	return nil
}
