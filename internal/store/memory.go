package store

import (
	"sync"

	"repro/internal/pap"
)

// Memory is an in-memory pap.Backend double for tests: it records every
// committed update in commit order and can be told to fail, which lets a
// test pin the store's durability-before-visibility contract (a failed
// commit must leave the store unchanged and the write unacknowledged)
// without touching a filesystem.
type Memory struct {
	mu      sync.Mutex
	updates []pap.Update
	err     error
}

// NewMemory builds an empty in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// Commit implements pap.Backend.
func (m *Memory) Commit(u pap.Update) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	m.updates = append(m.updates, u)
	return nil
}

// FailWith makes every subsequent Commit return err (nil heals it).
func (m *Memory) FailWith(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.err = err
}

// Updates returns a copy of the committed updates in commit order.
func (m *Memory) Updates() []pap.Update {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]pap.Update, len(m.updates))
	copy(out, m.updates)
	return out
}
